// Robot learning at the edge — the paper's Figure 7 case study (§IX).
//
// General-purpose models are trained in the cloud and *refined* at the
// edge.  Environment-specific information (refined models, episode
// history) must stay on the factory floor for privacy: the owner's AdCert
// restricts those capsules to the factory routing domain, and the GDP
// enforces the boundary — outside clients cannot even resolve the names.
#include <iostream>

#include "caapi/fs.hpp"
#include "harness/scenario.hpp"

using namespace gdp;

int main() {
  std::cout << "== GDP robot-learning case study (Figure 7) ==\n";
  harness::Scenario s(/*seed=*/21, "robots");

  // Cloud and factory domains under a global root.
  auto* global = s.add_domain("global", nullptr);
  auto* cloud = s.add_domain("cloud", global);
  auto* factory = s.add_domain("factory", global);
  auto* r_cloud = s.add_router("cloud-router", cloud);
  auto* r_factory = s.add_router("factory-router", factory);
  // Residential-grade uplink between the factory and the cloud.
  s.link_routers(r_cloud, r_factory, net::LinkParams::wan(40));

  auto* cloud_srv = s.add_server("cloud-server", r_cloud);
  auto* edge_srv = s.add_server("edge-server", r_factory);

  auto* trainer = s.add_client("cloud-trainer", r_cloud);
  auto* robot = s.add_client("worker-robot", r_factory);
  s.attach_all();

  // --- 1. The general-purpose model is published in the cloud, world-readable.
  auto model_fs =
      caapi::GdpFilesystem::create(s, *trainer, {cloud_srv}, "model-repo");
  if (!model_fs.ok()) return 1;
  Rng data_rng(3);
  Bytes general_model = data_rng.next_bytes(512 * 1024);  // 512 kB demo model
  if (!model_fs->write_file("resnet-general.ckpt", general_model).ok()) return 1;
  std::cout << "cloud: published general model ("
            << general_model.size() / 1024 << " kB)\n";

  // --- 2. The robot pulls the model across the WAN (verified end to end).
  auto pulled = model_fs->read_file("resnet-general.ckpt");
  if (!pulled.ok() || *pulled != general_model) {
    std::cerr << "model pull failed\n";
    return 1;
  }
  std::cout << "factory: pulled and verified general model over the WAN\n";

  // --- 3. Episode history stays on the factory floor: the owner restricts
  //        the capsule to the factory domain.
  harness::CapsuleSetup episodes =
      harness::make_capsule(s.key_rng(), "episode-history");
  auto placed = harness::place_capsule(s, episodes, *robot, {edge_srv},
                                       {factory->domain()});
  if (!placed.ok()) return 1;
  capsule::Writer episode_writer = episodes.make_writer();
  for (int i = 0; i < 20; ++i) {
    Bytes episode = data_rng.next_bytes(2048);
    auto outcome = client::await(s.sim(), robot->append(episode_writer, episode));
    if (!outcome.ok()) return 1;
  }
  std::cout << "factory: recorded 20 grasp episodes into a restricted capsule\n";

  // --- 4. The privacy boundary holds: a cloud client cannot resolve the
  //        episode capsule at all.
  auto snoop = client::await(s.sim(), trainer->read_latest(episodes.metadata));
  std::cout << "cloud: attempt to read episode history -> "
            << (snoop.ok() ? "LEAKED (bug!)" : snoop.error().to_string()) << "\n";
  if (snoop.ok()) return 1;

  // --- 5. The robot refines the model locally; the refined model is also
  //        confined to the factory.
  harness::CapsuleSetup refined =
      harness::make_capsule(s.key_rng(), "refined-model");
  if (!harness::place_capsule(s, refined, *robot, {edge_srv}, {factory->domain()})
           .ok()) {
    return 1;
  }
  capsule::Writer refined_writer = refined.make_writer();
  Bytes refined_model = data_rng.next_bytes(512 * 1024);
  TimePoint t0 = s.sim().now();
  auto stored = client::await(s.sim(), robot->append(refined_writer, refined_model));
  if (!stored.ok()) return 1;
  double edge_store_s = to_seconds(s.sim().now() - t0);

  t0 = s.sim().now();
  auto reload = client::await(s.sim(), robot->read_latest(refined.metadata));
  if (!reload.ok()) return 1;
  double edge_load_s = to_seconds(s.sim().now() - t0);
  std::cout << "factory: refined model store " << edge_store_s << " s, load "
            << edge_load_s << " s using edge resources\n";

  std::cout << "robot case study OK — models flow, episodes stay put\n";
  return 0;
}
