// Sensor swarm: the paper's motivating IoT workload (§VIII mentions
// "time-series environmental sensors" as the first real application).
//
// Four sensors in two buildings stream readings into their own
// single-writer DataCapsules.  A dashboard client subscribes to live
// events (publish-subscribe, §V-A), and an aggregation service (§VI-A)
// fans the four streams into one combined capsule that an analytics
// client replays later — the "time-shift" property.
#include <iomanip>
#include <iostream>

#include "caapi/aggregate.hpp"
#include "harness/scenario.hpp"

using namespace gdp;

int main() {
  std::cout << "== GDP sensor swarm ==\n";
  harness::Scenario s(/*seed=*/7, "sensors");

  // Two buildings (domains) under one campus root.
  auto* campus = s.add_domain("campus", nullptr);
  auto* building_a = s.add_domain("building-a", campus);
  auto* building_b = s.add_domain("building-b", campus);
  auto* ra = s.add_router("router-a", building_a);
  auto* rb = s.add_router("router-b", building_b);
  auto* rc = s.add_router("router-campus", campus);
  s.link_routers(ra, rc, net::LinkParams::wan(2));
  s.link_routers(rb, rc, net::LinkParams::wan(2));

  auto* srv_a = s.add_server("edge-server-a", ra);
  auto* srv_b = s.add_server("edge-server-b", rb);

  struct Sensor {
    client::GdpClient* device;
    harness::CapsuleSetup capsule;
    std::unique_ptr<capsule::Writer> writer;
  };
  std::vector<Sensor> sensors;
  for (int i = 0; i < 4; ++i) {
    auto* router = i < 2 ? ra : rb;
    auto* device = s.add_client("sensor-" + std::to_string(i), router);
    sensors.push_back(
        {device, harness::make_capsule(s.key_rng(), "sensor-" + std::to_string(i)),
         nullptr});
  }
  auto* dashboard = s.add_client("dashboard", rc);
  auto* agg_client = s.add_client("aggregation-svc", rc);
  auto* analytics = s.add_client("analytics", rc);
  s.attach_all();

  // Place each sensor capsule on both edge servers for durability.
  for (auto& sensor : sensors) {
    auto placed =
        harness::place_capsule(s, sensor.capsule, *sensor.device, {srv_a, srv_b});
    if (!placed.ok()) {
      std::cerr << "placement failed: " << placed.to_string() << "\n";
      return 1;
    }
    sensor.writer = std::make_unique<capsule::Writer>(sensor.capsule.make_writer());
  }

  // Dashboard subscribes to sensor 0's live feed.
  int live_events = 0;
  const TimePoint expiry = s.sim().now() + from_seconds(24 * 3600);
  auto sub = client::await(
      s.sim(),
      dashboard->subscribe(
          sensors[0].capsule.metadata,
          sensors[0].capsule.sub_cert_for(dashboard->name(), s.sim().now(), expiry),
          [&](const capsule::Record& rec, const capsule::Heartbeat&) {
            ++live_events;
            std::cout << "  [dashboard] live " << to_string(rec.payload) << "\n";
          }));
  if (!sub.ok()) {
    std::cerr << "subscribe failed: " << sub.error().to_string() << "\n";
    return 1;
  }

  // The aggregation service combines all four streams into one capsule.
  harness::CapsuleSetup combined = harness::make_capsule(s.key_rng(), "combined-feed");
  if (!harness::place_capsule(s, combined, *agg_client, {srv_a, srv_b}).ok()) return 1;
  caapi::Aggregator aggregator(s, *agg_client, std::move(combined));
  for (auto& sensor : sensors) {
    auto added = aggregator.add_source(
        sensor.capsule.metadata,
        sensor.capsule.sub_cert_for(agg_client->name(), s.sim().now(), expiry));
    if (!added.ok()) {
      std::cerr << "aggregator source failed: " << added.error().to_string() << "\n";
      return 1;
    }
  }

  // Sensors stream readings (temperature-style time series).
  Rng measurement_rng(99);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < sensors.size(); ++i) {
      double temp = 20.0 + static_cast<double>(measurement_rng.next_below(100)) / 10.0;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "s%zu t=%.1fC", i, temp);
      auto outcome = client::await(
          s.sim(), sensors[i].device->append(*sensors[i].writer, to_bytes(buf)));
      if (!outcome.ok()) {
        std::cerr << "append failed: " << outcome.error().to_string() << "\n";
        return 1;
      }
    }
    s.settle_for(from_seconds(1));  // one second between rounds
  }
  s.settle();

  std::cout << "dashboard received " << live_events << " live events\n";
  std::cout << "aggregator combined " << aggregator.events_aggregated()
            << " events from " << sensors.size() << " sensors\n";

  // Analytics replays the combined history later (time-shift).
  auto replay = client::await(
      s.sim(), analytics->read(aggregator.output_metadata(), 1,
                               aggregator.events_aggregated()));
  if (!replay.ok()) {
    std::cerr << "replay failed: " << replay.error().to_string() << "\n";
    return 1;
  }
  std::cout << "analytics replayed " << replay->records.size()
            << " verified aggregated records; sample:\n";
  for (std::size_t i = 0; i < 3 && i < replay->records.size(); ++i) {
    auto decoded = caapi::Aggregator::decode(replay->records[i].payload);
    if (decoded.ok()) {
      std::cout << "  from " << std::get<0>(*decoded).short_hex() << " seq "
                << std::get<1>(*decoded) << ": "
                << to_string(std::get<2>(*decoded)) << "\n";
    }
  }
  std::cout << "sensor swarm OK\n";
  return 0;
}
