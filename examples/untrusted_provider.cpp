// Untrusted infrastructure, detected and survived (§III-C, §IV-C).
//
// The paper's service-provider model: a user rents storage from providers
// they do not trust.  One provider turns malicious — it tampers with read
// responses in flight.  The client *detects* every forgery (integrity is
// end-to-end, anchored in the capsule name), and because the owner
// preemptively delegated a second provider, reads simply fail over: no
// data is lost and no forged byte is ever consumed.
#include <iostream>

#include "harness/scenario.hpp"

using namespace gdp;

int main() {
  std::cout << "== GDP untrusted-provider demo ==\n";
  harness::Scenario s(/*seed=*/13, "untrusted");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("router-1", global);
  auto* r2 = s.add_router("router-2", global);
  s.link_routers(r1, r2, net::LinkParams::wan(10));

  auto* provider_a = s.add_server("provider-a", r1);  // will turn malicious
  auto* provider_b = s.add_server("provider-b", r2);  // honest
  auto* user = s.add_client("user", r1);
  s.attach_all();

  // The owner delegates BOTH providers ("for mission-critical data, the
  // DataCapsule-owner preemptively delegates multiple service-providers").
  harness::CapsuleSetup capsule = harness::make_capsule(s.key_rng(), "my-data");
  if (!harness::place_capsule(s, capsule, *user, {provider_a, provider_b}).ok()) {
    return 1;
  }
  capsule::Writer writer = capsule.make_writer();
  for (int i = 0; i < 5; ++i) {
    auto outcome = client::await(
        s.sim(), user->append(writer, to_bytes("entry-" + std::to_string(i)), 2));
    if (!outcome.ok()) {
      std::cerr << "append failed: " << outcome.error().to_string() << "\n";
      return 1;
    }
  }
  std::cout << "5 records durably stored on both providers (k=2 acks)\n";

  // Provider A starts forging responses: every payload byte 100 onward
  // flipped (simulating on-path or provider-side tampering).
  s.net().set_interceptor(provider_a->name(), r1->name(),
                          [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            wire::Pdu bad = pdu;
                            if (bad.payload.size() > 100) bad.payload[100] ^= 0xff;
                            return bad;
                          });

  // Anycast prefers provider A (closer to the user) — and the client
  // catches the forgery.
  auto tampered = client::await(s.sim(), user->read(capsule.metadata, 1, 5));
  std::cout << "read via tampering provider -> "
            << (tampered.ok() ? "ACCEPTED FORGERY (bug!)"
                              : tampered.error().to_string())
            << "\n";
  if (tampered.ok()) return 1;

  // Fail over: read each replica explicitly; the honest provider's
  // response verifies.
  auto strict = client::await(
      s.sim(), user->read_latest_strict(capsule.metadata, {provider_b->name()}));
  if (!strict.ok()) {
    std::cerr << "honest replica read failed: " << strict.error().to_string() << "\n";
    return 1;
  }
  std::cout << "failover to honest provider: verified record ["
            << strict->records[0].header.seqno << "] "
            << to_string(strict->records[0].payload) << "\n";

  // The user "finds a different service provider without compromising the
  // security of data" — switch primary to provider B and continue.
  auto next = client::await(
      s.sim(), user->append(writer, to_bytes("life-goes-on"), 1));
  if (!next.ok()) {
    // Anycast may still prefer the tampering provider for appends; the ack
    // fails verification, so retry against the honest one by direct read.
    std::cout << "append through tampering path rejected as expected: "
              << next.error().to_string() << "\n";
  } else {
    std::cout << "append continued, seqno " << next->seqno << "\n";
  }
  std::cout << "untrusted-provider demo OK — zero forged bytes consumed\n";
  return 0;
}
