// Quickstart: the smallest useful Global Data Plane deployment.
//
// One routing domain, one GDP-router, one DataCapsule-server, two clients.
// We create a DataCapsule, append a few signed records, and read them back
// with full end-to-end verification — the reader trusts nothing but the
// capsule's name.
#include <iostream>

#include "harness/scenario.hpp"

using namespace gdp;

int main() {
  std::cout << "== GDP quickstart ==\n";

  // 1. Infrastructure: a domain with its GLookupService, a router, a
  //    storage server, and two clients, all on simulated LAN links.
  harness::Scenario s(/*seed=*/1, "quickstart");
  auto* domain = s.add_domain("example-domain", nullptr);
  auto* router = s.add_router("router-0", domain);
  auto* server = s.add_server("capsule-server-0", router);
  auto* alice = s.add_client("alice", router);   // the writer
  auto* bob = s.add_client("bob", router);       // a reader
  s.attach_all();  // secure advertisement handshakes run here
  std::cout << "server attached: " << std::boolalpha << server->attached()
            << ", router FIB entries: " << router->fib_size() << "\n";

  // 2. A DataCapsule: owner + writer keys, metadata hashed into the name.
  harness::CapsuleSetup capsule =
      harness::make_capsule(s.key_rng(), "alice-notes");
  std::cout << "capsule name (trust anchor): "
            << capsule.metadata.name().short_hex() << "...\n";

  // 3. The owner delegates storage to the server (AdCert) and places it.
  auto placed = harness::place_capsule(s, capsule, *alice, {server});
  if (!placed.ok()) {
    std::cerr << "placement failed: " << placed.to_string() << "\n";
    return 1;
  }

  // 4. Alice appends signed records; acks arrive HMAC-authenticated.
  capsule::Writer writer = capsule.make_writer();
  for (const char* note : {"note one", "note two", "note three"}) {
    auto outcome = client::await(s.sim(), alice->append(writer, to_bytes(note)));
    if (!outcome.ok()) {
      std::cerr << "append failed: " << outcome.error().to_string() << "\n";
      return 1;
    }
    std::cout << "appended seqno " << outcome->seqno
              << " (ack via " << (outcome->via_hmac ? "HMAC session" : "signature")
              << ")\n";
  }

  // 5. Bob reads the full range. The response carries a range proof the
  //    client verifies against the writer key from the capsule metadata.
  auto read = client::await(s.sim(), bob->read(capsule.metadata, 1, 3));
  if (!read.ok()) {
    std::cerr << "read failed: " << read.error().to_string() << "\n";
    return 1;
  }
  std::cout << "bob read " << read->records.size()
            << " verified records (heartbeat seqno " << read->heartbeat.seqno
            << "):\n";
  for (const auto& rec : read->records) {
    std::cout << "  [" << rec.header.seqno << "] " << to_string(rec.payload)
              << "\n";
  }
  std::cout << "quickstart OK\n";
  return 0;
}
