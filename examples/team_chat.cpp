// Team chat: multiple writers through a serializing commit service
// (§VI-A) plus live subscription.
//
// A DataCapsule has exactly one writer — so a chat room is built the way
// the paper prescribes: a commit service holds the room capsule's writer
// key, participants *propose* messages to its flat name, and the service
// serializes them into the capsule.  Every message remains attributable
// to its proposer (their client identity is stamped into the record), the
// room history is totally ordered, tamper-evident, and replayable by
// latecomers.
#include <iostream>

#include "caapi/commit.hpp"
#include "harness/scenario.hpp"

using namespace gdp;

int main() {
  std::cout << "== GDP team chat (multi-writer via commit service) ==\n";
  harness::Scenario s(/*seed=*/33, "chat");
  auto* g = s.add_domain("office", nullptr);
  auto* r = s.add_router("router", g);
  auto* srv = s.add_server("storage", r);
  auto* svc_client = s.add_client("room-service", r);
  auto* ann = s.add_client("ann", r);
  auto* ben = s.add_client("ben", r);
  auto* cyd = s.add_client("cyd", r);
  s.attach_all();

  // The room capsule, owned and written by the commit service.
  harness::CapsuleSetup room = harness::make_capsule(s.key_rng(), "room:#general");
  if (!harness::place_capsule(s, room, *svc_client, {srv}).ok()) return 1;
  capsule::Metadata room_meta = room.metadata;
  caapi::CommitService service(s, *svc_client, std::move(room));
  std::cout << "room capsule " << room_meta.name().short_hex()
            << "... hosted; commit service at "
            << service.service_name().short_hex() << "...\n";

  // Everyone proposes concurrently.
  caapi::Proposer ann_p(s, *ann), ben_p(s, *ben), cyd_p(s, *cyd);
  struct Msg {
    caapi::Proposer* who;
    const char* text;
  };
  std::vector<Msg> lines = {
      {&ann_p, "morning all"},
      {&ben_p, "hey ann"},
      {&cyd_p, "capsule migration done, reads now hit the edge box"},
      {&ann_p, "latency numbers?"},
      {&cyd_p, "10ms, down from 210"},
      {&ben_p, "ship it"},
  };
  std::vector<client::OpPtr<std::uint64_t>> ops;
  for (const Msg& m : lines) {
    ops.push_back(m.who->propose(service.service_name(), to_bytes(m.text)));
  }
  s.settle();
  for (auto& op : ops) {
    auto seqno = client::await(s.sim(), op);
    if (!seqno.ok()) {
      std::cerr << "proposal failed: " << seqno.error().to_string() << "\n";
      return 1;
    }
  }
  std::cout << "6 messages from 3 writers serialized into "
            << service.proposals_committed() << " records\n\n";

  // A latecomer replays the whole room — verified, ordered, attributed.
  auto* dee = s.add_client("dee", r);
  s.attach_all();
  auto history = client::await(
      s.sim(), dee->read(room_meta, 1, service.proposals_committed()));
  if (!history.ok()) {
    std::cerr << "replay failed: " << history.error().to_string() << "\n";
    return 1;
  }
  auto who = [&](const Name& n) -> std::string {
    if (n == ann->name()) return "ann";
    if (n == ben->name()) return "ben";
    if (n == cyd->name()) return "cyd";
    return n.short_hex();
  };
  for (const auto& rec : history->records) {
    auto decoded = caapi::CommitService::decode_committed(rec.payload);
    if (!decoded.ok()) return 1;
    std::cout << "  [" << rec.header.seqno << "] <" << who(decoded->first)
              << "> " << to_string(decoded->second) << "\n";
  }
  std::cout << "\nteam chat OK — single-writer capsule, many attributable voices\n";
  return 0;
}
