// End-to-end integration tests: full GDP deployments — routing domains,
// GLookupService hierarchy, secure advertisement, capsule placement,
// verified appends/reads/subscriptions, replication, durability modes, and
// the §IV-C threat model exercised by in-path adversaries.
#include <gtest/gtest.h>

#include "capsule/strategy.hpp"
#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

TEST(Integration, SingleDomainEndToEnd) {
  Scenario s(1, "e2e");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  auto* reader_client = s.add_client("reader", r1);
  s.attach_all();
  ASSERT_TRUE(srv->attached());
  ASSERT_TRUE(writer_client->attached());

  CapsuleSetup setup = make_capsule(s.key_rng(), "sensor-log");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());
  ASSERT_TRUE(srv->hosts(setup.metadata.name()));

  capsule::Writer writer = setup.make_writer();
  for (int i = 0; i < 10; ++i) {
    auto op = writer_client->append(writer, to_bytes("reading-" + std::to_string(i)));
    auto outcome = await(s.sim(), op);
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    EXPECT_EQ(outcome->seqno, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(outcome->acks, 1u);
  }

  // Range read, fully verified against the capsule name.
  auto read_op = reader_client->read(setup.metadata, 3, 7);
  auto read = await(s.sim(), read_op);
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  ASSERT_EQ(read->records.size(), 5u);
  EXPECT_EQ(to_string(read->records[0].payload), "reading-2");
  EXPECT_EQ(read->heartbeat.seqno, 10u);

  // Latest.
  auto latest = await(s.sim(), reader_client->read_latest(setup.metadata));
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(latest->records.size(), 1u);
  EXPECT_EQ(to_string(latest->records[0].payload), "reading-9");
  EXPECT_EQ(srv->appends_accepted(), 10u);
}

TEST(Integration, SessionSwitchesToHmacSteadyState) {
  Scenario s(2, "hmac");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "hmac-capsule");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());

  capsule::Writer writer = setup.make_writer();
  auto first = await(s.sim(), writer_client->append(writer, to_bytes("a")));
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_TRUE(first->via_hmac);  // evidence rode along on first contact
  EXPECT_TRUE(writer_client->knows_server(srv->name()));

  auto second = await(s.sim(), writer_client->append(writer, to_bytes("b")));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->via_hmac);
  // Steady-state ack sheds the principal + delegation evidence.
  EXPECT_LT(second->ack_bytes, first->ack_bytes / 2);
}

TEST(Integration, SessionlessModeUsesSignatures) {
  Scenario s(3, "sig");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  client::GdpClient::Options opts;
  opts.use_sessions = false;
  auto* writer_client = s.add_client("writer", r1, net::LinkParams::lan(), opts);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "sig-capsule");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());

  capsule::Writer writer = setup.make_writer();
  for (int i = 0; i < 2; ++i) {
    auto outcome = await(s.sim(), writer_client->append(writer, to_bytes("x")));
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    EXPECT_FALSE(outcome->via_hmac);
  }
}

TEST(Integration, CrossDomainLookupEscalates) {
  Scenario s(4, "xdomain");
  auto* global = s.add_domain("global", nullptr);
  auto* dom_a = s.add_domain("domain-a", global);
  auto* dom_b = s.add_domain("domain-b", global);
  auto* ra = s.add_router("ra", dom_a);
  auto* rb = s.add_router("rb", dom_b);
  s.link_routers(ra, rb, net::LinkParams::wan(30));
  auto* srv = s.add_server("srv-b", rb);
  auto* client_a = s.add_client("client-a", ra);
  auto* writer_b = s.add_client("writer-b", rb);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "remote-capsule");
  ASSERT_TRUE(place_capsule(s, setup, *writer_b, {srv}).ok());
  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(await(s.sim(), writer_b->append(writer, to_bytes("hello"))).ok());

  // The reader sits in a different domain; resolution must escalate
  // through the parent GLookupService.
  auto read = await(s.sim(), client_a->read_latest(setup.metadata));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(to_string(read->records[0].payload), "hello");
  EXPECT_GT(dom_a->queries_escalated(), 0u);
}

TEST(Integration, PlacementPolicyBlocksOutsideDomain) {
  Scenario s(5, "policy");
  auto* global = s.add_domain("global", nullptr);
  auto* dom_a = s.add_domain("domain-a", global);
  auto* dom_b = s.add_domain("domain-b", global);
  auto* ra = s.add_router("ra", dom_a);
  auto* rb = s.add_router("rb", dom_b);
  s.link_routers(ra, rb, net::LinkParams::wan(30));
  auto* srv = s.add_server("srv-b", rb);
  auto* outsider = s.add_client("outsider-a", ra);
  auto* insider = s.add_client("insider-b", rb);
  s.attach_all();

  // The owner restricts the capsule to domain B (the factory floor stays
  // on the factory floor — §IX).
  CapsuleSetup setup = make_capsule(s.key_rng(), "restricted-capsule");
  ASSERT_TRUE(
      place_capsule(s, setup, *insider, {srv}, {dom_b->domain()}).ok());
  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(await(s.sim(), insider->append(writer, to_bytes("secret"))).ok());

  // Inside the domain: fine.
  auto inside_read = await(s.sim(), insider->read_latest(setup.metadata));
  ASSERT_TRUE(inside_read.ok()) << inside_read.error().to_string();

  // Outside: the name never resolves (the entry is not propagated to the
  // global service and resolution refuses foreign-domain routers).  The
  // await condition pins down *which* failure shape ended the wait: the
  // client's per-op guard timer fired (the request was sent and never
  // answered), not a drained network.
  client::AwaitCondition cond;
  auto outside_read =
      await(s.sim(), outsider->read_latest(setup.metadata), &cond);
  EXPECT_FALSE(outside_read.ok());
  EXPECT_EQ(outside_read.code(), Errc::kUnavailable);
  EXPECT_EQ(cond, client::AwaitCondition::kOpTimeout);
}

TEST(Integration, AnycastReachesAReplicaAndReplicasConverge) {
  Scenario s(6, "replicas");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* r2 = s.add_router("r2", global);
  s.link_routers(r1, r2, net::LinkParams::wan(10));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "replicated");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv1, srv2}).ok());

  capsule::Writer writer = setup.make_writer();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(await(s.sim(), writer_client->append(writer, to_bytes("r"))).ok());
  }
  // Fast-path appends ack locally and propagate in the background.
  s.settle();
  const auto* store1 = srv1->storage().find(setup.metadata.name());
  const auto* store2 = srv2->storage().find(setup.metadata.name());
  ASSERT_NE(store1, nullptr);
  ASSERT_NE(store2, nullptr);
  EXPECT_EQ(store1->state().size(), 5u);
  EXPECT_EQ(store2->state().size(), 5u);
  EXPECT_EQ(store1->state().tip_hash(), store2->state().tip_hash());
}

TEST(Integration, AntiEntropyRepairsMissedRecords) {
  Scenario s(7, "antientropy");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* r2 = s.add_router("r2", global);
  s.link_routers(r1, r2, net::LinkParams::wan(10));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "healed");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv1, srv2}).ok());

  // Black-hole the replication path while appending: srv2 misses records.
  s.net().set_interceptor(r1->name(), r2->name(),
                          [](const wire::Pdu&) { return std::nullopt; });
  capsule::Writer writer = setup.make_writer();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(await(s.sim(), writer_client->append(writer, to_bytes("x"))).ok());
  }
  s.settle();
  const auto* store2 = srv2->storage().find(setup.metadata.name());
  EXPECT_EQ(store2->state().size(), 0u);

  // Heal the link; one anti-entropy round fetches everything.
  s.net().clear_interceptor(r1->name(), r2->name());
  srv2->anti_entropy_round();
  s.settle();
  EXPECT_EQ(store2->state().size(), 4u);
  const auto* store1 = srv1->storage().find(setup.metadata.name());
  EXPECT_EQ(store1->state().tip_hash(), store2->state().tip_hash());
}

TEST(Integration, DurabilityModeWaitsForReplicaAcks) {
  Scenario s(8, "durability");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r1);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "durable");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv1, srv2}).ok());

  capsule::Writer writer = setup.make_writer();
  auto outcome = await(s.sim(), writer_client->append(writer, to_bytes("precious"), 2));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_GE(outcome->acks, 2u);
  // Both replicas must genuinely hold the record already.
  EXPECT_EQ(srv1->storage().find(setup.metadata.name())->state().size(), 1u);
  EXPECT_EQ(srv2->storage().find(setup.metadata.name())->state().size(), 1u);
}

TEST(Integration, DurabilityFailsWhenReplicaDown) {
  Scenario s(9, "durfail");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r1);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "undurable");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv1, srv2}).ok());

  s.net().detach(srv2->name());  // replica crash
  capsule::Writer writer = setup.make_writer();
  auto outcome = await(s.sim(), writer_client->append(writer, to_bytes("x"), 2));
  // The ack must *not* claim durability that was never achieved.
  EXPECT_FALSE(outcome.ok());
}

TEST(Integration, SubscriptionDeliversVerifiedEvents) {
  Scenario s(10, "pubsub");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  auto* subscriber = s.add_client("subscriber", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "feed");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());

  std::vector<std::string> events;
  trust::Cert sub_cert = setup.sub_cert_for(subscriber->name(), s.sim().now(),
                                            s.sim().now() + from_seconds(3600));
  auto sub_op = subscriber->subscribe(
      setup.metadata, sub_cert,
      [&](const capsule::Record& rec, const capsule::Heartbeat&) {
        events.push_back(to_string(rec.payload));
      });
  auto subscribed = await(s.sim(), sub_op);
  ASSERT_TRUE(subscribed.ok()) << subscribed.error().to_string();
  EXPECT_EQ(srv->subscriber_count(setup.metadata.name()), 1u);

  capsule::Writer writer = setup.make_writer();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        await(s.sim(), writer_client->append(writer, to_bytes("evt-" + std::to_string(i))))
            .ok());
  }
  s.settle();
  EXPECT_EQ(events, (std::vector<std::string>{"evt-0", "evt-1", "evt-2"}));
}

TEST(Integration, SubscriptionWithoutCertRejected) {
  Scenario s(11, "subdeny");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  auto* eve = s.add_client("eve", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "private-feed");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());

  // Eve presents a cert granted to someone else.
  trust::Cert someone_elses = setup.sub_cert_for(writer_client->name(), s.sim().now(),
                                                 s.sim().now() + from_seconds(3600));
  auto denied = await(s.sim(), eve->subscribe(setup.metadata, someone_elses,
                                              [](const auto&, const auto&) {}));
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(srv->subscriber_count(setup.metadata.name()), 0u);
}

TEST(Integration, InTransitTamperingDetected) {
  Scenario s(12, "tamper");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  auto* reader_client = s.add_client("reader", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "tampered-path");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());
  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(await(s.sim(), writer_client->append(writer, to_bytes("clean"))).ok());

  // Adversary on the server->router link flips a byte in every response
  // payload (read proofs, acks, ...).
  s.net().set_interceptor(srv->name(), r1->name(),
                          [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            wire::Pdu bad = pdu;
                            if (!bad.payload.empty()) {
                              bad.payload[bad.payload.size() / 2] ^= 0x01;
                            }
                            return bad;
                          });
  auto read = await(s.sim(), reader_client->read_latest(setup.metadata));
  EXPECT_FALSE(read.ok());  // detected, not silently consumed

  // And tampering the append path: the server must reject the record.
  s.net().clear_interceptor(srv->name(), r1->name());
  s.net().set_interceptor(r1->name(), srv->name(),
                          [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            wire::Pdu bad = pdu;
                            if (bad.type == wire::MsgType::kAppend &&
                                bad.payload.size() > 48) {
                              bad.payload[40] ^= 0x01;  // inside the record
                            }
                            return bad;
                          });
  const std::uint64_t rejected_before = srv->appends_rejected();
  auto append = await(s.sim(), writer_client->append(writer, to_bytes("dirty")));
  EXPECT_FALSE(append.ok());
  EXPECT_GT(srv->appends_rejected() + /*unparseable count*/ 1, rejected_before);
}

TEST(Integration, ReplayedPdusAreHarmless) {
  Scenario s(13, "replay");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* srv = s.add_server("srv", r1);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "replayed");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());

  // Adversary records the first append PDU and replays it later.
  auto* net = &s.net();
  auto* sim = &s.sim();
  Name from = r1->name();
  Name to = srv->name();
  auto replayed = std::make_shared<bool>(false);
  s.net().set_interceptor(
      from, to,
      [net, sim, from, to, replayed](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (!*replayed && pdu.type == wire::MsgType::kAppend) {
          *replayed = true;
          wire::Pdu copy = pdu;
          sim->schedule(from_millis(1), [net, from, to, copy]() mutable {
            net->send(from, to, std::move(copy));
          });
        }
        return pdu;
      });

  capsule::Writer writer = setup.make_writer();
  auto outcome = await(s.sim(), writer_client->append(writer, to_bytes("once")));
  ASSERT_TRUE(outcome.ok());
  s.settle();
  // The duplicate append is idempotent: exactly one record exists.
  EXPECT_EQ(srv->storage().find(setup.metadata.name())->state().size(), 1u);
}

TEST(Integration, NameSquattingRejectedAtAdvertisement) {
  Scenario s(14, "squat");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* honest = s.add_server("honest", r1);
  auto* mallory = s.add_server("mallory", r1);
  auto* writer_client = s.add_client("writer", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "squatted");
  // Only the honest server gets a delegation.
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {honest}).ok());

  // Mallory fabricates an advertisement for the same capsule: she has the
  // metadata (it is public) but cannot produce an owner-signed AdCert.
  Rng mallory_rng(666);
  auto mallory_owner = crypto::PrivateKey::generate(mallory_rng);
  trust::Advertisement fake;
  fake.advertised = setup.metadata.name();
  fake.capsule_metadata = setup.metadata.serialize();
  fake.expires_ns = (s.sim().now() + from_seconds(3600)).count();
  fake.delegation.ad_cert = trust::make_ad_cert(
      mallory_owner, mallory_owner.public_key().fingerprint(),
      setup.metadata.name(), mallory->principal().name(), s.sim().now(),
      s.sim().now() + from_seconds(3600));
  const std::uint64_t rejected_before = r1->advertisements_rejected();
  mallory->advertise(r1->name(), {trust::Catalog::encode_advertisement(fake)});
  s.settle();
  EXPECT_GT(r1->advertisements_rejected(), rejected_before);

  // Traffic still routes to the honest replica.
  capsule::Writer writer = setup.make_writer();
  auto outcome = await(s.sim(), writer_client->append(writer, to_bytes("safe")));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(honest->storage().find(setup.metadata.name())->state().size(), 1u);
  EXPECT_FALSE(mallory->hosts(setup.metadata.name()));
}

TEST(Integration, StrictReadReturnsFreshestReplica) {
  Scenario s(15, "strict");
  auto* global = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", global);
  auto* r2 = s.add_router("r2", global);
  s.link_routers(r1, r2, net::LinkParams::wan(10));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* writer_client = s.add_client("writer", r1);
  auto* reader_client = s.add_client("reader", r2);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "strictly-read");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv1, srv2}).ok());

  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(await(s.sim(), writer_client->append(writer, to_bytes("v1"))).ok());
  s.settle();  // both replicas at seqno 1

  // Cut replication; the next append lands only on srv1 — srv2 is stale.
  s.net().set_interceptor(r1->name(), r2->name(),
                          [](const wire::Pdu&) { return std::nullopt; });
  ASSERT_TRUE(await(s.sim(), writer_client->append(writer, to_bytes("v2"))).ok());

  // An anycast read from r2 hits the stale replica: sequential consistency.
  auto stale = await(s.sim(), reader_client->read_latest(setup.metadata));
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(to_string(stale->records[0].payload), "v1");

  // Strict read consults every replica and returns the freshest state.
  s.net().clear_interceptor(r1->name(), r2->name());
  auto strict = await(s.sim(), reader_client->read_latest_strict(
                                   setup.metadata, {srv1->name(), srv2->name()}));
  ASSERT_TRUE(strict.ok()) << strict.error().to_string();
  EXPECT_EQ(to_string(strict->records[0].payload), "v2");
  EXPECT_EQ(strict->heartbeat.seqno, 2u);

  // With a replica down, the strict read refuses to answer (§VI-C: "such
  // a reader must block if any single replica is unavailable").
  s.net().detach(srv1->name());
  auto blocked = await(s.sim(), reader_client->read_latest_strict(
                                    setup.metadata, {srv1->name(), srv2->name()}));
  EXPECT_FALSE(blocked.ok());
}

TEST(Integration, CapsuleConfinedToPrivateInfrastructure) {
  // "Power users can set up their own private infrastructure ... and still
  // enjoy the benefits of a common platform" (§IX).
  Scenario s(16, "private");
  auto* global = s.add_domain("global", nullptr);
  auto* factory = s.add_domain("factory", global);
  auto* rf = s.add_router("rf", factory);
  auto* rg = s.add_router("rg", global);
  s.link_routers(rf, rg, net::LinkParams::wan(5));
  auto* srv = s.add_server("factory-srv", rf);
  auto* robot = s.add_client("robot", rf);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "episode-history");
  ASSERT_TRUE(place_capsule(s, setup, *robot, {srv}, {factory->domain()}).ok());
  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(await(s.sim(), robot->append(writer, to_bytes("grasp-episode"))).ok());
  auto read = await(s.sim(), robot->read_latest(setup.metadata));
  ASSERT_TRUE(read.ok());
  // The restricted entry never propagated to the global service.
  EXPECT_EQ(global->lookup_local(setup.metadata.name()).size(), 0u);
  EXPECT_EQ(factory->lookup_local(setup.metadata.name()).size(), 1u);
}

TEST(Chaos, FlapAndLostLookupStillDeliverEverything) {
  // Acceptance scenario for fault-tolerant route maintenance: the control
  // plane eats the first lookup reply AND the primary replica's access
  // link flaps mid-transfer.  Every client append and the final read must
  // still land (retry + anycast failover + recovery re-advertisement),
  // with no PDUs left parked behind dead lookups — and the whole failure
  // run replays byte-identically.
  auto run = [] {
    Scenario s(90, "chaos-e2e");
    auto* root = s.add_domain("global", nullptr);
    auto* r1 = s.add_router("r1", root);
    auto* r2 = s.add_router("r2", root);
    s.link_routers(r1, r2, net::LinkParams::wan(5));
    auto* primary = s.add_server("primary", r1);
    auto* backup = s.add_server("backup", r2);
    auto* cli = s.add_client("cli", r1);
    s.attach_all();
    CapsuleSetup cap = make_capsule(s.key_rng(), "chaos-log");
    EXPECT_TRUE(place_capsule(s, cap, *cli, {primary, backup}).ok());

    int dropped = 0;
    s.net().set_interceptor(root->name(), r1->name(),
                            [&](const wire::Pdu& p) -> std::optional<wire::Pdu> {
                              if (p.type == wire::MsgType::kLookupReply &&
                                  dropped == 0) {
                                ++dropped;
                                return std::nullopt;
                              }
                              return p;
                            });
    capsule::Writer w = cap.make_writer();
    int delivered = 0;
    auto append = [&](int i) {
      auto op = await(s.sim(), cli->append(w, to_bytes("m-" + std::to_string(i))));
      EXPECT_TRUE(op.ok()) << "append " << i << ": " << op.error().to_string();
      if (op.ok()) ++delivered;
    };
    for (int i = 0; i < 3; ++i) append(i);
    s.settle();  // replication catches the backup up to seqno 3

    // Mid-transfer failure: the primary's access link goes dark.  Its
    // router withdraws the routes; the next lookup fails over to the
    // surviving replica — after the retry recovers the eaten reply.
    s.set_link_down(primary->name(), r1->name());
    for (int i = 3; i < 6; ++i) append(i);
    EXPECT_GE(backup->appends_accepted(), 3u);

    // Recovery: carrier returns, the server re-runs the secure
    // advertisement handshake unprompted and heals its replica via
    // anti-entropy; traffic homes back to the near replica.
    s.set_link_up(primary->name(), r1->name());
    s.settle();
    EXPECT_TRUE(primary->attached());
    primary->anti_entropy_round();
    s.settle();
    for (int i = 6; i < 8; ++i) append(i);

    auto read = await(s.sim(), cli->read_latest(cap.metadata));
    EXPECT_TRUE(read.ok()) << read.error().to_string();
    if (read.ok()) {
      EXPECT_EQ(to_string(read->records[0].payload), "m-7");
    }
    // 100% delivery, zero leaked queue entries, zero dangling lookups.
    EXPECT_EQ(delivered, 8);
    EXPECT_EQ(dropped, 1);
    EXPECT_GE(r1->lookup_retries(), 1u);
    EXPECT_EQ(r1->awaiting_route_count(), 0u);
    EXPECT_EQ(r2->awaiting_route_count(), 0u);
    EXPECT_EQ(r1->pending_lookup_count(), 0u);
    EXPECT_EQ(r2->pending_lookup_count(), 0u);

    const std::string json = s.stats_json();
    for (const char* key :
         {"router.r1.lookup.retries", "router.r1.lookup.timeouts",
          "router.r1.fib.expired", "router.r1.drop.queue_full",
          "router.r1.drop.lookup_timeout", "router.r1.neighbor.down_events",
          "router.r1.neighbor.up_events", "net.drop.link_down",
          "net.link.down_events", "net.link.up_events"}) {
      EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
          << "missing series: " << key;
    }
    EXPECT_NE(json.find("\"net.link.down_events\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"net.link.up_events\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"router.r1.neighbor.down_events\": 1"),
              std::string::npos);
    return std::make_pair(json, s.trace_json());
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace gdp
