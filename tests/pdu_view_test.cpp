// PduView: the zero-copy wire path.  Differential coverage against the
// owned Pdu codec over random and truncated frames, copy-on-write patch
// semantics, and the allocation/copy gauges that prove a forwarded PDU's
// payload is never copied per hop.
#include "wire/pdu_view.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "common/buffer.hpp"
#include "wire/pdu.hpp"

namespace gdp::wire {
namespace {

Name name_of(std::uint8_t fill) {
  std::array<std::uint8_t, Name::kSize> raw;
  raw.fill(fill);
  return Name(raw);
}

Pdu make_pdu(std::size_t payload_size) {
  Pdu pdu;
  pdu.dst = name_of(0xD5);
  pdu.src = name_of(0x50);
  pdu.type = MsgType::kBenchData;
  pdu.flow_id = 0x1122334455667788ull;
  pdu.trace_id = 0xAABBCCDDEEFF0011ull;
  pdu.ttl = 17;
  pdu.payload.assign(payload_size, 0xAB);
  for (std::size_t i = 0; i < payload_size; ++i) {
    pdu.payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return pdu;
}

SegRef seg_from(BytesView frame) {
  SegRef seg = SegmentPool::instance().acquire(frame.size());
  std::memcpy(seg->data(), frame.data(), frame.size());
  seg->set_size(frame.size());
  return seg;
}

TEST(PduView, BuildDecodesEveryHeaderField) {
  const Pdu pdu = make_pdu(257);
  PduView view = PduView::build(pdu);
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.dst(), pdu.dst);
  EXPECT_EQ(view.src(), pdu.src);
  EXPECT_EQ(view.type(), pdu.type);
  EXPECT_EQ(view.flow_id(), pdu.flow_id);
  EXPECT_EQ(view.trace_id(), pdu.trace_id);
  EXPECT_EQ(view.ttl(), pdu.ttl);
  EXPECT_EQ(view.wire_size(), pdu.wire_size());
  ASSERT_EQ(view.payload().size(), pdu.payload.size());
  EXPECT_EQ(0, std::memcmp(view.payload().data(), pdu.payload.data(),
                           pdu.payload.size()));
}

TEST(PduView, BuildBytesMatchSerializeExactly) {
  for (std::size_t size : {0u, 1u, 87u, 4096u}) {
    const Pdu pdu = make_pdu(size);
    const Bytes wire = pdu.serialize();
    PduView view = PduView::build(pdu);
    ASSERT_EQ(view.wire_size(), wire.size());
    EXPECT_EQ(0, std::memcmp(view.wire().data(), wire.data(), wire.size()));
  }
}

TEST(PduView, MaterializeRoundTripsThroughDeserialize) {
  const Pdu pdu = make_pdu(333);
  PduView view = PduView::build(pdu);
  const Pdu back = view.materialize();
  EXPECT_EQ(back.dst, pdu.dst);
  EXPECT_EQ(back.src, pdu.src);
  EXPECT_EQ(back.type, pdu.type);
  EXPECT_EQ(back.flow_id, pdu.flow_id);
  EXPECT_EQ(back.trace_id, pdu.trace_id);
  EXPECT_EQ(back.ttl, pdu.ttl);
  EXPECT_EQ(back.payload, pdu.payload);
}

// Differential: for random frames, parse() accepts exactly when the frame
// is structurally well-formed, and the decoded fields agree byte-for-byte
// with Pdu::deserialize wherever both accept.  parse() is framing-only by
// design, so it may accept frames deserialize rejects (unknown MsgType) —
// never the other way around.
TEST(PduView, DifferentialAgainstDeserializeOnRandomFrames) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng() % 300);
    Bytes frame(len);
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng());
    auto owned = Pdu::deserialize(frame);
    auto viewed = PduView::parse(seg_from(frame));
    if (owned.ok()) {
      ASSERT_TRUE(viewed.ok()) << "view rejected a frame deserialize accepts "
                               << "(len=" << len << ")";
      EXPECT_EQ(viewed->dst(), owned->dst);
      EXPECT_EQ(viewed->src(), owned->src);
      EXPECT_EQ(viewed->type(), owned->type);
      EXPECT_EQ(viewed->flow_id(), owned->flow_id);
      EXPECT_EQ(viewed->trace_id(), owned->trace_id);
      EXPECT_EQ(viewed->ttl(), owned->ttl);
      ASSERT_EQ(viewed->payload().size(), owned->payload.size());
      if (!owned->payload.empty()) {
        EXPECT_EQ(0, std::memcmp(viewed->payload().data(), owned->payload.data(),
                                 owned->payload.size()));
      }
    }
  }
}

// Truncation sweep: a valid frame cut at every length must be rejected by
// both codecs (except the full length, accepted by both).
TEST(PduView, DifferentialTruncationSweep) {
  const Pdu pdu = make_pdu(64);
  const Bytes wire = pdu.serialize();
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    BytesView prefix(wire.data(), cut);
    auto owned = Pdu::deserialize(prefix);
    auto viewed = PduView::parse(seg_from(prefix));
    if (cut == wire.size()) {
      EXPECT_TRUE(owned.ok());
      EXPECT_TRUE(viewed.ok());
    } else {
      EXPECT_FALSE(owned.ok()) << "cut=" << cut;
      EXPECT_FALSE(viewed.ok()) << "cut=" << cut;
    }
  }
}

// Overlong buffers (trailing garbage after the declared payload) are
// malformed frames for both codecs.
TEST(PduView, TrailingGarbageRejected) {
  const Pdu pdu = make_pdu(16);
  Bytes wire = pdu.serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(Pdu::deserialize(wire).ok());
  EXPECT_FALSE(PduView::parse(seg_from(wire)).ok());
}

TEST(PduView, PatchTtlInPlaceWhenUnique) {
  PduView view = PduView::build(make_pdu(100));
  ASSERT_EQ(view.seg()->refcount(), 1u);
  const std::uint8_t* before = view.wire().data();
  view.dec_ttl();
  EXPECT_EQ(view.ttl(), 16);
  // Unique segment: patched in place, no reallocation.
  EXPECT_EQ(view.wire().data(), before);
}

TEST(PduView, PatchCopiesWhenShared) {
  PduView a = PduView::build(make_pdu(100));
  PduView b = a.clone();
  // clone() is an independent frame already.
  EXPECT_NE(a.wire().data(), b.wire().data());

  PduView c = a;  // share the segment
  EXPECT_EQ(a.wire().data(), c.wire().data());
  EXPECT_EQ(a.seg()->refcount(), 2u);
  c.dec_ttl();
  // Copy-on-write: c took its own segment, a's bytes are untouched.
  EXPECT_NE(a.wire().data(), c.wire().data());
  EXPECT_EQ(a.ttl(), 17);
  EXPECT_EQ(c.ttl(), 16);
  EXPECT_EQ(a.seg()->refcount(), 1u);
}

TEST(PduView, PatchTraceIdRewritesOnlyThatField) {
  PduView view = PduView::build(make_pdu(50));
  const Pdu before = view.materialize();
  view.patch_trace_id(0x0123456789ABCDEFull);
  const Pdu after = view.materialize();
  EXPECT_EQ(after.trace_id, 0x0123456789ABCDEFull);
  EXPECT_EQ(after.dst, before.dst);
  EXPECT_EQ(after.src, before.src);
  EXPECT_EQ(after.flow_id, before.flow_id);
  EXPECT_EQ(after.ttl, before.ttl);
  EXPECT_EQ(after.payload, before.payload);
}

// The gauge contract the fig6 --check gate builds on: a hop that only
// patches the TTL of a uniquely-held frame copies zero payload bytes and
// allocates nothing (the segment is reused from the pool's freelist).
TEST(PduView, ForwardPatchCopiesNothing) {
  PduView view = PduView::build(make_pdu(4096));
  const auto before = BufferStats::snapshot();
  for (int hop = 0; hop < 10; ++hop) view.dec_ttl();
  const auto after = BufferStats::snapshot();
  EXPECT_EQ(after.bytes_copied, before.bytes_copied);
  EXPECT_EQ(after.segment_allocs, before.segment_allocs);
  EXPECT_EQ(view.ttl(), 7);
}

TEST(PduView, SegmentReturnsToPoolAndIsReused) {
  // Warm the pool, note the segment, drop it, re-acquire: same class hits
  // the freelist (segment_reuses advances, segment_allocs does not).
  { PduView warm = PduView::build(make_pdu(1000)); }
  const auto before = BufferStats::snapshot();
  { PduView view = PduView::build(make_pdu(1000)); }
  const auto after = BufferStats::snapshot();
  EXPECT_EQ(after.segment_allocs, before.segment_allocs);
  EXPECT_GT(after.segment_reuses, before.segment_reuses);
  EXPECT_GT(after.segment_releases, before.segment_releases);
}

}  // namespace
}  // namespace gdp::wire
