// System-level property sweeps: randomized topologies, placements and
// workloads, checking the end-to-end invariants the architecture promises:
//   * every verified read succeeds from every client, wherever it sits;
//   * all replicas of a capsule converge (leaderless replication + anti-
//     entropy), even across injected link failures;
//   * strict reads return the freshest replica state.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

struct RandomWorld {
  std::unique_ptr<Scenario> s;
  std::vector<router::GLookupService*> domains;
  std::vector<router::Router*> routers;
  std::vector<server::CapsuleServer*> servers;
  std::vector<client::GdpClient*> clients;

  explicit RandomWorld(std::uint64_t seed) {
    s = std::make_unique<Scenario>(seed, "sysprop");
    Rng rng(seed * 31 + 7);
    auto* root = s->add_domain("root", nullptr);
    domains.push_back(root);
    const int extra_domains = 1 + static_cast<int>(rng.next_below(3));
    for (int d = 0; d < extra_domains; ++d) {
      domains.push_back(s->add_domain("dom" + std::to_string(d), root));
    }
    // One or two routers per domain; chain them to keep connectivity, then
    // sprinkle random extra links.
    for (std::size_t d = 0; d < domains.size(); ++d) {
      const int n = 1 + static_cast<int>(rng.next_below(2));
      for (int i = 0; i < n; ++i) {
        auto* r = s->add_router("r" + std::to_string(d) + "_" + std::to_string(i),
                                domains[d]);
        if (!routers.empty()) {
          s->link_routers(routers[rng.next_below(routers.size())], r,
                          net::LinkParams::wan(1 + static_cast<double>(rng.next_below(50))));
        }
        routers.push_back(r);
      }
    }
    for (int i = 0; i < 3; ++i) {
      auto* a = routers[rng.next_below(routers.size())];
      auto* b = routers[rng.next_below(routers.size())];
      if (a != b && !s->net().adjacent(a->name(), b->name())) {
        s->link_routers(a, b, net::LinkParams::wan(1 + static_cast<double>(rng.next_below(30))));
      }
    }
    const int n_servers = 2 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < n_servers; ++i) {
      servers.push_back(s->add_server("srv" + std::to_string(i),
                                      routers[rng.next_below(routers.size())]));
    }
    const int n_clients = 2 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < n_clients; ++i) {
      clients.push_back(s->add_client("cli" + std::to_string(i),
                                      routers[rng.next_below(routers.size())]));
    }
    s->attach_all();
  }
};

class SystemSweep : public ::testing::TestWithParam<int> {};

TEST_P(SystemSweep, EveryoneReadsEverythingVerified) {
  RandomWorld w(static_cast<std::uint64_t>(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);

  struct Cap {
    CapsuleSetup setup;
    std::unique_ptr<capsule::Writer> writer;
    std::vector<server::CapsuleServer*> replicas;
    int count = 0;
  };
  std::vector<Cap> caps;
  for (int c = 0; c < 2; ++c) {
    Cap cap{make_capsule(w.s->key_rng(), "cap" + std::to_string(c)), nullptr, {}, 0};
    // 1..all replicas, random subset.
    std::size_t n_replicas = 1 + rng.next_below(w.servers.size());
    std::vector<server::CapsuleServer*> pool = w.servers;
    for (std::size_t i = 0; i < n_replicas; ++i) {
      std::size_t pick = rng.next_below(pool.size());
      cap.replicas.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    auto* placer = w.clients[rng.next_below(w.clients.size())];
    ASSERT_TRUE(place_capsule(*w.s, cap.setup, *placer, cap.replicas).ok());
    cap.writer = std::make_unique<capsule::Writer>(cap.setup.make_writer());
    caps.push_back(std::move(cap));
  }

  // Random appends from random clients (any client can carry the writer's
  // records — attribution is by signature, not by transport).
  for (int i = 0; i < 16; ++i) {
    Cap& cap = caps[rng.next_below(caps.size())];
    auto* via = w.clients[rng.next_below(w.clients.size())];
    auto outcome = await(
        w.s->sim(),
        via->append(*cap.writer, rng.next_bytes(1 + rng.next_below(200))));
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    ++cap.count;
  }
  w.s->settle();
  for (auto* srv : w.servers) srv->anti_entropy_round();
  w.s->settle();

  // Invariant 1: replicas converge.
  for (const Cap& cap : caps) {
    const store::CapsuleStore* first = cap.replicas[0]->storage().find(cap.setup.metadata.name());
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->state().size(), static_cast<std::size_t>(cap.count));
    for (auto* srv : cap.replicas) {
      const auto* st = srv->storage().find(cap.setup.metadata.name());
      ASSERT_NE(st, nullptr);
      EXPECT_EQ(st->state().tip_hash(), first->state().tip_hash());
    }
  }

  // Invariant 2: every client everywhere reads everything, verified.
  for (const Cap& cap : caps) {
    if (cap.count == 0) continue;
    for (auto* cli : w.clients) {
      auto read = await(w.s->sim(),
                        cli->read(cap.setup.metadata, 1,
                                  static_cast<std::uint64_t>(cap.count)));
      ASSERT_TRUE(read.ok()) << read.error().to_string();
      EXPECT_EQ(read->records.size(), static_cast<std::size_t>(cap.count));
    }
    // Invariant 3: strict read returns the freshest state.
    std::vector<Name> replica_names;
    for (auto* srv : cap.replicas) replica_names.push_back(srv->name());
    auto strict = await(w.s->sim(),
                        w.clients[0]->read_latest_strict(cap.setup.metadata,
                                                         replica_names));
    ASSERT_TRUE(strict.ok()) << strict.error().to_string();
    EXPECT_EQ(strict->heartbeat.seqno, static_cast<std::uint64_t>(cap.count));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemSweep, ::testing::Values(1, 2, 3, 4, 5));

class ChurnSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSweep, ConvergesDespiteLinkFailures) {
  // Two replicas behind two routers; the inter-router link drops a random
  // fraction of PDUs during the write burst, then heals.  Anti-entropy
  // must converge the replicas regardless.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Scenario s(seed, "churn");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(10));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* writer_c = s.add_client("writer", r1);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "churny");
  ASSERT_TRUE(place_capsule(s, cap, *writer_c, {srv1, srv2}).ok());

  // Lossy replication path: drop ~60% of sync PDUs, in both directions.
  Rng loss_rng(seed * 13 + 1);
  auto lossy = [&loss_rng](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
    if ((pdu.type == wire::MsgType::kSyncPush ||
         pdu.type == wire::MsgType::kSyncPull) &&
        loss_rng.next_bool(0.6)) {
      return std::nullopt;
    }
    return pdu;
  };
  s.net().set_interceptor(r1->name(), r2->name(), lossy);
  s.net().set_interceptor(r2->name(), r1->name(), lossy);

  capsule::Writer w = cap.make_writer();
  constexpr int kRecords = 12;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(await(s.sim(), writer_c->append(w, to_bytes("r" + std::to_string(i)))).ok());
  }
  s.settle();

  // Heal and run anti-entropy until converged (bounded rounds).
  s.net().clear_interceptor(r1->name(), r2->name());
  s.net().clear_interceptor(r2->name(), r1->name());
  const auto* st1 = srv1->storage().find(cap.metadata.name());
  const auto* st2 = srv2->storage().find(cap.metadata.name());
  for (int round = 0; round < 10; ++round) {
    if (st1->state().size() == kRecords && st2->state().size() == kRecords) break;
    srv1->anti_entropy_round();
    srv2->anti_entropy_round();
    s.settle();
  }
  EXPECT_EQ(st1->state().size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(st2->state().size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(st1->state().tip_hash(), st2->state().tip_hash());
  EXPECT_TRUE(st1->state().holes().empty());
  EXPECT_TRUE(st2->state().holes().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep, ::testing::Values(10, 11, 12, 13));

}  // namespace
}  // namespace gdp
