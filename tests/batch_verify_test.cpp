// Adversarial batch-verification suite.
//
// The batch verifier's contract is exact equivalence with serial
// verification: for any batch, the set of rejected indices equals the set
// of entries `verify_digest` would reject, no matter how the forgeries
// are constructed or where they sit.  The differential test checks that
// property over random mixed batches; the adversarial tests pin the
// specific attack shapes (forgery position sweeps, structural garbage,
// duplicate entries, all-forged floods); the harness test checks that a
// batched sync flood is byte-for-byte deterministic end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "harness/scenario.hpp"

namespace gdp {
namespace {

using crypto::BatchVerifier;
using crypto::Digest;
using crypto::PrivateKey;
using crypto::PublicKey;
using crypto::Signature;
using crypto::U256;

Digest digest_of(int i) { return crypto::sha256(to_bytes("msg-" + std::to_string(i))); }

struct TestEntry {
  Digest digest;
  PublicKey key;
  Signature sig;
};

std::vector<std::size_t> serial_verdicts(const std::vector<TestEntry>& batch) {
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].key.verify_digest(batch[i].digest, batch[i].sig)) {
      rejected.push_back(i);
    }
  }
  return rejected;
}

BatchVerifier::Result run_batch(const std::vector<TestEntry>& batch,
                                std::uint64_t seed = 7) {
  BatchVerifier bv(seed);
  bv.reserve(batch.size());
  for (const TestEntry& e : batch) bv.add(e.digest, e.key, e.sig);
  return bv.verify_all();
}

// The core soundness/completeness property: batch verdicts are exactly
// the serial verdicts — same rejected indices, for every batch size and
// forgery mix.
TEST(BatchVerify, DifferentialAgainstSerial) {
  Rng rng(0xB47C);
  std::vector<PrivateKey> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(PrivateKey::generate(rng));

  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.next_u64() % 64;
    std::vector<TestEntry> batch;
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct signers per batch: sync floods carry one writer key,
      // and the verifier coalesces duplicate keys — exercise that path.
      const PrivateKey& signer = keys[rng.next_u64() % keys.size()];
      const Digest d = digest_of(static_cast<int>(trial * 100 + i));
      Signature sig = signer.sign_digest(d);
      if (rng.next_bool(0.25)) {
        switch (rng.next_u64() % 3) {
          case 0:  // signed by a different key
            sig = keys[(rng.next_u64() % (keys.size() - 1) + 1 +
                        (&signer - keys.data())) % keys.size()]
                      .sign_digest(d);
            break;
          case 1:  // signature over a different message
            sig = signer.sign_digest(digest_of(static_cast<int>(9000 + i)));
            break;
          default:  // bit-flipped s
            sig.s.w[0] ^= 1;
            break;
        }
      }
      batch.push_back(TestEntry{d, signer.public_key(), sig});
    }
    const auto expected = serial_verdicts(batch);
    const auto res = run_batch(batch, trial);
    EXPECT_EQ(res.rejected, expected) << "trial " << trial << " n=" << n;
    EXPECT_EQ(res.all_ok(), expected.empty());
  }
}

// One forgery, swept through every position of a batch: bisection must
// isolate exactly that index, accepting every honest entry.
TEST(BatchVerify, SingleForgeryAtEachPosition) {
  Rng rng(11);
  PrivateKey key = PrivateKey::generate(rng);
  PrivateKey other = PrivateKey::generate(rng);
  constexpr std::size_t kN = 16;
  for (std::size_t forged = 0; forged < kN; ++forged) {
    std::vector<TestEntry> batch;
    for (std::size_t i = 0; i < kN; ++i) {
      const Digest d = digest_of(static_cast<int>(i));
      const PrivateKey& signer = (i == forged) ? other : key;
      batch.push_back(TestEntry{d, key.public_key(), signer.sign_digest(d)});
    }
    const auto res = run_batch(batch, forged);
    ASSERT_EQ(res.rejected.size(), 1u) << "forged=" << forged;
    EXPECT_EQ(res.rejected[0], forged);
    // A forgery inside a big batch is found by splitting, not by falling
    // back to per-entry verification of everything.
    EXPECT_GT(res.bisections, 0u);
    EXPECT_GT(res.checks, 1u);
    EXPECT_LT(res.serial_fallbacks, kN);
  }
}

TEST(BatchVerify, AllForged) {
  Rng rng(12);
  PrivateKey key = PrivateKey::generate(rng);
  PrivateKey other = PrivateKey::generate(rng);
  constexpr std::size_t kN = 16;
  std::vector<TestEntry> batch;
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < kN; ++i) {
    const Digest d = digest_of(static_cast<int>(i));
    batch.push_back(TestEntry{d, key.public_key(), other.sign_digest(d)});
    all.push_back(i);
  }
  const auto res = run_batch(batch);
  EXPECT_EQ(res.rejected, all);
  EXPECT_FALSE(res.all_ok());
}

// Duplicate (key, digest) pairs — the shape of a replayed record in a
// sync flood.  Honest duplicates coalesce and pass; a forged duplicate
// pair is rejected at both of its positions.
TEST(BatchVerify, DuplicatePairs) {
  Rng rng(13);
  PrivateKey key = PrivateKey::generate(rng);
  PrivateKey other = PrivateKey::generate(rng);
  const Digest d = digest_of(1);
  const Signature good = key.sign_digest(d);
  const Signature bad = other.sign_digest(d);

  std::vector<TestEntry> batch;
  for (int i = 0; i < 4; ++i) {
    const Digest fill = digest_of(100 + i);
    batch.push_back(TestEntry{fill, key.public_key(), key.sign_digest(fill)});
  }
  batch.push_back(TestEntry{d, key.public_key(), good});  // 4
  batch.push_back(TestEntry{d, key.public_key(), good});  // 5: exact duplicate
  batch.push_back(TestEntry{d, key.public_key(), bad});   // 6
  batch.push_back(TestEntry{d, key.public_key(), bad});   // 7: duplicate forgery
  const auto res = run_batch(batch);
  EXPECT_EQ(res.rejected, (std::vector<std::size_t>{6, 7}));
}

// Structurally broken signatures: swapped (r, s), zero components, and
// components at the curve order.  None of these can enter the linear
// combination; all must be rejected while honest neighbors pass.
TEST(BatchVerify, StructuralGarbageRejected) {
  Rng rng(14);
  PrivateKey key = PrivateKey::generate(rng);
  std::vector<TestEntry> batch;
  for (int i = 0; i < 4; ++i) {  // honest fill keeps the batch path active
    const Digest d = digest_of(i);
    batch.push_back(TestEntry{d, key.public_key(), key.sign_digest(d)});
  }
  const Digest d = digest_of(50);
  const Signature good = key.sign_digest(d);
  const U256 n = crypto::secp_n();
  batch.push_back(TestEntry{d, key.public_key(), Signature{good.s, good.r}});
  batch.push_back(TestEntry{d, key.public_key(), Signature{U256::zero(), good.s}});
  batch.push_back(TestEntry{d, key.public_key(), Signature{good.r, U256::zero()}});
  batch.push_back(TestEntry{d, key.public_key(), Signature{n, good.s}});
  batch.push_back(TestEntry{d, key.public_key(), Signature{good.r, n}});
  const auto res = run_batch(batch);
  EXPECT_EQ(res.rejected, (std::vector<std::size_t>{4, 5, 6, 7, 8}));
  EXPECT_EQ(res.rejected, serial_verdicts(batch));
}

// Batches below kMinBatch settle serially — no multi-scalar checks at
// all — with verdicts identical to verify_digest.
TEST(BatchVerify, SmallBatchesFallBackToSerial) {
  Rng rng(15);
  PrivateKey key = PrivateKey::generate(rng);
  PrivateKey other = PrivateKey::generate(rng);
  for (std::size_t n = 1; n < BatchVerifier::kMinBatch; ++n) {
    std::vector<TestEntry> batch;
    for (std::size_t i = 0; i < n; ++i) {
      const Digest d = digest_of(static_cast<int>(i));
      const PrivateKey& signer = (i == n - 1) ? other : key;
      batch.push_back(TestEntry{d, key.public_key(), signer.sign_digest(d)});
    }
    const auto res = run_batch(batch);
    EXPECT_EQ(res.checks, 0u);
    EXPECT_EQ(res.serial_fallbacks, n);
    EXPECT_EQ(res.rejected, (std::vector<std::size_t>{n - 1}));
  }
}

TEST(BatchVerify, EmptyBatch) {
  BatchVerifier bv(1);
  const auto res = bv.verify_all();
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.checks, 0u);
  EXPECT_EQ(res.serial_fallbacks, 0u);
}

// Same batch, same seed: identical Result, including the bisection path.
TEST(BatchVerify, DeterministicForFixedSeed) {
  Rng rng(16);
  PrivateKey key = PrivateKey::generate(rng);
  PrivateKey other = PrivateKey::generate(rng);
  std::vector<TestEntry> batch;
  for (std::size_t i = 0; i < 32; ++i) {
    const Digest d = digest_of(static_cast<int>(i));
    const PrivateKey& signer = (i == 13 || i == 27) ? other : key;
    batch.push_back(TestEntry{d, key.public_key(), signer.sign_digest(d)});
  }
  const auto a = run_batch(batch, 99);
  const auto b = run_batch(batch, 99);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.bisections, b.bisections);
  EXPECT_EQ(a.serial_fallbacks, b.serial_fallbacks);
}

// End-to-end determinism: a sync flood that takes the batched ingest path
// must leave the whole fabric in a byte-identical state across two runs
// with the same seed — batching must not introduce any run-to-run
// nondeterminism into verdicts, telemetry, or traces.
struct FloodRun {
  std::string stats;
  std::uint64_t batch_accepted = 0;
};

FloodRun run_sync_flood(std::uint64_t seed) {
  using harness::CapsuleSetup;
  using harness::Scenario;
  Scenario s(seed, "batchflood");
  auto* g = s.add_domain("g", nullptr);
  auto* r0 = s.add_router("r0", g);
  auto* r1 = s.add_router("r1", g);
  s.link_routers(r0, r1, net::LinkParams::wan(10));
  auto* srv0 = s.add_server("srv0", r0);
  auto* srv1 = s.add_server("srv1", r1);
  auto* cli = s.add_client("writer", r0);
  s.attach_all();

  CapsuleSetup cap = harness::make_capsule(s.key_rng(), "flooded");
  EXPECT_TRUE(harness::place_capsule(s, cap, *cli, {srv0, srv1}).ok());

  // Block replication entirely during the burst, so the later anti-entropy
  // round delivers all records as one large (batched) sync push.
  auto block = [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
    if (pdu.type == wire::MsgType::kSyncPush ||
        pdu.type == wire::MsgType::kSyncPull) {
      return std::nullopt;
    }
    return pdu;
  };
  s.net().set_interceptor(r0->name(), r1->name(), block);
  s.net().set_interceptor(r1->name(), r0->name(), block);

  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(client::await(s.sim(), cli->append(w, to_bytes("r"))).ok());
  }
  s.settle();

  s.net().clear_interceptor(r0->name(), r1->name());
  s.net().clear_interceptor(r1->name(), r0->name());
  for (int round = 0; round < 4; ++round) {
    srv0->anti_entropy_round();
    srv1->anti_entropy_round();
    s.settle();
  }

  FloodRun out;
  out.stats = s.stats_json();
  out.batch_accepted =
      s.net().metrics().counter("server.srv0.batch.accepted").value() +
      s.net().metrics().counter("server.srv1.batch.accepted").value();
  // Both replicas converged.
  for (auto* srv : {srv0, srv1}) {
    const auto* st = srv->storage().find(cap.metadata.name());
    EXPECT_EQ(st->state().size(), 20u);
  }
  return out;
}

TEST(BatchVerify, SyncFloodIsDeterministic) {
  const FloodRun a = run_sync_flood(0xF10D);
  const FloodRun b = run_sync_flood(0xF10D);
  // The flood actually exercised the batch path...
  EXPECT_GE(a.batch_accepted, 20u);
  // ...and two identical runs dump byte-identical fabric state.
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.batch_accepted, b.batch_accepted);
}

}  // namespace
}  // namespace gdp
