// Tests for the discrete-event simulator, the link layer, and PDU framing.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/sim.hpp"
#include "wire/messages.hpp"
#include "wire/pdu.hpp"

namespace gdp::net {
namespace {

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(from_millis(30), [&] { order.push_back(3); });
  sim.schedule(from_millis(10), [&] { order.push_back(1); });
  sim.schedule(from_millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), from_millis(30));
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(from_millis(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(from_millis(1), [&] {
    ++fired;
    sim.schedule(from_millis(1), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), from_millis(2));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(from_millis(5), [&] { ++fired; });
  sim.schedule(from_millis(15), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(from_millis(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_millis(10));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Pdu, SerializationRoundTrip) {
  wire::Pdu pdu;
  pdu.dst = name_of(1);
  pdu.src = name_of(2);
  pdu.type = wire::MsgType::kRead;
  pdu.flow_id = 0xdeadbeefcafef00dULL;
  pdu.ttl = 7;
  pdu.payload = to_bytes("payload bytes");
  auto back = wire::Pdu::deserialize(pdu.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->dst, pdu.dst);
  EXPECT_EQ(back->src, pdu.src);
  EXPECT_EQ(back->type, pdu.type);
  EXPECT_EQ(back->flow_id, pdu.flow_id);
  EXPECT_EQ(back->ttl, pdu.ttl);
  EXPECT_EQ(back->payload, pdu.payload);
  EXPECT_EQ(pdu.wire_size(), pdu.serialize().size());
}

TEST(Pdu, RejectsTruncatedAndTrailing) {
  wire::Pdu pdu;
  pdu.payload = to_bytes("x");
  Bytes wire = pdu.serialize();
  wire.pop_back();
  EXPECT_FALSE(wire::Pdu::deserialize(wire).ok());
  wire.push_back('x');
  wire.push_back('y');
  EXPECT_FALSE(wire::Pdu::deserialize(wire).ok());
}

TEST(Pdu, RejectsUnknownType) {
  wire::Pdu pdu;
  Bytes wire = pdu.serialize();
  wire[64] = 0xff;  // type low byte
  wire[65] = 0xff;
  EXPECT_FALSE(wire::Pdu::deserialize(wire).ok());
}

class Collector : public PduHandler {
 public:
  void on_pdu(const Name& from, const wire::Pdu& pdu) override {
    received.emplace_back(from, pdu);
  }
  std::vector<std::pair<Name, wire::Pdu>> received;
};

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  Network net(sim);
  Collector a, b;
  net.attach(name_of(1), &a);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams{from_millis(5), 1e9, 0.0});

  wire::Pdu pdu;
  pdu.dst = name_of(2);
  pdu.src = name_of(1);
  pdu.type = wire::MsgType::kBenchData;
  net.send(name_of(1), name_of(2), pdu);
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, name_of(1));
  // latency + (79 bytes * 8 / 1e9) s
  EXPECT_GE(sim.now(), from_millis(5));
  EXPECT_LT(sim.now(), from_millis(6));
}

TEST(Network, BandwidthSerializesTransmissions) {
  Simulator sim;
  Network net(sim);
  Collector b;
  net.attach(name_of(1), &b);
  net.attach(name_of(2), &b);
  // 1 Mbps, zero latency: a 10'000-byte payload takes ~80 ms on the wire.
  net.connect(name_of(1), name_of(2), LinkParams{Duration{0}, 1e6, 0.0});
  for (int i = 0; i < 3; ++i) {
    wire::Pdu pdu;
    pdu.dst = name_of(2);
    pdu.src = name_of(1);
    pdu.type = wire::MsgType::kBenchData;
    pdu.payload = Bytes(10000, 0xaa);
    net.send(name_of(1), name_of(2), pdu);
  }
  sim.run();
  EXPECT_EQ(b.received.size(), 3u);
  // Three back-to-back serializations, not parallel: ~3 * 80 ms.
  double seconds = to_seconds(sim.now());
  EXPECT_NEAR(seconds, 3 * 10079 * 8 / 1e6, 0.01);
}

TEST(Network, LossDropsSomePdus) {
  Simulator sim;
  Network net(sim);
  Collector b;
  net.attach(name_of(1), &b);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams{from_micros(1), 1e9, 0.5});
  for (int i = 0; i < 200; ++i) {
    wire::Pdu pdu;
    pdu.dst = name_of(2);
    pdu.src = name_of(1);
    pdu.type = wire::MsgType::kBenchData;
    net.send(name_of(1), name_of(2), pdu);
  }
  sim.run();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
  EXPECT_EQ(b.received.size() + net.pdus_dropped(), 200u);
}

TEST(Network, SendToNonNeighborDropped) {
  Simulator sim;
  Network net(sim);
  Collector a;
  net.attach(name_of(1), &a);
  net.attach(name_of(2), &a);
  wire::Pdu pdu;
  pdu.dst = name_of(2);
  net.send(name_of(1), name_of(2), pdu);  // no link
  sim.run();
  EXPECT_EQ(net.pdus_dropped(), 1u);
  EXPECT_TRUE(a.received.empty());
}

TEST(Network, DetachedNodeDropsDelivery) {
  Simulator sim;
  Network net(sim);
  Collector a, b;
  net.attach(name_of(1), &a);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams::lan());
  wire::Pdu pdu;
  pdu.dst = name_of(2);
  net.send(name_of(1), name_of(2), pdu);
  net.detach(name_of(2));  // crash before delivery
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.pdus_dropped(), 1u);
}

TEST(Network, InterceptorCanDropAndTamper) {
  Simulator sim;
  Network net(sim);
  Collector b;
  net.attach(name_of(1), &b);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams::lan());

  int seen = 0;
  net.set_interceptor(name_of(1), name_of(2),
                      [&](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                        ++seen;
                        if (seen == 1) return std::nullopt;  // drop first
                        wire::Pdu mutated = pdu;
                        mutated.payload = to_bytes("tampered");
                        return mutated;
                      });
  for (int i = 0; i < 2; ++i) {
    wire::Pdu pdu;
    pdu.dst = name_of(2);
    pdu.src = name_of(1);
    pdu.type = wire::MsgType::kBenchData;
    pdu.payload = to_bytes("genuine");
    net.send(name_of(1), name_of(2), pdu);
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(to_string(b.received[0].second.payload), "tampered");
  net.clear_interceptor(name_of(1), name_of(2));
}

TEST(Network, AsymmetricResidentialLink) {
  Simulator sim;
  Network net(sim);
  Collector a, b;
  net.attach(name_of(1), &a);  // home client
  net.attach(name_of(2), &b);  // ISP edge
  net.connect_asymmetric(name_of(1), name_of(2),
                         net::LinkParams::residential_up(),     // 10 Mbps up
                         net::LinkParams::residential_down());  // 100 Mbps down
  wire::Pdu up;
  up.dst = name_of(2);
  up.src = name_of(1);
  up.type = wire::MsgType::kBenchData;
  up.payload = Bytes(1'000'000, 1);
  net.send(name_of(1), name_of(2), up);
  sim.run();
  double upload_s = to_seconds(sim.now());
  EXPECT_NEAR(upload_s, 1e6 * 8 / 10e6 + 0.01, 0.05);  // ~0.81 s

  wire::Pdu down = up;
  down.dst = name_of(1);
  down.src = name_of(2);
  TimePoint start = sim.now();
  net.send(name_of(2), name_of(1), down);
  sim.run();
  double download_s = to_seconds(sim.now() - start);
  EXPECT_NEAR(download_s, 1e6 * 8 / 100e6 + 0.01, 0.02);  // ~0.09 s
  EXPECT_GT(upload_s, 5 * download_s);
}

class LinkStateCollector : public Collector {
 public:
  void on_link_state(const Name& neighbor, bool up) override {
    transitions.emplace_back(neighbor, up);
  }
  std::vector<std::pair<Name, bool>> transitions;
};

TEST(Network, LinkDownDropsTrafficAndNotifiesBothEnds) {
  Simulator sim;
  Network net(sim);
  LinkStateCollector a, b;
  net.attach(name_of(1), &a);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams::lan());
  ASSERT_TRUE(net.adjacent(name_of(1), name_of(2)));
  ASSERT_TRUE(net.link_up(name_of(1), name_of(2)));

  net.set_link_down(name_of(1), name_of(2));
  EXPECT_FALSE(net.link_up(name_of(1), name_of(2)));
  // A down link stops counting as adjacent in both directions.
  EXPECT_FALSE(net.adjacent(name_of(1), name_of(2)));
  EXPECT_FALSE(net.adjacent(name_of(2), name_of(1)));
  // Both endpoints saw loss of carrier, naming the peer across the link.
  ASSERT_EQ(a.transitions.size(), 1u);
  EXPECT_EQ(a.transitions[0], std::make_pair(name_of(2), false));
  ASSERT_EQ(b.transitions.size(), 1u);
  EXPECT_EQ(b.transitions[0], std::make_pair(name_of(1), false));

  wire::Pdu pdu;
  pdu.dst = name_of(2);
  pdu.src = name_of(1);
  pdu.type = wire::MsgType::kBenchData;
  net.send(name_of(1), name_of(2), pdu);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.pdus_dropped(), 1u);

  // Repeating the same state is not a transition — no duplicate events.
  net.set_link_down(name_of(1), name_of(2));
  EXPECT_EQ(a.transitions.size(), 1u);

  net.set_link_up(name_of(2), name_of(1));  // order-insensitive
  EXPECT_TRUE(net.link_up(name_of(1), name_of(2)));
  EXPECT_TRUE(net.adjacent(name_of(1), name_of(2)));
  ASSERT_EQ(a.transitions.size(), 2u);
  EXPECT_EQ(a.transitions[1], std::make_pair(name_of(2), true));
  net.send(name_of(1), name_of(2), pdu);
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, ScheduledFlapFiresAtExactSimTimes) {
  Simulator sim;
  Network net(sim);
  LinkStateCollector a, b;
  net.attach(name_of(1), &a);
  net.attach(name_of(2), &b);
  net.connect(name_of(1), name_of(2), LinkParams::lan());

  net.schedule_flap(name_of(1), name_of(2), from_millis(10), from_millis(25));
  sim.run_until(from_millis(5));
  EXPECT_TRUE(net.link_up(name_of(1), name_of(2)));
  sim.run_until(from_millis(20));
  EXPECT_FALSE(net.link_up(name_of(1), name_of(2)));
  sim.run_until(from_millis(40));
  EXPECT_TRUE(net.link_up(name_of(1), name_of(2)));
  ASSERT_EQ(a.transitions.size(), 2u);
  EXPECT_EQ(a.transitions[0], std::make_pair(name_of(2), false));
  EXPECT_EQ(a.transitions[1], std::make_pair(name_of(2), true));
}

// Message round-trips (spot checks; full coverage via integration tests).
TEST(Messages, AppendRoundTrip) {
  wire::AppendMsg msg;
  msg.capsule = name_of(9);
  msg.required_acks = 3;
  msg.nonce = 77;
  msg.record.header.capsule_name = name_of(9);
  msg.record.header.seqno = 1;
  msg.record.header.ptrs.push_back(capsule::HashPtr{0, name_of(9)});
  msg.record.payload = to_bytes("p");
  msg.record.header.payload_len = 1;
  msg.record.header.payload_hash = crypto::sha256(msg.record.payload);
  msg.record.writer_sig.r = crypto::U256::from_u64(1);
  msg.record.writer_sig.s = crypto::U256::from_u64(1);
  auto back = wire::AppendMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->capsule, msg.capsule);
  EXPECT_EQ(back->required_acks, 3u);
  EXPECT_EQ(back->record, msg.record);
}

TEST(Messages, StatusRoundTrip) {
  wire::StatusMsg msg;
  msg.ok = false;
  msg.code = 7;
  msg.message = "nope";
  msg.nonce = 123;
  auto back = wire::StatusMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ok, false);
  EXPECT_EQ(back->code, 7);
  EXPECT_EQ(back->message, "nope");
  EXPECT_EQ(back->nonce, 123u);
}

TEST(Messages, LookupReplyRoundTrip) {
  wire::LookupReplyMsg msg;
  msg.found = true;
  msg.target = name_of(3);
  msg.attachment_router = name_of(4);
  msg.next_hop = name_of(5);
  msg.cost_us = 420;
  msg.nonce = 9;
  msg.evidence = to_bytes("evidence");
  msg.principal = to_bytes("principal");
  auto back = wire::LookupReplyMsg::deserialize(msg.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->found);
  EXPECT_EQ(back->next_hop, name_of(5));
  EXPECT_EQ(back->cost_us, 420u);
  EXPECT_EQ(to_string(back->evidence), "evidence");
}

TEST(Messages, TruncationRejected) {
  wire::SyncPullMsg msg;
  msg.capsule = name_of(1);
  msg.tip_seqno = 5;
  msg.holes = {name_of(2), name_of(3)};
  Bytes wire_bytes = msg.serialize();
  for (std::size_t cut = 0; cut < wire_bytes.size(); cut += 11) {
    EXPECT_FALSE(wire::SyncPullMsg::deserialize(
                     BytesView(wire_bytes.data(), cut))
                     .ok())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace gdp::net
