// Unit tests for the DataCapsule core: metadata and name derivation,
// records, heartbeats, strategies, the writer, the validated DAG state
// (including holes and branches), and integrity proofs.
#include <gtest/gtest.h>

#include "capsule/metadata.hpp"
#include "capsule/proof.hpp"
#include "capsule/record.hpp"
#include "capsule/state.hpp"
#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"

namespace gdp::capsule {
namespace {

struct Fixture {
  Rng rng{12345};
  crypto::PrivateKey owner = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey writer_key = crypto::PrivateKey::generate(rng);

  Metadata make_metadata(WriterMode mode = WriterMode::kStrictSingleWriter,
                         std::string label = "test-capsule") {
    auto m = Metadata::create(owner, writer_key.public_key(), mode, std::move(label), 1000);
    EXPECT_TRUE(m.ok()) << m.error().to_string();
    return std::move(m).value();
  }

  Writer make_writer(std::unique_ptr<HashPointerStrategy> strategy = nullptr,
                     WriterMode mode = WriterMode::kStrictSingleWriter) {
    if (!strategy) strategy = make_chain_strategy();
    return Writer(make_metadata(mode), writer_key, std::move(strategy));
  }
};

// ---- Metadata ----------------------------------------------------------------

TEST(Metadata, NameIsDeterministicHashOfContents) {
  Fixture f;
  Metadata a = f.make_metadata();
  auto b = Metadata::deserialize(a.serialize());
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  EXPECT_EQ(a.name(), b->name());
  EXPECT_EQ(a.serialize(), b->serialize());
}

TEST(Metadata, DifferentLabelsDifferentNames) {
  Fixture f;
  Metadata a = f.make_metadata(WriterMode::kStrictSingleWriter, "one");
  Metadata b = f.make_metadata(WriterMode::kStrictSingleWriter, "two");
  EXPECT_NE(a.name(), b.name());
}

TEST(Metadata, CarriesKeysAndMode) {
  Fixture f;
  Metadata m = f.make_metadata(WriterMode::kQuasiSingleWriter, "qsw");
  EXPECT_EQ(m.writer_key().encode(), f.writer_key.public_key().encode());
  EXPECT_EQ(m.owner_key().encode(), f.owner.public_key().encode());
  EXPECT_EQ(m.mode(), WriterMode::kQuasiSingleWriter);
  EXPECT_EQ(m.label(), "qsw");
}

TEST(Metadata, ExtraPairsRoundTrip) {
  Fixture f;
  auto m = Metadata::create(f.owner, f.writer_key.public_key(),
                            WriterMode::kStrictSingleWriter, "with-extras", 5,
                            {{"app", "sensor"}, {"hash_strategy", "skiplist"}});
  ASSERT_TRUE(m.ok());
  auto back = Metadata::deserialize(m->serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->get("app"), "sensor");
  EXPECT_EQ(back->get("hash_strategy"), "skiplist");
  EXPECT_FALSE(back->get("missing").has_value());
}

TEST(Metadata, ReservedExtraKeyRejected) {
  Fixture f;
  auto m = Metadata::create(f.owner, f.writer_key.public_key(),
                            WriterMode::kStrictSingleWriter, "x", 5,
                            {{std::string(kMetaKeyWriterKey), "bogus"}});
  EXPECT_EQ(m.code(), Errc::kInvalidArgument);
}

TEST(Metadata, TamperedSerializationRejected) {
  Fixture f;
  Metadata m = f.make_metadata();
  Bytes wire = m.serialize();
  for (std::size_t i = 0; i < wire.size(); i += 17) {
    Bytes bad = wire;
    bad[i] ^= 0x01;
    auto parsed = Metadata::deserialize(bad);
    // Either the encoding breaks or the owner signature fails; both reject.
    EXPECT_FALSE(parsed.ok()) << "byte " << i;
  }
}

TEST(Metadata, VerifyChecksOwnerSignature) {
  Fixture f;
  Metadata m = f.make_metadata();
  EXPECT_TRUE(m.verify().ok());
}

// ---- Records -------------------------------------------------------------------

TEST(Record, SerializationRoundTrip) {
  Fixture f;
  Writer w = f.make_writer();
  Record rec = w.append(to_bytes("hello capsule"), 42);
  auto back = Record::deserialize(rec.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, rec);
  EXPECT_EQ(back->hash(), rec.hash());
}

TEST(Record, HeaderHashChangesWithPayload) {
  Fixture f;
  Writer w = f.make_writer();
  Record a = w.append(to_bytes("payload-a"), 1);
  Record b = w.append(to_bytes("payload-b"), 1);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Record, StandaloneVerification) {
  Fixture f;
  Writer w = f.make_writer();
  Record rec = w.append(to_bytes("data"), 7);
  EXPECT_TRUE(rec.verify_standalone(f.writer_key.public_key()).ok());

  Record tampered = rec;
  tampered.payload = to_bytes("DATA");
  EXPECT_EQ(tampered.verify_standalone(f.writer_key.public_key()).code(),
            Errc::kVerificationFailed);

  Rng rng2(999);
  auto mallory = crypto::PrivateKey::generate(rng2);
  EXPECT_EQ(rec.verify_standalone(mallory.public_key()).code(),
            Errc::kVerificationFailed);
}

TEST(Record, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Record::deserialize(Bytes{}).ok());
  EXPECT_FALSE(Record::deserialize(Bytes(10, 0xab)).ok());
  Fixture f;
  Writer w = f.make_writer();
  Bytes wire = w.append(to_bytes("x"), 0).serialize();
  wire.pop_back();
  EXPECT_FALSE(Record::deserialize(wire).ok());
  wire.push_back(0);
  wire.push_back(0);
  EXPECT_FALSE(Record::deserialize(wire).ok());  // trailing byte
}

TEST(Record, FirstRecordPointsAtCapsuleName) {
  Fixture f;
  Writer w = f.make_writer();
  Record rec = w.append(to_bytes("genesis payload"), 0);
  ASSERT_EQ(rec.header.ptrs.size(), 1u);
  EXPECT_EQ(rec.header.ptrs[0].seqno, 0u);
  EXPECT_EQ(rec.header.ptrs[0].hash, w.capsule_name());
}

// ---- Heartbeats -----------------------------------------------------------------

TEST(Heartbeat, SignAndVerify) {
  Fixture f;
  Writer w = f.make_writer();
  w.append(to_bytes("a"), 1);
  Heartbeat hb = w.heartbeat();
  EXPECT_EQ(hb.seqno, 1u);
  EXPECT_TRUE(hb.verify(f.writer_key.public_key()).ok());
  hb.record_hash = f.make_metadata().name();  // point at something else
  EXPECT_EQ(hb.verify(f.writer_key.public_key()).code(), Errc::kVerificationFailed);
}

TEST(Heartbeat, FromRecordMatchesWriterHeartbeat) {
  Fixture f;
  Writer w = f.make_writer();
  Record rec = w.append(to_bytes("tip"), 9);
  // Deterministic signing makes the two construction paths identical.
  EXPECT_EQ(Heartbeat::from_record(rec), w.heartbeat());
}

TEST(Heartbeat, EmptyCapsuleAttestsName) {
  Fixture f;
  Writer w = f.make_writer();
  Heartbeat hb = w.heartbeat();
  EXPECT_EQ(hb.seqno, 0u);
  EXPECT_EQ(hb.record_hash, w.capsule_name());
  EXPECT_TRUE(hb.verify(f.writer_key.public_key()).ok());
}

TEST(Heartbeat, SerializationRoundTrip) {
  Fixture f;
  Writer w = f.make_writer();
  w.append(to_bytes("a"), 1);
  Heartbeat hb = w.heartbeat();
  auto back = Heartbeat::deserialize(hb.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, hb);
}

// ---- Strategies ------------------------------------------------------------------

TEST(Strategy, ChainTargets) {
  auto s = make_chain_strategy();
  EXPECT_EQ(s->targets(1), std::vector<std::uint64_t>{0});
  EXPECT_EQ(s->targets(10), std::vector<std::uint64_t>{9});
  EXPECT_EQ(s->last_referencer(5), 6u);
  EXPECT_EQ(s->id(), "chain");
}

TEST(Strategy, SkipListTargets) {
  auto s = make_skiplist_strategy();
  EXPECT_EQ(s->targets(1), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(s->targets(2), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(s->targets(8), (std::vector<std::uint64_t>{0, 4, 6, 7}));
  EXPECT_EQ(s->targets(12), (std::vector<std::uint64_t>{8, 10, 11}));
  // Record 12's hash (lowest set bit 4) is last needed by record 16.
  EXPECT_EQ(s->last_referencer(12), 16u);
  EXPECT_EQ(s->last_referencer(7), 8u);
}

TEST(Strategy, CheckpointTargets) {
  auto s = make_checkpoint_strategy(4);
  EXPECT_EQ(s->targets(1), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(s->targets(3), (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(s->targets(5), (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(s->targets(6), (std::vector<std::uint64_t>{4, 5}));
  EXPECT_EQ(s->last_referencer(4), 8u);
  EXPECT_EQ(s->last_referencer(5), 6u);
}

TEST(Strategy, FromIdRoundTrip) {
  for (const char* id : {"chain", "skiplist", "checkpoint:16"}) {
    auto s = strategy_from_id(id);
    ASSERT_NE(s, nullptr) << id;
    EXPECT_EQ(s->id(), id);
  }
  EXPECT_EQ(strategy_from_id("bogus"), nullptr);
  EXPECT_EQ(strategy_from_id("checkpoint:"), nullptr);
  EXPECT_EQ(strategy_from_id("checkpoint:0"), nullptr);
}

// ---- Writer ---------------------------------------------------------------------

TEST(Writer, SequentialSeqnos) {
  Fixture f;
  Writer w = f.make_writer();
  for (std::uint64_t i = 1; i <= 5; ++i) {
    Record r = w.append(to_bytes("x"), 0);
    EXPECT_EQ(r.header.seqno, i);
  }
  EXPECT_EQ(w.next_seqno(), 6u);
}

TEST(Writer, RecordsChainTogether) {
  Fixture f;
  Writer w = f.make_writer();
  Record r1 = w.append(to_bytes("one"), 1);
  Record r2 = w.append(to_bytes("two"), 2);
  ASSERT_EQ(r2.header.ptrs.size(), 1u);
  EXPECT_EQ(r2.header.ptrs[0].hash, r1.hash());
  EXPECT_EQ(r2.header.ptrs[0].seqno, 1u);
}

TEST(Writer, SaveRestoreContinuesChain) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  Record r1 = w.append(to_bytes("one"), 1);
  Bytes saved = w.save_state();

  auto restored = Writer::restore(meta, f.writer_key, make_chain_strategy(), saved);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  Record r2 = restored->append(to_bytes("two"), 2);
  EXPECT_EQ(r2.header.seqno, 2u);
  EXPECT_EQ(r2.header.ptrs[0].hash, r1.hash());
}

TEST(Writer, RestoreRejectsWrongCapsule) {
  Fixture f;
  Metadata meta_a = f.make_metadata(WriterMode::kStrictSingleWriter, "a");
  Metadata meta_b = f.make_metadata(WriterMode::kStrictSingleWriter, "b");
  Writer w(meta_a, f.writer_key, make_chain_strategy());
  w.append(to_bytes("x"), 0);
  auto restored = Writer::restore(meta_b, f.writer_key, make_chain_strategy(), w.save_state());
  EXPECT_EQ(restored.code(), Errc::kFailedPrecondition);
}

TEST(Writer, SkipListStatePruned) {
  Fixture f;
  Writer w = f.make_writer(make_skiplist_strategy());
  for (int i = 0; i < 1024; ++i) w.append(to_bytes("r"), i);
  // Remembered state must stay logarithmic, not linear.
  EXPECT_LT(w.save_state().size(), 2048u);
}

TEST(Writer, MergeTakesMaxParentSeqno) {
  Fixture f;
  Metadata meta = f.make_metadata(WriterMode::kQuasiSingleWriter);
  Writer a(meta, f.writer_key, make_chain_strategy());
  Record r1 = a.append(to_bytes("base"), 1);
  Bytes saved = a.save_state();

  // Second writer instance branches from the same state (QSW).
  auto b = Writer::restore(meta, f.writer_key, make_chain_strategy(), saved);
  ASSERT_TRUE(b.ok());
  Record a2 = a.append(to_bytes("branch-a"), 2);
  Record b2 = b->append(to_bytes("branch-b"), 2);
  EXPECT_EQ(a2.header.seqno, b2.header.seqno);
  EXPECT_NE(a2.hash(), b2.hash());

  Record merge = a.append_merge(to_bytes("merge"), 3,
                                {HashPtr{b2.header.seqno, b2.hash()}});
  EXPECT_EQ(merge.header.seqno, 3u);
  // The merge points at both branch heads.
  bool has_a2 = false, has_b2 = false;
  for (const auto& p : merge.header.ptrs) {
    has_a2 |= p.hash == a2.hash();
    has_b2 |= p.hash == b2.hash();
  }
  EXPECT_TRUE(has_a2);
  EXPECT_TRUE(has_b2);
}

// ---- CapsuleState -----------------------------------------------------------------

TEST(CapsuleState, IngestInOrder) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  for (int i = 1; i <= 10; ++i) {
    Record r = w.append(to_bytes("r" + std::to_string(i)), i);
    ASSERT_TRUE(state.ingest(r).ok());
  }
  EXPECT_EQ(state.size(), 10u);
  EXPECT_EQ(state.tip_seqno(), 10u);
  EXPECT_FALSE(state.has_branch());
  EXPECT_TRUE(state.holes().empty());
  EXPECT_EQ(to_string(state.get_by_seqno(3)->payload), "r3");
}

TEST(CapsuleState, IngestIsIdempotent) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  Record r = w.append(to_bytes("x"), 0);
  EXPECT_TRUE(state.ingest(r).ok());
  EXPECT_TRUE(state.ingest(r).ok());
  EXPECT_EQ(state.size(), 1u);
}

TEST(CapsuleState, OutOfOrderCreatesAndRepairsHole) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  Record r1 = w.append(to_bytes("one"), 1);
  Record r2 = w.append(to_bytes("two"), 2);
  Record r3 = w.append(to_bytes("three"), 3);

  ASSERT_TRUE(state.ingest(r1).ok());
  ASSERT_TRUE(state.ingest(r3).ok());  // r2 missing: r3 detaches
  EXPECT_EQ(state.size(), 1u);
  EXPECT_EQ(state.detached_count(), 1u);
  ASSERT_EQ(state.holes().size(), 1u);
  EXPECT_EQ(state.holes()[0], r2.hash());
  EXPECT_EQ(state.tip_seqno(), 1u);

  ASSERT_TRUE(state.ingest(r2).ok());  // hole repaired; r3 cascades in
  EXPECT_EQ(state.size(), 3u);
  EXPECT_EQ(state.detached_count(), 0u);
  EXPECT_TRUE(state.holes().empty());
  EXPECT_EQ(state.tip_seqno(), 3u);
  EXPECT_EQ(state.tip_hash(), r3.hash());
}

TEST(CapsuleState, FullyReversedIngest) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) records.push_back(w.append(to_bytes("r"), i));
  CapsuleState state(meta);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ASSERT_TRUE(state.ingest(*it).ok());
  }
  EXPECT_EQ(state.size(), 20u);
  EXPECT_EQ(state.tip_hash(), records.back().hash());
  EXPECT_TRUE(state.holes().empty());
}

TEST(CapsuleState, RejectsForeignRecord) {
  Fixture f;
  Metadata meta_a = f.make_metadata(WriterMode::kStrictSingleWriter, "a");
  Metadata meta_b = f.make_metadata(WriterMode::kStrictSingleWriter, "b");
  Writer wb(meta_b, f.writer_key, make_chain_strategy());
  CapsuleState state(meta_a);
  EXPECT_EQ(state.ingest(wb.append(to_bytes("x"), 0)).code(), Errc::kVerificationFailed);
}

TEST(CapsuleState, RejectsTamperedPayload) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  Record r = w.append(to_bytes("genuine"), 0);
  r.payload = to_bytes("forgery");
  EXPECT_EQ(state.ingest(r).code(), Errc::kVerificationFailed);
  EXPECT_EQ(state.size(), 0u);
}

TEST(CapsuleState, DetectsBranchAsEquivocation) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer a(meta, f.writer_key, make_chain_strategy());
  Record r1 = a.append(to_bytes("base"), 1);
  Bytes saved = a.save_state();
  auto b = Writer::restore(meta, f.writer_key, make_chain_strategy(), saved);
  ASSERT_TRUE(b.ok());
  Record a2 = a.append(to_bytes("branch-a"), 2);
  Record b2 = b->append(to_bytes("branch-b"), 2);

  CapsuleState state(meta);
  ASSERT_TRUE(state.ingest(r1).ok());
  ASSERT_TRUE(state.ingest(a2).ok());
  EXPECT_FALSE(state.has_branch());
  ASSERT_TRUE(state.ingest(b2).ok());  // stored: signed evidence of equivocation
  EXPECT_TRUE(state.has_branch());
  EXPECT_EQ(state.heads().size(), 2u);
  EXPECT_EQ(state.all_at_seqno(2).size(), 2u);
  // Canonical tie-break: smallest hash at the top seqno.
  RecordHash expect_tip = std::min(a2.hash(), b2.hash());
  EXPECT_EQ(state.tip_hash(), expect_tip);
}

TEST(CapsuleState, MergeRejoinsBranches) {
  Fixture f;
  Metadata meta = f.make_metadata(WriterMode::kQuasiSingleWriter);
  Writer a(meta, f.writer_key, make_chain_strategy());
  Record r1 = a.append(to_bytes("base"), 1);
  Bytes saved = a.save_state();
  auto b = Writer::restore(meta, f.writer_key, make_chain_strategy(), saved);
  ASSERT_TRUE(b.ok());
  Record a2 = a.append(to_bytes("branch-a"), 2);
  Record b2 = b->append(to_bytes("branch-b"), 2);
  Record merge = a.append_merge(to_bytes("merged"), 3, {HashPtr{2, b2.hash()}});

  CapsuleState state(meta);
  for (const Record& r : {r1, a2, b2, merge}) ASSERT_TRUE(state.ingest(r).ok());
  EXPECT_EQ(state.heads().size(), 1u);
  EXPECT_EQ(state.tip_hash(), merge.hash());
  EXPECT_EQ(state.tip_seqno(), 3u);
}

TEST(CapsuleState, ConvergesRegardlessOfOrderCrdt) {
  // CRDT property: two replicas fed the same records in different orders
  // reach identical state.
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_skiplist_strategy());
  std::vector<Record> records;
  for (int i = 0; i < 32; ++i) records.push_back(w.append(to_bytes("r"), i));

  CapsuleState s1(meta), s2(meta);
  for (const Record& r : records) ASSERT_TRUE(s1.ingest(r).ok());
  Rng rng(77);
  std::vector<Record> shuffled = records;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
  }
  for (const Record& r : shuffled) ASSERT_TRUE(s2.ingest(r).ok());

  EXPECT_EQ(s1.size(), s2.size());
  EXPECT_EQ(s1.tip_hash(), s2.tip_hash());
  for (std::uint64_t s = 1; s <= 32; ++s) {
    EXPECT_EQ(s1.get_by_seqno(s)->hash(), s2.get_by_seqno(s)->hash());
  }
}

TEST(CapsuleState, CheckHeartbeat) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  EXPECT_TRUE(state.check_heartbeat(w.heartbeat()).ok());  // empty attests name
  Record r = w.append(to_bytes("x"), 0);
  Heartbeat hb = w.heartbeat();
  EXPECT_EQ(state.check_heartbeat(hb).code(), Errc::kNotFound);  // record not here yet
  ASSERT_TRUE(state.ingest(r).ok());
  EXPECT_TRUE(state.check_heartbeat(hb).ok());
}

TEST(CapsuleState, ExportRecordsOrdered) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(state.ingest(w.append(to_bytes("x"), i)).ok());
  auto exported = state.export_records();
  ASSERT_EQ(exported.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(exported[i].header.seqno, i + 1);
}

// ---- Proofs -------------------------------------------------------------------------

class ProofTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProofTest, MembershipProofVerifies) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, strategy_from_id(GetParam()));
  CapsuleState state(meta);
  std::vector<Record> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(w.append(to_bytes("r" + std::to_string(i)), i));
    ASSERT_TRUE(state.ingest(records.back()).ok());
  }
  Heartbeat hb = w.heartbeat();
  for (std::size_t target : {0u, 10u, 25u, 48u, 49u}) {
    auto proof = build_membership_proof(state, hb, records[target].hash());
    ASSERT_TRUE(proof.ok()) << proof.error().to_string();
    EXPECT_TRUE(verify_membership_proof(meta, hb, *proof, records[target].hash()).ok());
  }
}

TEST_P(ProofTest, TamperedProofRejected) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, strategy_from_id(GetParam()));
  CapsuleState state(meta);
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(w.append(to_bytes("r"), i));
    ASSERT_TRUE(state.ingest(records.back()).ok());
  }
  Heartbeat hb = w.heartbeat();
  auto proof = build_membership_proof(state, hb, records[5].hash());
  ASSERT_TRUE(proof.ok());

  // Wrong target.
  EXPECT_FALSE(verify_membership_proof(meta, hb, *proof, records[6].hash()).ok());
  // Mutated interior header.
  MembershipProof bad = *proof;
  bad.path[bad.path.size() / 2].timestamp_ns ^= 1;
  EXPECT_FALSE(verify_membership_proof(meta, hb, bad, records[5].hash()).ok());
  // Truncated path.
  MembershipProof truncated = *proof;
  truncated.path.pop_back();
  EXPECT_FALSE(verify_membership_proof(meta, hb, truncated, records[5].hash()).ok());
  // Heartbeat from a different (forged) writer.
  Rng rng2(4242);
  auto mallory = crypto::PrivateKey::generate(rng2);
  Heartbeat forged = Heartbeat::make(meta.name(), hb.seqno, hb.record_hash, mallory);
  EXPECT_FALSE(verify_membership_proof(meta, forged, *proof, records[5].hash()).ok());
}

TEST_P(ProofTest, RangeProofVerifies) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, strategy_from_id(GetParam()));
  CapsuleState state(meta);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(state.ingest(w.append(to_bytes("p" + std::to_string(i)), i)).ok());
  }
  Heartbeat hb = w.heartbeat();
  auto proof = build_range_proof(state, hb, 10, 20);
  ASSERT_TRUE(proof.ok()) << proof.error().to_string();
  EXPECT_TRUE(verify_range_proof(meta, hb, *proof, 10, 20).ok());
  EXPECT_EQ(proof->records.size(), 11u);
  EXPECT_EQ(to_string(proof->records.front().payload), "p9");

  // Serialization round trip.
  auto back = RangeProof::deserialize(proof->serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(verify_range_proof(meta, hb, *back, 10, 20).ok());

  // Dropping a record breaks contiguity.
  RangeProof bad = *proof;
  bad.records.erase(bad.records.begin() + 3);
  EXPECT_FALSE(verify_range_proof(meta, hb, bad, 10, 20).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ProofTest,
                         ::testing::Values("chain", "skiplist", "checkpoint:8"));

TEST(Proof, SkipListProofsAreLogarithmic) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer wc(f.make_metadata(WriterMode::kStrictSingleWriter, "chain-c"),
            f.writer_key, make_chain_strategy());
  Writer ws(meta, f.writer_key, make_skiplist_strategy());
  CapsuleState chain_state(wc.metadata());
  CapsuleState skip_state(meta);
  Record first_chain = wc.append(to_bytes("r"), 0);
  Record first_skip = ws.append(to_bytes("r"), 0);
  ASSERT_TRUE(chain_state.ingest(first_chain).ok());
  ASSERT_TRUE(skip_state.ingest(first_skip).ok());
  for (int i = 1; i < 512; ++i) {
    ASSERT_TRUE(chain_state.ingest(wc.append(to_bytes("r"), i)).ok());
    ASSERT_TRUE(skip_state.ingest(ws.append(to_bytes("r"), i)).ok());
  }
  auto chain_proof = build_membership_proof(chain_state, wc.heartbeat(), first_chain.hash());
  auto skip_proof = build_membership_proof(skip_state, ws.heartbeat(), first_skip.hash());
  ASSERT_TRUE(chain_proof.ok());
  ASSERT_TRUE(skip_proof.ok());
  EXPECT_EQ(chain_proof->path.size(), 512u);       // O(n)
  EXPECT_LE(skip_proof->path.size(), 2 * 9 + 2u);  // O(log n)
}

TEST(Proof, MembershipProofSerializationRoundTrip) {
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_skiplist_strategy());
  CapsuleState state(meta);
  RecordHash target;
  for (int i = 0; i < 40; ++i) {
    Record r = w.append(to_bytes("x"), i);
    if (i == 7) target = r.hash();
    ASSERT_TRUE(state.ingest(r).ok());
  }
  Heartbeat hb = w.heartbeat();
  auto proof = build_membership_proof(state, hb, target);
  ASSERT_TRUE(proof.ok());
  auto back = MembershipProof::deserialize(proof->serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(verify_membership_proof(meta, hb, *back, target).ok());
  EXPECT_EQ(back->size_bytes(), proof->size_bytes());
}

TEST(Proof, TimeShiftedProofsAgainstOldHeartbeats) {
  // "Read queries can be verified against a particular state of the
  // data-structure, identified by the 'heartbeat'" — including *old*
  // states: a reader that captured a heartbeat at seqno k can keep
  // verifying any record <= k forever, regardless of later growth.
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_skiplist_strategy());
  CapsuleState state(meta);
  std::vector<Record> records;
  Heartbeat hb_at_10;
  for (int i = 0; i < 30; ++i) {
    records.push_back(w.append(to_bytes("r" + std::to_string(i)), i));
    ASSERT_TRUE(state.ingest(records.back()).ok());
    if (i == 9) hb_at_10 = w.heartbeat();
  }
  // Old heartbeat proves old records...
  auto proof = build_membership_proof(state, hb_at_10, records[3].hash());
  ASSERT_TRUE(proof.ok()) << proof.error().to_string();
  EXPECT_TRUE(verify_membership_proof(meta, hb_at_10, *proof, records[3].hash()).ok());
  auto range = build_range_proof(state, hb_at_10, 2, 9);
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(verify_range_proof(meta, hb_at_10, *range, 2, 9).ok());
  // ...but cannot attest records that did not exist yet.
  EXPECT_FALSE(build_membership_proof(state, hb_at_10, records[20].hash()).ok());
}

TEST(Metadata, ManyExtraPairsRoundTrip) {
  Fixture f;
  std::map<std::string, std::string> extra;
  for (int i = 0; i < 50; ++i) {
    extra["app.key." + std::to_string(i)] = std::string(i, 'v');
  }
  auto m = Metadata::create(f.owner, f.writer_key.public_key(),
                            WriterMode::kStrictSingleWriter, "big-meta", 0, extra);
  ASSERT_TRUE(m.ok());
  auto back = Metadata::deserialize(m->serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), m->name());
  EXPECT_EQ(back->get("app.key.49"), std::string(49, 'v'));
}

TEST(Record, ImplausiblePointerCountRejected) {
  // The deserializer bounds hash-pointer counts to stop memory bombs.
  Fixture f;
  Writer w = f.make_writer();
  Record rec = w.append(to_bytes("x"), 0);
  Bytes header = rec.header.serialize();
  // Corrupt the ptr count varint (position: 1 version + 32 name + 1 seqno
  // varint + 8 ts = offset 42).
  header[42] = 0xff;
  header.push_back(0x7f);  // extend into a huge varint
  EXPECT_FALSE(RecordHeader::deserialize(header).ok());
}

TEST(CapsuleState, PointerSeqnoLieDetected) {
  // A record whose hash-pointer claims the wrong seqno for its target is
  // rejected even though the hash itself is genuine.
  Fixture f;
  Metadata meta = f.make_metadata();
  Writer w(meta, f.writer_key, make_chain_strategy());
  CapsuleState state(meta);
  Record r1 = w.append(to_bytes("one"), 1);
  ASSERT_TRUE(state.ingest(r1).ok());

  Record forged;
  forged.header.capsule_name = meta.name();
  forged.header.seqno = 3;  // implies parent at seqno 2
  forged.header.timestamp_ns = 0;
  forged.header.ptrs = {HashPtr{2, r1.hash()}};  // lie: r1 is seqno 1
  forged.payload = to_bytes("z");
  forged.header.payload_len = 1;
  forged.header.payload_hash = crypto::sha256(forged.payload);
  crypto::Digest d;
  auto h = forged.header.hash();
  std::copy(h.raw().begin(), h.raw().end(), d.begin());
  forged.writer_sig = f.writer_key.sign_digest(d);  // writer-signed, still bad
  EXPECT_EQ(state.ingest(forged).code(), Errc::kVerificationFailed);
}

TEST(Proof, CannotProveAcrossBranches) {
  Fixture f;
  Metadata meta = f.make_metadata(WriterMode::kQuasiSingleWriter);
  Writer a(meta, f.writer_key, make_chain_strategy());
  Record r1 = a.append(to_bytes("base"), 1);
  Bytes saved = a.save_state();
  auto b = Writer::restore(meta, f.writer_key, make_chain_strategy(), saved);
  ASSERT_TRUE(b.ok());
  Record a2 = a.append(to_bytes("branch-a"), 2);
  Record b2 = b->append(to_bytes("branch-b"), 2);

  CapsuleState state(meta);
  for (const Record& r : {r1, a2, b2}) ASSERT_TRUE(state.ingest(r).ok());
  // Heartbeat at a2 cannot prove b2 (no pointer path between branches).
  Heartbeat hb_a = a.heartbeat();
  auto proof = build_membership_proof(state, hb_a, b2.hash());
  EXPECT_EQ(proof.code(), Errc::kNotFound);
  // But it can prove the common ancestor.
  EXPECT_TRUE(build_membership_proof(state, hb_a, r1.hash()).ok());
}

}  // namespace
}  // namespace gdp::capsule
