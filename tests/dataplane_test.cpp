// Sharded data plane: lockstep determinism, snapshot-FIB swaps under
// concurrent forwarding (the QSBR contract), deterministic per-shard
// stats merging, and the end-to-end zero-copy-per-hop gauge proof over a
// two-router simulator chain.
#include "router/dataplane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "router/fib.hpp"
#include "router/router.hpp"
#include "wire/pdu_view.hpp"

namespace gdp::router {
namespace {

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

Name target_name(std::uint32_t i) {
  Bytes raw(32, 0);
  raw[0] = 0xD0;
  raw[1] = static_cast<std::uint8_t>(i >> 8);
  raw[2] = static_cast<std::uint8_t>(i);
  return *Name::from_bytes(raw);
}

wire::PduView make_view(const Name& dst, std::size_t payload = 64,
                        std::uint8_t ttl = 8) {
  wire::Pdu pdu;
  pdu.dst = dst;
  pdu.src = name_of(0x51);
  pdu.type = wire::MsgType::kBenchData;
  pdu.flow_id = 7;
  pdu.trace_id = 9;
  pdu.ttl = ttl;
  pdu.payload = Bytes(payload, 0xAB);
  return wire::PduView::build(pdu);
}

TEST(FibSnapshot, PublishesAndFindsRoutes) {
  FibPublisher fib;
  ASSERT_NE(fib.snapshot(), nullptr);  // empty snapshot from birth
  EXPECT_EQ(fib.snapshot()->size(), 0u);
  EXPECT_EQ(fib.snapshot()->find(target_name(1)), nullptr);

  const Name hop = name_of(0x11);
  for (std::uint32_t i = 0; i < 100; ++i) fib.upsert(target_name(i), hop, 0);
  // Not yet visible: publish() is the only visibility barrier.
  EXPECT_EQ(fib.snapshot()->size(), 0u);
  fib.publish();
  ASSERT_EQ(fib.snapshot()->size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    const FibSnapshot::Entry* e = fib.snapshot()->find(target_name(i));
    ASSERT_NE(e, nullptr) << i;
    EXPECT_EQ(e->next_hop, hop);
  }
  EXPECT_EQ(fib.snapshot()->find(target_name(100)), nullptr);

  fib.erase(target_name(0));
  fib.publish();
  EXPECT_EQ(fib.snapshot()->find(target_name(0)), nullptr);
  EXPECT_EQ(fib.snapshot()->size(), 99u);
}

TEST(FibSnapshot, CleanPublishIsNoOp) {
  FibPublisher fib;
  fib.upsert(target_name(1), name_of(0x11), 0);
  fib.publish();
  const FibSnapshot* before = fib.snapshot();
  const std::uint64_t count = fib.publish_count();
  fib.publish();  // nothing changed
  EXPECT_EQ(fib.snapshot(), before);
  EXPECT_EQ(fib.publish_count(), count);
}

TEST(FibPublisher, ReclaimsRetiredSnapshotsAfterQuiesce) {
  FibPublisher fib;
  FibPublisher::Reader* reader = fib.register_reader();
  reader->quiesce();
  for (std::uint32_t gen = 1; gen <= 8; ++gen) {
    fib.upsert(target_name(gen), name_of(0x11), 0);
    fib.publish();
  }
  // The reader never quiesced past any of those publishes: all retired
  // snapshots must still be alive.
  EXPECT_EQ(fib.retired_count(), 8u);
  reader->quiesce();
  fib.publish();  // clean publish still reclaims
  EXPECT_EQ(fib.retired_count(), 0u);
}

TEST(ShardedDataPlane, LockstepForwardsEverythingDeterministically) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint32_t kTargets = 64;
  constexpr std::uint64_t kPdus = 10000;

  auto run = [&]() -> std::pair<std::string, std::uint64_t> {
    FibPublisher fib;
    const Name hop = name_of(0x22);
    for (std::uint32_t i = 0; i < kTargets; ++i) {
      fib.upsert(target_name(i), hop, 0);
    }
    fib.publish();
    std::uint64_t egressed = 0;
    ShardedDataPlane::Config cfg;
    cfg.num_shards = kShards;
    cfg.deterministic = true;
    ShardedDataPlane dp(cfg, fib,
                        [&](std::size_t, const Name& next_hop, wire::PduView pdu) {
                          EXPECT_EQ(next_hop, hop);
                          EXPECT_EQ(pdu.ttl(), 7);
                          ++egressed;
                        });
    for (std::uint64_t n = 0; n < kPdus; ++n) {
      wire::PduView pdu = make_view(target_name(n % kTargets));
      while (!dp.submit(std::move(pdu))) dp.run_until_idle();
    }
    dp.run_until_idle();
    EXPECT_EQ(dp.forwarded(), kPdus);
    EXPECT_EQ(dp.dropped(), 0u);
    EXPECT_EQ(egressed, kPdus);
    // Round-robin ingress vs. hash ownership: most PDUs land on a
    // non-owning shard first, so handoff must actually be exercised.
    EXPECT_GT(dp.handoffs(), 0u);
    return {dp.stats_json(), dp.handoffs()};
  };

  auto [json1, handoffs1] = run();
  auto [json2, handoffs2] = run();
  // Identical inputs, identical seed: the lockstep backend must produce
  // byte-identical merged stats (the determinism contract).
  EXPECT_EQ(json1, json2);
  EXPECT_EQ(handoffs1, handoffs2);
  EXPECT_NE(json1.find("\"dp.fwd.pdus\": 10000"), std::string::npos) << json1;
  EXPECT_NE(json1.find("\"dp.shards\": 4"), std::string::npos);
}

TEST(ShardedDataPlane, DropsAccountedByReason) {
  FibPublisher fib;
  fib.upsert(target_name(0), name_of(0x22), 0);
  fib.upsert(target_name(1), name_of(0x22), /*expires_ns=*/100);
  fib.publish();
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 2;
  cfg.deterministic = true;
  std::uint64_t egressed = 0;
  ShardedDataPlane dp(cfg, fib,
                      [&](std::size_t, const Name&, wire::PduView) { ++egressed; });
  dp.set_now_ns(1000);  // past target 1's expiry

  ASSERT_TRUE(dp.submit(make_view(target_name(0))));           // forwarded
  ASSERT_TRUE(dp.submit(make_view(target_name(0), 64, 0)));    // ttl
  ASSERT_TRUE(dp.submit(make_view(target_name(1))));           // expired
  ASSERT_TRUE(dp.submit(make_view(target_name(2))));           // no_route
  dp.run_until_idle();

  EXPECT_EQ(dp.forwarded(), 1u);
  EXPECT_EQ(egressed, 1u);
  EXPECT_EQ(dp.dropped(), 3u);
  const std::string json = dp.stats_json();
  EXPECT_NE(json.find("\"dp.drop.ttl\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dp.drop.expired\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"dp.drop.no_route\": 1"), std::string::npos);
}

// The QSBR contract under real threads: the control plane republishes the
// FIB continuously while workers forward; every PDU is either forwarded
// or dropped with a reason, nothing crashes, and every retired snapshot
// is reclaimed once the workers quiesce.  The CI TSan job runs this.
TEST(ShardedDataPlane, FibSwapDuringConcurrentForwarding) {
  constexpr std::uint32_t kTargets = 32;
  constexpr std::uint64_t kPdus = 30000;
  FibPublisher fib;
  const Name hop_a = name_of(0x31);
  const Name hop_b = name_of(0x32);
  for (std::uint32_t i = 0; i < kTargets; ++i) {
    fib.upsert(target_name(i), hop_a, 0);
  }
  fib.publish();

  std::atomic<std::uint64_t> egressed{0};
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 4;
  cfg.ring_capacity = 1024;
  ShardedDataPlane dp(cfg, fib,
                      [&](std::size_t, const Name& next_hop, wire::PduView pdu) {
                        // Route flips mid-flight are fine; the next hop
                        // must always be one of the two published values.
                        EXPECT_TRUE(next_hop == hop_a || next_hop == hop_b);
                        EXPECT_EQ(pdu.ttl(), 7);
                        egressed.fetch_add(1, std::memory_order_relaxed);
                      });
  if (dp.deterministic()) {
    GTEST_SKIP() << "GDP_DETERMINISTIC set: threaded mode disabled";
  }
  dp.start();

  // Producer (this thread) doubles as the FIB control plane: every 500
  // submissions it rewrites a slice of routes and publishes a snapshot.
  std::uint64_t publishes = 0;
  for (std::uint64_t n = 0; n < kPdus; ++n) {
    wire::PduView pdu = make_view(target_name(n % kTargets));
    while (!dp.submit(std::move(pdu))) std::this_thread::yield();
    if (n % 500 == 499) {
      const Name& hop = (n / 500) % 2 == 0 ? hop_b : hop_a;
      for (std::uint32_t i = 0; i < kTargets; i += 3) {
        fib.upsert(target_name(i), hop, 0);
      }
      fib.publish();
      ++publishes;
    }
  }
  // Wait until the plane has consumed everything, then stop.
  while (egressed.load(std::memory_order_relaxed) + dp.dropped() < kPdus) {
    std::this_thread::yield();
  }
  dp.stop();

  EXPECT_EQ(dp.forwarded() + dp.dropped(), kPdus);
  EXPECT_EQ(egressed.load(), dp.forwarded());
  EXPECT_GE(publishes, 50u);
  // Workers quiesced on exit; a final clean publish reclaims every
  // retired snapshot.
  fib.publish();
  EXPECT_EQ(fib.retired_count(), 0u);
}

// ---- Flight-recorder integration ----

// With sample_period = 1 every PDU's whole event sequence is recorded;
// the Perfetto export must carry one named track per shard worker plus
// the ingress producer, and the fast-path event vocabulary.
TEST(ShardedDataPlane, RecorderCapturesEventSequencesAndExports) {
  FibPublisher fib;
  fib.upsert(target_name(0), name_of(0x22), 0);
  fib.upsert(target_name(1), name_of(0x22), 0);
  fib.publish();
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 2;
  cfg.deterministic = true;
  cfg.recorder.sample_period = 1;
  std::uint64_t egressed = 0;
  ShardedDataPlane dp(cfg, fib,
                      [&](std::size_t, const Name&, wire::PduView) { ++egressed; });
  for (int n = 0; n < 50; ++n) {
    ASSERT_TRUE(dp.submit(make_view(target_name(n % 2))));
    dp.run_until_idle();
  }
  EXPECT_EQ(egressed, 50u);

  const std::vector<std::string> names = dp.recorder_track_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "shard0");
  EXPECT_EQ(names[1], "shard1");
  EXPECT_EQ(names[2], "ingress");

  // Every submit was sampled on the ingress track; every shard recorded
  // dequeue/fib_lookup/forward sequences.
  const telemetry::FlightRecorder& rec = dp.recorder();
  EXPECT_EQ(rec.sampled(2), 50u);
  EXPECT_GT(rec.ring(0).recorded(), 0u);
  EXPECT_GT(rec.ring(1).recorded(), 0u);

  const std::string json = dp.perfetto_json();
  for (const char* needle :
       {"\"shard0\"", "\"shard1\"", "\"ingress\"", "\"submit\"", "\"dequeue\"",
        "\"fib_lookup\"", "\"forward\"", "\"trace_id\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  // The deterministic dump carries the count-only recorder slice; the
  // wall-clock latency histogram lives only in wall_json().
  const std::string stats = dp.stats_json();
  EXPECT_NE(stats.find("\"dp.rec.events.seen\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"dp.rec.events.sampled\""), std::string::npos);
  EXPECT_EQ(stats.find("latency"), std::string::npos);
  EXPECT_NE(dp.wall_json().find("\"dp.fwd.latency_ns"), std::string::npos);
}

// Terminal drops bypass the sampling gate: even with a period that never
// fires, every discarded PDU leaves a drop span with its reason.
TEST(ShardedDataPlane, DropSpansBypassSampling) {
  FibPublisher fib;
  fib.publish();
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 2;
  cfg.deterministic = true;
  cfg.recorder.sample_period = 1000000;
  ShardedDataPlane dp(cfg, fib,
                      [](std::size_t, const Name&, wire::PduView) {});
  ASSERT_TRUE(dp.submit(make_view(target_name(0))));      // no_route
  ASSERT_TRUE(dp.submit(make_view(target_name(1), 64, 0)));  // ttl
  dp.run_until_idle();
  EXPECT_EQ(dp.dropped(), 2u);

  const std::string json = dp.perfetto_json();
  EXPECT_NE(json.find("\"drop\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\": \"no_route\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"ttl\""), std::string::npos);
}

// A disabled recorder must record nothing while the data plane keeps
// forwarding — the always-on default is a choice, not a dependency.
TEST(ShardedDataPlane, DisabledRecorderForwardsWithoutRecording) {
  FibPublisher fib;
  fib.upsert(target_name(0), name_of(0x22), 0);
  fib.publish();
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 2;
  cfg.deterministic = true;
  cfg.recorder.enabled = false;
  std::uint64_t egressed = 0;
  ShardedDataPlane dp(cfg, fib,
                      [&](std::size_t, const Name&, wire::PduView) { ++egressed; });
  for (int n = 0; n < 20; ++n) {
    ASSERT_TRUE(dp.submit(make_view(target_name(0))));
    dp.run_until_idle();
  }
  EXPECT_EQ(egressed, 20u);
  const telemetry::FlightRecorder& rec = dp.recorder();
  for (std::size_t t = 0; t < rec.tracks(); ++t) {
    EXPECT_EQ(rec.ring(t).recorded(), 0u) << "track " << t;
  }
  EXPECT_NE(dp.stats_json().find("\"dp.rec.events.seen\": 0"),
            std::string::npos);
}

// The queue-pressure sampler feeds the StatsTimeline with per-shard ring
// gauges and buffer-pool gauges; watermark counters surface the same
// high-water marks deterministically in stats_json.
TEST(ShardedDataPlane, PressureSamplesAndWatermarks) {
  FibPublisher fib;
  fib.upsert(target_name(0), name_of(0x22), 0);
  fib.publish();
  ShardedDataPlane::Config cfg;
  cfg.num_shards = 2;
  cfg.deterministic = true;
  ShardedDataPlane dp(cfg, fib,
                      [](std::size_t, const Name&, wire::PduView) {});
  // Queue several PDUs before draining so the ingress rings see real
  // occupancy (round-robin: both shards get some).
  for (int n = 0; n < 6; ++n) {
    ASSERT_TRUE(dp.submit(make_view(target_name(0))));
  }
  telemetry::StatsTimeline tl;
  dp.sample_pressure(111, tl);
  dp.run_until_idle();
  dp.sample_pressure(222, tl);

  EXPECT_EQ(tl.sample_count(), 2u * (2u * 5u + 3u));
  const std::vector<telemetry::StatsTimeline::Point> occ =
      tl.series("dp.shard0.ingress.occ");
  ASSERT_EQ(occ.size(), 2u);
  EXPECT_EQ(occ[0].value, 3u);  // queued before the drain
  EXPECT_EQ(occ[1].value, 0u);  // drained
  const std::vector<telemetry::StatsTimeline::Point> hw =
      tl.series("dp.shard0.ingress.hw");
  ASSERT_EQ(hw.size(), 2u);
  EXPECT_GE(hw[1].value, 3u);  // high-water survives the drain
  EXPECT_FALSE(tl.series("buffer.pool.live").empty());

  const std::string stats = dp.stats_json();
  EXPECT_NE(stats.find("\"dp.watermark.ingress_hw\": 3"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"dp.watermark.handoff_hw\""), std::string::npos);
}

// ---- End-to-end zero-copy proof over the simulator fabric ----

class ViewSink : public net::PduHandler {
 public:
  std::uint64_t received = 0;
  std::uint64_t payload_bytes = 0;

  void on_pdu(const Name&, const wire::Pdu& pdu) override {
    ++received;
    payload_bytes += pdu.payload.size();
  }
  void on_pdu_view(const Name&, wire::PduView view) override {
    // Consumes the payload straight from the wire segment: no materialize.
    ++received;
    payload_bytes += view.payload().size();
  }
};

// A PDU crossing src -> r1 -> r2 -> sink is serialized exactly once (the
// origin build); both router hops and the delivery run on the same pooled
// segment.  The BufferStats deltas prove it: bytes_copied grows by the
// wire size only, and a warmed pool allocates nothing.
TEST(ZeroCopyForwarding, OneCopyTotalAcrossTwoRouterHops) {
  net::Simulator sim(7);
  net::Network net(sim);
  auto topology = std::make_shared<Topology>();
  Rng rng(42);
  auto k1 = crypto::PrivateKey::generate(rng);
  auto k2 = crypto::PrivateKey::generate(rng);
  Router r1(net, k1, "zc-r1", Name{}, topology);
  Router r2(net, k2, "zc-r2", Name{}, topology);

  const Name src = name_of(0x5C);
  const Name sink_name = name_of(0x5D);
  ViewSink sink;
  net.attach(sink_name, &sink);
  ViewSink src_handler;
  net.attach(src, &src_handler);
  const net::LinkParams fast{Duration{0}, 1e15, 0.0};
  net.connect(src, r1.name(), fast);
  net.connect(r1.name(), r2.name(), fast);
  net.connect(r2.name(), sink_name, fast);

  // Static routes: r1 reaches the sink via r2; r2 delivers directly.
  r1.fib().upsert(sink_name, r2.name(), 0);
  r1.fib().publish();
  r2.fib().upsert(sink_name, sink_name, 0);
  r2.fib().publish();

  const std::size_t kPayload = 8192;
  auto send_one = [&] {
    wire::Pdu pdu;
    pdu.dst = sink_name;
    pdu.src = src;
    pdu.type = wire::MsgType::kBenchData;
    pdu.ttl = 8;
    pdu.payload = Bytes(kPayload, 0xAB);
    net.send(src, r1.name(), std::move(pdu));
    sim.run();
  };

  send_one();  // warm the pool and every code path
  ASSERT_EQ(sink.received, 1u);

  const auto before = BufferStats::snapshot();
  send_one();
  const auto after = BufferStats::snapshot();

  ASSERT_EQ(sink.received, 2u);
  EXPECT_EQ(sink.payload_bytes, 2 * kPayload);
  // Exactly one instrumented copy: the origin serialize into the pooled
  // segment.  Two router hops + delivery added nothing.
  EXPECT_EQ(after.bytes_copied - before.bytes_copied,
            kPayload + wire::kPduOverhead);
  // Warm pool: the origin segment came off a freelist, not the heap.
  EXPECT_EQ(after.segment_allocs, before.segment_allocs);
  EXPECT_GE(after.segment_reuses, before.segment_reuses + 1);
}

}  // namespace
}  // namespace gdp::router
