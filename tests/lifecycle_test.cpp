// Lifecycle tests: owner-driven replica migration ("replicas can be
// migrated and new replicas can be created based on usage patterns; such
// placement decisions are made by the owner", §VI), advertisement renewal
// after expiry, and deserializer robustness under random fuzz.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

TEST(Lifecycle, OwnerAddsReplicaNearTheReaders) {
  // Day 1: the capsule lives on a far server.  Usage shifts: the owner
  // delegates a near server, history backfills, and anycast moves reads
  // to the new replica — clients never change a line of code.
  Scenario s(1, "migrate");
  auto* g = s.add_domain("g", nullptr);
  auto* r_far = s.add_router("r-far", g);
  auto* r_near = s.add_router("r-near", g);
  s.link_routers(r_near, r_far, net::LinkParams::wan(80));
  auto* far_srv = s.add_server("far", r_far);
  auto* near_srv = s.add_server("near", r_near);
  auto* owner_client = s.add_client("owner", r_near);
  auto* reader = s.add_client("reader", r_near);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "migrating");
  // Initially only the far server is delegated.
  ASSERT_TRUE(place_capsule(s, cap, *owner_client, {far_srv}).ok());
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(await(s.sim(), owner_client->append(w, to_bytes("h" + std::to_string(i)))).ok());
  }
  // Reads cross the 80 ms WAN.
  TimePoint t0 = s.sim().now();
  ASSERT_TRUE(await(s.sim(), reader->read_latest(cap.metadata)).ok());
  double far_ms = to_seconds(s.sim().now() - t0) * 1e3;
  EXPECT_GT(far_ms, 80.0);

  // The owner now delegates the near server, telling both about each
  // other so anti-entropy can flow.
  const TimePoint now = s.sim().now();
  const TimePoint expiry = now + from_seconds(1e6);
  auto added = await(s.sim(), owner_client->create_capsule(
                                  near_srv->name(), cap.metadata,
                                  cap.delegation_for(near_srv->principal(), now, expiry),
                                  {far_srv->name()}));
  ASSERT_TRUE(added.ok()) << added.error().to_string();
  near_srv->anti_entropy_round();
  s.settle();
  const auto* near_store = near_srv->storage().find(cap.metadata.name());
  ASSERT_NE(near_store, nullptr);
  EXPECT_EQ(near_store->state().size(), 6u);

  // Fresh client (no cached routes) reads: served locally now.
  auto* reader2 = s.add_client("reader2", r_near);
  s.attach_all();
  const std::uint64_t near_reads_before = near_srv->reads_served();
  t0 = s.sim().now();
  auto read = await(s.sim(), reader2->read_latest(cap.metadata));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  double near_ms = to_seconds(s.sim().now() - t0) * 1e3;
  EXPECT_GT(near_srv->reads_served(), near_reads_before);
  EXPECT_LT(near_ms, far_ms / 4);

  // Retirement: the far server crashes; the capsule remains fully served.
  s.net().detach(far_srv->name());
  ASSERT_TRUE(await(s.sim(), owner_client->append(w, to_bytes("after-retire"))).ok());
  auto final_read = await(s.sim(), reader2->read_latest(cap.metadata));
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(to_string(final_read->records[0].payload), "after-retire");
}

TEST(Lifecycle, AdvertisementExpiryAndRenewal) {
  Scenario s(2, "renewal");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* cli = s.add_client("cli", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "renewable");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());
  ASSERT_EQ(g->lookup_local(cap.metadata.name()).size(), 1u);

  // Let the advertisement lapse (default lifetime is 24 h).
  s.sim().run_until(s.sim().now() + from_seconds(25 * 3600));
  EXPECT_TRUE(g->lookup_local(cap.metadata.name()).empty());

  // The server re-advertises (in deployment this runs on a timer); the
  // name becomes resolvable again — "particularly optimized for transient
  // failure and re-establishment of DataCapsule-service" (§VII).  The
  // client's attachment lease (1 h default) lapsed along with the
  // advertisement — routes now genuinely expire with their RtCerts — so
  // the ack path back to the client needs a renewal as well.
  srv->advertise_to(r->name());
  cli->advertise(r->name(), {});
  s.settle();
  EXPECT_EQ(g->lookup_local(cap.metadata.name()).size(), 1u);

  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), cli->append(w, to_bytes("renewed"))).ok());
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, DeserializersNeverCrashOnGarbage) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = rng.next_bytes(rng.next_below(300));
    // Parsers must reject or accept gracefully — never crash or hang.
    (void)wire::Pdu::deserialize(junk);
    (void)capsule::Record::deserialize(junk);
    (void)capsule::RecordHeader::deserialize(junk);
    (void)capsule::Metadata::deserialize(junk);
    (void)capsule::Heartbeat::deserialize(junk);
    (void)capsule::MembershipProof::deserialize(junk);
    (void)capsule::RangeProof::deserialize(junk);
    (void)trust::Principal::deserialize(junk);
    (void)trust::Cert::deserialize(junk);
    (void)trust::ServingDelegation::deserialize(junk);
    (void)trust::Advertisement::deserialize(junk);
    (void)wire::CreateCapsuleMsg::deserialize(junk);
    (void)wire::AppendMsg::deserialize(junk);
    (void)wire::ReadMsg::deserialize(junk);
    (void)wire::AppendAckMsg::deserialize(junk);
    (void)wire::ReadResponseMsg::deserialize(junk);
    (void)wire::SyncPushMsg::deserialize(junk);
    (void)wire::LookupReplyMsg::deserialize(junk);
  }
  SUCCEED();
}

TEST_P(FuzzSweep, MutatedValidStructuresNeverCrash) {
  // Start from valid serializations and apply random mutations — the
  // parsers may accept (benign mutation) but must stay memory-safe and
  // the capsule validators must reject semantic corruption.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  auto owner = crypto::PrivateKey::generate(rng);
  auto wkey = crypto::PrivateKey::generate(rng);
  auto meta = capsule::Metadata::create(owner, wkey.public_key(),
                                        capsule::WriterMode::kStrictSingleWriter,
                                        "fuzzed", 0);
  ASSERT_TRUE(meta.ok());
  capsule::Writer writer(*meta, wkey, capsule::make_skiplist_strategy());
  Bytes record_bytes = writer.append(rng.next_bytes(64), 1).serialize();
  Bytes meta_bytes = meta->serialize();

  capsule::CapsuleState state(*meta);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = rng.next_bool(0.5) ? record_bytes : meta_bytes;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    auto rec = capsule::Record::deserialize(mutated);
    if (rec.ok()) {
      (void)state.ingest(*rec);  // may reject; must not corrupt state
    }
    (void)capsule::Metadata::deserialize(mutated);
  }
  // State remains consistent: at most the genuine record is attached.
  EXPECT_LE(state.size(), 1u);
  EXPECT_FALSE(state.has_branch());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gdp
