// Tests for the Common Access APIs: filesystem, key-value store,
// multi-writer commit service, and the aggregation service.
#include <gtest/gtest.h>

#include "caapi/aggregate.hpp"
#include "caapi/commit.hpp"
#include "caapi/fs.hpp"
#include "caapi/kv.hpp"
#include "caapi/stream.hpp"
#include "caapi/timeseries.hpp"

namespace gdp::caapi {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

struct World {
  Scenario s;
  router::GLookupService* root;
  router::Router* r1;
  server::CapsuleServer* srv;
  client::GdpClient* app;

  explicit World(std::uint64_t seed) : s(seed, "caapi") {
    root = s.add_domain("global", nullptr);
    r1 = s.add_router("r1", root);
    srv = s.add_server("srv", r1);
    app = s.add_client("app", r1);
    s.attach_all();
  }
};

// ---- Filesystem -----------------------------------------------------------------

TEST(Filesystem, WriteReadRoundTrip) {
  World w(100);
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "test-fs");
  ASSERT_TRUE(fs.ok()) << fs.error().to_string();

  Rng rng(5);
  Bytes model = rng.next_bytes(1000);
  ASSERT_TRUE(fs->write_file("model.ckpt", model).ok());
  auto back = fs->read_file("model.ckpt");
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, model);
}

TEST(Filesystem, MultiChunkFiles) {
  World w(101);
  GdpFilesystem::Options opts;
  opts.chunk_bytes = 128;  // force many chunks
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "chunked", opts);
  ASSERT_TRUE(fs.ok());
  Rng rng(6);
  Bytes big = rng.next_bytes(1000);  // 8 chunks
  ASSERT_TRUE(fs->write_file("big.bin", big).ok());
  auto back = fs->read_file("big.bin");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(Filesystem, EmptyFile) {
  World w(102);
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "emptyfs");
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fs->write_file("empty", Bytes{}).ok());
  auto back = fs->read_file("empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(Filesystem, ListRemoveExists) {
  World w(103);
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "listfs");
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fs->write_file("a.txt", to_bytes("A")).ok());
  ASSERT_TRUE(fs->write_file("b.txt", to_bytes("B")).ok());
  EXPECT_EQ(fs->list(), (std::vector<std::string>{"a.txt", "b.txt"}));
  EXPECT_TRUE(fs->exists("a.txt"));
  ASSERT_TRUE(fs->remove("a.txt").ok());
  EXPECT_FALSE(fs->exists("a.txt"));
  EXPECT_EQ(fs->remove("a.txt").code(), Errc::kNotFound);
  EXPECT_EQ(fs->read_file("a.txt").code(), Errc::kNotFound);
  EXPECT_EQ(fs->list(), (std::vector<std::string>{"b.txt"}));
}

TEST(Filesystem, OverwriteReplacesContent) {
  World w(104);
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "overwrite");
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fs->write_file("f", to_bytes("v1")).ok());
  ASSERT_TRUE(fs->write_file("f", to_bytes("version-two")).ok());
  auto back = fs->read_file("f");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(*back), "version-two");
}

TEST(Filesystem, RefreshSeesCommittedState) {
  World w(105);
  auto fs = GdpFilesystem::create(w.s, *w.app, {w.srv}, "refresh");
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fs->write_file("x", to_bytes("payload")).ok());
  ASSERT_TRUE(fs->write_file("y", to_bytes("other")).ok());
  ASSERT_TRUE(fs->remove("x").ok());
  // Rebuild the view purely from the directory capsule.
  ASSERT_TRUE(fs->refresh().ok());
  EXPECT_EQ(fs->list(), (std::vector<std::string>{"y"}));
  auto back = fs->read_file("y");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(to_string(*back), "other");
}

// ---- KV store -------------------------------------------------------------------

TEST(KvStore, PutGetDel) {
  World w(200);
  auto kv = GdpKvStore::create(w.s, *w.app, {w.srv}, "kv");
  ASSERT_TRUE(kv.ok()) << kv.error().to_string();
  ASSERT_TRUE(kv->put("alpha", "1").ok());
  ASSERT_TRUE(kv->put("beta", "2").ok());
  EXPECT_EQ(kv->get("alpha"), "1");
  EXPECT_EQ(kv->get("beta"), "2");
  EXPECT_FALSE(kv->get("gamma").has_value());
  ASSERT_TRUE(kv->put("alpha", "1b").ok());
  EXPECT_EQ(kv->get("alpha"), "1b");
  ASSERT_TRUE(kv->del("alpha").ok());
  EXPECT_FALSE(kv->get("alpha").has_value());
  EXPECT_EQ(kv->size(), 1u);
}

TEST(KvStore, RecoveryFromCheckpointIsBounded) {
  World w(201);
  GdpKvStore::Options opts;
  opts.checkpoint_interval = 8;
  auto kv = GdpKvStore::create(w.s, *w.app, {w.srv}, "ckpt", opts);
  ASSERT_TRUE(kv.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv->put("key-" + std::to_string(i % 13), std::to_string(i)).ok());
  }

  auto* reader = w.s.add_client("recoverer", w.r1);
  w.s.attach_all();
  auto fresh = GdpKvStore::create(w.s, *reader, {w.srv}, "scratch", opts);
  ASSERT_TRUE(fresh.ok());
  auto fetched = fresh->recover(kv->metadata());
  ASSERT_TRUE(fetched.ok()) << fetched.error().to_string();
  // Bounded by the checkpoint window, not the 100+ record history.
  EXPECT_LE(*fetched, opts.checkpoint_interval + 2);
  for (int i = 87; i < 100; ++i) {
    EXPECT_EQ(fresh->get("key-" + std::to_string(i % 13)),
              kv->get("key-" + std::to_string(i % 13)));
  }
  EXPECT_EQ(fresh->size(), kv->size());
}

TEST(KvStore, RecoveryBeforeFirstCheckpoint) {
  World w(202);
  GdpKvStore::Options opts;
  opts.checkpoint_interval = 50;
  auto kv = GdpKvStore::create(w.s, *w.app, {w.srv}, "young", opts);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->put("only", "value").ok());

  auto* reader = w.s.add_client("recoverer2", w.r1);
  w.s.attach_all();
  auto fresh = GdpKvStore::create(w.s, *reader, {w.srv}, "scratch2", opts);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->recover(kv->metadata()).ok());
  EXPECT_EQ(fresh->get("only"), "value");
}

// ---- Commit service (multi-writer) --------------------------------------------------

TEST(CommitService, SerializesMultipleWriters) {
  World w(300);
  auto* svc_client = w.s.add_client("commit-svc", w.r1);
  auto* alice = w.s.add_client("alice", w.r1);
  auto* bob = w.s.add_client("bob", w.r1);
  w.s.attach_all();

  CapsuleSetup setup = make_capsule(w.s.key_rng(), "shared-log");
  ASSERT_TRUE(place_capsule(w.s, setup, *svc_client, {w.srv}).ok());
  CommitService service(w.s, *svc_client, std::move(setup));

  Proposer alice_p(w.s, *alice);
  Proposer bob_p(w.s, *bob);
  std::vector<client::OpPtr<std::uint64_t>> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back(alice_p.propose(service.service_name(),
                                  to_bytes("alice-" + std::to_string(i))));
    ops.push_back(bob_p.propose(service.service_name(),
                                to_bytes("bob-" + std::to_string(i))));
  }
  w.s.settle();
  std::set<std::uint64_t> seqnos;
  for (auto& op : ops) {
    auto seqno = await(w.s.sim(), op);
    ASSERT_TRUE(seqno.ok()) << seqno.error().to_string();
    seqnos.insert(*seqno);
  }
  // A total order: 8 distinct consecutive seqnos.
  EXPECT_EQ(seqnos.size(), 8u);
  EXPECT_EQ(*seqnos.begin(), 1u);
  EXPECT_EQ(*seqnos.rbegin(), 8u);
  EXPECT_EQ(service.proposals_committed(), 8u);

  // Committed records carry attributable proposer identities.
  auto read = await(w.s.sim(), alice->read(service.metadata(), 1, 8));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  int alice_count = 0, bob_count = 0;
  for (const auto& rec : read->records) {
    auto decoded = CommitService::decode_committed(rec.payload);
    ASSERT_TRUE(decoded.ok());
    if (decoded->first == alice->name()) ++alice_count;
    if (decoded->first == bob->name()) ++bob_count;
  }
  EXPECT_EQ(alice_count, 4);
  EXPECT_EQ(bob_count, 4);
}

// ---- Aggregator -----------------------------------------------------------------------

TEST(Aggregator, CombinesMultipleSources) {
  World w(400);
  auto* agg_client = w.s.add_client("aggregator", w.r1);
  auto* sensor1 = w.s.add_client("sensor1", w.r1);
  auto* sensor2 = w.s.add_client("sensor2", w.r1);
  auto* consumer = w.s.add_client("consumer", w.r1);
  w.s.attach_all();

  CapsuleSetup src1 = make_capsule(w.s.key_rng(), "temp-sensor");
  CapsuleSetup src2 = make_capsule(w.s.key_rng(), "humidity-sensor");
  CapsuleSetup out = make_capsule(w.s.key_rng(), "combined");
  ASSERT_TRUE(place_capsule(w.s, src1, *sensor1, {w.srv}).ok());
  ASSERT_TRUE(place_capsule(w.s, src2, *sensor2, {w.srv}).ok());
  ASSERT_TRUE(place_capsule(w.s, out, *agg_client, {w.srv}).ok());

  Aggregator aggregator(w.s, *agg_client, std::move(out));
  TimePoint expiry = w.s.sim().now() + from_seconds(3600);
  ASSERT_TRUE(aggregator
                  .add_source(src1.metadata,
                              src1.sub_cert_for(agg_client->name(),
                                                w.s.sim().now(), expiry))
                  .ok());
  ASSERT_TRUE(aggregator
                  .add_source(src2.metadata,
                              src2.sub_cert_for(agg_client->name(),
                                                w.s.sim().now(), expiry))
                  .ok());

  capsule::Writer w1 = src1.make_writer();
  capsule::Writer w2 = src2.make_writer();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(await(w.s.sim(), sensor1->append(w1, to_bytes("t" + std::to_string(i)))).ok());
    ASSERT_TRUE(await(w.s.sim(), sensor2->append(w2, to_bytes("h" + std::to_string(i)))).ok());
  }
  w.s.settle();
  EXPECT_EQ(aggregator.events_aggregated(), 6u);

  // The combined capsule is readable/verifiable like any other.
  auto read = await(w.s.sim(), consumer->read(aggregator.output_metadata(), 1, 6));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  int from1 = 0, from2 = 0;
  for (const auto& rec : read->records) {
    auto decoded = Aggregator::decode(rec.payload);
    ASSERT_TRUE(decoded.ok());
    if (std::get<0>(*decoded) == src1.metadata.name()) ++from1;
    if (std::get<0>(*decoded) == src2.metadata.name()) ++from2;
  }
  EXPECT_EQ(from1, 3);
  EXPECT_EQ(from2, 3);
}

// ---- Stream ------------------------------------------------------------------------

TEST(Stream, LiveDeliveryAllFrames) {
  World w(500);
  auto* cam = w.s.add_client("camera", w.r1);
  auto* viewer = w.s.add_client("viewer", w.r1);
  w.s.attach_all();
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "video");
  ASSERT_TRUE(place_capsule(w.s, cap, *cam, {w.srv}).ok());

  StreamPlayer player(w.s, *viewer, cap.metadata);
  auto joined = player.join(cap.sub_cert_for(viewer->name(), w.s.sim().now(),
                                             w.s.sim().now() + from_seconds(3600)));
  ASSERT_TRUE(joined.ok()) << joined.error().to_string();

  StreamPublisher publisher(w.s, *cam, std::move(cap));
  Rng frames_rng(1);
  for (int i = 0; i < 10; ++i) publisher.publish_frame(frames_rng.next_bytes(512));
  w.s.settle();
  EXPECT_EQ(publisher.frames_published(), 10u);
  EXPECT_EQ(player.frames_received(), 10u);
  EXPECT_TRUE(player.gaps().empty());
  EXPECT_TRUE(player.frame(7).has_value());
}

TEST(Stream, LossyFeedGapsDetectedAndBackfilled) {
  World w(501);
  auto* cam = w.s.add_client("camera", w.r1);
  auto* viewer = w.s.add_client("viewer", w.r1);
  w.s.attach_all();
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "lossy-video");
  ASSERT_TRUE(place_capsule(w.s, cap, *cam, {w.srv}).ok());

  StreamPlayer player(w.s, *viewer, cap.metadata);
  ASSERT_TRUE(player
                  .join(cap.sub_cert_for(viewer->name(), w.s.sim().now(),
                                         w.s.sim().now() + from_seconds(3600)))
                  .ok());

  // Drop ~half of the publish events on the viewer's access link; the
  // capsule itself stays intact on the server.
  Rng drop_rng(7);
  w.s.net().set_interceptor(
      w.r1->name(), viewer->name(),
      [&drop_rng](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kPublish && drop_rng.next_bool(0.5)) {
          return std::nullopt;
        }
        return pdu;
      });

  capsule::Metadata meta = cap.metadata;
  StreamPublisher publisher(w.s, *cam, std::move(cap));
  Rng frames_rng(2);
  for (int i = 0; i < 20; ++i) publisher.publish_frame(frames_rng.next_bytes(256));
  w.s.settle();

  // Some frames were lost live — integrity intact, just missing.
  EXPECT_LT(player.frames_received(), 20u);
  EXPECT_FALSE(player.gaps().empty());

  // Backfill through verified reads recovers every gap.
  w.s.net().clear_interceptor(w.r1->name(), viewer->name());
  auto recovered = player.backfill();
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_GT(*recovered, 0u);
  EXPECT_TRUE(player.gaps().empty());
  for (std::uint64_t s = 1; s <= player.highest_seqno(); ++s) {
    EXPECT_TRUE(player.frame(s).has_value()) << "frame " << s;
  }
}

// ---- Time series -------------------------------------------------------------------

TEST(TimeSeries, RecordAndQueryWindow) {
  World w(600);
  auto* sensor = w.s.add_client("sensor", w.r1);
  auto* analyst = w.s.add_client("analyst", w.r1);
  w.s.attach_all();
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "temps");
  ASSERT_TRUE(place_capsule(w.s, cap, *sensor, {w.srv}).ok());
  capsule::Metadata meta = cap.metadata;

  TimeSeriesWriter writer(w.s, *sensor, std::move(cap));
  std::vector<TimePoint> stamps;
  for (int i = 0; i < 40; ++i) {
    stamps.push_back(w.s.sim().now());
    ASSERT_TRUE(writer.record(20.0 + i * 0.1).ok());
    w.s.settle_for(from_seconds(60));  // one sample per minute
  }

  TimeSeriesReader reader(w.s, *analyst, meta);
  // Window covering samples 10..19 (inclusive).
  auto window = reader.query(stamps[10], stamps[19]);
  ASSERT_TRUE(window.ok()) << window.error().to_string();
  ASSERT_EQ(window->size(), 10u);
  EXPECT_DOUBLE_EQ(window->front().value, 21.0);
  EXPECT_DOUBLE_EQ(window->back().value, 21.9);
  // Boundary search is logarithmic, not linear.
  EXPECT_LE(reader.point_reads(), 2 * 7u);

  // Empty window.
  auto none = reader.query(stamps[39] + from_seconds(120),
                           stamps[39] + from_seconds(240));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  // Latest-n.
  auto last5 = reader.latest(5);
  ASSERT_TRUE(last5.ok());
  ASSERT_EQ(last5->size(), 5u);
  EXPECT_DOUBLE_EQ(last5->back().value, 23.9);
}

TEST(TimeSeries, SampleRoundTripWithTag) {
  Sample s;
  s.timestamp_ns = 123456789;
  s.value = -40.25;
  s.tag = to_bytes("unit=C");
  auto back = Sample::deserialize(s.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->timestamp_ns, s.timestamp_ns);
  EXPECT_DOUBLE_EQ(back->value, s.value);
  EXPECT_EQ(back->tag, s.tag);
  EXPECT_FALSE(Sample::deserialize(Bytes(5)).ok());
}

// ---- Multi-replica CAAPIs ------------------------------------------------------------

TEST(Filesystem, SurvivesReplicaCrash) {
  Scenario s(601, "fs-replicated");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* app = s.add_client("app", r1);
  s.attach_all();

  GdpFilesystem::Options opts;
  opts.required_acks = 2;  // durable writes across both replicas
  auto fs = GdpFilesystem::create(s, *app, {srv1, srv2}, "replicated-fs", opts);
  ASSERT_TRUE(fs.ok()) << fs.error().to_string();
  Rng rng(9);
  Bytes doc = rng.next_bytes(5000);
  ASSERT_TRUE(fs->write_file("doc.bin", doc).ok());

  // Primary-side replica dies (and its router notices the link drop); the
  // file and the directory remain readable through the surviving replica.
  s.crash(*srv1);
  auto back = fs->read_file("doc.bin");
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, doc);
}

}  // namespace
}  // namespace gdp::caapi
