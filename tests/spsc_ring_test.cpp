// SpscRing: the cross-shard handoff primitive.  Wraparound arithmetic,
// full/empty edges, move-only payloads, and a cross-thread stress run
// that the CI ThreadSanitizer job re-executes for race coverage.
#include "net/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace gdp::net {
namespace {

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwoMinusOne) {
  // capacity+1 slots rounded to a power of two, one sacrificed.
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 3u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 7u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 15u);
  EXPECT_EQ(SpscRing<int>(15).capacity(), 15u);
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<int> ring(4);  // 7 usable slots
  const std::size_t cap = ring.capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    EXPECT_TRUE(ring.try_push(static_cast<int>(i))) << i;
  }
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), cap);
  // Value is untouched on failed push: pop everything back in order.
  for (std::size_t i = 0; i < cap; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, static_cast<int>(i));
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WraparoundPreservesFifoOrder) {
  SpscRing<int> ring(4);
  int out = -1;
  // Push/pop enough times to wrap the index mask several times over.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    for (int k = 0; k < 3; ++k) ASSERT_TRUE(ring.try_push(next_push++));
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(next_pop, 300);
}

TEST(SpscRing, MoveOnlyPayloadMovesThrough) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRing, FailedPushDoesNotConsumeValue) {
  SpscRing<std::unique_ptr<int>> ring(1);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  auto v = std::make_unique<int>(2);
  ASSERT_FALSE(ring.try_push(std::move(v)));
  ASSERT_NE(v, nullptr);  // untouched on failure
  EXPECT_EQ(*v, 2);
}

// Cross-thread stress: one producer, one consumer, a ring small enough to
// hit full/empty constantly.  Every value must arrive exactly once, in
// order.  Run under TSan this also proves the acquire/release pairing.
TEST(SpscRing, CrossThreadStressInOrder) {
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.try_push(std::uint64_t{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kCount) {
    std::uint64_t out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      sum += out;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

}  // namespace
}  // namespace gdp::net
