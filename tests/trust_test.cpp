// Tests for principals, certificates, delegation chains and naming
// catalogs — the GDP's PKI-free trust machinery.
#include <gtest/gtest.h>

#include "capsule/metadata.hpp"
#include "common/rng.hpp"
#include "trust/advertisement.hpp"
#include "trust/cert.hpp"
#include "trust/delegation.hpp"
#include "trust/principal.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::trust {
namespace {

struct World {
  Rng rng{777};
  crypto::PrivateKey owner_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey writer_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey server_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey router_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey org_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey suborg_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey mallory_key = crypto::PrivateKey::generate(rng);

  Principal server = Principal::create(server_key, Role::kCapsuleServer, "srv-0");
  Principal router = Principal::create(router_key, Role::kRouter, "rtr-0");
  Principal org = Principal::create(org_key, Role::kOrganization, "acme-storage");
  Principal suborg = Principal::create(suborg_key, Role::kOrganization, "acme-west");

  capsule::Metadata metadata = [&] {
    auto m = capsule::Metadata::create(owner_key, writer_key.public_key(),
                                       capsule::WriterMode::kStrictSingleWriter,
                                       "trusted-capsule", 0);
    EXPECT_TRUE(m.ok());
    return std::move(m).value();
  }();

  Name owner_name = owner_key.public_key().fingerprint();
  TimePoint t0 = from_seconds(100);
  TimePoint t1 = from_seconds(10000);
  TimePoint now = from_seconds(500);
};

// ---- Principals ----------------------------------------------------------------

TEST(Principal, CreateAndVerify) {
  World w;
  EXPECT_TRUE(w.server.verify().ok());
  EXPECT_EQ(w.server.role(), Role::kCapsuleServer);
  EXPECT_EQ(w.server.label(), "srv-0");
  EXPECT_FALSE(w.server.name().is_zero());
}

TEST(Principal, SerializationRoundTrip) {
  World w;
  auto back = Principal::deserialize(w.router.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->name(), w.router.name());
  EXPECT_EQ(back->role(), Role::kRouter);
  EXPECT_EQ(back->label(), "rtr-0");
}

TEST(Principal, TamperedRejected) {
  World w;
  Bytes wire = w.org.serialize();
  for (std::size_t i = 0; i < wire.size(); i += 23) {
    Bytes bad = wire;
    bad[i] ^= 0x40;
    EXPECT_FALSE(Principal::deserialize(bad).ok()) << "byte " << i;
  }
}

TEST(Principal, DistinctKeysDistinctNames) {
  World w;
  EXPECT_NE(w.server.name(), w.router.name());
  // Same key, different label => different name (name covers everything).
  Principal relabeled = Principal::create(w.server_key, Role::kCapsuleServer, "srv-1");
  EXPECT_NE(relabeled.name(), w.server.name());
}

TEST(Principal, RoleNames) {
  EXPECT_EQ(role_name(Role::kCapsuleServer), "capsule-server");
  EXPECT_EQ(role_name(Role::kOrganization), "organization");
}

// ---- Certs ---------------------------------------------------------------------

TEST(Cert, AdCertVerifies) {
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.server.name(), w.t0, w.t1);
  EXPECT_TRUE(ad.verify(w.owner_key.public_key(), w.now).ok());
  EXPECT_EQ(ad.kind, CertKind::kAdCert);
  EXPECT_EQ(ad.object, w.metadata.name());
  EXPECT_EQ(ad.subject, w.server.name());
}

TEST(Cert, WrongIssuerKeyRejected) {
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.server.name(), w.t0, w.t1);
  EXPECT_EQ(ad.verify(w.mallory_key.public_key(), w.now).code(),
            Errc::kVerificationFailed);
}

TEST(Cert, ValidityWindowEnforced) {
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.server.name(), w.t0, w.t1);
  EXPECT_EQ(ad.verify(w.owner_key.public_key(), from_seconds(1)).code(), Errc::kExpired);
  EXPECT_EQ(ad.verify(w.owner_key.public_key(), from_seconds(20000)).code(),
            Errc::kExpired);
  EXPECT_TRUE(ad.verify(w.owner_key.public_key(), w.t0).ok());
  EXPECT_TRUE(ad.verify(w.owner_key.public_key(), w.t1).ok());
}

TEST(Cert, SerializationRoundTrip) {
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.server.name(), w.t0, w.t1,
                         {w.org.name(), w.suborg.name()});
  auto back = Cert::deserialize(ad.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, ad);
  EXPECT_TRUE(back->verify(w.owner_key.public_key(), w.now).ok());
}

TEST(Cert, TamperedFieldsRejected) {
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.server.name(), w.t0, w.t1);
  Cert widened = ad;
  widened.not_after_ns = from_seconds(999999).count();  // extend validity
  EXPECT_EQ(widened.verify(w.owner_key.public_key(), w.now).code(),
            Errc::kVerificationFailed);
  Cert retargeted = ad;
  retargeted.subject = w.router.name();  // point delegation elsewhere
  EXPECT_EQ(retargeted.verify(w.owner_key.public_key(), w.now).code(),
            Errc::kVerificationFailed);
}

TEST(Cert, DomainRestriction) {
  World w;
  Name domain_a = w.org.name();
  Name domain_b = w.suborg.name();
  Cert open = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.server.name(), w.t0, w.t1);
  EXPECT_TRUE(open.domain_allowed(domain_a));
  Cert restricted = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                                 w.server.name(), w.t0, w.t1, {domain_a});
  EXPECT_TRUE(restricted.domain_allowed(domain_a));
  EXPECT_FALSE(restricted.domain_allowed(domain_b));
}

// ---- Delegation chains ------------------------------------------------------------

TEST(Delegation, DirectOwnerToServer) {
  World w;
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.server.name(), w.t0, w.t1);
  EXPECT_TRUE(verify_serving_delegation(w.metadata, w.server, d, w.now).ok());
}

TEST(Delegation, ThroughOrganizationHierarchy) {
  World w;
  // owner -> acme-storage -> acme-west -> server
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.org.name(), w.t0, w.t1);
  d.orgs = {w.org, w.suborg};
  d.member_certs = {
      make_org_member_cert(w.org_key, w.org.name(), w.suborg.name(), w.t0, w.t1),
      make_org_member_cert(w.suborg_key, w.suborg.name(), w.server.name(), w.t0, w.t1),
  };
  EXPECT_TRUE(verify_serving_delegation(w.metadata, w.server, d, w.now).ok());
}

TEST(Delegation, BrokenOrgChainRejected) {
  World w;
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.org.name(), w.t0, w.t1);
  // Sub-org cert signed by the WRONG org key (mallory forging membership).
  d.orgs = {w.org};
  d.member_certs = {make_org_member_cert(w.mallory_key, w.org.name(),
                                         w.server.name(), w.t0, w.t1)};
  EXPECT_EQ(verify_serving_delegation(w.metadata, w.server, d, w.now).code(),
            Errc::kVerificationFailed);
}

TEST(Delegation, ChainMustTerminateAtServer) {
  World w;
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.org.name(), w.t0, w.t1);
  d.orgs = {w.org};
  d.member_certs = {make_org_member_cert(w.org_key, w.org.name(),
                                         w.router.name(), w.t0, w.t1)};
  EXPECT_EQ(verify_serving_delegation(w.metadata, w.server, d, w.now).code(),
            Errc::kPermissionDenied);
}

TEST(Delegation, AdCertForDifferentCapsuleRejected) {
  World w;
  auto other = capsule::Metadata::create(w.owner_key, w.writer_key.public_key(),
                                         capsule::WriterMode::kStrictSingleWriter,
                                         "other-capsule", 0);
  ASSERT_TRUE(other.ok());
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, other->name(),
                           w.server.name(), w.t0, w.t1);
  EXPECT_EQ(verify_serving_delegation(w.metadata, w.server, d, w.now).code(),
            Errc::kPermissionDenied);
}

TEST(Delegation, ForgedAdCertRejected) {
  World w;
  // Mallory (not the owner) signs the AdCert: name-squatting attempt.
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.mallory_key, w.owner_name, w.metadata.name(),
                           w.server.name(), w.t0, w.t1);
  EXPECT_EQ(verify_serving_delegation(w.metadata, w.server, d, w.now).code(),
            Errc::kVerificationFailed);
}

TEST(Delegation, ExpiredChainRejected) {
  World w;
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.server.name(), w.t0, w.t1);
  EXPECT_EQ(verify_serving_delegation(w.metadata, w.server, d, from_seconds(99999)).code(),
            Errc::kExpired);
}

TEST(Delegation, DomainPolicyEnforced) {
  World w;
  Name allowed = w.org.name();
  Name forbidden = w.suborg.name();
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.server.name(), w.t0, w.t1, {allowed});
  EXPECT_TRUE(verify_serving_delegation(w.metadata, w.server, d, w.now, &allowed).ok());
  EXPECT_EQ(
      verify_serving_delegation(w.metadata, w.server, d, w.now, &forbidden).code(),
      Errc::kPermissionDenied);
}

TEST(Delegation, SerializationRoundTrip) {
  World w;
  ServingDelegation d;
  d.ad_cert = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                           w.org.name(), w.t0, w.t1);
  d.orgs = {w.org};
  d.member_certs = {make_org_member_cert(w.org_key, w.org.name(),
                                         w.server.name(), w.t0, w.t1)};
  auto back = ServingDelegation::deserialize(d.serialize());
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_TRUE(verify_serving_delegation(w.metadata, w.server, *back, w.now).ok());
}

TEST(Delegation, RtCertVerifies) {
  World w;
  Cert rt = make_rt_cert(w.server_key, w.server.name(), w.router.name(), w.t0, w.t1);
  EXPECT_TRUE(verify_routing_delegation(rt, w.server, w.router, w.now).ok());
}

TEST(Delegation, RtCertWrongRouterRejected) {
  World w;
  Principal router2 =
      Principal::create(w.mallory_key, Role::kRouter, "evil-router");
  Cert rt = make_rt_cert(w.server_key, w.server.name(), w.router.name(), w.t0, w.t1);
  EXPECT_EQ(verify_routing_delegation(rt, w.server, router2, w.now).code(),
            Errc::kPermissionDenied);
}

TEST(Delegation, RtCertForgedRejected) {
  World w;
  Cert rt = make_rt_cert(w.mallory_key, w.server.name(), w.router.name(), w.t0, w.t1);
  EXPECT_EQ(verify_routing_delegation(rt, w.server, w.router, w.now).code(),
            Errc::kVerificationFailed);
}

TEST(Delegation, SubCertGrantsAndDenies) {
  World w;
  Name alice = crypto::PrivateKey::generate(w.rng).public_key().fingerprint();
  Name bob = crypto::PrivateKey::generate(w.rng).public_key().fingerprint();
  Cert sub = make_sub_cert(w.owner_key, w.owner_name, w.metadata.name(), alice,
                           w.t0, w.t1);
  EXPECT_TRUE(verify_subscription(w.metadata, sub, alice, w.now).ok());
  EXPECT_EQ(verify_subscription(w.metadata, sub, bob, w.now).code(),
            Errc::kPermissionDenied);
  EXPECT_EQ(verify_subscription(w.metadata, sub, alice, from_seconds(99999)).code(),
            Errc::kExpired);
}

// ---- Naming catalogs ---------------------------------------------------------------

TEST(Catalog, AdvertisementRoundTrip) {
  World w;
  Advertisement ad;
  ad.advertised = w.metadata.name();
  ad.expires_ns = from_seconds(600).count();
  ad.delegation.ad_cert = make_ad_cert(w.owner_key, w.owner_name,
                                       w.metadata.name(), w.server.name(), w.t0, w.t1);
  auto back = Advertisement::deserialize(ad.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->advertised, ad.advertised);
  EXPECT_EQ(back->expires_ns, ad.expires_ns);
}

TEST(Catalog, ApplyAndExpire) {
  World w;
  Advertisement ad;
  ad.advertised = w.metadata.name();
  ad.expires_ns = from_seconds(600).count();
  ad.delegation.ad_cert = make_ad_cert(w.owner_key, w.owner_name,
                                       w.metadata.name(), w.server.name(), w.t0, w.t1);
  Catalog catalog;
  ASSERT_TRUE(catalog.apply(Catalog::encode_advertisement(ad)).ok());
  ASSERT_EQ(catalog.advertisements().size(), 1u);
  EXPECT_EQ(catalog.live(from_seconds(500)).size(), 1u);
  EXPECT_EQ(catalog.live(from_seconds(700)).size(), 0u);
}

TEST(Catalog, GroupExtensionDefersExpiry) {
  World w;
  Advertisement ad;
  ad.advertised = w.metadata.name();
  ad.expires_ns = from_seconds(600).count();
  ad.delegation.ad_cert = make_ad_cert(w.owner_key, w.owner_name,
                                       w.metadata.name(), w.server.name(), w.t0, w.t1);
  Catalog catalog;
  ASSERT_TRUE(catalog.apply(Catalog::encode_advertisement(ad)).ok());
  ASSERT_TRUE(catalog.apply(Catalog::encode_extension(from_seconds(900).count())).ok());
  EXPECT_EQ(catalog.live(from_seconds(700)).size(), 1u);
  EXPECT_EQ(catalog.live(from_seconds(1000)).size(), 0u);
  // Extensions never shorten.
  ASSERT_TRUE(catalog.apply(Catalog::encode_extension(from_seconds(100).count())).ok());
  EXPECT_EQ(catalog.live(from_seconds(700)).size(), 1u);
}

TEST(Catalog, RejectsGarbageRecords) {
  Catalog catalog;
  EXPECT_FALSE(catalog.apply(Bytes{}).ok());
  EXPECT_FALSE(catalog.apply(Bytes{0x7f, 0x01}).ok());
  EXPECT_FALSE(catalog.apply(Bytes{0x01, 0x02}).ok());  // truncated advertisement
}

// ---- Verification cache --------------------------------------------------------

TEST(VerifyCache, HitSkipsSecondVerification) {
  World w;
  Cert cert = make_rt_cert(w.server_key, w.server.name(), w.router.name(),
                           w.t0, w.t1);
  VerifyCache cache;
  EXPECT_TRUE(cert.verify(w.server.key(), w.now, &cache).ok());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_TRUE(cert.verify(w.server.key(), w.now, &cache).ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(VerifyCache, WindowCheckedOutsideTheCache) {
  // A cached *signature* verdict must not resurrect an expired cert: the
  // validity window is evaluated fresh on every verify call.
  World w;
  Cert cert = make_rt_cert(w.server_key, w.server.name(), w.router.name(),
                           w.t0, w.t1);
  VerifyCache cache;
  EXPECT_TRUE(cert.verify(w.server.key(), w.now, &cache).ok());
  EXPECT_FALSE(cert.verify(w.server.key(), w.t1 + from_seconds(1), &cache).ok());
  EXPECT_FALSE(cert.verify(w.server.key(), w.t0 - from_seconds(1), &cache).ok());
}

TEST(VerifyCache, EntryExpiresWithTheCert) {
  World w;
  Cert cert = make_rt_cert(w.server_key, w.server.name(), w.router.name(),
                           w.t0, w.t1);
  VerifyCache cache;
  const crypto::Digest key =
      VerifyCache::make_key(w.server.key(), cert.signed_payload(), cert.sig);
  cache.store(key, true, cert.not_after_ns, w.now);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.probe(key, w.now).has_value());
  // Past not_after the entry is dropped and reported as a miss.
  EXPECT_FALSE(cache.probe(key, w.t1 + from_seconds(1)).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Storing an already-stale verdict is refused.
  cache.store(key, true, cert.not_after_ns, w.t1 + from_seconds(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerifyCache, NegativeVerdictsAreCached) {
  World w;
  Cert cert = make_rt_cert(w.server_key, w.server.name(), w.router.name(),
                           w.t0, w.t1);
  cert.not_after_ns += 1;  // invalidate the signature
  VerifyCache cache;
  EXPECT_FALSE(cert.verify(w.server.key(), w.now, &cache).ok());
  EXPECT_FALSE(cert.verify(w.server.key(), w.now, &cache).ok());
  EXPECT_EQ(cache.hits(), 1u);  // the forged replay cost no curve math
}

TEST(VerifyCache, LruEvictionAtCapacity) {
  World w;
  VerifyCache cache(2);
  crypto::Digest k1{}, k2{}, k3{};
  k1[0] = 1;
  k2[0] = 2;
  k3[0] = 3;
  const std::int64_t never = w.t1.count() * 1000;
  cache.store(k1, true, never, w.now);
  cache.store(k2, true, never, w.now);
  EXPECT_TRUE(cache.probe(k1, w.now).has_value());  // k1 now most recent
  cache.store(k3, true, never, w.now);              // evicts k2 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.probe(k1, w.now).has_value());
  EXPECT_FALSE(cache.probe(k2, w.now).has_value());
  EXPECT_TRUE(cache.probe(k3, w.now).has_value());
  // Shrinking capacity drops least-recent entries.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.probe(k3, w.now).has_value());
}

TEST(VerifyCache, SharedAcrossDelegationChain) {
  // A full serving-delegation chain re-verified with the same cache does
  // zero ECDSA work the second time.
  World w;
  Cert ad = make_ad_cert(w.owner_key, w.owner_name, w.metadata.name(),
                         w.org.name(), w.t0, w.t1);
  Cert member = make_org_member_cert(w.org_key, w.org.name(), w.server.name(),
                                     w.t0, w.t1);
  ServingDelegation d;
  d.ad_cert = ad;
  d.orgs = {w.org};
  d.member_certs = {member};
  VerifyCache cache;
  ASSERT_TRUE(verify_serving_delegation(w.metadata, w.server, d, w.now, nullptr,
                                        &cache)
                  .ok());
  const std::uint64_t first_misses = cache.misses();
  EXPECT_GT(first_misses, 0u);
  ASSERT_TRUE(verify_serving_delegation(w.metadata, w.server, d, w.now, nullptr,
                                        &cache)
                  .ok());
  EXPECT_EQ(cache.misses(), first_misses);  // all hits on re-verification
  EXPECT_EQ(cache.hits(), first_misses);
}

}  // namespace
}  // namespace gdp::trust
