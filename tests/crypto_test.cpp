// Tests for the crypto substrate: SHA-256 / HMAC against published test
// vectors, ChaCha20 against the RFC 7539 block-function vector, the
// secp256k1 arithmetic against a reference reduction and known points, and
// ECDSA / ECDH end-to-end properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/secp256k1_detail.hpp"
#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"

namespace gdp::crypto {
namespace {

std::string digest_hex(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

// ---- SHA-256 (FIPS 180-4 vectors) ------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(sha256(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog etc etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split=" << split;
  }
}

TEST(Sha256, LengthBoundaryPadding) {
  // Exercise messages around the 55/56/64-byte padding boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes msg(len, 0x5a);
    Sha256 a;
    a.update(msg);
    Digest incremental = a.finish();
    EXPECT_EQ(incremental, sha256(msg)) << "len=" << len;
  }
}

// ---- HMAC-SHA256 (RFC 4231 vectors) ----------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(digest_hex(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  Bytes long_key(100, 0xaa);
  Bytes data = to_bytes("payload");
  // A key longer than the block size must behave like its SHA-256 digest.
  Digest kd = sha256(long_key);
  EXPECT_EQ(hmac_sha256(long_key, data),
            hmac_sha256(BytesView(kd.data(), kd.size()), data));
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  Bytes key = to_bytes("session-key");
  Bytes data = to_bytes("ack seqno=42");
  Digest tag = hmac_sha256(key, data);
  EXPECT_TRUE(hmac_verify(key, data, BytesView(tag.data(), tag.size())));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, data, BytesView(tag.data(), tag.size())));
  EXPECT_FALSE(hmac_verify(key, to_bytes("ack seqno=43"),
                           BytesView(tag.data(), tag.size())));
}

TEST(Hmac, DeriveKeyLengthsAndDeterminism) {
  Bytes ikm = to_bytes("input keying material");
  Bytes k16 = derive_key(ikm, "label", 16);
  Bytes k64 = derive_key(ikm, "label", 64);
  EXPECT_EQ(k16.size(), 16u);
  EXPECT_EQ(k64.size(), 64u);
  EXPECT_EQ(Bytes(k64.begin(), k64.begin() + 16), k16);
  EXPECT_NE(derive_key(ikm, "label2", 16), k16);
  EXPECT_EQ(derive_key(ikm, "label", 16), k16);
}

// ---- ChaCha20 ---------------------------------------------------------------

TEST(ChaCha20, Rfc7539BlockFunction) {
  SymmetricKey key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  Nonce96 nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  // Keystream = encryption of zeros.
  Bytes ks = chacha20_xor(key, nonce, 1, Bytes(64, 0));
  EXPECT_EQ(hex_encode(BytesView(ks.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  SymmetricKey key{};
  key[0] = 0x42;
  Nonce96 nonce{};
  Bytes msg = to_bytes("attack at dawn, bring the capsules");
  Bytes ct = chacha20_xor(key, nonce, 7, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(chacha20_xor(key, nonce, 7, ct), msg);
}

TEST(ChaCha20, CounterContinuity) {
  // Encrypting in one shot must equal encrypting 64-byte chunks with
  // consecutive counters.
  SymmetricKey key{};
  key[5] = 9;
  Nonce96 nonce{};
  nonce[3] = 1;
  Bytes msg(200, 0xab);
  Bytes whole = chacha20_xor(key, nonce, 1, msg);
  Bytes pieces;
  for (std::size_t off = 0; off < msg.size(); off += 64) {
    std::size_t n = std::min<std::size_t>(64, msg.size() - off);
    Bytes part = chacha20_xor(key, nonce, static_cast<std::uint32_t>(1 + off / 64),
                              BytesView(msg.data() + off, n));
    append(pieces, part);
  }
  EXPECT_EQ(whole, pieces);
}

TEST(SecretBox, SealOpenRoundTrip) {
  SymmetricKey key{};
  key[1] = 0x11;
  Nonce96 nonce{};
  nonce[0] = 3;
  Bytes msg = to_bytes("confidential record payload");
  Bytes aad = to_bytes("capsule-name");
  Bytes boxed = secretbox_seal(key, nonce, msg, aad);
  auto opened = secretbox_open(key, boxed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(SecretBox, TamperDetected) {
  SymmetricKey key{};
  Nonce96 nonce{};
  Bytes boxed = secretbox_seal(key, nonce, to_bytes("payload"));
  for (std::size_t i = 0; i < boxed.size(); i += 7) {
    Bytes tampered = boxed;
    tampered[i] ^= 0x80;
    EXPECT_FALSE(secretbox_open(key, tampered).has_value()) << "byte " << i;
  }
}

TEST(SecretBox, WrongKeyOrAadFails) {
  SymmetricKey key{};
  SymmetricKey other{};
  other[0] = 1;
  Nonce96 nonce{};
  Bytes boxed = secretbox_seal(key, nonce, to_bytes("data"), to_bytes("ctx"));
  EXPECT_FALSE(secretbox_open(other, boxed, to_bytes("ctx")).has_value());
  EXPECT_FALSE(secretbox_open(key, boxed, to_bytes("other-ctx")).has_value());
  EXPECT_TRUE(secretbox_open(key, boxed, to_bytes("ctx")).has_value());
}

TEST(SecretBox, TooShortInputRejected) {
  SymmetricKey key{};
  EXPECT_FALSE(secretbox_open(key, Bytes(10)).has_value());
}

// ---- U256 arithmetic ---------------------------------------------------------

TEST(U256, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    Bytes raw = rng.next_bytes(32);
    U256 v = U256::from_bytes_be(raw);
    EXPECT_EQ(v.to_bytes_be(), raw);
  }
}

TEST(U256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = U256::from_bytes_be(rng.next_bytes(32));
    U256 b = U256::from_bytes_be(rng.next_bytes(32));
    U256 sum, back;
    std::uint64_t carry = add_carry(sum, a, b);
    std::uint64_t borrow = sub_borrow(back, sum, b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // overflow on add implies underflow on sub
  }
}

TEST(U256, HighestBit) {
  EXPECT_EQ(U256::zero().highest_bit(), -1);
  EXPECT_EQ(U256::from_u64(1).highest_bit(), 0);
  EXPECT_EQ(U256::from_u64(0x8000000000000000ULL).highest_bit(), 63);
  U256 top{{0, 0, 0, 1}};
  EXPECT_EQ(top.highest_bit(), 192);
}

TEST(U256, MulFullMatchesSmall) {
  U256 a = U256::from_u64(0xFFFFFFFFFFFFFFFFULL);
  U512 sq = mul_full(a, a);
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(sq.w[0], 1u);
  EXPECT_EQ(sq.w[1], 0xFFFFFFFFFFFFFFFEULL);
  EXPECT_EQ(sq.w[2], 0u);
}

TEST(U256, ModGenericSmallCases) {
  // 100 mod 7 = 2
  U512 a = U512::from_u256(U256::from_u64(100));
  EXPECT_EQ(mod_generic(a, U256::from_u64(7)), U256::from_u64(2));
  // x mod 1 == 0
  EXPECT_EQ(mod_generic(a, U256::from_u64(1)), U256::zero());
}

// Property: specialized field/scalar reductions agree with the reference
// binary-division reduction on random 512-bit inputs.
TEST(Secp256k1, FieldMulMatchesReference) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    U256 b = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    EXPECT_EQ(fp_mul(a, b), mod_generic(mul_full(a, b), secp_p()));
  }
}

TEST(Secp256k1, ScalarMulMatchesReference) {
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_n());
    U256 b = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_n());
    EXPECT_EQ(sc_mul(a, b), mod_generic(mul_full(a, b), secp_n()));
  }
}

TEST(Secp256k1, FieldInverse) {
  Rng rng(44);
  for (int i = 0; i < 20; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    if (a.is_zero()) continue;
    EXPECT_EQ(fp_mul(a, fp_inv(a)), U256::from_u64(1));
  }
}

TEST(Secp256k1, ScalarInverse) {
  Rng rng(45);
  for (int i = 0; i < 20; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    if (a.is_zero()) continue;
    EXPECT_EQ(sc_mul(a, sc_inv(a)), U256::from_u64(1));
  }
}

TEST(Secp256k1, AddSubNeg) {
  Rng rng(46);
  for (int i = 0; i < 50; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    U256 b = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    EXPECT_EQ(fp_sub(fp_add(a, b), b), a);
    EXPECT_EQ(fp_add(a, fp_neg(a)), U256::zero());
  }
}

// ---- Curve points ------------------------------------------------------------

TEST(Secp256k1, GeneratorOnCurve) {
  EXPECT_TRUE(secp_g().on_curve());
}

TEST(Secp256k1, TwoGKnownValue) {
  AffinePoint two_g = point_double(secp_g());
  EXPECT_EQ(hex_encode(two_g.x.to_bytes_be()),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(hex_encode(two_g.y.to_bytes_be()),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
  EXPECT_TRUE(two_g.on_curve());
}

TEST(Secp256k1, OrderAnnihilatesGenerator) {
  EXPECT_TRUE(point_mul(secp_n(), secp_g()).infinity);
}

TEST(Secp256k1, OrderMinusOneIsNegG) {
  U256 nm1;
  sub_borrow(nm1, secp_n(), U256::from_u64(1));
  AffinePoint p = point_mul(nm1, secp_g());
  EXPECT_EQ(p, point_neg(secp_g()));
}

TEST(Secp256k1, AdditionIsConsistentWithScalarMul) {
  // (a+b)G == aG + bG for random scalars.
  Rng rng(47);
  for (int i = 0; i < 10; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    U256 b = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    AffinePoint lhs = point_mul(sc_add(a, b), secp_g());
    AffinePoint rhs = point_add(point_mul(a, secp_g()), point_mul(b, secp_g()));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp256k1, AddInverseGivesInfinity) {
  AffinePoint g = secp_g();
  EXPECT_TRUE(point_add(g, point_neg(g)).infinity);
}

TEST(Secp256k1, AddIdentity) {
  AffinePoint inf = AffinePoint::at_infinity();
  EXPECT_EQ(point_add(secp_g(), inf), secp_g());
  EXPECT_EQ(point_add(inf, secp_g()), secp_g());
  EXPECT_TRUE(point_add(inf, inf).infinity);
}

TEST(Secp256k1, AddEqualsDouble) {
  EXPECT_EQ(point_add(secp_g(), secp_g()), point_double(secp_g()));
}

TEST(Secp256k1, EncodeDecodeRoundTrip) {
  AffinePoint p = point_mul(U256::from_u64(12345), secp_g());
  auto decoded = point_decode(point_encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(Secp256k1, DecodeRejectsOffCurve) {
  Bytes bad(64, 0x01);
  EXPECT_FALSE(point_decode(bad).has_value());
  EXPECT_FALSE(point_decode(Bytes(63)).has_value());
}

TEST(Secp256k1, Mul2MatchesSeparateMuls) {
  Rng rng(48);
  U256 u1 = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  U256 u2 = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  AffinePoint q = point_mul(U256::from_u64(999), secp_g());
  AffinePoint lhs = point_mul2(u1, u2, q);
  AffinePoint rhs = point_add(point_mul(u1, secp_g()), point_mul(u2, q));
  EXPECT_EQ(lhs, rhs);
}

// ---- ECDSA -------------------------------------------------------------------

TEST(Ecdsa, SignVerifyRoundTrip) {
  Rng rng(100);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = to_bytes("record 17 contents");
  Signature sig = key.sign(msg);
  EXPECT_TRUE(key.public_key().verify(msg, sig));
}

TEST(Ecdsa, WrongMessageRejected) {
  Rng rng(101);
  PrivateKey key = PrivateKey::generate(rng);
  Signature sig = key.sign(to_bytes("original"));
  EXPECT_FALSE(key.public_key().verify(to_bytes("tampered"), sig));
}

TEST(Ecdsa, WrongKeyRejected) {
  Rng rng(102);
  PrivateKey key1 = PrivateKey::generate(rng);
  PrivateKey key2 = PrivateKey::generate(rng);
  Bytes msg = to_bytes("message");
  EXPECT_FALSE(key2.public_key().verify(msg, key1.sign(msg)));
}

TEST(Ecdsa, TamperedSignatureRejected) {
  Rng rng(103);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = to_bytes("message");
  Signature sig = key.sign(msg);
  Bytes enc = sig.encode();
  for (std::size_t i = 0; i < enc.size(); i += 13) {
    Bytes bad = enc;
    bad[i] ^= 1;
    auto decoded = Signature::decode(bad);
    if (!decoded) continue;  // flip may push r/s out of range: also a reject
    EXPECT_FALSE(key.public_key().verify(msg, *decoded)) << "byte " << i;
  }
}

TEST(Ecdsa, DeterministicSignatures) {
  Rng rng(104);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = to_bytes("same message");
  EXPECT_EQ(key.sign(msg), key.sign(msg));
}

TEST(Ecdsa, SignatureEncodingRoundTrip) {
  Rng rng(105);
  PrivateKey key = PrivateKey::generate(rng);
  Signature sig = key.sign(to_bytes("x"));
  auto decoded = Signature::decode(sig.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, sig);
}

TEST(Ecdsa, PrivateKeySerializationRoundTrip) {
  Rng rng(106);
  PrivateKey key = PrivateKey::generate(rng);
  auto restored = PrivateKey::from_bytes(key.to_bytes());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->public_key().encode(), key.public_key().encode());
  Bytes msg = to_bytes("signed by restored key");
  EXPECT_TRUE(key.public_key().verify(msg, restored->sign(msg)));
}

TEST(Ecdsa, RejectsZeroAndOverflowScalars) {
  EXPECT_FALSE(PrivateKey::from_bytes(Bytes(32, 0)).has_value());
  EXPECT_FALSE(PrivateKey::from_bytes(Bytes(32, 0xff)).has_value());
  EXPECT_FALSE(PrivateKey::from_bytes(Bytes(16)).has_value());
}

TEST(Ecdsa, PublicKeyFingerprintStable) {
  Rng rng(107);
  PrivateKey key = PrivateKey::generate(rng);
  EXPECT_EQ(key.public_key().fingerprint(), key.public_key().fingerprint());
  PrivateKey other = PrivateKey::generate(rng);
  EXPECT_NE(key.public_key().fingerprint(), other.public_key().fingerprint());
}

TEST(Ecdsa, PublicKeyDecodeRejectsGarbage) {
  EXPECT_FALSE(PublicKey::decode(Bytes(64, 0x5a)).has_value());
}

TEST(Ecdsa, ManyKeysSignVerify) {
  Rng rng(108);
  for (int i = 0; i < 8; ++i) {
    PrivateKey key = PrivateKey::generate(rng);
    Bytes msg = rng.next_bytes(100);
    EXPECT_TRUE(key.public_key().verify(msg, key.sign(msg)));
  }
}

TEST(Ecdsa, MalleabilityIsHarmlessToRecordIdentity) {
  // Standard ECDSA accepts both (r, s) and (r, n-s).  The GDP does not
  // rely on signature uniqueness anywhere: record identity is the hash of
  // the *header* (which excludes the signature), so a malleated signature
  // cannot create a "different" record.
  Rng rng(300);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = to_bytes("m");
  Signature sig = key.sign(msg);
  Signature flipped{sig.r, sc_neg(sig.s)};
  EXPECT_TRUE(key.public_key().verify(msg, flipped));
  EXPECT_NE(flipped, sig);
}

TEST(Secp256k1, ScalarReduceWrapsValuesAboveN) {
  // n + 5 must reduce to 5.
  U256 five = U256::from_u64(5);
  U256 n_plus_5;
  add_carry(n_plus_5, secp_n(), five);
  EXPECT_EQ(sc_reduce(n_plus_5), five);
  // And the all-ones value matches the reference reduction.
  U256 ones{{~0ULL, ~0ULL, ~0ULL, ~0ULL}};
  EXPECT_EQ(sc_reduce(ones), mod_generic(U512::from_u256(ones), secp_n()));
}

TEST(Secp256k1, FieldEdgeValues) {
  EXPECT_EQ(fp_neg(U256::zero()), U256::zero());
  EXPECT_EQ(fp_inv(U256::from_u64(1)), U256::from_u64(1));
  EXPECT_EQ(sc_inv(U256::from_u64(1)), U256::from_u64(1));
  // p - 1 is its own inverse? (p-1)^2 = p^2 - 2p + 1 ≡ 1 mod p.
  U256 pm1;
  sub_borrow(pm1, secp_p(), U256::from_u64(1));
  EXPECT_EQ(fp_mul(pm1, pm1), U256::from_u64(1));
}

TEST(Ecdsa, SignatureDecodeRejectsZeroAndOverflow) {
  Bytes zeros(64, 0);
  EXPECT_FALSE(Signature::decode(zeros).has_value());
  Bytes all_ff(64, 0xff);  // r, s >= n
  EXPECT_FALSE(Signature::decode(all_ff).has_value());
  Rng rng(301);
  PrivateKey key = PrivateKey::generate(rng);
  Signature good = key.sign(to_bytes("m"));
  // Valid r paired with zero s still rejected.
  Bytes mixed = good.r.to_bytes_be();
  append(mixed, Bytes(32, 0));
  EXPECT_FALSE(Signature::decode(mixed).has_value());
}

TEST(Secp256k1, GeneratorEncodeDecode) {
  auto decoded = point_decode(point_encode(secp_g()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, secp_g());
}

// ---- ECDH --------------------------------------------------------------------

TEST(Ecdh, SharedKeySymmetric) {
  Rng rng(200);
  PrivateKey a = PrivateKey::generate(rng);
  PrivateKey b = PrivateKey::generate(rng);
  EXPECT_EQ(ecdh_shared_key(a, b.public_key()), ecdh_shared_key(b, a.public_key()));
}

TEST(Ecdh, DistinctPairsDistinctKeys) {
  Rng rng(201);
  PrivateKey a = PrivateKey::generate(rng);
  PrivateKey b = PrivateKey::generate(rng);
  PrivateKey c = PrivateKey::generate(rng);
  EXPECT_NE(ecdh_shared_key(a, b.public_key()), ecdh_shared_key(a, c.public_key()));
}

// ---- Fast-path cross-checks --------------------------------------------------
//
// The table-driven fixed-base, GLV and batch-inversion fast paths must be
// *bit-identical* to the retained slow paths (double-and-add, Fermat
// inverse) on every input: the fast implementation is an optimization, not
// a semantic change.

U256 hex_u256(const char* h) {
  return U256::from_bytes_be(*hex_decode(h));
}

TEST(FastPath, RandomScalarsMatchSlowPaths) {
  Rng rng(500);
  AffinePoint q = point_mul(U256::from_u64(0x1234567), secp_g());
  for (int i = 0; i < 1000; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    U256 b = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    EXPECT_EQ(point_mul(a, secp_g()), point_mul_slow(a, secp_g())) << i;
    EXPECT_EQ(point_mul(a, q), point_mul_slow(a, q)) << i;
    AffinePoint m2 = point_mul2(a, b, q);
    EXPECT_EQ(m2, point_mul2_slow(a, b, q)) << i;
    q = m2.infinity ? secp_g() : m2;  // new base point each round
  }
}

TEST(FastPath, CheckRMatchesAffineComparison) {
  Rng rng(503);
  AffinePoint q = point_mul(U256::from_u64(0xbeef), secp_g());
  for (int i = 0; i < 200; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    U256 b = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    if (b.is_zero()) continue;
    AffinePoint m2 = point_mul2(a, b, q);
    if (m2.infinity) continue;
    U256 r = sc_reduce(m2.x);
    EXPECT_TRUE(point_mul2_check_r(a, b, q, r)) << i;
    U256 wrong = sc_add(r, U256::from_u64(1));
    if (!wrong.is_zero()) {
      EXPECT_FALSE(point_mul2_check_r(a, b, q, wrong)) << i;
    }
    q = m2;
  }
  // Degenerate inputs are rejected outright.
  EXPECT_FALSE(point_mul2_check_r(U256::from_u64(1), U256::zero(), q,
                                  U256::from_u64(1)));
  EXPECT_FALSE(point_mul2_check_r(U256::from_u64(1), U256::from_u64(1), q,
                                  U256::zero()));
  EXPECT_FALSE(point_mul2_check_r(U256::from_u64(1), U256::from_u64(1), q,
                                  secp_n()));
}

TEST(FastPath, InversesMatchFermat) {
  Rng rng(501);
  for (int i = 0; i < 200; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    if (a.is_zero()) continue;
    EXPECT_EQ(fp_inv(a), fp_inv_fermat(a));
    EXPECT_EQ(sc_inv(a), sc_inv_fermat(a));
  }
}

TEST(FastPath, BatchInversionMatchesIndividual) {
  Rng rng(502);
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{17}}) {
    std::vector<U256> vals(count), expected(count);
    for (std::size_t i = 0; i < count; ++i) {
      do {
        vals[i] = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
      } while (vals[i].is_zero());
      expected[i] = fp_inv(vals[i]);
    }
    fp_inv_batch(vals.data(), vals.size());
    EXPECT_EQ(vals, expected) << "count=" << count;
  }
  fp_inv_batch(nullptr, 0);  // empty batch is a no-op
}

TEST(FastPath, BatchInversionEdgeCases) {
  // Zero mid-array: skipped, maps to zero, and must not disturb the
  // inverses on either side (points at infinity feed zeros directly).
  std::vector<U256> vals = {U256::from_u64(2), U256::zero(),
                            U256::from_u64(3), U256::zero(),
                            U256::from_u64(5)};
  std::vector<U256> expected = {fp_inv(U256::from_u64(2)), U256::zero(),
                                fp_inv(U256::from_u64(3)), U256::zero(),
                                fp_inv(U256::from_u64(5))};
  fp_inv_batch(vals.data(), vals.size());
  EXPECT_EQ(vals, expected);

  // Length 0 and 1.
  fp_inv_batch(nullptr, 0);
  std::vector<U256> one = {U256::from_u64(42)};
  fp_inv_batch(one.data(), 1);
  EXPECT_EQ(one[0], fp_inv(U256::from_u64(42)));
  std::vector<U256> zero_only = {U256::zero()};
  fp_inv_batch(zero_only.data(), 1);
  EXPECT_TRUE(zero_only[0].is_zero());

  // All-equal values: the prefix-product telescoping must still peel off
  // one correct inverse per slot.
  std::vector<U256> same(9, U256::from_u64(1234567));
  fp_inv_batch(same.data(), same.size());
  for (const U256& v : same) EXPECT_EQ(v, fp_inv(U256::from_u64(1234567)));

  // Same contract for the scalar-field variant.
  std::vector<U256> sc = {U256::from_u64(7), U256::zero(), U256::from_u64(7)};
  sc_inv_batch(sc.data(), sc.size());
  EXPECT_EQ(sc[0], sc_inv(U256::from_u64(7)));
  EXPECT_TRUE(sc[1].is_zero());
  EXPECT_EQ(sc[2], sc_inv(U256::from_u64(7)));
}

TEST(FastPath, SqrtMatchesSquares) {
  Rng rng(504);
  for (int i = 0; i < 32; ++i) {
    U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    U256 sq = fp_sqr(a);
    auto root = fp_sqrt(sq);
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == fp_neg(a));
    // a^2 is a residue, so exactly one of -(a^2)'s roots exists... for
    // p = 3 mod 4, -1 is a non-residue, hence -(a^2) never has a root.
    if (!sq.is_zero()) {
      EXPECT_FALSE(fp_sqrt(fp_neg(sq)).has_value());
    }
  }
  EXPECT_EQ(fp_sqrt(U256::zero()), U256::zero());
  EXPECT_EQ(fp_sqrt(U256::from_u64(1)), U256::from_u64(1));
}

TEST(FastPath, MultiScalarMatchesSingleSums) {
  Rng rng(505);
  // Random mixes of fixed-base, variable-base, duplicate-base, zero and
  // infinity terms, cross-checked against the sum of single point_mul
  // results and the slow MSM reference.
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                            std::size_t{17}}) {
    std::vector<MulTerm> terms;
    AffinePoint expected = AffinePoint::at_infinity();
    AffinePoint shared = point_mul(U256::from_u64(99991), secp_g());
    for (std::size_t i = 0; i < count; ++i) {
      U256 k = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
      AffinePoint p;
      switch (i % 4) {
        case 0: p = secp_g(); break;
        case 1: p = shared; break;
        case 2: p = point_mul(sc_reduce(U256::from_bytes_be(rng.next_bytes(32))),
                              secp_g());
                break;
        default: p = AffinePoint::at_infinity(); break;
      }
      terms.push_back(MulTerm{k, p});
      expected = point_add(expected, point_mul(k, p));
    }
    AffinePoint fast = point_mul_multi(terms.data(), terms.size());
    AffinePoint slow = point_mul_multi_slow(terms.data(), terms.size());
    EXPECT_EQ(fast, expected) << "count=" << count;
    EXPECT_EQ(slow, expected) << "count=" << count;
  }
}

TEST(FastPath, MultiScalarEdgeCases) {
  // Empty product and all-zero scalars are the identity.
  EXPECT_TRUE(point_mul_multi(nullptr, 0).infinity);
  std::vector<MulTerm> zero_terms = {MulTerm{U256::zero(), secp_g()},
                                     MulTerm{secp_n(), secp_g()}};
  EXPECT_TRUE(point_mul_multi(zero_terms.data(), zero_terms.size()).infinity);
  // Exact cancellation across terms: k*Q + (n-k)*Q == O.
  AffinePoint q = point_mul(U256::from_u64(77), secp_g());
  U256 k = U256::from_u64(123456789);
  U256 nk;
  sub_borrow(nk, secp_n(), k);
  std::vector<MulTerm> cancel = {MulTerm{k, q}, MulTerm{nk, q}};
  EXPECT_TRUE(point_mul_multi(cancel.data(), cancel.size()).infinity);
  // Known answer: 3*G + 4*G == 7*G, mixing the aggregated-G path with a
  // known vector from KnownMultiplesOfG.
  std::vector<MulTerm> g34 = {MulTerm{U256::from_u64(3), secp_g()},
                              MulTerm{U256::from_u64(4), secp_g()}};
  AffinePoint seven = point_mul_multi(g34.data(), g34.size());
  EXPECT_EQ(seven.x, hex_u256("5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e3"
                              "9ce92bddedcac4f9bc"));
  EXPECT_EQ(seven.y, hex_u256("6aebca40ba255960a3178d6d861a54dba813d0b813fde7"
                              "b5a5082628087264da"));
}

TEST(FastPath, ScalarEdgeCases) {
  AffinePoint q = point_mul(U256::from_u64(77), secp_g());
  // k = 0 and k = n annihilate.
  EXPECT_TRUE(point_mul(U256::zero(), secp_g()).infinity);
  EXPECT_TRUE(point_mul(secp_n(), secp_g()).infinity);
  EXPECT_TRUE(point_mul(secp_n(), q).infinity);
  // k = 1 is the identity map.
  EXPECT_EQ(point_mul(U256::from_u64(1), q), q);
  // k = n - 1 negates.
  U256 nm1;
  sub_borrow(nm1, secp_n(), U256::from_u64(1));
  EXPECT_EQ(point_mul(nm1, q), point_neg(q));
  // point_mul2 with a zero side degenerates to single multiplication.
  U256 a = U256::from_u64(12345);
  EXPECT_EQ(point_mul2(a, U256::zero(), q), point_mul(a, secp_g()));
  EXPECT_EQ(point_mul2(U256::zero(), a, q), point_mul(a, q));
  EXPECT_TRUE(point_mul2(U256::zero(), U256::zero(), q).infinity);
  // Cancellation inside the shared chain: u1*G + u2*Q = O when Q = G and
  // u1 + u2 = n.
  U256 u2 = mod_generic(U512::from_u256(U256::from_u64(99)), secp_n());
  U256 u1;
  sub_borrow(u1, secp_n(), u2);
  EXPECT_TRUE(point_mul2(u1, u2, secp_g()).infinity);
}

TEST(FastPath, KnownMultiplesOfG) {
  struct Vector {
    const char* k;
    const char* x;
    const char* y;
  };
  // Independently generated against a from-scratch reference implementation
  // (cross-validated with the published secp256k1 test points for k=3, 7).
  const Vector vectors[] = {
      {"0000000000000000000000000000000000000000000000000000000000000003",
       "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
       "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672"},
      {"0000000000000000000000000000000000000000000000000000000000000007",
       "5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc",
       "6aebca40ba255960a3178d6d861a54dba813d0b813fde7b5a5082628087264da"},
      {"00000000000000000000000000000000000000000000000000000000deadbeef",
       "76d2fdf1302d1fa9556f4df94ec84cefba6d482e54f47c6c2a238c1baa560f0e",
       "b754ac7e7a3e09c44184cb451a4f5fb557f32053eb015dffebb655b5cfd54d8a"},
      {"0000000000000000000000000000000100000000000000000000000000000000",
       "8f68b9d2f63b5f339239c1ad981f162ee88c5678723ea3351b7b444c9ec4c0da",
       "662a9f2dba063986de1d90c2b6be215dbbea2cfe95510bfdf23cbf79501fff82"},
      {"8000000000000000000000000000000000000000000000000000000000000000",
       "b23790a42be63e1b251ad6c94fdef07271ec0aada31db6c3e8bd32043f8be384",
       "fc6b694919d55edbe8d50f88aa81f94517f004f4149ecb58d10a473deb19880e"},
      {"fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
       "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
       "b7c52588d95c3b9aa25b0403f1eef75702e84bb7597aabe663b82f6f04ef2777"},
      {"18e14a7b6a307f426a94f8114701e7c8e774e7f9a47e2c2035db29a206321725",
       "50863ad64a87ae8a2fe83c1af1a8403cb53f53e486d8511dad8a04887e5b2352",
       "2cd470243453a299fa9e77237716103abc11a1df38855ed6f2ee187e9c582ba6"},
  };
  for (const Vector& v : vectors) {
    AffinePoint p = point_mul(hex_u256(v.k), secp_g());
    ASSERT_FALSE(p.infinity) << v.k;
    EXPECT_EQ(p.x, hex_u256(v.x)) << v.k;
    EXPECT_EQ(p.y, hex_u256(v.y)) << v.k;
  }
}

TEST(Ecdsa, Rfc6979KnownVectors) {
  struct Vector {
    const char* d;
    const char* msg;
    const char* k;
    const char* r;
    const char* s;
  };
  // Deterministic (d, H(msg)) -> (k, r, s) for SHA-256 over secp256k1.
  // The first row's nonce matches the widely circulated community vector
  // for this curve; the rest were generated by the same cross-checked
  // reference.  s is even-R normalized: when the nonce point k*G has an
  // odd y, the signer emits n - s instead (the malleability twin), so the
  // published R point always has even y and batch verification can lift
  // it back from r alone.  k and r are unaffected by the normalization.
  const Vector vectors[] = {
      {"0000000000000000000000000000000000000000000000000000000000000001",
       "Satoshi Nakamoto",
       "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15",
       "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8",
       "dbbd3162d46e9f9bef7feb87c16dc13b4f6568a87f4e83f728e2443ba586675c"},
      {"0000000000000000000000000000000000000000000000000000000000000001",
       "All those moments will be lost in time, like tears in rain. Time to "
       "die...",
       "38aa22d72376b4dbc472e06c3ba403ee0a394da63fc58d88686c611aba98d6b3",
       "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b",
       "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21"},
      {"fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
       "Satoshi Nakamoto",
       "33a19b60e25fb6f4435af53a3d42d493644827367e6453928554f43e49aa6f90",
       "fd567d121db66e382991534ada77a6bd3106f0a1098c231e47993447cd6af2d0",
       "6b39cd0eb1bc8603e159ef5c20a5c8ad685a45b06ce9bebed3f153d10d93bed5"},
      {"f8b8af8ce3c7cca5e300d33939540c10d45ce001b8f252bfbc57ba0342904181",
       "Alan Turing",
       "525a82b70e67874398067543fd84c83d30c175fdc45fdeee082fe13b1d7cfdf1",
       "7063ae83e7f62bbb171798131b4a0564b956930092b33b07b395615d9ec7e15c",
       "58dfcc1e00a35e1572f366ffe34ba0fc47db1e7189759b9fb233c5b05ab388ea"},
  };
  for (const Vector& v : vectors) {
    auto key = PrivateKey::from_bytes(*hex_decode(v.d));
    ASSERT_TRUE(key.has_value()) << v.d;
    Digest h = sha256(to_bytes(v.msg));
    EXPECT_EQ(rfc6979_nonce(hex_u256(v.d), h), hex_u256(v.k)) << v.msg;
    Signature sig = key->sign_digest(h);
    EXPECT_EQ(sig.r, hex_u256(v.r)) << v.msg;
    EXPECT_EQ(sig.s, hex_u256(v.s)) << v.msg;
    EXPECT_TRUE(key->public_key().verify_digest(h, sig));
  }
}

// ---- U256 fast-path helpers --------------------------------------------------

TEST(U256, SqrFullMatchesMulFull) {
  Rng rng(503);
  for (int i = 0; i < 200; ++i) {
    U256 a = U256::from_bytes_be(rng.next_bytes(32));
    U512 sq = sqr_full(a);
    U512 mf = mul_full(a, a);
    EXPECT_EQ(sq.w, mf.w) << i;
  }
}

TEST(U256, MulSmallMatchesMulFull) {
  Rng rng(504);
  for (int limbs = 1; limbs <= 4; ++limbs) {
    for (int i = 0; i < 50; ++i) {
      U256 a = U256::from_bytes_be(rng.next_bytes(32));
      U256 b = U256::from_bytes_be(rng.next_bytes(32));
      for (int j = limbs; j < 4; ++j) b.w[static_cast<std::size_t>(j)] = 0;
      U512 got = mul_small(a, b, limbs);
      U512 want = mul_full(a, b);
      EXPECT_EQ(got.w, want.w) << "limbs=" << limbs;
    }
  }
}

TEST(U256, Shr1ShiftsWithCarry) {
  U256 v{{0x3ULL, 0x1ULL, 0, 0x8000000000000001ULL}};
  U256 shifted = shr1(v);
  EXPECT_EQ(shifted.w[0], 0x8000000000000001ULL);  // bit 64 fell into bit 63
  EXPECT_EQ(shifted.w[1], 0u);
  EXPECT_EQ(shifted.w[3], 0x4000000000000000ULL);
  // With an incoming high bit (the (x + m)/2 case in the binary inverse).
  U256 with_high = shr1(v, 1);
  EXPECT_EQ(with_high.w[3], 0xC000000000000000ULL);
}

TEST(Ecdh, DrivesSecretBox) {
  // End-to-end: ECDH-derived key seals and opens a payload.
  Rng rng(202);
  PrivateKey client = PrivateKey::generate(rng);
  PrivateKey server = PrivateKey::generate(rng);
  SymmetricKey k = ecdh_shared_key(client, server.public_key());
  Nonce96 nonce{};
  Bytes boxed = secretbox_seal(k, nonce, to_bytes("session payload"));
  SymmetricKey k2 = ecdh_shared_key(server, client.public_key());
  auto opened = secretbox_open(k2, boxed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "session payload");
}

// ---- Montgomery-domain & constant-time signing path ------------------------

TEST(Montgomery, DomainRoundTrip) {
  Rng rng(301);
  EXPECT_EQ(from_mont(to_mont(U256::zero())), U256::zero());
  EXPECT_EQ(from_mont(to_mont(U256::from_u64(1))), U256::from_u64(1));
  for (int i = 0; i < 200; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    EXPECT_EQ(from_mont(to_mont(a)), a);
  }
}

TEST(Montgomery, DifferentialAgainstSchoolbook) {
  // Boundary vectors the REDC carry/borrow chains must get right, plus
  // random fuzz.  2^256 mod p = C is the Montgomery-domain "1".
  U256 p_minus_1, p_minus_2, c;
  sub_borrow(p_minus_1, secp_p(), U256::from_u64(1));
  sub_borrow(p_minus_2, secp_p(), U256::from_u64(2));
  sub_borrow(c, U256::zero(), secp_p());  // 2^256 - p
  std::vector<U256> edges = {U256::zero(), U256::from_u64(1), p_minus_1,
                             p_minus_2, c};
  for (const U256& a : edges) {
    for (const U256& b : edges) {
      const U256 want = fp_mul_schoolbook(a, b);
      EXPECT_EQ(fp_mul(a, b), want);
      EXPECT_EQ(from_mont(mont_mul(to_mont(a), to_mont(b))), want);
    }
    EXPECT_EQ(fp_sqr(a), fp_sqr_schoolbook(a));
    EXPECT_EQ(from_mont(mont_sqr(to_mont(a))), fp_sqr_schoolbook(a));
  }
  Rng rng(302);
  for (int i = 0; i < 2000; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    U256 b = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    const U256 want = fp_mul_schoolbook(a, b);
    ASSERT_EQ(from_mont(mont_mul(to_mont(a), to_mont(b))), want);
    ASSERT_EQ(from_mont(mont_sqr(to_mont(a))), fp_sqr_schoolbook(a));
  }
  // Mixed edge x random: exercises asymmetric operand magnitudes.
  for (int i = 0; i < 200; ++i) {
    U256 a = mod_generic(U512::from_u256(U256::from_bytes_be(rng.next_bytes(32))), secp_p());
    for (const U256& e : edges) {
      ASSERT_EQ(from_mont(mont_mul(to_mont(a), to_mont(e))),
                fp_mul_schoolbook(a, e));
    }
  }
}

TEST(ConstantTime, LadderMatchesSlowPathAcrossBlinds) {
  Rng rng(303);
  U256 max_blind;
  sub_borrow(max_blind, U256::zero(), U256::from_u64(1));  // 2^256 - 1
  const U256 blinds[] = {U256::zero(), U256::from_u64(1), max_blind,
                         U256::from_bytes_be(rng.next_bytes(32))};
  for (int i = 0; i < 25; ++i) {
    U256 k = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
    if (!sc_is_valid(k)) continue;
    const AffinePoint want = point_mul_slow(k, secp_g());
    for (const U256& blind : blinds) {
      const AffinePoint got = point_mul_g_ct(k, blind);
      ASSERT_EQ(got.x, want.x) << "blind changes the result";
      ASSERT_EQ(got.y, want.y);
    }
  }
  // Scalar edge cases: 1, 2, n-1, n-2.
  U256 n_minus_1, n_minus_2;
  sub_borrow(n_minus_1, secp_n(), U256::from_u64(1));
  sub_borrow(n_minus_2, secp_n(), U256::from_u64(2));
  for (const U256& k :
       {U256::from_u64(1), U256::from_u64(2), n_minus_1, n_minus_2}) {
    const AffinePoint want = point_mul_slow(k, secp_g());
    for (const U256& blind : blinds) {
      const AffinePoint got = point_mul_g_ct(k, blind);
      ASSERT_EQ(got.x, want.x);
      ASSERT_EQ(got.y, want.y);
    }
  }
}

TEST(ConstantTime, SignBitIdenticalToVartimeSigner) {
  // The pinned RFC 6979 vectors, via both signers.
  struct Vector {
    const char* d;
    const char* msg;
  };
  const Vector vectors[] = {
      {"0000000000000000000000000000000000000000000000000000000000000001",
       "Satoshi Nakamoto"},
      {"fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
       "Satoshi Nakamoto"},
      {"f8b8af8ce3c7cca5e300d33939540c10d45ce001b8f252bfbc57ba0342904181",
       "Alan Turing"},
  };
  for (const Vector& v : vectors) {
    auto key = PrivateKey::from_bytes(*hex_decode(v.d));
    ASSERT_TRUE(key.has_value());
    Digest h = sha256(to_bytes(v.msg));
    EXPECT_EQ(key->sign_digest(h).encode(), key->sign_digest_vartime(h).encode());
  }
  // Random keys and messages.
  Rng rng(304);
  for (int i = 0; i < 40; ++i) {
    PrivateKey key = PrivateKey::generate(rng);
    Digest h = sha256(rng.next_bytes(77));
    Signature ct = key.sign_digest(h);
    EXPECT_EQ(ct.encode(), key.sign_digest_vartime(h).encode());
    EXPECT_TRUE(key.public_key().verify_digest(h, ct));
  }
}

TEST(ConstantTime, SecretPathLookupsScanEveryTableEntry) {
  // Structural property: the signing-path table lookup must touch every
  // entry of its window's table (a cmov scan), so the number of entries
  // scanned is exactly 16x the number of lookups, independent of the
  // scalar.  A secret-indexed lookup would scan 1 entry per lookup.
  Rng rng(305);
  PrivateKey key = PrivateKey::generate(rng);
  CtProbe& probe = ct_probe();
  for (int i = 0; i < 10; ++i) {
    Digest h = sha256(rng.next_bytes(64));
    probe.reset();
    key.sign_digest(h);
    ASSERT_GT(probe.lookups, 0u);
    // One lookup per signed-odd window of the blinded scalar.
    EXPECT_EQ(probe.lookups, 66u);
    EXPECT_EQ(probe.entries_scanned, 16 * probe.lookups);
  }
  // Direct ladder calls, blinded and unblinded, keep the invariant.
  for (const std::uint64_t b : {0ull, 1ull, ~0ull}) {
    probe.reset();
    point_mul_g_ct(sc_reduce(U256::from_bytes_be(rng.next_bytes(32))),
                   U256::from_u64(b));
    EXPECT_EQ(probe.lookups, 66u);
    EXPECT_EQ(probe.entries_scanned, 16 * probe.lookups);
  }
  probe.reset();
}

}  // namespace
}  // namespace gdp::crypto
