// Replica healing under failure injection: Merkle-summary anti-entropy
// converging a fresh replica, quorum writes racing a downed replica,
// deterministic fork merge, and byte-identical rerun determinism of the
// whole healing scenario.
#include <gtest/gtest.h>

#include <string>

#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

/// Two replicas behind two WAN-linked routers — the standard healing
/// topology.  The writer sits next to srv1, so srv2 only ever learns
/// records through replication.
struct TwoSites {
  Scenario s;
  router::Router* r1;
  router::Router* r2;
  server::CapsuleServer* srv1;
  server::CapsuleServer* srv2;
  client::GdpClient* writer;

  explicit TwoSites(std::uint64_t seed, const std::string& tag)
      : s(seed, tag) {
    auto* g = s.add_domain("g", nullptr);
    r1 = s.add_router("r1", g);
    r2 = s.add_router("r2", g);
    s.link_routers(r1, r2, net::LinkParams::wan(10));
    srv1 = s.add_server("srv1", r1);
    srv2 = s.add_server("srv2", r2);
    writer = s.add_client("writer", r1);
    s.attach_all();
  }

  /// Drops every replication PDU (both sync generations) on r1<->r2.
  void block_sync() {
    auto block = [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
      switch (pdu.type) {
        case wire::MsgType::kSyncPush:
        case wire::MsgType::kSyncPull:
        case wire::MsgType::kSyncSummary:
        case wire::MsgType::kSyncDescend:
        case wire::MsgType::kSyncRange:
          return std::nullopt;
        default:
          return pdu;
      }
    };
    s.net().set_interceptor(r1->name(), r2->name(), block);
    s.net().set_interceptor(r2->name(), r1->name(), block);
  }

  void unblock_sync() {
    s.net().clear_interceptor(r1->name(), r2->name());
    s.net().clear_interceptor(r2->name(), r1->name());
  }
};

TEST(Replication, SummaryHealsFreshReplica) {
  TwoSites w(21, "summary-heal");
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "fresh-heal");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.writer, {w.srv1, w.srv2}).ok());

  // srv2 misses the entire history: 300 records, which spans several
  // leaf buckets and forces a cursor continuation (300 > the 256-record
  // push cap).
  w.block_sync();
  capsule::Writer wr = cap.make_writer();
  constexpr std::uint64_t kRecords = 300;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(await(w.s.sim(), w.writer->append(wr, to_bytes("r"))).ok());
  }
  w.s.settle();
  const auto* st1 = w.srv1->storage().find(cap.metadata.name());
  const auto* st2 = w.srv2->storage().find(cap.metadata.name());
  ASSERT_EQ(st2->state().size(), 0u);

  // The Merkle walk localizes the gap and pulls exactly [1, 300]; a
  // couple of rounds (probe -> descend -> pull -> drain) converge it.
  w.unblock_sync();
  int rounds = 0;
  while (st2->state().size() < kRecords && rounds < 6) {
    w.srv2->anti_entropy_round();
    w.s.settle();
    ++rounds;
  }
  EXPECT_LE(rounds, 3);
  EXPECT_EQ(st2->state().size(), kRecords);
  EXPECT_EQ(st1->state().tip_hash(), st2->state().tip_hash());
  EXPECT_TRUE(st2->state().holes().empty());
  EXPECT_EQ(st1->tree_root(), st2->tree_root());

  // The healing genuinely went through the summary path.
  const std::string stats = w.s.stats_json();
  EXPECT_EQ(stats.find("\"server.srv2.sync.probes\": 0"), std::string::npos);
  EXPECT_EQ(stats.find("\"server.srv2.sync.ranges_pulled\": 0"),
            std::string::npos);
}

TEST(Replication, ReplicaDownDuringQuorumWrite) {
  TwoSites w(22, "quorum-down");
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "quorum-down");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.writer, {w.srv1, w.srv2}).ok());

  // Replica site unreachable: a k=2 append must be nacked, not falsely
  // acked — but the record stays durable on the local replica.
  w.s.set_link_down(w.r1->name(), w.r2->name());
  capsule::Writer wr = cap.make_writer();
  auto failed = await(w.s.sim(), w.writer->append(wr, to_bytes("first"), 2));
  EXPECT_FALSE(failed.ok());
  const auto* st1 = w.srv1->storage().find(cap.metadata.name());
  const auto* st2 = w.srv2->storage().find(cap.metadata.name());
  EXPECT_EQ(st1->state().size(), 1u);
  EXPECT_EQ(st2->state().size(), 0u);

  // Link recovers; anti-entropy heals the replica that missed the write.
  w.s.set_link_up(w.r1->name(), w.r2->name());
  w.s.settle();
  for (int round = 0; round < 5 && st2->state().size() < 1; ++round) {
    w.srv2->anti_entropy_round();
    w.s.settle();
  }
  EXPECT_EQ(st2->state().size(), 1u);
  EXPECT_EQ(st1->state().tip_hash(), st2->state().tip_hash());

  // With both replicas back, the same quorum is reachable again.
  auto ok = await(w.s.sim(), w.writer->append(wr, to_bytes("second"), 2));
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  EXPECT_GE(ok->acks, 2u);
  EXPECT_EQ(st1->state().size(), 2u);
  EXPECT_EQ(st2->state().size(), 2u);
}

TEST(Replication, ForkMergesDeterministically) {
  TwoSites w(23, "fork-merge");
  auto* device_b = w.s.add_client("device-b", w.r2);
  w.s.attach_all();
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "forked-fs",
                                  capsule::WriterMode::kQuasiSingleWriter);
  ASSERT_TRUE(place_capsule(w.s, cap, *w.writer, {w.srv1, w.srv2}).ok());

  // Shared base record, then a partition: each device appends seqno 2 to
  // its own side.  Both replicas end with tip 2 but different histories —
  // the equal-tip / divergent-root case only the Merkle walk detects.
  capsule::Writer wa = cap.make_writer();
  ASSERT_TRUE(await(w.s.sim(), w.writer->append(wa, to_bytes("base"))).ok());
  w.s.settle();
  Bytes saved = wa.save_state();
  auto wb = capsule::Writer::restore(cap.metadata, *cap.writer_key,
                                     capsule::strategy_from_id(cap.strategy_id),
                                     saved);
  ASSERT_TRUE(wb.ok());

  w.block_sync();
  ASSERT_TRUE(await(w.s.sim(), w.writer->append(wa, to_bytes("edit-a"))).ok());
  ASSERT_TRUE(await(w.s.sim(), device_b->append(*wb, to_bytes("edit-b"))).ok());
  w.s.settle();
  const auto* st1 = w.srv1->storage().find(cap.metadata.name());
  const auto* st2 = w.srv2->storage().find(cap.metadata.name());
  ASSERT_EQ(st1->state().size(), 2u);
  ASSERT_EQ(st2->state().size(), 2u);
  ASSERT_NE(st1->tree_root(), st2->tree_root());

  // Heal: both sides walk the divergent subtree and exchange exactly the
  // missing branch records; the replicas converge on the same branched
  // history (strong eventual consistency), byte-identically.
  w.unblock_sync();
  for (int round = 0; round < 6; ++round) {
    if (st1->state().size() == 3 && st2->state().size() == 3) break;
    w.srv1->anti_entropy_round();
    w.srv2->anti_entropy_round();
    w.s.settle();
  }
  EXPECT_EQ(st1->state().size(), 3u);
  EXPECT_EQ(st2->state().size(), 3u);
  EXPECT_EQ(st1->state().heads().size(), 2u);
  EXPECT_EQ(st1->state().tip_hash(), st2->state().tip_hash());
  EXPECT_EQ(st1->tree_root(), st2->tree_root());

  // Device A merges the branch; the merge record replicates and both
  // replicas return to a single head.
  std::vector<capsule::RecordHash> heads = st1->state().heads();
  capsule::RecordHash other =
      heads[0] == wa.tip_hash() ? heads[1] : heads[0];
  std::uint64_t other_seqno = st1->state().get_by_hash(other)->header.seqno;
  capsule::Record merge =
      wa.append_merge(to_bytes("merged"), 0, {capsule::HashPtr{other_seqno, other}});
  ASSERT_TRUE(await(w.s.sim(), w.writer->append_record(cap.metadata, merge)).ok());
  w.s.settle();
  EXPECT_EQ(st1->state().heads().size(), 1u);
  EXPECT_EQ(st2->state().heads().size(), 1u);
  EXPECT_EQ(st2->state().tip_hash(), merge.hash());
  EXPECT_EQ(st1->tree_root(), st2->tree_root());
}

TEST(Replication, OverlappingProbesDontDuplicatePulls) {
  // A busy replica fires anti-entropy rounds faster than the WAN RTT, so
  // several probes are in flight before the first offer returns.  Each
  // offer names the same divergent ranges; only the first may turn into a
  // pull, or the gap gets re-transferred once per extra probe.
  TwoSites w(25, "overlap-probe");
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "overlap");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.writer, {w.srv1, w.srv2}).ok());

  w.block_sync();
  capsule::Writer wr = cap.make_writer();
  constexpr std::uint64_t kRecords = 120;
  for (std::uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(await(w.s.sim(), w.writer->append(wr, to_bytes("r"))).ok());
  }
  w.s.settle();
  w.unblock_sync();

  // Count every record that crosses the WAN in a sync push.
  std::uint64_t pushed_records = 0;
  auto counting = [&pushed_records](const wire::Pdu& pdu)
      -> std::optional<wire::Pdu> {
    if (pdu.type == wire::MsgType::kSyncPush) {
      auto msg = wire::SyncPushMsg::deserialize(pdu.payload);
      if (msg.ok()) pushed_records += msg->records.size();
    }
    return pdu;
  };
  w.s.net().set_interceptor(w.r1->name(), w.r2->name(), counting);

  // Four probes in flight at once (no settling between rounds), then let
  // the healing drain.
  const auto* st2 = w.srv2->storage().find(cap.metadata.name());
  for (int burst = 0; burst < 4; ++burst) w.srv2->anti_entropy_round();
  for (int round = 0; round < 8 && st2->state().size() < kRecords; ++round) {
    w.srv2->anti_entropy_round();
    w.s.settle();
  }
  EXPECT_EQ(st2->state().size(), kRecords);
  // Every record crossed exactly once — redundant offers were dropped
  // against the in-flight session instead of being queued again.
  EXPECT_EQ(pushed_records, kRecords);
}

TEST(Replication, HealingRerunIsByteIdentical) {
  // The full summary-sync healing scenario — probe, descend, pull,
  // cursor continuation — replayed from the same seed must produce
  // byte-identical metrics: no wall-clock, iteration-order, or address
  // leaks anywhere on the anti-entropy paths.
  auto run = [] {
    TwoSites w(24, "heal-rerun");
    CapsuleSetup cap = make_capsule(w.s.key_rng(), "rerun");
    EXPECT_TRUE(place_capsule(w.s, cap, *w.writer, {w.srv1, w.srv2}).ok());
    w.block_sync();
    capsule::Writer wr = cap.make_writer();
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(await(w.s.sim(), w.writer->append(wr, to_bytes("r"))).ok());
    }
    w.s.settle();
    w.unblock_sync();
    const auto* st2 = w.srv2->storage().find(cap.metadata.name());
    for (int round = 0; round < 6 && st2->state().size() < 40; ++round) {
      w.srv2->anti_entropy_round();
      w.s.settle();
    }
    EXPECT_EQ(st2->state().size(), 40u);
    return w.s.stats_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gdp
