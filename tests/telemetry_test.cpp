// Telemetry subsystem: counter/histogram math, percentile edge cases,
// registry collision semantics, JSON snapshot determinism, and the trace
// ring buffer (wraparound accounting, sim-clock stamps).
#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/name.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace gdp::telemetry {
namespace {

Name test_name(std::uint8_t tag) {
  Bytes raw(32, 0);
  raw[0] = tag;
  return *Name::from_bytes(raw);
}

TEST(Counter, IncSetValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v : {0u, 1u, 2u, 3u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  // Values below 4 land in dedicated buckets: the quantile is exact.
  EXPECT_EQ(h.quantile(0.26), 1u);
  EXPECT_EQ(h.quantile(0.51), 2u);
  EXPECT_EQ(h.quantile(1.0), 3u);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, SingleValueQuantilesClampToMax) {
  Histogram h;
  h.record(1000003);
  EXPECT_EQ(h.p50(), 1000003u);
  EXPECT_EQ(h.p95(), 1000003u);
  EXPECT_EQ(h.p99(), 1000003u);
  EXPECT_EQ(h.min(), 1000003u);
  EXPECT_EQ(h.max(), 1000003u);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  // 4 sub-buckets per octave => upper bound overshoots by at most 12.5%,
  // and a quantile never reports below the true rank value's bucket.
  const std::uint64_t p50 = h.p50();
  EXPECT_GE(p50, 5000u * 7 / 8);
  EXPECT_LE(p50, 5000u * 9 / 8);
  const std::uint64_t p99 = h.p99();
  EXPECT_GE(p99, 9900u * 7 / 8);
  EXPECT_LE(p99, 10000u);  // clamped to observed max
}

TEST(Histogram, BucketBoundsCoverValues) {
  for (std::uint64_t v : {0ull, 1ull, 3ull, 4ull, 5ull, 63ull, 64ull, 1000ull,
                          (1ull << 32), ~0ull >> 1}) {
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBuckets);
    EXPECT_GE(Histogram::bucket_upper_bound(idx), v);
    if (idx > 0) {
      EXPECT_LT(Histogram::bucket_upper_bound(idx - 1), v);
    }
  }
}

TEST(Histogram, BucketIndexMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v += 13) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry r;
  Counter& a = r.counter("router.r1.fwd.pdus");
  Counter& b = r.counter("router.r1.fwd.pdus");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(r.counter_count(), 1u);
}

TEST(MetricsRegistry, CounterAndHistogramMayShareAName) {
  MetricsRegistry r;
  r.counter("net.bytes").inc(10);
  r.histogram("net.bytes").record(10);
  EXPECT_EQ(r.counter_count(), 1u);
  EXPECT_EQ(r.histogram_count(), 1u);
  EXPECT_EQ(r.counter("net.bytes").value(), 10u);
  EXPECT_EQ(r.histogram("net.bytes").count(), 1u);
}

TEST(MetricsRegistry, ToJsonIsInsertionOrderIndependent) {
  MetricsRegistry a;
  a.counter("z.last").inc(3);
  a.counter("a.first").inc(1);
  a.histogram("m.middle").record(42);

  MetricsRegistry b;
  b.histogram("m.middle").record(42);
  b.counter("a.first").inc(1);
  b.counter("z.last").inc(3);

  EXPECT_EQ(a.to_json(), b.to_json());
  // Sorted keys: "a.first" serializes before "z.last".
  const std::string json = a.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
}

TEST(MetricsRegistry, ToJsonEmptyRegistry) {
  MetricsRegistry r;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(TraceSink, RecordsWithSimClockStamps) {
  SimClock clock;
  TraceSink sink;
  sink.set_clock(&clock);
  clock.advance(from_millis(5));
  sink.record(1, test_name(0xAA), "recv");
  clock.advance(from_millis(10));
  sink.record(1, test_name(0xBB), "forward", "post_lookup");
  auto events = sink.events_for(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, from_millis(5));
  EXPECT_EQ(events[0].event, "recv");
  EXPECT_EQ(events[1].at, from_millis(15));
  EXPECT_EQ(events[1].detail, "post_lookup");
}

TEST(TraceSink, RingBufferWraparound) {
  TraceSink sink(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    sink.record(i, test_name(0x01), "recv");
  }
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped_by_wraparound(), 6u);
  auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: ids 7, 8, 9, 10.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].trace_id, 7 + i);
  }
}

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink;
  sink.set_enabled(false);
  sink.record(1, test_name(0x01), "recv");
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink(2);
  sink.record(1, test_name(0x01), "recv");
  sink.record(2, test_name(0x01), "recv");
  sink.record(3, test_name(0x01), "recv");
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.dropped_by_wraparound(), 0u);
}

TEST(TraceSink, ToJsonDeterministicAcrossIdenticalSequences) {
  auto run = [] {
    SimClock clock;
    TraceSink sink;
    sink.set_clock(&clock);
    for (std::uint64_t id = 1; id <= 3; ++id) {
      clock.advance(from_micros(100));
      sink.record(id, test_name(0x10), "recv");
      clock.advance(from_micros(50));
      sink.record(id, test_name(0x20), "forward");
      clock.advance(from_micros(50));
      sink.record(id, test_name(0x30), "deliver");
    }
    return sink.to_json();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"trace_id\": 1"), std::string::npos);
  EXPECT_NE(first.find("\"deliver\""), std::string::npos);
}

}  // namespace
}  // namespace gdp::telemetry
