// Property-based sweeps over the DataCapsule ADS.
//
// Parameterized over (hash-pointer strategy × capsule size × delivery
// seed); each instance checks the paper's core invariants:
//  1. Any delivery order converges to the same state (CRDT / leaderless
//     replication, §VI-A).
//  2. Every record is provable against the latest heartbeat, and every
//     proof verifies with nothing but the metadata (trust anchor, §V-A).
//  3. Any single-bit tamper of any record is detected (threat model,
//     §IV-C).
#include <gtest/gtest.h>

#include <tuple>

#include "capsule/metadata.hpp"
#include "capsule/proof.hpp"
#include "capsule/state.hpp"
#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"

namespace gdp::capsule {
namespace {

using Param = std::tuple<const char* /*strategy*/, int /*records*/, int /*seed*/>;

class CapsuleSweep : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    Rng rng(4000 + std::get<2>(GetParam()));
    owner_.emplace(crypto::PrivateKey::generate(rng));
    writer_key_.emplace(crypto::PrivateKey::generate(rng));
    auto meta = Metadata::create(*owner_, writer_key_->public_key(),
                                 WriterMode::kStrictSingleWriter, "sweep", 0,
                                 {{"strategy", std::get<0>(GetParam())}});
    ASSERT_TRUE(meta.ok());
    meta_.emplace(std::move(meta).value());
    writer_.emplace(*meta_, *writer_key_, strategy_from_id(std::get<0>(GetParam())));

    Rng payload_rng(std::get<2>(GetParam()));
    for (int i = 0; i < std::get<1>(GetParam()); ++i) {
      records_.push_back(
          writer_->append(payload_rng.next_bytes(1 + payload_rng.next_below(64)), i));
    }
  }

  std::vector<Record> shuffled() const {
    Rng rng(9000 + std::get<2>(GetParam()));
    std::vector<Record> out = records_;
    for (std::size_t i = out.size(); i > 1; --i) {
      std::swap(out[i - 1], out[rng.next_below(i)]);
    }
    return out;
  }

  std::optional<crypto::PrivateKey> owner_;
  std::optional<crypto::PrivateKey> writer_key_;
  std::optional<Metadata> meta_;
  std::optional<Writer> writer_;
  std::vector<Record> records_;
};

TEST_P(CapsuleSweep, AnyDeliveryOrderConverges) {
  CapsuleState in_order(*meta_);
  for (const Record& r : records_) ASSERT_TRUE(in_order.ingest(r).ok());

  CapsuleState out_of_order(*meta_);
  for (const Record& r : shuffled()) ASSERT_TRUE(out_of_order.ingest(r).ok());

  ASSERT_EQ(in_order.size(), records_.size());
  EXPECT_EQ(out_of_order.size(), in_order.size());
  EXPECT_EQ(out_of_order.tip_hash(), in_order.tip_hash());
  EXPECT_TRUE(out_of_order.holes().empty());
  EXPECT_EQ(out_of_order.detached_count(), 0u);
  EXPECT_FALSE(out_of_order.has_branch());
  for (std::uint64_t s = 1; s <= records_.size(); ++s) {
    ASSERT_TRUE(in_order.get_by_seqno(s).has_value());
    EXPECT_EQ(in_order.get_by_seqno(s)->hash(), out_of_order.get_by_seqno(s)->hash());
  }
}

TEST_P(CapsuleSweep, EveryRecordProvableAgainstHeartbeat) {
  CapsuleState state(*meta_);
  for (const Record& r : records_) ASSERT_TRUE(state.ingest(r).ok());
  Heartbeat hb = writer_->heartbeat();
  ASSERT_TRUE(state.check_heartbeat(hb).ok());
  for (const Record& r : records_) {
    auto proof = build_membership_proof(state, hb, r.hash());
    ASSERT_TRUE(proof.ok()) << "seqno " << r.header.seqno << ": "
                            << proof.error().to_string();
    EXPECT_TRUE(verify_membership_proof(*meta_, hb, *proof, r.hash()).ok());
  }
}

TEST_P(CapsuleSweep, RangeProofsCoverWholeCapsule) {
  CapsuleState state(*meta_);
  for (const Record& r : records_) ASSERT_TRUE(state.ingest(r).ok());
  Heartbeat hb = writer_->heartbeat();
  const std::uint64_t n = records_.size();
  for (std::uint64_t width : {std::uint64_t{1}, n / 2, n}) {
    if (width == 0) continue;
    std::uint64_t first = n - width + 1;
    auto proof = build_range_proof(state, hb, first, n);
    ASSERT_TRUE(proof.ok()) << proof.error().to_string();
    EXPECT_TRUE(verify_range_proof(*meta_, hb, *proof, first, n).ok());
  }
}

TEST_P(CapsuleSweep, TamperAnywhereDetected) {
  CapsuleState state(*meta_);
  // Flip one bit in one record (rotating position) and check the replica
  // refuses it while accepting all genuine records.
  Rng rng(31337 + std::get<2>(GetParam()));
  for (std::size_t victim = 0; victim < records_.size();
       victim += 1 + records_.size() / 8) {
    Record bad = records_[victim];
    Bytes wire = bad.serialize();
    wire[rng.next_below(wire.size())] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    auto parsed = Record::deserialize(wire);
    if (!parsed.ok()) continue;  // framing destroyed: rejected even earlier
    Status st = state.ingest(*parsed);
    if (st.ok()) {
      // Ingest may accept a record it must hold detached (hole) — it can
      // never attach it to the validated chain.
      EXPECT_EQ(state.size(), 0u);
      EXPECT_FALSE(state.contains(records_[victim].hash()));
    } else {
      EXPECT_EQ(st.code(), Errc::kVerificationFailed);
    }
  }
}

TEST_P(CapsuleSweep, WriterStateStaysSmall) {
  // The writer's durable state is O(log n) hashes at worst (skip-list),
  // never linear in the capsule size.
  EXPECT_LT(writer_->save_state().size(),
            64u + 40u * (2 + 64 - __builtin_clzll(records_.size() + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    StrategySizeSeed, CapsuleSweep,
    ::testing::Combine(::testing::Values("chain", "skiplist", "checkpoint:4",
                                         "checkpoint:32"),
                       ::testing::Values(1, 7, 64, 150),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string s = std::get<0>(info.param);
      for (char& c : s) {
        if (c == ':') c = '_';
      }
      return s + "_n" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Holes: drop a contiguous window of records, confirm the reported holes
// are exactly the frontier parents, then heal and re-check.
class HoleSweep : public ::testing::TestWithParam<int> {};

TEST_P(HoleSweep, DropWindowThenHeal) {
  Rng rng(600);
  auto owner = crypto::PrivateKey::generate(rng);
  auto wkey = crypto::PrivateKey::generate(rng);
  auto meta = Metadata::create(owner, wkey.public_key(),
                               WriterMode::kStrictSingleWriter, "holes", 0);
  ASSERT_TRUE(meta.ok());
  Writer w(*meta, wkey, make_chain_strategy());
  std::vector<Record> records;
  for (int i = 0; i < 40; ++i) records.push_back(w.append(to_bytes("x"), i));

  const int drop_at = GetParam();
  const int drop_len = 5;
  CapsuleState state(*meta);
  for (int i = 0; i < 40; ++i) {
    if (i >= drop_at && i < drop_at + drop_len) continue;
    ASSERT_TRUE(state.ingest(records[static_cast<std::size_t>(i)]).ok());
  }
  // With a chain, only the first missing record beyond the gap start is a
  // reported hole (the rest are detached behind it).
  EXPECT_EQ(state.size(), static_cast<std::size_t>(drop_at));
  EXPECT_EQ(state.holes().size(), 1u);
  EXPECT_EQ(state.tip_seqno(), static_cast<std::uint64_t>(drop_at));

  for (int i = drop_at; i < drop_at + drop_len; ++i) {
    ASSERT_TRUE(state.ingest(records[static_cast<std::size_t>(i)]).ok());
  }
  EXPECT_EQ(state.size(), 40u);
  EXPECT_TRUE(state.holes().empty());
  EXPECT_EQ(state.tip_hash(), records.back().hash());
}

INSTANTIATE_TEST_SUITE_P(Windows, HoleSweep, ::testing::Values(0, 7, 20, 34));

// QSW sweeps: random fork/append/merge schedules across several writer
// instances must always converge to identical replica state, and after a
// final merge the capsule must be single-headed with every record provable
// from the merged tip.
class QswSweep : public ::testing::TestWithParam<int> {};

TEST_P(QswSweep, RandomForksAndMergesConverge) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  auto owner = crypto::PrivateKey::generate(rng);
  auto wkey = crypto::PrivateKey::generate(rng);
  auto meta = Metadata::create(owner, wkey.public_key(),
                               WriterMode::kQuasiSingleWriter, "qsw-sweep", 0);
  ASSERT_TRUE(meta.ok());

  std::vector<Writer> writers;
  writers.push_back(Writer(*meta, wkey, make_chain_strategy()));
  std::vector<Record> records;

  // Random schedule: append on a random writer, occasionally fork a new
  // writer from a random writer's saved state, occasionally merge two
  // writers' heads.
  for (int step = 0; step < 60; ++step) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 6 || writers.size() == 1) {
      Writer& w = writers[rng.next_below(writers.size())];
      records.push_back(w.append(rng.next_bytes(8), step));
    } else if (dice < 8 && writers.size() < 4) {
      Writer& src = writers[rng.next_below(writers.size())];
      auto forked = Writer::restore(*meta, wkey, make_chain_strategy(),
                                    src.save_state());
      ASSERT_TRUE(forked.ok());
      writers.push_back(std::move(forked).value());
    } else {
      Writer& a = writers[rng.next_below(writers.size())];
      Writer& b = writers[rng.next_below(writers.size())];
      if (&a == &b) continue;
      records.push_back(a.append_merge(
          rng.next_bytes(8), step,
          {HashPtr{b.next_seqno() - 1, b.tip_hash()}}));
    }
  }
  // Final merge: fold every writer's head into writer 0.
  std::vector<HashPtr> heads;
  for (std::size_t i = 1; i < writers.size(); ++i) {
    heads.push_back(HashPtr{writers[i].next_seqno() - 1, writers[i].tip_hash()});
  }
  Record final_merge = writers[0].append_merge(to_bytes("final"), 999, heads);
  records.push_back(final_merge);

  // Two replicas, reversed delivery: identical state, single head.
  CapsuleState s1(*meta), s2(*meta);
  for (const Record& r : records) ASSERT_TRUE(s1.ingest(r).ok());
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ASSERT_TRUE(s2.ingest(*it).ok());
  }
  EXPECT_EQ(s1.size(), records.size());
  EXPECT_EQ(s1.size(), s2.size());
  EXPECT_EQ(s1.tip_hash(), s2.tip_hash());
  EXPECT_EQ(s1.tip_hash(), final_merge.hash());
  ASSERT_EQ(s1.heads().size(), 1u);
  EXPECT_TRUE(s1.holes().empty());

  // Every record is provable against the merged tip's heartbeat.
  Heartbeat hb = writers[0].heartbeat();
  ASSERT_TRUE(s1.check_heartbeat(hb).ok());
  for (const Record& r : records) {
    auto proof = build_membership_proof(s1, hb, r.hash());
    ASSERT_TRUE(proof.ok()) << "record seqno " << r.header.seqno << ": "
                            << proof.error().to_string();
    EXPECT_TRUE(verify_membership_proof(*meta, hb, *proof, r.hash()).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QswSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace gdp::capsule
