// Unit tests for the routing fabric: the topology database, the
// GLookupService hierarchy, and GDP-router behaviours that the end-to-end
// integration tests do not isolate.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "router/topology.hpp"
#include "wire/messages.hpp"

namespace gdp::router {
namespace {

using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

TEST(Topology, ShortestPathNextHop) {
  Topology topo;
  Name dom = name_of(100);
  for (std::uint8_t i = 1; i <= 5; ++i) topo.add_router(name_of(i), dom);
  // 1 -2- 2 -2- 3    and a slow direct edge 1 -10- 3
  topo.add_link(name_of(1), name_of(2), 2);
  topo.add_link(name_of(2), name_of(3), 2);
  topo.add_link(name_of(1), name_of(3), 10);
  auto route = topo.route(name_of(1), name_of(3));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->first, name_of(2));  // via the cheap path
  EXPECT_EQ(route->second, 4u);

  auto direct = topo.route(name_of(1), name_of(2));
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->first, name_of(2));
  EXPECT_EQ(direct->second, 2u);
}

TEST(Topology, UnreachableReturnsNullopt) {
  Topology topo;
  topo.add_router(name_of(1), name_of(100));
  topo.add_router(name_of(2), name_of(100));
  EXPECT_FALSE(topo.route(name_of(1), name_of(2)).has_value());
  EXPECT_FALSE(topo.route(name_of(1), name_of(9)).has_value());
}

TEST(Topology, SelfRouteIsZeroCost) {
  Topology topo;
  topo.add_router(name_of(1), name_of(100));
  auto r = topo.route(name_of(1), name_of(1));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 0u);
}

TEST(Topology, DomainLookup) {
  Topology topo;
  topo.add_router(name_of(1), name_of(100));
  EXPECT_EQ(topo.domain_of(name_of(1)), name_of(100));
  EXPECT_TRUE(topo.domain_of(name_of(2)).is_zero());
}

TEST(Topology, CacheInvalidatedByNewLinks) {
  Topology topo;
  Name dom = name_of(100);
  for (std::uint8_t i = 1; i <= 3; ++i) topo.add_router(name_of(i), dom);
  topo.add_link(name_of(1), name_of(2), 5);
  topo.add_link(name_of(2), name_of(3), 5);
  ASSERT_EQ(topo.route(name_of(1), name_of(3))->second, 10u);
  topo.add_link(name_of(1), name_of(3), 3);  // new shortcut
  EXPECT_EQ(topo.route(name_of(1), name_of(3))->second, 3u);
}

TEST(GLookup, RegistersOnlyVerifiableEntries) {
  Scenario s(50, "glookup");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* owner_client = s.add_client("owner", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "looked-up");
  ASSERT_TRUE(place_capsule(s, setup, *owner_client, {srv}).ok());
  // Registered by the advertisement pipeline (capsule + server + clients).
  EXPECT_GE(root->entry_count(), 3u);
  EXPECT_EQ(root->lookup_local(setup.metadata.name()).size(), 1u);

  // A fabricated entry without evidence is rejected.
  GLookupService::Entry bogus;
  bogus.target = name_of(42);
  bogus.attachment_router = r1->name();
  bogus.principal = to_bytes("not a principal");
  bogus.expires_ns = (s.sim().now() + from_seconds(100)).count();
  EXPECT_FALSE(root->register_entry(bogus).ok());
  EXPECT_TRUE(root->lookup_local(name_of(42)).empty());
}

TEST(GLookup, ExpiredEntriesNotServed) {
  Scenario s(51, "expiry");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* owner_client = s.add_client("owner", r1);
  s.attach_all();
  CapsuleSetup setup = make_capsule(s.key_rng(), "short-lived");
  ASSERT_TRUE(place_capsule(s, setup, *owner_client, {srv}).ok());
  ASSERT_EQ(root->lookup_local(setup.metadata.name()).size(), 1u);
  // Jump past the advertisement lifetime (24 h by default).
  s.sim().run_until(s.sim().now() + from_seconds(25 * 3600));
  EXPECT_TRUE(root->lookup_local(setup.metadata.name()).empty());
}

TEST(GLookup, AnycastPrefersCheaperAttachment) {
  Scenario s(52, "anycast");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  auto* r3 = s.add_router("r3", root);
  s.link_routers(r1, r2, net::LinkParams::wan(2));    // cheap
  s.link_routers(r1, r3, net::LinkParams::wan(200));  // expensive
  auto* near_srv = s.add_server("near", r2);
  auto* far_srv = s.add_server("far", r3);
  auto* owner_client = s.add_client("owner", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "anycasted");
  ASSERT_TRUE(place_capsule(s, setup, *owner_client, {near_srv, far_srv}).ok());
  ASSERT_EQ(root->lookup_local(setup.metadata.name()).size(), 2u);

  capsule::Writer writer = setup.make_writer();
  auto outcome = client::await(
      s.sim(), owner_client->append(writer, to_bytes("hello")));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  s.settle();
  // The request went to the nearer replica; the far one got it only via
  // background replication.
  EXPECT_EQ(near_srv->appends_accepted(), 1u);
  EXPECT_EQ(far_srv->appends_accepted(), 0u);
}

TEST(Router, ForwardsOnlyAfterAdvertisement) {
  Scenario s(53, "noroute");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* owner_client = s.add_client("owner", r1);
  s.attach_all();

  // Reading a never-advertised capsule name times out cleanly.
  CapsuleSetup setup = make_capsule(s.key_rng(), "ghost");
  auto read = client::await(s.sim(), owner_client->read_latest(setup.metadata));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.code(), Errc::kUnavailable);
  EXPECT_FALSE(r1->has_route(setup.metadata.name()));
}

TEST(Router, AdvertisementInstallsRoutesAndRegistrations) {
  Scenario s(54, "challenge");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  s.attach_all();
  ASSERT_TRUE(srv->attached());
  EXPECT_TRUE(r1->has_route(srv->name()));
  // The principal is registered with the lookup service as well.
  EXPECT_EQ(root->lookup_local(srv->name()).size(), 1u);
}

TEST(Router, UnroutablePduDroppedNotLooped) {
  Scenario s(55, "ttl");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::lan());
  s.attach_all();

  wire::Pdu pdu;
  pdu.dst = name_of(99);
  pdu.src = name_of(98);
  pdu.type = wire::MsgType::kBenchData;
  pdu.ttl = 8;
  s.net().send(r2->name(), r1->name(), pdu);
  s.settle();
  EXPECT_GE(r1->pdus_dropped() + r2->pdus_dropped(), 1u);
}

TEST(GLookup, ParentEscalationStatsAndCaching) {
  Scenario s(56, "cache");
  auto* global = s.add_domain("global", nullptr);
  auto* dom_a = s.add_domain("a", global);
  auto* dom_b = s.add_domain("b", global);
  auto* ra = s.add_router("ra", dom_a);
  auto* rb = s.add_router("rb", dom_b);
  s.link_routers(ra, rb, net::LinkParams::wan(10));
  auto* srv = s.add_server("srv", rb);
  auto* reader = s.add_client("reader", ra);
  auto* writer_client = s.add_client("writer", rb);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "cached-name");
  ASSERT_TRUE(place_capsule(s, setup, *writer_client, {srv}).ok());
  capsule::Writer writer = setup.make_writer();
  ASSERT_TRUE(client::await(s.sim(), writer_client->append(writer, to_bytes("x"))).ok());

  // First read from domain A escalates; the result is cached locally.
  ASSERT_TRUE(client::await(s.sim(), reader->read_latest(setup.metadata)).ok());
  std::uint64_t escalated = dom_a->queries_escalated();
  EXPECT_GT(escalated, 0u);
  EXPECT_GE(dom_a->lookup_local(setup.metadata.name()).size(), 1u);
}

TEST(Router, LinkDownWithdrawsRoutesAndAnycastFailsOver) {
  Scenario s(57, "failover");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* primary = s.add_server("primary", r1);
  auto* backup = s.add_server("backup", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "failover-capsule");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {primary, backup}).ok());
  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(client::await(s.sim(), cli->append(w, to_bytes("v"))).ok());
  s.settle();  // replicate to the backup
  ASSERT_TRUE(r1->has_route(cap.metadata.name()));
  ASSERT_EQ(root->lookup_local(cap.metadata.name()).size(), 2u);

  // Primary dies; its router withdraws the direct route + registration.
  s.crash(*primary);
  EXPECT_FALSE(r1->has_route(cap.metadata.name()));
  EXPECT_FALSE(r1->has_route(primary->name()));
  EXPECT_EQ(root->lookup_local(cap.metadata.name()).size(), 1u);
  EXPECT_EQ(root->lookup_local(cap.metadata.name())[0]->attachment_router,
            r2->name());

  // The very next read resolves to the surviving replica and verifies.
  auto read = client::await(s.sim(), cli->read_latest(cap.metadata));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(to_string(read->records[0].payload), "v");
  EXPECT_GE(backup->reads_served(), 1u);
}

TEST(Router, ScalesToManyCapsulesPerServer) {
  // One server advertising a large catalog: every name must verify,
  // install, register and resolve.  (The paper's utility model expects
  // servers hosting many tenants' capsules.)
  Scenario s(58, "scale");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  constexpr int kCapsules = 64;
  std::vector<CapsuleSetup> caps;
  caps.reserve(kCapsules);
  for (int i = 0; i < kCapsules; ++i) {
    caps.push_back(make_capsule(s.key_rng(), "tenant-" + std::to_string(i)));
  }
  // Place all of them (each create triggers a re-advertisement of the
  // whole, growing catalog — the stress).
  std::vector<client::OpPtr<bool>> ops;
  const TimePoint now = s.sim().now();
  const TimePoint expiry = now + from_seconds(1e6);
  for (const CapsuleSetup& cap : caps) {
    ops.push_back(cli->create_capsule(
        srv->name(), cap.metadata,
        cap.delegation_for(srv->principal(), now, expiry), {}));
  }
  s.settle();
  for (auto& op : ops) {
    auto placed = client::await(s.sim(), op);
    ASSERT_TRUE(placed.ok()) << placed.error().to_string();
  }
  EXPECT_EQ(r1->advertisements_rejected(), 0u);
  // Every tenant capsule resolves and serves.
  Rng pick(58);
  for (int i = 0; i < 8; ++i) {
    const CapsuleSetup& cap = caps[pick.next_below(caps.size())];
    capsule::Writer w = cap.make_writer();
    ASSERT_TRUE(client::await(s.sim(), cli->append(w, to_bytes("x"))).ok());
    auto read = client::await(s.sim(), cli->read_latest(cap.metadata));
    ASSERT_TRUE(read.ok()) << read.error().to_string();
  }
  EXPECT_GE(root->entry_count(), static_cast<std::size_t>(kCapsules));
}

// ---- Verification cache at the router --------------------------------------

TEST(Router, VerifyCacheHitsOnReAdvertisement) {
  Scenario s(59, "vcache-hit");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  const TimePoint now = s.sim().now();
  const TimePoint expiry = now + from_seconds(1e6);
  CapsuleSetup cap1 = make_capsule(s.key_rng(), "first");
  auto op1 = cli->create_capsule(srv->name(), cap1.metadata,
                                 cap1.delegation_for(srv->principal(), now, expiry),
                                 {});
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op1).ok());
  const std::uint64_t hits_before = r1->verify_cache_hits();
  const std::uint64_t misses_before = r1->verify_cache_misses();
  EXPECT_GT(misses_before, 0u);  // first presentation is all misses

  // The second create re-advertises the whole catalog: capsule 1's
  // delegation chain is re-presented verbatim and must hit the cache.
  CapsuleSetup cap2 = make_capsule(s.key_rng(), "second");
  auto op2 = cli->create_capsule(srv->name(), cap2.metadata,
                                 cap2.delegation_for(srv->principal(), now, expiry),
                                 {});
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op2).ok());
  EXPECT_GT(r1->verify_cache_hits(), hits_before);
  EXPECT_EQ(r1->advertisements_rejected(), 0u);
  EXPECT_GT(root->verify_cache_hits(), 0u);  // glookup re-verifies too
}

TEST(Router, VerifyCacheMissAfterCertExpiry) {
  Scenario s(60, "vcache-exp");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  // Capsule 1's AdCert expires almost immediately.
  const TimePoint now = s.sim().now();
  CapsuleSetup cap1 = make_capsule(s.key_rng(), "ephemeral");
  auto op1 = cli->create_capsule(
      srv->name(), cap1.metadata,
      cap1.delegation_for(srv->principal(), now, now + from_seconds(2)), {});
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op1).ok());
  const std::uint64_t misses_before = r1->verify_cache_misses();
  ASSERT_EQ(r1->advertisements_rejected(), 0u);

  // Advance simulated time past the AdCert validity, then trigger a
  // re-advertisement.  The cached verdict for capsule 1's AdCert has
  // expired with the cert: its re-presentation is a cache miss and the
  // certificate itself is now rejected by the window check.
  s.settle_for(from_seconds(10));
  const TimePoint later = s.sim().now();
  CapsuleSetup cap2 = make_capsule(s.key_rng(), "fresh");
  auto op2 = cli->create_capsule(
      srv->name(), cap2.metadata,
      cap2.delegation_for(srv->principal(), later, later + from_seconds(1e6)),
      {});
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op2).ok());
  EXPECT_GT(r1->verify_cache_misses(), misses_before);
  EXPECT_GE(r1->advertisements_rejected(), 1u);
}

TEST(Router, VerifyCacheEvictionUnderTinyCapacity) {
  Scenario s(61, "vcache-evict");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  // Capacity 1: every distinct signature evicts the previous entry, so the
  // re-advertisement that hits with the default capacity cannot hit here.
  r1->set_verify_cache_capacity(1);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  const TimePoint now = s.sim().now();
  const TimePoint expiry = now + from_seconds(1e6);
  for (int i = 0; i < 2; ++i) {
    CapsuleSetup cap = make_capsule(s.key_rng(), "t-" + std::to_string(i));
    auto op = cli->create_capsule(
        srv->name(), cap.metadata,
        cap.delegation_for(srv->principal(), now, expiry), {});
    s.settle();
    ASSERT_TRUE(client::await(s.sim(), op).ok());
  }
  EXPECT_EQ(r1->verify_cache_hits(), 0u);
  EXPECT_GT(r1->verify_cache_misses(), 0u);
  EXPECT_EQ(r1->advertisements_rejected(), 0u);  // eviction never breaks verification
}

TEST(Telemetry, MultiHopForwardProducesExpectedSpanSequence) {
  Scenario s(70, "spans");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv = s.add_server("srv", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "traced");
  ASSERT_TRUE(place_capsule(s, setup, *cli, {srv}).ok());
  auto writer = setup.make_writer();

  // Warm-up append resolves the capsule route at r1; the measured append
  // then rides pure FIB hits on every hop.
  auto warm = cli->append(writer, to_bytes("warm"));
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), warm).ok());

  s.net().trace().clear();
  auto op = cli->append(writer, to_bytes("measured"));
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op).ok());

  // Find the request PDU's trace: it starts at r1 and ends delivered at
  // the capsule server.
  std::uint64_t request_trace = 0;
  for (const auto& e : s.net().trace().events()) {
    if (e.node == srv->name() && e.event == "deliver") {
      const auto spans = s.net().trace().events_for(e.trace_id);
      if (!spans.empty() && spans.front().node == r1->name()) {
        request_trace = e.trace_id;
        break;
      }
    }
  }
  ASSERT_NE(request_trace, 0u);

  const auto spans = s.net().trace().events_for(request_trace);
  std::vector<std::pair<Name, std::string_view>> expected = {
      {r1->name(), "recv"},     {r1->name(), "fib_lookup"},
      {r1->name(), "forward"},  {r2->name(), "recv"},
      {r2->name(), "fib_lookup"}, {r2->name(), "forward"},
      {srv->name(), "recv"},    {srv->name(), "deliver"},
  };
  ASSERT_EQ(spans.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(spans[i].node, expected[i].first) << "span " << i;
    EXPECT_EQ(spans[i].event, expected[i].second) << "span " << i;
  }
  // Both FIB consultations were hits, and sim time never moves backwards
  // along the hop timeline.
  EXPECT_EQ(spans[1].detail, "hit");
  EXPECT_EQ(spans[4].detail, "hit");
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].at, spans[i - 1].at);
  }
}

TEST(Telemetry, StatsDumpContainsFabricWideSeries) {
  Scenario s(71, "statsdump");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();

  CapsuleSetup setup = make_capsule(s.key_rng(), "dumped");
  ASSERT_TRUE(place_capsule(s, setup, *cli, {srv}).ok());
  auto writer = setup.make_writer();
  auto op = cli->append(writer, to_bytes("payload"));
  s.settle();
  ASSERT_TRUE(client::await(s.sim(), op).ok());

  const std::string json = s.stats_json();
  // Router FIB + verify cache, glookup, link, store and drop-reason
  // series all surface in one dump.
  for (const char* key :
       {"router.r1.fwd.pdus", "router.r1.fib.size", "router.r1.fib.hits",
        "router.r1.verify_cache.hits", "router.r1.verify_cache.misses",
        "router.r1.drop.pdus", "router.r1.drop.ttl", "router.r1.drop.no_route",
        "glookup.global.entries", "glookup.global.verify_cache.hits",
        "glookup.global.queries.served", "net.pdus.delivered",
        "net.bytes.delivered", "net.pdu.wire_bytes", "net.link.queue_wait_ns",
        "server.srv.appends.accepted", "client.cli.op.latency_ns"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing series: " << key;
  }
  // Per-capsule storage gauges (records/bytes/flushes) keyed by name.
  const std::string capsule_prefix =
      "store." + setup.metadata.name().short_hex() + ".";
  EXPECT_NE(json.find(capsule_prefix + "records"), std::string::npos);
  EXPECT_NE(json.find(capsule_prefix + "flushes"), std::string::npos);
  EXPECT_NE(json.find(capsule_prefix + "append.bytes"), std::string::npos);

  // The append was flushed before the ack (fsync-equivalent accounting).
  const store::CapsuleStore* cs = srv->storage().find(setup.metadata.name());
  ASSERT_NE(cs, nullptr);
  EXPECT_GE(cs->log().sync_count(), 1u);
}

TEST(Telemetry, IdenticalRunsProduceByteIdenticalDumps) {
  auto run = [] {
    Scenario s(72, "determinism");
    auto* root = s.add_domain("global", nullptr);
    auto* r1 = s.add_router("r1", root);
    auto* r2 = s.add_router("r2", root);
    s.link_routers(r1, r2, net::LinkParams::wan(5));
    auto* srv = s.add_server("srv", r2);
    auto* cli = s.add_client("cli", r1);
    s.attach_all();

    CapsuleSetup setup = make_capsule(s.key_rng(), "repro");
    EXPECT_TRUE(place_capsule(s, setup, *cli, {srv}).ok());
    auto writer = setup.make_writer();
    for (int i = 0; i < 3; ++i) {
      auto op = cli->append(writer, to_bytes("rec-" + std::to_string(i)));
      s.settle();
      EXPECT_TRUE(client::await(s.sim(), op).ok());
    }
    auto rd = cli->read_latest(setup.metadata);
    s.settle();
    EXPECT_TRUE(client::await(s.sim(), rd).ok());
    return std::make_pair(s.stats_json(), s.trace_json());
  };

  const auto first = run();
  const auto second = run();
  // No wall-clock leaks anywhere on the instrumented paths: metrics AND
  // hop-by-hop traces are byte-identical across identical runs.
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// ---- Chaos: route maintenance under injected failures ----------------------

TEST(Chaos, LookupRetryRecoversFromDroppedReply) {
  Scenario s(80, "retry");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv = s.add_server("srv", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "retried");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());

  // Lossy control plane: the first lookup reply toward r1 vanishes.
  int dropped = 0;
  s.net().set_interceptor(root->name(), r1->name(),
                          [&](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            if (pdu.type == wire::MsgType::kLookupReply &&
                                dropped == 0) {
                              ++dropped;
                              return std::nullopt;
                            }
                            return pdu;
                          });
  capsule::Writer w = cap.make_writer();
  const TimePoint t0 = s.sim().now();
  auto append = client::await(s.sim(), cli->append(w, to_bytes("v")));
  ASSERT_TRUE(append.ok()) << append.error().to_string();
  EXPECT_EQ(dropped, 1);
  // Recovery came through the backoff timer, not luck: the op took at
  // least one lookup_timeout, and exactly one retry was issued.
  EXPECT_GE(s.sim().now() - t0, r1->maintenance().lookup_timeout);
  EXPECT_EQ(r1->lookup_retries(), 1u);
  EXPECT_EQ(r1->lookup_timeouts(), 0u);
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
  EXPECT_EQ(r1->pending_lookup_count(), 0u);
}

TEST(Chaos, LookupTimeoutDropsQueueWithNamedReason) {
  Scenario s(81, "timeout");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  r1->maintenance().lookup_timeout = from_millis(50);

  // Black-hole the control plane entirely: no reply ever arrives.
  s.net().set_interceptor(root->name(), r1->name(),
                          [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            if (pdu.type == wire::MsgType::kLookupReply) {
                              return std::nullopt;
                            }
                            return pdu;
                          });
  wire::Pdu pdu;
  pdu.dst = name_of(99);
  pdu.src = cli->name();
  pdu.type = wire::MsgType::kBenchData;
  s.net().send(cli->name(), r1->name(), pdu);
  s.settle();

  // 1 initial + 3 retries (backoff 50/100/200/400 ms), then terminal:
  // the parked PDU dropped with a named reason, nothing leaked.
  EXPECT_EQ(r1->lookup_retries(), 3u);
  EXPECT_EQ(r1->lookup_timeouts(), 1u);
  EXPECT_GE(r1->lookups_issued(), 4u);
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
  EXPECT_EQ(r1->pending_lookup_count(), 0u);
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"router.r1.drop.lookup_timeout\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"router.r1.lookup.timeouts\": 1"), std::string::npos);
  // A later PDU for the same target is not wedged behind the dead lookup:
  // resolution starts afresh (and times out afresh, by design).
  s.net().send(cli->name(), r1->name(), pdu);
  s.settle();
  EXPECT_EQ(r1->lookup_timeouts(), 2u);
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
}

TEST(Chaos, QueueCapDropsFloodWithNamedReason) {
  Scenario s(82, "qcap");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  r1->maintenance().max_queued_per_target = 4;

  // Burst of 10 PDUs toward one unresolved name: 4 park behind the
  // lookup, 6 drop as queue_full; the not-found reply then drains the
  // parked 4 as no_route.  Nothing accumulates.
  for (int i = 0; i < 10; ++i) {
    wire::Pdu pdu;
    pdu.dst = name_of(77);
    pdu.src = cli->name();
    pdu.type = wire::MsgType::kBenchData;
    s.net().send(cli->name(), r1->name(), pdu);
  }
  s.settle();
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
  EXPECT_EQ(r1->pending_lookup_count(), 0u);
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"router.r1.drop.queue_full\": 6"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"router.r1.drop.no_route\": 4"), std::string::npos);
}

TEST(Chaos, FibExpiryPurgesLazilyAndBySweep) {
  Scenario s(83, "expiry");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  auto* cli2 = s.add_client("cli2", r1);
  s.attach_all();
  ASSERT_EQ(r1->rt_cert_count(), 3u);  // srv + two clients

  // Re-attach both clients with 2-second leases: their routes (and the
  // RtCerts backing them) now expire almost immediately.
  cli->advertise(r1->name(), {}, from_seconds(2));
  cli2->advertise(r1->name(), {}, from_seconds(2));
  s.settle();
  ASSERT_TRUE(r1->has_route(cli->name()));
  s.settle_for(from_seconds(3));
  // Expired but not yet purged: has_route() already refuses it.
  EXPECT_FALSE(r1->has_route(cli->name()));

  // Lazy purge: traffic toward the expired name hits the stale entry,
  // evicts it, and re-triggers a lookup instead of forwarding into the
  // void.  The lookup finds nothing (the registration lapsed too).
  const std::uint64_t lookups_before = r1->lookups_issued();
  wire::Pdu pdu;
  pdu.dst = cli->name();
  pdu.src = srv->name();
  pdu.type = wire::MsgType::kBenchData;
  s.net().send(srv->name(), r1->name(), pdu);
  s.settle();
  EXPECT_EQ(r1->fib_expired(), 1u);
  EXPECT_GT(r1->lookups_issued(), lookups_before);
  EXPECT_EQ(r1->awaiting_route_count(), 0u);

  // Sweep purge: cli2's expired entry goes in one maintenance round, and
  // the lapsed RtCerts go with it.
  EXPECT_EQ(r1->maintenance_round(), 1u);
  EXPECT_EQ(r1->fib_expired(), 2u);
  EXPECT_EQ(r1->rt_cert_count(), 1u);  // only the server's cert survives

  // The periodic timer drives the same sweep: re-expire cli2 and let the
  // scheduled loop collect it.
  cli2->advertise(r1->name(), {}, from_seconds(2));
  s.settle();
  r1->start_maintenance();
  s.settle_for(from_seconds(4));
  EXPECT_EQ(r1->fib_expired(), 3u);
  r1->stop_maintenance();
  s.settle_for(from_seconds(2));  // pending tick fires once, then stops

  // Renewal restores reachability — expiry is never a tombstone.
  cli->advertise(r1->name(), {});
  s.settle();
  EXPECT_TRUE(r1->has_route(cli->name()));
}

TEST(Chaos, NextHopUnreachableDropsQueueAndDoesNotWedge) {
  Scenario s(84, "nexthop");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv = s.add_server("srv", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "partitioned");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());

  // Partition the inter-router link.  The topology database still knows
  // the path, so lookups resolve to a next hop that is not reachable.
  s.set_link_down(r1->name(), r2->name());
  capsule::Writer w = cap.make_writer();
  auto append = client::await(s.sim(), cli->append(w, to_bytes("lost")));
  EXPECT_FALSE(append.ok());
  // Regression (leaked awaiting_route_ queue): the next_hop_unreachable
  // reply branch must drop the parked PDUs with accounting, not strand
  // them behind a lookup that no longer exists.
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
  EXPECT_EQ(r1->pending_lookup_count(), 0u);
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"router.r1.drop.next_hop_unreachable\": 1"),
            std::string::npos)
      << json;

  // Heal the partition: the very next append resolves afresh and lands —
  // the failed lookup left no wedge behind.  (Fresh writer: the lost
  // record never reached the server, so the chain restarts at seqno 1.)
  s.set_link_up(r1->name(), r2->name());
  capsule::Writer w2 = cap.make_writer();
  auto retry = client::await(s.sim(), cli->append(w2, to_bytes("found")));
  ASSERT_TRUE(retry.ok()) << retry.error().to_string();
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
}

TEST(Chaos, ForgedLookupReplyIgnored) {
  Scenario s(85, "forged");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  s.add_client("cli", r1);
  s.attach_all();

  // An unsolicited reply (no outstanding lookup, unknown nonce) claiming
  // name_of(66) is attached here must not install anything.
  wire::LookupReplyMsg forged;
  forged.found = true;
  forged.target = name_of(66);
  forged.attachment_router = r1->name();
  forged.next_hop = r1->name();
  forged.nonce = 0xdeadbeef;
  wire::Pdu pdu;
  pdu.dst = r1->name();
  pdu.src = root->name();
  pdu.type = wire::MsgType::kLookupReply;
  pdu.payload = forged.serialize();
  s.net().send(root->name(), r1->name(), pdu);
  s.settle();
  EXPECT_FALSE(r1->has_route(name_of(66)));
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"router.r1.drop.unsolicited_lookup_reply\": 1"),
            std::string::npos)
      << json;
}

TEST(Chaos, EvidenceStrippedLookupReplyRejected) {
  Scenario s(86, "stripped");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* r2 = s.add_router("r2", root);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv = s.add_server("srv", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "no-evidence");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());

  // A compromised lookup service answers with the correct nonce but no
  // delegation evidence.  Capsule names are not self-certifying, so the
  // router must refuse to install the route.
  s.net().set_interceptor(
      root->name(), r1->name(),
      [](const wire::Pdu& p) -> std::optional<wire::Pdu> {
        if (p.type != wire::MsgType::kLookupReply) return p;
        auto msg = wire::LookupReplyMsg::deserialize(p.payload);
        if (!msg.ok() || !msg->found || msg->evidence.empty()) return p;
        wire::Pdu out = p;
        msg->evidence.clear();
        out.payload = msg->serialize();
        return out;
      });
  capsule::Writer w = cap.make_writer();
  auto append = client::await(s.sim(), cli->append(w, to_bytes("x")));
  EXPECT_FALSE(append.ok());
  EXPECT_FALSE(r1->has_route(cap.metadata.name()));
  EXPECT_EQ(r1->awaiting_route_count(), 0u);
  const std::string json = s.stats_json();
  EXPECT_NE(json.find("\"router.r1.drop.bad_evidence\": 1"), std::string::npos)
      << json;
}

TEST(Chaos, ReAdvertisementDoesNotGrowWithdrawalBook) {
  Scenario s(87, "dedupe");
  auto* root = s.add_domain("global", nullptr);
  auto* r1 = s.add_router("r1", root);
  auto* srv = s.add_server("srv", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "dedup");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());
  ASSERT_EQ(r1->attached_targets(srv->name()), 2u);  // principal + capsule

  // Repeated re-advertisements re-present the same catalog: the
  // withdrawal book must not grow.
  for (int i = 0; i < 3; ++i) {
    srv->advertise_to(r1->name());
    s.settle();
  }
  EXPECT_EQ(r1->attached_targets(srv->name()), 2u);
  EXPECT_EQ(r1->rt_cert_count(), 2u);

  // Garbage catalog records are counted, not silently skipped — and do
  // not disturb the previously installed names.
  srv->advertise(r1->name(), {to_bytes("not a catalog record")});
  s.settle();
  EXPECT_EQ(r1->bad_catalog_records(), 1u);
  EXPECT_EQ(r1->attached_targets(srv->name()), 2u);
  EXPECT_TRUE(r1->has_route(cap.metadata.name()));

  // Crash: the withdrawal purges exactly the advertiser's state — the
  // RtCert (keyed by advertiser, not neighbor), the FIB entries, and the
  // registrations — leaving the client's untouched.
  s.crash(*srv);
  EXPECT_EQ(r1->attached_targets(srv->name()), 0u);
  EXPECT_EQ(r1->rt_cert_count(), 1u);
  EXPECT_FALSE(r1->has_route(cap.metadata.name()));
  EXPECT_TRUE(r1->has_route(cli->name()));
  EXPECT_TRUE(root->lookup_local(cap.metadata.name()).empty());
}

TEST(Chaos, IdenticalChaosRunsProduceByteIdenticalDumps) {
  auto run = [] {
    Scenario s(88, "chaos-repro");
    auto* root = s.add_domain("global", nullptr);
    auto* r1 = s.add_router("r1", root);
    auto* r2 = s.add_router("r2", root);
    s.link_routers(r1, r2, net::LinkParams::wan(5));
    auto* srv = s.add_server("srv", r2);
    auto* cli = s.add_client("cli", r1);
    s.attach_all();
    CapsuleSetup cap = make_capsule(s.key_rng(), "chaos");
    EXPECT_TRUE(place_capsule(s, cap, *cli, {srv}).ok());
    int dropped = 0;
    s.net().set_interceptor(root->name(), r1->name(),
                            [&](const wire::Pdu& p) -> std::optional<wire::Pdu> {
                              if (p.type == wire::MsgType::kLookupReply &&
                                  dropped == 0) {
                                ++dropped;
                                return std::nullopt;
                              }
                              return p;
                            });
    s.flap_link(srv->name(), r2->name(), from_millis(100), from_millis(200));
    capsule::Writer w = cap.make_writer();
    for (int i = 0; i < 3; ++i) {
      auto op = cli->append(w, to_bytes("c-" + std::to_string(i)));
      s.settle();
      (void)client::await(s.sim(), op);  // some ops may fail mid-flap
    }
    s.settle();
    return std::make_pair(s.stats_json(), s.trace_json());
  };
  const auto first = run();
  const auto second = run();
  // Chaos injection is scripted in sim time, so failure runs replay
  // byte-for-byte: metrics AND hop-by-hop traces are identical.
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

}  // namespace
}  // namespace gdp::router
