// Unit tests for the common substrate: bytes/hex, Result, varints, names,
// the deterministic RNG and the simulated clock.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/varint.hpp"

namespace gdp {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(hex_encode(b), "0001deadbeefff");
  auto back = hex_decode("0001deadbeefff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(Bytes, HexDecodeUpperCase) {
  auto v = hex_decode("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(hex_encode(*v), "deadbeef");
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(Bytes, HexDecodeRejectsBadDigit) {
  EXPECT_FALSE(hex_decode("zz").has_value());
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  auto v = hex_decode("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = to_bytes("secret");
  Bytes b = to_bytes("secret");
  Bytes c = to_bytes("secreT");
  Bytes d = to_bytes("secre");
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

TEST(Bytes, Concat) {
  Bytes a = to_bytes("ab");
  Bytes b = to_bytes("cd");
  Bytes c = to_bytes("");
  EXPECT_EQ(to_string(concat(a, b, c)), "abcd");
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
}

TEST(Result, OkValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), Errc::kOk);
}

TEST(Result, ErrorValue) {
  Result<int> r = make_error(Errc::kNotFound, "no such record");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::kNotFound);
  EXPECT_EQ(r.error().to_string(), "NOT_FOUND: no such record");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, Error) {
  Status s = make_error(Errc::kExpired, "cert lapsed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kExpired);
}

Result<int> parse_positive(int v) {
  if (v <= 0) return make_error(Errc::kInvalidArgument, "not positive");
  return v;
}

Result<int> doubled_positive(int v) {
  GDP_ASSIGN_OR_RETURN(int x, parse_positive(v));
  return x * 2;
}

TEST(Result, AssignOrReturnMacro) {
  auto ok = doubled_positive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  auto bad = doubled_positive(-1);
  EXPECT_EQ(bad.code(), Errc::kInvalidArgument);
}

TEST(Varint, RoundTripSmall) {
  Bytes out;
  put_varint(out, 0);
  put_varint(out, 1);
  put_varint(out, 127);
  put_varint(out, 128);
  put_varint(out, 300);
  ByteReader r(out);
  EXPECT_EQ(r.get_varint(), 0u);
  EXPECT_EQ(r.get_varint(), 1u);
  EXPECT_EQ(r.get_varint(), 127u);
  EXPECT_EQ(r.get_varint(), 128u);
  EXPECT_EQ(r.get_varint(), 300u);
  EXPECT_TRUE(r.empty());
}

TEST(Varint, RoundTripLarge) {
  Bytes out;
  const std::uint64_t kMax = ~std::uint64_t{0};
  put_varint(out, kMax);
  put_varint(out, kMax - 1);
  ByteReader r(out);
  EXPECT_EQ(r.get_varint(), kMax);
  EXPECT_EQ(r.get_varint(), kMax - 1);
}

TEST(Varint, TruncatedFails) {
  Bytes out;
  put_varint(out, 1u << 20);
  out.pop_back();
  ByteReader r(out);
  EXPECT_FALSE(r.get_varint().has_value());
}

TEST(Varint, Fixed64RoundTrip) {
  Bytes out;
  put_fixed64(out, 0x0123456789abcdefULL);
  ByteReader r(out);
  EXPECT_EQ(r.get_fixed64(), 0x0123456789abcdefULL);
}

TEST(Varint, Fixed32RoundTrip) {
  Bytes out;
  put_fixed32(out, 0xdeadbeef);
  ByteReader r(out);
  EXPECT_EQ(r.get_fixed32(), 0xdeadbeefu);
}

TEST(Varint, LengthPrefixedRoundTrip) {
  Bytes out;
  put_length_prefixed(out, to_bytes("hello"));
  put_length_prefixed(out, Bytes{});
  ByteReader r(out);
  auto a = r.get_length_prefixed();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(to_string(*a), "hello");
  auto b = r.get_length_prefixed();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->empty());
}

TEST(Varint, LengthPrefixedRejectsOverrun) {
  Bytes out;
  put_varint(out, 100);  // claims 100 bytes, provides none
  ByteReader r(out);
  EXPECT_FALSE(r.get_length_prefixed().has_value());
}

TEST(Name, FromBytesRequires32) {
  EXPECT_FALSE(Name::from_bytes(Bytes(31)).has_value());
  EXPECT_TRUE(Name::from_bytes(Bytes(32)).has_value());
}

TEST(Name, HexRoundTrip) {
  Bytes raw(32);
  for (int i = 0; i < 32; ++i) raw[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  auto n = Name::from_bytes(raw);
  ASSERT_TRUE(n.has_value());
  auto back = Name::from_hex(n->hex());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*n, *back);
  EXPECT_EQ(n->short_hex(), n->hex().substr(0, 8));
}

TEST(Name, ZeroDetection) {
  Name zero;
  EXPECT_TRUE(zero.is_zero());
  Bytes raw(32);
  raw[31] = 1;
  EXPECT_FALSE(Name::from_bytes(raw)->is_zero());
}

TEST(Name, Ordering) {
  Bytes lo(32), hi(32);
  hi[0] = 1;
  EXPECT_LT(*Name::from_bytes(lo), *Name::from_bytes(hi));
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BytesLength) {
  Rng rng(3);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(7).size(), 7u);
  EXPECT_EQ(rng.next_bytes(64).size(), 64u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(11);
  Rng child = parent.fork();
  // The child stream should not replay the parent stream.
  Rng parent2(11);
  parent2.fork();
  EXPECT_EQ(child.next_u64(), Rng(Rng(11).next_u64()).next_u64());
}

TEST(Clock, SimClockAdvances) {
  SimClock clk;
  EXPECT_EQ(clk.now().count(), 0);
  clk.advance(from_millis(5));
  EXPECT_EQ(clk.now(), from_millis(5));
  clk.advance_to(from_seconds(1.0));
  EXPECT_EQ(to_seconds(clk.now()), 1.0);
}

TEST(Clock, ConversionHelpers) {
  EXPECT_EQ(from_millis(1).count(), 1000000);
  EXPECT_EQ(from_micros(1).count(), 1000);
  EXPECT_DOUBLE_EQ(to_seconds(from_millis(1500)), 1.5);
}

}  // namespace
}  // namespace gdp
