// Flight-recorder pipeline: ring wraparound/overflow accounting, seeded
// sampling determinism, seqlock-protected concurrent record+snapshot (the
// CI TSan job runs the threaded cases), StatsTimeline/TelemetryPoller
// behaviour, and Perfetto export validity (parses as JSON, timestamps
// monotone within every track).
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/perfetto.hpp"
#include "telemetry/timeline.hpp"

namespace gdp::telemetry {
namespace {

// ---- a minimal JSON validity checker ----------------------------------------
//
// Recursive-descent acceptor for the JSON the exporter emits (objects,
// arrays, strings without exotic escapes, numbers, bools, null).  Accepts
// iff the whole input is one well-formed value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') { ++pos_; continue; }
      if (s_[pos_] == '"') { ++pos_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *lit) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- FlightRing -------------------------------------------------------------

TEST(FlightRing, RecordsAndSnapshotsInOrder) {
  FlightRing ring(16);
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(static_cast<std::int64_t>(100 + i), FlightEventType::kForward,
                i, 7);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].t_ns, static_cast<std::int64_t>(100 + i));
    EXPECT_EQ(events[i].trace_id, i);
    EXPECT_EQ(events[i].type, FlightEventType::kForward);
    EXPECT_EQ(events[i].arg, 7u);
  }
}

TEST(FlightRing, WraparoundKeepsTheRecentPastAndCountsOverwrites) {
  FlightRing ring(8);
  const std::uint64_t total = 8 * 5 + 3;  // several laps plus a partial one
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.record(static_cast<std::int64_t>(i), FlightEventType::kDequeue, i, 0);
  }
  EXPECT_EQ(ring.recorded(), total);
  EXPECT_EQ(ring.overwritten(), total - 8);
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Flight-recorder semantics: the survivors are exactly the newest 8,
  // oldest-first.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].trace_id, total - 8 + i);
  }
}

TEST(FlightRing, CapacityRoundsUpToPowerOfTwo) {
  FlightRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 9; ++i) {
    ring.record(0, FlightEventType::kSubmit, i, 0);
  }
  EXPECT_EQ(ring.overwritten(), 1u);
}

TEST(FlightRing, ArgTruncatesTo48Bits) {
  FlightRing ring(4);
  ring.record(1, FlightEventType::kForward, 42, ~std::uint64_t{0});
  const std::vector<FlightEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg, (~std::uint64_t{0}) >> 16);
  EXPECT_EQ(events[0].type, FlightEventType::kForward);
}

// The seqlock contract under real threads: one writer laps the ring while
// a reader snapshots continuously.  Every observed event must be
// internally consistent (valid type, plausible payload) — torn reads are
// discarded, never surfaced.  TSan (the `threaded` CI job) checks the
// absence of data races on the slot atomics.
TEST(FlightRing, ConcurrentRecordAndSnapshotStaysConsistent) {
  FlightRing ring(64);
  constexpr std::uint64_t kEvents = 200000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      // trace_id and arg carry the same value: a torn slot that mixed two
      // events would break the equality.
      ring.record(static_cast<std::int64_t>(i), FlightEventType::kForward, i,
                  i & 0xFFFFFFFFFFFFull);
    }
    done.store(true, std::memory_order_release);
  });

  // Keep snapshotting while the writer runs, and take a few more after it
  // finishes (a fast writer can outrun thread startup entirely, and a
  // descheduled reader can sleep through the whole write burst — only
  // snapshots taken after `done` are guaranteed to see a stable ring).
  std::uint64_t snapshots = 0, observed = 0, post_done = 0;
  for (;;) {
    const bool was_done = done.load(std::memory_order_acquire);
    const std::vector<FlightEvent> events = ring.snapshot();
    ++snapshots;
    for (const FlightEvent& e : events) {
      ++observed;
      ASSERT_EQ(e.type, FlightEventType::kForward);
      ASSERT_EQ(e.arg, e.trace_id & 0xFFFFFFFFFFFFull);
      ASSERT_EQ(e.t_ns, static_cast<std::int64_t>(e.trace_id));
    }
    if (was_done && ++post_done >= 8) break;
  }
  writer.join();

  EXPECT_GT(snapshots, 0u);
  EXPECT_GT(observed, 0u);
  EXPECT_EQ(ring.recorded(), kEvents);
  EXPECT_EQ(ring.snapshot().size(), 64u);
}

// ---- FlightRecorder sampling ------------------------------------------------

TEST(FlightRecorder, SamplingIsDeterministicForASeed) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 16;
  cfg.seed = 0xABCD;
  FlightRecorder a(3, cfg), b(3, cfg);
  for (std::size_t track = 0; track < 3; ++track) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(a.tick(track), b.tick(track))
          << "track " << track << " tick " << i;
    }
    EXPECT_EQ(a.sampled(track), b.sampled(track));
    EXPECT_EQ(a.seen(track), 1000u);
  }
}

TEST(FlightRecorder, SeedShiftsThePerTrackPhase) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 64;
  cfg.seed = 1;
  FlightRecorder rec(4, cfg);
  // Record tick positions of the first sample on each track; the seeded
  // phases must not all coincide (lockstep sampling across tracks would
  // blind the recorder to cross-shard patterns).
  std::vector<int> first(4, -1);
  for (std::size_t track = 0; track < 4; ++track) {
    for (int i = 0; i < 64; ++i) {
      if (rec.tick(track)) {
        first[track] = i;
        break;
      }
    }
    ASSERT_GE(first[track], 0);
  }
  bool all_same = true;
  for (std::size_t t = 1; t < 4; ++t) all_same &= first[t] == first[0];
  EXPECT_FALSE(all_same) << "every track sampled at tick " << first[0];
}

TEST(FlightRecorder, SamplePeriodOneRecordsEverything) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 1;
  FlightRecorder rec(1, cfg);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rec.tick(0));
    rec.record(0, FlightEventType::kSubmit, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(rec.sampled(0), 100u);
  EXPECT_EQ(rec.seen(0), 100u);
  EXPECT_EQ(rec.ring(0).recorded(), 100u);
}

TEST(FlightRecorder, SamplesEveryPeriodOnAverage) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 32;
  FlightRecorder rec(1, cfg);
  std::uint64_t hits = 0;
  for (int i = 0; i < 32 * 100; ++i) hits += rec.tick(0) ? 1 : 0;
  EXPECT_EQ(hits, 100u);  // countdown sampling is exact, not probabilistic
  EXPECT_EQ(rec.sampled(0), 100u);
  EXPECT_EQ(rec.seen(0), 32u * 100u);
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  FlightRecorder::Config cfg;
  cfg.enabled = false;
  cfg.sample_period = 1;
  FlightRecorder rec(2, cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rec.tick(0));
    rec.record_always(0, FlightEventType::kDrop, 1, 2);
  }
  EXPECT_EQ(rec.ring(0).recorded(), 0u);
  EXPECT_EQ(rec.sampled(0), 0u);
  EXPECT_EQ(rec.seen(0), 0u);
}

TEST(FlightRecorder, RecordAlwaysBypassesSampling) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 1000000;  // the gate would never fire
  FlightRecorder rec(1, cfg);
  rec.record_always(0, FlightEventType::kDrop, 99,
                    static_cast<std::uint64_t>(FlightDropReason::kNoRoute));
  const std::vector<FlightEvent> events = rec.ring(0).snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, FlightEventType::kDrop);
  EXPECT_EQ(events[0].trace_id, 99u);
}

TEST(FlightRecorder, PublishStatsEmitsCountOnlySlice) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 4;
  cfg.ring_capacity = 8;
  FlightRecorder rec(2, cfg);
  for (int i = 0; i < 40; ++i) {
    if (rec.tick(0)) rec.record(0, FlightEventType::kForward, 1, 2);
    if (rec.tick(1)) rec.record(1, FlightEventType::kForward, 1, 2);
  }
  MetricsRegistry m;
  rec.publish_stats(m, "dp.");
  EXPECT_EQ(m.counter("dp.rec.events.seen").value(), 80u);
  EXPECT_EQ(m.counter("dp.rec.events.sampled").value(), 20u);
  EXPECT_EQ(m.counter("dp.rec.events.recorded").value(), 20u);
  EXPECT_EQ(m.counter("dp.rec.ring.overwritten").value(), 4u);
}

// ---- StatsTimeline / TelemetryPoller ----------------------------------------

TEST(StatsTimeline, AppendsAndSerializesDeterministically) {
  StatsTimeline tl;
  tl.append("b.series", 10, 1);
  tl.append("a.series", 10, 2);
  tl.append("b.series", 20, 3);
  EXPECT_EQ(tl.series_count(), 2u);
  EXPECT_EQ(tl.sample_count(), 3u);
  const std::vector<StatsTimeline::Point> b = tl.series("b.series");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].t_ns, 10);
  EXPECT_EQ(b[1].value, 3u);

  const std::string json = tl.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Name order: "a.series" serializes before "b.series".
  EXPECT_LT(json.find("a.series"), json.find("b.series"));

  StatsTimeline tl2;
  tl2.append("b.series", 10, 1);
  tl2.append("a.series", 10, 2);
  tl2.append("b.series", 20, 3);
  EXPECT_EQ(json, tl2.to_json());
}

TEST(TelemetryPoller, PollOnceSamplesSynchronously) {
  StatsTimeline tl;
  TelemetryPoller poller(
      [&tl](std::int64_t t_ns) { tl.append("gauge", t_ns, 42); },
      std::chrono::milliseconds(1000));
  poller.poll_once();
  poller.poll_once();
  EXPECT_EQ(poller.polls(), 2u);
  EXPECT_EQ(tl.sample_count(), 2u);
}

TEST(TelemetryPoller, BackgroundThreadSamplesUntilStopped) {
  StatsTimeline tl;
  std::atomic<std::uint64_t> gauge{0};
  TelemetryPoller poller(
      [&](std::int64_t t_ns) {
        tl.append("gauge", t_ns, gauge.load(std::memory_order_relaxed));
      },
      std::chrono::milliseconds(1));
  poller.start();
  EXPECT_TRUE(poller.running());
  for (int i = 0; i < 1000; ++i) gauge.fetch_add(1, std::memory_order_relaxed);
  poller.stop();
  EXPECT_FALSE(poller.running());
  EXPECT_GE(tl.sample_count(), 1u);
  const std::vector<StatsTimeline::Point> pts = tl.series("gauge");
  ASSERT_FALSE(pts.empty());
  // The gauge only grows, so the sampled values must be non-decreasing in
  // time and never exceed the final value.
  EXPECT_LE(pts.back().value, 1000u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].t_ns, pts[i - 1].t_ns);
    EXPECT_GE(pts[i].value, pts[i - 1].value);
  }
}

// ---- Perfetto export --------------------------------------------------------

TEST(PerfettoExporter, EmitsValidJsonWithMonotoneTimestampsPerTrack) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 1;
  FlightRecorder rec(2, cfg);
  // Interleave event kinds, including a drop (reason arg) and a forward
  // span (duration arg) recorded out of order via record_at.
  rec.record_at(0, 100, FlightEventType::kSubmit, 0x11, 0);
  rec.record_at(0, 300, FlightEventType::kDequeue, 0x11, 5);
  rec.record_at(0, 200, FlightEventType::kFibLookup, 0x11, 1);
  rec.record_at(0, 150, FlightEventType::kForward, 0x11, 400);
  rec.record_at(1, 50, FlightEventType::kDrop, 0x22,
                static_cast<std::uint64_t>(FlightDropReason::kTtl));
  rec.record_at(1, 75, FlightEventType::kHandoffIn, 0x22, 0);

  const std::string json =
      PerfettoExporter::from_recorder(rec, {"shard0", "shard1"});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"shard0\""), std::string::npos);
  EXPECT_NE(json.find("\"shard1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"ttl\""), std::string::npos);
  EXPECT_NE(json.find("0x0000000000000011"), std::string::npos);

  // Per-track timestamps must be monotone even though the events were
  // recorded out of order (the exporter sorts each track).
  std::map<std::size_t, double> last_ts;
  std::size_t events_seen = 0;
  for (std::size_t pos = json.find("{\"ph\": \""); pos != std::string::npos;
       pos = json.find("{\"ph\": \"", pos + 1)) {
    const char ph = json[pos + 8];
    if (ph == 'M') continue;  // metadata has no timestamp
    ++events_seen;
    const std::size_t tid_pos = json.find("\"tid\": ", pos);
    const std::size_t ts_pos = json.find("\"ts\": ", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    ASSERT_NE(ts_pos, std::string::npos);
    const std::size_t tid = std::stoul(json.substr(tid_pos + 7));
    const double ts = std::stod(json.substr(ts_pos + 6));
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track " << tid << " went backwards";
    }
    last_ts[tid] = ts;
  }
  EXPECT_EQ(events_seen, 6u);
  EXPECT_EQ(last_ts.size(), 2u);
}

TEST(PerfettoExporter, MissingTrackNamesFallBack) {
  FlightRecorder::Config cfg;
  cfg.sample_period = 1;
  FlightRecorder rec(2, cfg);
  rec.record_at(1, 10, FlightEventType::kSubmit, 1, 0);
  const std::string json = PerfettoExporter::from_recorder(rec, {"only0"});
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"only0\""), std::string::npos);
  EXPECT_NE(json.find("\"track1\""), std::string::npos);
}

}  // namespace
}  // namespace gdp::telemetry
