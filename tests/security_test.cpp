// Security-focused suites: payload confidentiality (sealed records),
// quasi-single-writer branching end to end, and additional adversarial
// scenarios against the full stack.
#include <gtest/gtest.h>

#include "capsule/entangle.hpp"
#include "capsule/sealed.hpp"
#include "capsule/strategy.hpp"
#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

// ---- Sealed payloads (unit) ----------------------------------------------------

TEST(Sealed, RoundTrip) {
  capsule::ReadKey key = capsule::make_read_key(to_bytes("entropy"));
  Name cap = *Name::from_bytes(Bytes(32, 0x11));
  Bytes sealed = capsule::seal_payload(key, cap, 7, to_bytes("secret reading"));
  EXPECT_EQ(to_string(sealed).find("secret"), std::string::npos);
  auto opened = capsule::open_payload(key, cap, 7, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "secret reading");
}

TEST(Sealed, WrongKeyCapsuleOrSeqnoFails) {
  capsule::ReadKey key = capsule::make_read_key(to_bytes("entropy"));
  capsule::ReadKey other = capsule::make_read_key(to_bytes("different"));
  Name cap_a = *Name::from_bytes(Bytes(32, 0x11));
  Name cap_b = *Name::from_bytes(Bytes(32, 0x22));
  Bytes sealed = capsule::seal_payload(key, cap_a, 7, to_bytes("x"));
  EXPECT_FALSE(capsule::open_payload(other, cap_a, 7, sealed).has_value());
  EXPECT_FALSE(capsule::open_payload(key, cap_b, 7, sealed).has_value());
  EXPECT_FALSE(capsule::open_payload(key, cap_a, 8, sealed).has_value());
  EXPECT_TRUE(capsule::open_payload(key, cap_a, 7, sealed).has_value());
}

TEST(Sealed, IdenticalPlaintextsUnlinkableAcrossSeqnos) {
  capsule::ReadKey key = capsule::make_read_key(to_bytes("entropy"));
  Name cap = *Name::from_bytes(Bytes(32, 0x33));
  Bytes a = capsule::seal_payload(key, cap, 1, to_bytes("same"));
  Bytes b = capsule::seal_payload(key, cap, 2, to_bytes("same"));
  // Strip nonces (first 12 bytes differ trivially) and compare bodies.
  EXPECT_NE(Bytes(a.begin() + 12, a.end()), Bytes(b.begin() + 12, b.end()));
}

TEST(Sealed, TamperDetected) {
  capsule::ReadKey key = capsule::make_read_key(to_bytes("k"));
  Name cap = *Name::from_bytes(Bytes(32, 0x44));
  Bytes sealed = capsule::seal_payload(key, cap, 3, to_bytes("payload"));
  for (std::size_t i = 0; i < sealed.size(); i += 9) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(capsule::open_payload(key, cap, 3, bad).has_value()) << i;
  }
}

// ---- Confidentiality end to end ---------------------------------------------------

TEST(Confidentiality, InfrastructureSeesOnlyCiphertext) {
  Scenario s(70, "sealed-e2e");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* writer_c = s.add_client("writer", r);
  auto* reader_c = s.add_client("reader", r);
  auto* eve = s.add_client("eve", r);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "confidential");
  ASSERT_TRUE(place_capsule(s, cap, *writer_c, {srv}).ok());
  capsule::ReadKey read_key = capsule::make_read_key(to_bytes("owner-entropy"));

  capsule::Writer w = cap.make_writer();
  const std::string secret = "the merger closes friday";
  {
    Bytes sealed = capsule::seal_payload(read_key, cap.metadata.name(),
                                         w.next_seqno(), to_bytes(secret));
    ASSERT_TRUE(await(s.sim(), writer_c->append(w, sealed)).ok());
  }

  // The server's persistent state contains no trace of the plaintext.
  const auto* store = srv->storage().find(cap.metadata.name());
  ASSERT_NE(store, nullptr);
  Bytes on_server = store->state().get_by_seqno(1)->payload;
  EXPECT_EQ(to_string(on_server).find("merger"), std::string::npos);

  // An authorized reader (shares the read key) recovers the plaintext.
  auto read = await(s.sim(), reader_c->read_latest(cap.metadata));
  ASSERT_TRUE(read.ok());
  auto opened = capsule::open_payload(read_key, cap.metadata.name(), 1,
                                      read->records[0].payload);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), secret);

  // Eve can fetch the (integrity-verified) ciphertext but not open it.
  auto eve_read = await(s.sim(), eve->read_latest(cap.metadata));
  ASSERT_TRUE(eve_read.ok());
  capsule::ReadKey guess = capsule::make_read_key(to_bytes("wrong"));
  EXPECT_FALSE(capsule::open_payload(guess, cap.metadata.name(), 1,
                                     eve_read->records[0].payload)
                   .has_value());
}

// ---- Quasi-single-writer end to end -----------------------------------------------

TEST(Qsw, BranchFormsReplicatesAndMerges) {
  Scenario s(71, "qsw");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv1 = s.add_server("srv1", r);
  auto* srv2 = s.add_server("srv2", r);
  auto* device_a = s.add_client("laptop", r);
  auto* device_b = s.add_client("phone", r);
  s.attach_all();

  // A personal file-system mounted on two devices (the paper's QSW
  // example): both restore the writer from the same saved state.
  CapsuleSetup cap = make_capsule(s.key_rng(), "personal-fs",
                                  capsule::WriterMode::kQuasiSingleWriter);
  ASSERT_TRUE(place_capsule(s, cap, *device_a, {srv1, srv2}).ok());
  capsule::Writer wa = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), device_a->append(wa, to_bytes("base"))).ok());
  Bytes saved = wa.save_state();

  auto wb = capsule::Writer::restore(cap.metadata, *cap.writer_key,
                                     capsule::strategy_from_id(cap.strategy_id),
                                     saved);
  ASSERT_TRUE(wb.ok());

  // Concurrent edits from both devices: a branch.
  ASSERT_TRUE(await(s.sim(), device_a->append(wa, to_bytes("edit-laptop"))).ok());
  ASSERT_TRUE(await(s.sim(), device_b->append(*wb, to_bytes("edit-phone"))).ok());
  s.settle();

  const auto* st1 = srv1->storage().find(cap.metadata.name());
  const auto* st2 = srv2->storage().find(cap.metadata.name());
  // Both replicas hold both branches (strong eventual consistency).
  EXPECT_EQ(st1->state().size(), 3u);
  EXPECT_EQ(st2->state().size(), 3u);
  EXPECT_TRUE(st1->state().has_branch());
  EXPECT_EQ(st1->state().heads().size(), 2u);
  EXPECT_EQ(st1->state().tip_hash(), st2->state().tip_hash());

  // Device A merges the phone's head out-of-band (reads heads via the
  // replica state here; a real device would read via the client API).
  std::vector<capsule::RecordHash> heads = st1->state().heads();
  capsule::RecordHash other_head =
      heads[0] == wa.tip_hash() ? heads[1] : heads[0];
  std::uint64_t other_seqno =
      st1->state().get_by_hash(other_head)->header.seqno;
  capsule::Record merge = wa.append_merge(
      to_bytes("merged"), 0, {capsule::HashPtr{other_seqno, other_head}});
  ASSERT_TRUE(await(s.sim(), device_a->append_record(cap.metadata, merge)).ok());
  s.settle();

  EXPECT_EQ(st1->state().heads().size(), 1u);
  EXPECT_EQ(st2->state().heads().size(), 1u);
  EXPECT_EQ(st1->state().tip_hash(), merge.hash());

  // And readers see a linear history again.
  auto read = await(s.sim(), device_b->read_latest(cap.metadata));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(to_string(read->records[0].payload), "merged");
}

// ---- More adversarial paths ---------------------------------------------------------

TEST(Adversary, MisdeliveryDetectedByCapsuleBinding) {
  // An in-path attacker redirects an append for capsule A to a server
  // hosting only capsule B; the record's capsule binding stops it.
  Scenario s(72, "misdeliver");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv_a = s.add_server("srv-a", r);
  auto* srv_b = s.add_server("srv-b", r);
  auto* writer_c = s.add_client("writer", r);
  s.attach_all();
  CapsuleSetup cap_a = make_capsule(s.key_rng(), "A");
  CapsuleSetup cap_b = make_capsule(s.key_rng(), "B");
  ASSERT_TRUE(place_capsule(s, cap_a, *writer_c, {srv_a}).ok());
  ASSERT_TRUE(place_capsule(s, cap_b, *writer_c, {srv_b}).ok());

  // The adversary rewrites the target of an append for capsule A so it is
  // delivered to server B as if it belonged to capsule B.
  capsule::Writer w = cap_a.make_writer();
  capsule::Record rec = w.append(to_bytes("for capsule A"), 0);
  wire::AppendMsg msg;
  msg.capsule = cap_b.metadata.name();  // adversary rewrites the target
  msg.record = rec;
  msg.required_acks = 1;
  msg.nonce = 999;
  wire::Pdu pdu;
  pdu.dst = srv_b->name();
  pdu.src = writer_c->name();
  pdu.type = wire::MsgType::kAppend;
  pdu.payload = msg.serialize();
  s.net().send(writer_c->name(), r->name(), pdu);
  s.settle();

  // Server B rejected the foreign record: its capsule stays empty and the
  // record never counts as accepted.
  EXPECT_EQ(srv_b->storage().find(cap_b.metadata.name())->state().size(), 0u);
  EXPECT_GE(srv_b->appends_rejected(), 1u);
}

TEST(Adversary, DelayedPdusStillVerify) {
  // Arbitrary delay is permissible under the threat model; nothing breaks,
  // the data still verifies when it finally arrives.
  Scenario s(73, "delay");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* writer_c = s.add_client("writer", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "delayed");
  ASSERT_TRUE(place_capsule(s, cap, *writer_c, {srv}).ok());

  auto* net = &s.net();
  auto* sim = &s.sim();
  Name from = r->name();
  Name to = srv->name();
  auto held_once = std::make_shared<bool>(false);
  s.net().set_interceptor(
      from, to,
      [net, sim, from, to, held_once](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type != wire::MsgType::kAppend || *held_once) return pdu;
        *held_once = true;
        wire::Pdu held = pdu;
        sim->schedule(from_seconds(5), [net, from, to, held]() mutable {
          net->send(from, to, std::move(held));
        });
        return std::nullopt;  // hold the original
      });

  capsule::Writer w = cap.make_writer();
  auto op = writer_c->append(w, to_bytes("late but intact"));
  auto outcome = await(s.sim(), op);
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_GE(to_seconds(s.sim().now()), 5.0);
}

TEST(Adversary, SubscribeEventInjectionRejected) {
  // A compromised path fabricates kPublish events; the client only accepts
  // writer-signed records of the subscribed capsule.
  Scenario s(74, "inject");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* writer_c = s.add_client("writer", r);
  auto* sub = s.add_client("sub", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "feed");
  ASSERT_TRUE(place_capsule(s, cap, *writer_c, {srv}).ok());

  int events = 0;
  auto cert = cap.sub_cert_for(sub->name(), s.sim().now(),
                               s.sim().now() + from_seconds(3600));
  ASSERT_TRUE(await(s.sim(), sub->subscribe(cap.metadata, cert,
                                            [&](const capsule::Record&,
                                                const capsule::Heartbeat&) {
                                              ++events;
                                            }))
                  .ok());

  // Forge an event signed by the wrong key.
  Rng mrng(5);
  auto mallory_owner = crypto::PrivateKey::generate(mrng);
  auto mallory_writer = crypto::PrivateKey::generate(mrng);
  auto forged_meta = capsule::Metadata::create(
      mallory_owner, mallory_writer.public_key(),
      capsule::WriterMode::kStrictSingleWriter, "forged", 0);
  ASSERT_TRUE(forged_meta.ok());
  capsule::Writer forged_writer(*forged_meta, mallory_writer,
                                capsule::make_chain_strategy());
  capsule::Record forged = forged_writer.append(to_bytes("fake news"), 0);
  forged.header.capsule_name = cap.metadata.name();  // re-target (breaks sig)

  wire::PublishMsg msg;
  msg.capsule = cap.metadata.name();
  msg.record = forged;
  msg.heartbeat = capsule::Heartbeat::from_record(forged).serialize();
  wire::Pdu pdu;
  pdu.dst = sub->name();
  pdu.src = srv->name();
  pdu.type = wire::MsgType::kPublish;
  pdu.payload = msg.serialize();
  s.net().send(r->name(), sub->name(), pdu);
  s.settle();
  EXPECT_EQ(events, 0);

  // Genuine events still flow.
  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), writer_c->append(w, to_bytes("real"))).ok());
  s.settle();
  EXPECT_EQ(events, 1);
}

// ---- Timeline entanglement -----------------------------------------------------------

struct EntangleFixture {
  Rng rng{9090};
  crypto::PrivateKey owner_a = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey writer_a = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey owner_b = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey writer_b = crypto::PrivateKey::generate(rng);
  capsule::Metadata meta_a = *capsule::Metadata::create(
      owner_a, writer_a.public_key(), capsule::WriterMode::kStrictSingleWriter,
      "timeline-a", 0);
  capsule::Metadata meta_b = *capsule::Metadata::create(
      owner_b, writer_b.public_key(), capsule::WriterMode::kStrictSingleWriter,
      "timeline-b", 0);
  capsule::Writer wa{meta_a, writer_a, capsule::make_skiplist_strategy()};
  capsule::Writer wb{meta_b, writer_b, capsule::make_skiplist_strategy()};
  capsule::CapsuleState state_a{meta_a};
  capsule::CapsuleState state_b{meta_b};
};

TEST(Entanglement, CrossCapsuleHappenedAfterVerifies) {
  EntangleFixture f;
  // Capsule A advances to seqno 5.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.state_a.ingest(f.wa.append(to_bytes("a"), i)).ok());
  }
  capsule::Heartbeat hb_a = f.wa.heartbeat();

  // Writer B embeds A's heartbeat — B's next record happened after A@5.
  capsule::Entanglement ent = capsule::Entanglement::from_heartbeat(hb_a);
  Bytes payload = ent.serialize();
  append(payload, to_bytes(" B's own data"));
  capsule::Record embedding = f.wb.append(payload, 100);
  ASSERT_TRUE(f.state_b.ingest(embedding).ok());
  // B keeps writing.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(f.state_b.ingest(f.wb.append(to_bytes("b"), i)).ok());
  }
  capsule::Heartbeat hb_b = f.wb.heartbeat();

  // A verifier holding both metadatas checks the relation.
  auto proof_b = capsule::build_membership_proof(f.state_b, hb_b, embedding.hash());
  auto proof_a = capsule::build_membership_proof(f.state_a, hb_a, hb_a.record_hash);
  ASSERT_TRUE(proof_b.ok());
  ASSERT_TRUE(proof_a.ok());
  EXPECT_TRUE(capsule::verify_entanglement(ent, f.meta_b, hb_b, embedding,
                                           *proof_b, f.meta_a, hb_a, *proof_a)
                  .ok());

  // Round trip of the claim itself.
  auto decoded = capsule::Entanglement::deserialize(embedding.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ent);
}

TEST(Entanglement, ForgedClaimsRejected) {
  EntangleFixture f;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.state_a.ingest(f.wa.append(to_bytes("a"), i)).ok());
  }
  capsule::Heartbeat hb_a = f.wa.heartbeat();
  capsule::Entanglement ent = capsule::Entanglement::from_heartbeat(hb_a);
  capsule::Record embedding = f.wb.append(ent.serialize(), 0);
  ASSERT_TRUE(f.state_b.ingest(embedding).ok());
  capsule::Heartbeat hb_b = f.wb.heartbeat();
  auto proof_b = capsule::build_membership_proof(f.state_b, hb_b, embedding.hash());
  auto proof_a = capsule::build_membership_proof(f.state_a, hb_a, hb_a.record_hash);
  ASSERT_TRUE(proof_b.ok());
  ASSERT_TRUE(proof_a.ok());

  // 1. Claiming a different seqno for the entangled record.
  capsule::Entanglement wrong_seqno = ent;
  wrong_seqno.seqno += 1;
  EXPECT_FALSE(capsule::verify_entanglement(wrong_seqno, f.meta_b, hb_b, embedding,
                                            *proof_b, f.meta_a, hb_a, *proof_a)
                   .ok());
  // 2. A record that does not actually carry the claim.
  capsule::Record other = f.wb.append(to_bytes("unrelated"), 1);
  ASSERT_TRUE(f.state_b.ingest(other).ok());
  capsule::Heartbeat hb_b2 = f.wb.heartbeat();
  auto proof_other = capsule::build_membership_proof(f.state_b, hb_b2, other.hash());
  ASSERT_TRUE(proof_other.ok());
  EXPECT_FALSE(capsule::verify_entanglement(ent, f.meta_b, hb_b2, other,
                                            *proof_other, f.meta_a, hb_a, *proof_a)
                   .ok());
  // 3. Entanglement pointing at a capsule the proof is not for.
  capsule::Entanglement wrong_capsule = ent;
  wrong_capsule.other_capsule = f.meta_b.name();
  EXPECT_FALSE(capsule::verify_entanglement(wrong_capsule, f.meta_b, hb_b,
                                            embedding, *proof_b, f.meta_a, hb_a,
                                            *proof_a)
                   .ok());
}

TEST(Entanglement, EndToEndOverTheNetwork) {
  // Factory scenario: the audit capsule entangles the sensor capsule's
  // state; a third-party verifier fetches everything over the network —
  // ranged reads supply the membership proofs — and checks the
  // happened-after relation without trusting any server.
  Scenario s(75, "entangle-e2e");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* sensor = s.add_client("sensor", r);
  auto* auditor = s.add_client("auditor", r);
  auto* verifier = s.add_client("verifier", r);
  s.attach_all();

  CapsuleSetup sensor_cap = make_capsule(s.key_rng(), "sensor-feed");
  CapsuleSetup audit_cap = make_capsule(s.key_rng(), "audit-log");
  ASSERT_TRUE(place_capsule(s, sensor_cap, *sensor, {srv}).ok());
  ASSERT_TRUE(place_capsule(s, audit_cap, *auditor, {srv}).ok());

  capsule::Writer sensor_w = sensor_cap.make_writer();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(await(s.sim(), sensor->append(sensor_w, to_bytes("sample"))).ok());
  }

  // The auditor reads the sensor's latest state and entangles it.
  auto latest = await(s.sim(), auditor->read_latest(sensor_cap.metadata));
  ASSERT_TRUE(latest.ok());
  capsule::Entanglement ent =
      capsule::Entanglement::from_heartbeat(latest->heartbeat);
  capsule::Writer audit_w = audit_cap.make_writer();
  Bytes payload = ent.serialize();
  append(payload, to_bytes(" audit checkpoint"));
  ASSERT_TRUE(await(s.sim(), auditor->append(audit_w, payload)).ok());

  // Third party: fetch both ends with point reads; the link paths are the
  // membership proofs.
  auto audit_read = await(s.sim(), verifier->read(audit_cap.metadata, 1, 1));
  ASSERT_TRUE(audit_read.ok());
  auto sensor_read = await(
      s.sim(), verifier->read(sensor_cap.metadata, ent.seqno, ent.seqno));
  ASSERT_TRUE(sensor_read.ok());

  Status verdict = capsule::verify_entanglement(
      ent, audit_cap.metadata, audit_read->heartbeat, audit_read->records[0],
      audit_read->newest_membership(), sensor_cap.metadata,
      sensor_read->heartbeat, sensor_read->newest_membership());
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

// ---- Organization-chain hosting end to end --------------------------------------------

TEST(OrgDelegation, ServerHostsThroughOrgChainEndToEnd) {
  // The owner delegates to a *storage organization* rather than a
  // concrete server ("in practice, a DataCapsule-owner issues such
  // delegations to storage organizations"); the org admits the server;
  // the full chain flows through placement, advertisement, the
  // GLookupService, and response verification.
  Scenario s(80, "orgchain");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* cli = s.add_client("cli", r);
  s.attach_all();

  Rng rng(80);
  auto org_key = crypto::PrivateKey::generate(rng);
  trust::Principal org =
      trust::Principal::create(org_key, trust::Role::kOrganization, "acme-storage");

  CapsuleSetup cap = make_capsule(s.key_rng(), "org-hosted");
  const TimePoint now = s.sim().now();
  const TimePoint expiry = now + from_seconds(1e6);
  trust::ServingDelegation delegation;
  delegation.ad_cert =
      trust::make_ad_cert(*cap.owner_key, cap.owner_key->public_key().fingerprint(),
                          cap.metadata.name(), org.name(), now, expiry);
  delegation.orgs = {org};
  delegation.member_certs = {trust::make_org_member_cert(
      org_key, org.name(), srv->principal().name(), now, expiry)};

  auto placed = await(s.sim(), cli->create_capsule(srv->name(), cap.metadata,
                                                   delegation, {}));
  ASSERT_TRUE(placed.ok()) << placed.error().to_string();
  ASSERT_TRUE(srv->hosts(cap.metadata.name()));
  // The glookup re-verified the org chain before registering.
  EXPECT_EQ(g->lookup_local(cap.metadata.name()).size(), 1u);

  capsule::Writer w = cap.make_writer();
  auto outcome = await(s.sim(), cli->append(w, to_bytes("through the org")));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  auto read = await(s.sim(), cli->read_latest(cap.metadata));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(to_string(read->records[0].payload), "through the org");
}

TEST(OrgDelegation, RevokedMembershipWindowCloses) {
  // Org membership certs expire; past the window the chain no longer
  // verifies and a new placement is refused.
  Scenario s(81, "orgexpire");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* cli = s.add_client("cli", r);
  s.attach_all();
  Rng rng(81);
  auto org_key = crypto::PrivateKey::generate(rng);
  trust::Principal org =
      trust::Principal::create(org_key, trust::Role::kOrganization, "acme");
  CapsuleSetup cap = make_capsule(s.key_rng(), "short-membership");
  const TimePoint now = s.sim().now();
  trust::ServingDelegation delegation;
  delegation.ad_cert =
      trust::make_ad_cert(*cap.owner_key, cap.owner_key->public_key().fingerprint(),
                          cap.metadata.name(), org.name(), now, now + from_seconds(1e6));
  // Membership lasts only 10 seconds.
  delegation.orgs = {org};
  delegation.member_certs = {trust::make_org_member_cert(
      org_key, org.name(), srv->principal().name(), now, now + from_seconds(10))};

  s.sim().run_until(s.sim().now() + from_seconds(60));  // membership lapsed
  auto placed = await(s.sim(), cli->create_capsule(srv->name(), cap.metadata,
                                                   delegation, {}));
  EXPECT_FALSE(placed.ok());
  EXPECT_FALSE(srv->hosts(cap.metadata.name()));
}

}  // namespace
}  // namespace gdp
