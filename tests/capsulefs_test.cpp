// CapsuleFS + SCL coverage: the shared Mount entry point across all five
// CAAPIs, multi-writer directory semantics (credential grants, forged /
// expired credential rejection), SCL compare-and-append and tip leases,
// deterministic conflict-resolution replay (byte-identical tree digests
// across replicas AND reruns), the two-client stale-read regression, the
// >=100-writer link-flap convergence workload, and truncation fuzz for
// every wire type the SCL added.
#include <gtest/gtest.h>

#include "caapi/commit.hpp"
#include "caapi/fs.hpp"
#include "caapi/fsload.hpp"
#include "caapi/kv.hpp"
#include "caapi/stream.hpp"
#include "caapi/timeseries.hpp"
#include "capsule/credential.hpp"
#include "capsule/strategy.hpp"
#include "wire/messages.hpp"

namespace gdp::caapi {
namespace {

using harness::Scenario;

struct World {
  Scenario s;
  router::GLookupService* root;
  router::Router* r1;
  router::Router* r2;
  server::CapsuleServer* srv1;
  server::CapsuleServer* srv2;
  client::GdpClient* alice;
  client::GdpClient* bob;
  client::GdpClient* carol;

  explicit World(std::uint64_t seed) : s(seed, "capsulefs") {
    root = s.add_domain("global", nullptr);
    r1 = s.add_router("r1", root);
    r2 = s.add_router("r2", root);
    s.link_routers(r1, r2, net::LinkParams::wan(5));
    srv1 = s.add_server("srv1", r1);
    srv2 = s.add_server("srv2", r2);
    alice = s.add_client("alice", r1);
    bob = s.add_client("bob", r1);
    carol = s.add_client("carol", r2);
    s.attach_all();
  }

  std::vector<server::CapsuleServer*> servers() { return {srv1, srv2}; }
};

Bytes dir_envelope(const GdpFilesystem& fs, const DirRecord& rec) {
  return capsule::wrap_mw_payload(fs.credential(), rec.serialize());
}

DirRecord mkdir_rec(const std::string& path) {
  DirRecord rec;
  rec.type = DirRecord::Type::kMkdir;
  rec.path = path;
  return rec;
}

// ---- Mount across the five CAAPIs ------------------------------------------------

TEST(MountApi, FilesystemCreateWriteReadTree) {
  World w(300);
  auto fs = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "home"));
  ASSERT_TRUE(fs.ok()) << fs.error().to_string();
  EXPECT_TRUE(fs->can_write());

  Rng rng(1);
  Bytes doc = rng.next_bytes(3000);
  ASSERT_TRUE(fs->write_file("docs/readme", doc).ok());
  ASSERT_TRUE(fs->mkdir("tmp").ok());
  ASSERT_TRUE(fs->set_attr("tmp", "scratch").ok());
  auto back = fs->read_file("docs/readme");
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, doc);

  const Name before = fs->tree_digest();
  ASSERT_TRUE(fs->rename("docs/readme", "docs/README").ok());
  EXPECT_NE(fs->tree_digest(), before);
  EXPECT_TRUE(fs->exists("docs/README"));
  EXPECT_FALSE(fs->exists("docs/readme"));
  ASSERT_TRUE(fs->remove("tmp").ok());
  EXPECT_EQ(fs->list(), (std::vector<std::string>{"docs/README"}));
}

TEST(MountApi, DeprecatedCreateShimsStillWork) {
  World w(301);
  auto fs = GdpFilesystem::create(w.s, *w.alice, {w.srv1}, "legacy-fs");
  ASSERT_TRUE(fs.ok()) << fs.error().to_string();
  ASSERT_TRUE(fs->write_file("f", to_bytes("legacy")).ok());
  EXPECT_EQ(to_string(*fs->read_file("f")), "legacy");

  auto kv = GdpKvStore::create(w.s, *w.alice, {w.srv1}, "legacy-kv");
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->put("k", "v").ok());
  EXPECT_EQ(kv->get("k"), "v");
}

TEST(MountApi, KvCreateAndReadOnlyOpen) {
  World w(302);
  MountOptions options;
  options.checkpoint_interval = 4;
  auto kv = GdpKvStore::mount(
      Mount::create(w.s, *w.alice, w.servers(), "config", options));
  ASSERT_TRUE(kv.ok()) << kv.error().to_string();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(kv->put("key" + std::to_string(i), std::to_string(i)).ok());
  }

  auto view = GdpKvStore::mount(
      Mount::open(w.s, *w.bob, w.servers(), kv->metadata(), options));
  ASSERT_TRUE(view.ok()) << view.error().to_string();
  EXPECT_EQ(view->get("key3"), "3");
  EXPECT_EQ(view->size(), 6u);
  // The capsule is strict-single-writer: the open-existing mount is a view.
  EXPECT_EQ(view->put("key9", "9").code(), Errc::kPermissionDenied);
}

TEST(MountApi, StreamPublisherAndPlayer) {
  World w(303);
  auto pub = StreamPublisher::mount(
      Mount::create(w.s, *w.alice, w.servers(), "video"));
  ASSERT_TRUE(pub.ok()) << pub.error().to_string();

  auto player = StreamPlayer::mount(
      Mount::open(w.s, *w.bob, w.servers(), pub->metadata()));
  ASSERT_TRUE(player.ok());
  const TimePoint now = w.s.sim().now();
  trust::Cert cert =
      pub->setup().sub_cert_for(w.bob->name(), now, now + from_seconds(3600));
  auto join = player->join(cert);
  ASSERT_TRUE(join.ok()) << join.error().to_string();
  for (int i = 0; i < 3; ++i) pub->publish_frame(to_bytes("frame"));
  w.s.settle();
  EXPECT_EQ(player->frames_received(), 3u);
}

TEST(MountApi, TimeSeriesWriterAndReader) {
  World w(304);
  auto writer = TimeSeriesWriter::mount(
      Mount::create(w.s, *w.alice, w.servers(), "temps"));
  ASSERT_TRUE(writer.ok()) << writer.error().to_string();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(writer->record(20.0 + i).ok());
    w.s.settle_for(from_millis(50));
  }
  auto reader = TimeSeriesReader::mount(
      Mount::open(w.s, *w.bob, w.servers(), writer->metadata()));
  ASSERT_TRUE(reader.ok());
  auto latest = reader->latest(3);
  ASSERT_TRUE(latest.ok()) << latest.error().to_string();
  ASSERT_EQ(latest->size(), 3u);
  EXPECT_DOUBLE_EQ(latest->back().value, 24.0);
}

TEST(MountApi, CommitServiceAndProposer) {
  World w(305);
  auto service = CommitService::mount(
      Mount::create(w.s, *w.carol, w.servers(), "ledger"));
  ASSERT_TRUE(service.ok()) << service.error().to_string();
  Proposer proposer(w.s, *w.bob);
  auto op = proposer.propose((*service)->service_name(), to_bytes("tx-1"));
  auto seqno = client::await(w.s.sim(), op);
  ASSERT_TRUE(seqno.ok()) << seqno.error().to_string();
  EXPECT_EQ(*seqno, 1u);
  EXPECT_EQ((*service)->proposals_committed(), 1u);
}

TEST(MountApi, OpenModeMismatchesRejected) {
  World w(306);
  auto pub_open_fails = StreamPublisher::mount(Mount::open(
      w.s, *w.alice, w.servers(),
      harness::make_capsule(w.s.key_rng(), "x").metadata));
  EXPECT_EQ(pub_open_fails.code(), Errc::kInvalidArgument);
  auto player_create_fails = StreamPlayer::mount(
      Mount::create(w.s, *w.alice, w.servers(), "y"));
  EXPECT_EQ(player_create_fails.code(), Errc::kInvalidArgument);
}

// ---- Multi-writer directory semantics --------------------------------------------

TEST(CapsuleFs, TwoClientStaleReadRegression) {
  World w(310);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "shared"));
  ASSERT_TRUE(owner.ok()) << owner.error().to_string();

  crypto::PrivateKey bob_key = crypto::PrivateKey::generate(w.s.key_rng());
  auto credential = owner->grant_writer(bob_key.public_key(), "bob");
  ASSERT_TRUE(credential.ok());
  auto bob_fs = GdpFilesystem::mount(
      Mount::open(w.s, *w.bob, w.servers(), owner->directory_metadata()),
      *credential, std::move(bob_key));
  ASSERT_TRUE(bob_fs.ok()) << bob_fs.error().to_string();

  // Bob commits a file; Alice must observe it WITHOUT calling refresh() —
  // the regression this guards: exists()/list() used to answer from the
  // local cache until an explicit refresh.
  ASSERT_TRUE(bob_fs->write_file("from-bob.txt", to_bytes("hello")).ok());
  EXPECT_TRUE(owner->exists("from-bob.txt"));
  EXPECT_EQ(owner->list(),
            (std::vector<std::string>{"from-bob.txt"}));
  EXPECT_EQ(to_string(*owner->read_file("from-bob.txt")), "hello");
  EXPECT_EQ(owner->tree_digest(), bob_fs->tree_digest());
}

TEST(CapsuleFs, CacheOnlyModeKeepsOldBehavior) {
  World w(311);
  MountOptions stale;
  stale.tip_aware_reads = false;
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "stale", stale));
  ASSERT_TRUE(owner.ok());

  crypto::PrivateKey bob_key = crypto::PrivateKey::generate(w.s.key_rng());
  auto credential = owner->grant_writer(bob_key.public_key(), "bob");
  ASSERT_TRUE(credential.ok());
  auto bob_fs = GdpFilesystem::mount(
      Mount::open(w.s, *w.bob, w.servers(), owner->directory_metadata()),
      *credential, std::move(bob_key));
  ASSERT_TRUE(bob_fs.ok());

  ASSERT_TRUE(bob_fs->write_file("f", to_bytes("x")).ok());
  EXPECT_FALSE(owner->exists("f"));  // cached view: stale until refresh
  ASSERT_TRUE(owner->refresh().ok());
  EXPECT_TRUE(owner->exists("f"));
}

TEST(CapsuleFs, ReadOnlyMountCannotWrite) {
  World w(312);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "ro"));
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(owner->write_file("f", to_bytes("data")).ok());

  auto reader = GdpFilesystem::mount(
      Mount::open(w.s, *w.bob, w.servers(), owner->directory_metadata()));
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader->can_write());
  EXPECT_TRUE(reader->exists("f"));
  EXPECT_EQ(reader->write_file("g", to_bytes("nope")).code(),
            Errc::kPermissionDenied);
  // Only the owner can mint credentials.
  crypto::PrivateKey key = crypto::PrivateKey::generate(w.s.key_rng());
  EXPECT_EQ(reader->grant_writer(key.public_key(), "evil").code(),
            Errc::kPermissionDenied);
}

TEST(CapsuleFs, ForgedCredentialRejected) {
  World w(313);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "sealed"));
  ASSERT_TRUE(owner.ok());

  // Mallory self-signs a credential with a key that is NOT the owner key.
  crypto::PrivateKey mallory = crypto::PrivateKey::generate(w.s.key_rng());
  capsule::WriterCredential forged = capsule::make_writer_credential(
      mallory, owner->directory_capsule(), mallory.public_key(), "mallory", 0,
      std::numeric_limits<std::int64_t>::max() / 2);
  auto mallory_fs = GdpFilesystem::mount(
      Mount::open(w.s, *w.bob, w.servers(), owner->directory_metadata()),
      forged, std::move(mallory));
  ASSERT_TRUE(mallory_fs.ok());  // mounting is local; the replicas decide
  EXPECT_FALSE(mallory_fs->mkdir("pwned").ok());
  ASSERT_TRUE(owner->refresh().ok());
  EXPECT_FALSE(owner->exists("pwned"));
}

TEST(CapsuleFs, ExpiredCredentialRejected) {
  World w(314);
  auto setup = harness::make_capsule(w.s.key_rng(), "expiring",
                                     capsule::WriterMode::kMultiWriter, "chain");
  ASSERT_TRUE(harness::place_capsule(w.s, setup, *w.alice, w.servers()).ok());

  // Valid only for the first simulated second.
  crypto::PrivateKey key = crypto::PrivateKey::generate(w.s.key_rng());
  capsule::WriterCredential credential = capsule::make_writer_credential(
      *setup.owner_key, setup.metadata.name(), key.public_key(), "shortlived",
      0, from_seconds(1).count());
  capsule::Writer writer(setup.metadata, key, capsule::strategy_from_id("chain"));

  w.s.settle_for(from_seconds(5));  // the window is now over
  Bytes envelope =
      capsule::wrap_mw_payload(credential, mkdir_rec("late").serialize());
  capsule::Record record = writer.append(envelope, w.s.sim().now().count());
  auto op = w.bob->cond_append(setup.metadata, record, 0, setup.metadata.name());
  auto outcome = client::await(w.s.sim(), op);
  EXPECT_FALSE(outcome.ok());  // replica refuses the expired delegation
}

// ---- SCL: compare-and-append and leases ------------------------------------------

TEST(Scl, CasConflictRebasesAndRetries) {
  World w(320);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "contended"));
  ASSERT_TRUE(owner.ok());

  crypto::PrivateKey bob_key = crypto::PrivateKey::generate(w.s.key_rng());
  auto credential = owner->grant_writer(bob_key.public_key(), "bob");
  ASSERT_TRUE(credential.ok());
  auto bob_fs = GdpFilesystem::mount(
      Mount::open(w.s, *w.bob, w.servers(), owner->directory_metadata()),
      *credential, std::move(bob_key));
  ASSERT_TRUE(bob_fs.ok());

  // Alice moves the tip; Bob's session still believes the capsule is
  // empty, so his first CAS loses, rebases onto the nacked tip, retries,
  // and wins — all inside one SclSession::append call.
  ASSERT_TRUE(owner->scl()->append(dir_envelope(*owner, mkdir_rec("a"))).ok());
  auto outcome = bob_fs->scl()->append(dir_envelope(*bob_fs, mkdir_rec("b")));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_TRUE(outcome->won);
  EXPECT_EQ(outcome->seqno, 2u);
  EXPECT_EQ(bob_fs->scl()->conflicts(), 1u);

  ASSERT_TRUE(owner->refresh().ok());
  EXPECT_TRUE(owner->exists("a"));
  EXPECT_TRUE(owner->exists("b"));
}

TEST(Scl, CasRetryBudgetExhaustionSurfacesConflict) {
  World w(321);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "starved"));
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(owner->scl()->append(dir_envelope(*owner, mkdir_rec("x"))).ok());

  // A writer with a zero retry budget loses once and must give up with
  // kConflict rather than silently retrying.
  crypto::PrivateKey key = crypto::PrivateKey::generate(w.s.key_rng());
  auto credential = owner->grant_writer(key.public_key(), "poor");
  ASSERT_TRUE(credential.ok());
  SclSession::Options options;
  options.retry_budget.min_tokens = 0;
  options.retry_budget.ratio = 0;
  SclSession session(
      w.s, *w.bob, owner->directory_metadata(),
      capsule::Writer(owner->directory_metadata(), key,
                      capsule::strategy_from_id("chain")),
      options);
  Bytes envelope = capsule::wrap_mw_payload(*credential, mkdir_rec("y").serialize());
  auto outcome = session.append(envelope);
  EXPECT_EQ(outcome.code(), Errc::kConflict);
  EXPECT_EQ(session.conflicts(), 1u);
}

TEST(Scl, LeaseLifecycle) {
  World w(322);
  auto setup = harness::make_capsule(w.s.key_rng(), "leased",
                                     capsule::WriterMode::kMultiWriter, "chain");
  ASSERT_TRUE(harness::place_capsule(w.s, setup, *w.alice, w.servers()).ok());
  const capsule::Metadata& meta = setup.metadata;

  // Alice acquires; the grant carries the (empty) tip.
  auto grant = client::await(w.s.sim(),
                             w.alice->lease_acquire(meta, from_seconds(2)));
  ASSERT_TRUE(grant.ok()) << grant.error().to_string();
  EXPECT_TRUE(grant->granted);
  EXPECT_EQ(grant->holder, w.alice->name());
  EXPECT_EQ(grant->tip_seqno, 0u);
  EXPECT_EQ(grant->tip_hash, meta.name());

  // Bob is denied while the lease is live, and his un-leased CAS is
  // nacked with kLeaseHeld.
  auto denied = client::await(w.s.sim(),
                              w.bob->lease_acquire(meta, from_seconds(2)));
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->granted);
  EXPECT_EQ(denied->code, Errc::kLeaseHeld);
  EXPECT_EQ(denied->holder, w.alice->name());

  crypto::PrivateKey bob_key = crypto::PrivateKey::generate(w.s.key_rng());
  capsule::WriterCredential bob_cred = capsule::make_writer_credential(
      *setup.owner_key, meta.name(), bob_key.public_key(), "bob", 0,
      std::numeric_limits<std::int64_t>::max() / 2);
  capsule::Writer bob_writer(meta, bob_key, capsule::strategy_from_id("chain"));
  Bytes envelope =
      capsule::wrap_mw_payload(bob_cred, mkdir_rec("blocked").serialize());
  capsule::Record record = bob_writer.append(envelope, w.s.sim().now().count());
  auto nacked = client::await(
      w.s.sim(), w.bob->cond_append(meta, record, 0, meta.name()));
  ASSERT_TRUE(nacked.ok());
  EXPECT_FALSE(nacked->won);
  EXPECT_EQ(nacked->code, Errc::kLeaseHeld);
  EXPECT_EQ(nacked->lease_holder, w.alice->name());

  // Renewal extends, release frees, and Bob can then take the lease.
  auto renewed = client::await(
      w.s.sim(), w.alice->lease_renew(meta, grant->lease_id, from_seconds(2)));
  ASSERT_TRUE(renewed.ok());
  EXPECT_TRUE(renewed->granted);
  EXPECT_EQ(renewed->lease_id, grant->lease_id);
  auto released = client::await(
      w.s.sim(), w.alice->lease_release(meta, grant->lease_id));
  ASSERT_TRUE(released.ok());
  EXPECT_TRUE(released->granted);
  auto bob_grant = client::await(w.s.sim(),
                                 w.bob->lease_acquire(meta, from_millis(100)));
  ASSERT_TRUE(bob_grant.ok());
  EXPECT_TRUE(bob_grant->granted);
  EXPECT_NE(bob_grant->lease_id, grant->lease_id);

  // Expiry: once Bob's short lease lapses, Alice acquires without release.
  w.s.settle_for(from_seconds(1));
  auto after_expiry = client::await(
      w.s.sim(), w.alice->lease_acquire(meta, from_seconds(1)));
  ASSERT_TRUE(after_expiry.ok());
  EXPECT_TRUE(after_expiry->granted);
}

// ---- Deterministic replay --------------------------------------------------------

Name blind_branch_workload(std::uint64_t seed) {
  World w(seed);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "branches"));
  EXPECT_TRUE(owner.ok());

  // Three credentialed writers extend three independent branches with
  // overlapping seqnos: replay order must not depend on arrival order.
  std::vector<client::GdpClient*> clients{w.alice, w.bob, w.carol};
  std::vector<client::OpPtr<client::AppendOutcome>> ops;
  std::vector<std::unique_ptr<SclSession>> sessions;
  for (std::size_t i = 0; i < 3; ++i) {
    crypto::PrivateKey key = crypto::PrivateKey::generate(w.s.key_rng());
    auto credential = owner->grant_writer(key.public_key(), "b" + std::to_string(i));
    EXPECT_TRUE(credential.ok());
    sessions.push_back(std::make_unique<SclSession>(
        w.s, *clients[i], owner->directory_metadata(),
        capsule::Writer(owner->directory_metadata(), key,
                        capsule::strategy_from_id("chain"))));
    for (std::size_t k = 0; k < 4; ++k) {
      Bytes envelope = capsule::wrap_mw_payload(
          *credential,
          mkdir_rec("w" + std::to_string(i) + "/n" + std::to_string(k))
              .serialize());
      ops.push_back(sessions.back()->blind_append(envelope));
    }
  }
  w.s.settle();
  for (auto& op : ops) {
    auto outcome = client::await(w.s.sim(), op);
    EXPECT_TRUE(outcome.ok());
  }
  w.s.settle_for(from_seconds(10));  // anti-entropy merges every branch

  // Every replica replays to the same digest as the verified read path.
  EXPECT_TRUE(owner->refresh().ok());
  const Name digest = owner->tree_digest();
  for (server::CapsuleServer* server : w.servers()) {
    const store::CapsuleStore* cs =
        server->storage().find(owner->directory_capsule());
    EXPECT_NE(cs, nullptr);
    if (cs == nullptr) continue;
    auto replica = GdpFilesystem::replay_digest(owner->directory_metadata(),
                                                cs->state().export_records());
    EXPECT_TRUE(replica.ok());
    EXPECT_EQ(*replica, digest);
  }
  EXPECT_EQ(owner->tree().size(), 12u);
  return digest;
}

TEST(CapsuleFs, DeterministicReplayAcrossReplicasAndReruns) {
  const Name first = blind_branch_workload(330);
  const Name second = blind_branch_workload(330);
  EXPECT_EQ(first.hex(), second.hex());  // byte-identical rerun
}

// ---- The acceptance workload: >=100 writers through link flaps -------------------

TEST(CapsuleFs, MultiWriterFlapConvergence) {
  auto run = [](std::uint64_t seed) {
    World w(seed);
    auto owner = GdpFilesystem::mount(
        Mount::create(w.s, *w.alice, w.servers(), "warzone"));
    EXPECT_TRUE(owner.ok());

    FsLoadOptions options;
    options.writers = 120;
    options.ops_per_writer = 2;
    options.concurrency = GdpFilesystem::Concurrency::kBlind;
    options.max_rounds = 12;
    options.final_settle = from_seconds(60);
    options.on_round = [&w](std::size_t round) {
      if (round == 0) {
        // Partition the second replica mid-burst, twice.
        w.s.flap_link(w.srv2->name(), w.r2->name(), from_millis(5),
                      from_millis(400));
        w.s.flap_link(w.r1->name(), w.r2->name(), from_millis(600),
                      from_millis(400));
      }
    };
    auto report = run_fs_load(w.s, *owner, w.servers(),
                              {w.alice, w.bob, w.carol}, options);
    EXPECT_TRUE(report.ok()) << report.error().to_string();
    EXPECT_TRUE(report->converged);
    EXPECT_EQ(report->failures, 0u);
    EXPECT_EQ(report->committed, 240u);
    EXPECT_EQ(report->replica_digests.size(), 2u);
    EXPECT_EQ(report->client_digest, report->replica_digests[0]);
    return report->client_digest;
  };
  const Name first = run(331);
  const Name second = run(331);
  EXPECT_EQ(first.hex(), second.hex());  // rerun is byte-identical
}

TEST(CapsuleFs, CasContentionConvergesToo) {
  World w(332);
  auto owner = GdpFilesystem::mount(
      Mount::create(w.s, *w.alice, w.servers(), "cas-herd"));
  ASSERT_TRUE(owner.ok());
  FsLoadOptions options;
  options.writers = 16;
  options.ops_per_writer = 2;
  options.concurrency = GdpFilesystem::Concurrency::kCas;
  options.max_rounds = 64;
  options.final_settle = from_seconds(30);
  auto report =
      run_fs_load(w.s, *owner, w.servers(), {w.alice, w.bob}, options);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report->converged);
  EXPECT_EQ(report->failures, 0u);
  EXPECT_GT(report->conflicts, 0u);  // the herd actually contended
  EXPECT_EQ(report->client_digest, report->replica_digests[0]);
}

// ---- Wire fuzz for the SCL types -------------------------------------------------

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

capsule::Record sample_record() {
  static Rng rng(77);
  static auto owner = crypto::PrivateKey::generate(rng);
  static auto writer_key = crypto::PrivateKey::generate(rng);
  static auto metadata = capsule::Metadata::create(
      owner, writer_key.public_key(), capsule::WriterMode::kMultiWriter,
      "scl-fuzz", 0);
  static capsule::Writer writer(*metadata, writer_key,
                                capsule::make_chain_strategy());
  return writer.append(to_bytes("payload"), 1);
}

/// Serializes, re-parses, and sweeps truncations expecting rejection —
/// the PR8/PR9 wire-fuzz idiom.
template <typename Msg>
Msg round_trip_and_truncate(const Msg& msg) {
  Bytes wire_bytes = msg.serialize();
  auto back = Msg::deserialize(wire_bytes);
  EXPECT_TRUE(back.ok()) << back.error().to_string();
  for (std::size_t cut = 0; cut < wire_bytes.size();
       cut += 1 + wire_bytes.size() / 37) {
    EXPECT_FALSE(Msg::deserialize(BytesView(wire_bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
  Bytes extended = wire_bytes;
  extended.push_back(0x5a);
  EXPECT_FALSE(Msg::deserialize(extended).ok());
  return std::move(back).value();
}

TEST(SclWire, CondAppendFuzz) {
  wire::CondAppendMsg msg;
  msg.capsule = name_of(1);
  msg.record = sample_record();
  msg.expected_tip_seqno = 41;
  msg.expected_tip_hash = name_of(2);
  msg.required_acks = 2;
  msg.lease_id = 77;
  msg.nonce = 9;
  msg.session_pubkey = Bytes(64, 0x21);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.record, msg.record);
  EXPECT_EQ(back.expected_tip_seqno, 41u);
  EXPECT_EQ(back.expected_tip_hash, name_of(2));
  EXPECT_EQ(back.lease_id, 77u);
}

TEST(SclWire, CasNackFuzz) {
  wire::CasNackMsg msg;
  msg.capsule = name_of(3);
  msg.code = static_cast<std::uint16_t>(Errc::kConflict);
  msg.error = "CONFLICT: tip moved";
  msg.tip_seqno = 12;
  msg.tip_hash = name_of(4);
  msg.lease_holder = name_of(5);
  msg.lease_expires_ns = 123456789;
  msg.nonce = 3;
  msg.server_principal = to_bytes("principal");
  msg.delegation = to_bytes("delegation");
  msg.auth.kind = wire::ResponseAuth::Kind::kSignature;
  msg.auth.bytes = Bytes(64, 0x02);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.tip_seqno, 12u);
  EXPECT_EQ(back.tip_hash, name_of(4));
  EXPECT_EQ(back.lease_holder, name_of(5));
  // The rebase tip is inside the signed body: tampering must change it.
  EXPECT_EQ(back.signed_body(), msg.signed_body());
  wire::CasNackMsg tampered = msg;
  tampered.tip_seqno = 13;
  EXPECT_NE(tampered.signed_body(), msg.signed_body());
}

TEST(SclWire, LeaseRequestFuzz) {
  wire::LeaseRequestMsg msg;
  msg.capsule = name_of(6);
  msg.op = wire::LeaseRequestMsg::kRenew;
  msg.holder = name_of(7);
  msg.lease_id = 5;
  msg.duration_ns = from_seconds(2).count();
  msg.nonce = 8;
  msg.session_pubkey = Bytes(64, 0x22);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.op, wire::LeaseRequestMsg::kRenew);
  EXPECT_EQ(back.holder, name_of(7));
  EXPECT_EQ(back.duration_ns, from_seconds(2).count());
}

TEST(SclWire, LeaseGrantFuzz) {
  wire::LeaseGrantMsg msg;
  msg.capsule = name_of(8);
  msg.ok = true;
  msg.code = 0;
  msg.lease_id = 15;
  msg.holder = name_of(9);
  msg.expires_ns = 777;
  msg.tip_seqno = 4;
  msg.tip_hash = name_of(10);
  msg.nonce = 2;
  msg.server_principal = to_bytes("principal");
  msg.delegation = to_bytes("delegation");
  msg.auth.kind = wire::ResponseAuth::Kind::kHmac;
  msg.auth.bytes = Bytes(32, 0x03);
  auto back = round_trip_and_truncate(msg);
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.lease_id, 15u);
  EXPECT_EQ(back.tip_hash, name_of(10));
  EXPECT_EQ(back.signed_body(), msg.signed_body());
  wire::LeaseGrantMsg tampered = msg;
  tampered.holder = name_of(11);
  EXPECT_NE(tampered.signed_body(), msg.signed_body());
}

TEST(SclWire, WriterCredentialFuzz) {
  Rng rng(41);
  auto owner = crypto::PrivateKey::generate(rng);
  auto writer = crypto::PrivateKey::generate(rng);
  capsule::WriterCredential credential = capsule::make_writer_credential(
      owner, name_of(12), writer.public_key(), "branch-a", 100, 200);
  Bytes bytes = credential.serialize();
  auto back = capsule::WriterCredential::deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, credential);
  EXPECT_TRUE(back->verify(owner.public_key(), 150).ok());
  EXPECT_FALSE(back->verify(owner.public_key(), 250).ok());  // window
  EXPECT_FALSE(back->verify(writer.public_key(), 150).ok());  // wrong issuer
  for (std::size_t cut = 0; cut < bytes.size(); cut += 1 + bytes.size() / 37) {
    EXPECT_FALSE(
        capsule::WriterCredential::deserialize(BytesView(bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
}

TEST(SclWire, DirRecordFuzz) {
  for (std::uint8_t t = 1; t <= 6; ++t) {
    DirRecord rec;
    rec.type = static_cast<DirRecord::Type>(t);
    rec.path = "a/b/c";
    rec.target = "d/e";
    rec.file_metadata = to_bytes("meta");
    rec.chunk_count = 3;
    Bytes bytes = rec.serialize();
    auto back = DirRecord::deserialize(bytes);
    ASSERT_TRUE(back.ok()) << "type=" << int(t);
    EXPECT_EQ(*back, rec);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(DirRecord::deserialize(BytesView(bytes.data(), cut)).ok())
          << "type=" << int(t) << " cut=" << cut;
    }
    Bytes extended = bytes;
    extended.push_back(0x00);
    EXPECT_FALSE(DirRecord::deserialize(extended).ok());
  }
  Bytes bad{static_cast<std::uint8_t>(99)};
  EXPECT_FALSE(DirRecord::deserialize(bad).ok());
}

}  // namespace
}  // namespace gdp::caapi
