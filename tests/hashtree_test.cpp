// capsule::HashTree invariants: the Merkle summary two replicas compare
// during anti-entropy.  The load-bearing properties are (a) shape is
// absolute — replicas with different tips hash the same function over the
// same aligned range, (b) maintenance is order-independent, and (c) a
// divergent record is localized to exactly one leaf range per level.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "capsule/hashtree.hpp"
#include "capsule/state.hpp"
#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"

namespace gdp::capsule {
namespace {

Name fake_hash(std::uint64_t seqno, std::uint8_t salt = 0) {
  Bytes raw(Name::kSize, salt);
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(seqno >> (8 * i));
  }
  raw[31] ^= salt;
  return *Name::from_bytes(raw);
}

TEST(HashTree, EmptyTreesAgree) {
  HashTree a;
  HashTree b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.root().first, 1u);
  EXPECT_EQ(a.root().last, HashTree::kLeafSpan);
  // Every aligned range of an empty tree is comparable and equal.
  EXPECT_EQ(a.node(1, 64), b.node(1, 64));
  EXPECT_EQ(a.node(1, 1024), b.node(1, 1024));
  EXPECT_EQ(a.node(1025, 2048), b.node(1025, 2048));
  EXPECT_TRUE(a.range_empty(1, 1'000'000));
  EXPECT_FALSE(a.range_full(1, 1));
}

TEST(HashTree, IncrementalMatchesAnyInsertionOrder) {
  constexpr std::uint64_t kN = 1500;  // spans three levels (64, 1024, 16384)
  HashTree forward;
  for (std::uint64_t s = 1; s <= kN; ++s) forward.set_leaf(s, fake_hash(s));

  std::vector<std::uint64_t> order;
  for (std::uint64_t s = 1; s <= kN; ++s) order.push_back(s);
  Rng rng(7);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  HashTree shuffled;
  for (std::uint64_t s : order) shuffled.set_leaf(s, fake_hash(s));

  EXPECT_EQ(forward.root(), shuffled.root());
  EXPECT_EQ(forward.tip_seqno(), shuffled.tip_seqno());
  EXPECT_TRUE(forward.range_full(1, kN));
  EXPECT_FALSE(forward.range_full(1, kN + 1));
}

TEST(HashTree, DifferentTipsCompareTheSameRanges) {
  HashTree big;
  HashTree small;
  for (std::uint64_t s = 1; s <= 5000; ++s) big.set_leaf(s, fake_hash(s));
  for (std::uint64_t s = 1; s <= 100; ++s) small.set_leaf(s, fake_hash(s));

  // Identical prefixes agree at every granularity the prefix covers...
  EXPECT_EQ(big.node(1, 64), small.node(1, 64));
  // ...and ranges wholly beyond the small tip fold empty digests that the
  // big replica can still reproduce for its own empty suffix.
  HashTree empty;
  EXPECT_EQ(small.node(8193, 8256), empty.node(8193, 8256));
  EXPECT_NE(big.node(65, 128), small.node(65, 128));  // 100 < 128: differs
}

TEST(HashTree, DivergenceIsLocalizedToOneSubtreePerLevel) {
  constexpr std::uint64_t kN = 4096;
  HashTree a;
  HashTree b;
  for (std::uint64_t s = 1; s <= kN; ++s) {
    a.set_leaf(s, fake_hash(s));
    b.set_leaf(s, fake_hash(s, s == 2000 ? 0xA5 : 0));  // one forked record
  }
  EXPECT_NE(a.root(), b.root());
  // Level 1: exactly one of the 16 children of [1,16384] differs.
  int differing = 0;
  const auto ca = a.children(1, 16384);
  const auto cb = b.children(1, 16384);
  ASSERT_EQ(ca.size(), 16u);
  for (std::size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) {
      ++differing;
      EXPECT_LE(ca[i].first, 2000u);
      EXPECT_GE(ca[i].last, 2000u);
    }
  }
  EXPECT_EQ(differing, 1);
  // Leaf level: the forked seqno's bucket differs, its neighbors agree.
  EXPECT_NE(a.node(1985, 2048), b.node(1985, 2048));
  EXPECT_EQ(a.node(1921, 1984), b.node(1921, 1984));
  EXPECT_EQ(a.node(2049, 2112), b.node(2049, 2112));
}

TEST(HashTree, TruncateRewindsToShorterChain) {
  HashTree grown;
  for (std::uint64_t s = 1; s <= 300; ++s) grown.set_leaf(s, fake_hash(s));
  HashTree straight;
  for (std::uint64_t s = 1; s <= 200; ++s) straight.set_leaf(s, fake_hash(s));

  grown.truncate(200);
  EXPECT_EQ(grown.tip_seqno(), 200u);
  EXPECT_EQ(grown.root(), straight.root());
  EXPECT_TRUE(grown.range_empty(201, 300));

  // Truncate-to-larger is a no-op; truncate-to-zero empties.
  grown.truncate(500);
  EXPECT_EQ(grown.tip_seqno(), 200u);
  grown.truncate(0);
  EXPECT_EQ(grown.root(), HashTree{}.root());
}

TEST(HashTree, OverwriteAndRangePredicates) {
  HashTree t;
  t.set_leaf(10, fake_hash(10));
  t.set_leaf(70, fake_hash(70));
  EXPECT_EQ(t.tip_seqno(), 70u);
  EXPECT_FALSE(t.range_empty(1, 64));
  EXPECT_FALSE(t.range_empty(65, 128));
  EXPECT_TRUE(t.range_empty(11, 69));
  EXPECT_FALSE(t.range_full(1, 10));
  EXPECT_TRUE(t.range_full(10, 10));

  // Overwriting a leaf changes the root; rewriting the same value or a
  // same-hash re-assert keeps it bit-identical.
  const auto before = t.root();
  t.set_leaf(10, fake_hash(10));
  EXPECT_EQ(t.root(), before);
  t.set_leaf(10, fake_hash(10, 0x5A));
  EXPECT_NE(t.root(), before);
  t.set_leaf(10, fake_hash(10));
  EXPECT_EQ(t.root(), before);
}

TEST(HashTree, AlignmentAndCoverSpan) {
  EXPECT_TRUE(HashTree::is_aligned(1, 64));
  EXPECT_TRUE(HashTree::is_aligned(65, 128));
  EXPECT_TRUE(HashTree::is_aligned(1, 1024));
  EXPECT_TRUE(HashTree::is_aligned(1025, 2048));
  EXPECT_FALSE(HashTree::is_aligned(2, 65));    // misaligned start
  EXPECT_FALSE(HashTree::is_aligned(1, 100));   // not a power-of-fanout span
  EXPECT_FALSE(HashTree::is_aligned(0, 63));    // seqnos are 1-based
  EXPECT_EQ(HashTree::cover_span(0), 64u);
  EXPECT_EQ(HashTree::cover_span(64), 64u);
  EXPECT_EQ(HashTree::cover_span(65), 1024u);
  EXPECT_EQ(HashTree::cover_span(1'000'000), 4'194'304u);
}

// The tree the server actually compares is the one CapsuleState maintains
// in lock-step with its canonical chain; out-of-order ingest (holes, late
// attach) must land on the same root as in-order ingest.
TEST(HashTree, CapsuleStateKeepsTreeInLockstep) {
  Rng rng(42);
  auto owner = crypto::PrivateKey::generate(rng);
  auto writer_key = crypto::PrivateKey::generate(rng);
  auto metadata = capsule::Metadata::create(
      owner, writer_key.public_key(), capsule::WriterMode::kStrictSingleWriter,
      "tree-state", 0);
  ASSERT_TRUE(metadata.ok());
  capsule::Writer w(*metadata, writer_key, capsule::make_chain_strategy());

  std::vector<Record> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(w.append(to_bytes("r" + std::to_string(i)), 1));
  }

  CapsuleState in_order(*metadata);
  for (const Record& r : records) ASSERT_TRUE(in_order.ingest(r).ok());

  CapsuleState reversed(*metadata);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    ASSERT_TRUE(reversed.ingest(*it).ok());
  }

  EXPECT_EQ(in_order.tree().root(), reversed.tree().root());
  EXPECT_EQ(in_order.tree().tip_seqno(), 200u);
  // And the leaves are the canonical record hashes themselves.
  EXPECT_TRUE(in_order.tree().range_full(1, 200));
  EXPECT_NE(in_order.tree().root(), HashTree{}.root());
}

}  // namespace
}  // namespace gdp::capsule
