// Server/client behavioural tests beyond the happy paths: robustness to
// malformed input, range clamping, durability edge cases, cross-replica
// event delivery, and hosting policy.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

struct World {
  Scenario s;
  router::GLookupService* root;
  router::Router* r1;
  server::CapsuleServer* srv;
  client::GdpClient* cli;

  explicit World(std::uint64_t seed) : s(seed, "server") {
    root = s.add_domain("g", nullptr);
    r1 = s.add_router("r1", root);
    srv = s.add_server("srv", r1);
    cli = s.add_client("cli", r1);
    s.attach_all();
  }
};

TEST(Server, MalformedPdusIgnoredWithoutCrash) {
  World w(1);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "robust");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());

  Rng rng(4);
  for (auto type : {wire::MsgType::kCreateCapsule, wire::MsgType::kAppend,
                    wire::MsgType::kRead, wire::MsgType::kSubscribe,
                    wire::MsgType::kSyncPull, wire::MsgType::kSyncPush,
                    wire::MsgType::kSyncSummary, wire::MsgType::kSyncDescend,
                    wire::MsgType::kSyncRange, wire::MsgType::kStatus,
                    wire::MsgType::kPublish}) {
    wire::Pdu pdu;
    pdu.dst = w.srv->name();
    pdu.src = w.cli->name();
    pdu.type = type;
    pdu.payload = rng.next_bytes(1 + rng.next_below(300));
    w.s.net().send(w.cli->name(), w.r1->name(), pdu);
  }
  w.s.settle();
  // Server still healthy and serving.
  capsule::Writer writer = cap.make_writer();
  auto outcome = await(w.s.sim(), w.cli->append(writer, to_bytes("still alive")));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
}

TEST(Server, ReadBeyondTipClampsOrFails) {
  World w(2);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "clamped");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());
  capsule::Writer writer = cap.make_writer();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(await(w.s.sim(), w.cli->append(writer, to_bytes("x"))).ok());
  }
  // Open-ended range clamps to the tip.
  auto clamped = await(w.s.sim(), w.cli->read(cap.metadata, 2, 100));
  ASSERT_TRUE(clamped.ok()) << clamped.error().to_string();
  EXPECT_EQ(clamped->records.size(), 4u);
  // Fully out-of-range start fails.
  auto beyond = await(w.s.sim(), w.cli->read(cap.metadata, 10, 20));
  EXPECT_FALSE(beyond.ok());
  // Empty capsule read fails cleanly.
  CapsuleSetup empty = make_capsule(w.s.key_rng(), "empty");
  ASSERT_TRUE(place_capsule(w.s, empty, *w.cli, {w.srv}).ok());
  auto none = await(w.s.sim(), w.cli->read_latest(empty.metadata));
  EXPECT_FALSE(none.ok());
}

TEST(Server, AppendForUnknownCapsuleNacked) {
  World w(3);
  CapsuleSetup hosted = make_capsule(w.s.key_rng(), "hosted");
  ASSERT_TRUE(place_capsule(w.s, hosted, *w.cli, {w.srv}).ok());
  // A capsule that was never placed anywhere: the name has no route, so
  // the append cannot even be delivered.
  CapsuleSetup ghost = make_capsule(w.s.key_rng(), "ghost");
  capsule::Writer writer = ghost.make_writer();
  auto outcome = await(w.s.sim(), w.cli->append(writer, to_bytes("x")));
  EXPECT_FALSE(outcome.ok());
}

TEST(Server, DurabilityImpossibleQuorumFailsHonestly) {
  World w(4);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "lonely");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());  // single replica
  capsule::Writer writer = cap.make_writer();
  auto outcome = await(w.s.sim(), w.cli->append(writer, to_bytes("x"), 3));
  // There is only one replica: 3 acks are unachievable and the server
  // must say so rather than lie.
  EXPECT_FALSE(outcome.ok());
  // The record itself is persisted locally (durable, just not replicated).
  EXPECT_EQ(w.srv->storage().find(cap.metadata.name())->state().size(), 1u);
}

TEST(Server, QuorumImpossibleNackedUpFront) {
  // required_acks exceeding 1 + configured peers can never be satisfied;
  // the server must say so immediately instead of burning the full
  // durability timeout.
  World w(10);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "instant-nack");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());
  capsule::Writer writer = cap.make_writer();
  const TimePoint before = w.s.sim().now();
  auto outcome = await(w.s.sim(), w.cli->append(writer, to_bytes("x"), 3));
  EXPECT_FALSE(outcome.ok());
  // Well under the 2 s durability timeout: this was an up-front nack.
  EXPECT_LT(w.s.sim().now() - before, from_millis(500));
  // Still durable locally.
  EXPECT_EQ(w.srv->storage().find(cap.metadata.name())->state().size(), 1u);
}

TEST(Server, QuorumTwoWithSinglePeerSucceeds) {
  // k=2 with exactly one replica peer: the local persist is the first
  // ack, the peer's the second.  An off-by-one that ignores the local
  // copy would nack this forever.
  Scenario s(11, "quorum2");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "pair");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv1, srv2}).ok());
  capsule::Writer writer = cap.make_writer();
  auto outcome = await(s.sim(), cli->append(writer, to_bytes("x"), 2));
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_GE(outcome->acks, 2u);
  EXPECT_EQ(srv1->storage().find(cap.metadata.name())->state().size(), 1u);
  EXPECT_EQ(srv2->storage().find(cap.metadata.name())->state().size(), 1u);
}

TEST(Server, DuplicatePeerAcksDontInflateQuorum) {
  // srv2's durability ack is replayed (flap re-delivery) and srv3's is
  // dropped: 3 required, but only two distinct durable copies exist.
  // Counting the replay would falsely satisfy the quorum.
  Scenario s(12, "dupack");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  // Coordinator determinism: the client anycasts to its nearest replica,
  // srv1; the voting peers sit behind the far router.
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* srv3 = s.add_server("srv3", r2);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "dup-acked");
  ASSERT_TRUE(place_capsule(s, cap, *cli, {srv1, srv2, srv3}).ok());

  bool duplicated = false;
  s.net().set_interceptor(
      srv2->name(), r2->name(),
      [&](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kStatus && pdu.dst == srv1->name() &&
            !duplicated) {
          duplicated = true;
          s.net().send(srv2->name(), r2->name(), pdu);  // replay
        }
        return pdu;
      });
  s.net().set_interceptor(
      srv3->name(), r2->name(),
      [&](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kStatus && pdu.dst == srv1->name()) {
          return std::nullopt;
        }
        return pdu;
      });

  capsule::Writer writer = cap.make_writer();
  auto outcome = await(s.sim(), cli->append(writer, to_bytes("x"), 3));
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(duplicated);
  const std::string stats = s.stats_json();
  const auto pos = stats.find("\"server.srv1.drop.duplicate_ack\": ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(stats.find("\"server.srv1.drop.duplicate_ack\": 1"),
            std::string::npos);
}

TEST(Server, UnanimousNacksFailFast) {
  // The only configured peer nacks (it does not host the capsule): the
  // quorum is provably unreachable and the append must fail immediately,
  // not at the durability timeout.
  Scenario s(13, "nackfast");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "nacked");
  const TimePoint now = s.sim().now();
  // Out-of-band placement: srv1 hosts with srv2 as peer, but srv2 was
  // never asked to host.
  ASSERT_TRUE(srv1->host_capsule(cap.metadata,
                                 cap.delegation_for(srv1->principal(), now,
                                                    now + from_seconds(3600)),
                                 {srv2->name()})
                  .ok());
  srv1->advertise_to(r1->name());
  s.settle();

  capsule::Writer writer = cap.make_writer();
  const TimePoint before = s.sim().now();
  auto outcome = await(s.sim(), cli->append(writer, to_bytes("x"), 2));
  EXPECT_FALSE(outcome.ok());
  EXPECT_LT(s.sim().now() - before, from_millis(500));
}

TEST(Server, SyncPullRepliesContainNoDuplicates) {
  // Flood-mode serving: a puller whose hole list names records the
  // tip-scan already covers (or repeats the same hole twice) must not be
  // sent duplicate records.
  World w(14);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "dedup");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());
  capsule::Writer writer = cap.make_writer();
  std::vector<Name> hashes;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(await(w.s.sim(), w.cli->append(writer, to_bytes("x"))).ok());
    hashes.push_back(writer.tip_hash());
  }

  std::size_t push_records = 0;
  w.s.net().set_interceptor(
      w.srv->name(), w.r1->name(),
      [&](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kSyncPush) {
          auto push = wire::SyncPushMsg::deserialize(pdu.payload);
          if (push.ok()) push_records += push->records.size();
        }
        return pdu;
      });

  wire::SyncPullMsg pull;
  pull.capsule = cap.metadata.name();
  pull.tip_seqno = 0;  // tip-scan will cover all five records
  pull.holes = {hashes[2], hashes[2], hashes[4]};  // all already covered
  wire::Pdu pdu;
  pdu.dst = w.srv->name();
  pdu.src = w.cli->name();
  pdu.type = wire::MsgType::kSyncPull;
  pdu.payload = pull.serialize();
  w.s.net().send(w.cli->name(), w.r1->name(), pdu);
  w.s.settle();
  EXPECT_EQ(push_records, 5u);
}

TEST(Server, SubscribersOnOtherReplicaGetEvents) {
  Scenario s(5, "xreplica-pub");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* writer_c = s.add_client("writer", r1);
  auto* sub = s.add_client("sub", r2);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "xpub");
  ASSERT_TRUE(place_capsule(s, cap, *writer_c, {srv1, srv2}).ok());

  // The subscriber anycasts its subscription; from r2 it lands on srv2.
  int events = 0;
  auto cert = cap.sub_cert_for(sub->name(), s.sim().now(),
                               s.sim().now() + from_seconds(3600));
  ASSERT_TRUE(await(s.sim(), sub->subscribe(cap.metadata, cert,
                                            [&](const capsule::Record&,
                                                const capsule::Heartbeat&) {
                                              ++events;
                                            }))
                  .ok());
  EXPECT_EQ(srv2->subscriber_count(cap.metadata.name()), 1u);
  EXPECT_EQ(srv1->subscriber_count(cap.metadata.name()), 0u);

  // Writer appends land on srv1 (its side of the network); events reach
  // the subscriber through replication into srv2.
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(await(s.sim(), writer_c->append(w, to_bytes("e"))).ok());
  }
  s.settle();
  EXPECT_EQ(events, 3);
}

TEST(Server, RefusesToHostWithForeignDelegation) {
  Scenario s(6, "foreign");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* srv_a = s.add_server("srv-a", r1);
  auto* srv_b = s.add_server("srv-b", r1);
  auto* cli = s.add_client("cli", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "misdelegated");
  // Delegation names server A, but we ask server B to host.
  const TimePoint now = s.sim().now();
  auto delegation = cap.delegation_for(srv_a->principal(), now,
                                       now + from_seconds(3600));
  auto outcome = await(s.sim(), cli->create_capsule(srv_b->name(), cap.metadata,
                                                    delegation, {}));
  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(srv_b->hosts(cap.metadata.name()));
}

TEST(Server, TwoClientsIndependentSessions) {
  World w(7);
  auto* cli2 = w.s.add_client("cli2", w.r1);
  w.s.attach_all();
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "sessions");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());
  capsule::Writer writer = cap.make_writer();
  ASSERT_TRUE(await(w.s.sim(), w.cli->append(writer, to_bytes("x"))).ok());

  // Both clients read via independent HMAC sessions.
  auto read1 = await(w.s.sim(), w.cli->read_latest(cap.metadata));
  auto read2 = await(w.s.sim(), cli2->read_latest(cap.metadata));
  ASSERT_TRUE(read1.ok());
  ASSERT_TRUE(read2.ok());
  auto read2b = await(w.s.sim(), cli2->read_latest(cap.metadata));
  ASSERT_TRUE(read2b.ok());
  EXPECT_TRUE(read2b->via_hmac);
  EXPECT_LT(read2b->response_bytes, read2->response_bytes);
}

TEST(Server, SswEquivocationSurfacesAsEvidence) {
  // An SSW writer (or whoever stole its key) forks the history.  Replicas
  // store both signed branches — third-party-verifiable evidence — and
  // flag the capsule.
  World w(9);
  CapsuleSetup cap = make_capsule(w.s.key_rng(), "equivocator");
  ASSERT_TRUE(place_capsule(w.s, cap, *w.cli, {w.srv}).ok());
  capsule::Writer honest = cap.make_writer();
  ASSERT_TRUE(await(w.s.sim(), w.cli->append(honest, to_bytes("v1"))).ok());
  Bytes saved = honest.save_state();
  ASSERT_TRUE(await(w.s.sim(), w.cli->append(honest, to_bytes("v2"))).ok());
  EXPECT_TRUE(w.srv->equivocating_capsules().empty());

  // Fork from the saved state: a second record at seqno 2.
  auto evil = capsule::Writer::restore(cap.metadata, *cap.writer_key,
                                       capsule::strategy_from_id(cap.strategy_id),
                                       saved);
  ASSERT_TRUE(evil.ok());
  capsule::Record conflicting = evil->append(to_bytes("v2-evil"), 0);
  ASSERT_TRUE(await(w.s.sim(), w.cli->append_record(cap.metadata, conflicting)).ok());
  w.s.settle();

  auto flagged = w.srv->equivocating_capsules();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], cap.metadata.name());
  // Both branches persist as evidence.
  EXPECT_EQ(w.srv->storage().find(cap.metadata.name())->state().all_at_seqno(2).size(),
            2u);
}

TEST(Server, RestartRecoversHostedCapsulesFromDisk) {
  // Storage-level recovery is covered in store_test; here we check the
  // server wiring: a new server process over the same storage root serves
  // the capsule again after re-advertising.
  harness::TempDir shared_dir("server-restart");
  net::Simulator sim(8);
  net::Network net(sim);
  auto topology = std::make_shared<router::Topology>();
  Rng rng(8);
  auto router_key = crypto::PrivateKey::generate(rng);
  auto glookup_key = crypto::PrivateKey::generate(rng);
  auto server_key = crypto::PrivateKey::generate(rng);
  auto client_key = crypto::PrivateKey::generate(rng);

  router::GLookupService glookup(
      net, trust::Principal::create(glookup_key, trust::Role::kOrganization, "g"),
      Name{}, topology);
  router::Router router(net, router_key, "r", Name{}, topology);
  router.set_glookup(&glookup);
  topology->add_router(router.name(), Name{});
  net.connect(router.name(), glookup.name(), net::LinkParams::lan());

  client::GdpClient cli(net, client_key, "cli");
  net.connect(cli.name(), router.name(), net::LinkParams::lan());
  cli.advertise(router.name(), {});

  CapsuleSetup cap = [&] {
    Rng crng(88);
    return make_capsule(crng, "survives-restart");
  }();
  capsule::Writer writer = cap.make_writer();

  {
    server::CapsuleServer::Options opts;
    opts.storage_root = shared_dir.path();
    server::CapsuleServer server(net, server_key, "srv", opts);
    net.connect(server.name(), router.name(), net::LinkParams::lan());
    server.advertise_to(router.name());
    sim.run();
    const TimePoint now = sim.now();
    auto placed = await(
        sim, cli.create_capsule(server.name(), cap.metadata,
                                cap.delegation_for(server.principal(), now,
                                                   now + from_seconds(1e6)),
                                {}));
    ASSERT_TRUE(placed.ok()) << placed.error().to_string();
    ASSERT_TRUE(await(sim, cli.append(writer, to_bytes("persisted"))).ok());
    net.detach(server.name());  // crash
  }

  // Same key, same storage root: the reincarnated server re-serves.
  server::CapsuleServer::Options opts;
  opts.storage_root = shared_dir.path();
  server::CapsuleServer reborn(net, server_key, "srv", opts);
  net.connect(reborn.name(), router.name(), net::LinkParams::lan());
  EXPECT_TRUE(reborn.hosts(cap.metadata.name()));
  reborn.advertise_to(router.name());
  sim.run();

  auto read = await(sim, cli.read_latest(cap.metadata));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(to_string(read->records[0].payload), "persisted");
}

}  // namespace
}  // namespace gdp
