// Exhaustive wire-format coverage: round-trips and truncation sweeps for
// every protocol message, plus cancellable-timer semantics on the
// simulator (which the client's guard timeouts depend on).
#include <gtest/gtest.h>

#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"
#include "net/sim.hpp"
#include "wire/messages.hpp"

namespace gdp::wire {
namespace {

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

capsule::Record sample_record() {
  static Rng rng(99);
  static auto owner = crypto::PrivateKey::generate(rng);
  static auto writer_key = crypto::PrivateKey::generate(rng);
  static auto metadata = capsule::Metadata::create(
      owner, writer_key.public_key(), capsule::WriterMode::kStrictSingleWriter,
      "wire-test", 0);
  static capsule::Writer writer(*metadata, writer_key,
                                capsule::make_chain_strategy());
  return writer.append(to_bytes("sample"), 1);
}

/// Serializes, re-parses, and also sweeps truncations expecting rejection.
template <typename Msg>
Msg round_trip_and_truncate(const Msg& msg) {
  Bytes wire_bytes = msg.serialize();
  auto back = Msg::deserialize(wire_bytes);
  EXPECT_TRUE(back.ok()) << back.error().to_string();
  // Every strict prefix must be rejected (no partial parses).
  for (std::size_t cut = 0; cut < wire_bytes.size();
       cut += 1 + wire_bytes.size() / 37) {
    EXPECT_FALSE(Msg::deserialize(BytesView(wire_bytes.data(), cut)).ok())
        << "cut=" << cut;
  }
  // Trailing garbage must be rejected too.
  Bytes extended = wire_bytes;
  extended.push_back(0x5a);
  EXPECT_FALSE(Msg::deserialize(extended).ok());
  return std::move(back).value();
}

TEST(WireMessages, CreateCapsule) {
  CreateCapsuleMsg msg;
  msg.metadata = to_bytes("meta-bytes");
  msg.delegation = to_bytes("delegation-bytes");
  msg.replica_peers = {name_of(1), name_of(2)};
  msg.nonce = 42;
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.metadata, msg.metadata);
  EXPECT_EQ(back.replica_peers, msg.replica_peers);
  EXPECT_EQ(back.nonce, 42u);
}

TEST(WireMessages, Append) {
  AppendMsg msg;
  msg.capsule = name_of(3);
  msg.record = sample_record();
  msg.required_acks = 2;
  msg.nonce = 7;
  msg.session_pubkey = Bytes(64, 0x20);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.record, msg.record);
  EXPECT_EQ(back.session_pubkey, msg.session_pubkey);
}

TEST(WireMessages, Read) {
  ReadMsg msg;
  msg.capsule = name_of(4);
  msg.first_seqno = 10;
  msg.last_seqno = 20;
  msg.nonce = 5;
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.first_seqno, 10u);
  EXPECT_EQ(back.last_seqno, 20u);
}

TEST(WireMessages, Subscribe) {
  SubscribeMsg msg;
  msg.capsule = name_of(5);
  msg.subscriber = name_of(6);
  msg.sub_cert = to_bytes("cert");
  msg.nonce = 9;
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.subscriber, name_of(6));
}

TEST(WireMessages, AppendAck) {
  AppendAckMsg msg;
  msg.capsule = name_of(7);
  msg.record_hash = name_of(8);
  msg.seqno = 11;
  msg.acks = 3;
  msg.ok = true;
  msg.error = "";
  msg.nonce = 1;
  msg.server_principal = to_bytes("principal");
  msg.delegation = to_bytes("delegation");
  msg.auth.kind = ResponseAuth::Kind::kSignature;
  msg.auth.bytes = Bytes(64, 0x01);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.acks, 3u);
  EXPECT_EQ(back.auth.kind, ResponseAuth::Kind::kSignature);
  // signed_body excludes the evidence and authenticator.
  EXPECT_EQ(back.signed_body(), msg.signed_body());
  AppendAckMsg changed = msg;
  changed.acks = 4;
  EXPECT_NE(changed.signed_body(), msg.signed_body());
}

TEST(WireMessages, ReadResponse) {
  ReadResponseMsg msg;
  msg.capsule = name_of(9);
  msg.ok = false;
  msg.error = "NOT_FOUND: nope";
  msg.proof = to_bytes("proofbytes");
  msg.heartbeat = to_bytes("hb");
  msg.nonce = 77;
  msg.auth.kind = ResponseAuth::Kind::kHmac;
  msg.auth.bytes = Bytes(32, 0x02);
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.error, msg.error);
  EXPECT_EQ(back.auth.bytes, msg.auth.bytes);
}

TEST(WireMessages, Publish) {
  PublishMsg msg;
  msg.capsule = name_of(10);
  msg.record = sample_record();
  msg.heartbeat = to_bytes("hb");
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.record, msg.record);
}

TEST(WireMessages, SyncPullPush) {
  SyncPullMsg pull;
  pull.capsule = name_of(11);
  pull.tip_seqno = 99;
  pull.holes = {name_of(12)};
  auto pull_back = round_trip_and_truncate(pull);
  EXPECT_EQ(pull_back.holes, pull.holes);

  SyncPushMsg push;
  push.capsule = name_of(11);
  push.records = {to_bytes("rec1"), to_bytes("rec2")};
  push.resume_cursor = 257;
  auto push_back = round_trip_and_truncate(push);
  EXPECT_EQ(push_back.records, push.records);
  EXPECT_EQ(push_back.resume_cursor, 257u);
}

TEST(WireMessages, SyncSummaryDescendRange) {
  SyncSummaryMsg summary;
  summary.capsule = name_of(21);
  summary.tip_seqno = 1'000'000;
  summary.tip_hash = name_of(22);
  summary.root_hash = name_of(23);
  auto summary_back = round_trip_and_truncate(summary);
  EXPECT_EQ(summary_back.tip_seqno, 1'000'000u);
  EXPECT_EQ(summary_back.tip_hash, summary.tip_hash);
  EXPECT_EQ(summary_back.root_hash, summary.root_hash);

  SyncDescendMsg descend;
  descend.capsule = name_of(21);
  descend.kind = SyncDescendMsg::kRequest;
  descend.tip_seqno = 777;
  descend.nodes = {TreeNode{1, 64, name_of(24)},
                   TreeNode{65, 128, name_of(25)}};
  auto descend_back = round_trip_and_truncate(descend);
  EXPECT_EQ(descend_back.kind, SyncDescendMsg::kRequest);
  EXPECT_EQ(descend_back.tip_seqno, 777u);
  EXPECT_EQ(descend_back.nodes, descend.nodes);

  // A kind byte outside {offer, request} is rejected.
  Bytes bad = descend.serialize();
  bad[Name::kSize] = 7;
  EXPECT_FALSE(SyncDescendMsg::deserialize(bad).ok());

  SyncRangeMsg range;
  range.capsule = name_of(21);
  range.ranges = {SyncRangeMsg::Range{1, 64}, SyncRangeMsg::Range{1025, 2048}};
  range.holes = {name_of(26)};
  range.cursor = 1500;
  auto range_back = round_trip_and_truncate(range);
  EXPECT_EQ(range_back.ranges, range.ranges);
  EXPECT_EQ(range_back.holes, range.holes);
  EXPECT_EQ(range_back.cursor, 1500u);
}

TEST(WireMessages, AdvertisementHandshake) {
  AdvertiseMsg ad;
  ad.principal = to_bytes("principal");
  ad.catalog_records = {to_bytes("ad1"), to_bytes("ad2"), to_bytes("ext")};
  auto ad_back = round_trip_and_truncate(ad);
  EXPECT_EQ(ad_back.catalog_records.size(), 3u);

  ChallengeMsg challenge;
  challenge.nonce = Bytes(32, 0xcc);
  auto c_back = round_trip_and_truncate(challenge);
  EXPECT_EQ(c_back.nonce, challenge.nonce);

  ChallengeReplyMsg reply;
  reply.principal = to_bytes("p");
  reply.nonce_sig = Bytes(64, 0x03);
  reply.rt_cert = to_bytes("rtcert");
  auto r_back = round_trip_and_truncate(reply);
  EXPECT_EQ(r_back.rt_cert, reply.rt_cert);

  AdvertiseOkMsg ok_msg;
  ok_msg.ok = true;
  ok_msg.accepted = 5;
  auto ok_back = round_trip_and_truncate(ok_msg);
  EXPECT_EQ(ok_back.accepted, 5u);
}

TEST(WireMessages, Lookup) {
  LookupMsg msg;
  msg.target = name_of(13);
  msg.querying_router = name_of(14);
  msg.nonce = 21;
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(back.target, name_of(13));
}

TEST(WireMessages, StatusCarriesErrc) {
  StatusMsg msg;
  msg.ok = false;
  msg.code = static_cast<std::uint16_t>(Errc::kPermissionDenied);
  msg.message = "no AdCert";
  msg.nonce = 2;
  auto back = round_trip_and_truncate(msg);
  EXPECT_EQ(static_cast<Errc>(back.code), Errc::kPermissionDenied);
}

// ---- Cancellable timers --------------------------------------------------------------

TEST(SimTimers, CancelledTimerNeitherFiresNorAdvancesClock) {
  net::Simulator sim;
  bool fired = false;
  auto timer = sim.schedule_cancellable(from_seconds(100), [&] { fired = true; });
  sim.schedule(from_millis(5), [] {});
  EXPECT_TRUE(timer.active());
  timer.cancel();
  EXPECT_FALSE(timer.active());
  sim.run();
  EXPECT_FALSE(fired);
  // The 100 s timer must not have dragged the clock forward.
  EXPECT_EQ(sim.now(), from_millis(5));
}

TEST(SimTimers, UncancelledTimerFires) {
  net::Simulator sim;
  bool fired = false;
  sim.schedule_cancellable(from_millis(3), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), from_millis(3));
}

TEST(SimTimers, CancelAfterFireIsHarmless) {
  net::Simulator sim;
  auto timer = sim.schedule_cancellable(from_millis(1), [] {});
  sim.run();
  timer.cancel();  // no-op
  SUCCEED();
}

TEST(SimTimers, MixedCancelledAndLiveEventsKeepOrder) {
  net::Simulator sim;
  std::vector<int> order;
  auto t1 = sim.schedule_cancellable(from_millis(1), [&] { order.push_back(1); });
  sim.schedule(from_millis(2), [&] { order.push_back(2); });
  auto t3 = sim.schedule_cancellable(from_millis(3), [&] { order.push_back(3); });
  t1.cancel();
  (void)t3;
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_EQ(sim.now(), from_millis(3));
}

}  // namespace
}  // namespace gdp::wire
