// Tests for the Figure-8 baselines: the S3-like blob store and the
// SSHFS-like block-windowed remote filesystem.
#include <gtest/gtest.h>

#include "baselines/blob.hpp"
#include "baselines/remotefs.hpp"
#include "baselines/tls_model.hpp"
#include "common/rng.hpp"

namespace gdp::baselines {
namespace {

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

struct Net {
  net::Simulator sim{7};
  net::Network net{sim};
};

TEST(Blob, PutGetRoundTrip) {
  Net n;
  BlobService service(n.net, name_of(1));
  BlobClient client(n.net, name_of(2));
  n.net.connect(name_of(1), name_of(2), net::LinkParams::wan(40));

  Rng rng(1);
  Bytes object = rng.next_bytes(100000);
  ASSERT_TRUE(client.put(service.name(), "model.bin", object).ok());
  EXPECT_EQ(service.object_count(), 1u);
  auto back = client.get(service.name(), "model.bin");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, object);
  EXPECT_FALSE(client.get(service.name(), "missing").ok());
}

TEST(Blob, TransferTimeIsBandwidthBound) {
  Net n;
  BlobService service(n.net, name_of(1));
  BlobClient client(n.net, name_of(2));
  // 10 Mbps up, 100 Mbps down, 10 ms one-way (residential).
  n.net.connect_asymmetric(name_of(2), name_of(1),
                           net::LinkParams::residential_up(),
                           net::LinkParams::residential_down());
  Rng rng(2);
  Bytes object = rng.next_bytes(1'000'000);  // 1 MB

  TimePoint start = n.sim.now();
  ASSERT_TRUE(client.put(service.name(), "o", object).ok());
  double put_s = to_seconds(n.sim.now() - start);
  EXPECT_NEAR(put_s, 8.0 / 10.0, 0.2);  // ~0.8 s upload at 10 Mbps

  start = n.sim.now();
  ASSERT_TRUE(client.get(service.name(), "o").ok());
  double get_s = to_seconds(n.sim.now() - start);
  EXPECT_NEAR(get_s, 8.0 / 100.0, 0.15);  // ~0.08 s download at 100 Mbps
  EXPECT_GT(put_s, get_s * 3);
}

TEST(RemoteFs, WriteReadRoundTrip) {
  Net n;
  RemoteFsService service(n.net, name_of(1));
  RemoteFsClient client(n.net, name_of(2));
  n.net.connect(name_of(1), name_of(2), net::LinkParams::wan(20));

  Rng rng(3);
  Bytes content = rng.next_bytes(200'000);  // ~7 blocks of 32 kB
  ASSERT_TRUE(client.write_file(service.name(), "/m/model", content).ok());
  auto back = client.read_file(service.name(), "/m/model");
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, content);
  EXPECT_FALSE(client.read_file(service.name(), "/nope").ok());
}

TEST(RemoteFs, EmptyFile) {
  Net n;
  RemoteFsService service(n.net, name_of(1));
  RemoteFsClient client(n.net, name_of(2));
  n.net.connect(name_of(1), name_of(2), net::LinkParams::lan());
  ASSERT_TRUE(client.write_file(service.name(), "/empty", Bytes{}).ok());
  auto back = client.read_file(service.name(), "/empty");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(RemoteFs, WindowLimitsThroughputOnHighRtt) {
  // With a bounded window, halving the window should roughly halve
  // throughput once the transfer is RTT-bound (the SSHFS signature).
  Rng rng(4);
  Bytes content = rng.next_bytes(2'000'000);

  auto run = [&](std::size_t window) {
    Net n;
    RemoteFsService service(n.net, name_of(1));
    RemoteFsClient::Options opts;
    opts.window = window;
    RemoteFsClient client(n.net, name_of(2), opts);
    // High RTT, high bandwidth: BDP >> window * block.
    n.net.connect(name_of(1), name_of(2), net::LinkParams{from_millis(50), 1e9, 0.0});
    EXPECT_TRUE(client.write_file(service.name(), "/f", content).ok());
    TimePoint start = n.sim.now();
    EXPECT_TRUE(client.read_file(service.name(), "/f").ok());
    return to_seconds(n.sim.now() - start);
  };
  double t_w4 = run(4);
  double t_w16 = run(16);
  EXPECT_GT(t_w4, 2.5 * t_w16);
}

TEST(TlsModel, OverheadConstantsSane) {
  EXPECT_EQ(TlsModel::kPerRecordOverhead, 22u);
  EXPECT_GT(TlsModel::kHandshakeBytes, 3000u);
}

}  // namespace
}  // namespace gdp::baselines
