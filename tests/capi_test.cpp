// Tests for the C client API facade — exercised strictly through the
// extern "C" surface, the way an embedding application (or the Python /
// Java bindings the paper mentions) would use it.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "capi/gdp.h"

namespace {

struct WorldGuard {
  gdp_world* world;
  explicit WorldGuard(uint64_t seed) : world(gdp_world_create(seed)) {}
  ~WorldGuard() { gdp_world_destroy(world); }
};

struct CapsuleGuard {
  gdp_capsule* capsule;
  CapsuleGuard(gdp_world* w, const char* label)
      : capsule(gdp_capsule_create(w, label)) {}
  ~CapsuleGuard() { gdp_capsule_destroy(capsule); }
};

TEST(CApi, WorldAndCapsuleLifecycle) {
  WorldGuard w(1);
  ASSERT_NE(w.world, nullptr);
  CapsuleGuard c(w.world, "capi-capsule");
  ASSERT_NE(c.capsule, nullptr);

  uint8_t name[32] = {0};
  gdp_capsule_name(c.capsule, name);
  bool nonzero = false;
  for (uint8_t b : name) nonzero |= (b != 0);
  EXPECT_TRUE(nonzero);
}

TEST(CApi, AppendReadRoundTrip) {
  WorldGuard w(2);
  ASSERT_NE(w.world, nullptr);
  CapsuleGuard c(w.world, "rw");
  ASSERT_NE(c.capsule, nullptr);

  const char* message = "hello from C";
  uint64_t seqno = 0;
  ASSERT_EQ(gdp_append(w.world, c.capsule,
                       reinterpret_cast<const uint8_t*>(message),
                       std::strlen(message), &seqno),
            GDP_OK);
  EXPECT_EQ(seqno, 1u);

  uint8_t* data = nullptr;
  size_t len = 0;
  uint64_t got_seqno = 0;
  ASSERT_EQ(gdp_read(w.world, c.capsule, 1, &data, &len, &got_seqno), GDP_OK);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(data), len), message);
  EXPECT_EQ(got_seqno, 1u);
  gdp_buffer_free(data);

  // seqno 0 = latest.
  ASSERT_EQ(gdp_append(w.world, c.capsule,
                       reinterpret_cast<const uint8_t*>("second"), 6, nullptr),
            GDP_OK);
  ASSERT_EQ(gdp_read(w.world, c.capsule, 0, &data, &len, &got_seqno), GDP_OK);
  EXPECT_EQ(got_seqno, 2u);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(data), len), "second");
  gdp_buffer_free(data);

  EXPECT_EQ(gdp_tip(w.world, c.capsule), 2u);
}

TEST(CApi, ErrorsSurfaceCleanly) {
  WorldGuard w(3);
  ASSERT_NE(w.world, nullptr);
  CapsuleGuard c(w.world, "errs");
  ASSERT_NE(c.capsule, nullptr);

  uint8_t* data = nullptr;
  size_t len = 0;
  // Reading an empty capsule fails with NOT_FOUND-ish code + message.
  int rc = gdp_read(w.world, c.capsule, 1, &data, &len, nullptr);
  EXPECT_NE(rc, GDP_OK);
  EXPECT_NE(std::strlen(gdp_last_error(w.world)), 0u);
  // Invalid arguments.
  EXPECT_EQ(gdp_append(nullptr, c.capsule, nullptr, 0, nullptr), GDP_ERR_INVALID);
  EXPECT_EQ(gdp_read(w.world, c.capsule, 1, nullptr, &len, nullptr),
            GDP_ERR_INVALID);
  EXPECT_EQ(gdp_tip(nullptr, nullptr), 0u);
}

TEST(CApi, StatusNamesCoverEveryCode) {
  // Every status in the canonical table has a stable token; unknown codes
  // degrade gracefully instead of returning NULL.
  EXPECT_STREQ(gdp_status_name(GDP_OK), "GDP_OK");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_INVALID), "GDP_ERR_INVALID");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_UNAVAILABLE), "GDP_ERR_UNAVAILABLE");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_VERIFY), "GDP_ERR_VERIFY");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_NOT_FOUND), "GDP_ERR_NOT_FOUND");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_INTERNAL), "GDP_ERR_INTERNAL");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_EXISTS), "GDP_ERR_EXISTS");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_PERMISSION), "GDP_ERR_PERMISSION");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_OUT_OF_RANGE), "GDP_ERR_OUT_OF_RANGE");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_CORRUPT), "GDP_ERR_CORRUPT");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_PRECONDITION), "GDP_ERR_PRECONDITION");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_EXPIRED), "GDP_ERR_EXPIRED");
  EXPECT_STREQ(gdp_status_name(GDP_ERR_TIMEOUT), "GDP_ERR_TIMEOUT");
  EXPECT_STREQ(gdp_status_name(42), "GDP_ERR_UNKNOWN");
}

TEST(CApi, SubscriptionDeliversThroughRun) {
  WorldGuard w(4);
  ASSERT_NE(w.world, nullptr);
  CapsuleGuard c(w.world, "feed");
  ASSERT_NE(c.capsule, nullptr);

  struct Collected {
    std::vector<std::pair<uint64_t, std::string>> events;
  } collected;
  ASSERT_EQ(gdp_subscribe(
                w.world, c.capsule,
                [](uint64_t seqno, const uint8_t* data, size_t len, void* user) {
                  auto* out = static_cast<Collected*>(user);
                  out->events.emplace_back(
                      seqno, std::string(reinterpret_cast<const char*>(data), len));
                },
                &collected),
            GDP_OK);

  for (int i = 0; i < 3; ++i) {
    std::string payload = "evt" + std::to_string(i);
    ASSERT_EQ(gdp_append(w.world, c.capsule,
                         reinterpret_cast<const uint8_t*>(payload.data()),
                         payload.size(), nullptr),
              GDP_OK);
  }
  gdp_run(w.world, 1.0);
  ASSERT_EQ(collected.events.size(), 3u);
  EXPECT_EQ(collected.events[0], (std::pair<uint64_t, std::string>{1, "evt0"}));
  EXPECT_EQ(collected.events[2], (std::pair<uint64_t, std::string>{3, "evt2"}));
}

TEST(CApi, EmptyPayloadAppend) {
  WorldGuard w(5);
  ASSERT_NE(w.world, nullptr);
  CapsuleGuard c(w.world, "empty");
  ASSERT_NE(c.capsule, nullptr);
  ASSERT_EQ(gdp_append(w.world, c.capsule, nullptr, 0, nullptr), GDP_OK);
  uint8_t* data = nullptr;
  size_t len = 123;
  ASSERT_EQ(gdp_read(w.world, c.capsule, 1, &data, &len, nullptr), GDP_OK);
  EXPECT_EQ(len, 0u);
  gdp_buffer_free(data);
}

}  // namespace
