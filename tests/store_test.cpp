// Tests for the storage engine: CRC framing, the segmented log with crash
// recovery, and capsule-level persistent storage with on-disk-tamper
// detection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"
#include "store/capsule_store.hpp"
#include "store/crc32.hpp"
#include "store/logstore.hpp"
#include "trust/cert.hpp"

namespace gdp::store {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            ("gdp-store-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(Crc32, KnownVector) {
  // Standard check value for "123456789".
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(Crc32, DetectsBitFlip) {
  Bytes data = to_bytes("the record payload");
  std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(crc32(mutated), base);
  }
}

TEST(LogStore, AppendAndRead) {
  TempDir dir;
  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok()) << log.error().to_string();
  auto id0 = log->append(to_bytes("first"));
  auto id1 = log->append(to_bytes("second"));
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0u);
  EXPECT_EQ(*id1, 1u);
  EXPECT_EQ(to_string(*log->read(0)), "first");
  EXPECT_EQ(to_string(*log->read(1)), "second");
  EXPECT_EQ(log->read(2).code(), Errc::kOutOfRange);
  EXPECT_EQ(log->entry_count(), 2u);
}

TEST(LogStore, PersistsAcrossReopen) {
  TempDir dir;
  {
    auto log = LogStore::open(dir.path());
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(log->append(to_bytes("entry-" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(log->sync().ok());
  }
  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->entry_count(), 100u);
  EXPECT_EQ(to_string(*log->read(42)), "entry-42");
  // And it keeps appending where it left off.
  ASSERT_TRUE(log->append(to_bytes("entry-100")).ok());
  EXPECT_EQ(to_string(*log->read(100)), "entry-100");
}

TEST(LogStore, SegmentsRoll) {
  TempDir dir;
  LogStore::Options opts;
  opts.segment_bytes = 256;  // tiny segments to force rolling
  auto log = LogStore::open(dir.path(), opts);
  ASSERT_TRUE(log.ok());
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(log->append(rng.next_bytes(64)).ok());
  }
  ASSERT_TRUE(log->sync().ok());
  int segments = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++segments;
  }
  EXPECT_GT(segments, 5);

  auto reopened = LogStore::open(dir.path(), opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->entry_count(), 50u);
}

TEST(LogStore, TornTailTruncatedOnRecovery) {
  TempDir dir;
  {
    auto log = LogStore::open(dir.path());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->append(to_bytes("good-entry")).ok());
    ASSERT_TRUE(log->append(to_bytes("doomed-entry")).ok());
    ASSERT_TRUE(log->sync().ok());
  }
  // Simulate a crash mid-write: chop bytes off the tail.
  fs::path seg = dir.path() / "seg-000000.log";
  fs::resize_file(seg, fs::file_size(seg) - 5);

  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->entry_count(), 1u);
  EXPECT_EQ(to_string(*log->read(0)), "good-entry");
  // Appends continue cleanly after truncation.
  ASSERT_TRUE(log->append(to_bytes("new-entry")).ok());
  EXPECT_EQ(to_string(*log->read(1)), "new-entry");
}

TEST(LogStore, CorruptEntryStopsRecovery) {
  TempDir dir;
  {
    auto log = LogStore::open(dir.path());
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->append(to_bytes("entry-0")).ok());
    ASSERT_TRUE(log->append(to_bytes("entry-1")).ok());
    ASSERT_TRUE(log->sync().ok());
  }
  // Flip a payload byte of the second entry (offset: 8+7 header+payload,
  // then 8 header => byte 8+7+8 = 23 is inside entry-1's payload).
  fs::path seg = dir.path() / "seg-000000.log";
  std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(23);
  f.put('X');
  f.close();

  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->entry_count(), 1u);
}

TEST(LogStore, ForEachVisitsAll) {
  TempDir dir;
  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(log->append(Bytes(3, std::uint8_t(i))).ok());
  int visited = 0;
  ASSERT_TRUE(log
                  ->for_each([&](std::uint64_t id, BytesView entry) -> Status {
                    EXPECT_EQ(entry.size(), 3u);
                    EXPECT_EQ(entry[0], id);
                    ++visited;
                    return ok_status();
                  })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST(LogStore, EmptyEntriesSupported) {
  TempDir dir;
  auto log = LogStore::open(dir.path());
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(log->append(Bytes{}).ok());
  EXPECT_EQ(log->read(0)->size(), 0u);
}

// ---- CapsuleStore ----------------------------------------------------------------

struct CapsuleFixture {
  Rng rng{321};
  crypto::PrivateKey owner = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey writer_key = crypto::PrivateKey::generate(rng);
  crypto::PrivateKey server_key = crypto::PrivateKey::generate(rng);
  trust::Principal server =
      trust::Principal::create(server_key, trust::Role::kCapsuleServer, "srv");
  capsule::Metadata metadata = [&] {
    auto m = capsule::Metadata::create(owner, writer_key.public_key(),
                                       capsule::WriterMode::kStrictSingleWriter,
                                       "stored-capsule", 0);
    EXPECT_TRUE(m.ok());
    return std::move(m).value();
  }();
  trust::ServingDelegation delegation = [&] {
    trust::ServingDelegation d;
    d.ad_cert = trust::make_ad_cert(owner, owner.public_key().fingerprint(),
                                    metadata.name(), server.name(),
                                    from_seconds(0), from_seconds(1e6));
    return d;
  }();
  capsule::Writer writer{metadata, writer_key, capsule::make_chain_strategy()};
};

TEST(CapsuleStore, CreateIngestReopen) {
  TempDir dir;
  CapsuleFixture f;
  std::vector<capsule::Record> records;
  Name root_before;
  {
    auto cs = CapsuleStore::create(dir.path(), f.metadata, f.delegation);
    ASSERT_TRUE(cs.ok()) << cs.error().to_string();
    for (int i = 0; i < 20; ++i) {
      records.push_back(f.writer.append(to_bytes("r" + std::to_string(i)), i));
      ASSERT_TRUE(cs->ingest(records.back()).ok());
    }
    ASSERT_TRUE(cs->sync().ok());
    EXPECT_EQ(cs->state().size(), 20u);
    root_before = cs->tree_root();
  }
  auto cs = CapsuleStore::open(dir.path());
  ASSERT_TRUE(cs.ok()) << cs.error().to_string();
  EXPECT_EQ(cs->state().size(), 20u);
  EXPECT_EQ(cs->corrupt_dropped(), 0u);
  EXPECT_EQ(cs->state().tip_hash(), records.back().hash());
  EXPECT_EQ(cs->metadata().name(), f.metadata.name());
  // The replayed Merkle summary lands on the identical root: a restarted
  // replica answers anti-entropy probes from the same tree.
  EXPECT_EQ(cs->tree_root(), root_before);
}

TEST(CapsuleStore, DuplicateIngestNotPersistedTwice) {
  TempDir dir;
  CapsuleFixture f;
  auto cs = CapsuleStore::create(dir.path(), f.metadata, f.delegation);
  ASSERT_TRUE(cs.ok());
  capsule::Record r = f.writer.append(to_bytes("once"), 0);
  ASSERT_TRUE(cs->ingest(r).ok());
  ASSERT_TRUE(cs->ingest(r).ok());
  ASSERT_TRUE(cs->sync().ok());
  auto reopened = CapsuleStore::open(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->state().size(), 1u);
}

TEST(CapsuleStore, DetachedRecordsPersistAsHoles) {
  TempDir dir;
  CapsuleFixture f;
  capsule::Record r1 = f.writer.append(to_bytes("one"), 1);
  capsule::Record r2 = f.writer.append(to_bytes("two"), 2);
  {
    auto cs = CapsuleStore::create(dir.path(), f.metadata, f.delegation);
    ASSERT_TRUE(cs.ok());
    ASSERT_TRUE(cs->ingest(r2).ok());  // r1 missing: held detached
    ASSERT_TRUE(cs->sync().ok());
  }
  auto cs = CapsuleStore::open(dir.path());
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->state().size(), 0u);
  EXPECT_EQ(cs->state().holes().size(), 1u);
  ASSERT_TRUE(cs->ingest(r1).ok());  // repair
  EXPECT_EQ(cs->state().size(), 2u);
}

TEST(CapsuleStore, OnDiskTamperDetectedAtReopen) {
  TempDir dir;
  CapsuleFixture f;
  {
    auto cs = CapsuleStore::create(dir.path(), f.metadata, f.delegation);
    ASSERT_TRUE(cs.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cs->ingest(f.writer.append(to_bytes("payload"), i)).ok());
    }
    ASSERT_TRUE(cs->sync().ok());
  }
  // A malicious server edits a stored payload byte but keeps the CRC
  // consistent by rewriting the frame (worst case).  Simulate by flipping
  // a byte and fixing nothing — the CRC catches casual corruption; the
  // capsule validation catches deliberate tampering.  Here: flip one byte
  // deep in the file.
  fs::path seg = dir.path() / "seg-000000.log";
  auto size = fs::file_size(seg);
  std::fstream file(seg, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(size - 20));
  char c;
  file.seekg(static_cast<std::streamoff>(size - 20));
  file.get(c);
  file.seekp(static_cast<std::streamoff>(size - 20));
  file.put(static_cast<char>(c ^ 0x01));
  file.close();

  auto cs = CapsuleStore::open(dir.path());
  ASSERT_TRUE(cs.ok());
  // The tampered tail entry is dropped — by the CRC framing (which
  // truncates recovery at the corrupt frame) or, had the CRC been
  // recomputed by the attacker, by capsule validation (corrupt_dropped).
  // Either way the poisoned record never reaches the validated state.
  EXPECT_LT(cs->state().size(), 5u);
  EXPECT_GE(cs->state().size(), 1u);
  EXPECT_EQ(cs->state().detached_count(), 0u);
}

TEST(CapsuleStore, MaliciousRewriteWithFixedCrcCaughtByValidation) {
  // A malicious server rewrites a stored record AND recomputes the CRC so
  // the framing layer is happy; capsule validation must still reject it.
  TempDir dir;
  CapsuleFixture f;
  capsule::Record r1 = f.writer.append(to_bytes("sensitive-A"), 1);
  {
    auto cs = CapsuleStore::create(dir.path(), f.metadata, f.delegation);
    ASSERT_TRUE(cs.ok());
    ASSERT_TRUE(cs->ingest(r1).ok());
    ASSERT_TRUE(cs->sync().ok());
  }
  // Rebuild the record entry with a forged payload and a valid CRC.
  capsule::Record forged = r1;
  forged.payload = to_bytes("sensitive-B");
  forged.header.payload_hash = crypto::sha256(forged.payload);
  // (No writer key, so the signature cannot be fixed up — the whole point.)
  Bytes entry{std::uint8_t{3}};  // kTagRecord
  append(entry, forged.serialize());

  // Overwrite the third log entry by rewriting the file from scratch.
  auto log = LogStore::open(dir.path() / "rewrite-tmp");
  ASSERT_TRUE(log.ok());
  {
    auto orig = LogStore::open(dir.path());
    ASSERT_TRUE(orig.ok());
    ASSERT_TRUE(log->append(*orig->read(0)).ok());  // metadata
    ASSERT_TRUE(log->append(*orig->read(1)).ok());  // delegation
    ASSERT_TRUE(log->append(entry).ok());           // forged record
    ASSERT_TRUE(log->sync().ok());
  }
  fs::remove(dir.path() / "seg-000000.log");
  fs::copy(dir.path() / "rewrite-tmp" / "seg-000000.log",
           dir.path() / "seg-000000.log");

  auto cs = CapsuleStore::open(dir.path());
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->state().size(), 0u);
  EXPECT_EQ(cs->corrupt_dropped(), 1u);  // forged record rejected by signature
}

TEST(CapsuleStore, CreateTwiceFails) {
  TempDir dir;
  CapsuleFixture f;
  ASSERT_TRUE(CapsuleStore::create(dir.path(), f.metadata, f.delegation).ok());
  EXPECT_EQ(CapsuleStore::create(dir.path(), f.metadata, f.delegation).code(),
            Errc::kAlreadyExists);
}

TEST(ServerStore, HostAndFind) {
  TempDir dir;
  CapsuleFixture f;
  auto ss = ServerStore::open(dir.path());
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(ss->host(f.metadata, f.delegation).ok());
  EXPECT_TRUE(ss->hosts(f.metadata.name()));
  ASSERT_NE(ss->find(f.metadata.name()), nullptr);
  EXPECT_EQ(ss->find(Name{}), nullptr);
  EXPECT_EQ(ss->hosted().size(), 1u);
  // host() is idempotent.
  ASSERT_TRUE(ss->host(f.metadata, f.delegation).ok());
  EXPECT_EQ(ss->hosted().size(), 1u);
}

// Crash-point sweep: truncate the log at every possible byte boundary and
// verify recovery yields exactly the longest intact prefix of entries.
class CrashPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointSweep, RecoveryYieldsLongestIntactPrefix) {
  TempDir dir;
  constexpr int kEntries = 8;
  std::vector<Bytes> entries;
  std::vector<std::uint64_t> boundaries;  // cumulative file offsets
  {
    auto log = LogStore::open(dir.path());
    ASSERT_TRUE(log.ok());
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::uint64_t offset = 0;
    for (int i = 0; i < kEntries; ++i) {
      entries.push_back(rng.next_bytes(1 + rng.next_below(40)));
      ASSERT_TRUE(log->append(entries.back()).ok());
      offset += 8 + entries.back().size();  // frame header + payload
      boundaries.push_back(offset);
    }
    ASSERT_TRUE(log->sync().ok());
  }
  fs::path seg = dir.path() / "seg-000000.log";
  const std::uint64_t file_size = fs::file_size(seg);
  ASSERT_EQ(file_size, boundaries.back());

  // Sweep crash points: step through the file in odd strides.
  for (std::uint64_t crash = 0; crash <= file_size; crash += 7) {
    TempDir copy_dir;
    fs::copy(seg, copy_dir.path() / "seg-000000.log");
    fs::resize_file(copy_dir.path() / "seg-000000.log", crash);

    auto recovered = LogStore::open(copy_dir.path());
    ASSERT_TRUE(recovered.ok()) << "crash at " << crash;
    // Expected surviving entries: those fully within [0, crash).
    std::size_t expected = 0;
    while (expected < boundaries.size() && boundaries[expected] <= crash) {
      ++expected;
    }
    ASSERT_EQ(recovered->entry_count(), expected) << "crash at " << crash;
    for (std::size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(*recovered->read(i), entries[i]);
    }
    // And the recovered log accepts new appends cleanly.
    ASSERT_TRUE(recovered->append(to_bytes("post-crash")).ok());
    EXPECT_EQ(to_string(*recovered->read(expected)), "post-crash");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointSweep, ::testing::Values(1, 2, 3));

TEST(ServerStore, ReopensHostedCapsules) {
  TempDir dir;
  CapsuleFixture f;
  {
    auto ss = ServerStore::open(dir.path());
    ASSERT_TRUE(ss.ok());
    ASSERT_TRUE(ss->host(f.metadata, f.delegation).ok());
    auto* cs = ss->find(f.metadata.name());
    ASSERT_NE(cs, nullptr);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(cs->ingest(f.writer.append(to_bytes("x"), i)).ok());
    }
    ASSERT_TRUE(cs->sync().ok());
  }
  auto ss = ServerStore::open(dir.path());
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(ss->hosts(f.metadata.name()));
  EXPECT_EQ(ss->find(f.metadata.name())->state().size(), 3u);
}

}  // namespace
}  // namespace gdp::store
