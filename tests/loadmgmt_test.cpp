// Production load management: outlier-ejection health tracking, token-
// bucket retry budgets, power-of-two-choices selection, watermark shedding
// by drop priority, the seeded zipf workload generator, and the end-to-end
// chaos scenario where a degraded replica is detected through load reports
// and traffic drains to its healthy peers — byte-identically across reruns.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/zipf.hpp"
#include "loadmgmt/health.hpp"
#include "loadmgmt/overload.hpp"
#include "loadmgmt/retry_budget.hpp"
#include "loadmgmt/selector.hpp"
#include "router/dataplane.hpp"
#include "wire/messages.hpp"
#include "wire/pdu_view.hpp"

namespace gdp {
namespace {

using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;
using harness::ZipfGenerator;
using loadmgmt::DropPriority;
using loadmgmt::HealthConfig;
using loadmgmt::HealthState;
using loadmgmt::HealthTracker;
using loadmgmt::OverloadConfig;
using loadmgmt::OverloadManager;
using loadmgmt::RetryBudget;
using loadmgmt::RetryBudgetConfig;

Name name_of(std::uint8_t tag) {
  Bytes raw(32, tag);
  return *Name::from_bytes(raw);
}

// ---- Health: outlier-ejection state machine -------------------------------

TEST(Health, EjectsAfterConsecutiveFailuresAndReadmitsThroughProbation) {
  HealthConfig cfg;
  cfg.eject_after_failures = 3;
  cfg.ejection_window = from_millis(100);
  cfg.probation_successes = 2;
  HealthTracker h(cfg);
  const Name t = name_of(0x01);

  std::int64_t now = 0;
  EXPECT_EQ(h.state(t, now), HealthState::kHealthy);
  h.record_failure(t, now);
  h.record_failure(t, now);
  EXPECT_EQ(h.state(t, now), HealthState::kHealthy);  // 2 < 3
  // A success resets the consecutive count: failures must be consecutive.
  h.record_success(t, now, 0);
  h.record_failure(t, now);
  h.record_failure(t, now);
  EXPECT_EQ(h.state(t, now), HealthState::kHealthy);
  h.record_failure(t, now);
  EXPECT_EQ(h.state(t, now), HealthState::kEjected);
  EXPECT_EQ(h.ejections(), 1u);
  EXPECT_TRUE(h.ejected(t, now + cfg.ejection_window.count() - 1));

  // Window elapses: probation, then the configured successes re-admit.
  now += cfg.ejection_window.count();
  EXPECT_EQ(h.state(t, now), HealthState::kProbation);
  h.record_success(t, now, 0);
  EXPECT_EQ(h.state(t, now), HealthState::kProbation);
  h.record_success(t, now, 0);
  EXPECT_EQ(h.state(t, now), HealthState::kHealthy);
  EXPECT_EQ(h.readmissions(), 1u);
}

TEST(Health, ProbationFailureReEjectsWithDoubledWindowUpToCap) {
  HealthConfig cfg;
  cfg.eject_after_failures = 1;  // every failure ejects immediately
  cfg.ejection_window = from_millis(100);
  cfg.max_window_doublings = 2;
  HealthTracker h(cfg);
  const Name t = name_of(0x02);

  std::int64_t now = 0;
  h.record_failure(t, now);  // ejection #1: window 100ms
  EXPECT_TRUE(h.ejected(t, now + 99 * 1000000));
  now += 100 * 1000000;
  EXPECT_EQ(h.state(t, now), HealthState::kProbation);

  h.record_failure(t, now);  // ejection #2: window 200ms
  EXPECT_TRUE(h.ejected(t, now + 199 * 1000000));
  now += 200 * 1000000;
  EXPECT_EQ(h.state(t, now), HealthState::kProbation);

  h.record_failure(t, now);  // ejection #3: window 400ms
  now += 400 * 1000000;
  EXPECT_EQ(h.state(t, now), HealthState::kProbation);

  h.record_failure(t, now);  // ejection #4: capped at 2 doublings -> 400ms
  EXPECT_TRUE(h.ejected(t, now + 399 * 1000000));
  EXPECT_FALSE(h.ejected(t, now + 400 * 1000000));
  EXPECT_EQ(h.ejections(), 4u);
}

TEST(Health, ScoreWeighsLatencyTrustAndProbation) {
  HealthTracker h;
  const Name fast = name_of(0x03);
  const Name slow = name_of(0x04);
  const Name shady = name_of(0x05);

  // No signals at all: score is just the static base cost.
  EXPECT_DOUBLE_EQ(h.score(fast, 0, 1000), 1000.0);

  // Observed latency adds to the base.
  h.record_success(slow, 0, 5000);
  EXPECT_GT(h.score(slow, 0, 1000), h.score(fast, 0, 1000));

  // A shallower trust score (longer delegation chain) divides: the same
  // latency looks "farther away" from a less-trusted replica.
  h.set_trust(shady, 0.5);
  EXPECT_DOUBLE_EQ(h.score(shady, 0, 1000), 2000.0);

  // Probation doubles the score so recovering replicas re-fill gradually.
  HealthConfig cfg;
  cfg.eject_after_failures = 1;
  cfg.ejection_window = from_millis(1);
  HealthTracker h2(cfg);
  const Name p = name_of(0x06);
  h2.record_failure(p, 0);
  const std::int64_t later = 2 * 1000000;
  ASSERT_EQ(h2.state(p, later), HealthState::kProbation);
  EXPECT_DOUBLE_EQ(h2.score(p, later, 1000), 2000.0);
}

// ---- Retry budget ---------------------------------------------------------

TEST(RetryBudget, ExhaustsStartingBalanceThenRefillsFromFreshTraffic) {
  RetryBudgetConfig cfg;
  cfg.ratio = 0.2;
  cfg.min_tokens = 3.0;
  cfg.max_tokens = 10.0;
  RetryBudget b(cfg);

  // The starting balance is spendable but NOT a refill: once it is gone,
  // only fresh requests earn more.
  EXPECT_TRUE(b.try_retry());
  EXPECT_TRUE(b.try_retry());
  EXPECT_TRUE(b.try_retry());
  EXPECT_FALSE(b.try_retry());
  EXPECT_EQ(b.granted(), 3u);
  EXPECT_EQ(b.denied(), 1u);

  // Five fresh requests at ratio 0.2 earn exactly one retry.
  for (int i = 0; i < 5; ++i) b.on_request();
  EXPECT_TRUE(b.try_retry());
  EXPECT_FALSE(b.try_retry());
  EXPECT_EQ(b.requests(), 5u);

  // The cap bounds how much a quiet burst can bank.
  for (int i = 0; i < 1000; ++i) b.on_request();
  EXPECT_LE(b.tokens(), cfg.max_tokens);
}

// ---- Power-of-two-choices -------------------------------------------------

TEST(Selector, PowerOfTwoIsDeterministicAndPrefersLowScores) {
  const std::vector<double> scores = {0.0, 1.0, 2.0};
  Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(loadmgmt::pick_power_of_two(scores, a),
              loadmgmt::pick_power_of_two(scores, b));
  }

  Rng rng(11);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    counts[loadmgmt::pick_power_of_two(scores, rng)] += 1;
  }
  // Every draw pairs two distinct ranks and keeps the better: the worst
  // rank can never win, and the best wins 2/3 of pairs.
  EXPECT_EQ(counts[2], 0);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], 0);

  Rng r2(3);
  EXPECT_EQ(loadmgmt::pick_power_of_two({}, r2), static_cast<std::size_t>(-1));
  const std::uint64_t before = r2.next_u64();
  Rng r3(3);
  EXPECT_EQ(loadmgmt::pick_power_of_two({5.0}, r3), 0u);
  // Single candidate consumed no draws: the streams stay aligned.
  EXPECT_EQ(r3.next_u64(), before);
}

// ---- Zipf workload generator ----------------------------------------------

TEST(Zipf, SeededDrawsAreByteIdentical) {
  ZipfGenerator z(64, 1.0);
  Rng a(99), b(99);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(z.next(a), z.next(b)) << "diverged at draw " << i;
  }
  // Probabilities are a proper distribution, monotone decreasing in rank.
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) {
    total += z.probability(k);
    if (k > 0) {
      EXPECT_LT(z.probability(k), z.probability(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ChiSquaredShapeMatchesTheoreticalDistribution) {
  constexpr std::size_t kRanks = 16;
  constexpr int kDraws = 20000;
  ZipfGenerator z(kRanks, 1.0);
  Rng rng(12345);
  std::vector<int> observed(kRanks, 0);
  for (int i = 0; i < kDraws; ++i) observed[z.next(rng)] += 1;

  double chi2 = 0.0;
  for (std::size_t k = 0; k < kRanks; ++k) {
    const double expected = z.probability(k) * kDraws;
    ASSERT_GT(expected, 5.0);  // chi-squared validity condition
    const double d = observed[k] - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom: critical value 37.70 at p = 0.001.  A correct
  // sampler fails this with probability 1e-3 — and deterministically
  // never, since the seed is fixed.
  EXPECT_LT(chi2, 37.70) << "zipf sample shape diverges from theory";
  // The hot rank really is hot: rank 0 alone draws ~30% at s=1, n=16.
  EXPECT_GT(observed[0], kDraws / 5);
}

// ---- Overload manager -----------------------------------------------------

TEST(Overload, WatermarkLevelsEngageAndReleaseWithHysteresis) {
  OverloadConfig cfg;
  cfg.bench_watermark = 4;
  cfg.read_watermark = 8;
  cfg.write_watermark = 16;
  OverloadManager m(cfg);

  EXPECT_EQ(m.shed_level(), 0);
  m.update(3);
  EXPECT_EQ(m.shed_level(), 0);
  m.update(4);
  EXPECT_EQ(m.shed_level(), 1);  // bench watermark engaged
  m.update(2);
  EXPECT_EQ(m.shed_level(), 1);  // holds down to half the mark
  m.update(1);
  EXPECT_EQ(m.shed_level(), 0);  // released below mark/2
  m.update(8);
  EXPECT_EQ(m.shed_level(), 2);
  m.update(4);
  EXPECT_EQ(m.shed_level(), 2);  // hysteresis at the read level too
  m.update(3);
  EXPECT_EQ(m.shed_level(), 1);  // steps down one band: bench still holds
  m.update(1);
  EXPECT_EQ(m.shed_level(), 0);
  m.update(16);
  EXPECT_EQ(m.shed_level(), 3);
  EXPECT_EQ(m.high_water(), 16u);
}

TEST(Overload, AdmissionShedsByPriorityAndNeverShedsCritical) {
  OverloadConfig cfg;
  cfg.bench_watermark = 2;
  cfg.read_watermark = 4;
  cfg.write_watermark = 8;
  OverloadManager m(cfg);

  m.update(8);  // level 3: everything sheddable sheds
  EXPECT_FALSE(m.admit(DropPriority::kBench));
  EXPECT_FALSE(m.admit(DropPriority::kRead));
  EXPECT_FALSE(m.admit(DropPriority::kWrite));
  EXPECT_TRUE(m.admit(DropPriority::kCritical));

  m.update(3);  // below write/2: level 2, writes admitted again
  EXPECT_EQ(m.shed_level(), 2);
  EXPECT_FALSE(m.admit(DropPriority::kBench));
  EXPECT_FALSE(m.admit(DropPriority::kRead));
  EXPECT_TRUE(m.admit(DropPriority::kWrite));

  m.update(0);
  m.update(2);  // level 1: only bench sheds
  EXPECT_FALSE(m.admit(DropPriority::kBench));
  EXPECT_TRUE(m.admit(DropPriority::kRead));

  // Every denial is tallied by priority; critical is never denied.
  EXPECT_EQ(m.shed_count(DropPriority::kBench), 3u);
  EXPECT_EQ(m.shed_count(DropPriority::kRead), 2u);
  EXPECT_EQ(m.shed_count(DropPriority::kWrite), 1u);
  EXPECT_EQ(m.shed_count(DropPriority::kCritical), 0u);
  EXPECT_EQ(m.shed_total(), 6u);
}

// ---- Wire format ----------------------------------------------------------

TEST(Wire, LookupReplyAlternatesRoundTripAndRejectTruncation) {
  wire::LookupReplyMsg msg;
  msg.found = true;
  msg.target = name_of(0x10);
  msg.attachment_router = name_of(0x11);
  msg.next_hop = name_of(0x12);
  msg.cost_us = 1500;
  msg.nonce = 77;
  msg.expires_ns = 123456789;
  msg.evidence = to_bytes("ev0");
  msg.principal = to_bytes("pr0");
  for (int i = 0; i < 2; ++i) {
    wire::LookupReplyMsg::ReplicaOption opt;
    opt.attachment_router = name_of(static_cast<std::uint8_t>(0x20 + i));
    opt.next_hop = name_of(static_cast<std::uint8_t>(0x30 + i));
    opt.cost_us = 2000 + i;
    opt.expires_ns = 999 + i;
    opt.evidence = to_bytes("ev" + std::to_string(i + 1));
    opt.principal = to_bytes("pr" + std::to_string(i + 1));
    msg.alternates.push_back(opt);
  }

  const Bytes wire_bytes = msg.serialize();
  auto rt = wire::LookupReplyMsg::deserialize(wire_bytes);
  ASSERT_TRUE(rt.ok());
  ASSERT_EQ(rt->alternates.size(), 2u);
  EXPECT_EQ(rt->alternates[0].attachment_router, msg.alternates[0].attachment_router);
  EXPECT_EQ(rt->alternates[1].next_hop, msg.alternates[1].next_hop);
  EXPECT_EQ(rt->alternates[0].cost_us, 2000u);
  EXPECT_EQ(rt->alternates[1].expires_ns, 1000);
  EXPECT_EQ(rt->alternates[1].evidence, to_bytes("ev2"));
  EXPECT_EQ(rt->alternates[1].principal, to_bytes("pr2"));

  // Truncating inside the alternate block must fail loudly, not parse a
  // partial option.
  for (std::size_t cut = wire_bytes.size() - 1; cut > wire_bytes.size() - 40;
       --cut) {
    EXPECT_FALSE(
        wire::LookupReplyMsg::deserialize(BytesView(wire_bytes.data(), cut)).ok());
  }
}

TEST(Wire, LoadReportAndReadResponseCodeRoundTrip) {
  wire::LoadReportMsg lr;
  lr.server = name_of(0x40);
  lr.queue_depth = 17;
  lr.shed_level = 2;
  lr.expected_delay_ns = 5100000;
  auto lr2 = wire::LoadReportMsg::deserialize(lr.serialize());
  ASSERT_TRUE(lr2.ok());
  EXPECT_EQ(lr2->server, lr.server);
  EXPECT_EQ(lr2->queue_depth, 17u);
  EXPECT_EQ(lr2->shed_level, 2u);
  EXPECT_EQ(lr2->expected_delay_ns, 5100000u);

  wire::ReadResponseMsg resp;
  resp.capsule = name_of(0x41);
  resp.ok = false;
  resp.code = static_cast<std::uint16_t>(Errc::kUnavailable);
  resp.error = "shed";
  resp.nonce = 9;
  auto resp2 = wire::ReadResponseMsg::deserialize(resp.serialize());
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->code, static_cast<std::uint16_t>(Errc::kUnavailable));
  // The code is part of the signed body: flipping it must change the
  // bytes a response authenticator covers.
  wire::ReadResponseMsg tampered = resp;
  tampered.code = 0;
  EXPECT_NE(resp.signed_body(), tampered.signed_body());
}

// ---- Dataplane ingress shed -----------------------------------------------

wire::PduView make_view(const Name& dst, wire::MsgType type) {
  wire::Pdu pdu;
  pdu.dst = dst;
  pdu.src = name_of(0x51);
  pdu.type = type;
  pdu.ttl = 8;
  pdu.payload = Bytes(32, 0xAB);
  return wire::PduView::build(pdu);
}

TEST(Dataplane, ShedsBenchAtIngressWatermarkWithAccounting) {
  router::FibPublisher fib;
  const Name target = name_of(0x60);
  const Name hop = name_of(0x61);
  fib.upsert(target, hop, 0);
  fib.publish();

  router::ShardedDataPlane::Config cfg;
  cfg.num_shards = 1;
  cfg.ring_capacity = 16;
  cfg.deterministic = true;
  cfg.shed_bench_watermark = 2;
  int forwarded = 0;
  router::ShardedDataPlane plane(
      cfg, fib, [&](std::size_t, const Name&, wire::PduView) { forwarded += 1; });

  // First two bench frames enqueue; once the ring holds the watermark the
  // rest shed.  Control traffic is never shed at ingress.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(plane.submit_to(0, make_view(target, wire::MsgType::kBenchData)));
  }
  EXPECT_TRUE(plane.submit_to(0, make_view(target, wire::MsgType::kAppend)));
  plane.run_until_idle();

  EXPECT_EQ(forwarded, 3);  // 2 bench + 1 append
  const std::string stats = plane.stats_json();
  EXPECT_NE(stats.find("\"dp.drop.shed_bench\": 4"), std::string::npos) << stats;
}

// ---- Integration: server shed priority & quorum survival ------------------

TEST(LoadMgmt, ServerShedsReadsButQuorumDurabilitySurvives) {
  Scenario s(1301, "shed-priority");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(5));

  server::CapsuleServer::Options so;
  so.ingest_service_time = from_micros(500);
  so.overload.bench_watermark = 1;
  so.overload.read_watermark = 2;
  so.overload.write_watermark = 100;  // appends admitted throughout
  auto* s1 = s.add_server("s1", r1, net::LinkParams::lan(), so);
  auto* s2 = s.add_server("s2", r2);
  auto* writer = s.add_client("writer", r1);
  auto* reader = s.add_client("reader", r1);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "shed-prio");
  ASSERT_TRUE(place_capsule(s, cap, *writer, {s1, s2}).ok());

  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), writer->append(w, to_bytes("warm"))).ok());
  ASSERT_TRUE(await(s.sim(), reader->read_latest(cap.metadata)).ok());

  // 20 reads arrive back-to-back: the 500us service time piles them up
  // past the read watermark, so the tail sheds with a fail-fast.
  constexpr int kReads = 20;
  std::vector<client::OpPtr<client::ReadOutcome>> reads;
  for (int i = 0; i < kReads; ++i) {
    reads.push_back(reader->read_latest(cap.metadata));
  }
  // Quorum appends race the overload: writes are admitted (watermark 100)
  // and the durability ack path (kStatus) bypasses the ingest queue.
  std::vector<client::OpPtr<client::AppendOutcome>> appends;
  for (int i = 0; i < 5; ++i) {
    appends.push_back(writer->append(w, to_bytes("durable"), 2));
  }
  s.settle();

  auto& m = s.net().metrics();
  const std::uint64_t shed_reads = m.counter("server.s1.shed.reads").value();
  EXPECT_GT(shed_reads, 0u);
  EXPECT_EQ(m.counter("server.s1.shed.appends").value(), 0u);
  EXPECT_EQ(s1->overload().shed_count(DropPriority::kCritical), 0u);

  // Every append reached full quorum durability while reads were shedding.
  for (auto& op : appends) {
    ASSERT_TRUE(op->done);
    ASSERT_TRUE(op->outcome->ok()) << op->outcome->error().to_string();
    EXPECT_EQ(op->outcome->value().acks, 2u);
  }

  // No silent drops: every read either resolved verified or came back as
  // an audited kUnavailable shed, and the shed counter matches exactly.
  std::uint64_t ok_reads = 0, shed_outcomes = 0;
  for (auto& op : reads) {
    ASSERT_TRUE(op->done);
    if (op->outcome->ok()) {
      ok_reads += 1;
    } else {
      EXPECT_EQ(op->outcome->error().code, Errc::kUnavailable);
      shed_outcomes += 1;
    }
  }
  EXPECT_EQ(ok_reads + shed_outcomes, static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(shed_outcomes, shed_reads);
}

// ---- Integration: client retry budget -------------------------------------

TEST(LoadMgmt, ClientRetriesTimedOutReadsWithinBudget) {
  Scenario s(1302, "client-retry");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* srv = s.add_server("srv", r1);

  client::GdpClient::Options co;
  co.op_timeout = from_millis(200);
  co.retry_reads = true;
  co.max_read_attempts = 3;
  auto* c = s.add_client("c", r1, net::LinkParams::lan(), co);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "retry");
  ASSERT_TRUE(place_capsule(s, cap, *c, {srv}).ok());
  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), c->append(w, to_bytes("r"))).ok());

  // Blackhole reads at the access link: every attempt times out, the
  // budget grants exactly max_read_attempts - 1 retries, and the op
  // resolves kUnavailable with the timeout condition.
  s.net().set_interceptor(
      c->name(), r1->name(),
      [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kRead) return std::nullopt;
        return pdu;
      });
  auto op = c->read_latest(cap.metadata);
  auto result = await(s.sim(), op);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::kUnavailable);
  EXPECT_TRUE(op->timed_out);
  EXPECT_EQ(s.net().metrics().counter("client.c.read.retries").value(), 2u);
  EXPECT_EQ(c->read_retry_budget().granted(), 2u);

  // Heal the link: the next read is fresh (new budget earn) and succeeds.
  s.net().clear_interceptor(c->name(), r1->name());
  EXPECT_TRUE(await(s.sim(), c->read_latest(cap.metadata)).ok());
}

TEST(LoadMgmt, ClientRetryBudgetExhaustionIsAccounted) {
  Scenario s(1303, "client-budget");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* srv = s.add_server("srv", r1);

  client::GdpClient::Options co;
  co.op_timeout = from_millis(100);
  co.retry_reads = true;
  co.max_read_attempts = 5;
  co.retry_budget.ratio = 0.0;     // nothing earned back
  co.retry_budget.min_tokens = 1.0;  // one retry in hand, ever
  auto* c = s.add_client("c", r1, net::LinkParams::lan(), co);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "budget");
  ASSERT_TRUE(place_capsule(s, cap, *c, {srv}).ok());

  s.net().set_interceptor(
      c->name(), r1->name(),
      [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kRead) return std::nullopt;
        return pdu;
      });
  auto result = await(s.sim(), c->read_latest(cap.metadata));
  ASSERT_FALSE(result.ok());
  // Attempts allowed: 5.  Budget grants 1, denies the second — the denial
  // is visible in both the budget and the metrics audit.
  EXPECT_EQ(c->read_retry_budget().granted(), 1u);
  EXPECT_GE(c->read_retry_budget().denied(), 1u);
  EXPECT_EQ(s.net().metrics().counter("client.c.read.retries").value(), 1u);
  EXPECT_GE(s.net().metrics().counter("client.c.read.retries_denied").value(), 1u);
}

// ---- Integration: router lookup retry budget + maintenance knobs ----------

TEST(LoadMgmt, RouterLookupRetryBudgetExhaustionDropsWithNamedReason) {
  Scenario s(1304, "router-budget");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  auto* srv = s.add_server("srv", r2);
  auto* placer = s.add_client("p", r2);
  auto* c = s.add_client("c", r1);
  s.attach_all();

  // Place through r2 so r1 never learns the route: the reader's first
  // request forces a lookup at r1.
  CapsuleSetup cap = make_capsule(s.key_rng(), "rbudget");
  ASSERT_TRUE(place_capsule(s, cap, *placer, {srv}).ok());
  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), placer->append(w, to_bytes("r"))).ok());

  // Blackhole lookup replies to r1: the resolution can only time out.  A
  // zero-ratio budget with one token grants a single retry, then the
  // waiting queue drops under the named retry-budget reason instead of
  // burning all 4 legacy attempts.
  r1->maintenance().lookup_timeout = from_millis(50);
  loadmgmt::RetryBudgetConfig rb;
  rb.ratio = 0.0;
  rb.min_tokens = 1.0;
  r1->configure_retry_budget(rb);
  s.net().set_interceptor(
      g->name(), r1->name(),
      [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kLookupReply) return std::nullopt;
        return pdu;
      });

  auto result = await(s.sim(), c->read_latest(cap.metadata));
  ASSERT_FALSE(result.ok());
  EXPECT_GE(r1->lookup_retry_budget().granted(), 1u);
  EXPECT_GE(r1->lookup_retry_budget().denied(), 1u);
  EXPECT_GE(
      s.net().metrics().counter("router.r1.drop.retry_budget_exhausted").value(),
      1u);
}

TEST(LoadMgmt, MaintenanceLimitsAreConfigDrivenNotHardCoded) {
  Scenario s(1305, "maint-knobs");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  auto* srv = s.add_server("srv", r2);
  auto* placer = s.add_client("p", r2);
  auto* c = s.add_client("c", r1);
  s.attach_all();

  // Place through r2 so r1 has no route and every read parks on a lookup.
  CapsuleSetup cap = make_capsule(s.key_rng(), "knobs");
  ASSERT_TRUE(place_capsule(s, cap, *placer, {srv}).ok());
  capsule::Writer w = cap.make_writer();
  ASSERT_TRUE(await(s.sim(), placer->append(w, to_bytes("r"))).ok());

  // Non-default knobs: 2 lookup attempts (not the old hard-coded 4) and a
  // 2-deep waiting queue (not 64).
  r1->maintenance().lookup_timeout = from_millis(50);
  r1->maintenance().max_lookup_attempts = 2;
  r1->maintenance().max_queued_per_target = 2;
  s.net().set_interceptor(
      g->name(), r1->name(),
      [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
        if (pdu.type == wire::MsgType::kLookupReply) return std::nullopt;
        return pdu;
      });

  std::vector<client::OpPtr<client::ReadOutcome>> ops;
  for (int i = 0; i < 5; ++i) ops.push_back(c->read_latest(cap.metadata));
  s.settle();
  for (auto& op : ops) {
    ASSERT_TRUE(op->done);
    EXPECT_FALSE(op->outcome->ok());
  }

  auto& m = s.net().metrics();
  // 5 reads raced one unresolved target: 2 parked (the configured cap), 3
  // dropped queue-full; resolution gave up after exactly 1 retry (2
  // attempts), not the legacy 3.
  EXPECT_EQ(m.counter("router.r1.drop.queue_full").value(), 3u);
  EXPECT_EQ(m.counter("router.r1.lookup.retries").value(), 1u);
  EXPECT_GE(m.counter("router.r1.drop.lookup_timeout").value(), 1u);
}

// ---- Chaos: degraded replica drains via load reports ----------------------

struct ChaosOutcome {
  std::uint64_t s1_served_before = 0;
  std::uint64_t s2_served_before = 0;
  std::uint64_t s1_served_after = 0;
  std::uint64_t s2_served_after = 0;
  std::uint64_t ejections = 0;
  std::uint64_t ranked_replies = 0;
  std::uint64_t load_reports = 0;
  int ok_after = 0;
  std::string stats;
};

/// One full chaos run: zipf-ish steady reads against two replicas behind
/// distinct-cost paths, then the cheap replica degrades mid-run.  Load
/// reports flow server -> router -> glookup, the tracker ejects the
/// degraded advertiser, short route leases re-resolve, and traffic drains
/// to the healthy replica.
ChaosOutcome run_chaos_scenario(std::uint64_t seed) {
  ChaosOutcome out;
  Scenario s(seed, "chaos-drain");
  auto* g = s.add_domain("g", nullptr);
  auto* re = s.add_router("re", g);   // edge router (client side)
  auto* rs1 = s.add_router("rs1", g);
  auto* rs2 = s.add_router("rs2", g);
  s.link_routers(re, rs1, net::LinkParams{from_millis(1), 1e9, 0.0});
  s.link_routers(re, rs2, net::LinkParams{from_millis(2), 1e9, 0.0});

  server::CapsuleServer::Options so;
  so.ingest_service_time = from_micros(200);
  so.overload.bench_watermark = 4;
  so.overload.read_watermark = 8;
  so.overload.write_watermark = 64;
  so.load_report_interval = from_millis(25);
  auto* s1 = s.add_server("s1", rs1, net::LinkParams::lan(), so);
  auto* s2 = s.add_server("s2", rs2, net::LinkParams::lan(), so);

  client::GdpClient::Options co;
  co.op_timeout = from_millis(500);
  co.retry_reads = true;
  auto* c = s.add_client("c", re, net::LinkParams::lan(), co);
  // Placement goes through a server-side client so the edge router never
  // installs a long-lived route: the reader's first request resolves AFTER
  // selection is enabled and rides the short ranked-reply leases.
  auto* placer = s.add_client("p", rs1);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "chaos");
  if (!place_capsule(s, cap, *placer, {s1, s2}).ok()) ADD_FAILURE();
  capsule::Writer w = cap.make_writer();
  EXPECT_TRUE(await(s.sim(), placer->append(w, to_bytes("seed"))).ok());

  router::GLookupService::SelectionConfig sel;
  sel.enabled = true;
  sel.route_lease = from_millis(100);
  sel.health.eject_after_failures = 3;
  sel.health.ejection_window = from_millis(2000);
  g->set_selection(sel);
  // Periodic reports keep the event queue non-empty: stop them before the
  // final settle() so the run drains.
  s1->start_load_reports();
  s2->start_load_reports();

  auto served = [&](const char* srv) {
    return s.net()
        .metrics()
        .counter("server." + std::string(srv) + ".reads.served")
        .value();
  };

  // Phase A: healthy steady state, one read every 5 ms for 1 s.
  for (int i = 0; i < 200; ++i) {
    auto op = c->read_latest(cap.metadata);
    (void)op;
    s.settle_for(from_millis(5));
  }
  out.s1_served_before = served("s1");
  out.s2_served_before = served("s2");

  // Phase B: s1 degrades hard mid-run (GC pause / disk stall): its queue
  // builds, it sheds, load reports mark it failing, the glookup ejects it
  // and the 100 ms route leases drain traffic to s2.
  s1->set_ingest_service_time(from_millis(20));
  for (int i = 0; i < 400; ++i) {
    auto op = c->read_latest(cap.metadata);
    op->on_resolved = [&out](const Result<client::ReadOutcome>& r) {
      if (r.ok()) out.ok_after += 1;
    };
    s.settle_for(from_millis(5));
  }
  s1->stop_load_reports();
  s2->stop_load_reports();
  s.settle();

  out.s1_served_after = served("s1") - out.s1_served_before;
  out.s2_served_after = served("s2") - out.s2_served_before;
  out.ejections = g->health().ejections();
  out.ranked_replies =
      s.net().metrics().counter("glookup.g.lb.ranked_replies").value();
  out.load_reports =
      s.net().metrics().counter("glookup.g.lb.load_reports").value();
  out.stats = s.stats_json();
  return out;
}

TEST(LoadMgmt, DegradedReplicaIsEjectedAndTrafficDrains) {
  ChaosOutcome out = run_chaos_scenario(4242);

  // Healthy phase herds onto the cheaper replica.
  EXPECT_GT(out.s1_served_before, out.s2_served_before);
  // Degraded phase: the fabric noticed (load reports flowed, the
  // advertiser was ejected) and the healthy replica took the traffic.
  EXPECT_GT(out.load_reports, 0u);
  EXPECT_GE(out.ejections, 1u);
  EXPECT_GT(out.ranked_replies, 0u);
  EXPECT_GT(out.s2_served_after, out.s1_served_after);
  // The drain kept goodput alive: most reads in the degraded phase still
  // completed verified.
  EXPECT_GT(out.ok_after, 200);
}

TEST(LoadMgmt, ChaosScenarioIsByteIdenticalAcrossReruns) {
  ChaosOutcome a = run_chaos_scenario(777);
  ChaosOutcome b = run_chaos_scenario(777);
  ASSERT_FALSE(a.stats.empty());
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.s1_served_after, b.s1_served_after);
  EXPECT_EQ(a.s2_served_after, b.s2_served_after);
  EXPECT_EQ(a.ejections, b.ejections);
  EXPECT_EQ(a.ok_after, b.ok_after);
}

}  // namespace
}  // namespace gdp
