// Ablation A4 — crypto substrate primitive costs (google-benchmark).
//
// Supports the Figure 6 argument that "the additional cost of
// cryptographic validation is incurred only once per flow per router at
// the beginning of flow establishment": one ECDSA verification costs
// hundreds of microseconds, while per-PDU work is hashing/HMAC at tens of
// nanoseconds per byte — three to four orders of magnitude apart.
//
// Besides the google-benchmark suite, main() times the table-driven fast
// scalar-multiplication paths against the retained slow (double-and-add +
// Fermat-inverse) paths and writes the rates to BENCH_crypto.json in the
// current directory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/secp256k1_detail.hpp"
#include "crypto/sha256.hpp"

using namespace gdp;
using namespace gdp::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.next_bytes(32);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
  Rng rng(3);
  SymmetricKey key{};
  Nonce96 nonce{};
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha20_xor(key, nonce, 1, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_SecretBoxSeal(benchmark::State& state) {
  Rng rng(4);
  SymmetricKey key{};
  Nonce96 nonce{};
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(secretbox_seal(key, nonce, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SecretBoxSeal)->Arg(1024)->Arg(16384);

void BM_EcdsaSign(benchmark::State& state) {
  Rng rng(5);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = rng.next_bytes(200);
  std::uint8_t counter = 0;
  for (auto _ : state) {
    msg[0] = counter++;
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Rng rng(6);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = rng.next_bytes(200);
  Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.public_key().verify(msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhSharedKey(benchmark::State& state) {
  Rng rng(7);
  PrivateKey a = PrivateKey::generate(rng);
  PrivateKey b = PrivateKey::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared_key(a, b.public_key()));
  }
}
BENCHMARK(BM_EcdhSharedKey);

void BM_KeyGeneration(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateKey::generate(rng));
  }
}
BENCHMARK(BM_KeyGeneration);

// ---- fast-vs-slow comparison + BENCH_crypto.json ---------------------------

/// ops/s of `fn` over a fixed wall-clock budget.
template <typename Fn>
double ops_per_sec(Fn&& fn) {
  // Best of three windows: the max rate is the least scheduler-contended
  // estimate, which is what we want when comparing implementations.
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto budget = std::chrono::milliseconds(150);
    int iters = 0;
    while (std::chrono::steady_clock::now() - t0 < budget) {
      fn();
      ++iters;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, iters / secs);
  }
  return best;
}

/// The seed signing path: RFC 6979 nonce + double-and-add k*G + Fermat
/// inverse.  Byte-identical output to the fast path by construction.
Signature sign_digest_slow(const U256& d, const Digest& digest) {
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  U256 k = rfc6979_nonce(d, digest);
  AffinePoint rp = point_mul_slow(k, secp_g());
  U256 r = sc_reduce(rp.x);
  U256 s = sc_mul(sc_inv_fermat(k), sc_add(z, sc_mul(r, d)));
  // Even-R normalization, mirroring the fast signer: emit the malleability
  // twin n - s when the nonce point's y is odd.
  if (rp.y.is_odd()) s = sc_neg(s);
  return Signature{r, s};
}

/// The seed verification path: Fermat inverse + independent double-and-add
/// for u1*G and u2*Q.
bool verify_digest_slow(const PublicKey& pub, const Digest& digest,
                        const Signature& sig) {
  U256 z = sc_reduce(U256::from_bytes_be(BytesView(digest.data(), digest.size())));
  U256 w = sc_inv_fermat(sig.s);
  AffinePoint rp = point_mul2_slow(sc_mul(z, w), sc_mul(sig.r, w), pub.point());
  if (rp.infinity) return false;
  return sc_reduce(rp.x) == sig.r;
}

struct Pair {
  const char* name;
  double fast;
  double slow;
};

// Raw field-multiplication throughput: Montgomery REDC (fast) vs the
// retained schoolbook mul_full + fold (slow).  Multiplications are
// chained so the measurement is latency-bound like real point
// arithmetic, not pipelined artificially.
constexpr int kFieldChain = 1000;

double field_mul_rate_mont() {
  Rng rng(13);
  U256 x = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const U256 y = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const double rate = ops_per_sec([&] {
    for (int i = 0; i < kFieldChain; ++i) x = mont_mul(x, y);
    benchmark::DoNotOptimize(x);
  });
  return rate * kFieldChain;
}

double field_mul_rate_schoolbook() {
  Rng rng(13);
  U256 x = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const U256 y = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const double rate = ops_per_sec([&] {
    for (int i = 0; i < kFieldChain; ++i) x = fp_mul_schoolbook(x, y);
    benchmark::DoNotOptimize(x);
  });
  return rate * kFieldChain;
}

double field_sqr_rate_mont() {
  Rng rng(14);
  U256 x = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const double rate = ops_per_sec([&] {
    for (int i = 0; i < kFieldChain; ++i) x = mont_sqr(x);
    benchmark::DoNotOptimize(x);
  });
  return rate * kFieldChain;
}

double field_sqr_rate_schoolbook() {
  Rng rng(14);
  U256 x = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const double rate = ops_per_sec([&] {
    for (int i = 0; i < kFieldChain; ++i) x = fp_sqr_schoolbook(x);
    benchmark::DoNotOptimize(x);
  });
  return rate * kFieldChain;
}

void run_fast_vs_slow() {
  Rng rng(11);
  PrivateKey key = PrivateKey::generate(rng);
  U256 d = U256::from_bytes_be(key.to_bytes());
  Digest digest = sha256(rng.next_bytes(200));
  Signature sig = key.sign_digest(digest);
  if (sign_digest_slow(d, digest).encode() != sig.encode() ||
      key.sign_digest_vartime(digest).encode() != sig.encode() ||
      !verify_digest_slow(key.public_key(), digest, sig)) {
    std::fprintf(stderr, "fast/slow path disagreement; not writing JSON\n");
    return;
  }
  U256 a = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  U256 b = sc_reduce(U256::from_bytes_be(rng.next_bytes(32)));
  const AffinePoint q = key.public_key().point();

  // Batch rows: "fast" is signature throughput through BatchVerifier
  // (including the add + coefficient-derivation overhead), "slow" is the
  // serial fast-path verify rate — the honest baseline batching competes
  // with.  Same-key batches model a sync flood (one writer key, Q terms
  // coalesce); the multikey variant is the worst case for coalescing.
  const double serial_rate =
      ops_per_sec([&] { key.public_key().verify_digest(digest, sig); });
  auto batch_rate = [&](std::size_t k_entries, std::size_t n_keys) {
    std::vector<PrivateKey> signers;
    for (std::size_t i = 0; i < n_keys; ++i) {
      signers.push_back(PrivateKey::generate(rng));
    }
    std::vector<Digest> digests;
    std::vector<Signature> sigs;
    std::vector<const PrivateKey*> who;
    for (std::size_t i = 0; i < k_entries; ++i) {
      Bytes m = rng.next_bytes(64);
      digests.push_back(sha256(m));
      who.push_back(&signers[i % n_keys]);
      sigs.push_back(who.back()->sign_digest(digests.back()));
    }
    const double batches_per_sec = ops_per_sec([&] {
      BatchVerifier bv(42);
      bv.reserve(k_entries);
      for (std::size_t i = 0; i < k_entries; ++i) {
        bv.add(digests[i], who[i]->public_key(), sigs[i]);
      }
      if (!bv.verify_all().all_ok()) std::abort();
    });
    return batches_per_sec * static_cast<double>(k_entries);
  };

  const Pair rows[] = {
      {"field_mul", field_mul_rate_mont(), field_mul_rate_schoolbook()},
      {"field_sqr", field_sqr_rate_mont(), field_sqr_rate_schoolbook()},
      {"sign", ops_per_sec([&] { key.sign_digest(digest); }),
       ops_per_sec([&] { sign_digest_slow(d, digest); })},
      {"sign_vartime", ops_per_sec([&] { key.sign_digest_vartime(digest); }),
       ops_per_sec([&] { sign_digest_slow(d, digest); })},
      {"verify",
       ops_per_sec([&] { key.public_key().verify_digest(digest, sig); }),
       ops_per_sec([&] { verify_digest_slow(key.public_key(), digest, sig); })},
      {"point_mul_g", ops_per_sec([&] { point_mul(a, secp_g()); }),
       ops_per_sec([&] { point_mul_slow(a, secp_g()); })},
      {"point_mul", ops_per_sec([&] { point_mul(a, q); }),
       ops_per_sec([&] { point_mul_slow(a, q); })},
      {"point_mul2", ops_per_sec([&] { point_mul2(a, b, q); }),
       ops_per_sec([&] { point_mul2_slow(a, b, q); })},
      {"verify_batch4", batch_rate(4, 1), serial_rate},
      {"verify_batch16", batch_rate(16, 1), serial_rate},
      {"verify_batch64", batch_rate(64, 1), serial_rate},
      {"verify_batch64_multikey", batch_rate(64, 8), serial_rate},
  };

  std::printf("\n%-24s %14s %14s %9s\n", "operation", "fast_ops_s", "slow_ops_s",
              "speedup");
  for (const Pair& row : rows) {
    std::printf("%-24s %14.1f %14.1f %8.2fx\n", row.name, row.fast, row.slow,
                row.fast / row.slow);
  }

  FILE* f = std::fopen("BENCH_crypto.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_crypto.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  bool first = true;
  for (const Pair& row : rows) {
    std::fprintf(f, "%s  \"%s\": {\"fast_per_sec\": %.1f, \"slow_per_sec\": %.1f, \"speedup\": %.2f}",
                 first ? "" : ",\n", row.name, row.fast, row.slow,
                 row.fast / row.slow);
    first = false;
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_crypto.json\n");
}

// ---- --check: regression gate against the committed baseline ---------------

/// Extracts rows[key].fast_per_sec from the BENCH_crypto.json format this
/// binary writes.  Returns a negative value when the key is missing.
double baseline_rate(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\": {\"fast_per_sec\": ";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// CI smoke gate: re-measures field multiplication and signing throughput
/// and fails (exit 1) if either regressed more than 15% against the
/// committed BENCH_crypto.json.  Does not rewrite the JSON.
int run_check(const char* baseline_path) {
  FILE* f = std::fopen(baseline_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "--check: cannot open %s\n", baseline_path);
    return 1;
  }
  std::string json;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, got);
  std::fclose(f);

  const double base_field = baseline_rate(json, "field_mul");
  const double base_sign = baseline_rate(json, "sign");
  if (base_field <= 0.0 || base_sign <= 0.0) {
    std::fprintf(stderr, "--check: %s lacks field_mul/sign rows\n",
                 baseline_path);
    return 1;
  }

  Rng rng(11);
  PrivateKey key = PrivateKey::generate(rng);
  const Digest digest = sha256(rng.next_bytes(200));
  const double cur_field = field_mul_rate_mont();
  const double cur_sign = ops_per_sec([&] { key.sign_digest(digest); });

  constexpr double kFloor = 0.85;  // fail below 85% of baseline
  int rc = 0;
  const struct {
    const char* name;
    double base, cur;
  } checks[] = {{"field_mul", base_field, cur_field},
                {"sign", base_sign, cur_sign}};
  for (const auto& c : checks) {
    const double ratio = c.cur / c.base;
    const bool ok = ratio >= kFloor;
    std::printf("%-10s baseline %14.1f/s  current %14.1f/s  ratio %.2f  %s\n",
                c.name, c.base, c.cur, ratio, ok ? "OK" : "REGRESSED");
    if (!ok) rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // --check <baseline.json> runs the regression gate only; strip it
  // before google-benchmark sees the args.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return run_check(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_fast_vs_slow();
  return 0;
}
