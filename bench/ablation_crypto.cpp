// Ablation A4 — crypto substrate primitive costs (google-benchmark).
//
// Supports the Figure 6 argument that "the additional cost of
// cryptographic validation is incurred only once per flow per router at
// the beginning of flow establishment": one ECDSA verification costs
// hundreds of microseconds, while per-PDU work is hashing/HMAC at tens of
// nanoseconds per byte — three to four orders of magnitude apart.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

using namespace gdp;
using namespace gdp::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.next_bytes(32);
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
  Rng rng(3);
  SymmetricKey key{};
  Nonce96 nonce{};
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chacha20_xor(key, nonce, 1, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_SecretBoxSeal(benchmark::State& state) {
  Rng rng(4);
  SymmetricKey key{};
  Nonce96 nonce{};
  Bytes data = rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(secretbox_seal(key, nonce, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SecretBoxSeal)->Arg(1024)->Arg(16384);

void BM_EcdsaSign(benchmark::State& state) {
  Rng rng(5);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = rng.next_bytes(200);
  std::uint8_t counter = 0;
  for (auto _ : state) {
    msg[0] = counter++;
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Rng rng(6);
  PrivateKey key = PrivateKey::generate(rng);
  Bytes msg = rng.next_bytes(200);
  Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.public_key().verify(msg, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhSharedKey(benchmark::State& state) {
  Rng rng(7);
  PrivateKey a = PrivateKey::generate(rng);
  PrivateKey b = PrivateKey::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared_key(a, b.public_key()));
  }
}
BENCHMARK(BM_EcdhSharedKey);

void BM_KeyGeneration(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateKey::generate(rng));
  }
}
BENCHMARK(BM_KeyGeneration);

}  // namespace

BENCHMARK_MAIN();
