// Table I reproduction: "A summary of how Global Data Plane meets the
// platform requirements (see section II)".
//
// Table I is qualitative — requirement -> enabling feature.  We reproduce
// it *executably*: each row runs a miniature scenario that demonstrates
// the enabling feature actually doing its job, and prints PASS/FAIL.
#include <cstdio>

#include "capsule/proof.hpp"
#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

int failures = 0;

void row(const char* goal, const char* feature, bool ok) {
  std::printf("%-26s | %-60s | %s\n", goal, feature, ok ? "PASS" : "FAIL");
  if (!ok) ++failures;
}

bool homogeneous_interface() {
  // One DataCapsule interface carries a text file, a time series and a
  // video-ish stream; the same append/read/subscribe calls serve all.
  Scenario s(1, "t1-iface");
  auto* d = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", d);
  auto* srv = s.add_server("srv", r);
  auto* c = s.add_client("c", r);
  s.attach_all();
  for (const char* kind : {"textfile", "timeseries", "stream"}) {
    CapsuleSetup cap = make_capsule(s.key_rng(), kind);
    if (!place_capsule(s, cap, *c, {srv}).ok()) return false;
    capsule::Writer w = cap.make_writer();
    if (!await(s.sim(), c->append(w, to_bytes(kind))).ok()) return false;
    auto read = await(s.sim(), c->read_latest(cap.metadata));
    if (!read.ok() || to_string(read->records[0].payload) != kind) return false;
  }
  return true;
}

bool federated_architecture() {
  // The flat capsule name is the trust anchor: a reader with *only* the
  // metadata (no PKI, no CA) verifies data served by a stranger's server.
  Scenario s(2, "t1-fed");
  auto* d = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", d);
  auto* srv = s.add_server("someone-elses-server", r);
  auto* writer_c = s.add_client("w", r);
  auto* reader_c = s.add_client("rd", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "federated");
  if (!place_capsule(s, cap, *writer_c, {srv}).ok()) return false;
  capsule::Writer w = cap.make_writer();
  if (!await(s.sim(), writer_c->append(w, to_bytes("x"))).ok()) return false;
  auto read = await(s.sim(), reader_c->read_latest(cap.metadata));
  return read.ok();
}

bool locality() {
  // Hierarchical routing domains + anycast: the near replica serves.
  Scenario s(3, "t1-local");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  auto* r3 = s.add_router("r3", g);
  s.link_routers(r1, r2, net::LinkParams::wan(1));
  s.link_routers(r1, r3, net::LinkParams::wan(100));
  auto* near_srv = s.add_server("near", r2);
  auto* far_srv = s.add_server("far", r3);
  auto* c = s.add_client("c", r1);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "near-me");
  if (!place_capsule(s, cap, *c, {near_srv, far_srv}).ok()) return false;
  capsule::Writer w = cap.make_writer();
  if (!await(s.sim(), c->append(w, to_bytes("x"))).ok()) return false;
  s.settle();
  return near_srv->appends_accepted() == 1 && far_srv->appends_accepted() == 0;
}

bool secure_storage() {
  // The capsule is an authenticated data structure: a reader verifies
  // integrity against the name alone, even with a tampering server path.
  Scenario s(4, "t1-storage");
  auto* d = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", d);
  auto* srv = s.add_server("srv", r);
  auto* c = s.add_client("c", r);
  auto* rd = s.add_client("rd", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "ads");
  if (!place_capsule(s, cap, *c, {srv}).ok()) return false;
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < 8; ++i) {
    if (!await(s.sim(), c->append(w, to_bytes("r" + std::to_string(i)))).ok()) return false;
  }
  auto good = await(s.sim(), rd->read(cap.metadata, 2, 6));
  if (!good.ok()) return false;
  // Now tamper the response path; the forgery must be detected.
  s.net().set_interceptor(srv->name(), r->name(),
                          [](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
                            wire::Pdu bad = pdu;
                            if (bad.payload.size() > 200) bad.payload[200] ^= 1;
                            return bad;
                          });
  auto forged = await(s.sim(), rd->read(cap.metadata, 2, 6));
  return !forged.ok();
}

bool administrative_boundaries() {
  // Explicit cryptographic delegations at capsule level: a server with no
  // AdCert cannot host; a restricted capsule stays in its domain.
  Scenario s(5, "t1-admin");
  auto* g = s.add_domain("g", nullptr);
  auto* dom = s.add_domain("corp", g);
  auto* r1 = s.add_router("r1", dom);
  auto* rg = s.add_router("rg", g);
  s.link_routers(r1, rg, net::LinkParams::wan(5));
  auto* srv = s.add_server("srv", r1);
  auto* outside_srv = s.add_server("outside", rg);
  auto* c = s.add_client("c", r1);
  auto* outsider = s.add_client("outsider", rg);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "corp-data");
  if (!place_capsule(s, cap, *c, {srv}, {dom->domain()}).ok()) return false;
  // A server without delegation refuses to host.
  auto no_cert = await(
      s.sim(), c->create_capsule(outside_srv->name(), cap.metadata,
                                 trust::ServingDelegation{}, {}));
  if (no_cert.ok()) return false;
  capsule::Writer w = cap.make_writer();
  if (!await(s.sim(), c->append(w, to_bytes("internal"))).ok()) return false;
  // Outside the domain the name does not even resolve.
  auto snoop = await(s.sim(), outsider->read_latest(cap.metadata));
  return !snoop.ok();
}

bool secure_routing() {
  // Secure advertisements: name-squatting without a delegation is
  // rejected at the router, so traffic cannot be black-holed by claim.
  Scenario s(6, "t1-routing");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* honest = s.add_server("honest", r);
  auto* mallory = s.add_server("mallory", r);
  auto* c = s.add_client("c", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "coveted-name");
  if (!place_capsule(s, cap, *c, {honest}).ok()) return false;
  Rng mrng(13);
  auto fake_owner = crypto::PrivateKey::generate(mrng);
  trust::Advertisement fake;
  fake.advertised = cap.metadata.name();
  fake.capsule_metadata = cap.metadata.serialize();
  fake.expires_ns = (s.sim().now() + from_seconds(3600)).count();
  fake.delegation.ad_cert = trust::make_ad_cert(
      fake_owner, fake_owner.public_key().fingerprint(), cap.metadata.name(),
      mallory->principal().name(), s.sim().now(), s.sim().now() + from_seconds(3600));
  const std::uint64_t rejected = r->advertisements_rejected();
  mallory->advertise(r->name(), {trust::Catalog::encode_advertisement(fake)});
  s.settle();
  if (r->advertisements_rejected() <= rejected) return false;
  capsule::Writer w = cap.make_writer();
  if (!await(s.sim(), c->append(w, to_bytes("safe"))).ok()) return false;
  s.settle();
  return honest->storage().find(cap.metadata.name())->state().size() == 1;
}

bool publish_subscribe() {
  Scenario s(7, "t1-pubsub");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  auto* c = s.add_client("c", r);
  auto* sub = s.add_client("sub", r);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "feed");
  if (!place_capsule(s, cap, *c, {srv}).ok()) return false;
  int events = 0;
  auto cert = cap.sub_cert_for(sub->name(), s.sim().now(),
                               s.sim().now() + from_seconds(3600));
  if (!await(s.sim(), sub->subscribe(cap.metadata, cert,
                                     [&](const capsule::Record&,
                                         const capsule::Heartbeat&) { ++events; }))
           .ok()) {
    return false;
  }
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < 3; ++i) {
    if (!await(s.sim(), c->append(w, to_bytes("e"))).ok()) return false;
  }
  s.settle();
  return events == 3;
}

bool incremental_deployment() {
  // Routing over existing IP networks as an overlay: the same stack runs
  // over LAN, WAN and asymmetric residential links without change.
  Scenario s(8, "t1-overlay");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(80));  // intercontinental tunnel
  auto* srv = s.add_server("srv", r2);
  auto* c = s.add_client("c", r1, net::LinkParams::residential_up());
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "over-ip");
  if (!place_capsule(s, cap, *c, {srv}).ok()) return false;
  capsule::Writer w = cap.make_writer();
  if (!await(s.sim(), c->append(w, to_bytes("tunnelled"))).ok()) return false;
  auto read = await(s.sim(), c->read_latest(cap.metadata));
  return read.ok();
}

}  // namespace

int main() {
  std::printf("# Table I: platform requirements -> enabling features "
              "(executable reproduction)\n");
  std::printf("%-26s | %-60s | result\n", "Goal", "Enabling feature");
  std::printf("---------------------------+--------------------------------"
              "------------------------------+-------\n");
  row("Homogeneous interface",
      "DataCapsule interface supporting diverse applications", homogeneous_interface());
  row("Federated architecture",
      "Flat capsule name as trust anchor; no traditional PKI", federated_architecture());
  row("Locality",
      "Hierarchical routing domains mimicking topology; anycast", locality());
  row("Secure storage",
      "DataCapsule as authenticated data structure (client-verified)", secure_storage());
  row("Administrative boundaries",
      "Explicit cryptographic delegations (AdCerts) per capsule", administrative_boundaries());
  row("Secure routing",
      "Secure advertisements + AdCert/RtCert delegation chains", secure_routing());
  row("Publish-subscribe",
      "Subscribe as a native access mode with SubCert admission", publish_subscribe());
  row("Incremental deployment",
      "Overlay routing over existing IP links (LAN/WAN/residential)", incremental_deployment());
  std::printf("\n%s\n", failures == 0 ? "Table I: all 8 requirements demonstrated"
                                      : "Table I: FAILURES present");
  return failures == 0 ? 0 : 1;
}
