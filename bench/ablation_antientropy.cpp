// Ablation A6 — anti-entropy convergence under lossy replication (§VI),
// plus the replica-healing experiment behind BENCH_antientropy.json.
//
// Part 1 (table): leaderless replication means appends propagate
// opportunistically and background anti-entropy repairs whatever was
// missed.  We write a burst of records through one replica while the
// inter-replica paths drop a configurable fraction of sync PDUs, then
// heal nothing — the loss stays — and count how many anti-entropy rounds
// each configuration needs until every replica holds the full capsule.
//
// Part 2 (healing): a fresh replica joins behind a constrained WAN with a
// large record gap.  The legacy flood protocol re-pulls from a stale tip
// every round, so on a link slower than the anti-entropy interval it
// re-transmits the same batches over and over; the Merkle-summary
// protocol walks the tree once and pulls each missing range exactly once
// with cursor continuation.  We measure bytes-on-wire and simulated time
// to convergence for both arms and publish them in BENCH_antientropy.json.
#include <cstdio>
#include <cstring>

#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

/// Per-run batch-verification telemetry, summed over every replica.
struct BatchStats {
  std::uint64_t accepted = 0;   ///< signatures settled by batched checks
  std::uint64_t batches = 0;    ///< sync pushes that took the batch path
};

bool is_sync(wire::MsgType type) {
  switch (type) {
    case wire::MsgType::kSyncPull:
    case wire::MsgType::kSyncPush:
    case wire::MsgType::kSyncSummary:
    case wire::MsgType::kSyncDescend:
    case wire::MsgType::kSyncRange:
      return true;
    default:
      return false;
  }
}

int rounds_to_convergence(int replicas, double loss, std::uint64_t seed,
                          int* out_missing_after_burst,
                          BatchStats* out_batch) {
  Scenario s(seed, "antientropy");
  auto* g = s.add_domain("g", nullptr);
  std::vector<router::Router*> routers;
  std::vector<server::CapsuleServer*> servers;
  auto* r0 = s.add_router("r0", g);
  routers.push_back(r0);
  servers.push_back(s.add_server("srv0", r0));
  for (int i = 1; i < replicas; ++i) {
    auto* r = s.add_router("r" + std::to_string(i), g);
    s.link_routers(r0, r, net::LinkParams::wan(10));
    routers.push_back(r);
    servers.push_back(s.add_server("srv" + std::to_string(i), r));
  }
  auto* writer_c = s.add_client("writer", r0);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "gossiped");
  if (!place_capsule(s, cap, *writer_c, servers).ok()) std::abort();

  // Lossy sync on every inter-router direction — all five sync message
  // types, so the Merkle walk's probe/descend/range legs are exposed to
  // the same loss as the record pushes.
  auto loss_rng = std::make_shared<Rng>(seed * 7 + 3);
  auto lossy = [loss_rng, loss](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
    if (is_sync(pdu.type) && loss_rng->next_bool(loss)) {
      return std::nullopt;
    }
    return pdu;
  };
  for (std::size_t i = 1; i < routers.size(); ++i) {
    s.net().set_interceptor(r0->name(), routers[i]->name(), lossy);
    s.net().set_interceptor(routers[i]->name(), r0->name(), lossy);
  }

  constexpr int kRecords = 20;
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < kRecords; ++i) {
    if (!await(s.sim(), writer_c->append(w, to_bytes("r"))).ok()) std::abort();
  }
  s.settle();

  auto total_missing = [&] {
    int missing = 0;
    for (auto* srv : servers) {
      const auto* st = srv->storage().find(cap.metadata.name());
      missing += kRecords - static_cast<int>(st->state().size());
    }
    return missing;
  };
  *out_missing_after_burst = total_missing();

  int rounds = 0;
  while (total_missing() > 0 && rounds < 4000) {
    for (auto* srv : servers) srv->anti_entropy_round();
    s.settle();
    ++rounds;
  }
  for (int i = 0; i < replicas; ++i) {
    const std::string prefix = "srv" + std::to_string(i);
    out_batch->accepted +=
        s.net().metrics().counter("server." + prefix + ".batch.accepted").value();
    out_batch->batches +=
        s.net().metrics().histogram("server." + prefix + ".batch.size").count();
  }
  return rounds;
}

// ---- Part 2: fresh-replica healing over a constrained WAN -----------------

struct HealResult {
  std::uint64_t sync_bytes = 0;  ///< sync payload bytes put on the WAN
  std::uint64_t sync_pdus = 0;
  std::uint64_t rounds = 0;
  double sim_s = 0;  ///< simulated seconds from heal start to convergence
  bool converged = false;
};

HealResult heal_fresh_replica(server::CapsuleServer::SyncMode mode,
                              std::uint64_t records, std::uint64_t seed) {
  Scenario s(seed, "heal");
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  // Constrained WAN: 300 ms RTT at 10 Mbit/s.  A 256-record batch takes a
  // third of a second door-to-door, several anti-entropy intervals, so
  // the flood baseline keeps re-pulling from a stale tip and every batch
  // crosses the link ~7 times.  The summary walk holds one cursor-clocked
  // session instead: each batch crosses once.
  s.link_routers(r1, r2, net::LinkParams{from_millis(150), 10e6, 0.0});
  auto* srv1 = s.add_server("srv1", r1);
  auto* srv2 = s.add_server("srv2", r2);
  auto* owner = s.add_client("owner", r1);
  s.attach_all();
  srv1->set_sync_mode(mode);
  srv2->set_sync_mode(mode);

  CapsuleSetup cap = make_capsule(s.key_rng(), "gap");
  if (!place_capsule(s, cap, *owner, {srv1, srv2}).ok()) std::abort();

  // Fabricate the gap: the history lands on srv1 only, via the
  // local-ingest hook (a client round-trip per record would dominate the
  // bench, and propagation would pre-heal srv2).
  capsule::Writer w = cap.make_writer();
  const Name capsule = cap.metadata.name();
  for (std::uint64_t i = 0; i < records; ++i) {
    if (!srv1->ingest_local(capsule, w.append(to_bytes("r"), 0)).ok()) {
      std::abort();
    }
  }

  HealResult out;
  auto counting = [&out](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
    if (is_sync(pdu.type)) {
      out.sync_bytes += pdu.payload.size();
      ++out.sync_pdus;
    }
    return pdu;
  };
  s.net().set_interceptor(r1->name(), r2->name(), counting);
  s.net().set_interceptor(r2->name(), r1->name(), counting);

  // The fresh replica drives its own healing: one anti-entropy round per
  // 50 ms of simulated time, identical for both arms.  (Fast relative to
  // the RTT, as a busy replica's round would be — but still slower than
  // one batch's transfer, so summary sessions never hit the stall-retry
  // threshold.)
  const TimePoint start = s.sim().now();
  const auto* st2 = srv2->storage().find(capsule);
  const std::uint64_t max_rounds = (records / 256 + 1) * 20 + 400;
  while (st2->state().size() < records && out.rounds < max_rounds) {
    srv2->anti_entropy_round();
    s.settle_for(from_millis(50));
    ++out.rounds;
  }
  out.converged = st2->state().size() == records;
  out.sim_s =
      static_cast<double>((s.sim().now() - start).count()) / 1e9;
  return out;
}

const char* mode_name(server::CapsuleServer::SyncMode mode) {
  return mode == server::CapsuleServer::SyncMode::kSummary ? "summary"
                                                           : "flood";
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: tiny configurations for CI — exercises the full
  // append/lose/heal cycle, the batched sync-push ingest, AND both
  // healing arms in a few seconds.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("# Ablation A6: anti-entropy convergence under lossy replication\n");
  std::printf("# 20 records appended through one replica; losses stay in effect\n");
  std::printf("%9s %8s %22s %18s %15s %14s\n", "replicas", "loss",
              "missing_after_burst", "rounds_to_heal", "batch_sigs", "batch_pushes");
  const std::vector<int> replica_configs = smoke ? std::vector<int>{2}
                                                 : std::vector<int>{2, 3, 4};
  const std::vector<double> loss_configs =
      smoke ? std::vector<double>{0.9} : std::vector<double>{0.0, 0.3, 0.6, 0.9};
  const int kSeeds = smoke ? 1 : 3;
  std::uint64_t batch_sigs_grand_total = 0;
  for (int replicas : replica_configs) {
    for (double loss : loss_configs) {
      int missing_total = 0, rounds_total = 0;
      BatchStats batch_total;
      for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(kSeeds);
           ++seed) {
        int missing = 0;
        rounds_total += rounds_to_convergence(replicas, loss, seed * 11,
                                              &missing, &batch_total);
        missing_total += missing;
      }
      batch_sigs_grand_total += batch_total.accepted;
      std::printf("%9d %7.0f%% %22.1f %18.1f %15.1f %14.1f\n", replicas,
                  loss * 100, static_cast<double>(missing_total) / kSeeds,
                  static_cast<double>(rounds_total) / kSeeds,
                  static_cast<double>(batch_total.accepted) / kSeeds,
                  static_cast<double>(batch_total.batches) / kSeeds);
    }
  }
  std::printf("# convergence is monotone: more loss -> more missing records, "
              "more rounds;\n");
  std::printf("# every configuration heals (the capsule DAG is a CRDT); at extreme loss\n# convergence is gossip-limited (the summary walk has a longer handshake\n# than the old flood, so 90%% loss costs proportionally more rounds; stalled\n# pulls retry from their cursor instead of restarting)\n");
  std::printf("# batch_sigs/batch_pushes: record signatures settled by batched\n"
              "# verification and the sync pushes that took the batch path (>= 4\n"
              "# previously-unknown records in one SyncPushMsg)\n");
  if (smoke && batch_sigs_grand_total == 0) {
    std::fprintf(stderr, "smoke: batched verification path never taken\n");
    return 1;
  }

  // ---- Healing experiment ----------------------------------------------
  const std::uint64_t gap = smoke ? 2000 : 100000;
  std::printf("\n# Healing a fresh replica: %llu-record gap, 300 ms RTT / "
              "10 Mbit/s WAN\n",
              static_cast<unsigned long long>(gap));
  std::printf("%9s %14s %10s %8s %10s %10s\n", "mode", "sync_bytes",
              "sync_pdus", "rounds", "sim_s", "converged");
  HealResult results[2];
  const server::CapsuleServer::SyncMode modes[2] = {
      server::CapsuleServer::SyncMode::kSummary,
      server::CapsuleServer::SyncMode::kFlood};
  for (int i = 0; i < 2; ++i) {
    results[i] = heal_fresh_replica(modes[i], gap, 97);
    std::printf("%9s %14llu %10llu %8llu %10.1f %10s\n", mode_name(modes[i]),
                static_cast<unsigned long long>(results[i].sync_bytes),
                static_cast<unsigned long long>(results[i].sync_pdus),
                static_cast<unsigned long long>(results[i].rounds),
                results[i].sim_s, results[i].converged ? "yes" : "NO");
  }
  const double ratio =
      results[1].sync_bytes == 0
          ? 1.0
          : static_cast<double>(results[0].sync_bytes) /
                static_cast<double>(results[1].sync_bytes);
  std::printf("# summary/flood bytes-on-wire ratio: %.3f\n", ratio);

  if (FILE* f = std::fopen("BENCH_antientropy.json", "w")) {
    std::fprintf(f,
                 "{\n  \"gap_records\": %llu,\n  \"wan_rtt_ms\": 300,\n"
                 "  \"wan_bps\": 10000000,\n",
                 static_cast<unsigned long long>(gap));
    std::fprintf(f, "  \"healing\": [\n");
    for (int i = 0; i < 2; ++i) {
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"sync_bytes\": %llu, "
                   "\"sync_pdus\": %llu, \"rounds\": %llu, "
                   "\"sim_s_to_converge\": %.3f, \"converged\": %s}%s\n",
                   mode_name(modes[i]),
                   static_cast<unsigned long long>(results[i].sync_bytes),
                   static_cast<unsigned long long>(results[i].sync_pdus),
                   static_cast<unsigned long long>(results[i].rounds),
                   results[i].sim_s, results[i].converged ? "true" : "false",
                   i == 0 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"summary_to_flood_bytes_ratio\": %.4f\n}\n",
                 ratio);
    std::fclose(f);
    std::printf("# wrote BENCH_antientropy.json\n");
  }

  if (!results[0].converged || !results[1].converged) {
    std::fprintf(stderr, "healing arm failed to converge\n");
    return 1;
  }
  // Smoke is lenient (a 2k gap amortizes the walk less well); the full
  // run enforces the paper-grade bound.
  const double bound = smoke ? 0.5 : 0.25;
  if (ratio > bound) {
    std::fprintf(stderr, "summary sync used %.1f%% of flood bytes (> %.0f%%)\n",
                 ratio * 100, bound * 100);
    return 1;
  }
  return 0;
}
