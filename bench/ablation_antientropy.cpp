// Ablation A6 — anti-entropy convergence under lossy replication (§VI).
//
// Leaderless replication means appends propagate opportunistically and
// background anti-entropy repairs whatever was missed.  We write a burst
// of records through one replica while the inter-replica paths drop a
// configurable fraction of sync PDUs, then heal nothing — the loss stays —
// and count how many anti-entropy rounds each configuration needs until
// every replica holds the full capsule.
#include <cstdio>
#include <cstring>

#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

/// Per-run batch-verification telemetry, summed over every replica.
struct BatchStats {
  std::uint64_t accepted = 0;   ///< signatures settled by batched checks
  std::uint64_t batches = 0;    ///< sync pushes that took the batch path
};

int rounds_to_convergence(int replicas, double loss, std::uint64_t seed,
                          int* out_missing_after_burst,
                          BatchStats* out_batch) {
  Scenario s(seed, "antientropy");
  auto* g = s.add_domain("g", nullptr);
  std::vector<router::Router*> routers;
  std::vector<server::CapsuleServer*> servers;
  auto* r0 = s.add_router("r0", g);
  routers.push_back(r0);
  servers.push_back(s.add_server("srv0", r0));
  for (int i = 1; i < replicas; ++i) {
    auto* r = s.add_router("r" + std::to_string(i), g);
    s.link_routers(r0, r, net::LinkParams::wan(10));
    routers.push_back(r);
    servers.push_back(s.add_server("srv" + std::to_string(i), r));
  }
  auto* writer_c = s.add_client("writer", r0);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "gossiped");
  if (!place_capsule(s, cap, *writer_c, servers).ok()) std::abort();

  // Lossy sync on every inter-router direction.
  auto loss_rng = std::make_shared<Rng>(seed * 7 + 3);
  auto lossy = [loss_rng, loss](const wire::Pdu& pdu) -> std::optional<wire::Pdu> {
    if ((pdu.type == wire::MsgType::kSyncPush ||
         pdu.type == wire::MsgType::kSyncPull) &&
        loss_rng->next_bool(loss)) {
      return std::nullopt;
    }
    return pdu;
  };
  for (std::size_t i = 1; i < routers.size(); ++i) {
    s.net().set_interceptor(r0->name(), routers[i]->name(), lossy);
    s.net().set_interceptor(routers[i]->name(), r0->name(), lossy);
  }

  constexpr int kRecords = 20;
  capsule::Writer w = cap.make_writer();
  for (int i = 0; i < kRecords; ++i) {
    if (!await(s.sim(), writer_c->append(w, to_bytes("r"))).ok()) std::abort();
  }
  s.settle();

  auto total_missing = [&] {
    int missing = 0;
    for (auto* srv : servers) {
      const auto* st = srv->storage().find(cap.metadata.name());
      missing += kRecords - static_cast<int>(st->state().size());
    }
    return missing;
  };
  *out_missing_after_burst = total_missing();

  int rounds = 0;
  while (total_missing() > 0 && rounds < 1000) {
    for (auto* srv : servers) srv->anti_entropy_round();
    s.settle();
    ++rounds;
  }
  for (int i = 0; i < replicas; ++i) {
    const std::string prefix = "srv" + std::to_string(i);
    out_batch->accepted +=
        s.net().metrics().counter("server." + prefix + ".batch.accepted").value();
    out_batch->batches +=
        s.net().metrics().histogram("server." + prefix + ".batch.size").count();
  }
  return rounds;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: single tiny configuration for CI — exercises the full
  // append/lose/heal cycle (and the batched sync-push ingest) in well
  // under a second.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("# Ablation A6: anti-entropy convergence under lossy replication\n");
  std::printf("# 20 records appended through one replica; losses stay in effect\n");
  std::printf("%9s %8s %22s %18s %15s %14s\n", "replicas", "loss",
              "missing_after_burst", "rounds_to_heal", "batch_sigs", "batch_pushes");
  const std::vector<int> replica_configs = smoke ? std::vector<int>{2}
                                                 : std::vector<int>{2, 3, 4};
  const std::vector<double> loss_configs =
      smoke ? std::vector<double>{0.9} : std::vector<double>{0.0, 0.3, 0.6, 0.9};
  const int kSeeds = smoke ? 1 : 3;
  std::uint64_t batch_sigs_grand_total = 0;
  for (int replicas : replica_configs) {
    for (double loss : loss_configs) {
      int missing_total = 0, rounds_total = 0;
      BatchStats batch_total;
      for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(kSeeds);
           ++seed) {
        int missing = 0;
        rounds_total += rounds_to_convergence(replicas, loss, seed * 11,
                                              &missing, &batch_total);
        missing_total += missing;
      }
      batch_sigs_grand_total += batch_total.accepted;
      std::printf("%9d %7.0f%% %22.1f %18.1f %15.1f %14.1f\n", replicas,
                  loss * 100, static_cast<double>(missing_total) / kSeeds,
                  static_cast<double>(rounds_total) / kSeeds,
                  static_cast<double>(batch_total.accepted) / kSeeds,
                  static_cast<double>(batch_total.batches) / kSeeds);
    }
  }
  std::printf("# convergence is monotone: more loss -> more missing records, "
              "more rounds;\n");
  std::printf("# every configuration heals (the capsule DAG is a CRDT); at extreme loss\n# convergence is gossip-limited (random peers + whole-batch PDU losses)\n");
  std::printf("# batch_sigs/batch_pushes: record signatures settled by batched\n"
              "# verification and the sync pushes that took the batch path (>= 4\n"
              "# previously-unknown records in one SyncPushMsg)\n");
  if (smoke && batch_sigs_grand_total == 0) {
    std::fprintf(stderr, "smoke: batched verification path never taken\n");
    return 1;
  }
  return 0;
}
