// Ablation A3 — secure responses: per-record signatures vs the HMAC
// session, against the TLS reference (§V "Secure Responses").
//
// Claim under test: "a client and a DataCapsule-server dynamically
// establish a [shared key] in parallel with actual request/response,
// which they can use to create HMAC instead of signatures and achieve a
// steady state byte overhead roughly similar to TLS."
//
// We measure, on a live deployment: ack sizes in signature mode vs the
// first (evidence-carrying) and steady-state HMAC acks; and the CPU cost
// of producing/verifying each authenticator, next to TLS 1.3 reference
// numbers.
#include <chrono>
#include <cstdio>

#include "baselines/tls_model.hpp"
#include "crypto/hmac.hpp"
#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

struct AckSizes {
  std::size_t first = 0;
  std::size_t steady = 0;
};

AckSizes measure(bool use_sessions) {
  Scenario s(use_sessions ? 1 : 2, "secure-ack");
  auto* g = s.add_domain("g", nullptr);
  auto* r = s.add_router("r", g);
  auto* srv = s.add_server("srv", r);
  client::GdpClient::Options opts;
  opts.use_sessions = use_sessions;
  auto* c = s.add_client("writer", r, net::LinkParams::lan(), opts);
  s.attach_all();
  CapsuleSetup cap = make_capsule(s.key_rng(), "acked");
  if (!place_capsule(s, cap, *c, {srv}).ok()) std::abort();
  capsule::Writer w = cap.make_writer();

  AckSizes sizes;
  auto first = await(s.sim(), c->append(w, to_bytes("x")));
  if (!first.ok()) std::abort();
  sizes.first = first->ack_bytes;
  std::size_t steady_total = 0;
  constexpr int kReps = 10;
  for (int i = 0; i < kReps; ++i) {
    auto outcome = await(s.sim(), c->append(w, to_bytes("x")));
    if (!outcome.ok()) std::abort();
    steady_total += outcome->ack_bytes;
  }
  sizes.steady = steady_total / kReps;
  return sizes;
}

}  // namespace

int main() {
  const AckSizes sig = measure(false);
  const AckSizes hmac = measure(true);

  std::printf("# Ablation A3: secure-response overhead (append-ack payload bytes)\n");
  std::printf("%-34s %12s %14s\n", "mode", "first_bytes", "steady_bytes");
  std::printf("%-34s %12zu %14zu\n", "per-record signature + evidence", sig.first,
              sig.steady);
  std::printf("%-34s %12zu %14zu\n", "HMAC session (evidence once)", hmac.first,
              hmac.steady);
  // The ack body (capsule + hash + seqno + status + nonce) is common to
  // both modes; the authenticator-only overhead compares against TLS.
  const std::size_t common = hmac.steady - (1 + 1 + 32);  // kind byte + len + tag
  std::printf("%-34s %12s %14zu   (record header+AEAD tag+type)\n",
              "TLS 1.3 reference per record", "-",
              common + baselines::TlsModel::kPerRecordOverhead);
  std::printf("# steady-state HMAC overhead: %zu B vs TLS %zu B per message\n",
              hmac.steady - common, baselines::TlsModel::kPerRecordOverhead);

  // CPU cost of the authenticators themselves.
  Rng rng(3);
  auto key = crypto::PrivateKey::generate(rng);
  Bytes body = rng.next_bytes(200);
  crypto::SymmetricKey sym{};
  for (int i = 0; i < 32; ++i) sym[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);

  constexpr int kReps = 200;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    body[0] = static_cast<std::uint8_t>(i);
    (void)key.sign(body);
  }
  auto t1 = std::chrono::steady_clock::now();
  auto sig_obj = key.sign(body);
  for (int i = 0; i < kReps; ++i) {
    if (!key.public_key().verify(body, sig_obj)) return 1;
  }
  auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    body[0] = static_cast<std::uint8_t>(i);
    (void)crypto::hmac_sha256(BytesView(sym.data(), sym.size()), body);
  }
  auto t3 = std::chrono::steady_clock::now();

  auto us = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count() / kReps * 1e6;
  };
  std::printf("\n# authenticator CPU cost (200-byte body, wall clock)\n");
  std::printf("%-26s %10.1f us\n", "ECDSA sign", us(t0, t1));
  std::printf("%-26s %10.1f us\n", "ECDSA verify", us(t1, t2));
  std::printf("%-26s %10.2f us\n", "HMAC-SHA256", us(t2, t3));
  std::printf("# signature/HMAC cost ratio: %.0fx -> why steady state uses HMAC\n",
              us(t0, t1) / us(t2, t3));
  return 0;
}
