// Figure 6 reproduction: GDP-router forwarding rate and throughput as a
// function of PDU size.
//
// Paper setup: 32 client processes and 32 server processes, all attached
// to a single (unoptimized) GDP-router on a 4-core EC2 instance; clients
// blast PDUs of a given size at their servers.  Reported: forwarding rate
// (PDU/s) and sustained throughput; ~120k PDU/s for small PDUs, ~1 Gbps as
// PDUs approach 10 kB.
//
// Reproduction: the same 32 -> router -> 32 star with the *real* router
// code path (PDU parse, TTL, FIB lookup, link-layer re-send) driven by the
// event loop; we measure wall-clock time to forward a fixed batch.  The
// absolute numbers are an in-process upper bound (no UDP stack between
// hops), but the shape is the claim under test: per-PDU cost dominates for
// small PDUs (flat PDU/s), per-byte cost takes over as PDUs grow
// (throughput rising with size).  Flow-establishment crypto runs once per
// flow at secure-advertisement time — off the forwarding clock, exactly
// the paper's §VIII argument.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "router/endpoint.hpp"
#include "router/glookup.hpp"
#include "router/router.hpp"

using namespace gdp;

namespace {

class SinkEndpoint : public router::Endpoint {
 public:
  using Endpoint::Endpoint;
  std::uint64_t received = 0;

 protected:
  void handle_pdu(const Name&, const wire::Pdu&) override { ++received; }
};

Name source_name(int i) {
  Bytes raw(32, 0);
  raw[0] = 0xEE;
  raw[1] = static_cast<std::uint8_t>(i);
  return *Name::from_bytes(raw);
}

struct NullHandler : public net::PduHandler {
  void on_pdu(const Name&, const wire::Pdu&) override {}
};

}  // namespace

struct Point {
  std::size_t pdu_bytes;
  double pdus_per_sec;
  double gbits_per_sec;
  std::uint64_t p50_ns;
  std::uint64_t p95_ns;
  std::uint64_t p99_ns;
};

int main() {
  constexpr int kFlows = 32;
  constexpr std::uint64_t kPdusPerPoint = 200000;
  const net::LinkParams kInfiniteLink{Duration{0}, 1e15, 0.0};

  std::printf("# Figure 6: forwarding rate and throughput vs PDU size\n");
  std::printf("# 32 sources -> 1 GDP-router -> 32 sinks (in-process data path)\n");
  std::printf("%12s %15s %15s %12s %10s %10s %10s\n", "pdu_bytes",
              "pdus_per_sec", "gbits_per_sec", "wall_ms", "p50_ns", "p95_ns",
              "p99_ns");

  std::vector<Point> points;
  double flow_establish_ms = 0.0;

  for (std::size_t payload : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                              8192u, 10240u, 16384u}) {
    net::Simulator sim(1);
    net::Network net(sim);
    // Span recording would churn the ring buffer 200k times per point;
    // this benchmark wants the registry histograms only.
    net.trace().set_enabled(false);
    auto topology = std::make_shared<router::Topology>();
    Rng rng(42);
    auto router_key = crypto::PrivateKey::generate(rng);
    router::Router router(net, router_key, "bench-router", Name{}, topology);
    topology->add_router(router.name(), Name{});

    // Sinks attach through the genuine secure-advertisement handshake,
    // which installs their FIB entries (the once-per-flow crypto).
    std::vector<std::unique_ptr<SinkEndpoint>> sinks;
    for (int i = 0; i < kFlows; ++i) {
      auto key = crypto::PrivateKey::generate(rng);
      auto ep = std::make_unique<SinkEndpoint>(net, key, trust::Role::kClient,
                                               "sink-" + std::to_string(i));
      net.connect(ep->name(), router.name(), kInfiniteLink);
      ep->advertise(router.name(), {});
      sinks.push_back(std::move(ep));
    }
    // Sources are raw injectors on their own links.
    NullHandler null_handler;
    std::vector<Name> sources;
    for (int i = 0; i < kFlows; ++i) {
      Name src = source_name(i);
      net.attach(src, &null_handler);
      net.connect(src, router.name(), kInfiniteLink);
      sources.push_back(src);
    }
    const auto hs_start = std::chrono::steady_clock::now();
    sim.run();  // drain the handshakes; FIB is now warm
    const double hs_ms = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - hs_start)
                             .count() *
                         1e3;
    if (payload == 64u) {
      flow_establish_ms = hs_ms;
      std::printf("# flow establishment (32 secure advertisements, once per "
                  "flow): %.1f ms total, %.2f ms/flow\n",
                  hs_ms, hs_ms / kFlows);
    }

    wire::Pdu proto;
    proto.type = wire::MsgType::kBenchData;
    proto.payload = Bytes(payload, 0xab);

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t sent = 0;
    while (sent < kPdusPerPoint) {
      for (int i = 0; i < kFlows && sent < kPdusPerPoint; ++i, ++sent) {
        wire::Pdu pdu = proto;
        pdu.dst = sinks[static_cast<std::size_t>(i)]->name();
        pdu.src = sources[static_cast<std::size_t>(i)];
        pdu.ttl = 8;
        net.send(sources[static_cast<std::size_t>(i)], router.name(),
                 std::move(pdu));
      }
      sim.run();  // forward the batch through the router to the sinks
    }
    const auto end = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(end - start).count();

    std::uint64_t delivered = 0;
    for (const auto& ep : sinks) delivered += ep->received;
    const double rate = static_cast<double>(delivered) / wall_s;
    const double gbps = rate *
                        static_cast<double>(payload + wire::kPduOverhead) * 8.0 /
                        1e9;

    // Per-PDU forwarding latency: send one PDU at a time and clock the
    // full source -> router -> sink path, filling a registry histogram so
    // the JSON gains percentiles alongside the throughput numbers.
    telemetry::Histogram& latency =
        net.metrics().histogram("bench.fwd.latency_ns");
    constexpr std::uint64_t kLatencySamples = 4000;
    for (std::uint64_t s = 0; s < kLatencySamples; ++s) {
      const int i = static_cast<int>(s % kFlows);
      wire::Pdu pdu = proto;
      pdu.dst = sinks[static_cast<std::size_t>(i)]->name();
      pdu.src = sources[static_cast<std::size_t>(i)];
      pdu.ttl = 8;
      const auto t0 = std::chrono::steady_clock::now();
      net.send(sources[static_cast<std::size_t>(i)], router.name(),
               std::move(pdu));
      sim.run();
      const auto t1 = std::chrono::steady_clock::now();
      latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }

    std::printf("%12zu %15.0f %15.3f %12.1f %10llu %10llu %10llu\n", payload,
                rate, gbps, wall_s * 1e3,
                static_cast<unsigned long long>(latency.p50()),
                static_cast<unsigned long long>(latency.p95()),
                static_cast<unsigned long long>(latency.p99()));
    points.push_back(
        Point{payload, rate, gbps, latency.p50(), latency.p95(), latency.p99()});
  }

  if (FILE* f = std::fopen("BENCH_fig6.json", "w")) {
    std::fprintf(f, "{\n  \"flow_establish_ms_total\": %.2f,\n", flow_establish_ms);
    std::fprintf(f, "  \"flow_establish_ms_per_flow\": %.3f,\n",
                 flow_establish_ms / kFlows);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"pdu_bytes\": %zu, \"pdus_per_sec\": %.0f, "
                   "\"gbits_per_sec\": %.3f, \"fwd_latency_p50_ns\": %llu, "
                   "\"fwd_latency_p95_ns\": %llu, \"fwd_latency_p99_ns\": "
                   "%llu}%s\n",
                   points[i].pdu_bytes, points[i].pdus_per_sec,
                   points[i].gbits_per_sec,
                   static_cast<unsigned long long>(points[i].p50_ns),
                   static_cast<unsigned long long>(points[i].p95_ns),
                   static_cast<unsigned long long>(points[i].p99_ns),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_fig6.json\n");
  }
  return 0;
}
