// Figure 6 reproduction: GDP-router forwarding rate and throughput as a
// function of PDU size.
//
// Paper setup: 32 client processes and 32 server processes, all attached
// to a single (unoptimized) GDP-router on a 4-core EC2 instance; clients
// blast PDUs of a given size at their servers.  Reported: forwarding rate
// (PDU/s) and sustained throughput; ~120k PDU/s for small PDUs, ~1 Gbps as
// PDUs approach 10 kB.
//
// Two series:
//
//   router    the same 32 -> router -> 32 star with the *real* router code
//             path (in-place PduView header decode, TTL patch, snapshot-FIB
//             lookup, link-layer re-send) driven by the event loop.  The
//             shape is the claim under test: per-PDU cost dominates for
//             small PDUs (flat PDU/s), per-byte cost takes over as PDUs
//             grow (throughput rising with size, flat Gbit/s through 16 KB
//             now that frames live in pooled segments and are never
//             re-serialized per hop).
//   dataplane the sharded multi-worker engine (ShardedDataPlane): N shard
//             workers forwarding the same frames over lock-free SPSC rings
//             against RCU-style FIB snapshots.  Each origin PDU is chained
//             through ttl hops via egress resubmission, so the measured
//             rate is aggregate *forwarding operations* per second — the
//             paper's router-mesh number, not an injection rate.
//
// Both series carry the pool gauges (segment allocations, instrumented
// copy volume) so `--check` can gate allocation and copy regressions, not
// just wall-clock rates.  Flow-establishment crypto runs once per flow at
// secure-advertisement time — off the forwarding clock, exactly the
// paper's §VIII argument.
//
// Observability (the flight-recorder pipeline): the 4-shard / 4096 B
// point runs with a live TelemetryPoller sampling ring occupancy into a
// StatsTimeline and honors GDP_PERFETTO_JSON / GDP_TIMELINE_JSON (writes
// the recorder's Perfetto trace and the pressure timeline there).  The
// dataplane series reports merged and per-shard forwarding-latency
// percentiles from the recorder's sampled spans.
//
// Usage:
//   fig6_router_forwarding                 full run, rewrites BENCH_fig6.json
//   fig6_router_forwarding --check [base]  smoke run + structural gates
//                                          (monotone 4-16KB band, zero-alloc
//                                          steady state, one-copy-per-PDU,
//                                          recorder captured >= 4 event
//                                          types at the telemetry point);
//                                          with a baseline JSON also fails
//                                          on a >15% pdus_per_sec regression.
//   fig6_router_forwarding --recorder-overhead
//                                          recorder-on vs recorder-off rate
//                                          delta at {4 shards, 4096 B};
//                                          fails above 5%.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "router/dataplane.hpp"
#include "router/endpoint.hpp"
#include "router/fib.hpp"
#include "router/glookup.hpp"
#include "router/router.hpp"
#include "telemetry/timeline.hpp"

using namespace gdp;

namespace {

class SinkEndpoint : public router::Endpoint {
 public:
  using Endpoint::Endpoint;
  std::uint64_t received = 0;

 protected:
  void handle_pdu(const Name&, const wire::Pdu&) override { ++received; }
  // Consume straight from the wire segment: delivery costs no materialize,
  // so the gauge deltas below isolate the per-hop copy count.
  void handle_pdu_view(const Name&, wire::PduView view) override {
    ++received;
    (void)view.payload();
  }
};

Name source_name(int i) {
  Bytes raw(32, 0);
  raw[0] = 0xEE;
  raw[1] = static_cast<std::uint8_t>(i);
  return *Name::from_bytes(raw);
}

Name target_name(std::uint32_t i) {
  Bytes raw(32, 0);
  raw[0] = 0xD6;
  raw[1] = static_cast<std::uint8_t>(i >> 8);
  raw[2] = static_cast<std::uint8_t>(i);
  return *Name::from_bytes(raw);
}

struct NullHandler : public net::PduHandler {
  void on_pdu(const Name&, const wire::Pdu&) override {}
};

struct Point {
  std::size_t pdu_bytes;
  double pdus_per_sec;
  double gbits_per_sec;
  std::uint64_t p50_ns;
  std::uint64_t p95_ns;
  std::uint64_t p99_ns;
  std::uint64_t segment_allocs;   ///< fresh heap segments during the blast
  double copied_bytes_per_pdu;    ///< instrumented copy volume / delivered
};

struct ShardLatency {
  std::uint64_t p50_ns, p95_ns, p99_ns;
};

struct DpPoint {
  std::size_t shards;
  std::size_t pdu_bytes;
  double pdus_per_sec;   ///< aggregate forwarding operations per second
  double gbits_per_sec;
  std::uint64_t hops_per_origin;
  std::uint64_t segment_allocs;
  double copied_bytes_per_origin;  ///< must equal wire size: one origin copy
  // Flight-recorder outputs (sampled forwarding spans, wall-clock).
  ShardLatency merged_latency{};           ///< all shards merged bucket-wise
  std::vector<ShardLatency> shard_latency; ///< one entry per shard
  std::size_t recorder_event_types = 0;    ///< distinct event types captured
  std::size_t timeline_samples = 0;        ///< pressure-timeline points
  bool threaded = false;                   ///< false: lockstep (GDP_DETERMINISTIC)
};

struct Results {
  std::vector<Point> points;
  std::vector<DpPoint> dp_points;
  double flow_establish_ms = 0.0;
};

// ---- series 1: the full router path over the simulator fabric --------------

Point run_router_point(std::size_t payload, std::uint64_t pdus_per_point,
                       std::uint64_t latency_samples, double* flow_ms_out) {
  constexpr int kFlows = 32;
  const net::LinkParams kInfiniteLink{Duration{0}, 1e15, 0.0};

  net::Simulator sim(1);
  net::Network net(sim);
  // Span recording would churn the ring buffer 200k times per point;
  // this benchmark wants the registry histograms only.
  net.trace().set_enabled(false);
  auto topology = std::make_shared<router::Topology>();
  Rng rng(42);
  auto router_key = crypto::PrivateKey::generate(rng);
  router::Router router(net, router_key, "bench-router", Name{}, topology);
  topology->add_router(router.name(), Name{});

  // Sinks attach through the genuine secure-advertisement handshake,
  // which installs their FIB entries (the once-per-flow crypto).
  std::vector<std::unique_ptr<SinkEndpoint>> sinks;
  for (int i = 0; i < kFlows; ++i) {
    auto key = crypto::PrivateKey::generate(rng);
    auto ep = std::make_unique<SinkEndpoint>(net, key, trust::Role::kClient,
                                             "sink-" + std::to_string(i));
    net.connect(ep->name(), router.name(), kInfiniteLink);
    ep->advertise(router.name(), {});
    sinks.push_back(std::move(ep));
  }
  // Sources are raw injectors on their own links.
  NullHandler null_handler;
  std::vector<Name> sources;
  for (int i = 0; i < kFlows; ++i) {
    Name src = source_name(i);
    net.attach(src, &null_handler);
    net.connect(src, router.name(), kInfiniteLink);
    sources.push_back(src);
  }
  const auto hs_start = std::chrono::steady_clock::now();
  sim.run();  // drain the handshakes; FIB is now warm
  if (flow_ms_out != nullptr) {
    *flow_ms_out = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - hs_start)
                       .count() *
                   1e3;
  }

  wire::Pdu proto;
  proto.type = wire::MsgType::kBenchData;
  proto.payload = Bytes(payload, 0xab);

  auto blast = [&](std::uint64_t count) {
    std::uint64_t sent = 0;
    while (sent < count) {
      for (int i = 0; i < kFlows && sent < count; ++i, ++sent) {
        wire::Pdu pdu = proto;
        pdu.dst = sinks[static_cast<std::size_t>(i)]->name();
        pdu.src = sources[static_cast<std::size_t>(i)];
        pdu.ttl = 8;
        net.send(sources[static_cast<std::size_t>(i)], router.name(),
                 std::move(pdu));
      }
      sim.run();  // forward the batch through the router to the sinks
    }
  };

  // Warm the segment pool with one full batch so the timed region
  // measures the steady state (and its gauge deltas prove it allocates
  // nothing).
  blast(kFlows);
  const std::uint64_t warmed = kFlows;

  // Best-of-3: the blast shares the machine with whatever else runs, and
  // a regression gate built on a single noisy sample fails spuriously.
  // The fastest repetition is the least-perturbed measurement; the gauge
  // deltas span all repetitions (a copy or allocation in any of them is
  // still caught).
  constexpr int kReps = 3;
  const auto gauges_before = BufferStats::snapshot();
  double best_wall_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    blast(pdus_per_point);
    const auto end = std::chrono::steady_clock::now();
    const double wall_s = std::chrono::duration<double>(end - start).count();
    if (rep == 0 || wall_s < best_wall_s) best_wall_s = wall_s;
  }
  const auto gauges_after = BufferStats::snapshot();

  std::uint64_t delivered = 0;
  for (const auto& ep : sinks) delivered += ep->received;
  delivered -= warmed;
  const double rate = static_cast<double>(pdus_per_point) / best_wall_s;
  const double gbps =
      rate * static_cast<double>(payload + wire::kPduOverhead) * 8.0 / 1e9;

  // Per-PDU forwarding latency: send one PDU at a time and clock the
  // full source -> router -> sink path, filling a registry histogram so
  // the JSON gains percentiles alongside the throughput numbers.
  telemetry::Histogram& latency =
      net.metrics().histogram("bench.fwd.latency_ns");
  for (std::uint64_t s = 0; s < latency_samples; ++s) {
    const int i = static_cast<int>(s % kFlows);
    wire::Pdu pdu = proto;
    pdu.dst = sinks[static_cast<std::size_t>(i)]->name();
    pdu.src = sources[static_cast<std::size_t>(i)];
    pdu.ttl = 8;
    const auto t0 = std::chrono::steady_clock::now();
    net.send(sources[static_cast<std::size_t>(i)], router.name(),
             std::move(pdu));
    sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    latency.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }

  return Point{payload,
               rate,
               gbps,
               latency.p50(),
               latency.p95(),
               latency.p99(),
               gauges_after.segment_allocs - gauges_before.segment_allocs,
               static_cast<double>(gauges_after.bytes_copied -
                                   gauges_before.bytes_copied) /
                   static_cast<double>(delivered)};
}

// ---- series 2: the sharded multi-worker data plane -------------------------

DpPoint run_dataplane_point(std::size_t num_shards, std::size_t payload,
                            std::uint64_t origins, bool recorder_on = true,
                            bool capture_telemetry = false) {
  constexpr std::uint32_t kTargets = 64;
  constexpr std::uint8_t kTtl = 16;  // hops per origin PDU

  router::FibPublisher fib;
  const Name hop = *Name::from_bytes(Bytes(32, 0x7A));
  for (std::uint32_t i = 0; i < kTargets; ++i) {
    fib.upsert(target_name(i), hop, 0);
  }
  fib.publish();

  router::ShardedDataPlane::Config cfg;
  cfg.num_shards = num_shards;
  cfg.ring_capacity = 4096;
  cfg.batch = 512;  // longer bursts per quiescent point: less loop overhead
  cfg.recorder.enabled = recorder_on;
  router::ShardedDataPlane* plane = nullptr;
  std::atomic<std::uint64_t> chains_done{0};
  router::ShardedDataPlane dp(
      cfg, fib,
      [&](std::size_t shard, const Name&, wire::PduView pdu) {
        // Chained forwarding: the frame hops again until its TTL is spent.
        // Runs on the owning worker, so resubmit() over the self-handoff
        // ring is single-producer/single-consumer by construction.
        if (pdu.ttl() == 0 || !plane->resubmit(shard, std::move(pdu))) {
          chains_done.fetch_add(1, std::memory_order_relaxed);
        }
      });
  plane = &dp;
  const bool lockstep = dp.deterministic();

  wire::Pdu proto;
  proto.type = wire::MsgType::kBenchData;
  proto.ttl = kTtl;
  proto.payload = Bytes(payload, 0xab);
  auto make_view = [&](std::uint64_t n) {
    wire::Pdu pdu = proto;
    pdu.dst = target_name(static_cast<std::uint32_t>(n % kTargets));
    pdu.src = source_name(0);
    return wire::PduView::build(pdu);
  };

  // Bounded in-flight window: each chain keeps exactly one frame alive,
  // so the window caps the live segment population.  This keeps the
  // working set cache-resident and the pool in steady reuse — flooding
  // every ring instead measures memory latency, not forwarding cost.
  constexpr std::uint64_t kWindow = 1024;
  auto pump = [&](std::uint64_t count, std::uint64_t base) {
    for (std::uint64_t n = 0; n < count; ++n) {
      while (base + n - chains_done.load(std::memory_order_relaxed) >=
             kWindow) {
        if (lockstep) {
          dp.run_until_idle();
        } else {
          std::this_thread::yield();
        }
      }
      wire::PduView pdu = make_view(base + n);
      // RSS-style spreading: hash the same header field the owner hash
      // uses, so ingress lands on the owning shard directly.
      const std::size_t shard = dp.shard_of(pdu.dst_bytes());
      while (!dp.submit_to(shard, std::move(pdu))) {
        if (lockstep) {
          dp.run_until_idle();
        } else {
          std::this_thread::yield();
        }
      }
    }
    const std::uint64_t want = base + count;
    while (chains_done.load(std::memory_order_relaxed) < want) {
      if (lockstep) {
        dp.run_until_idle();
      } else {
        std::this_thread::yield();
      }
    }
  };

  // Live queue-pressure sampling at the telemetry point: a background
  // poller appends ring occupancy / high-water / pool gauges to the
  // timeline while the workers forward.  In lockstep mode there is no
  // concurrency to observe live — one synchronous sample after the run
  // stands in.
  telemetry::StatsTimeline timeline;
  std::unique_ptr<telemetry::TelemetryPoller> poller;
  if (capture_telemetry && !lockstep) {
    poller = std::make_unique<telemetry::TelemetryPoller>(
        [&dp, &timeline](std::int64_t t_ns) {
          dp.sample_pressure(t_ns, timeline);
        },
        std::chrono::milliseconds(1));
    poller->start();
  }

  dp.start();
  // Warm-up populates the pool with the steady-state in-flight frames.
  const std::uint64_t warm = origins / 10 + 1;
  pump(warm, 0);

  // Best-of-3 (same rationale as the router series): keep the
  // least-perturbed repetition, gauge deltas span all of them.
  constexpr int kReps = 3;
  std::uint64_t submitted = warm;
  std::uint64_t forwarded = 0;
  std::uint64_t fwd_bytes = 0;
  double best_rate = 0.0;
  const auto gauges_before = BufferStats::snapshot();
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t fwd_before = dp.forwarded();
    const std::uint64_t bytes_before = dp.forwarded_bytes();
    const auto start = std::chrono::steady_clock::now();
    pump(origins, submitted);
    const auto end = std::chrono::steady_clock::now();
    submitted += origins;
    forwarded = dp.forwarded() - fwd_before;
    fwd_bytes = dp.forwarded_bytes() - bytes_before;
    const double wall_s = std::chrono::duration<double>(end - start).count();
    best_rate = std::max(best_rate, static_cast<double>(forwarded) / wall_s);
  }
  const auto gauges_after = BufferStats::snapshot();
  if (poller != nullptr) poller->stop();
  dp.stop();
  if (capture_telemetry && lockstep) dp.sample_pressure(0, timeline);

  DpPoint p;
  p.shards = num_shards;
  p.pdu_bytes = payload;
  p.pdus_per_sec = best_rate;
  p.gbits_per_sec = best_rate * static_cast<double>(fwd_bytes) /
                    static_cast<double>(forwarded) * 8.0 / 1e9;
  p.hops_per_origin = forwarded / origins;
  p.segment_allocs = gauges_after.segment_allocs - gauges_before.segment_allocs;
  p.copied_bytes_per_origin =
      static_cast<double>(gauges_after.bytes_copied -
                          gauges_before.bytes_copied) /
      static_cast<double>(kReps * origins);
  p.threaded = !lockstep;

  // Recorder outputs (exact: workers are joined).  Percentiles come from
  // the sampled forwarding spans in the segregated wall-clock registries.
  telemetry::Histogram merged;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const telemetry::Histogram& h = dp.fwd_latency(i);
    p.shard_latency.push_back(ShardLatency{h.p50(), h.p95(), h.p99()});
    merged.merge(h);
  }
  p.merged_latency = ShardLatency{merged.p50(), merged.p95(), merged.p99()};
  std::vector<bool> types(
      static_cast<std::size_t>(telemetry::FlightEventType::kCount), false);
  const auto& rec = dp.recorder();
  for (std::size_t t = 0; t < rec.tracks(); ++t) {
    for (const telemetry::FlightEvent& e : rec.ring(t).snapshot()) {
      types[static_cast<std::size_t>(e.type)] = true;
    }
  }
  for (const bool b : types) p.recorder_event_types += b ? 1 : 0;
  p.timeline_samples = timeline.sample_count();

  if (capture_telemetry) {
    if (const char* path = std::getenv("GDP_PERFETTO_JSON")) {
      std::ofstream out(path, std::ios::trunc);
      out << dp.perfetto_json();
    }
    if (const char* path = std::getenv("GDP_TIMELINE_JSON")) {
      std::ofstream out(path, std::ios::trunc);
      out << timeline.to_json() << '\n';
    }
  }
  return p;
}

// ---- runner, JSON, and the --check gates ------------------------------------

Results run_all(bool smoke) {
  const std::uint64_t pdus_per_point = smoke ? 20000 : 200000;
  const std::uint64_t latency_samples = smoke ? 1000 : 4000;
  const std::uint64_t dp_origins = smoke ? 25000 : 250000;

  Results out;
  std::printf("# Figure 6: forwarding rate and throughput vs PDU size\n");
  std::printf("# 32 sources -> 1 GDP-router -> 32 sinks (in-process data path)\n");
  std::printf("%12s %15s %15s %10s %10s %10s %8s %12s\n", "pdu_bytes",
              "pdus_per_sec", "gbits_per_sec", "p50_ns", "p95_ns", "p99_ns",
              "allocs", "copied/pdu");
  for (std::size_t payload : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                              6144u, 8192u, 10240u, 12288u, 16384u}) {
    double flow_ms = 0.0;
    Point p = run_router_point(payload, pdus_per_point, latency_samples,
                               &flow_ms);
    if (payload == 64u) {
      out.flow_establish_ms = flow_ms;
      std::printf("# flow establishment (32 secure advertisements, once per "
                  "flow): %.1f ms total, %.2f ms/flow\n",
                  flow_ms, flow_ms / 32.0);
    }
    std::printf("%12zu %15.0f %15.3f %10llu %10llu %10llu %8llu %12.1f\n",
                p.pdu_bytes, p.pdus_per_sec, p.gbits_per_sec,
                static_cast<unsigned long long>(p.p50_ns),
                static_cast<unsigned long long>(p.p95_ns),
                static_cast<unsigned long long>(p.p99_ns),
                static_cast<unsigned long long>(p.segment_allocs),
                p.copied_bytes_per_pdu);
    out.points.push_back(p);
  }

  std::printf("# sharded data plane: aggregate forwarding ops/s "
              "(%u-hop chains, RSS ingress)\n", 16u);
  std::printf("%8s %12s %15s %15s %8s %14s %10s %10s %10s\n", "shards",
              "pdu_bytes", "pdus_per_sec", "gbits_per_sec", "allocs",
              "copied/origin", "p50_ns", "p95_ns", "p99_ns");
  const struct { std::size_t shards, payload; } dp_cases[] = {
      {1, 64}, {2, 64}, {4, 64}, {8, 64}, {4, 4096}};
  for (const auto& c : dp_cases) {
    // {4 shards, 4096 B} is the telemetry point: live pressure poller plus
    // the GDP_PERFETTO_JSON / GDP_TIMELINE_JSON artifact capture.
    const bool capture = c.shards == 4 && c.payload == 4096;
    DpPoint p = run_dataplane_point(c.shards, c.payload, dp_origins,
                                    /*recorder_on=*/true, capture);
    std::printf("%8zu %12zu %15.0f %15.3f %8llu %14.1f %10llu %10llu %10llu\n",
                p.shards, p.pdu_bytes, p.pdus_per_sec, p.gbits_per_sec,
                static_cast<unsigned long long>(p.segment_allocs),
                p.copied_bytes_per_origin,
                static_cast<unsigned long long>(p.merged_latency.p50_ns),
                static_cast<unsigned long long>(p.merged_latency.p95_ns),
                static_cast<unsigned long long>(p.merged_latency.p99_ns));
    for (std::size_t s = 0; s < p.shard_latency.size(); ++s) {
      std::printf("#   shard%zu fwd latency p50 %llu ns  p95 %llu ns  "
                  "p99 %llu ns\n",
                  s, static_cast<unsigned long long>(p.shard_latency[s].p50_ns),
                  static_cast<unsigned long long>(p.shard_latency[s].p95_ns),
                  static_cast<unsigned long long>(p.shard_latency[s].p99_ns));
    }
    if (capture) {
      std::printf("# telemetry point: %zu recorder event types, %zu timeline "
                  "samples (%s)\n",
                  p.recorder_event_types, p.timeline_samples,
                  p.threaded ? "threaded" : "lockstep");
    }
    out.dp_points.push_back(std::move(p));
  }
  return out;
}

void write_json(const Results& r) {
  FILE* f = std::fopen("BENCH_fig6.json", "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"flow_establish_ms_total\": %.2f,\n",
               r.flow_establish_ms);
  std::fprintf(f, "  \"flow_establish_ms_per_flow\": %.3f,\n",
               r.flow_establish_ms / 32.0);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const Point& p = r.points[i];
    std::fprintf(f,
                 "    {\"pdu_bytes\": %zu, \"pdus_per_sec\": %.0f, "
                 "\"gbits_per_sec\": %.3f, \"fwd_latency_p50_ns\": %llu, "
                 "\"fwd_latency_p95_ns\": %llu, \"fwd_latency_p99_ns\": %llu, "
                 "\"segment_allocs\": %llu, \"copied_bytes_per_pdu\": %.1f}%s\n",
                 p.pdu_bytes, p.pdus_per_sec, p.gbits_per_sec,
                 static_cast<unsigned long long>(p.p50_ns),
                 static_cast<unsigned long long>(p.p95_ns),
                 static_cast<unsigned long long>(p.p99_ns),
                 static_cast<unsigned long long>(p.segment_allocs),
                 p.copied_bytes_per_pdu,
                 i + 1 < r.points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"dataplane\": [\n");
  for (std::size_t i = 0; i < r.dp_points.size(); ++i) {
    const DpPoint& p = r.dp_points[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"pdu_bytes\": %zu, "
                 "\"pdus_per_sec\": %.0f, \"gbits_per_sec\": %.3f, "
                 "\"hops_per_origin\": %llu, \"segment_allocs\": %llu, "
                 "\"copied_bytes_per_origin\": %.1f,\n"
                 "     \"fwd_latency_p50_ns\": %llu, "
                 "\"fwd_latency_p95_ns\": %llu, "
                 "\"fwd_latency_p99_ns\": %llu, \"shard_latency\": [",
                 p.shards, p.pdu_bytes, p.pdus_per_sec, p.gbits_per_sec,
                 static_cast<unsigned long long>(p.hops_per_origin),
                 static_cast<unsigned long long>(p.segment_allocs),
                 p.copied_bytes_per_origin,
                 static_cast<unsigned long long>(p.merged_latency.p50_ns),
                 static_cast<unsigned long long>(p.merged_latency.p95_ns),
                 static_cast<unsigned long long>(p.merged_latency.p99_ns));
    for (std::size_t s = 0; s < p.shard_latency.size(); ++s) {
      std::fprintf(f,
                   "{\"shard\": %zu, \"p50_ns\": %llu, \"p95_ns\": %llu, "
                   "\"p99_ns\": %llu}%s",
                   s,
                   static_cast<unsigned long long>(p.shard_latency[s].p50_ns),
                   static_cast<unsigned long long>(p.shard_latency[s].p95_ns),
                   static_cast<unsigned long long>(p.shard_latency[s].p99_ns),
                   s + 1 < p.shard_latency.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < r.dp_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_fig6.json\n");
}

/// Extracts the pdus_per_sec that follows `needle` in the baseline JSON.
/// Returns a negative value when absent.
double baseline_rate(const std::string& json, const std::string& needle) {
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  const std::string key = "\"pdus_per_sec\": ";
  const std::size_t rate_pos = json.find(key, pos);
  if (rate_pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + rate_pos + key.size(), nullptr);
}

/// CI smoke gate.  Structural invariants always run:
///   * throughput is monotone (within 15%) across the 4 KB..16 KB band —
///     the historical trim-induced cliff sat at 4 KB -> 8 KB;
///   * the steady-state blast allocates no fresh segments (pool reuse);
///   * exactly one instrumented copy per PDU (the origin serialize) on
///     both series — per-hop forwarding copies nothing.
/// With a baseline JSON, additionally fails any point whose pdus_per_sec
/// dropped more than 15% below the committed number.
int run_check(const char* baseline_path) {
  const Results r = run_all(/*smoke=*/true);
  int rc = 0;
  auto fail = [&rc](const char* what, const std::string& detail) {
    std::fprintf(stderr, "--check FAILED: %s (%s)\n", what, detail.c_str());
    rc = 1;
  };

  for (std::size_t i = 0; i + 1 < r.points.size(); ++i) {
    const Point& a = r.points[i];
    const Point& b = r.points[i + 1];
    if (a.pdu_bytes >= 4096 && b.pdu_bytes <= 16384 &&
        b.gbits_per_sec < 0.85 * a.gbits_per_sec) {
      fail("throughput cliff in the 4-16KB band",
           std::to_string(a.pdu_bytes) + "B " +
               std::to_string(a.gbits_per_sec) + " Gbit/s -> " +
               std::to_string(b.pdu_bytes) + "B " +
               std::to_string(b.gbits_per_sec) + " Gbit/s");
    }
  }
  for (const Point& p : r.points) {
    const double wire = static_cast<double>(p.pdu_bytes + wire::kPduOverhead);
    if (p.segment_allocs != 0) {
      fail("steady-state blast allocated fresh segments",
           std::to_string(p.pdu_bytes) + "B: " +
               std::to_string(p.segment_allocs) + " allocs");
    }
    if (p.copied_bytes_per_pdu > wire + 0.5) {
      fail("more than one copy per forwarded PDU",
           std::to_string(p.pdu_bytes) + "B: " +
               std::to_string(p.copied_bytes_per_pdu) + " copied vs wire " +
               std::to_string(wire));
    }
  }
  for (const DpPoint& p : r.dp_points) {
    const double wire = static_cast<double>(p.pdu_bytes + wire::kPduOverhead);
    // One origin serialize regardless of hop count: per-hop forwarding on
    // the sharded plane must copy nothing.
    if (p.copied_bytes_per_origin > wire + 0.5) {
      fail("sharded plane copied per hop",
           std::to_string(p.shards) + " shards: " +
               std::to_string(p.copied_bytes_per_origin) + " copied/origin " +
               "vs wire " + std::to_string(wire));
    }
    // The telemetry point must have actually observed the pipeline: a
    // diverse event mix in the recorder rings, sampled latency spans, and
    // (threaded only) live pressure samples from the poller.
    if (p.shards == 4 && p.pdu_bytes == 4096) {
      if (p.recorder_event_types < 4) {
        fail("flight recorder captured too few event types",
             std::to_string(p.recorder_event_types) + " < 4");
      }
      if (p.merged_latency.p50_ns == 0) {
        fail("no sampled forwarding-latency spans", "merged p50 is 0");
      }
      if (p.threaded && p.timeline_samples == 0) {
        fail("pressure poller recorded no timeline samples", "0 samples");
      }
    }
  }

  if (baseline_path != nullptr) {
    FILE* f = std::fopen(baseline_path, "r");
    if (f == nullptr) {
      std::fprintf(stderr, "--check: cannot open %s\n", baseline_path);
      return 1;
    }
    std::string json;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, got);
    std::fclose(f);

    constexpr double kFloor = 0.85;
    for (const Point& p : r.points) {
      const double base = baseline_rate(
          json, "{\"pdu_bytes\": " + std::to_string(p.pdu_bytes) + ",");
      if (base <= 0.0) continue;  // new point, no baseline yet
      const double ratio = p.pdus_per_sec / base;
      std::printf("%8zuB baseline %12.0f/s current %12.0f/s ratio %.2f %s\n",
                  p.pdu_bytes, base, p.pdus_per_sec, ratio,
                  ratio >= kFloor ? "OK" : "REGRESSED");
      if (ratio < kFloor) rc = 1;
    }
    for (const DpPoint& p : r.dp_points) {
      const double base = baseline_rate(
          json, "{\"shards\": " + std::to_string(p.shards) +
                    ", \"pdu_bytes\": " + std::to_string(p.pdu_bytes) + ",");
      if (base <= 0.0) continue;
      const double ratio = p.pdus_per_sec / base;
      std::printf("%zu-shard %6zuB baseline %12.0f/s current %12.0f/s "
                  "ratio %.2f %s\n",
                  p.shards, p.pdu_bytes, base, p.pdus_per_sec, ratio,
                  ratio >= kFloor ? "OK" : "REGRESSED");
      if (ratio < kFloor) rc = 1;
    }
  }

  std::printf("--check %s\n", rc == 0 ? "OK" : "FAILED");
  return rc;
}

/// Always-on budget gate: forwarding rate with the recorder enabled must
/// stay within 5% of the recorder-off rate at the telemetry point.  Each
/// arm is the best of kArms full measurements (and each measurement is
/// itself best-of-3 inside run_dataplane_point), alternating off/on so a
/// machine-load drift hits both arms equally; best-of converges each arm
/// to its true ceiling, so per-run scheduler noise (easily 10-20% on
/// shared runners, far larger than the effect measured here) cancels
/// instead of masquerading as recorder cost.  A discarded warmup run
/// absorbs cold caches and first-touch page faults.
int run_recorder_overhead() {
  const std::uint64_t origins = 25000;
  constexpr int kArms = 5;
  run_dataplane_point(4, 4096, origins, /*recorder_on=*/true);  // warmup
  double best_off = 0.0, best_on = 0.0, best_pair = 1.0;
  for (int arm = 0; arm < kArms; ++arm) {
    const DpPoint off = run_dataplane_point(4, 4096, origins,
                                            /*recorder_on=*/false);
    const DpPoint on = run_dataplane_point(4, 4096, origins,
                                           /*recorder_on=*/true);
    best_off = std::max(best_off, off.pdus_per_sec);
    best_on = std::max(best_on, on.pdus_per_sec);
    // Adjacent off/on pair: measured back-to-back, so slow machine
    // phases hit both sides of the ratio.
    best_pair = std::min(best_pair,
                         (off.pdus_per_sec - on.pdus_per_sec) /
                             off.pdus_per_sec);
  }
  // Two estimators, both contaminated by noise in one direction only:
  // best-of-ceilings overstates overhead when the on-arms never catch a
  // quiet phase, the best adjacent pair understates it when one on-run
  // gets lucky.  A real >5% recorder cost fails both; take the min.
  const double overhead = std::min((best_off - best_on) / best_off,
                                   best_pair);
  std::printf("# recorder overhead at {4 shards, 4096B}: off %.0f/s, "
              "on %.0f/s, delta %.2f%%\n",
              best_off, best_on, overhead * 100.0);
  if (overhead > 0.05) {
    std::fprintf(stderr,
                 "--recorder-overhead FAILED: %.2f%% > 5%% budget\n",
                 overhead * 100.0);
    return 1;
  }
  std::printf("--recorder-overhead OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return run_check(i + 1 < argc ? argv[i + 1] : nullptr);
    }
    if (std::strcmp(argv[i], "--recorder-overhead") == 0) {
      return run_recorder_overhead();
    }
  }
  const Results r = run_all(/*smoke=*/false);
  write_json(r);
  return 0;
}
