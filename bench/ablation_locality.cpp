// Ablation A5 — locality and anycast (§II "Locality", §VI).
//
// "Local resources enable low-latency and real-time interactions
// unavailable from the cloud."  We sweep the RTT to the only replica of a
// capsule and measure per-record read/append latency; then we add an edge
// replica next to the client and show that (a) anycast automatically
// routes to it and (b) latency collapses to the local RTT — without any
// change to the application, which still addresses the capsule by name.
#include <cstdio>

#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

struct Latency {
  double append_ms;
  double read_ms;
};

Latency measure(double replica_rtt_ms, bool add_edge_replica, std::uint64_t seed) {
  Scenario s(seed, "locality");
  auto* g = s.add_domain("g", nullptr);
  auto* access = s.add_router("access", g);
  auto* remote = s.add_router("remote", g);
  s.link_routers(access, remote, net::LinkParams::wan(replica_rtt_ms));
  auto* far_srv = s.add_server("far", remote);
  server::CapsuleServer* near_srv = nullptr;
  if (add_edge_replica) near_srv = s.add_server("near", access);
  auto* c = s.add_client("client", access);
  s.attach_all();

  CapsuleSetup cap = make_capsule(s.key_rng(), "located");
  std::vector<server::CapsuleServer*> replicas{far_srv};
  if (near_srv != nullptr) replicas.push_back(near_srv);
  if (!place_capsule(s, cap, *c, replicas).ok()) std::abort();

  capsule::Writer w = cap.make_writer();
  // Warm routes and sessions.
  if (!await(s.sim(), c->append(w, to_bytes("warm"))).ok()) std::abort();
  if (!await(s.sim(), c->read_latest(cap.metadata)).ok()) std::abort();
  s.settle();

  constexpr int kReps = 10;
  double append_ms = 0, read_ms = 0;
  for (int i = 0; i < kReps; ++i) {
    TimePoint t0 = s.sim().now();
    if (!await(s.sim(), c->append(w, to_bytes("x"))).ok()) std::abort();
    append_ms += to_seconds(s.sim().now() - t0) * 1e3;
    s.settle();
    t0 = s.sim().now();
    if (!await(s.sim(), c->read_latest(cap.metadata)).ok()) std::abort();
    read_ms += to_seconds(s.sim().now() - t0) * 1e3;
  }
  return Latency{append_ms / kReps, read_ms / kReps};
}

}  // namespace

int main() {
  std::printf("# Ablation A5: locality — per-record latency vs replica distance\n");
  std::printf("%-14s %12s %12s %12s\n", "replica_rtt", "edge_replica", "append_ms",
              "read_ms");
  for (double rtt : {2.0, 10.0, 40.0, 100.0, 200.0}) {
    Latency cloud_only = measure(rtt, false, 3);
    std::printf("%11.0fms %12s %12.2f %12.2f\n", rtt, "no", cloud_only.append_ms,
                cloud_only.read_ms);
  }
  // With an edge replica, the capsule name anycasts to local storage: the
  // distance to the far replica stops mattering entirely.
  for (double rtt : {40.0, 200.0}) {
    Latency with_edge = measure(rtt, true, 4);
    std::printf("%11.0fms %12s %12.2f %12.2f\n", rtt, "yes", with_edge.append_ms,
                with_edge.read_ms);
  }
  std::printf("# latency tracks the WAN RTT until an edge replica exists; then\n");
  std::printf("# anycast pins traffic locally (the record-level Figure-8 effect)\n");
  return 0;
}
