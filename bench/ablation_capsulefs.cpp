// Ablation A8 — contended compare-and-append on one CapsuleFS directory
// capsule, the experiment behind BENCH_capsulefs.json.
//
// N credentialed writers (N in {1, 8, 64, 256}) hammer ONE shared
// multi-writer directory capsule replicated on two servers, every record
// landing through the SCL compare-and-append path.  Each round all
// writers with work left race a CAS against the tip they last saw; the
// replicas accept whichever arrives while the tip still matches and nack
// the rest with the new tip, so losers rebase and retry the next round.
// There is no coordinator anywhere in the write path.
//
// Reported per writer count: committed appends, lost races (client and
// replica side), conflict rate, sim-time throughput, and the converged
// tree digest.  Gates (enforced in --smoke too):
//   * every writer count converges: all replicas replay to one identical
//     tree digest, zero abandoned ops;
//   * conflict rate grows with contention (64 writers lose more races
//     than 1 writer, which loses none);
//   * determinism: rerunning the 64-writer config with the same seed
//     reproduces the digest byte for byte.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "caapi/fsload.hpp"
#include "harness/scenario.hpp"

using namespace gdp;
using caapi::FsLoadOptions;
using caapi::GdpFilesystem;
using caapi::Mount;
using harness::Scenario;

namespace {

struct CellResult {
  std::size_t writers = 0;
  std::uint64_t ops = 0;
  std::uint64_t committed = 0;
  std::uint64_t conflicts = 0;        // client-side lost races
  std::uint64_t failures = 0;
  std::uint64_t srv_cas_win = 0;      // replica-side accept/nack counters
  std::uint64_t srv_cas_conflict = 0;
  double conflict_rate = 0;           // conflicts / (committed + conflicts)
  double sim_s = 0;                   // hammer phase, excludes anti-entropy
  double throughput_ops_s = 0;
  bool converged = false;
  std::string digest;
};

CellResult run_cell(std::size_t writers, std::size_t ops_per_writer,
                    std::uint64_t seed) {
  CellResult out;
  out.writers = writers;
  out.ops = static_cast<std::uint64_t>(writers) * ops_per_writer;

  Scenario s(seed, "capsulefs-" + std::to_string(writers));
  auto* g = s.add_domain("g", nullptr);
  auto* r1 = s.add_router("r1", g);
  auto* r2 = s.add_router("r2", g);
  s.link_routers(r1, r2, net::LinkParams::wan(5));
  auto* s1 = s.add_server("s1", r1);
  auto* s2 = s.add_server("s2", r2);
  std::vector<client::GdpClient*> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(s.add_client("c" + std::to_string(i), i % 2 ? r2 : r1));
  }
  s.attach_all();

  auto fs = GdpFilesystem::mount(
      Mount::create(s, *clients[0], {s1, s2}, "bench"));
  if (!fs.ok()) std::abort();

  FsLoadOptions options;
  options.writers = writers;
  options.ops_per_writer = ops_per_writer;
  options.concurrency = GdpFilesystem::Concurrency::kCas;
  // Worst case roughly one CAS win lands per replica per round.
  options.max_rounds = static_cast<std::uint32_t>(out.ops) + 64;
  options.final_settle = from_seconds(20);

  const TimePoint t0 = s.sim().now();
  auto report = caapi::run_fs_load(s, *fs, {s1, s2}, clients, options);
  const TimePoint t1 = s.sim().now();
  if (!report.ok()) std::abort();

  out.committed = report->committed;
  out.conflicts = report->conflicts;
  out.failures = report->failures;
  out.conflict_rate =
      out.committed + out.conflicts > 0
          ? static_cast<double>(out.conflicts) /
                static_cast<double>(out.committed + out.conflicts)
          : 0;
  // The convergence phase is a fixed anti-entropy window; throughput is
  // committed appends over the contended hammer phase alone.
  out.sim_s = static_cast<double>((t1 - t0 - options.final_settle).count()) / 1e9;
  out.throughput_ops_s =
      out.sim_s > 0 ? static_cast<double>(out.committed) / out.sim_s : 0;
  out.converged = report->converged &&
                  report->client_digest == report->replica_digests[0];
  out.digest = report->client_digest.hex();

  auto& m = s.net().metrics();
  out.srv_cas_win = m.counter("server.s1.scl.cas.win").value() +
                    m.counter("server.s2.scl.cas.win").value();
  out.srv_cas_conflict = m.counter("server.s1.scl.cas.conflict").value() +
                         m.counter("server.s2.scl.cas.conflict").value();
  return out;
}

void print_cell(const CellResult& r) {
  std::printf("%8zu %8llu %10llu %10llu %9llu %9.3f %12.1f %10.2f %6s %.8s\n",
              r.writers, static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.conflicts),
              static_cast<unsigned long long>(r.failures), r.conflict_rate,
              r.throughput_ops_s, r.sim_s, r.converged ? "yes" : "NO",
              r.digest.c_str());
}

void print_cell_json(FILE* f, const CellResult& r, bool last) {
  std::fprintf(
      f,
      "    {\"writers\": %zu, \"ops\": %llu, \"committed\": %llu, "
      "\"conflicts\": %llu, \"failures\": %llu, "
      "\"server_cas_wins\": %llu, \"server_cas_conflicts\": %llu, "
      "\"conflict_rate\": %.4f, \"throughput_ops_per_s\": %.1f, "
      "\"sim_s\": %.3f, \"converged\": %s, \"tree_digest\": \"%s\"}%s\n",
      r.writers, static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.conflicts),
      static_cast<unsigned long long>(r.failures),
      static_cast<unsigned long long>(r.srv_cas_win),
      static_cast<unsigned long long>(r.srv_cas_conflict), r.conflict_rate,
      r.throughput_ops_s, r.sim_s, r.converged ? "true" : "false",
      r.digest.c_str(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: one op per writer — the same contention structure, enough
  // for the convergence, monotonicity and determinism gates to engage.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t ops_per_writer = smoke ? 1 : 2;
  const std::size_t writer_counts[] = {1, 8, 64, 256};

  std::printf("# Ablation A8: contended CAS on one CapsuleFS directory capsule\n");
  std::printf("# 2 replicas, 8 network clients, %zu op(s) per writer, "
              "no coordinator\n", ops_per_writer);
  std::printf("%8s %8s %10s %10s %9s %9s %12s %10s %6s %s\n", "writers",
              "ops", "committed", "conflicts", "failures", "conf_rate",
              "commits/s", "sim_s", "conv", "digest");

  std::vector<CellResult> cells;
  for (std::size_t w : writer_counts) {
    cells.push_back(run_cell(w, ops_per_writer, 42));
    print_cell(cells.back());
  }

  // Determinism gate: same seed, same digest, byte for byte.
  const CellResult rerun = run_cell(64, ops_per_writer, 42);
  const CellResult& original = cells[2];
  const bool deterministic = rerun.digest == original.digest;
  std::printf("# 64-writer rerun digest %s (%s)\n", rerun.digest.substr(0, 8).c_str(),
              deterministic ? "deterministic" : "MISMATCH");

  if (FILE* f = std::fopen("BENCH_capsulefs.json", "w")) {
    std::fprintf(f,
                 "{\n  \"ops_per_writer\": %zu,\n  \"replicas\": 2,\n"
                 "  \"mode\": \"scl_compare_and_append\",\n  \"cells\": [\n",
                 ops_per_writer);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      print_cell_json(f, cells[i], i + 1 == cells.size());
    }
    std::fprintf(f,
                 "  ],\n  \"rerun_writers\": 64,\n"
                 "  \"rerun_digest_matches\": %s\n}\n",
                 deterministic ? "true" : "false");
    std::fclose(f);
    std::printf("# wrote BENCH_capsulefs.json\n");
  }

  // ---- Gates (ISSUE acceptance) ----------------------------------------
  int rc = 0;
  for (const CellResult& r : cells) {
    if (!r.converged || r.failures != 0 || r.committed != r.ops) {
      std::fprintf(stderr,
                   "%zu writers: converged=%d failures=%llu committed=%llu/%llu\n",
                   r.writers, r.converged,
                   static_cast<unsigned long long>(r.failures),
                   static_cast<unsigned long long>(r.committed),
                   static_cast<unsigned long long>(r.ops));
      rc = 1;
    }
  }
  // Contention must actually contend, and monotonically so.
  if (cells[0].conflicts != 0) {
    std::fprintf(stderr, "single writer lost a race against itself\n");
    rc = 1;
  }
  if (cells[2].conflict_rate <= cells[1].conflict_rate ||
      cells[1].conflicts == 0) {
    std::fprintf(stderr, "conflict rate not increasing with writer count\n");
    rc = 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "64-writer rerun digest mismatch\n");
    rc = 1;
  }
  return rc;
}
