// Figure 8 reproduction: read/write times for ML models through the
// TensorFlow-style filesystem CAAPI, comparing infrastructures.
//
// Paper setup (§IX): client on a residential connection capped at 100/10
// Mbps (down/up); an S3 bucket and the GDP infrastructure in the same
// cloud region; SSHFS to a host next to that infrastructure.  Then the
// same experiment against on-premise *edge* resources.  Two pre-trained
// models: 28 MB and 115 MB; 5-run averages.  Result: GDP-cloud performs
// between SSHFS and S3; edge resources are orders of magnitude faster.
//
// Reproduction: identical topology on the simulated network — results are
// deterministic *simulated* seconds.  The GDP path runs the full stack
// (placement, chunked signed appends, verified range-read reassembly);
// S3/SSHFS run their protocol models over the very same links.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/blob.hpp"
#include "baselines/remotefs.hpp"
#include "caapi/fs.hpp"
#include "harness/scenario.hpp"
#include "telemetry/metrics.hpp"

using namespace gdp;

namespace {

struct Timings {
  double write_s = 0;
  double read_s = 0;
};

Name raw_name(std::uint8_t a, std::uint8_t b) {
  Bytes raw(32, 0);
  raw[0] = a;
  raw[1] = b;
  return *Name::from_bytes(raw);
}

// Client-side access links, per the paper's residential cap.
constexpr double kWanRttMs = 40;   // residential <-> cloud region
constexpr double kEdgeRttMs = 2;   // residential <-> on-premise edge
constexpr double kEdgeBps = 1e9;   // on-premise gigabit LAN

Timings run_gdp(bool edge, std::size_t model_bytes, std::uint64_t seed) {
  harness::Scenario s(seed, edge ? "fig8-gdp-edge" : "fig8-gdp-cloud");
  auto* global = s.add_domain("global", nullptr);
  auto* access = s.add_router("access-router", global);   // client ISP / home hub
  auto* backend = s.add_router("backend-router", global); // cloud or edge POP
  if (edge) {
    s.link_routers(access, backend,
                   net::LinkParams{from_millis((int64_t)(kEdgeRttMs / 2)), kEdgeBps, 0});
  } else {
    s.link_routers(access, backend,
                   net::LinkParams{from_millis((int64_t)(kWanRttMs / 2)), 10e9, 0});
  }
  auto* server = s.add_server("capsule-server", backend);
  // The client's residential access link: 10 Mbps up / 100 Mbps down (the
  // up-direction carries client->router traffic).  Bulk model uploads
  // take minutes of simulated time, so widen the op timeout.
  client::GdpClient::Options copts;
  copts.op_timeout = from_seconds(3600);
  auto* client = s.add_client("tf-client", access,
                              edge ? net::LinkParams{from_micros(500), kEdgeBps, 0}
                                   : net::LinkParams::residential_up(),
                              copts);
  if (!edge) {
    // Asymmetric: re-create the client access link with both directions.
    s.net().connect_asymmetric(client->name(), access->name(),
                               net::LinkParams::residential_up(),
                               net::LinkParams::residential_down());
  }
  s.attach_all();

  auto fs = caapi::GdpFilesystem::create(s, *client, {server}, "models");
  if (!fs.ok()) std::abort();

  Rng data_rng(seed);
  Bytes model = data_rng.next_bytes(model_bytes);

  Timings t;
  TimePoint t0 = s.sim().now();
  if (!fs->write_file("model.ckpt", model).ok()) std::abort();
  t.write_s = to_seconds(s.sim().now() - t0);

  t0 = s.sim().now();
  auto back = fs->read_file("model.ckpt");
  if (!back.ok() || back->size() != model_bytes) std::abort();
  t.read_s = to_seconds(s.sim().now() - t0);
  return t;
}

Timings run_s3(bool edge, std::size_t model_bytes, std::uint64_t seed) {
  net::Simulator sim(seed);
  net::Network net(sim);
  baselines::BlobService service(net, raw_name(1, 0));
  baselines::BlobClient client(net, raw_name(2, 0));
  if (edge) {
    net.connect(client.name(), service.name(),
                net::LinkParams{from_millis((int64_t)(kEdgeRttMs / 2)), kEdgeBps, 0});
  } else {
    net.connect_asymmetric(client.name(), service.name(),
                           net::LinkParams{from_millis((int64_t)(kWanRttMs / 2)), 10e6, 0},
                           net::LinkParams{from_millis((int64_t)(kWanRttMs / 2)), 100e6, 0});
  }
  Rng data_rng(seed);
  Bytes model = data_rng.next_bytes(model_bytes);

  Timings t;
  TimePoint t0 = sim.now();
  if (!client.put(service.name(), "model", model).ok()) std::abort();
  t.write_s = to_seconds(sim.now() - t0);
  t0 = sim.now();
  if (!client.get(service.name(), "model").ok()) std::abort();
  t.read_s = to_seconds(sim.now() - t0);
  return t;
}

Timings run_sshfs(bool edge, std::size_t model_bytes, std::uint64_t seed) {
  net::Simulator sim(seed);
  net::Network net(sim);
  baselines::RemoteFsService service(net, raw_name(3, 0));
  baselines::RemoteFsClient client(net, raw_name(4, 0));
  if (edge) {
    net.connect(client.name(), service.name(),
                net::LinkParams{from_millis((int64_t)(kEdgeRttMs / 2)), kEdgeBps, 0});
  } else {
    net.connect_asymmetric(client.name(), service.name(),
                           net::LinkParams{from_millis((int64_t)(kWanRttMs / 2)), 10e6, 0},
                           net::LinkParams{from_millis((int64_t)(kWanRttMs / 2)), 100e6, 0});
  }
  Rng data_rng(seed);
  Bytes model = data_rng.next_bytes(model_bytes);

  Timings t;
  TimePoint t0 = sim.now();
  if (!client.write_file(service.name(), "/model", model).ok()) std::abort();
  t.write_s = to_seconds(sim.now() - t0);
  t0 = sim.now();
  if (!client.read_file(service.name(), "/model").ok()) std::abort();
  t.read_s = to_seconds(sim.now() - t0);
  return t;
}

struct Row {
  std::string system;
  std::size_t model_mb;
  double write_s_mean;
  double read_s_mean;
  std::uint64_t write_p50_ns, write_p95_ns, write_p99_ns;
  std::uint64_t read_p50_ns, read_p95_ns, read_p99_ns;
};

std::vector<Row>& rows() {
  static std::vector<Row> r;
  return r;
}

void report(const char* label, std::size_t model_bytes,
            Timings (*fn)(bool, std::size_t, std::uint64_t), bool edge) {
  constexpr int kRuns = 5;  // the paper averages 5 runs
  // Per-run simulated times flow into registry histograms so the JSON
  // carries percentiles across the run set, not just the mean.
  telemetry::MetricsRegistry registry;
  telemetry::Histogram& write_ns = registry.histogram("write_ns");
  telemetry::Histogram& read_ns = registry.histogram("read_ns");
  Timings sum;
  for (int run = 0; run < kRuns; ++run) {
    Timings t = fn(edge, model_bytes, 100 + static_cast<std::uint64_t>(run));
    sum.write_s += t.write_s;
    sum.read_s += t.read_s;
    write_ns.record(static_cast<std::uint64_t>(t.write_s * 1e9));
    read_ns.record(static_cast<std::uint64_t>(t.read_s * 1e9));
  }
  std::printf("%-18s %10.2f %10.2f\n", label, sum.write_s / kRuns,
              sum.read_s / kRuns);
  rows().push_back(Row{label, model_bytes / (1024 * 1024), sum.write_s / kRuns,
                       sum.read_s / kRuns, write_ns.p50(), write_ns.p95(),
                       write_ns.p99(), read_ns.p50(), read_ns.p95(),
                       read_ns.p99()});
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  for (std::size_t model_mb : {28u, 115u}) {
    const std::size_t bytes = model_mb * 1024 * 1024;
    std::printf("# Figure 8: %zu MB model, residential client 100/10 Mbps "
                "(5-run avg, simulated seconds)\n",
                model_mb);
    std::printf("%-18s %10s %10s\n", "system", "write_s", "read_s");
    report("s3 (cloud)", bytes, run_s3, false);
    report("sshfs (cloud)", bytes, run_sshfs, false);
    report("gdp (cloud)", bytes, run_gdp, false);
    report("sshfs (edge)", bytes, run_sshfs, true);
    report("gdp (edge)", bytes, run_gdp, true);
    std::printf("\n");
  }

  if (FILE* f = std::fopen("BENCH_fig8.json", "w")) {
    std::fprintf(f, "{\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows().size(); ++i) {
      const Row& r = rows()[i];
      std::fprintf(
          f,
          "    {\"system\": \"%s\", \"model_mb\": %zu, "
          "\"write_s_mean\": %.3f, \"read_s_mean\": %.3f, "
          "\"write_p50_ns\": %llu, \"write_p95_ns\": %llu, "
          "\"write_p99_ns\": %llu, \"read_p50_ns\": %llu, "
          "\"read_p95_ns\": %llu, \"read_p99_ns\": %llu}%s\n",
          r.system.c_str(), r.model_mb, r.write_s_mean, r.read_s_mean,
          static_cast<unsigned long long>(r.write_p50_ns),
          static_cast<unsigned long long>(r.write_p95_ns),
          static_cast<unsigned long long>(r.write_p99_ns),
          static_cast<unsigned long long>(r.read_p50_ns),
          static_cast<unsigned long long>(r.read_p95_ns),
          static_cast<unsigned long long>(r.read_p99_ns),
          i + 1 < rows().size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_fig8.json\n");
  }
  return 0;
}
