// Ablation A2 — durability modes (§VI-B).
//
// Fast path: "the writer receives a single acknowledgment from the
// closest DataCapsule-server ... during a small window of time, some part
// of the DataCapsule is stored on only one single DataCapsule-server" —
// so a crash inside that window loses the tail.  Durable path: the server
// "must collect additional acknowledgments from other replicas ... such a
// mode results in a reduced performance at the cost of greater
// durability."
//
// We measure (a) simulated append latency for required_acks = 1..k over
// replica sets of 1..4, and (b) the actual records lost when the primary
// replica crashes immediately after acking, per mode.
#include <cstdio>

#include "harness/scenario.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;

namespace {

struct Deployment {
  Scenario s;
  router::Router* r1;
  std::vector<router::Router*> routers;
  std::vector<server::CapsuleServer*> servers;
  client::GdpClient* writer_client;

  Deployment(std::uint64_t seed, int replicas, double inter_replica_rtt_ms)
      : s(seed, "durability") {
    auto* g = s.add_domain("g", nullptr);
    r1 = s.add_router("r1", g);
    routers.push_back(r1);
    for (int i = 0; i < replicas; ++i) {
      // Replicas attach to distinct routers so replication crosses links.
      auto* r = i == 0 ? r1 : s.add_router("r" + std::to_string(i + 1), g);
      if (i != 0) {
        s.link_routers(r1, r, net::LinkParams::wan(inter_replica_rtt_ms));
        routers.push_back(r);
      }
      servers.push_back(s.add_server("srv" + std::to_string(i), r));
    }
    writer_client = s.add_client("writer", r1);
    s.attach_all();
  }
};

}  // namespace

int main() {
  std::printf("# Ablation A2a: append latency (simulated ms) vs durability mode\n");
  std::printf("%9s %13s %14s %13s\n", "replicas", "required_acks", "latency_ms",
              "achieved_acks");
  for (int replicas : {1, 2, 3, 4}) {
    for (std::uint32_t required :
         {1u, 2u, static_cast<std::uint32_t>(replicas)}) {
      if (required > static_cast<std::uint32_t>(replicas)) continue;
      Deployment d(10 + static_cast<std::uint64_t>(replicas), replicas, 20);
      CapsuleSetup cap = make_capsule(d.s.key_rng(), "durable");
      if (!place_capsule(d.s, cap, *d.writer_client, d.servers).ok()) return 1;
      capsule::Writer w = cap.make_writer();

      // Warm routes/sessions, then measure steady-state appends.
      if (!await(d.s.sim(), d.writer_client->append(w, to_bytes("warm"), required)).ok()) {
        return 1;
      }
      d.s.settle();
      constexpr int kReps = 20;
      double total_ms = 0;
      std::uint32_t acks = 0;
      for (int i = 0; i < kReps; ++i) {
        TimePoint t0 = d.s.sim().now();
        auto outcome =
            await(d.s.sim(), d.writer_client->append(w, to_bytes("x"), required));
        if (!outcome.ok()) return 1;
        total_ms += to_seconds(d.s.sim().now() - t0) * 1e3;
        acks = outcome->acks;
        d.s.settle();
      }
      std::printf("%9d %13u %14.2f %13u\n", replicas, required, total_ms / kReps,
                  acks);
    }
  }

  std::printf("\n# Ablation A2b: records lost when the acking replica crashes "
              "immediately\n");
  std::printf("%13s %13s %12s\n", "required_acks", "appended", "lost");
  for (std::uint32_t required : {1u, 2u}) {
    Deployment d(77, 2, 20);
    CapsuleSetup cap = make_capsule(d.s.key_rng(), "crashy");
    if (!place_capsule(d.s, cap, *d.writer_client, d.servers).ok()) return 1;
    capsule::Writer w = cap.make_writer();

    // Sever replication so the fast path really has a vulnerability
    // window, then crash the primary right after the last ack.
    constexpr int kAppends = 10;
    if (required == 1) {
      // Sever the inter-router replication path: the fast path still acks
      // (local persistence), so the window of vulnerability is maximal.
      d.s.net().set_interceptor(d.r1->name(), d.routers[1]->name(),
                                [](const wire::Pdu&) { return std::nullopt; });
    }
    int acked = 0;
    for (int i = 0; i < kAppends; ++i) {
      auto outcome = await(d.s.sim(), d.writer_client->append(w, to_bytes("v"), required));
      if (outcome.ok()) ++acked;
    }
    // Crash the primary before background propagation completes.
    d.s.net().detach(d.servers[0]->name());
    d.s.settle();
    const auto* surviving = d.servers[1]->storage().find(cap.metadata.name());
    const std::size_t survived = surviving == nullptr ? 0 : surviving->state().size();
    std::printf("%13u %13d %12zu\n", required, acked,
                acked > static_cast<int>(survived)
                    ? acked - survived
                    : 0);
  }
  std::printf("# (required_acks=1 acks before replication -> tail lost on "
              "crash; required_acks=2 loses nothing)\n");
  return 0;
}
