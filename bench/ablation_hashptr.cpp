// Ablation A1 — hash-pointer strategy trade-offs (§V-A "How to choose the
// hash-pointers?").
//
// "Typically, it's a trade-off between the cost of 'append' and integrity
// proofs for 'read'."  For each strategy and capsule size we measure:
//   * append throughput (records/s, wall clock; includes ECDSA signing),
//   * per-record header overhead on the wire,
//   * membership-proof size and path length for the *oldest* record
//     against the newest heartbeat (the worst case),
//   * proof verification wall time.
// Expected shape: chain appends cheapest with O(n) proofs; skip-list pays
// a few extra pointers for O(log n) proofs; checkpoint sits between with
// O(n/K + 1) proof hops.
#include <chrono>
#include <cstdio>

#include "capsule/proof.hpp"
#include "capsule/strategy.hpp"
#include "capsule/writer.hpp"
#include "common/rng.hpp"

using namespace gdp;
using namespace gdp::capsule;

int main() {
  std::printf("# Ablation A1: hash-pointer strategies\n");
  std::printf("%-14s %8s %12s %12s %12s %10s %12s\n", "strategy", "records",
              "append_per_s", "hdr_bytes", "proof_bytes", "proof_hops",
              "verify_us");

  Rng rng(2026);
  auto owner = crypto::PrivateKey::generate(rng);
  auto writer_key = crypto::PrivateKey::generate(rng);

  for (const char* strategy_id : {"chain", "skiplist", "checkpoint:16"}) {
    for (int n : {128, 1024, 8192}) {
      auto metadata = Metadata::create(
          owner, writer_key.public_key(), WriterMode::kStrictSingleWriter,
          std::string("bench-") + strategy_id + "-" + std::to_string(n), 0);
      if (!metadata.ok()) return 1;
      Writer writer(*metadata, writer_key, strategy_from_id(strategy_id));
      CapsuleState state(*metadata);

      Bytes payload(256, 0x42);
      RecordHash first_hash;
      std::uint64_t header_bytes = 0;

      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < n; ++i) {
        Record rec = writer.append(payload, i);
        if (i == 0) first_hash = rec.hash();
        header_bytes += rec.header.serialize().size();
        if (!state.ingest(rec).ok()) return 1;
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double append_s = std::chrono::duration<double>(t1 - t0).count();

      Heartbeat hb = writer.heartbeat();
      auto proof = build_membership_proof(state, hb, first_hash);
      if (!proof.ok()) return 1;

      const auto v0 = std::chrono::steady_clock::now();
      constexpr int kVerifyReps = 50;
      for (int i = 0; i < kVerifyReps; ++i) {
        if (!verify_membership_proof(*metadata, hb, *proof, first_hash).ok()) return 1;
      }
      const auto v1 = std::chrono::steady_clock::now();
      const double verify_us =
          std::chrono::duration<double>(v1 - v0).count() / kVerifyReps * 1e6;

      std::printf("%-14s %8d %12.0f %12.1f %12zu %10zu %12.1f\n", strategy_id, n,
                  n / append_s,
                  static_cast<double>(header_bytes) / n,
                  proof->size_bytes(), proof->path.size(), verify_us);
    }
  }
  return 0;
}
