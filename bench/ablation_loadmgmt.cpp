// Ablation A7 — production load management under zipf overload, the
// experiment behind BENCH_loadmgmt.json.
//
// Two replicas of every capsule sit behind distinct-cost paths.  A fleet
// of clients issues a zipf-distributed read stress (100k+ ops in the full
// run) at an offered rate ~50% above what one replica can service alone.
//
//   unmanaged arm: legacy single-replica replies — the glookup returns
//     the min-cost advertiser, every router herds onto the cheap replica,
//     its ingest queue hits the read watermark and sheds.  Clients do not
//     retry; a shed read is a lost op.
//   managed arm: ranked replica replies + power-of-two-choices routing,
//     health tracking fed by server load reports, short route leases, and
//     budgeted client retries.  Load spreads across both replicas and
//     stays under the watermark.
//
// The gate (also enforced in --smoke) is the ISSUE acceptance bound: the
// managed arm must deliver strictly higher goodput AND lower p99 latency
// than the unmanaged arm, and every failed op must be accounted — each
// arm's issued count equals ok + failed (no silent drops), with the shed
// counters naming the server-side causes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/zipf.hpp"

using namespace gdp;
using client::await;
using harness::CapsuleSetup;
using harness::make_capsule;
using harness::place_capsule;
using harness::Scenario;
using harness::ZipfGenerator;

namespace {

constexpr std::size_t kCapsules = 8;
constexpr int kClients = 16;
constexpr double kZipfS = 1.0;
// One replica services a read every 300 us (~3333 ops/s); the fleet
// offers one read every 280 us (~3571 ops/s) — overload for one replica,
// ~54% utilization split across two.  Routes are leases, not per-packet
// choices: the margin leaves headroom for the zipf head riding one
// replica for a lease interval at a time.
constexpr Duration kServiceTime = from_micros(300);
constexpr Duration kIssueInterval = from_micros(280);

struct ArmResult {
  const char* arm = "";
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double goodput_ops_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double sim_s = 0;
  std::uint64_t s1_served = 0;
  std::uint64_t s2_served = 0;
  std::uint64_t shed_reads = 0;
  std::uint64_t shed_appends = 0;
  std::uint64_t retries = 0;
  std::uint64_t retries_denied = 0;
  std::uint64_t ranked_replies = 0;
  std::uint64_t load_reports = 0;
  std::uint64_t ejections = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

ArmResult run_arm(bool managed, std::uint64_t total_ops, std::uint64_t seed) {
  ArmResult out;
  out.arm = managed ? "managed" : "unmanaged";
  Scenario s(seed, managed ? "lm-managed" : "lm-unmanaged");
  auto* g = s.add_domain("g", nullptr);
  auto* re = s.add_router("re", g);  // edge router (client side)
  auto* rs1 = s.add_router("rs1", g);
  auto* rs2 = s.add_router("rs2", g);
  // Distinct path costs: with legacy min-cost replies all traffic herds
  // onto s1 behind the cheaper link.
  s.link_routers(re, rs1, net::LinkParams{from_millis(1), 1e9, 0.0});
  s.link_routers(re, rs2, net::LinkParams{from_millis(2), 1e9, 0.0});

  server::CapsuleServer::Options so;
  so.ingest_service_time = kServiceTime;
  so.overload.bench_watermark = 4;
  // Deep enough to absorb one lease interval of zipf-head burst without
  // shedding; the herded arm parks at the watermark and pays it in tail
  // latency instead.
  so.overload.read_watermark = 24;
  so.overload.write_watermark = 64;
  so.load_report_interval = from_millis(25);
  auto* s1 = s.add_server("s1", rs1, net::LinkParams::lan(), so);
  auto* s2 = s.add_server("s2", rs2, net::LinkParams::lan(), so);

  client::GdpClient::Options co;
  co.op_timeout = from_millis(250);
  co.retry_reads = managed;
  std::vector<client::GdpClient*> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(
        s.add_client("c" + std::to_string(i), re, net::LinkParams::lan(), co));
  }
  // Placement goes through a server-side client so the edge router holds
  // no pre-stress route: the fleet's first reads resolve under whichever
  // reply policy the arm configures.
  auto* placer = s.add_client("p", rs1);
  s.attach_all();

  std::vector<CapsuleSetup> caps;
  for (std::size_t i = 0; i < kCapsules; ++i) {
    caps.push_back(make_capsule(s.key_rng(), "lm" + std::to_string(i)));
    if (!place_capsule(s, caps.back(), *placer, {s1, s2}).ok()) std::abort();
    capsule::Writer w = caps.back().make_writer();
    if (!await(s.sim(), placer->append(w, to_bytes("seed"))).ok()) std::abort();
  }

  if (managed) {
    router::GLookupService::SelectionConfig sel;
    sel.enabled = true;
    sel.route_lease = from_millis(25);
    g->set_selection(sel);
    s1->start_load_reports();
    s2->start_load_reports();
  }

  ZipfGenerator zipf(kCapsules, kZipfS);
  Rng draw_rng(seed * 13 + 7);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(total_ops);
  std::uint64_t ok = 0, failed = 0;
  net::Simulator& sim = s.sim();

  const TimePoint t_start = sim.now();
  for (std::uint64_t i = 0; i < total_ops; ++i) {
    client::GdpClient* c = clients[i % clients.size()];
    const std::size_t rank = zipf.next(draw_rng);
    const TimePoint t0 = sim.now();
    auto op = c->read_latest(caps[rank].metadata);
    op->on_resolved = [&latencies_ms, &ok, &failed, &sim,
                       t0](const Result<client::ReadOutcome>& r) {
      if (r.ok()) {
        ++ok;
        latencies_ms.push_back(
            static_cast<double>((sim.now() - t0).count()) / 1e6);
      } else {
        ++failed;
      }
    };
    s.settle_for(kIssueInterval);
  }
  if (managed) {
    // Periodic reports keep the event queue non-empty: stop them so the
    // final settle drains.
    s1->stop_load_reports();
    s2->stop_load_reports();
  }
  s.settle();
  const TimePoint t_end = sim.now();

  out.issued = total_ops;
  out.ok = ok;
  out.failed = failed;
  out.sim_s = static_cast<double>((t_end - t_start).count()) / 1e9;
  out.goodput_ops_s = out.sim_s > 0 ? static_cast<double>(ok) / out.sim_s : 0;
  out.p50_ms = percentile(latencies_ms, 0.50);
  out.p99_ms = percentile(latencies_ms, 0.99);

  auto& m = s.net().metrics();
  out.s1_served = m.counter("server.s1.reads.served").value();
  out.s2_served = m.counter("server.s2.reads.served").value();
  out.shed_reads = m.counter("server.s1.shed.reads").value() +
                   m.counter("server.s2.shed.reads").value();
  out.shed_appends = m.counter("server.s1.shed.appends").value() +
                     m.counter("server.s2.shed.appends").value();
  for (int i = 0; i < kClients; ++i) {
    const std::string prefix = "client.c" + std::to_string(i);
    out.retries += m.counter(prefix + ".read.retries").value();
    out.retries_denied += m.counter(prefix + ".read.retries_denied").value();
  }
  out.ranked_replies = m.counter("glookup.g.lb.ranked_replies").value();
  out.load_reports = m.counter("glookup.g.lb.load_reports").value();
  out.ejections = g->health().ejections();
  return out;
}

void print_arm(const ArmResult& r) {
  std::printf("%10s %8llu %8llu %8llu %12.0f %8.2f %8.2f %8llu %8llu %8llu %8llu\n",
              r.arm, static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.failed), r.goodput_ops_s,
              r.p50_ms, r.p99_ms, static_cast<unsigned long long>(r.s1_served),
              static_cast<unsigned long long>(r.s2_served),
              static_cast<unsigned long long>(r.shed_reads),
              static_cast<unsigned long long>(r.retries));
}

void print_arm_json(FILE* f, const ArmResult& r, bool last) {
  std::fprintf(
      f,
      "    {\"arm\": \"%s\", \"issued\": %llu, \"ok\": %llu, "
      "\"failed\": %llu, \"goodput_ops_per_s\": %.1f, \"p50_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"sim_s\": %.3f, \"s1_served\": %llu, "
      "\"s2_served\": %llu, \"shed_reads\": %llu, \"shed_appends\": %llu, "
      "\"retries\": %llu, \"retries_denied\": %llu, "
      "\"ranked_replies\": %llu, \"load_reports\": %llu, "
      "\"ejections\": %llu}%s\n",
      r.arm, static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.failed), r.goodput_ops_s, r.p50_ms,
      r.p99_ms, r.sim_s, static_cast<unsigned long long>(r.s1_served),
      static_cast<unsigned long long>(r.s2_served),
      static_cast<unsigned long long>(r.shed_reads),
      static_cast<unsigned long long>(r.shed_appends),
      static_cast<unsigned long long>(r.retries),
      static_cast<unsigned long long>(r.retries_denied),
      static_cast<unsigned long long>(r.ranked_replies),
      static_cast<unsigned long long>(r.load_reports),
      static_cast<unsigned long long>(r.ejections), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: a 4k-op stress for CI — the same topology and overload
  // margin, enough ops for the watermark and the drain to both engage.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::uint64_t total_ops = smoke ? 4000 : 100000;

  std::printf("# Ablation A7: load management under zipf read overload\n");
  std::printf("# %llu ops over %zu capsules (zipf s=%.1f), offered %d ops/s,\n",
              static_cast<unsigned long long>(total_ops), kCapsules, kZipfS,
              static_cast<int>(1e9 / static_cast<double>(kIssueInterval.count())));
  std::printf("# per-replica capacity %d ops/s (2 replicas)\n",
              static_cast<int>(1e9 / static_cast<double>(kServiceTime.count())));
  std::printf("%10s %8s %8s %8s %12s %8s %8s %8s %8s %8s %8s\n", "arm",
              "issued", "ok", "failed", "goodput/s", "p50_ms", "p99_ms",
              "s1_srv", "s2_srv", "shed_rd", "retries");

  const ArmResult unmanaged = run_arm(false, total_ops, 42);
  print_arm(unmanaged);
  const ArmResult managed = run_arm(true, total_ops, 42);
  print_arm(managed);

  const double goodput_ratio =
      unmanaged.goodput_ops_s > 0 ? managed.goodput_ops_s / unmanaged.goodput_ops_s
                                  : 0;
  const double p99_ratio =
      unmanaged.p99_ms > 0 ? managed.p99_ms / unmanaged.p99_ms : 0;
  std::printf("# managed/unmanaged goodput ratio: %.3f, p99 ratio: %.3f\n",
              goodput_ratio, p99_ratio);

  if (FILE* f = std::fopen("BENCH_loadmgmt.json", "w")) {
    std::fprintf(f,
                 "{\n  \"total_ops\": %llu,\n  \"capsules\": %zu,\n"
                 "  \"zipf_s\": %.2f,\n  \"offered_ops_per_s\": %.0f,\n"
                 "  \"per_replica_capacity_ops_per_s\": %.0f,\n  \"arms\": [\n",
                 static_cast<unsigned long long>(total_ops), kCapsules, kZipfS,
                 1e9 / static_cast<double>(kIssueInterval.count()),
                 1e9 / static_cast<double>(kServiceTime.count()));
    print_arm_json(f, unmanaged, false);
    print_arm_json(f, managed, true);
    std::fprintf(f,
                 "  ],\n  \"managed_to_unmanaged_goodput_ratio\": %.4f,\n"
                 "  \"managed_to_unmanaged_p99_ratio\": %.4f\n}\n",
                 goodput_ratio, p99_ratio);
    std::fclose(f);
    std::printf("# wrote BENCH_loadmgmt.json\n");
  }

  // ---- Gates (ISSUE acceptance) ----------------------------------------
  int rc = 0;
  // Accounting: every issued op resolved — no silent drops anywhere in the
  // path; server-side sheds carry named counters.
  for (const ArmResult* r : {&unmanaged, &managed}) {
    if (r->issued != r->ok + r->failed) {
      std::fprintf(stderr, "%s: %llu ops unaccounted (issued %llu, ok %llu, "
                   "failed %llu)\n",
                   r->arm,
                   static_cast<unsigned long long>(r->issued - r->ok - r->failed),
                   static_cast<unsigned long long>(r->issued),
                   static_cast<unsigned long long>(r->ok),
                   static_cast<unsigned long long>(r->failed));
      rc = 1;
    }
  }
  // The stress must actually stress: the herded arm hits the watermark.
  if (unmanaged.shed_reads == 0) {
    std::fprintf(stderr, "unmanaged arm never shed: overload margin too soft\n");
    rc = 1;
  }
  // The managed arm actually manages: ranked replies flowed and both
  // replicas served.
  if (managed.ranked_replies == 0 || managed.s2_served <= unmanaged.s2_served) {
    std::fprintf(stderr, "managed arm did not spread load\n");
    rc = 1;
  }
  // The headline bound: strictly higher goodput AND lower p99.
  if (managed.goodput_ops_s <= unmanaged.goodput_ops_s) {
    std::fprintf(stderr, "managed goodput %.0f <= unmanaged %.0f\n",
                 managed.goodput_ops_s, unmanaged.goodput_ops_s);
    rc = 1;
  }
  if (managed.p99_ms >= unmanaged.p99_ms) {
    std::fprintf(stderr, "managed p99 %.2fms >= unmanaged %.2fms\n",
                 managed.p99_ms, unmanaged.p99_ms);
    rc = 1;
  }
  return rc;
}
