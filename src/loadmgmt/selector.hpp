// Power-of-two-choices replica selection.
//
// Given a score-ranked candidate list (lower score = better), a full
// argmin would herd every chooser onto the single best replica and
// oscillate; uniform random ignores health entirely.  Power-of-two
// choices draws two distinct candidates from the seeded RNG and keeps
// the better one — the classic balanced-allocations result gives
// near-best load spread with only two score lookups, and with a seeded
// RNG the pick sequence is deterministic and replayable.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gdp::loadmgmt {

/// Picks an index into `scores` (lower = better).  Empty input returns
/// SIZE_MAX; a single candidate is returned without consuming RNG draws.
/// Ties keep the first-drawn candidate so the outcome is a pure function
/// of (scores, rng state).
inline std::size_t pick_power_of_two(const std::vector<double>& scores,
                                     Rng& rng) {
  if (scores.empty()) return static_cast<std::size_t>(-1);
  if (scores.size() == 1) return 0;
  std::size_t a = static_cast<std::size_t>(rng.next_below(scores.size()));
  std::size_t b = static_cast<std::size_t>(rng.next_below(scores.size() - 1));
  if (b >= a) b += 1;  // second draw over the remaining n-1 candidates
  return scores[b] < scores[a] ? b : a;
}

}  // namespace gdp::loadmgmt
