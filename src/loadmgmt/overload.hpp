// Watermark-driven overload shedding by drop priority.
//
// When a queue (server ingest, shard handoff ring) crosses its high
// watermarks the cheapest traffic is shed first: bench/background data,
// then reads, then writes — and quorum/durability traffic (kCritical)
// is never shed, because dropping a peer ack turns one overloaded
// replica into a fleet-wide durability stall.  Watermarks have 2:1
// hysteresis (a level engages at its high watermark and releases at
// half of it) so the shed decision doesn't flap at the boundary.  Every
// shed is tallied per priority here and must additionally be counted
// under a named drop-reason counter by the caller — audited, not
// silent.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gdp::loadmgmt {

/// Drop priority classes, shed lowest-value first.
enum class DropPriority : std::uint8_t {
  kBench = 0,    ///< bench / background filler — first to go
  kRead = 1,     ///< client reads — fail fast, client may retry
  kWrite = 2,    ///< client appends — shed only at the last watermark
  kCritical = 3, ///< quorum acks / durability sync — never shed
};

inline const char* drop_priority_name(DropPriority p) {
  switch (p) {
    case DropPriority::kBench: return "bench";
    case DropPriority::kRead: return "read";
    case DropPriority::kWrite: return "write";
    case DropPriority::kCritical: return "critical";
  }
  return "unknown";
}

struct OverloadConfig {
  /// Queue depth at which bench traffic sheds.
  std::size_t bench_watermark = 32;
  /// Queue depth at which reads shed.
  std::size_t read_watermark = 128;
  /// Queue depth at which writes shed.
  std::size_t write_watermark = 512;
};

class OverloadManager {
 public:
  explicit OverloadManager(OverloadConfig cfg = {}) : cfg_(cfg) {}

  const OverloadConfig& config() const { return cfg_; }

  /// Feeds the current queue depth; recomputes the shed level with
  /// hysteresis and tracks the high-water mark.
  void update(std::size_t depth) {
    depth_ = depth;
    if (depth > high_water_) high_water_ = depth;
    level_ = level_for(depth);
  }

  /// Shed level: 0 = admit everything, 1 = shed bench, 2 = + reads,
  /// 3 = + writes.  kCritical is always admitted.
  int shed_level() const { return level_; }

  /// Admission decision for one unit of work at priority `p`.  A denial
  /// is tallied; the caller owns the named drop-reason counter.
  bool admit(DropPriority p) {
    if (p == DropPriority::kCritical) return true;
    bool ok = static_cast<int>(p) >= level_;
    if (!ok) shed_[static_cast<std::size_t>(p)] += 1;
    return ok;
  }

  std::size_t depth() const { return depth_; }
  std::size_t high_water() const { return high_water_; }
  std::uint64_t shed_count(DropPriority p) const {
    return shed_[static_cast<std::size_t>(p)];
  }
  std::uint64_t shed_total() const {
    return shed_[0] + shed_[1] + shed_[2] + shed_[3];
  }

 private:
  int level_for(std::size_t depth) const {
    // Engage at the high watermark, release at half of it.
    auto step = [&](std::size_t mark, int lvl) {
      if (depth >= mark) return true;
      return level_ > lvl - 1 && depth >= mark / 2;  // hold while above low
    };
    if (step(cfg_.write_watermark, 3)) return 3;
    if (step(cfg_.read_watermark, 2)) return 2;
    if (step(cfg_.bench_watermark, 1)) return 1;
    return 0;
  }

  OverloadConfig cfg_;
  std::size_t depth_ = 0;
  std::size_t high_water_ = 0;
  int level_ = 0;
  std::array<std::uint64_t, 4> shed_{};
};

}  // namespace gdp::loadmgmt
