#include "loadmgmt/health.hpp"

#include <algorithm>

namespace gdp::loadmgmt {

void HealthTracker::eject_locked(TargetHealth& h, std::int64_t now_ns) {
  h.state = HealthState::kEjected;
  h.ejection_count += 1;
  h.probation_successes = 0;
  std::uint32_t doublings =
      std::min(h.ejection_count - 1, cfg_.max_window_doublings);
  std::int64_t window = cfg_.ejection_window.count() << doublings;
  h.ejected_until_ns = now_ns + window;
  ejections_ += 1;
}

void HealthTracker::maybe_promote(TargetHealth& h, std::int64_t now_ns) {
  if (h.state == HealthState::kEjected && now_ns >= h.ejected_until_ns) {
    h.state = HealthState::kProbation;
    h.probation_successes = 0;
  }
}

void HealthTracker::record_success(const Name& target, std::int64_t now_ns,
                                   std::uint64_t latency_ns) {
  TargetHealth& h = touch(target);
  maybe_promote(h, now_ns);
  h.successes += 1;
  h.consecutive_failures = 0;
  if (latency_ns > 0) {
    double sample = static_cast<double>(latency_ns);
    h.ewma_latency_ns = h.ewma_latency_ns == 0.0
                            ? sample
                            : cfg_.latency_alpha * sample +
                                  (1.0 - cfg_.latency_alpha) * h.ewma_latency_ns;
  }
  if (h.state == HealthState::kProbation) {
    h.probation_successes += 1;
    if (h.probation_successes >= cfg_.probation_successes) {
      h.state = HealthState::kHealthy;
      readmissions_ += 1;
    }
  }
}

void HealthTracker::record_failure(const Name& target, std::int64_t now_ns) {
  TargetHealth& h = touch(target);
  maybe_promote(h, now_ns);
  h.failures += 1;
  h.consecutive_failures += 1;
  if (h.state == HealthState::kProbation) {
    // Any failure during probation re-ejects with a doubled window.
    eject_locked(h, now_ns);
    return;
  }
  if (h.state == HealthState::kHealthy &&
      h.consecutive_failures >= cfg_.eject_after_failures) {
    eject_locked(h, now_ns);
  }
}

void HealthTracker::record_load(const Name& target, std::int64_t now_ns,
                                std::uint64_t expected_delay_ns,
                                bool shedding) {
  if (shedding) {
    record_failure(target, now_ns);
  } else {
    record_success(target, now_ns, /*latency_ns=*/0);
  }
  // The reported queueing delay feeds the EWMA either way: a loaded-but-
  // not-shedding replica should still score worse than an idle one.
  TargetHealth& h = touch(target);
  double sample = static_cast<double>(expected_delay_ns);
  h.ewma_latency_ns = h.ewma_latency_ns == 0.0
                          ? sample
                          : cfg_.latency_alpha * sample +
                                (1.0 - cfg_.latency_alpha) * h.ewma_latency_ns;
}

void HealthTracker::set_trust(const Name& target, double trust) {
  touch(target).trust = std::clamp(trust, 1e-3, 1.0);
}

void HealthTracker::eject(const Name& target, std::int64_t now_ns) {
  TargetHealth& h = touch(target);
  if (h.state != HealthState::kEjected) eject_locked(h, now_ns);
}

HealthState HealthTracker::state(const Name& target, std::int64_t now_ns) {
  auto it = targets_.find(target);
  if (it == targets_.end()) return HealthState::kHealthy;
  maybe_promote(it->second, now_ns);
  return it->second.state;
}

double HealthTracker::score(const Name& target, std::int64_t now_ns,
                            std::uint64_t base_latency_ns) {
  auto it = targets_.find(target);
  double latency = static_cast<double>(base_latency_ns);
  double trust = 1.0;
  double penalty = 1.0;
  if (it != targets_.end()) {
    maybe_promote(it->second, now_ns);
    const TargetHealth& h = it->second;
    latency += h.ewma_latency_ns;
    trust = h.trust;
    if (h.state == HealthState::kProbation) penalty = 2.0;
  }
  return latency * penalty / trust;
}

const TargetHealth* HealthTracker::find(const Name& target) const {
  auto it = targets_.find(target);
  return it == targets_.end() ? nullptr : &it->second;
}

}  // namespace gdp::loadmgmt
