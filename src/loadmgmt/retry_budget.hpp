// Token-bucket retry budgets (envoy `retry/` semantics).
//
// A fixed exponential backoff with a fixed attempt cap is fine for one
// client, but under fleet-wide overload every client retries at once and
// the retry traffic itself amplifies the overload.  A retry budget ties
// retry capacity to request volume: each fresh request earns a fraction
// of a token, each retry spends a whole one, so sustained retries can
// never exceed `ratio` of sustained fresh traffic.  A small floor keeps
// retries available at low traffic (a cold router can still recover from
// a single lost lookup reply), and denials are counted so budget
// exhaustion shows up in the drop audit rather than as silence.
#pragma once

#include <algorithm>
#include <cstdint>

namespace gdp::loadmgmt {

struct RetryBudgetConfig {
  /// Tokens earned per fresh (non-retry) request.
  double ratio = 0.2;
  /// Starting balance: a cold bucket opens with this many tokens, so a
  /// quiet system has a few retries in hand before any request is earned.
  double min_tokens = 3.0;
  /// Budget cap: a long quiet burst of requests cannot bank unlimited
  /// retries.
  double max_tokens = 100.0;
};

class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig cfg = {})
      : cfg_(cfg), tokens_(cfg.min_tokens) {}

  const RetryBudgetConfig& config() const { return cfg_; }

  /// A fresh request entered the system: earn `ratio` tokens.
  void on_request() {
    requests_ += 1;
    tokens_ = std::min(cfg_.max_tokens, tokens_ + cfg_.ratio);
  }

  /// Spend one token for a retry.  False = budget exhausted; the caller
  /// must treat the attempt as terminal (and count the drop).  The
  /// min_tokens floor is a *starting balance*, not a refill: once retries
  /// spend it down, only fresh requests earn it back.
  bool try_retry() {
    if (tokens_ < 1.0) {
      denied_ += 1;
      return false;
    }
    tokens_ -= 1.0;
    granted_ += 1;
    return true;
  }

  double tokens() const { return tokens_; }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t granted() const { return granted_; }
  std::uint64_t denied() const { return denied_; }

 private:
  RetryBudgetConfig cfg_;
  double tokens_;
  std::uint64_t requests_ = 0;
  std::uint64_t granted_ = 0;
  std::uint64_t denied_ = 0;
};

}  // namespace gdp::loadmgmt
