// Passive health tracking with outlier ejection (§ load management).
//
// Every replica / neighbor the fabric talks to already produces implicit
// health signals: reply latencies, lookup timeouts, nacks, link-down
// withdrawals.  HealthTracker folds those into a per-target record —
// EWMA latency plus a consecutive-failure count — and runs the
// envoy-style outlier-ejection state machine on top:
//
//     kHealthy --N consecutive failures--> kEjected
//     kEjected --ejection window elapses--> kProbation
//     kProbation --M successes--> kHealthy
//     kProbation --any failure--> kEjected (window doubles, capped)
//
// Ejection is advisory: selection skips ejected targets unless *every*
// candidate is ejected, in which case callers fail open (panic routing)
// rather than blackholing traffic.  All transitions are counted so a
// flapping replica is visible in the stats dump.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/clock.hpp"
#include "common/name.hpp"

namespace gdp::loadmgmt {

enum class HealthState : std::uint8_t { kHealthy = 0, kEjected, kProbation };

struct HealthConfig {
  /// Consecutive failures that trip ejection.
  std::uint32_t eject_after_failures = 5;
  /// Base ejection window; doubles per repeat ejection.
  Duration ejection_window = from_millis(2000);
  /// Cap on the window doubling (window * 2^min(count-1, cap)).
  std::uint32_t max_window_doublings = 4;
  /// Successes while in probation required to re-admit fully.
  std::uint32_t probation_successes = 3;
  /// EWMA smoothing factor for latency samples (0 < alpha <= 1).
  double latency_alpha = 0.3;
};

struct TargetHealth {
  HealthState state = HealthState::kHealthy;
  /// Smoothed latency in nanoseconds; 0 until the first sample lands.
  double ewma_latency_ns = 0.0;
  std::uint32_t consecutive_failures = 0;
  std::uint32_t probation_successes = 0;
  /// How many times this target has been ejected (drives window doubling).
  std::uint32_t ejection_count = 0;
  /// Absolute sim time the current ejection window ends.
  std::int64_t ejected_until_ns = 0;
  /// Trust score in (0, 1], from the serving-delegation chain depth.
  double trust = 1.0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
};

class HealthTracker {
 public:
  explicit HealthTracker(HealthConfig cfg = {}) : cfg_(cfg) {}

  const HealthConfig& config() const { return cfg_; }

  /// A successful interaction with `target` (reply received, ack seen).
  /// `latency_ns` == 0 records the success without a latency sample.
  void record_success(const Name& target, std::int64_t now_ns,
                      std::uint64_t latency_ns);

  /// A failure signal (timeout, nack, shed notice, link withdrawal).
  void record_failure(const Name& target, std::int64_t now_ns);

  /// Overload pressure reported by the target itself (load reports).
  /// Feeds the EWMA with the target's expected queueing delay and, when
  /// the target says it is shedding real traffic, counts as a failure.
  void record_load(const Name& target, std::int64_t now_ns,
                   std::uint64_t expected_delay_ns, bool shedding);

  /// Trust from the delegation chain; clamped to (0, 1].
  void set_trust(const Name& target, double trust);

  /// Immediately ejects (used for link-down withdrawals).
  void eject(const Name& target, std::int64_t now_ns);

  /// Current state, lazily promoting kEjected -> kProbation once the
  /// ejection window has elapsed.
  HealthState state(const Name& target, std::int64_t now_ns);

  bool ejected(const Name& target, std::int64_t now_ns) {
    return state(target, now_ns) == HealthState::kEjected;
  }

  /// Selection score: lower is better.  `base_latency_ns` supplies the
  /// static path cost; the EWMA adds observed dynamic latency, the trust
  /// score divides (less-trusted chains look farther away), and probation
  /// targets are penalized so recovering replicas re-fill gradually.
  double score(const Name& target, std::int64_t now_ns,
               std::uint64_t base_latency_ns);

  /// nullptr when the target has never produced a signal.
  const TargetHealth* find(const Name& target) const;

  void forget(const Name& target) { targets_.erase(target); }

  std::uint64_t ejections() const { return ejections_; }
  std::uint64_t readmissions() const { return readmissions_; }
  std::size_t tracked() const { return targets_.size(); }

 private:
  TargetHealth& touch(const Name& target) { return targets_[target]; }
  void eject_locked(TargetHealth& h, std::int64_t now_ns);
  void maybe_promote(TargetHealth& h, std::int64_t now_ns);

  HealthConfig cfg_;
  std::unordered_map<Name, TargetHealth> targets_;
  std::uint64_t ejections_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace gdp::loadmgmt
