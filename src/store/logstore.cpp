#include "store/logstore.hpp"

#include <cstring>

#include "store/crc32.hpp"

namespace gdp::store {

namespace {

constexpr std::uint32_t kFrameHeader = 8;  // len(4) + crc(4)

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // host order; segments are not meant to be portable
}

void store_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

}  // namespace

std::filesystem::path LogStore::segment_path(std::uint32_t seg) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06u.log", seg);
  return dir_ / buf;
}

Result<LogStore> LogStore::open(const std::filesystem::path& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return make_error(Errc::kUnavailable, "cannot create " + dir.string() + ": " + ec.message());
  }
  LogStore log;
  log.dir_ = dir;
  log.options_ = options;

  // Discover segments in order; recover each.
  std::uint32_t seg = 0;
  while (std::filesystem::exists(log.segment_path(seg))) {
    GDP_RETURN_IF_ERROR(log.recover_segment(seg));
    ++seg;
  }
  log.active_segment_ = seg == 0 ? 0 : seg - 1;
  log.active_offset_ = seg == 0
                           ? 0
                           : std::filesystem::file_size(log.segment_path(log.active_segment_));
  return log;
}

Status LogStore::recover_segment(std::uint32_t seg) {
  std::ifstream in(segment_path(seg), std::ios::binary);
  if (!in) return make_error(Errc::kUnavailable, "cannot open segment for recovery");
  std::uint64_t offset = 0;
  std::uint8_t header[kFrameHeader];
  for (;;) {
    in.read(reinterpret_cast<char*>(header), kFrameHeader);
    if (in.gcount() != kFrameHeader) break;  // clean EOF or torn header
    std::uint32_t len = load_u32(header);
    std::uint32_t crc = load_u32(header + 4);
    Bytes payload(len);
    in.read(reinterpret_cast<char*>(payload.data()), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) break;  // torn payload
    if (crc32(payload) != crc) break;                             // corrupt entry
    index_.push_back(EntryLoc{seg, offset, len});
    payload_bytes_ += len;
    offset += kFrameHeader + len;
  }
  in.close();
  // Drop any torn/corrupt tail so future appends start from a clean point.
  if (offset != std::filesystem::file_size(segment_path(seg))) {
    std::error_code ec;
    std::filesystem::resize_file(segment_path(seg), offset, ec);
    if (ec) return make_error(Errc::kUnavailable, "cannot truncate corrupt tail");
  }
  return ok_status();
}

Status LogStore::roll_segment() {
  active_.reset();
  ++active_segment_;
  active_offset_ = 0;
  return ok_status();
}

Result<std::uint64_t> LogStore::append(BytesView entry) {
  if (entry.size() > 0xffffffffu) {
    return make_error(Errc::kInvalidArgument, "entry too large");
  }
  if (active_offset_ >= options_.segment_bytes && active_offset_ > 0) {
    GDP_RETURN_IF_ERROR(roll_segment());
  }
  if (!active_) {
    active_ = std::make_unique<std::fstream>(
        segment_path(active_segment_),
        std::ios::binary | std::ios::in | std::ios::out | std::ios::app);
    if (!active_->is_open()) {
      // First touch of a fresh segment: create it, then reopen read/write.
      std::ofstream create(segment_path(active_segment_), std::ios::binary);
      create.close();
      active_ = std::make_unique<std::fstream>(
          segment_path(active_segment_),
          std::ios::binary | std::ios::in | std::ios::out | std::ios::app);
    }
    if (!active_->is_open()) {
      return make_error(Errc::kUnavailable, "cannot open active segment");
    }
  }
  std::uint8_t header[kFrameHeader];
  store_u32(header, static_cast<std::uint32_t>(entry.size()));
  store_u32(header + 4, crc32(entry));
  active_->write(reinterpret_cast<const char*>(header), kFrameHeader);
  active_->write(reinterpret_cast<const char*>(entry.data()),
                 static_cast<std::streamsize>(entry.size()));
  if (!active_->good()) {
    return make_error(Errc::kUnavailable, "write failed");
  }
  index_.push_back(EntryLoc{active_segment_, active_offset_,
                            static_cast<std::uint32_t>(entry.size())});
  payload_bytes_ += entry.size();
  active_offset_ += kFrameHeader + entry.size();
  return index_.size() - 1;
}

Result<Bytes> LogStore::read(std::uint64_t id) const {
  if (id >= index_.size()) {
    return make_error(Errc::kOutOfRange, "no such log entry");
  }
  const EntryLoc& loc = index_[id];
  if (active_ && loc.segment == active_segment_) active_->flush();
  std::ifstream in(segment_path(loc.segment), std::ios::binary);
  if (!in) return make_error(Errc::kUnavailable, "cannot open segment");
  in.seekg(static_cast<std::streamoff>(loc.offset + kFrameHeader));
  Bytes payload(loc.length);
  in.read(reinterpret_cast<char*>(payload.data()), loc.length);
  if (in.gcount() != static_cast<std::streamsize>(loc.length)) {
    return make_error(Errc::kCorruptData, "short read from segment");
  }
  return payload;
}

Status LogStore::for_each(
    const std::function<Status(std::uint64_t, BytesView)>& fn) const {
  for (std::uint64_t id = 0; id < index_.size(); ++id) {
    GDP_ASSIGN_OR_RETURN(Bytes entry, read(id));
    GDP_RETURN_IF_ERROR(fn(id, entry));
  }
  return ok_status();
}

Status LogStore::sync() {
  ++sync_count_;
  if (active_) {
    active_->flush();
    if (!active_->good()) return make_error(Errc::kUnavailable, "flush failed");
  }
  return ok_status();
}

}  // namespace gdp::store
