// Persistent DataCapsule storage.
//
// One CapsuleStore per capsule (the paper stores "each DataCapsule in its
// own separate SQLite database"); a ServerStore manages the collection a
// DataCapsule-server hosts.  The store persists the signed metadata, the
// owner's serving delegation, and every record; load() re-validates
// everything through CapsuleState, so on-disk tampering is detected at
// restart exactly as in-flight tampering is detected at ingest (threat
// model §IV-C: "a DataCapsule-server can attempt to tamper with individual
// records or the order of records when stored on disk" — and be caught).
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "capsule/state.hpp"
#include "store/logstore.hpp"
#include "trust/delegation.hpp"

namespace gdp::store {

class CapsuleStore {
 public:
  /// Creates storage for a new capsule.
  static Result<CapsuleStore> create(const std::filesystem::path& dir,
                                     const capsule::Metadata& metadata,
                                     const trust::ServingDelegation& delegation);

  /// Reopens existing storage, re-validating metadata and all records.
  /// Records that fail validation are dropped (and counted).
  static Result<CapsuleStore> open(const std::filesystem::path& dir);

  CapsuleStore(CapsuleStore&&) = default;
  CapsuleStore& operator=(CapsuleStore&&) = default;

  const capsule::Metadata& metadata() const { return state_->metadata(); }
  const trust::ServingDelegation& delegation() const { return delegation_; }
  const capsule::CapsuleState& state() const { return *state_; }

  /// Installs the multi-writer credential checker on the underlying state
  /// (typically trust::cached_verify bound to the server's VerifyCache).
  void set_credential_checker(capsule::SigChecker checker) {
    state_->set_credential_checker(std::move(checker));
  }

  /// Root of the canonical chain's Merkle summary (the anti-entropy
  /// anchor).  Rebuilt from the replayed records on open(), so a reopened
  /// store answers summary probes identically to the one that wrote it.
  Name tree_root() const {
    return crypto::digest_to_name(state_->tree().root().hash);
  }

  /// Validates via the state and, if newly attached/held, persists.
  Status ingest(const capsule::Record& record,
                capsule::SigPolicy policy = capsule::SigPolicy::kVerify);

  /// Records dropped during the last open() because they failed
  /// re-validation (evidence of on-disk tampering).
  std::size_t corrupt_dropped() const { return corrupt_dropped_; }

  Status sync() { return log_.sync(); }
  /// Storage-engine introspection (entry/byte/flush gauges for telemetry).
  const LogStore& log() const { return log_; }

 private:
  CapsuleStore(LogStore log, std::unique_ptr<capsule::CapsuleState> state,
               trust::ServingDelegation delegation)
      : log_(std::move(log)),
        state_(std::move(state)),
        delegation_(std::move(delegation)) {}

  LogStore log_;
  std::unique_ptr<capsule::CapsuleState> state_;
  trust::ServingDelegation delegation_;
  std::unordered_map<Name, bool> persisted_;
  std::size_t corrupt_dropped_ = 0;
};

/// The collection of capsules a DataCapsule-server hosts, one directory
/// per capsule under a root.
class ServerStore {
 public:
  static Result<ServerStore> open(const std::filesystem::path& root);

  ServerStore(ServerStore&&) = default;
  ServerStore& operator=(ServerStore&&) = default;

  /// Creates (or reopens) storage for `metadata`'s capsule.
  Status host(const capsule::Metadata& metadata,
              const trust::ServingDelegation& delegation);

  bool hosts(const Name& capsule) const { return capsules_.contains(capsule); }
  CapsuleStore* find(const Name& capsule);
  const CapsuleStore* find(const Name& capsule) const;
  std::vector<Name> hosted() const;

  /// Installs a credential checker on every hosted capsule, and on any
  /// capsule hosted later.  Replay during open() happens before any checker
  /// is installed and falls back to raw verifies.
  void set_credential_checker(capsule::SigChecker checker) {
    checker_ = std::move(checker);
    for (auto& [name, cs] : capsules_) cs->set_credential_checker(checker_);
  }

 private:
  explicit ServerStore(std::filesystem::path root) : root_(std::move(root)) {}

  std::filesystem::path root_;
  std::unordered_map<Name, std::unique_ptr<CapsuleStore>> capsules_;
  capsule::SigChecker checker_;
};

}  // namespace gdp::store
