// Segmented append-only log with crash recovery.
//
// This is the storage engine under every DataCapsule-server — the role
// SQLite plays in the paper's prototype (§VIII).  Entries are framed with
// a length + CRC32 header, written to numbered segment files that roll at
// a configurable size, and indexed in memory for efficient random reads
// ("SQLite enables a DataCapsule-server to respond to random reads
// efficiently" — so does this).  On open, segments are scanned; a torn or
// corrupt tail entry truncates recovery at that point, matching the
// append-only crash model.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace gdp::store {

class LogStore {
 public:
  struct Options {
    std::uint64_t segment_bytes = 16 * 1024 * 1024;  ///< roll threshold
  };

  /// Opens (creating if needed) a log in `dir`, replaying existing
  /// segments to rebuild the index.  Corrupt tails are dropped.
  static Result<LogStore> open(const std::filesystem::path& dir,
                               Options options);
  static Result<LogStore> open(const std::filesystem::path& dir) {
    return open(dir, Options{});
  }

  LogStore(LogStore&&) = default;
  LogStore& operator=(LogStore&&) = default;

  /// Appends an entry; returns its stable id (0-based, dense).
  Result<std::uint64_t> append(BytesView entry);

  /// Random read by id.
  Result<Bytes> read(std::uint64_t id) const;

  /// Replays all entries in order.
  Status for_each(const std::function<Status(std::uint64_t id, BytesView entry)>& fn) const;

  std::uint64_t entry_count() const { return index_.size(); }
  /// Total bytes of entry payload (excluding framing).
  std::uint64_t payload_bytes() const { return payload_bytes_; }

  /// Flushes buffered writes to the OS.
  Status sync();
  /// Number of sync() flushes performed (the fsync-equivalent count a
  /// durability benchmark wants to see).
  std::uint64_t sync_count() const { return sync_count_; }

 private:
  struct EntryLoc {
    std::uint32_t segment;
    std::uint64_t offset;  // of the frame header
    std::uint32_t length;  // payload length
  };

  LogStore() = default;

  std::filesystem::path segment_path(std::uint32_t seg) const;
  Status roll_segment();
  Status recover_segment(std::uint32_t seg);

  std::filesystem::path dir_;
  Options options_{};
  std::vector<EntryLoc> index_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t sync_count_ = 0;
  std::uint32_t active_segment_ = 0;
  std::uint64_t active_offset_ = 0;
  mutable std::unique_ptr<std::fstream> active_;  // open for append + read
};

}  // namespace gdp::store
