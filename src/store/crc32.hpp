// CRC-32 (IEEE 802.3 polynomial) for storage-entry framing.
//
// The on-disk log uses CRC32 to detect torn writes and bit rot at the
// framing layer; cryptographic integrity of record *contents* is handled
// end-to-end by the capsule layer, so a fast checksum suffices here.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace gdp::store {

std::uint32_t crc32(BytesView data);

}  // namespace gdp::store
