#include "store/capsule_store.hpp"

#include <algorithm>

namespace gdp::store {

namespace {
constexpr std::uint8_t kTagMetadata = 1;
constexpr std::uint8_t kTagDelegation = 2;
constexpr std::uint8_t kTagRecord = 3;

Bytes tagged(std::uint8_t tag, BytesView body) {
  Bytes out{tag};
  append(out, body);
  return out;
}
}  // namespace

Result<CapsuleStore> CapsuleStore::create(const std::filesystem::path& dir,
                                          const capsule::Metadata& metadata,
                                          const trust::ServingDelegation& delegation) {
  if (std::filesystem::exists(dir / "seg-000000.log")) {
    return make_error(Errc::kAlreadyExists, "capsule store already exists: " + dir.string());
  }
  GDP_ASSIGN_OR_RETURN(LogStore log, LogStore::open(dir));
  GDP_RETURN_IF_ERROR(log.append(tagged(kTagMetadata, metadata.serialize())));
  GDP_RETURN_IF_ERROR(log.append(tagged(kTagDelegation, delegation.serialize())));
  auto state = std::make_unique<capsule::CapsuleState>(metadata);
  return CapsuleStore(std::move(log), std::move(state), delegation);
}

Result<CapsuleStore> CapsuleStore::open(const std::filesystem::path& dir) {
  GDP_ASSIGN_OR_RETURN(LogStore log, LogStore::open(dir));
  if (log.entry_count() < 2) {
    return make_error(Errc::kCorruptData, "capsule store missing header entries");
  }
  GDP_ASSIGN_OR_RETURN(Bytes meta_entry, log.read(0));
  if (meta_entry.empty() || meta_entry[0] != kTagMetadata) {
    return make_error(Errc::kCorruptData, "capsule store: bad metadata entry");
  }
  GDP_ASSIGN_OR_RETURN(
      capsule::Metadata metadata,
      capsule::Metadata::deserialize(BytesView(meta_entry).subspan(1)));

  GDP_ASSIGN_OR_RETURN(Bytes deleg_entry, log.read(1));
  if (deleg_entry.empty() || deleg_entry[0] != kTagDelegation) {
    return make_error(Errc::kCorruptData, "capsule store: bad delegation entry");
  }
  GDP_ASSIGN_OR_RETURN(
      trust::ServingDelegation delegation,
      trust::ServingDelegation::deserialize(BytesView(deleg_entry).subspan(1)));

  auto state = std::make_unique<capsule::CapsuleState>(metadata);
  CapsuleStore store(std::move(log), std::move(state), std::move(delegation));
  for (std::uint64_t id = 2; id < store.log_.entry_count(); ++id) {
    auto entry = store.log_.read(id);
    if (!entry.ok() || entry->empty() || (*entry)[0] != kTagRecord) {
      ++store.corrupt_dropped_;
      continue;
    }
    auto record = capsule::Record::deserialize(BytesView(*entry).subspan(1));
    if (!record.ok()) {
      ++store.corrupt_dropped_;
      continue;
    }
    const Name hash = record->hash();
    if (!store.state_->ingest(*record).ok()) {
      ++store.corrupt_dropped_;  // on-disk tampering detected
      continue;
    }
    store.persisted_[hash] = true;
  }
  // Replay ingests arrive in log order, not canonical order, so force the
  // canonical rebuild (and with it the Merkle summary) now — a restarted
  // replica must answer anti-entropy probes immediately, not lazily.
  (void)store.state_->tree();
  return store;
}

Status CapsuleStore::ingest(const capsule::Record& record,
                            capsule::SigPolicy policy) {
  const Name hash = record.hash();
  if (persisted_.contains(hash)) return ok_status();
  const bool known_before = state_->known(hash);
  GDP_RETURN_IF_ERROR(state_->ingest(record, policy));
  if (!known_before && state_->known(hash)) {
    GDP_RETURN_IF_ERROR(log_.append(tagged(kTagRecord, record.serialize())));
    persisted_[hash] = true;
  }
  return ok_status();
}

Result<ServerStore> ServerStore::open(const std::filesystem::path& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return make_error(Errc::kUnavailable, "cannot create " + root.string());
  }
  ServerStore store(root);
  for (const auto& dirent : std::filesystem::directory_iterator(root)) {
    if (!dirent.is_directory()) continue;
    auto name = Name::from_hex(dirent.path().filename().string());
    if (!name) continue;  // not a capsule directory
    auto capsule_store = CapsuleStore::open(dirent.path());
    if (!capsule_store.ok()) continue;  // unreadable capsule: skip, don't fail boot
    store.capsules_.emplace(
        *name, std::make_unique<CapsuleStore>(std::move(capsule_store).value()));
  }
  return store;
}

Status ServerStore::host(const capsule::Metadata& metadata,
                         const trust::ServingDelegation& delegation) {
  const Name name = metadata.name();
  if (capsules_.contains(name)) return ok_status();
  auto dir = root_ / name.hex();
  Result<CapsuleStore> created =
      std::filesystem::exists(dir / "seg-000000.log")
          ? CapsuleStore::open(dir)
          : CapsuleStore::create(dir, metadata, delegation);
  if (!created.ok()) return created.error();
  auto cs = std::make_unique<CapsuleStore>(std::move(created).value());
  if (checker_) cs->set_credential_checker(checker_);
  capsules_.emplace(name, std::move(cs));
  return ok_status();
}

CapsuleStore* ServerStore::find(const Name& capsule) {
  auto it = capsules_.find(capsule);
  return it == capsules_.end() ? nullptr : it->second.get();
}

const CapsuleStore* ServerStore::find(const Name& capsule) const {
  auto it = capsules_.find(capsule);
  return it == capsules_.end() ? nullptr : it->second.get();
}

std::vector<Name> ServerStore::hosted() const {
  std::vector<Name> out;
  out.reserve(capsules_.size());
  for (const auto& [name, _] : capsules_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gdp::store
