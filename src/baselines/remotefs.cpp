#include "baselines/remotefs.hpp"

#include "common/varint.hpp"

namespace gdp::baselines {

namespace {
constexpr std::uint8_t kStat = 1;
constexpr std::uint8_t kReadBlock = 2;
constexpr std::uint8_t kWriteBlock = 3;
constexpr std::uint8_t kTruncate = 4;
constexpr std::uint8_t kStatOk = 5;
constexpr std::uint8_t kBlockData = 6;
constexpr std::uint8_t kWriteOk = 7;
constexpr std::uint8_t kTruncOk = 8;
constexpr std::uint8_t kErr = 9;
}  // namespace

RemoteFsService::RemoteFsService(net::Network& net, const Name& name,
                                 Options options)
    : net_(net), name_(name), options_(options) {
  net_.attach(name_, this);
}

void RemoteFsService::on_pdu(const Name& from, const wire::Pdu& pdu) {
  if (pdu.type != wire::MsgType::kBenchData || pdu.payload.empty()) return;
  wire::Pdu reply;
  reply.dst = pdu.src;
  reply.src = name_;
  reply.type = wire::MsgType::kBenchData;
  reply.flow_id = pdu.flow_id;

  ByteReader r(BytesView(pdu.payload).subspan(1));
  auto path_bytes = r.get_length_prefixed();
  if (!path_bytes) return;
  const std::string path = to_string(*path_bytes);

  switch (pdu.payload[0]) {
    case kStat: {
      auto it = files_.find(path);
      if (it == files_.end()) {
        reply.payload = Bytes{kErr};
      } else {
        reply.payload = Bytes{kStatOk};
        put_fixed64(reply.payload, it->second.size());
      }
      break;
    }
    case kTruncate: {
      files_[path].clear();
      reply.payload = Bytes{kTruncOk};
      break;
    }
    case kReadBlock: {
      auto index = r.get_varint();
      auto block_size = r.get_varint();
      auto it = files_.find(path);
      if (!index || !block_size || it == files_.end()) {
        reply.payload = Bytes{kErr};
        break;
      }
      const std::size_t off = static_cast<std::size_t>(*index * *block_size);
      if (off > it->second.size()) {
        reply.payload = Bytes{kErr};
        break;
      }
      const std::size_t n =
          std::min<std::size_t>(*block_size, it->second.size() - off);
      reply.payload = Bytes{kBlockData};
      put_varint(reply.payload, *index);
      put_length_prefixed(reply.payload,
                          BytesView(it->second.data() + off, n));
      break;
    }
    case kWriteBlock: {
      auto index = r.get_varint();
      auto block_size = r.get_varint();
      auto data = r.get_length_prefixed();
      if (!index || !block_size || !data) return;
      Bytes& file = files_[path];
      const std::size_t off = static_cast<std::size_t>(*index * *block_size);
      if (file.size() < off + data->size()) file.resize(off + data->size());
      std::copy(data->begin(), data->end(),
                file.begin() + static_cast<std::ptrdiff_t>(off));
      reply.payload = Bytes{kWriteOk};
      put_varint(reply.payload, *index);
      break;
    }
    default:
      return;
  }
  net_.sim().schedule(options_.per_block_overhead,
                      [this, from, reply = std::move(reply)]() mutable {
                        net_.send(name_, from, std::move(reply));
                      });
}

RemoteFsClient::RemoteFsClient(net::Network& net, const Name& name,
                               Options options)
    : net_(net), name_(name), options_(options) {
  net_.attach(name_, this);
}

void RemoteFsClient::pump() {
  if (!transfer_) return;
  Transfer& t = *transfer_;
  while (t.inflight < options_.window && t.next_block < t.total_blocks) {
    wire::Pdu pdu;
    pdu.dst = t.service;
    pdu.src = name_;
    pdu.type = wire::MsgType::kBenchData;
    pdu.flow_id = next_flow_++;
    if (t.writing) {
      const std::size_t off = t.next_block * options_.block_bytes;
      const std::size_t n =
          std::min(options_.block_bytes, t.data.size() - off);
      pdu.payload = Bytes{kWriteBlock};
      put_length_prefixed(pdu.payload, to_bytes(t.path));
      put_varint(pdu.payload, t.next_block);
      put_varint(pdu.payload, options_.block_bytes);
      put_length_prefixed(pdu.payload, BytesView(t.data.data() + off, n));
    } else {
      pdu.payload = Bytes{kReadBlock};
      put_length_prefixed(pdu.payload, to_bytes(t.path));
      put_varint(pdu.payload, t.next_block);
      put_varint(pdu.payload, options_.block_bytes);
    }
    ++t.next_block;
    ++t.inflight;
    net_.send(name_, t.service, std::move(pdu));
  }
}

void RemoteFsClient::on_pdu(const Name& /*from*/, const wire::Pdu& pdu) {
  if (!transfer_ || pdu.payload.empty()) return;
  Transfer& t = *transfer_;
  ByteReader r(BytesView(pdu.payload).subspan(1));
  switch (pdu.payload[0]) {
    case kWriteOk: {
      --t.inflight;
      ++t.completed;
      break;
    }
    case kBlockData: {
      auto index = r.get_varint();
      auto data = r.get_length_prefixed();
      if (!index || !data) {
        t.failed = true;
        return;
      }
      t.read_blocks[static_cast<std::size_t>(*index)] = std::move(*data);
      --t.inflight;
      ++t.completed;
      break;
    }
    case kStatOk:
    case kTruncOk:
      // Handled by the synchronous driver via completed bump.
      --t.inflight;
      ++t.completed;
      if (pdu.payload[0] == kStatOk) {
        ByteReader rr(BytesView(pdu.payload).subspan(1));
        auto size = rr.get_fixed64();
        if (size) t.data.resize(static_cast<std::size_t>(*size));
      }
      return;
    default:
      t.failed = true;
      return;
  }
  pump();
}

Status RemoteFsClient::write_file(const Name& service, const std::string& path,
                                  BytesView content) {
  transfer_.emplace();
  Transfer& t = *transfer_;
  t.service = service;
  t.path = path;
  t.writing = true;
  t.data.assign(content.begin(), content.end());
  t.total_blocks =
      content.empty() ? 0 : (content.size() + options_.block_bytes - 1) / options_.block_bytes;

  // Truncate first (one RTT), then stream blocks through the window.
  {
    wire::Pdu pdu;
    pdu.dst = service;
    pdu.src = name_;
    pdu.type = wire::MsgType::kBenchData;
    pdu.flow_id = next_flow_++;
    pdu.payload = Bytes{kTruncate};
    put_length_prefixed(pdu.payload, to_bytes(path));
    t.inflight = 1;
    net_.send(name_, service, std::move(pdu));
  }
  while (t.completed < 1 && !net_.sim().idle()) {
    net_.sim().run_until(net_.sim().now() + from_millis(1));
  }
  t.completed = 0;
  pump();
  while (!t.failed && t.completed < t.total_blocks && !net_.sim().idle()) {
    net_.sim().run_until(net_.sim().now() + from_millis(1));
  }
  const bool ok = !t.failed && t.completed == t.total_blocks;
  transfer_.reset();
  return ok ? ok_status() : make_error(Errc::kUnavailable, "remote write failed");
}

Result<Bytes> RemoteFsClient::read_file(const Name& service,
                                        const std::string& path) {
  transfer_.emplace();
  Transfer& t = *transfer_;
  t.service = service;
  t.path = path;
  t.writing = false;

  // Stat (one RTT) to learn the size.
  {
    wire::Pdu pdu;
    pdu.dst = service;
    pdu.src = name_;
    pdu.type = wire::MsgType::kBenchData;
    pdu.flow_id = next_flow_++;
    pdu.payload = Bytes{kStat};
    put_length_prefixed(pdu.payload, to_bytes(path));
    t.inflight = 1;
    net_.send(name_, service, std::move(pdu));
  }
  while (t.completed < 1 && !t.failed && !net_.sim().idle()) {
    net_.sim().run_until(net_.sim().now() + from_millis(1));
  }
  if (t.failed) {
    transfer_.reset();
    return make_error(Errc::kNotFound, "no such remote file");
  }
  t.completed = 0;
  t.total_blocks = t.data.empty()
                       ? 0
                       : (t.data.size() + options_.block_bytes - 1) / options_.block_bytes;
  pump();
  while (!t.failed && t.completed < t.total_blocks && !net_.sim().idle()) {
    net_.sim().run_until(net_.sim().now() + from_millis(1));
  }
  if (t.failed || t.completed != t.total_blocks) {
    transfer_.reset();
    return make_error(Errc::kUnavailable, "remote read failed");
  }
  Bytes out;
  out.reserve(t.data.size());
  for (auto& [index, block] : t.read_blocks) append(out, block);
  transfer_.reset();
  return out;
}

}  // namespace gdp::baselines
