// TLS-overhead reference model (§V "Secure Responses", ablation A3).
//
// The paper claims that after the HMAC session is established, a
// DataCapsule conversation has "a steady state byte overhead roughly
// similar to TLS".  This header captures the TLS 1.3 numbers the claim is
// measured against, so the ablation bench can print GDP-vs-TLS columns
// from one source of truth.
#pragma once

#include <cstddef>

namespace gdp::baselines {

struct TlsModel {
  /// TLS 1.3 per-record overhead: 5-byte record header + 16-byte AEAD tag
  /// + 1-byte content type.
  static constexpr std::size_t kPerRecordOverhead = 5 + 16 + 1;

  /// Typical TLS 1.3 handshake payload: ClientHello (~250 B) +
  /// ServerHello/EncryptedExtensions (~150 B) + certificate chain
  /// (~2.5 kB) + CertificateVerify (~260 B) + Finished (2 x 36 B).
  static constexpr std::size_t kHandshakeBytes = 250 + 150 + 2500 + 260 + 72;

  /// Handshake round trips before application data (TLS 1.3 full).
  static constexpr int kHandshakeRtts = 1;

  /// Asymmetric operations in the handshake: one ECDHE key-gen + one
  /// shared-secret derivation per side, one signature, one verification.
  static constexpr int kHandshakeScalarMults = 3;
  static constexpr int kHandshakeSignatures = 1;
  static constexpr int kHandshakeVerifications = 1;
};

}  // namespace gdp::baselines
