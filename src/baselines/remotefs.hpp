// SSHFS-like remote-filesystem baseline (§IX / Figure 8).
//
// SFTP moves file data in fixed-size blocks with a bounded window of
// outstanding requests, which makes throughput sensitive to the
// bandwidth-delay product — exactly the behaviour that separates SSHFS
// from a bulk blob GET in the paper's case study.  We model block
// requests/responses explicitly over the simulated links: `window`
// requests in flight, each block acknowledged before the window slides.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "net/network.hpp"

namespace gdp::baselines {

class RemoteFsService : public net::PduHandler {
 public:
  struct Options {
    Duration per_block_overhead = from_micros(200);  ///< SSH crypto + syscall
  };

  RemoteFsService(net::Network& net, const Name& name, Options options);
  RemoteFsService(net::Network& net, const Name& name)
      : RemoteFsService(net, name, Options{}) {}

  const Name& name() const { return name_; }
  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

 private:
  net::Network& net_;
  Name name_;
  Options options_;
  std::map<std::string, Bytes> files_;
};

class RemoteFsClient : public net::PduHandler {
 public:
  struct Options {
    std::size_t block_bytes = 32 * 1024;  ///< SFTP block size
    std::size_t window = 16;              ///< outstanding requests
  };

  RemoteFsClient(net::Network& net, const Name& name, Options options);
  RemoteFsClient(net::Network& net, const Name& name)
      : RemoteFsClient(net, name, Options{}) {}

  const Name& name() const { return name_; }

  /// Block-windowed synchronous transfer; drives the simulator.
  Status write_file(const Name& service, const std::string& path, BytesView content);
  Result<Bytes> read_file(const Name& service, const std::string& path);

  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

 private:
  void pump();  ///< keeps `window` requests in flight

  net::Network& net_;
  Name name_;
  Options options_;

  // In-progress transfer state.
  struct Transfer {
    Name service;
    std::string path;
    bool writing = false;
    Bytes data;              // write source / read accumulator
    std::size_t total_blocks = 0;
    std::size_t next_block = 0;   // next to request
    std::size_t completed = 0;
    std::size_t inflight = 0;
    bool failed = false;
    std::map<std::size_t, Bytes> read_blocks;
  };
  std::optional<Transfer> transfer_;
  std::uint64_t next_flow_ = 1;
};

}  // namespace gdp::baselines
