// S3-like blob store baseline (§IX / Figure 8).
//
// Models a cloud object store as seen from a client: a per-request setup
// cost (HTTP/TLS handshake + service latency) followed by a single bulk
// body transfer whose duration is governed by the simulated link
// bandwidth.  PUT stores whole objects, GET returns them — no integrity
// proofs, no delegations; trust is "based on reputation" as the paper
// puts it.  Runs point-to-point over the same net::Network links as the
// GDP, so Figure 8 comparisons differ only in architecture, not substrate.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "net/network.hpp"

namespace gdp::baselines {

class BlobService : public net::PduHandler {
 public:
  struct Options {
    /// Server-side processing latency per request (auth, indexing, ...).
    Duration request_overhead = from_millis(30);
  };

  BlobService(net::Network& net, const Name& name, Options options);
  BlobService(net::Network& net, const Name& name)
      : BlobService(net, name, Options{}) {}

  const Name& name() const { return name_; }
  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

  std::size_t object_count() const { return objects_.size(); }

 private:
  net::Network& net_;
  Name name_;
  Options options_;
  std::map<std::string, Bytes> objects_;
};

class BlobClient : public net::PduHandler {
 public:
  BlobClient(net::Network& net, const Name& name);

  const Name& name() const { return name_; }

  /// Synchronous helpers: drive the simulator until the reply arrives.
  Status put(const Name& service, const std::string& key, BytesView value);
  Result<Bytes> get(const Name& service, const std::string& key);

  void on_pdu(const Name& from, const wire::Pdu& pdu) override;

 private:
  net::Network& net_;
  Name name_;
  std::uint64_t next_flow_ = 1;
  std::optional<wire::Pdu> reply_;
};

}  // namespace gdp::baselines
