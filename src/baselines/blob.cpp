#include "baselines/blob.hpp"

#include "common/varint.hpp"

namespace gdp::baselines {

namespace {
constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kGet = 2;
constexpr std::uint8_t kPutOk = 3;
constexpr std::uint8_t kGetOk = 4;
constexpr std::uint8_t kErr = 5;
}  // namespace

BlobService::BlobService(net::Network& net, const Name& name, Options options)
    : net_(net), name_(name), options_(options) {
  net_.attach(name_, this);
}

void BlobService::on_pdu(const Name& from, const wire::Pdu& pdu) {
  if (pdu.type != wire::MsgType::kBenchData || pdu.payload.empty()) return;
  wire::Pdu reply;
  reply.dst = pdu.src;
  reply.src = name_;
  reply.type = wire::MsgType::kBenchData;
  reply.flow_id = pdu.flow_id;

  ByteReader r(BytesView(pdu.payload).subspan(1));
  auto key = r.get_length_prefixed();
  if (!key) return;
  switch (pdu.payload[0]) {
    case kPut: {
      auto value = r.get_length_prefixed();
      if (!value) return;
      objects_[to_string(*key)] = std::move(*value);
      reply.payload = Bytes{kPutOk};
      break;
    }
    case kGet: {
      auto it = objects_.find(to_string(*key));
      if (it == objects_.end()) {
        reply.payload = Bytes{kErr};
      } else {
        reply.payload = Bytes{kGetOk};
        put_length_prefixed(reply.payload, it->second);
      }
      break;
    }
    default:
      return;
  }
  // Request processing overhead, then the (bandwidth-accounted) reply.
  net_.sim().schedule(options_.request_overhead,
                      [this, from, reply = std::move(reply)]() mutable {
                        net_.send(name_, from, std::move(reply));
                      });
}

BlobClient::BlobClient(net::Network& net, const Name& name)
    : net_(net), name_(name) {
  net_.attach(name_, this);
}

void BlobClient::on_pdu(const Name& /*from*/, const wire::Pdu& pdu) {
  reply_ = pdu;
}

Status BlobClient::put(const Name& service, const std::string& key,
                       BytesView value) {
  wire::Pdu pdu;
  pdu.dst = service;
  pdu.src = name_;
  pdu.type = wire::MsgType::kBenchData;
  pdu.flow_id = next_flow_++;
  pdu.payload = Bytes{kPut};
  put_length_prefixed(pdu.payload, to_bytes(key));
  put_length_prefixed(pdu.payload, value);
  reply_.reset();
  net_.send(name_, service, std::move(pdu));
  while (!reply_ && !net_.sim().idle()) net_.sim().run_until(net_.sim().now() + from_millis(10));
  if (!reply_ || reply_->payload.empty() || reply_->payload[0] != kPutOk) {
    return make_error(Errc::kUnavailable, "blob put failed");
  }
  return ok_status();
}

Result<Bytes> BlobClient::get(const Name& service, const std::string& key) {
  wire::Pdu pdu;
  pdu.dst = service;
  pdu.src = name_;
  pdu.type = wire::MsgType::kBenchData;
  pdu.flow_id = next_flow_++;
  pdu.payload = Bytes{kGet};
  put_length_prefixed(pdu.payload, to_bytes(key));
  reply_.reset();
  net_.send(name_, service, std::move(pdu));
  while (!reply_ && !net_.sim().idle()) net_.sim().run_until(net_.sim().now() + from_millis(10));
  if (!reply_ || reply_->payload.empty() || reply_->payload[0] != kGetOk) {
    return make_error(Errc::kNotFound, "blob get failed");
  }
  ByteReader r(BytesView(reply_->payload).subspan(1));
  auto value = r.get_length_prefixed();
  if (!value) return make_error(Errc::kCorruptData, "malformed blob reply");
  return std::move(*value);
}

}  // namespace gdp::baselines
