// Protocol Data Units for the flat-namespace GDP network (§VIII).
//
// "GDP-routers route PDUs in the flat namespace network."  Source and
// destination are 256-bit flat names — a DataCapsule, a server, a router,
// a client — never an IP-like locator; the routing fabric resolves names
// to paths, so conversations survive placement, movement and replication
// of the endpoints.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/result.hpp"

namespace gdp::wire {

/// Message kinds carried in PDUs.  Kept flat (not per-layer) so a router
/// can distinguish control traffic without parsing payloads.
enum class MsgType : std::uint16_t {
  // Client/server data plane.
  kCreateCapsule = 1,
  kAppend = 2,
  kRead = 3,
  kSubscribe = 4,
  kPublish = 5,       ///< server -> subscriber event push
  kStatus = 6,        ///< generic ack/err (create/subscribe acks)
  kAppendAck = 7,
  kReadResponse = 8,
  // Server <-> server anti-entropy.
  kSyncPull = 9,
  kSyncPush = 10,
  // Secure advertisement (client/server <-> router).
  kAdvertise = 11,
  kChallenge = 12,
  kChallengeReply = 13,
  kAdvertiseOk = 14,
  // Routing control plane (router <-> GLookupService).
  kLookup = 15,
  kLookupReply = 16,
  // Raw benchmark payload (Figure 6 forwarding experiments).
  kBenchData = 17,
  // CAAPI layer: multi-writer commit service (§V-B / §VI-A option (a)).
  kProposal = 18,
  kProposalAck = 19,
  // Merkle-summary anti-entropy (§VI-A "gaps and forks"): probe with the
  // tree root, walk only divergent subtrees, pull exact ranges.
  kSyncSummary = 20,
  kSyncDescend = 21,
  kSyncRange = 22,
  // Load management (server -> router -> GLookupService): periodic
  // ingest-pressure reports feeding health tracking and replica ranking.
  kLoadReport = 23,
  // SCL concurrency layer: optimistic compare-and-append (append
  // conditioned on the expected capsule tip; success acks as kAppendAck,
  // a lost race nacks with the current tip) and advisory capsule-tip
  // leases (time-bounded, renewable; grants carry the current tip).
  kCondAppend = 24,
  kCasNack = 25,
  kLeaseRequest = 26,
  kLeaseGrant = 27,
};

struct Pdu {
  Name dst;
  Name src;
  MsgType type = MsgType::kStatus;
  /// Correlates requests and responses end-to-end (also used as the flow
  /// identifier for per-flow validation state at routers).
  std::uint64_t flow_id = 0;
  /// Telemetry trace id: assigned by the link layer on first transmission
  /// (0 = unassigned), preserved hop by hop so every span a PDU generates
  /// across the fabric lands on one timeline.
  std::uint64_t trace_id = 0;
  /// Hop budget to kill routing loops.
  std::uint8_t ttl = 32;
  Bytes payload;

  Bytes serialize() const;
  static Result<Pdu> deserialize(BytesView b);

  /// Serialized size, the unit of link bandwidth accounting.
  std::size_t wire_size() const;
};

/// Fixed per-PDU framing overhead in bytes (everything but the payload).
inline constexpr std::size_t kPduOverhead = 32 + 32 + 2 + 8 + 8 + 1 + 4;

// Fixed header-field offsets in the serialized frame.  The layout is flat
// (no varints before the payload), so a parsed view can decode fields in
// place and the hop-mutable fields (ttl, trace_id) can be patched without
// reserializing — the basis of the zero-copy forwarding fast path
// (pdu_view.hpp).
inline constexpr std::size_t kPduOffDst = 0;
inline constexpr std::size_t kPduOffSrc = 32;
inline constexpr std::size_t kPduOffType = 64;      // 2 bytes LE
inline constexpr std::size_t kPduOffFlowId = 66;    // 8 bytes LE
inline constexpr std::size_t kPduOffTraceId = 74;   // 8 bytes LE
inline constexpr std::size_t kPduOffTtl = 82;       // 1 byte
inline constexpr std::size_t kPduOffPayloadLen = 83;  // 4 bytes LE
static_assert(kPduOffPayloadLen + 4 == kPduOverhead);

}  // namespace gdp::wire
