#include "wire/pdu.hpp"

#include "common/varint.hpp"

namespace gdp::wire {

Bytes Pdu::serialize() const {
  Bytes out;
  out.reserve(kPduOverhead + payload.size());
  append(out, dst.view());
  append(out, src.view());
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(type)));
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint16_t>(type) >> 8));
  put_fixed64(out, flow_id);
  put_fixed64(out, trace_id);
  out.push_back(ttl);
  put_fixed32(out, static_cast<std::uint32_t>(payload.size()));
  append(out, payload);
  return out;
}

Result<Pdu> Pdu::deserialize(BytesView b) {
  ByteReader r(b);
  auto dst = r.get_bytes(Name::kSize);
  auto src = r.get_bytes(Name::kSize);
  auto type_bytes = r.get_bytes(2);
  auto flow = r.get_fixed64();
  auto trace = r.get_fixed64();
  auto ttl = r.get_bytes(1);
  auto len = r.get_fixed32();
  if (!dst || !src || !type_bytes || !flow || !trace || !ttl || !len) {
    return make_error(Errc::kInvalidArgument, "truncated PDU header");
  }
  std::uint16_t type_raw = static_cast<std::uint16_t>(
      (*type_bytes)[0] | (std::uint16_t((*type_bytes)[1]) << 8));
  if (type_raw < 1 || type_raw > 19) {
    return make_error(Errc::kInvalidArgument, "unknown PDU type");
  }
  auto payload = r.get_bytes(*len);
  if (!payload || !r.empty()) {
    return make_error(Errc::kInvalidArgument, "PDU length mismatch");
  }
  Pdu pdu;
  pdu.dst = *Name::from_bytes(*dst);
  pdu.src = *Name::from_bytes(*src);
  pdu.type = static_cast<MsgType>(type_raw);
  pdu.flow_id = *flow;
  pdu.trace_id = *trace;
  pdu.ttl = (*ttl)[0];
  pdu.payload = std::move(*payload);
  return pdu;
}

std::size_t Pdu::wire_size() const { return kPduOverhead + payload.size(); }

}  // namespace gdp::wire
