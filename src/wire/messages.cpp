#include "wire/messages.hpp"

#include "common/varint.hpp"

namespace gdp::wire {

namespace {

void put_name(Bytes& out, const Name& n) { append(out, n.view()); }

std::optional<Name> get_name(ByteReader& r) {
  auto b = r.get_bytes(Name::kSize);
  if (!b) return std::nullopt;
  return Name::from_bytes(*b);
}

void put_string(Bytes& out, const std::string& s) {
  put_length_prefixed(out, to_bytes(s));
}

std::optional<std::string> get_string(ByteReader& r) {
  auto b = r.get_length_prefixed();
  if (!b) return std::nullopt;
  return to_string(*b);
}

void put_name_list(Bytes& out, const std::vector<Name>& names) {
  put_varint(out, names.size());
  for (const Name& n : names) put_name(out, n);
}

std::optional<std::vector<Name>> get_name_list(ByteReader& r) {
  auto count = r.get_varint();
  if (!count || *count > 100000) return std::nullopt;
  std::vector<Name> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto n = get_name(r);
    if (!n) return std::nullopt;
    out.push_back(*n);
  }
  return out;
}

void put_bytes_list(Bytes& out, const std::vector<Bytes>& items) {
  put_varint(out, items.size());
  for (const Bytes& b : items) put_length_prefixed(out, b);
}

std::optional<std::vector<Bytes>> get_bytes_list(ByteReader& r) {
  auto count = r.get_varint();
  if (!count || *count > 100000) return std::nullopt;
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto b = r.get_length_prefixed();
    if (!b) return std::nullopt;
    out.push_back(std::move(*b));
  }
  return out;
}

void put_auth(Bytes& out, const ResponseAuth& auth) {
  out.push_back(static_cast<std::uint8_t>(auth.kind));
  put_length_prefixed(out, auth.bytes);
}

std::optional<ResponseAuth> get_auth(ByteReader& r) {
  auto kind = r.get_bytes(1);
  if (!kind || (*kind)[0] > 2) return std::nullopt;
  auto bytes = r.get_length_prefixed();
  if (!bytes) return std::nullopt;
  ResponseAuth auth;
  auth.kind = static_cast<ResponseAuth::Kind>((*kind)[0]);
  auth.bytes = std::move(*bytes);
  return auth;
}

Error truncated(const char* what) {
  return make_error(Errc::kInvalidArgument, std::string("truncated ") + what);
}

}  // namespace

// ---- CreateCapsuleMsg ----------------------------------------------------------

Bytes CreateCapsuleMsg::serialize() const {
  Bytes out;
  put_length_prefixed(out, metadata);
  put_length_prefixed(out, delegation);
  put_name_list(out, replica_peers);
  put_fixed64(out, nonce);
  return out;
}

Result<CreateCapsuleMsg> CreateCapsuleMsg::deserialize(BytesView b) {
  ByteReader r(b);
  CreateCapsuleMsg m;
  auto metadata = r.get_length_prefixed();
  auto delegation = r.get_length_prefixed();
  auto peers = get_name_list(r);
  auto nonce = r.get_fixed64();
  if (!metadata || !delegation || !peers || !nonce || !r.empty()) {
    return truncated("CreateCapsuleMsg");
  }
  m.metadata = std::move(*metadata);
  m.delegation = std::move(*delegation);
  m.replica_peers = std::move(*peers);
  m.nonce = *nonce;
  return m;
}

// ---- AppendMsg -------------------------------------------------------------------

Bytes AppendMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_length_prefixed(out, record.serialize());
  put_fixed32(out, required_acks);
  put_fixed64(out, nonce);
  put_length_prefixed(out, session_pubkey);
  return out;
}

Result<AppendMsg> AppendMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto record_bytes = r.get_length_prefixed();
  auto acks = r.get_fixed32();
  auto nonce = r.get_fixed64();
  auto session = r.get_length_prefixed();
  if (!capsule_name || !record_bytes || !acks || !nonce || !session || !r.empty()) {
    return truncated("AppendMsg");
  }
  GDP_ASSIGN_OR_RETURN(capsule::Record record,
                       capsule::Record::deserialize(*record_bytes));
  AppendMsg m;
  m.capsule = *capsule_name;
  m.record = std::move(record);
  m.required_acks = *acks;
  m.nonce = *nonce;
  m.session_pubkey = std::move(*session);
  return m;
}

// ---- ReadMsg ---------------------------------------------------------------------

Bytes ReadMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_fixed64(out, first_seqno);
  put_fixed64(out, last_seqno);
  put_fixed64(out, nonce);
  put_length_prefixed(out, session_pubkey);
  return out;
}

Result<ReadMsg> ReadMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto first = r.get_fixed64();
  auto last = r.get_fixed64();
  auto nonce = r.get_fixed64();
  auto session = r.get_length_prefixed();
  if (!capsule_name || !first || !last || !nonce || !session || !r.empty()) {
    return truncated("ReadMsg");
  }
  ReadMsg m;
  m.capsule = *capsule_name;
  m.first_seqno = *first;
  m.last_seqno = *last;
  m.nonce = *nonce;
  m.session_pubkey = std::move(*session);
  return m;
}

// ---- SubscribeMsg ----------------------------------------------------------------

Bytes SubscribeMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_name(out, subscriber);
  put_length_prefixed(out, sub_cert);
  put_fixed64(out, nonce);
  return out;
}

Result<SubscribeMsg> SubscribeMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto subscriber = get_name(r);
  auto cert = r.get_length_prefixed();
  auto nonce = r.get_fixed64();
  if (!capsule_name || !subscriber || !cert || !nonce || !r.empty()) {
    return truncated("SubscribeMsg");
  }
  SubscribeMsg m;
  m.capsule = *capsule_name;
  m.subscriber = *subscriber;
  m.sub_cert = std::move(*cert);
  m.nonce = *nonce;
  return m;
}

// ---- AppendAckMsg ----------------------------------------------------------------

Bytes AppendAckMsg::signed_body() const {
  Bytes out = to_bytes("gdp.append-ack.v1");
  put_name(out, capsule);
  put_name(out, record_hash);
  put_fixed64(out, seqno);
  put_fixed32(out, acks);
  out.push_back(ok ? 1 : 0);
  put_string(out, error);
  put_fixed64(out, nonce);
  return out;
}

Bytes AppendAckMsg::serialize() const {
  Bytes out = signed_body();
  put_length_prefixed(out, server_principal);
  put_length_prefixed(out, delegation);
  put_auth(out, auth);
  return out;
}

Result<AppendAckMsg> AppendAckMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(17);
  if (!tag || to_string(*tag) != "gdp.append-ack.v1") {
    return truncated("AppendAckMsg tag");
  }
  AppendAckMsg m;
  auto capsule_name = get_name(r);
  auto hash = get_name(r);
  auto seqno = r.get_fixed64();
  auto acks = r.get_fixed32();
  auto ok_byte = r.get_bytes(1);
  auto error = get_string(r);
  auto nonce = r.get_fixed64();
  auto principal = r.get_length_prefixed();
  auto delegation = r.get_length_prefixed();
  auto auth = get_auth(r);
  if (!capsule_name || !hash || !seqno || !acks || !ok_byte || !error || !nonce ||
      !principal || !delegation || !auth || !r.empty()) {
    return truncated("AppendAckMsg");
  }
  m.capsule = *capsule_name;
  m.record_hash = *hash;
  m.seqno = *seqno;
  m.acks = *acks;
  m.ok = (*ok_byte)[0] != 0;
  m.error = std::move(*error);
  m.nonce = *nonce;
  m.server_principal = std::move(*principal);
  m.delegation = std::move(*delegation);
  m.auth = std::move(*auth);
  return m;
}

// ---- ReadResponseMsg -------------------------------------------------------------

Bytes ReadResponseMsg::signed_body() const {
  Bytes out = to_bytes("gdp.read-resp.v1");
  put_name(out, capsule);
  out.push_back(ok ? 1 : 0);
  put_fixed32(out, code);
  put_string(out, error);
  put_length_prefixed(out, proof);
  put_length_prefixed(out, heartbeat);
  put_bytes_list(out, branch_records);
  put_fixed64(out, nonce);
  return out;
}

Bytes ReadResponseMsg::serialize() const {
  Bytes out = signed_body();
  put_length_prefixed(out, server_principal);
  put_length_prefixed(out, delegation);
  put_auth(out, auth);
  return out;
}

Result<ReadResponseMsg> ReadResponseMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(16);
  if (!tag || to_string(*tag) != "gdp.read-resp.v1") {
    return truncated("ReadResponseMsg tag");
  }
  ReadResponseMsg m;
  auto capsule_name = get_name(r);
  auto ok_byte = r.get_bytes(1);
  auto code = r.get_fixed32();
  auto error = get_string(r);
  auto proof = r.get_length_prefixed();
  auto heartbeat = r.get_length_prefixed();
  auto branches = get_bytes_list(r);
  auto nonce = r.get_fixed64();
  auto principal = r.get_length_prefixed();
  auto delegation = r.get_length_prefixed();
  auto auth = get_auth(r);
  if (!capsule_name || !ok_byte || !code || !error || !proof || !heartbeat ||
      !branches || !nonce || !principal || !delegation || !auth || !r.empty()) {
    return truncated("ReadResponseMsg");
  }
  m.capsule = *capsule_name;
  m.ok = (*ok_byte)[0] != 0;
  m.code = static_cast<std::uint16_t>(*code);
  m.error = std::move(*error);
  m.proof = std::move(*proof);
  m.heartbeat = std::move(*heartbeat);
  m.branch_records = std::move(*branches);
  m.nonce = *nonce;
  m.server_principal = std::move(*principal);
  m.delegation = std::move(*delegation);
  m.auth = std::move(*auth);
  return m;
}

// ---- CondAppendMsg ---------------------------------------------------------------

Bytes CondAppendMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_length_prefixed(out, record.serialize());
  put_fixed64(out, expected_tip_seqno);
  put_name(out, expected_tip_hash);
  put_fixed32(out, required_acks);
  put_fixed64(out, lease_id);
  put_fixed64(out, nonce);
  put_length_prefixed(out, session_pubkey);
  return out;
}

Result<CondAppendMsg> CondAppendMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto record_bytes = r.get_length_prefixed();
  auto tip_seqno = r.get_fixed64();
  auto tip_hash = get_name(r);
  auto acks = r.get_fixed32();
  auto lease = r.get_fixed64();
  auto nonce = r.get_fixed64();
  auto session = r.get_length_prefixed();
  if (!capsule_name || !record_bytes || !tip_seqno || !tip_hash || !acks ||
      !lease || !nonce || !session || !r.empty()) {
    return truncated("CondAppendMsg");
  }
  GDP_ASSIGN_OR_RETURN(capsule::Record record,
                       capsule::Record::deserialize(*record_bytes));
  CondAppendMsg m;
  m.capsule = *capsule_name;
  m.record = std::move(record);
  m.expected_tip_seqno = *tip_seqno;
  m.expected_tip_hash = *tip_hash;
  m.required_acks = *acks;
  m.lease_id = *lease;
  m.nonce = *nonce;
  m.session_pubkey = std::move(*session);
  return m;
}

// ---- CasNackMsg ------------------------------------------------------------------

Bytes CasNackMsg::signed_body() const {
  Bytes out = to_bytes("gdp.cas-nack.v1");
  put_name(out, capsule);
  put_fixed32(out, code);
  put_string(out, error);
  put_fixed64(out, tip_seqno);
  put_name(out, tip_hash);
  put_name(out, lease_holder);
  put_fixed64(out, static_cast<std::uint64_t>(lease_expires_ns));
  put_fixed64(out, nonce);
  return out;
}

Bytes CasNackMsg::serialize() const {
  Bytes out = signed_body();
  put_length_prefixed(out, server_principal);
  put_length_prefixed(out, delegation);
  put_auth(out, auth);
  return out;
}

Result<CasNackMsg> CasNackMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(15);
  if (!tag || to_string(*tag) != "gdp.cas-nack.v1") {
    return truncated("CasNackMsg tag");
  }
  CasNackMsg m;
  auto capsule_name = get_name(r);
  auto code = r.get_fixed32();
  auto error = get_string(r);
  auto tip_seqno = r.get_fixed64();
  auto tip_hash = get_name(r);
  auto holder = get_name(r);
  auto lease_expires = r.get_fixed64();
  auto nonce = r.get_fixed64();
  auto principal = r.get_length_prefixed();
  auto delegation = r.get_length_prefixed();
  auto auth = get_auth(r);
  if (!capsule_name || !code || !error || !tip_seqno || !tip_hash || !holder ||
      !lease_expires || !nonce || !principal || !delegation || !auth ||
      !r.empty()) {
    return truncated("CasNackMsg");
  }
  m.capsule = *capsule_name;
  m.code = static_cast<std::uint16_t>(*code);
  m.error = std::move(*error);
  m.tip_seqno = *tip_seqno;
  m.tip_hash = *tip_hash;
  m.lease_holder = *holder;
  m.lease_expires_ns = static_cast<std::int64_t>(*lease_expires);
  m.nonce = *nonce;
  m.server_principal = std::move(*principal);
  m.delegation = std::move(*delegation);
  m.auth = std::move(*auth);
  return m;
}

// ---- LeaseRequestMsg -------------------------------------------------------------

Bytes LeaseRequestMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  out.push_back(op);
  put_name(out, holder);
  put_fixed64(out, lease_id);
  put_fixed64(out, static_cast<std::uint64_t>(duration_ns));
  put_fixed64(out, nonce);
  put_length_prefixed(out, session_pubkey);
  return out;
}

Result<LeaseRequestMsg> LeaseRequestMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto op_byte = r.get_bytes(1);
  if (op_byte && (*op_byte)[0] > kRelease) {
    return make_error(Errc::kInvalidArgument, "bad LeaseRequestMsg op");
  }
  auto holder = get_name(r);
  auto lease = r.get_fixed64();
  auto duration = r.get_fixed64();
  auto nonce = r.get_fixed64();
  auto session = r.get_length_prefixed();
  if (!capsule_name || !op_byte || !holder || !lease || !duration || !nonce ||
      !session || !r.empty()) {
    return truncated("LeaseRequestMsg");
  }
  LeaseRequestMsg m;
  m.capsule = *capsule_name;
  m.op = (*op_byte)[0];
  m.holder = *holder;
  m.lease_id = *lease;
  m.duration_ns = static_cast<std::int64_t>(*duration);
  m.nonce = *nonce;
  m.session_pubkey = std::move(*session);
  return m;
}

// ---- LeaseGrantMsg ---------------------------------------------------------------

Bytes LeaseGrantMsg::signed_body() const {
  Bytes out = to_bytes("gdp.lease-grant.v1");
  put_name(out, capsule);
  out.push_back(ok ? 1 : 0);
  put_fixed32(out, code);
  put_string(out, error);
  put_fixed64(out, lease_id);
  put_name(out, holder);
  put_fixed64(out, static_cast<std::uint64_t>(expires_ns));
  put_fixed64(out, tip_seqno);
  put_name(out, tip_hash);
  put_fixed64(out, nonce);
  return out;
}

Bytes LeaseGrantMsg::serialize() const {
  Bytes out = signed_body();
  put_length_prefixed(out, server_principal);
  put_length_prefixed(out, delegation);
  put_auth(out, auth);
  return out;
}

Result<LeaseGrantMsg> LeaseGrantMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(18);
  if (!tag || to_string(*tag) != "gdp.lease-grant.v1") {
    return truncated("LeaseGrantMsg tag");
  }
  LeaseGrantMsg m;
  auto capsule_name = get_name(r);
  auto ok_byte = r.get_bytes(1);
  auto code = r.get_fixed32();
  auto error = get_string(r);
  auto lease = r.get_fixed64();
  auto holder = get_name(r);
  auto expires = r.get_fixed64();
  auto tip_seqno = r.get_fixed64();
  auto tip_hash = get_name(r);
  auto nonce = r.get_fixed64();
  auto principal = r.get_length_prefixed();
  auto delegation = r.get_length_prefixed();
  auto auth = get_auth(r);
  if (!capsule_name || !ok_byte || !code || !error || !lease || !holder ||
      !expires || !tip_seqno || !tip_hash || !nonce || !principal ||
      !delegation || !auth || !r.empty()) {
    return truncated("LeaseGrantMsg");
  }
  m.capsule = *capsule_name;
  m.ok = (*ok_byte)[0] != 0;
  m.code = static_cast<std::uint16_t>(*code);
  m.error = std::move(*error);
  m.lease_id = *lease;
  m.holder = *holder;
  m.expires_ns = static_cast<std::int64_t>(*expires);
  m.tip_seqno = *tip_seqno;
  m.tip_hash = *tip_hash;
  m.nonce = *nonce;
  m.server_principal = std::move(*principal);
  m.delegation = std::move(*delegation);
  m.auth = std::move(*auth);
  return m;
}

// ---- PublishMsg ------------------------------------------------------------------

Bytes PublishMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_length_prefixed(out, record.serialize());
  put_length_prefixed(out, heartbeat);
  return out;
}

Result<PublishMsg> PublishMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto record_bytes = r.get_length_prefixed();
  auto heartbeat = r.get_length_prefixed();
  if (!capsule_name || !record_bytes || !heartbeat || !r.empty()) {
    return truncated("PublishMsg");
  }
  GDP_ASSIGN_OR_RETURN(capsule::Record record,
                       capsule::Record::deserialize(*record_bytes));
  PublishMsg m;
  m.capsule = *capsule_name;
  m.record = std::move(record);
  m.heartbeat = std::move(*heartbeat);
  return m;
}

// ---- StatusMsg -------------------------------------------------------------------

Bytes StatusMsg::serialize() const {
  Bytes out;
  out.push_back(ok ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(code));
  out.push_back(static_cast<std::uint8_t>(code >> 8));
  put_string(out, message);
  put_fixed64(out, nonce);
  return out;
}

Result<StatusMsg> StatusMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto ok_byte = r.get_bytes(1);
  auto code_bytes = r.get_bytes(2);
  auto message = get_string(r);
  auto nonce = r.get_fixed64();
  if (!ok_byte || !code_bytes || !message || !nonce || !r.empty()) {
    return truncated("StatusMsg");
  }
  StatusMsg m;
  m.ok = (*ok_byte)[0] != 0;
  m.code = static_cast<std::uint16_t>((*code_bytes)[0] |
                                      (std::uint16_t((*code_bytes)[1]) << 8));
  m.message = std::move(*message);
  m.nonce = *nonce;
  return m;
}

// ---- SyncPullMsg / SyncPushMsg ------------------------------------------------------

Bytes SyncPullMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_fixed64(out, tip_seqno);
  put_name_list(out, holes);
  return out;
}

Result<SyncPullMsg> SyncPullMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto tip = r.get_fixed64();
  auto holes = get_name_list(r);
  if (!capsule_name || !tip || !holes || !r.empty()) return truncated("SyncPullMsg");
  SyncPullMsg m;
  m.capsule = *capsule_name;
  m.tip_seqno = *tip;
  m.holes = std::move(*holes);
  return m;
}

Bytes SyncPushMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_bytes_list(out, records);
  put_fixed64(out, resume_cursor);
  return out;
}

Result<SyncPushMsg> SyncPushMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto records = get_bytes_list(r);
  auto cursor = r.get_fixed64();
  if (!capsule_name || !records || !cursor || !r.empty()) {
    return truncated("SyncPushMsg");
  }
  SyncPushMsg m;
  m.capsule = *capsule_name;
  m.records = std::move(*records);
  m.resume_cursor = *cursor;
  return m;
}

// ---- Merkle-summary anti-entropy ----------------------------------------------------

namespace {

void put_tree_node(Bytes& out, const TreeNode& n) {
  put_fixed64(out, n.first);
  put_fixed64(out, n.last);
  put_name(out, n.hash);
}

std::optional<TreeNode> get_tree_node(ByteReader& r) {
  auto first = r.get_fixed64();
  auto last = r.get_fixed64();
  auto hash = get_name(r);
  if (!first || !last || !hash) return std::nullopt;
  return TreeNode{*first, *last, *hash};
}

}  // namespace

Bytes SyncSummaryMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_fixed64(out, tip_seqno);
  put_name(out, tip_hash);
  put_name(out, root_hash);
  return out;
}

Result<SyncSummaryMsg> SyncSummaryMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto tip = r.get_fixed64();
  auto tip_hash = get_name(r);
  auto root = get_name(r);
  if (!capsule_name || !tip || !tip_hash || !root || !r.empty()) {
    return truncated("SyncSummaryMsg");
  }
  SyncSummaryMsg m;
  m.capsule = *capsule_name;
  m.tip_seqno = *tip;
  m.tip_hash = *tip_hash;
  m.root_hash = *root;
  return m;
}

Bytes SyncDescendMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  out.push_back(kind);
  put_fixed64(out, tip_seqno);
  put_varint(out, nodes.size());
  for (const TreeNode& n : nodes) put_tree_node(out, n);
  return out;
}

Result<SyncDescendMsg> SyncDescendMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto kind_byte = r.get_bytes(1);
  auto tip = r.get_fixed64();
  auto count = r.get_varint();
  if (!capsule_name || !kind_byte || (*kind_byte)[0] > 1 || !tip || !count ||
      *count > 4096) {
    return truncated("SyncDescendMsg");
  }
  SyncDescendMsg m;
  m.capsule = *capsule_name;
  m.kind = (*kind_byte)[0];
  m.tip_seqno = *tip;
  m.nodes.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto n = get_tree_node(r);
    if (!n) return truncated("SyncDescendMsg node");
    m.nodes.push_back(*n);
  }
  if (!r.empty()) return truncated("SyncDescendMsg");
  return m;
}

Bytes SyncRangeMsg::serialize() const {
  Bytes out;
  put_name(out, capsule);
  put_varint(out, ranges.size());
  for (const Range& rg : ranges) {
    put_fixed64(out, rg.first);
    put_fixed64(out, rg.last);
  }
  put_name_list(out, holes);
  put_fixed64(out, cursor);
  return out;
}

Result<SyncRangeMsg> SyncRangeMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto capsule_name = get_name(r);
  auto count = r.get_varint();
  if (!capsule_name || !count || *count > 4096) return truncated("SyncRangeMsg");
  SyncRangeMsg m;
  m.capsule = *capsule_name;
  m.ranges.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto first = r.get_fixed64();
    auto last = r.get_fixed64();
    if (!first || !last) return truncated("SyncRangeMsg range");
    m.ranges.push_back(Range{*first, *last});
  }
  auto holes = get_name_list(r);
  auto cursor = r.get_fixed64();
  if (!holes || !cursor || !r.empty()) return truncated("SyncRangeMsg");
  m.holes = std::move(*holes);
  m.cursor = *cursor;
  return m;
}

// ---- Advertisement handshake ---------------------------------------------------------

Bytes AdvertiseMsg::serialize() const {
  Bytes out;
  put_length_prefixed(out, principal);
  put_bytes_list(out, catalog_records);
  return out;
}

Result<AdvertiseMsg> AdvertiseMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto principal = r.get_length_prefixed();
  auto catalog = get_bytes_list(r);
  if (!principal || !catalog || !r.empty()) return truncated("AdvertiseMsg");
  AdvertiseMsg m;
  m.principal = std::move(*principal);
  m.catalog_records = std::move(*catalog);
  return m;
}

Bytes ChallengeMsg::serialize() const {
  Bytes out;
  put_length_prefixed(out, nonce);
  return out;
}

Result<ChallengeMsg> ChallengeMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto nonce = r.get_length_prefixed();
  if (!nonce || !r.empty()) return truncated("ChallengeMsg");
  ChallengeMsg m;
  m.nonce = std::move(*nonce);
  return m;
}

Bytes ChallengeReplyMsg::serialize() const {
  Bytes out;
  put_length_prefixed(out, principal);
  put_length_prefixed(out, nonce_sig);
  put_length_prefixed(out, rt_cert);
  return out;
}

Result<ChallengeReplyMsg> ChallengeReplyMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto principal = r.get_length_prefixed();
  auto sig = r.get_length_prefixed();
  auto rt = r.get_length_prefixed();
  if (!principal || !sig || !rt || !r.empty()) return truncated("ChallengeReplyMsg");
  ChallengeReplyMsg m;
  m.principal = std::move(*principal);
  m.nonce_sig = std::move(*sig);
  m.rt_cert = std::move(*rt);
  return m;
}

Bytes AdvertiseOkMsg::serialize() const {
  Bytes out;
  out.push_back(ok ? 1 : 0);
  put_string(out, message);
  put_fixed32(out, accepted);
  return out;
}

Result<AdvertiseOkMsg> AdvertiseOkMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto ok_byte = r.get_bytes(1);
  auto message = get_string(r);
  auto accepted = r.get_fixed32();
  if (!ok_byte || !message || !accepted || !r.empty()) return truncated("AdvertiseOkMsg");
  AdvertiseOkMsg m;
  m.ok = (*ok_byte)[0] != 0;
  m.message = std::move(*message);
  m.accepted = *accepted;
  return m;
}

// ---- GLookupService -------------------------------------------------------------------

Bytes LookupMsg::serialize() const {
  Bytes out;
  put_name(out, target);
  put_name(out, querying_router);
  put_fixed64(out, nonce);
  return out;
}

Result<LookupMsg> LookupMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto target = get_name(r);
  auto router = get_name(r);
  auto nonce = r.get_fixed64();
  if (!target || !router || !nonce || !r.empty()) return truncated("LookupMsg");
  LookupMsg m;
  m.target = *target;
  m.querying_router = *router;
  m.nonce = *nonce;
  return m;
}

Bytes LookupReplyMsg::serialize() const {
  Bytes out;
  out.push_back(found ? 1 : 0);
  put_name(out, target);
  put_name(out, attachment_router);
  put_name(out, next_hop);
  put_fixed32(out, cost_us);
  put_fixed64(out, nonce);
  put_fixed64(out, static_cast<std::uint64_t>(expires_ns));
  put_length_prefixed(out, evidence);
  put_length_prefixed(out, principal);
  put_fixed32(out, static_cast<std::uint32_t>(alternates.size()));
  for (const ReplicaOption& opt : alternates) {
    put_name(out, opt.attachment_router);
    put_name(out, opt.next_hop);
    put_fixed32(out, opt.cost_us);
    put_fixed64(out, static_cast<std::uint64_t>(opt.expires_ns));
    put_length_prefixed(out, opt.evidence);
    put_length_prefixed(out, opt.principal);
  }
  return out;
}

Result<LookupReplyMsg> LookupReplyMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto found_byte = r.get_bytes(1);
  auto target = get_name(r);
  auto attachment = get_name(r);
  auto next_hop = get_name(r);
  auto cost = r.get_fixed32();
  auto nonce = r.get_fixed64();
  auto expires = r.get_fixed64();
  auto evidence = r.get_length_prefixed();
  auto principal = r.get_length_prefixed();
  auto alt_count = r.get_fixed32();
  if (!found_byte || !target || !attachment || !next_hop || !cost || !nonce ||
      !expires || !evidence || !principal || !alt_count) {
    return truncated("LookupReplyMsg");
  }
  std::vector<LookupReplyMsg::ReplicaOption> alternates;
  for (std::uint32_t i = 0; i < *alt_count; ++i) {
    auto alt_router = get_name(r);
    auto alt_hop = get_name(r);
    auto alt_cost = r.get_fixed32();
    auto alt_expires = r.get_fixed64();
    auto alt_evidence = r.get_length_prefixed();
    auto alt_principal = r.get_length_prefixed();
    if (!alt_router || !alt_hop || !alt_cost || !alt_expires || !alt_evidence ||
        !alt_principal) {
      return truncated("LookupReplyMsg alternate");
    }
    LookupReplyMsg::ReplicaOption opt;
    opt.attachment_router = *alt_router;
    opt.next_hop = *alt_hop;
    opt.cost_us = *alt_cost;
    opt.expires_ns = static_cast<std::int64_t>(*alt_expires);
    opt.evidence = std::move(*alt_evidence);
    opt.principal = std::move(*alt_principal);
    alternates.push_back(std::move(opt));
  }
  if (!r.empty()) return truncated("LookupReplyMsg");
  LookupReplyMsg m;
  m.found = (*found_byte)[0] != 0;
  m.target = *target;
  m.attachment_router = *attachment;
  m.next_hop = *next_hop;
  m.cost_us = *cost;
  m.nonce = *nonce;
  m.expires_ns = static_cast<std::int64_t>(*expires);
  m.evidence = std::move(*evidence);
  m.principal = std::move(*principal);
  m.alternates = std::move(alternates);
  return m;
}

Bytes LoadReportMsg::serialize() const {
  Bytes out;
  put_name(out, server);
  put_fixed32(out, queue_depth);
  put_fixed32(out, shed_level);
  put_fixed64(out, expected_delay_ns);
  return out;
}

Result<LoadReportMsg> LoadReportMsg::deserialize(BytesView b) {
  ByteReader r(b);
  auto server = get_name(r);
  auto depth = r.get_fixed32();
  auto level = r.get_fixed32();
  auto delay = r.get_fixed64();
  if (!server || !depth || !level || !delay || !r.empty()) {
    return truncated("LoadReportMsg");
  }
  LoadReportMsg m;
  m.server = *server;
  m.queue_depth = *depth;
  m.shed_level = *level;
  m.expected_delay_ns = *delay;
  return m;
}

}  // namespace gdp::wire
