// Protocol message bodies carried in PDU payloads.
//
// Three protocol families share the PDU fabric:
//   * the client/server data plane (create, append, read, subscribe,
//     publish) with *secure responses* — every server response is
//     authenticated either by the server's ECDSA signature plus its
//     delegation evidence, or, once an ECDH session is established, by an
//     HMAC whose steady-state byte overhead is "roughly similar to TLS"
//     (§V "Secure Responses");
//   * server-to-server anti-entropy (§VI-B hole repair);
//   * the routing control plane: secure advertisement with
//     challenge-response and GLookupService queries (§VII).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capsule/heartbeat.hpp"
#include "capsule/record.hpp"
#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/result.hpp"

namespace gdp::wire {

/// Authenticator attached to server responses.
struct ResponseAuth {
  enum class Kind : std::uint8_t { kNone = 0, kSignature = 1, kHmac = 2 };
  Kind kind = Kind::kNone;
  Bytes bytes;  ///< 64-byte ECDSA signature or 32-byte HMAC tag

  friend bool operator==(const ResponseAuth&, const ResponseAuth&) = default;
};

// ---- Client -> server ---------------------------------------------------------

struct CreateCapsuleMsg {
  Bytes metadata;            ///< serialized capsule::Metadata
  Bytes delegation;          ///< serialized trust::ServingDelegation for the target
  std::vector<Name> replica_peers;  ///< sibling servers hosting replicas
  std::uint64_t nonce = 0;

  Bytes serialize() const;
  static Result<CreateCapsuleMsg> deserialize(BytesView b);
};

struct AppendMsg {
  Name capsule;
  capsule::Record record;
  /// Durability mode (§VI-B): 1 = ack after local persistence (fast
  /// path), k>1 = ack only once k replicas hold the record.
  std::uint32_t required_acks = 1;
  std::uint64_t nonce = 0;
  Bytes session_pubkey;  ///< empty or 64-byte ECDH ephemeral for HMAC acks

  Bytes serialize() const;
  static Result<AppendMsg> deserialize(BytesView b);
};

struct ReadMsg {
  Name capsule;
  std::uint64_t first_seqno = 0;  ///< 0,0 means "latest"
  std::uint64_t last_seqno = 0;
  std::uint64_t nonce = 0;
  Bytes session_pubkey;  ///< empty or 64-byte ECDH ephemeral for HMAC responses

  Bytes serialize() const;
  static Result<ReadMsg> deserialize(BytesView b);
};

struct SubscribeMsg {
  Name capsule;
  Name subscriber;       ///< where kPublish events should be routed
  Bytes sub_cert;        ///< serialized trust::Cert (SubCert)
  std::uint64_t nonce = 0;

  Bytes serialize() const;
  static Result<SubscribeMsg> deserialize(BytesView b);
};

// ---- Server -> client ----------------------------------------------------------

struct AppendAckMsg {
  Name capsule;
  Name record_hash;
  std::uint64_t seqno = 0;
  std::uint32_t acks = 0;  ///< replicas known to hold the record
  bool ok = false;
  std::string error;
  std::uint64_t nonce = 0;
  Bytes server_principal;  ///< present iff auth.kind == kSignature
  Bytes delegation;        ///< present iff auth.kind == kSignature
  ResponseAuth auth;

  /// Canonical bytes covered by `auth`.
  Bytes signed_body() const;
  Bytes serialize() const;
  static Result<AppendAckMsg> deserialize(BytesView b);
};

struct ReadResponseMsg {
  Name capsule;
  bool ok = false;
  /// Errc as integer when !ok (0 = unspecified / legacy).  Signed along
  /// with the body so an on-path attacker cannot rewrite, say, a
  /// permission denial into a retryable overload shed.
  std::uint16_t code = 0;
  std::string error;
  Bytes proof;      ///< serialized capsule::RangeProof when ok
  Bytes heartbeat;  ///< serialized capsule::Heartbeat when ok
  /// Multi-writer capsules only: attached records *off* the canonical
  /// chain (lost CAS races, anycast forks awaiting anti-entropy).  Each is
  /// a serialized capsule::Record the client verifies standalone through
  /// its credential envelope; deterministic replay merges them with the
  /// canonical range so every reader converges on the same tree.
  std::vector<Bytes> branch_records;
  std::uint64_t nonce = 0;
  Bytes server_principal;
  Bytes delegation;
  ResponseAuth auth;

  Bytes signed_body() const;
  Bytes serialize() const;
  static Result<ReadResponseMsg> deserialize(BytesView b);
};

struct PublishMsg {
  Name capsule;
  capsule::Record record;
  Bytes heartbeat;  ///< serialized capsule::Heartbeat from the writer

  Bytes serialize() const;
  static Result<PublishMsg> deserialize(BytesView b);
};

struct StatusMsg {
  bool ok = false;
  std::uint16_t code = 0;  ///< Errc as integer when !ok
  std::string message;
  std::uint64_t nonce = 0;

  Bytes serialize() const;
  static Result<StatusMsg> deserialize(BytesView b);
};

// ---- SCL concurrency layer (compare-and-append + tip leases) ---------------------

/// Optimistic compare-and-append: the record lands only if the replica's
/// canonical tip still equals (expected_tip_seqno, expected_tip_hash).
/// Success acks as a normal kAppendAck; a lost race nacks as kCasNack
/// carrying the current tip so the writer can rebase and retry.
struct CondAppendMsg {
  Name capsule;
  capsule::Record record;
  std::uint64_t expected_tip_seqno = 0;  ///< 0 = expecting an empty capsule
  Name expected_tip_hash;                ///< capsule name when expecting empty
  std::uint32_t required_acks = 1;
  std::uint64_t lease_id = 0;            ///< 0 = no lease claimed
  std::uint64_t nonce = 0;
  Bytes session_pubkey;  ///< empty or 64-byte ECDH ephemeral for HMAC acks

  Bytes serialize() const;
  static Result<CondAppendMsg> deserialize(BytesView b);
};

/// CAS rejection.  Authenticated like every server response: an on-path
/// attacker must not be able to forge a nack (livelocking writers) or
/// rewrite the tip a loser rebases onto.
struct CasNackMsg {
  Name capsule;
  std::uint16_t code = 0;  ///< Errc::kConflict or Errc::kLeaseHeld
  std::string error;
  std::uint64_t tip_seqno = 0;  ///< current canonical tip for rebase
  Name tip_hash;
  Name lease_holder;                 ///< zero name when no lease interferes
  std::int64_t lease_expires_ns = 0;
  std::uint64_t nonce = 0;
  Bytes server_principal;
  Bytes delegation;
  ResponseAuth auth;

  Bytes signed_body() const;
  Bytes serialize() const;
  static Result<CasNackMsg> deserialize(BytesView b);
};

/// Advisory capsule-tip lease control: acquire / renew / release.  Leases
/// reduce CAS contention (losers back off while the holder streams); CAS
/// itself remains the safety mechanism, so an expired or split-brain
/// lease can cost throughput but never correctness.
struct LeaseRequestMsg {
  static constexpr std::uint8_t kAcquire = 0;
  static constexpr std::uint8_t kRenew = 1;
  static constexpr std::uint8_t kRelease = 2;

  Name capsule;
  std::uint8_t op = kAcquire;
  Name holder;                    ///< requesting client's principal name
  std::uint64_t lease_id = 0;     ///< required for renew/release
  std::int64_t duration_ns = 0;   ///< requested extension from now
  std::uint64_t nonce = 0;
  Bytes session_pubkey;

  Bytes serialize() const;
  static Result<LeaseRequestMsg> deserialize(BytesView b);
};

/// Lease decision; grants carry the replica's current tip so the holder
/// can start (or resume) appending without an extra read round-trip.
struct LeaseGrantMsg {
  Name capsule;
  bool ok = false;
  std::uint16_t code = 0;  ///< Errc::kLeaseHeld when denied
  std::string error;
  std::uint64_t lease_id = 0;
  Name holder;                  ///< current holder (the winner on denial)
  std::int64_t expires_ns = 0;
  std::uint64_t tip_seqno = 0;  ///< replica's canonical tip at decision time
  Name tip_hash;
  std::uint64_t nonce = 0;
  Bytes server_principal;
  Bytes delegation;
  ResponseAuth auth;

  Bytes signed_body() const;
  Bytes serialize() const;
  static Result<LeaseGrantMsg> deserialize(BytesView b);
};

// ---- Server <-> server anti-entropy ----------------------------------------------

struct SyncPullMsg {
  Name capsule;
  std::uint64_t tip_seqno = 0;    ///< requester's canonical tip
  std::vector<Name> holes;        ///< specific missing record hashes

  Bytes serialize() const;
  static Result<SyncPullMsg> deserialize(BytesView b);
};

struct SyncPushMsg {
  Name capsule;
  std::vector<Bytes> records;  ///< serialized capsule::Records
  /// Continuation cursor: 0 when the reply is complete, otherwise the
  /// seqno the puller should resume its SyncRangeMsg from (the batch cap
  /// truncated the reply).  Replaces the old one-shot 256-record flood.
  std::uint64_t resume_cursor = 0;

  Bytes serialize() const;
  static Result<SyncPushMsg> deserialize(BytesView b);
};

// Merkle-summary anti-entropy.  A replica probes a peer with its tree
// root (SyncSummaryMsg); on divergence the peer offers child-node hashes
// (SyncDescendMsg kind=offer), the probing replica expands only the
// subtrees that disagree (kind=request) and finally pulls the exact
// seqno ranges it lacks (SyncRangeMsg -> SyncPushMsg with cursor
// continuation).  Bytes on the wire scale with the divergence, not with
// the capsule.

/// One HashTree node: an aligned seqno range and its subtree hash.
struct TreeNode {
  std::uint64_t first = 0;  ///< inclusive, 1-based
  std::uint64_t last = 0;
  Name hash;  ///< subtree digest (offers); ignored in requests

  friend bool operator==(const TreeNode&, const TreeNode&) = default;
};

struct SyncSummaryMsg {
  Name capsule;
  std::uint64_t tip_seqno = 0;  ///< sender's canonical tip
  Name tip_hash;
  Name root_hash;  ///< HashTree root over [1, cover_span(tip_seqno)]

  Bytes serialize() const;
  static Result<SyncSummaryMsg> deserialize(BytesView b);
};

struct SyncDescendMsg {
  static constexpr std::uint8_t kOffer = 0;    ///< nodes carry my hashes
  static constexpr std::uint8_t kRequest = 1;  ///< expand these ranges

  Name capsule;
  std::uint8_t kind = kOffer;
  std::uint64_t tip_seqno = 0;  ///< sender's canonical tip
  std::vector<TreeNode> nodes;

  Bytes serialize() const;
  static Result<SyncDescendMsg> deserialize(BytesView b);
};

/// A half-open pull request: exact seqno ranges plus hash-named holes.
struct SyncRangeMsg {
  struct Range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;

    friend bool operator==(const Range&, const Range&) = default;
  };

  Name capsule;
  std::vector<Range> ranges;  ///< disjoint, ascending canonical seqno ranges
  std::vector<Name> holes;    ///< specific missing record hashes
  std::uint64_t cursor = 0;   ///< resume seqno within `ranges`; 0 = start

  Bytes serialize() const;
  static Result<SyncRangeMsg> deserialize(BytesView b);
};

// ---- Secure advertisement (§VII) ---------------------------------------------------

struct AdvertiseMsg {
  Bytes principal;                   ///< serialized trust::Principal
  std::vector<Bytes> catalog_records;  ///< trust::Catalog payload encodings

  Bytes serialize() const;
  static Result<AdvertiseMsg> deserialize(BytesView b);
};

struct ChallengeMsg {
  Bytes nonce;  ///< 32 bytes chosen by the router

  Bytes serialize() const;
  static Result<ChallengeMsg> deserialize(BytesView b);
};

struct ChallengeReplyMsg {
  Bytes principal;  ///< serialized trust::Principal (repeated for stateless verify)
  Bytes nonce_sig;  ///< 64-byte signature over (nonce || router name)
  Bytes rt_cert;    ///< serialized trust::Cert (RtCert issued to the router)

  Bytes serialize() const;
  static Result<ChallengeReplyMsg> deserialize(BytesView b);
};

struct AdvertiseOkMsg {
  bool ok = false;
  std::string message;
  std::uint32_t accepted = 0;  ///< advertisements admitted to the catalog

  Bytes serialize() const;
  static Result<AdvertiseOkMsg> deserialize(BytesView b);
};

// ---- GLookupService (§VII) ----------------------------------------------------------

struct LookupMsg {
  Name target;
  Name querying_router;
  std::uint64_t nonce = 0;

  Bytes serialize() const;
  static Result<LookupMsg> deserialize(BytesView b);
};

struct LookupReplyMsg {
  /// One ranked alternate replica for the same target.  Each option is
  /// independently verifiable (carries its own evidence + principal) so
  /// the querying router can pick any of them without trusting the
  /// registry's ordering.
  struct ReplicaOption {
    Name attachment_router;
    Name next_hop;
    std::uint32_t cost_us = 0;
    std::int64_t expires_ns = 0;
    Bytes evidence;
    Bytes principal;
  };

  bool found = false;
  Name target;
  Name attachment_router;  ///< router the target is attached to
  Name next_hop;           ///< querying router's next hop toward it
  std::uint32_t cost_us = 0;  ///< path cost (microseconds of latency)
  std::uint64_t nonce = 0;
  /// Expiry of the backing registration (RtCert not_after / catalog
  /// effective expiry).  Routers bound FIB-entry lifetime by it so stale
  /// routing state is re-resolved instead of silently reused.  <= 0 means
  /// the registry did not constrain the lifetime.
  std::int64_t expires_ns = 0;
  /// Independently verifiable routing state: the serialized
  /// trust::Advertisement backing this entry (empty for bare principals
  /// such as clients) and the advertiser's principal.
  Bytes evidence;
  Bytes principal;
  /// Load-aware selection: replicas ranked worse than the primary, best
  /// first.  Empty when selection is disabled or the target has a single
  /// eligible replica.
  std::vector<ReplicaOption> alternates;

  Bytes serialize() const;
  static Result<LookupReplyMsg> deserialize(BytesView b);
};

/// Server -> attachment router -> GLookupService: periodic (and
/// shed-edge-triggered) ingest-pressure report.  Feeds the lookup
/// service's health tracker so replica ranking reflects live load, and
/// the router's own neighbor health.
struct LoadReportMsg {
  Name server;
  std::uint32_t queue_depth = 0;
  std::uint32_t shed_level = 0;  ///< 0 none, 1 bench, 2 +reads, 3 +writes
  /// Expected per-op queueing delay: depth x EWMA service time.
  std::uint64_t expected_delay_ns = 0;

  Bytes serialize() const;
  static Result<LoadReportMsg> deserialize(BytesView b);
};

}  // namespace gdp::wire
