// Zero-copy PDU view over a pooled, refcounted wire segment.
//
// Pdu::serialize()/deserialize() materialise an owned buffer per hop; at
// edge-infrastructure rates that allocation churn *is* the router's cost
// (the fig6 4→8 KB cliff was glibc heap-trim behaviour under exactly that
// pattern).  A PduView instead parses the flat frame in place: header
// fields are decoded lazily at fixed offsets, the payload is a BytesView
// into the segment, and forwarding a PDU whose only mutations are the
// hop-mutable fields (ttl, trace_id) patches those bytes and moves the
// same segment to the next hop — zero payload copies per hop.
//
// Sharing discipline: SegRef refcounts make duplication explicit.  The
// patch_* mutators copy-on-write when the segment is shared, so a held
// reference (an adversary interceptor replaying a frame, a queued copy)
// never observes another path's TTL decrement.
#pragma once

#include "common/buffer.hpp"
#include "common/result.hpp"
#include "wire/pdu.hpp"

namespace gdp::wire {

class PduView {
 public:
  PduView() = default;

  /// Wraps a segment holding exactly one serialized PDU.  Framing-only
  /// validation (length arithmetic); field sanity (e.g. known MsgType)
  /// stays with Pdu::deserialize, which untrusted-ingest paths still use.
  static Result<PduView> parse(SegRef seg);

  /// Serializes `pdu` once into a pooled segment (the origin copy — the
  /// only instrumented copy a PDU needs for its whole journey).
  static PduView build(const Pdu& pdu);

  /// An independent same-bytes frame from a fresh pooled segment.
  PduView clone() const;

  bool valid() const { return static_cast<bool>(seg_); }

  Name dst() const { return name_at(kPduOffDst); }
  Name src() const { return name_at(kPduOffSrc); }
  /// Raw view of the 32-byte destination, for hashing without a copy.
  BytesView dst_bytes() const { return BytesView(data() + kPduOffDst, Name::kSize); }
  MsgType type() const {
    return static_cast<MsgType>(static_cast<std::uint16_t>(
        data()[kPduOffType] | (std::uint16_t(data()[kPduOffType + 1]) << 8)));
  }
  std::uint64_t flow_id() const { return u64_at(kPduOffFlowId); }
  std::uint64_t trace_id() const { return u64_at(kPduOffTraceId); }
  std::uint8_t ttl() const { return data()[kPduOffTtl]; }
  BytesView payload() const {
    return BytesView(data() + kPduOverhead, seg_->size() - kPduOverhead);
  }
  BytesView wire() const { return seg_.view(); }
  std::size_t wire_size() const { return seg_->size(); }

  // Hop-mutable field patches.  In place when this view holds the only
  // reference; otherwise the frame is cloned first (copy-on-write) so
  // concurrent holders of the old segment are unaffected.
  void patch_ttl(std::uint8_t ttl);
  void patch_trace_id(std::uint64_t id);
  /// TTL decrement, the forwarding hot path: patch_ttl(ttl() - 1).
  void dec_ttl() { patch_ttl(static_cast<std::uint8_t>(ttl() - 1)); }

  /// Owned Pdu for handlers that predate the view path (counted copy).
  Pdu materialize() const;

  /// The underlying segment (shared; refcount visible for tests).
  const SegRef& seg() const { return seg_; }

 private:
  explicit PduView(SegRef seg) : seg_(std::move(seg)) {}

  const std::uint8_t* data() const { return seg_->data(); }
  std::uint8_t* mutable_data() { return seg_->data(); }
  Name name_at(std::size_t off) const {
    return *Name::from_bytes(BytesView(data() + off, Name::kSize));
  }
  std::uint64_t u64_at(std::size_t off) const {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data()[off + static_cast<std::size_t>(i)];
    return v;
  }
  /// Ensures exclusive ownership before an in-place write.
  void make_unique();

  SegRef seg_;
};

}  // namespace gdp::wire
