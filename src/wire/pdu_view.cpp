#include "wire/pdu_view.hpp"

#include <cstring>

namespace gdp::wire {

Result<PduView> PduView::parse(SegRef seg) {
  if (!seg || seg->size() < kPduOverhead) {
    return make_error(Errc::kInvalidArgument, "truncated PDU frame");
  }
  const std::uint8_t* d = seg->data();
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | d[kPduOffPayloadLen + static_cast<std::size_t>(i)];
  }
  if (seg->size() != kPduOverhead + len) {
    return make_error(Errc::kInvalidArgument, "PDU frame length mismatch");
  }
  return PduView(std::move(seg));
}

PduView PduView::build(const Pdu& pdu) {
  const std::size_t total = kPduOverhead + pdu.payload.size();
  SegRef seg = SegmentPool::instance().acquire(total);
  std::uint8_t* d = seg->data();
  std::memcpy(d + kPduOffDst, pdu.dst.raw().data(), Name::kSize);
  std::memcpy(d + kPduOffSrc, pdu.src.raw().data(), Name::kSize);
  const std::uint16_t type_raw = static_cast<std::uint16_t>(pdu.type);
  d[kPduOffType] = static_cast<std::uint8_t>(type_raw);
  d[kPduOffType + 1] = static_cast<std::uint8_t>(type_raw >> 8);
  std::uint64_t v = pdu.flow_id;
  for (std::size_t i = 0; i < 8; ++i, v >>= 8) {
    d[kPduOffFlowId + i] = static_cast<std::uint8_t>(v);
  }
  v = pdu.trace_id;
  for (std::size_t i = 0; i < 8; ++i, v >>= 8) {
    d[kPduOffTraceId + i] = static_cast<std::uint8_t>(v);
  }
  d[kPduOffTtl] = pdu.ttl;
  std::uint32_t len = static_cast<std::uint32_t>(pdu.payload.size());
  for (std::size_t i = 0; i < 4; ++i, len >>= 8) {
    d[kPduOffPayloadLen + i] = static_cast<std::uint8_t>(len);
  }
  if (!pdu.payload.empty()) {
    std::memcpy(d + kPduOverhead, pdu.payload.data(), pdu.payload.size());
  }
  BufferStats::note_copy(total);
  return PduView(std::move(seg));
}

PduView PduView::clone() const {
  SegRef copy = SegmentPool::instance().acquire(seg_->size());
  std::memcpy(copy->data(), seg_->data(), seg_->size());
  BufferStats::note_copy(seg_->size());
  return PduView(std::move(copy));
}

void PduView::make_unique() {
  if (seg_.unique()) return;
  *this = clone();
}

void PduView::patch_ttl(std::uint8_t ttl) {
  make_unique();
  mutable_data()[kPduOffTtl] = ttl;
}

void PduView::patch_trace_id(std::uint64_t id) {
  make_unique();
  std::uint8_t* d = mutable_data();
  for (std::size_t i = 0; i < 8; ++i, id >>= 8) {
    d[kPduOffTraceId + i] = static_cast<std::uint8_t>(id);
  }
}

Pdu PduView::materialize() const {
  Pdu pdu;
  pdu.dst = dst();
  pdu.src = src();
  pdu.type = type();
  pdu.flow_id = flow_id();
  pdu.trace_id = trace_id();
  pdu.ttl = ttl();
  const BytesView pl = payload();
  pdu.payload.assign(pl.begin(), pl.end());
  BufferStats::note_copy(pl.size());
  return pdu;
}

}  // namespace gdp::wire
