#include "server/server.hpp"

#include <algorithm>

#include "capsule/proof.hpp"
#include "common/log.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/hmac.hpp"
#include "trust/delegation.hpp"

namespace gdp::server {

using capsule::Heartbeat;
using capsule::Record;

CapsuleServer::CapsuleServer(net::Network& net, const crypto::PrivateKey& key,
                             std::string label, Options options)
    : Endpoint(net, key, trust::Role::kCapsuleServer, std::move(label)),
      options_(std::move(options)),
      store_([&] {
        auto s = store::ServerStore::open(options_.storage_root);
        if (!s.ok()) {
          GDP_LOG(kError, "server") << "storage open failed: " << s.error().to_string();
          std::abort();
        }
        return std::move(s).value();
      }()),
      metric_prefix_("server." + std::string(self_.label()) + "."),
      appends_accepted_(
          net_.metrics().counter(metric_prefix_ + "appends.accepted")),
      appends_rejected_(
          net_.metrics().counter(metric_prefix_ + "appends.rejected")),
      reads_served_(net_.metrics().counter(metric_prefix_ + "reads.served")),
      sync_records_sent_(
          net_.metrics().counter(metric_prefix_ + "sync.records_sent")),
      sync_summary_bytes_(
          net_.metrics().counter(metric_prefix_ + "sync.summary_bytes")),
      sync_ranges_pulled_(
          net_.metrics().counter(metric_prefix_ + "sync.ranges_pulled")),
      sync_rounds_(net_.metrics().counter(metric_prefix_ + "sync.rounds")),
      sync_probes_(net_.metrics().counter(metric_prefix_ + "sync.probes")),
      drop_malformed_(net_.metrics().counter(metric_prefix_ + "drop.malformed")),
      drop_not_hosted_(
          net_.metrics().counter(metric_prefix_ + "drop.not_hosted")),
      drop_stale_ack_(
          net_.metrics().counter(metric_prefix_ + "drop.stale_ack")),
      drop_duplicate_ack_(
          net_.metrics().counter(metric_prefix_ + "drop.duplicate_ack")),
      drop_foreign_ack_(
          net_.metrics().counter(metric_prefix_ + "drop.foreign_ack")),
      recv_pdus_(net_.metrics().counter(metric_prefix_ + "recv.pdus")),
      batch_accepted_(net_.metrics().counter(metric_prefix_ + "batch.accepted")),
      batch_rejected_(net_.metrics().counter(metric_prefix_ + "batch.rejected")),
      batch_bisections_(
          net_.metrics().counter(metric_prefix_ + "batch.bisections")),
      shed_bench_(net_.metrics().counter(metric_prefix_ + "shed.bench_data")),
      shed_reads_(net_.metrics().counter(metric_prefix_ + "shed.reads")),
      shed_appends_(net_.metrics().counter(metric_prefix_ + "shed.appends")),
      ingest_enqueued_(
          net_.metrics().counter(metric_prefix_ + "ingest.enqueued")),
      ingest_processed_(
          net_.metrics().counter(metric_prefix_ + "ingest.processed")),
      ingest_high_water_(
          net_.metrics().counter(metric_prefix_ + "ingest.high_water")),
      load_reports_sent_(
          net_.metrics().counter(metric_prefix_ + "load_reports.sent")),
      cas_win_(net_.metrics().counter(metric_prefix_ + "scl.cas.win")),
      cas_conflict_(net_.metrics().counter(metric_prefix_ + "scl.cas.conflict")),
      cas_lease_rejected_(
          net_.metrics().counter(metric_prefix_ + "scl.cas.lease_rejected")),
      lease_granted_(net_.metrics().counter(metric_prefix_ + "scl.lease.granted")),
      lease_denied_(net_.metrics().counter(metric_prefix_ + "scl.lease.denied")),
      batch_size_(net_.metrics().histogram(metric_prefix_ + "batch.size")),
      ingest_depth_(
          net_.metrics().histogram(metric_prefix_ + "ingest.depth")) {
  batch_seed_ = net_.sim().rng().next_u64();
  overload_ = loadmgmt::OverloadManager(options_.overload);
  // Multi-writer credential verdicts route through the server's verify
  // cache: one credential signs every record of a writer's branch.
  store_.set_credential_checker(
      [this](const crypto::PublicKey& issuer, BytesView payload,
             const crypto::Signature& sig, std::int64_t expires_ns,
             std::int64_t now_ns) {
        return trust::cached_verify(&credential_cache_, issuer, payload, sig,
                                    expires_ns, TimePoint(now_ns));
      });
}

void CapsuleServer::publish_metrics() {
  auto& m = net_.metrics();
  if (options_.ingest_service_time > Duration::zero()) {
    m.counter(metric_prefix_ + "ingest.queue_depth").set(ingest_queue_.size());
    ingest_high_water_.set(overload_.high_water());
  }
  for (const Name& name : store_.hosted()) {
    const store::CapsuleStore* cs = store_.find(name);
    const std::string prefix = "store." + name.short_hex() + ".";
    m.counter(prefix + "records").set(cs->log().entry_count());
    m.counter(prefix + "payload_bytes").set(cs->log().payload_bytes());
    m.counter(prefix + "flushes").set(cs->log().sync_count());
    m.counter(prefix + "tip_seqno").set(cs->state().tip_seqno());
  }
}

Status CapsuleServer::host_capsule(const capsule::Metadata& metadata,
                                   const trust::ServingDelegation& delegation,
                                   std::vector<Name> replica_peers) {
  GDP_RETURN_IF_ERROR(trust::verify_serving_delegation(metadata, self_, delegation,
                                                       net_.sim().now()));
  GDP_RETURN_IF_ERROR(store_.host(metadata, delegation));
  auto& peers = peers_[metadata.name()];
  for (const Name& p : replica_peers) {
    if (p != self_.name() &&
        std::find(peers.begin(), peers.end(), p) == peers.end()) {
      peers.push_back(p);
    }
  }
  return ok_status();
}

std::vector<Bytes> CapsuleServer::build_catalog_records() const {
  std::vector<Bytes> out;
  const std::int64_t expiry =
      (net_.sim().now() + options_.advertisement_lifetime).count();
  for (const Name& name : store_.hosted()) {
    const store::CapsuleStore* cs = store_.find(name);
    trust::Advertisement ad;
    ad.advertised = name;
    ad.delegation = cs->delegation();
    ad.capsule_metadata = cs->metadata().serialize();
    ad.expires_ns = expiry;
    out.push_back(trust::Catalog::encode_advertisement(ad));
  }
  return out;
}

void CapsuleServer::advertise_to(const Name& router) {
  advertise(router, build_catalog_records(), options_.advertisement_lifetime);
}

void CapsuleServer::reattach() { advertise_to(router()); }

void CapsuleServer::start_anti_entropy() {
  if (anti_entropy_running_) return;
  anti_entropy_running_ = true;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, tick]() {
    if (!anti_entropy_running_) return;
    anti_entropy_round();
    net_.sim().schedule(options_.anti_entropy_interval, *tick);
  };
  net_.sim().schedule(options_.anti_entropy_interval, *tick);
}

void CapsuleServer::anti_entropy_round() {
  sync_rounds_.inc();
  for (const Name& capsule : store_.hosted()) {
    auto peer_it = peers_.find(capsule);
    if (peer_it == peers_.end() || peer_it->second.empty()) continue;
    const store::CapsuleStore* cs = store_.find(capsule);
    if (options_.sync_mode == SyncMode::kSummary) {
      auto sess = sync_sessions_.find(capsule);
      if (sess != sync_sessions_.end()) {
        SyncSession& s = sess->second;
        if (s.received > s.last_progress) {
          s.last_progress = s.received;
          s.idle_rounds = 0;
          s.retries = 0;
        } else if (++s.idle_rounds >= kStallRounds) {
          // No records for a while: either a PDU was lost or the link is
          // just slow (the threshold must exceed one batch's transfer
          // time in rounds, or healthy slow-link pulls get re-requested
          // and the retry itself duplicates traffic).
          s.idle_rounds = 0;
          if (s.retries < kMaxRetries && (s.in_flight || !s.queued.empty())) {
            // Progress-preserving retry: re-request the in-flight ranges
            // at the last acknowledged cursor — one small PDU, and the
            // Merkle walk's findings survive the loss.
            ++s.retries;
            if (s.in_flight) {
              wire::SyncRangeMsg again;
              again.capsule = capsule;
              again.ranges = s.requested;
              again.holes = cs->state().holes();
              again.cursor = s.cursor;
              Bytes payload = again.serialize();
              sync_summary_bytes_.inc(payload.size());
              send_pdu(s.peer, wire::MsgType::kSyncRange, std::move(payload),
                       s.flow);
            } else {
              flush_session(capsule, s);
            }
          } else {
            // Retries exhausted (peer likely gone): drop the conversation
            // and fall through to a fresh probe, possibly at another peer.
            sync_sessions_.erase(sess);
            sess = sync_sessions_.end();
          }
        }
        if (sess != sync_sessions_.end()) continue;  // conversation still live
      }
      const Name peer =
          peer_it->second[net_.sim().rng().next_below(peer_it->second.size())];
      send_summary_probe(capsule, peer);
    } else {
      const Name peer =
          peer_it->second[net_.sim().rng().next_below(peer_it->second.size())];
      wire::SyncPullMsg msg;
      msg.capsule = capsule;
      msg.tip_seqno = cs->state().tip_seqno();
      msg.holes = cs->state().holes();
      send_pdu(peer, wire::MsgType::kSyncPull, msg.serialize());
    }
  }
}

Status CapsuleServer::ingest_local(const Name& capsule, const Record& record) {
  store::CapsuleStore* cs = store_.find(capsule);
  if (cs == nullptr) {
    return make_error(Errc::kNotFound, "capsule not hosted here");
  }
  return cs->ingest(record, capsule::SigPolicy::kPreVerified);
}

void CapsuleServer::send_summary_probe(const Name& capsule, const Name& peer) {
  const store::CapsuleStore* cs = store_.find(capsule);
  if (cs == nullptr) return;
  const auto& state = cs->state();
  wire::SyncSummaryMsg msg;
  msg.capsule = capsule;
  msg.tip_seqno = state.tip_seqno();
  msg.tip_hash = state.tip_hash();
  msg.root_hash = crypto::digest_to_name(state.tree().root().hash);
  Bytes payload = msg.serialize();
  sync_probes_.inc();
  sync_summary_bytes_.inc(payload.size());
  send_pdu(peer, wire::MsgType::kSyncSummary, std::move(payload));
}

namespace {

/// Data-plane ops that occupy the server under the ingest service model.
/// Control traffic (acks, handshakes, sync bookkeeping) stays inline:
/// delaying a quorum ack behind a read backlog would convert one
/// overloaded replica into a fleet-wide durability stall.
bool serviced_op(wire::MsgType type) {
  switch (type) {
    case wire::MsgType::kBenchData:
    case wire::MsgType::kRead:
    case wire::MsgType::kAppend:
    case wire::MsgType::kCondAppend:
    case wire::MsgType::kSyncPush:
      return true;
    default:
      return false;
  }
}

loadmgmt::DropPriority drop_priority_of(wire::MsgType type) {
  switch (type) {
    case wire::MsgType::kBenchData: return loadmgmt::DropPriority::kBench;
    case wire::MsgType::kRead: return loadmgmt::DropPriority::kRead;
    case wire::MsgType::kAppend:
    case wire::MsgType::kCondAppend:
      return loadmgmt::DropPriority::kWrite;
    default: return loadmgmt::DropPriority::kCritical;
  }
}

}  // namespace

void CapsuleServer::handle_pdu(const Name& from, const wire::Pdu& pdu) {
  // Accounted before the dispatch switch: the kBenchData early-return
  // used to bypass per-server accounting entirely, making bench floods
  // invisible in stats dumps and traces.
  recv_pdus_.inc();
  if (options_.ingest_service_time > Duration::zero() && serviced_op(pdu.type)) {
    enqueue_ingest(from, pdu);
    return;
  }
  dispatch_op(from, pdu);
}

void CapsuleServer::enqueue_ingest(const Name& from, const wire::Pdu& pdu) {
  const loadmgmt::DropPriority priority = drop_priority_of(pdu.type);
  overload_.update(ingest_queue_.size());
  if (options_.shed_enabled && !overload_.admit(priority)) {
    shed_op(pdu, priority);
    maybe_report_shed_edge();
    return;
  }
  ingest_queue_.push_back(QueuedOp{from, pdu});
  ingest_enqueued_.inc();
  ingest_depth_.record(ingest_queue_.size());
  maybe_report_shed_edge();
  if (!ingest_draining_) {
    ingest_draining_ = true;
    net_.sim().schedule(options_.ingest_service_time, [this] { drain_ingest(); });
  }
}

void CapsuleServer::drain_ingest() {
  if (ingest_queue_.empty()) {
    ingest_draining_ = false;
    return;
  }
  QueuedOp op = std::move(ingest_queue_.front());
  ingest_queue_.pop_front();
  ingest_processed_.inc();
  dispatch_op(op.from, op.pdu);
  overload_.update(ingest_queue_.size());
  maybe_report_shed_edge();
  if (ingest_queue_.empty()) {
    ingest_draining_ = false;
    return;
  }
  net_.sim().schedule(options_.ingest_service_time, [this] { drain_ingest(); });
}

void CapsuleServer::shed_op(const wire::Pdu& pdu,
                            loadmgmt::DropPriority priority) {
  switch (priority) {
    case loadmgmt::DropPriority::kBench:
      shed_bench_.inc();
      net_.trace().record(pdu.trace_id, self_.name(), "drop", "shed_bench_data");
      return;
    case loadmgmt::DropPriority::kRead: {
      shed_reads_.inc();
      net_.trace().record(pdu.trace_id, self_.name(), "drop", "shed_read");
      auto msg = wire::ReadMsg::deserialize(pdu.payload);
      if (!msg.ok()) return;  // malformed and shed: nothing to answer
      wire::ReadResponseMsg resp;
      resp.capsule = msg->capsule;
      resp.nonce = msg->nonce;
      resp.ok = false;
      resp.code = static_cast<std::uint16_t>(Errc::kUnavailable);
      resp.error = std::string(errc_name(Errc::kUnavailable)) +
                   ": read shed under overload";
      authenticate_response(msg->capsule, pdu.src, msg->session_pubkey,
                            resp.signed_body(), resp.auth,
                            resp.server_principal, resp.delegation);
      send_pdu(pdu.src, wire::MsgType::kReadResponse, resp.serialize(),
               pdu.flow_id);
      return;
    }
    case loadmgmt::DropPriority::kWrite: {
      shed_appends_.inc();
      net_.trace().record(pdu.trace_id, self_.name(), "drop", "shed_append");
      PendingDurability pending;
      pending.writer = pdu.src;
      pending.acks = 0;  // nothing persisted
      if (pdu.type == wire::MsgType::kCondAppend) {
        auto msg = wire::CondAppendMsg::deserialize(pdu.payload);
        if (!msg.ok()) return;
        pending.capsule = msg->capsule;
        pending.record_hash = msg->record.hash();
        pending.seqno = msg->record.header.seqno;
        pending.client_nonce = msg->nonce;
        pending.session_pubkey = msg->session_pubkey;
      } else {
        auto msg = wire::AppendMsg::deserialize(pdu.payload);
        if (!msg.ok()) return;
        pending.capsule = msg->capsule;
        pending.record_hash = msg->record.hash();
        pending.seqno = msg->record.header.seqno;
        pending.client_nonce = msg->nonce;
        pending.session_pubkey = msg->session_pubkey;
      }
      send_append_ack(pending, false,
                      std::string(errc_name(Errc::kUnavailable)) +
                          ": append shed under overload");
      return;
    }
    case loadmgmt::DropPriority::kCritical:
      // Unreachable: admit() never rejects kCritical.
      return;
  }
}

void CapsuleServer::send_load_report() {
  if (!attached()) return;
  wire::LoadReportMsg msg;
  msg.server = self_.name();
  msg.queue_depth = static_cast<std::uint32_t>(ingest_queue_.size());
  msg.shed_level = static_cast<std::uint32_t>(overload_.shed_level());
  msg.expected_delay_ns = static_cast<std::uint64_t>(
      ingest_queue_.size() * options_.ingest_service_time.count());
  load_reports_sent_.inc();
  send_pdu(router(), wire::MsgType::kLoadReport, msg.serialize());
}

void CapsuleServer::maybe_report_shed_edge() {
  if (!load_reports_running_) return;
  const int level = overload_.shed_level();
  if (level == reported_shed_level_) return;
  reported_shed_level_ = level;
  send_load_report();
}

void CapsuleServer::start_load_reports() {
  if (options_.load_report_interval <= Duration::zero()) return;
  load_reports_running_ = true;
  net_.sim().schedule(options_.load_report_interval, [this] {
    if (!load_reports_running_) return;
    overload_.update(ingest_queue_.size());
    reported_shed_level_ = overload_.shed_level();
    send_load_report();
    start_load_reports();  // reschedules the next tick
  });
}

void CapsuleServer::dispatch_op(const Name& from, const wire::Pdu& pdu) {
  switch (pdu.type) {
    case wire::MsgType::kCreateCapsule: handle_create(from, pdu); return;
    case wire::MsgType::kAppend: handle_append(pdu); return;
    case wire::MsgType::kCondAppend: handle_cond_append(pdu); return;
    case wire::MsgType::kLeaseRequest: handle_lease_request(pdu); return;
    case wire::MsgType::kRead: handle_read(pdu); return;
    case wire::MsgType::kSubscribe: handle_subscribe(pdu); return;
    case wire::MsgType::kSyncPull: handle_sync_pull(pdu); return;
    case wire::MsgType::kSyncPush: handle_sync_push(pdu); return;
    case wire::MsgType::kSyncSummary: handle_sync_summary(pdu); return;
    case wire::MsgType::kSyncDescend: handle_sync_descend(pdu); return;
    case wire::MsgType::kSyncRange: handle_sync_range(pdu); return;
    case wire::MsgType::kStatus: handle_peer_ack(pdu); return;
    case wire::MsgType::kBenchData:
      // Raw forwarding benchmark sink; the terminal span mirrors the
      // router's bench path so traces show where the flood ended.
      net_.trace().record(pdu.trace_id, self_.name(), "bench_sink");
      return;
    default:
      GDP_LOG(kWarn, "server") << "unhandled PDU type " << static_cast<int>(pdu.type);
      net_.metrics().counter(metric_prefix_ + "drop.unhandled").inc();
      net_.trace().record(pdu.trace_id, self_.name(), "drop", "unhandled_type");
  }
}

void CapsuleServer::handle_create(const Name& /*from*/, const wire::Pdu& pdu) {
  auto msg = wire::CreateCapsuleMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    send_status(pdu.src, false, Errc::kInvalidArgument, "malformed create", 0);
    return;
  }
  auto metadata = capsule::Metadata::deserialize(msg->metadata);
  if (!metadata.ok()) {
    send_status(pdu.src, false, metadata.error().code, metadata.error().message,
                msg->nonce);
    return;
  }
  auto delegation = trust::ServingDelegation::deserialize(msg->delegation);
  if (!delegation.ok()) {
    send_status(pdu.src, false, delegation.error().code, delegation.error().message,
                msg->nonce);
    return;
  }
  Status hosted = host_capsule(*metadata, *delegation, msg->replica_peers);
  if (!hosted.ok()) {
    send_status(pdu.src, false, hosted.error().code, hosted.error().message,
                msg->nonce);
    return;
  }
  // Make the new name routable.
  advertise_to(router());
  send_status(pdu.src, true, Errc::kOk, "", msg->nonce);
}

void CapsuleServer::handle_append(const wire::Pdu& pdu) {
  auto msg = wire::AppendMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_append");
    return;
  }

  PendingDurability pending;
  pending.writer = pdu.src;
  pending.capsule = msg->capsule;
  pending.record_hash = msg->record.hash();
  pending.seqno = msg->record.header.seqno;
  pending.required = std::max<std::uint32_t>(1, msg->required_acks);
  pending.client_nonce = msg->nonce;
  pending.session_pubkey = msg->session_pubkey;

  store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    appends_rejected_.inc();
    send_append_ack(pending, false, "capsule not hosted here");
    return;
  }
  run_append(*cs, std::move(pending), msg->record, pdu);
}

void CapsuleServer::run_append(store::CapsuleStore& cs, PendingDurability pending,
                               const Record& record, const wire::Pdu& pdu) {
  const Name capsule = pending.capsule;
  const std::uint64_t tip_before = cs.state().tip_seqno();
  Status ingested = cs.ingest(record);
  if (!ingested.ok()) {
    appends_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "append_rejected");
    send_append_ack(pending, false, ingested.error().to_string());
    return;
  }
  appends_accepted_.inc();
  // Local persistence means *flushed*, not just buffered — acking before
  // the flush would claim durability the storage engine cannot back.
  (void)cs.sync();
  net_.metrics()
      .histogram("store." + capsule.short_hex() + ".append.bytes")
      .record(record.payload.size());
  publish_new_canonical(capsule, tip_before);

  const auto peer_it = peers_.find(capsule);
  const std::size_t peer_count = peer_it == peers_.end() ? 0 : peer_it->second.size();
  pending.peer_count = static_cast<std::uint32_t>(peer_count);
  // The local flushed persist is the first durable copy, so the quorum
  // needs required - 1 peer acks; only required > peers + 1 is honestly
  // unsatisfiable and nacked up front instead of burning the timeout.
  if (pending.required > peer_count + 1) {
    send_append_ack(pending, false,
                    "required_acks " + std::to_string(pending.required) +
                        " unsatisfiable with " + std::to_string(peer_count) +
                        " replica peers");
    propagate_record(capsule, record, 0);
    return;
  }
  if (pending.required <= 1) {
    // Fast path (§VI-B): ack after local persistence, propagate in the
    // background.
    send_append_ack(pending, true, "");
    propagate_record(capsule, record, 0);
    return;
  }
  // Durable path: hold the ack until enough replicas confirm (the local
  // copy already counts as ack #1).
  const std::uint64_t id = next_pending_id_++;
  pending_[id] = pending;
  propagate_record(capsule, record, id);
  net_.sim().schedule(options_.durability_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // already acked
    PendingDurability p = std::move(it->second);
    pending_.erase(it);
    send_append_ack(p, false,
                    "durability timeout: " + std::to_string(p.acks) + "/" +
                        std::to_string(p.required) + " acks");
  });
}

CapsuleServer::Lease* CapsuleServer::active_lease(const Name& capsule) {
  auto it = leases_.find(capsule);
  if (it == leases_.end()) return nullptr;
  if (it->second.expires_ns <= net_.sim().now().count()) {
    leases_.erase(it);  // lazily reaped; expiry needs no timer
    return nullptr;
  }
  return &it->second;
}

void CapsuleServer::send_cas_nack(const store::CapsuleStore& cs,
                                  const wire::Pdu& pdu, std::uint64_t nonce,
                                  BytesView session_pubkey, Errc code,
                                  std::string why, const Lease* lease) {
  wire::CasNackMsg nack;
  nack.capsule = cs.metadata().name();
  nack.code = static_cast<std::uint16_t>(code);
  nack.error = std::string(errc_name(code)) + ": " + std::move(why);
  nack.tip_seqno = cs.state().tip_seqno();
  nack.tip_hash = cs.state().tip_hash();
  if (lease != nullptr) {
    nack.lease_holder = lease->holder;
    nack.lease_expires_ns = lease->expires_ns;
  }
  nack.nonce = nonce;
  authenticate_response(nack.capsule, pdu.src, session_pubkey, nack.signed_body(),
                        nack.auth, nack.server_principal, nack.delegation);
  send_pdu(pdu.src, wire::MsgType::kCasNack, nack.serialize(), pdu.flow_id);
}

void CapsuleServer::handle_cond_append(const wire::Pdu& pdu) {
  auto msg = wire::CondAppendMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_cond_append");
    return;
  }

  PendingDurability pending;
  pending.writer = pdu.src;
  pending.capsule = msg->capsule;
  pending.record_hash = msg->record.hash();
  pending.seqno = msg->record.header.seqno;
  pending.required = std::max<std::uint32_t>(1, msg->required_acks);
  pending.client_nonce = msg->nonce;
  pending.session_pubkey = msg->session_pubkey;

  store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    appends_rejected_.inc();
    send_append_ack(pending, false, "capsule not hosted here");
    return;
  }
  // Advisory lease gate first: a writer that does not present the active
  // lease backs off without even reaching the tip comparison.
  Lease* lease = active_lease(msg->capsule);
  if (lease != nullptr && lease->id != msg->lease_id) {
    cas_lease_rejected_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "cas_lease_held");
    send_cas_nack(*cs, pdu, msg->nonce, msg->session_pubkey, Errc::kLeaseHeld,
                  "capsule tip lease held by another writer", lease);
    return;
  }
  // The actual compare half of compare-and-append: both seqno and hash
  // must match the canonical tip, so a raced append — even one producing
  // the same seqno on a different branch — nacks with the fresh tip.
  const auto& state = cs->state();
  if (state.tip_seqno() != msg->expected_tip_seqno ||
      state.tip_hash() != msg->expected_tip_hash) {
    cas_conflict_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "verify", "cas_conflict");
    send_cas_nack(*cs, pdu, msg->nonce, msg->session_pubkey, Errc::kConflict,
                  "capsule tip moved", lease);
    return;
  }
  cas_win_.inc();
  run_append(*cs, std::move(pending), msg->record, pdu);
}

void CapsuleServer::handle_lease_request(const wire::Pdu& pdu) {
  auto msg = wire::LeaseRequestMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_lease");
    return;
  }

  wire::LeaseGrantMsg grant;
  grant.capsule = msg->capsule;
  grant.nonce = msg->nonce;

  auto respond = [&] {
    authenticate_response(msg->capsule, pdu.src, msg->session_pubkey,
                          grant.signed_body(), grant.auth,
                          grant.server_principal, grant.delegation);
    send_pdu(pdu.src, wire::MsgType::kLeaseGrant, grant.serialize(), pdu.flow_id);
  };
  auto deny = [&](Errc code, std::string why, const Lease* holder) {
    lease_denied_.inc();
    grant.ok = false;
    grant.code = static_cast<std::uint16_t>(code);
    grant.error = std::string(errc_name(code)) + ": " + std::move(why);
    if (holder != nullptr) {
      grant.lease_id = holder->id;
      grant.holder = holder->holder;
      grant.expires_ns = holder->expires_ns;
    }
    respond();
  };

  store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    deny(Errc::kNotFound, "capsule not hosted here", nullptr);
    return;
  }
  // Grants always carry the current tip so the holder can start (or
  // resume) its CAS chain without a separate read round-trip.
  grant.tip_seqno = cs->state().tip_seqno();
  grant.tip_hash = cs->state().tip_hash();
  const std::int64_t now = net_.sim().now().count();
  Lease* lease = active_lease(msg->capsule);

  switch (msg->op) {
    case wire::LeaseRequestMsg::kAcquire: {
      if (lease != nullptr && lease->holder != msg->holder) {
        deny(Errc::kLeaseHeld, "lease held by another client", lease);
        return;
      }
      Lease fresh;
      fresh.holder = msg->holder;
      // Re-acquisition by the same holder keeps the id (its in-flight CAS
      // chain stays valid) and just extends the window.
      fresh.id = lease != nullptr ? lease->id : next_lease_id_++;
      fresh.expires_ns = now + msg->duration_ns;
      leases_[msg->capsule] = fresh;
      lease_granted_.inc();
      grant.ok = true;
      grant.lease_id = fresh.id;
      grant.holder = fresh.holder;
      grant.expires_ns = fresh.expires_ns;
      respond();
      return;
    }
    case wire::LeaseRequestMsg::kRenew: {
      if (lease == nullptr || lease->id != msg->lease_id ||
          lease->holder != msg->holder) {
        deny(Errc::kNotFound, "no matching lease to renew", lease);
        return;
      }
      lease->expires_ns = now + msg->duration_ns;
      lease_granted_.inc();
      grant.ok = true;
      grant.lease_id = lease->id;
      grant.holder = lease->holder;
      grant.expires_ns = lease->expires_ns;
      respond();
      return;
    }
    case wire::LeaseRequestMsg::kRelease: {
      // Idempotent: releasing an expired or already-released lease is ok.
      if (lease != nullptr && lease->id == msg->lease_id &&
          lease->holder == msg->holder) {
        leases_.erase(msg->capsule);
      }
      grant.ok = true;
      respond();
      return;
    }
    default:
      deny(Errc::kInvalidArgument, "unknown lease op", nullptr);
  }
}

void CapsuleServer::propagate_record(const Name& capsule, const Record& record,
                                     std::uint64_t flow_id) {
  auto peer_it = peers_.find(capsule);
  if (peer_it == peers_.end()) return;
  for (const Name& peer : peer_it->second) {
    wire::SyncPushMsg msg;
    msg.capsule = capsule;
    msg.records.push_back(record.serialize());
    sync_records_sent_.inc();
    send_pdu(peer, wire::MsgType::kSyncPush, msg.serialize(), flow_id);
  }
}

void CapsuleServer::handle_peer_ack(const wire::Pdu& pdu) {
  auto msg = wire::StatusMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_ack");
    return;
  }
  auto it = pending_.find(msg->nonce);
  if (it == pending_.end()) {
    drop_stale_ack_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "stale_ack");
    return;
  }
  PendingDurability& p = it->second;
  // Only configured replica peers vote, and each peer's first response is
  // the one that counts — a retried or flap-re-delivered ack must not let
  // one durable copy satisfy a 2-of-k quorum.
  const auto peer_it = peers_.find(p.capsule);
  const bool is_peer =
      peer_it != peers_.end() &&
      std::find(peer_it->second.begin(), peer_it->second.end(), pdu.src) !=
          peer_it->second.end();
  if (!is_peer) {
    drop_foreign_ack_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "foreign_ack");
    return;
  }
  if (!p.responded.insert(pdu.src).second) {
    drop_duplicate_ack_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "duplicate_ack");
    return;
  }
  if (msg->ok) {
    ++p.acks;
    if (p.acks >= p.required) {
      PendingDurability done = std::move(p);
      pending_.erase(it);
      send_append_ack(done, true, "");
    }
    return;
  }
  // Negative ack: fail fast once the quorum can no longer be reached,
  // instead of burning the full durability timeout.
  ++p.nacks;
  const std::uint32_t undecided =
      p.peer_count - static_cast<std::uint32_t>(p.responded.size());
  if (p.acks + undecided < p.required) {
    PendingDurability done = std::move(p);
    pending_.erase(it);
    send_append_ack(done, false,
                    "quorum unreachable: " + std::to_string(done.nacks) +
                        " peer nacks, " + std::to_string(done.acks) + "/" +
                        std::to_string(done.required) + " acks");
  }
}

void CapsuleServer::handle_sync_push(const wire::Pdu& pdu) {
  auto msg = wire::SyncPushMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_sync");
    return;
  }
  store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    drop_not_hosted_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_hosted");
    if (pdu.flow_id != 0) {
      // A replica waiting on this push for durability must hear the
      // rejection now, not at its timeout.
      wire::StatusMsg nack;
      nack.ok = false;
      nack.code = static_cast<std::uint16_t>(Errc::kNotFound);
      nack.message = "capsule not hosted here";
      nack.nonce = pdu.flow_id;
      send_pdu(pdu.src, wire::MsgType::kStatus, nack.serialize(), pdu.flow_id);
    }
    return;
  }
  const std::uint64_t tip_before = cs->state().tip_seqno();
  bool all_ok = true;
  // Deserialize the whole flood first so the writer signatures of all
  // not-yet-known records can be verified as one batch (a single
  // multi-scalar multiplication) instead of one at a time.
  std::vector<Record> records;
  records.reserve(msg->records.size());
  for (const Bytes& record_bytes : msg->records) {
    auto record = Record::deserialize(record_bytes);
    if (!record.ok()) {
      all_ok = false;
      continue;
    }
    records.push_back(std::move(*record));
  }
  std::vector<capsule::SigPolicy> policy(records.size(),
                                         capsule::SigPolicy::kVerify);
  std::vector<char> skip(records.size(), 0);
  std::vector<std::size_t> fresh;  // unknown records, the ones verification costs
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!cs->state().known(records[i].hash())) fresh.push_back(i);
  }
  // Batch verification assumes one writer key for the whole flood; in
  // multi-writer mode each record resolves its key from its own credential
  // envelope, so records go through per-record ingest (memoized via the
  // credential cache) instead.
  const bool single_writer =
      cs->metadata().mode() != capsule::WriterMode::kMultiWriter;
  if (single_writer && fresh.size() >= crypto::BatchVerifier::kMinBatch) {
    crypto::BatchVerifier batch(batch_seed_);
    batch.reserve(fresh.size());
    const crypto::PublicKey& writer = cs->metadata().writer_key();
    for (std::size_t i : fresh) {
      crypto::Digest digest;
      const auto h = records[i].hash();
      std::copy(h.raw().begin(), h.raw().end(), digest.begin());
      batch.add(digest, writer, records[i].writer_sig);
    }
    const auto result = batch.verify_all();
    batch_size_.record(fresh.size());
    batch_accepted_.inc(fresh.size() - result.rejected.size());
    batch_rejected_.inc(result.rejected.size());
    batch_bisections_.inc(result.bisections);
    net_.trace().record(pdu.trace_id, self_.name(), "verify",
                        result.all_ok() ? "batch_ok" : "batch_rejected");
    std::size_t rej = 0;
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      if (rej < result.rejected.size() && result.rejected[rej] == j) {
        // The batch verdict equals the serial one, so ingest would fail
        // with "writer signature invalid" — skip it and fail the ack.
        skip[fresh[j]] = 1;
        ++rej;
      } else {
        policy[fresh[j]] = capsule::SigPolicy::kPreVerified;
      }
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (skip[i]) {
      all_ok = false;
      continue;
    }
    if (!cs->ingest(records[i], policy[i]).ok()) all_ok = false;
  }
  publish_new_canonical(msg->capsule, tip_before);

  // Pull-reply push for an active summary-sync session?  Continue the
  // cursor (the peer truncated at its batch cap) or retire the session.
  auto sess = sync_sessions_.find(msg->capsule);
  if (sess != sync_sessions_.end() && sess->second.peer == pdu.src &&
      sess->second.flow == pdu.flow_id) {
    SyncSession& s = sess->second;
    s.received += msg->records.size();
    if (msg->resume_cursor != 0) {
      wire::SyncRangeMsg next;
      next.capsule = msg->capsule;
      next.ranges = s.requested;
      next.holes = cs->state().holes();
      next.cursor = msg->resume_cursor;
      s.cursor = msg->resume_cursor;
      Bytes payload = next.serialize();
      sync_summary_bytes_.inc(payload.size());
      send_pdu(pdu.src, wire::MsgType::kSyncRange, std::move(payload), s.flow);
    } else if (!s.queued.empty()) {
      flush_session(msg->capsule, s);
    } else {
      // Conversation drained; a fresh probe next round confirms parity.
      sync_sessions_.erase(sess);
    }
    return;
  }
  if (pdu.flow_id != 0) {
    // Durability ack back to the pushing replica.
    wire::StatusMsg ack;
    ack.ok = all_ok;
    ack.nonce = pdu.flow_id;
    send_pdu(pdu.src, wire::MsgType::kStatus, ack.serialize(), pdu.flow_id);
  }
}

void CapsuleServer::handle_sync_pull(const wire::Pdu& pdu) {
  auto msg = wire::SyncPullMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_sync");
    return;
  }
  store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    drop_not_hosted_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_hosted");
    return;
  }
  const auto& state = cs->state();
  wire::SyncPushMsg push;
  push.capsule = msg->capsule;
  constexpr std::size_t kMaxBatch = 256;
  // Records the peer lacks beyond its tip...
  std::unordered_set<Name> included;
  for (std::uint64_t s = msg->tip_seqno + 1;
       s <= state.tip_seqno() && push.records.size() < kMaxBatch; ++s) {
    auto rec = state.get_by_seqno(s);
    if (rec) {
      included.insert(rec->hash());
      push.records.push_back(rec->serialize());
    }
  }
  // ...plus specific hole fills.  A hole already covered by the tip scan
  // (or repeated in the request) must not be sent twice: duplicates both
  // waste wire bytes and inflate sync.records_sent.
  for (const Name& hole : msg->holes) {
    if (push.records.size() >= kMaxBatch) break;
    if (!included.insert(hole).second) continue;
    auto rec = state.get_by_hash(hole);
    if (rec) push.records.push_back(rec->serialize());
  }
  if (push.records.empty()) return;
  sync_records_sent_.inc(push.records.size());
  send_pdu(pdu.src, wire::MsgType::kSyncPush, push.serialize());
}

// ---- Merkle-summary anti-entropy ----------------------------------------------------
//
// Roles: the *prober* sends its tree root (anti_entropy_round); the peer
// answers divergence with an offer of child hashes; the prober expands
// disagreeing interior nodes (request -> offer recursion) and pulls leaf
// or locally-empty ranges via SyncRangeMsg, which the peer answers with
// cursor-continued SyncPushMsgs.  Bytes scale with the divergence.

void CapsuleServer::handle_sync_summary(const wire::Pdu& pdu) {
  auto msg = wire::SyncSummaryMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_sync");
    return;
  }
  const store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    drop_not_hosted_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_hosted");
    return;
  }
  const auto& state = cs->state();
  const std::uint64_t my_tip = state.tip_seqno();
  if (my_tip == msg->tip_seqno && state.tip_hash() == msg->tip_hash &&
      crypto::digest_to_name(state.tree().root().hash) == msg->root_hash) {
    return;  // in sync, nothing to say
  }
  // Offer the children of the smallest aligned span covering both tips;
  // the prober compares them against its own nodes over the same ranges.
  const std::uint64_t span = capsule::HashTree::cover_span(
      std::max<std::uint64_t>(std::max(my_tip, msg->tip_seqno), 1));
  wire::SyncDescendMsg offer;
  offer.capsule = msg->capsule;
  offer.kind = wire::SyncDescendMsg::kOffer;
  offer.tip_seqno = my_tip;
  const auto& tree = state.tree();
  if (span <= capsule::HashTree::kLeafSpan) {
    const auto n = tree.node(1, span);
    offer.nodes.push_back(
        {n.first, n.last, crypto::digest_to_name(n.hash)});
  } else {
    for (const auto& n : tree.children(1, span)) {
      offer.nodes.push_back({n.first, n.last, crypto::digest_to_name(n.hash)});
    }
  }
  Bytes payload = offer.serialize();
  sync_summary_bytes_.inc(payload.size());
  send_pdu(pdu.src, wire::MsgType::kSyncDescend, std::move(payload));
  // The probe also told us the peer is ahead; pull the other way too.
  // Only the strictly-behind side reverse-probes, so two replicas never
  // ping-pong probes forever.
  if (my_tip < msg->tip_seqno && !sync_sessions_.contains(msg->capsule)) {
    send_summary_probe(msg->capsule, pdu.src);
  }
}

void CapsuleServer::handle_sync_descend(const wire::Pdu& pdu) {
  auto msg = wire::SyncDescendMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_sync");
    return;
  }
  const store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    drop_not_hosted_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_hosted");
    return;
  }
  const auto& tree = cs->state().tree();

  if (msg->kind == wire::SyncDescendMsg::kRequest) {
    // Expand each requested interior range into its children (leaf ranges
    // echo themselves — the peer will pull them).
    wire::SyncDescendMsg offer;
    offer.capsule = msg->capsule;
    offer.kind = wire::SyncDescendMsg::kOffer;
    offer.tip_seqno = cs->state().tip_seqno();
    for (const auto& req : msg->nodes) {
      if (!capsule::HashTree::is_aligned(req.first, req.last)) continue;
      if (capsule::HashTree::is_leaf_range(req.first, req.last)) {
        const auto n = tree.node(req.first, req.last);
        offer.nodes.push_back(
            {n.first, n.last, crypto::digest_to_name(n.hash)});
        continue;
      }
      for (const auto& n : tree.children(req.first, req.last)) {
        offer.nodes.push_back(
            {n.first, n.last, crypto::digest_to_name(n.hash)});
      }
    }
    if (offer.nodes.empty()) return;
    Bytes payload = offer.serialize();
    sync_summary_bytes_.inc(payload.size());
    send_pdu(pdu.src, wire::MsgType::kSyncDescend, std::move(payload));
    return;
  }

  // Offer: compare the peer's subtree hashes against ours.  Equal ranges
  // are done; differing leaf (or locally-empty) ranges become pulls;
  // differing interior ranges descend another level.
  const std::uint64_t peer_tip = msg->tip_seqno;
  wire::SyncDescendMsg request;
  request.capsule = msg->capsule;
  request.kind = wire::SyncDescendMsg::kRequest;
  request.tip_seqno = cs->state().tip_seqno();
  std::vector<wire::SyncRangeMsg::Range> fetch;
  for (const auto& offered : msg->nodes) {
    if (!capsule::HashTree::is_aligned(offered.first, offered.last)) continue;
    if (offered.first > peer_tip) continue;  // nothing on the peer's side
    const auto mine = tree.node(offered.first, offered.last);
    if (crypto::digest_to_name(mine.hash) == offered.hash) continue;
    const std::uint64_t clamped_last = std::min(offered.last, peer_tip);
    if (request.tip_seqno > peer_tip &&
        tree.range_full(offered.first, clamped_last)) {
      // The peer is simply behind: its subtree hash differs only because
      // its tip is shorter, and we hold every seqno it covers.  Pulling
      // here would re-download records we already have; the peer's own
      // reverse probe heals its side.
      continue;
    }
    if (capsule::HashTree::is_leaf_range(offered.first, offered.last) ||
        tree.range_empty(offered.first, offered.last)) {
      // Leaf-level divergence, or a subtree we have nothing of: pull the
      // whole range instead of descending record by record.
      fetch.push_back({offered.first, clamped_last});
    } else {
      request.nodes.push_back({offered.first, offered.last, Name{}});
    }
  }
  if (!request.nodes.empty()) {
    // Bound the expansion fan-out per message; anything beyond heals on a
    // later probe.
    constexpr std::size_t kMaxExpand = 128;
    if (request.nodes.size() > kMaxExpand) request.nodes.resize(kMaxExpand);
    Bytes payload = request.serialize();
    sync_summary_bytes_.inc(payload.size());
    send_pdu(pdu.src, wire::MsgType::kSyncDescend, std::move(payload));
  }
  if (!fetch.empty()) {
    SyncSession& s = sync_sessions_[msg->capsule];
    if (s.flow == 0) {
      s.peer = pdu.src;
      s.flow = next_sync_flow_++;
    }
    if (s.peer == pdu.src) {
      // Offers can repeat: while the first probe's offer is still in
      // flight, later anti-entropy rounds re-probe, and each answer names
      // the same divergent ranges.  Queueing them again would re-pull
      // every record after the first pass drains, so anything already
      // in flight or queued is dropped here.
      auto covered = [&s](const wire::SyncRangeMsg::Range& r) {
        for (const auto& have : s.requested) {
          if (r.first >= have.first && r.last <= have.last) return true;
        }
        for (const auto& have : s.queued) {
          if (r.first >= have.first && r.last <= have.last) return true;
        }
        return false;
      };
      for (const auto& r : fetch) {
        if (!covered(r)) s.queued.push_back(r);
      }
      if (!s.in_flight && !s.queued.empty()) flush_session(msg->capsule, s);
    }
  }
}

void CapsuleServer::flush_session(const Name& capsule, SyncSession& session) {
  std::sort(session.queued.begin(), session.queued.end(),
            [](const wire::SyncRangeMsg::Range& a,
               const wire::SyncRangeMsg::Range& b) { return a.first < b.first; });
  // Coalesce overlaps so the serving side never walks a seqno twice.
  session.requested.clear();
  for (const auto& r : session.queued) {
    if (!session.requested.empty() && r.first <= session.requested.back().last) {
      session.requested.back().last =
          std::max(session.requested.back().last, r.last);
    } else {
      session.requested.push_back(r);
    }
  }
  session.queued.clear();
  session.cursor = 0;
  session.in_flight = true;
  const store::CapsuleStore* cs = store_.find(capsule);
  wire::SyncRangeMsg pull;
  pull.capsule = capsule;
  pull.ranges = session.requested;
  if (cs != nullptr) pull.holes = cs->state().holes();
  pull.cursor = 0;
  sync_ranges_pulled_.inc(pull.ranges.size());
  Bytes payload = pull.serialize();
  sync_summary_bytes_.inc(payload.size());
  send_pdu(session.peer, wire::MsgType::kSyncRange, std::move(payload),
           session.flow);
}

void CapsuleServer::handle_sync_range(const wire::Pdu& pdu) {
  auto msg = wire::SyncRangeMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_sync");
    return;
  }
  const store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    drop_not_hosted_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "not_hosted");
    return;
  }
  const auto& state = cs->state();
  constexpr std::size_t kMaxBatch = 256;
  wire::SyncPushMsg push;
  push.capsule = msg->capsule;
  std::unordered_set<Name> included;
  // Serve the requested canonical ranges in order, resuming at the
  // cursor; when the batch cap trips, tell the puller where to resume.
  for (const auto& range : msg->ranges) {
    if (push.resume_cursor != 0) break;
    if (range.last < msg->cursor) continue;  // fully served earlier
    const std::uint64_t start = std::max(range.first, msg->cursor);
    for (std::uint64_t s = start; s <= range.last; ++s) {
      if (push.records.size() >= kMaxBatch) {
        push.resume_cursor = s;
        break;
      }
      auto rec = state.get_by_seqno(s);
      if (rec) {
        included.insert(rec->hash());
        push.records.push_back(rec->serialize());
      }
    }
  }
  // Hole fills ride along only once the ranges are fully served, deduped
  // against records the range scan already covered.
  if (push.resume_cursor == 0) {
    for (const Name& hole : msg->holes) {
      if (push.records.size() >= kMaxBatch) break;
      if (!included.insert(hole).second) continue;
      auto rec = state.get_by_hash(hole);
      if (rec) push.records.push_back(rec->serialize());
    }
  }
  if (push.records.empty() && push.resume_cursor == 0) return;
  sync_records_sent_.inc(push.records.size());
  send_pdu(pdu.src, wire::MsgType::kSyncPush, push.serialize(), pdu.flow_id);
}

void CapsuleServer::handle_read(const wire::Pdu& pdu) {
  auto msg = wire::ReadMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_read");
    return;
  }

  wire::ReadResponseMsg resp;
  resp.capsule = msg->capsule;
  resp.nonce = msg->nonce;

  auto fail = [&](Errc code, std::string why) {
    resp.ok = false;
    resp.code = static_cast<std::uint16_t>(code);
    resp.error = std::string(errc_name(code)) + ": " + std::move(why);
    authenticate_response(msg->capsule, pdu.src, msg->session_pubkey,
                          resp.signed_body(), resp.auth, resp.server_principal,
                          resp.delegation);
    send_pdu(pdu.src, wire::MsgType::kReadResponse, resp.serialize(), pdu.flow_id);
  };

  const store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    fail(Errc::kNotFound, "capsule not hosted here");
    return;
  }
  const auto& state = cs->state();
  const std::uint64_t tip = state.tip_seqno();
  if (tip == 0) {
    fail(Errc::kOutOfRange, "capsule is empty");
    return;
  }
  std::uint64_t first = msg->first_seqno;
  std::uint64_t last = msg->last_seqno;
  if (first == 0 && last == 0) first = last = tip;  // "latest"
  if (last == 0 || last > tip) last = tip;
  if (first == 0) first = 1;
  if (first > last) {
    fail(Errc::kOutOfRange, "range beyond tip");
    return;
  }
  auto tip_record = state.get_by_seqno(tip);
  if (!tip_record) {
    fail(Errc::kInternal, "tip record unavailable");
    return;
  }
  Heartbeat hb = Heartbeat::from_record(*tip_record);
  auto proof = capsule::build_range_proof(state, hb, first, last);
  if (!proof.ok()) {
    fail(proof.error().code, proof.error().message);
    return;
  }
  resp.ok = true;
  resp.proof = proof->serialize();
  resp.heartbeat = hb.serialize();
  if (cs->metadata().mode() == capsule::WriterMode::kMultiWriter) {
    // Off-canonical records (the losing sides of CAS races that still
    // landed here or on a peer) ride along so a reader's deterministic
    // merge sees every writer's data; each is client-verified standalone
    // through its own credential envelope.
    for (const Record& br : state.branch_records()) {
      resp.branch_records.push_back(br.serialize());
    }
  }
  authenticate_response(msg->capsule, pdu.src, msg->session_pubkey,
                        resp.signed_body(), resp.auth, resp.server_principal,
                        resp.delegation);
  reads_served_.inc();
  net_.metrics()
      .histogram("store." + msg->capsule.short_hex() + ".read.bytes")
      .record(resp.proof.size());
  send_pdu(pdu.src, wire::MsgType::kReadResponse, resp.serialize(), pdu.flow_id);
}

void CapsuleServer::handle_subscribe(const wire::Pdu& pdu) {
  auto msg = wire::SubscribeMsg::deserialize(pdu.payload);
  if (!msg.ok()) {
    drop_malformed_.inc();
    net_.trace().record(pdu.trace_id, self_.name(), "drop", "malformed_subscribe");
    return;
  }
  const store::CapsuleStore* cs = store_.find(msg->capsule);
  if (cs == nullptr) {
    send_status(pdu.src, false, Errc::kNotFound, "capsule not hosted here",
                msg->nonce);
    return;
  }
  auto cert = trust::Cert::deserialize(msg->sub_cert);
  if (!cert.ok()) {
    send_status(pdu.src, false, Errc::kInvalidArgument, "malformed SubCert",
                msg->nonce);
    return;
  }
  Status allowed = trust::verify_subscription(cs->metadata(), *cert,
                                              msg->subscriber, net_.sim().now());
  if (!allowed.ok()) {
    send_status(pdu.src, false, allowed.error().code, allowed.error().message,
                msg->nonce);
    return;
  }
  auto& subs = subscribers_[msg->capsule];
  if (std::find(subs.begin(), subs.end(), msg->subscriber) == subs.end()) {
    subs.push_back(msg->subscriber);
  }
  send_status(pdu.src, true, Errc::kOk, "", msg->nonce);
}

void CapsuleServer::publish_new_canonical(const Name& capsule,
                                          std::uint64_t from_seqno_excl) {
  auto subs_it = subscribers_.find(capsule);
  if (subs_it == subscribers_.end() || subs_it->second.empty()) return;
  const store::CapsuleStore* cs = store_.find(capsule);
  const auto& state = cs->state();
  const std::uint64_t tip = state.tip_seqno();
  if (tip <= from_seqno_excl) return;
  auto tip_record = state.get_by_seqno(tip);
  if (!tip_record) return;
  const Bytes hb = Heartbeat::from_record(*tip_record).serialize();
  for (std::uint64_t s = from_seqno_excl + 1; s <= tip; ++s) {
    auto rec = state.get_by_seqno(s);
    if (!rec) continue;
    wire::PublishMsg msg;
    msg.capsule = capsule;
    msg.record = *rec;
    msg.heartbeat = hb;
    for (const Name& sub : subs_it->second) {
      send_pdu(sub, wire::MsgType::kPublish, msg.serialize());
    }
  }
}

std::optional<crypto::SymmetricKey> CapsuleServer::session_key_for(
    const Name& client, BytesView session_pubkey) {
  if (!session_pubkey.empty()) {
    auto client_eph = crypto::PublicKey::decode(session_pubkey);
    if (!client_eph) return std::nullopt;
    crypto::SymmetricKey key = crypto::ecdh_shared_key(key_, *client_eph);
    sessions_[client] = key;
    return key;
  }
  auto it = sessions_.find(client);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

void CapsuleServer::authenticate_response(const Name& capsule, const Name& client,
                                          BytesView session_pubkey, BytesView body,
                                          wire::ResponseAuth& auth,
                                          Bytes& principal_out,
                                          Bytes& delegation_out) {
  auto attach_evidence = [&] {
    principal_out = self_.serialize();
    const store::CapsuleStore* cs = store_.find(capsule);
    if (cs != nullptr) delegation_out = cs->delegation().serialize();
  };
  auto session = session_key_for(client, session_pubkey);
  if (session.has_value()) {
    // Steady state: HMAC, "byte overhead roughly similar to TLS".  On the
    // very first contact the evidence chain still rides along once so the
    // client can anchor the session key in the capsule's delegations.
    auto tag = crypto::hmac_sha256(
        BytesView(session->data(), session->size()), body);
    auth.kind = wire::ResponseAuth::Kind::kHmac;
    auth.bytes.assign(tag.begin(), tag.end());
    if (introduced_.insert(client).second) attach_evidence();
    return;
  }
  // Sessionless mode: full signature + evidence chain on every response,
  // letting the client verify that a *designated* server responded (§V).
  auth.kind = wire::ResponseAuth::Kind::kSignature;
  auth.bytes = key_.sign(body).encode();
  attach_evidence();
}

void CapsuleServer::send_append_ack(const PendingDurability& pending, bool ok,
                                    std::string error) {
  wire::AppendAckMsg ack;
  ack.capsule = pending.capsule;
  ack.record_hash = pending.record_hash;
  ack.seqno = pending.seqno;
  ack.acks = pending.acks;
  ack.ok = ok;
  ack.error = std::move(error);
  ack.nonce = pending.client_nonce;
  authenticate_response(pending.capsule, pending.writer, pending.session_pubkey,
                        ack.signed_body(), ack.auth, ack.server_principal,
                        ack.delegation);
  send_pdu(pending.writer, wire::MsgType::kAppendAck, ack.serialize());
}

void CapsuleServer::send_status(const Name& to, bool ok, Errc code,
                                std::string message, std::uint64_t nonce) {
  wire::StatusMsg msg;
  msg.ok = ok;
  msg.code = static_cast<std::uint16_t>(code);
  msg.message = std::move(message);
  msg.nonce = nonce;
  send_pdu(to, wire::MsgType::kStatus, msg.serialize());
}

std::vector<Name> CapsuleServer::equivocating_capsules() const {
  std::vector<Name> out;
  for (const Name& name : store_.hosted()) {
    const store::CapsuleStore* cs = store_.find(name);
    if (cs->metadata().mode() == capsule::WriterMode::kStrictSingleWriter &&
        cs->state().has_branch()) {
      // Both branch records carry valid writer signatures over conflicting
      // histories — cryptographic, third-party-verifiable evidence.
      out.push_back(name);
    }
  }
  return out;
}

std::size_t CapsuleServer::subscriber_count(const Name& capsule) const {
  auto it = subscribers_.find(capsule);
  return it == subscribers_.end() ? 0 : it->second.size();
}

}  // namespace gdp::server
