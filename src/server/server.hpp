// DataCapsule-server (§IV-B, §V, §VI).
//
// The server's task "is to make information durable and available to the
// appropriate readers while maintaining the integrity of data":
//   * hosts capsules it holds AdCerts for, persisting them in ServerStore;
//   * validates every append against the writer key (write access control
//     "can be verified by DataCapsule-servers or anyone else");
//   * serves reads as self-verifying range proofs anchored at the tip
//     heartbeat, authenticated by signature + delegation evidence or by a
//     per-client HMAC session (§V "Secure Responses");
//   * implements both durability modes of §VI-B — ack-after-local-persist
//     with background propagation, or block until k replicas ack;
//   * runs leaderless anti-entropy with replica peers, repairing holes in
//     the background (§VI-A);
//   * pushes new canonical records to subscribers whose SubCerts verify
//     (the publish-subscribe native mode of access).
#pragma once

#include <deque>
#include <filesystem>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "loadmgmt/overload.hpp"
#include "router/endpoint.hpp"
#include "store/capsule_store.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::server {

class CapsuleServer : public router::Endpoint {
 public:
  /// Anti-entropy strategy.  kSummary (default) probes peers with the
  /// capsule's Merkle root and walks only divergent subtrees, pulling
  /// exact seqno ranges with cursor continuation; kFlood is the legacy
  /// tip-scan + hole-list record flood, kept as the measurable baseline.
  enum class SyncMode : std::uint8_t { kSummary = 0, kFlood = 1 };

  struct Options {
    std::filesystem::path storage_root;
    Duration anti_entropy_interval = from_millis(500);
    Duration durability_timeout = from_millis(2000);
    Duration advertisement_lifetime = from_seconds(24 * 3600);
    SyncMode sync_mode = SyncMode::kSummary;
    /// Ingest service model: when > 0, each data-plane op (append, read,
    /// bench sink, durability sync-push) occupies the server for this
    /// long and ops drain through a FIFO — the queue is where overload
    /// becomes visible.  Zero keeps the legacy instantaneous processing.
    Duration ingest_service_time = Duration::zero();
    /// Watermarks for overload shedding (active only with the service
    /// model on).
    loadmgmt::OverloadConfig overload;
    /// Master switch for shedding.  Off = the ingest queue grows without
    /// bound and every admitted op eventually runs — the unmanaged
    /// baseline arm of the loadmgmt ablation.
    bool shed_enabled = true;
    /// Cadence of kLoadReport pressure reports to the attachment router
    /// (start_load_reports()); shed-level changes also report eagerly.
    Duration load_report_interval = from_millis(100);
  };

  CapsuleServer(net::Network& net, const crypto::PrivateKey& key,
                std::string label, Options options);

  /// Accepts responsibility for a capsule (out-of-band placement by the
  /// owner) and re-advertises so the name becomes routable.
  Status host_capsule(const capsule::Metadata& metadata,
                      const trust::ServingDelegation& delegation,
                      std::vector<Name> replica_peers);

  /// (Re)advertises this server plus all hosted capsules to `router`.
  void advertise_to(const Name& router);

  /// Starts the periodic anti-entropy loop.
  void start_anti_entropy();
  /// Stops rescheduling the loop (the in-flight tick still fires once).
  void stop_anti_entropy() { anti_entropy_running_ = false; }
  /// One immediate anti-entropy round (tests drive this directly).
  void anti_entropy_round();

  SyncMode sync_mode() const { return options_.sync_mode; }
  /// Benches flip a server between summary and flood sync between arms.
  void set_sync_mode(SyncMode mode) { options_.sync_mode = mode; }

  /// Starts the periodic load-report loop toward the attachment router
  /// (no-op while the ingest service model is off).
  void start_load_reports();
  void stop_load_reports() { load_reports_running_ = false; }
  /// Chaos hook: changes the per-op service time mid-run (a replica
  /// degrading under the fabric's feet).
  void set_ingest_service_time(Duration d) {
    options_.ingest_service_time = d;
  }
  const loadmgmt::OverloadManager& overload() const { return overload_; }
  std::size_t ingest_depth() const { return ingest_queue_.size(); }

  const store::ServerStore& storage() const { return store_; }
  /// Bench/test hook: persists `record` directly into the local replica —
  /// no client traffic, no propagation, no signature re-check (the caller
  /// vouches).  Benches use this to fabricate a large replication gap
  /// without paying one client round-trip per record.
  Status ingest_local(const Name& capsule, const capsule::Record& record);
  bool hosts(const Name& capsule) const { return store_.hosts(capsule); }
  std::uint64_t appends_accepted() const { return appends_accepted_.value(); }
  std::uint64_t appends_rejected() const { return appends_rejected_.value(); }
  /// Capsules in Strict-Single-Writer mode where the server holds signed
  /// evidence of a fork — the writer (or its stolen key) equivocated.
  std::vector<Name> equivocating_capsules() const;
  std::uint64_t reads_served() const { return reads_served_.value(); }
  std::uint64_t sync_records_sent() const { return sync_records_sent_.value(); }
  std::size_t subscriber_count(const Name& capsule) const;

  /// Publishes per-capsule storage gauges (records, payload bytes, flush
  /// count) into the registry; called by stats dumpers before serializing.
  void publish_metrics();

 protected:
  void handle_pdu(const Name& from, const wire::Pdu& pdu) override;
  /// Link recovery re-presents the full hosted-capsule catalog, not just
  /// the bare principal.
  void reattach() override;

 private:
  struct PendingDurability {
    Name writer;
    Name capsule;
    Name record_hash;
    std::uint64_t seqno = 0;
    std::uint32_t required = 1;
    std::uint32_t acks = 1;  // local persistence counts
    std::uint32_t nacks = 0;
    std::uint32_t peer_count = 0;
    /// Peers whose first response (ack or nack) has been counted — a
    /// retried or re-delivered ack from the same replica must not inflate
    /// the quorum.
    std::set<Name> responded;
    std::uint64_t client_nonce = 0;
    Bytes session_pubkey;
    bool done = false;
  };

  /// Puller-side state of one summary-sync conversation: the ranges the
  /// Merkle walk proved missing, the in-flight pull and its cursor, and
  /// progress bookkeeping so stalled sessions (lost PDUs) are dropped and
  /// re-probed instead of blocking the capsule forever.
  struct SyncSession {
    Name peer;
    std::uint64_t flow = 0;  ///< tags pull-reply pushes from this peer
    std::vector<wire::SyncRangeMsg::Range> requested;  ///< in-flight pull
    std::vector<wire::SyncRangeMsg::Range> queued;  ///< found, not yet pulled
    std::uint64_t cursor = 0;
    bool in_flight = false;
    std::uint64_t received = 0;       ///< records delivered via this session
    std::uint64_t last_progress = 0;  ///< `received` at the last round check
    int idle_rounds = 0;
    int retries = 0;  ///< stall retries since the last delivered record
  };

  /// Rounds without a delivered record before a session retries its pull.
  /// Must exceed one batch's transfer time on a slow link (in rounds) so
  /// healthy-but-slow pulls are not re-requested, which would duplicate
  /// traffic exactly like the flood baseline.
  static constexpr int kStallRounds = 8;
  /// Stall retries before the conversation is abandoned and re-probed.
  static constexpr int kMaxRetries = 16;

  /// One queued unit of serviced ingest work.
  struct QueuedOp {
    Name from;
    wire::Pdu pdu;
  };

  /// Advisory capsule-tip lease (SCL).  Per-replica, lazily expired; a
  /// stale or split-brain lease can cost CAS retries but never
  /// correctness — the tip check remains the safety mechanism.
  struct Lease {
    Name holder;
    std::uint64_t id = 0;
    std::int64_t expires_ns = 0;
  };

  /// The pre-PR-9 dispatch switch: runs one op to completion, now.
  void dispatch_op(const Name& from, const wire::Pdu& pdu);
  /// Admission control for the serviced ingest path: classify, shed or
  /// enqueue, kick the drain timer.
  void enqueue_ingest(const Name& from, const wire::Pdu& pdu);
  void drain_ingest();
  /// Sheds one op at admission: named drop-reason counter + trace span,
  /// and a fail-fast response for reads/appends so the client does not
  /// burn its full timeout discovering the overload.
  void shed_op(const wire::Pdu& pdu, loadmgmt::DropPriority priority);
  void send_load_report();
  /// Reports eagerly when the shed level moves (edge-triggered).
  void maybe_report_shed_edge();

  void handle_create(const Name& from, const wire::Pdu& pdu);
  void handle_append(const wire::Pdu& pdu);
  void handle_cond_append(const wire::Pdu& pdu);
  void handle_lease_request(const wire::Pdu& pdu);
  void handle_read(const wire::Pdu& pdu);
  void handle_subscribe(const wire::Pdu& pdu);
  void handle_sync_pull(const wire::Pdu& pdu);
  void handle_sync_push(const wire::Pdu& pdu);
  void handle_sync_summary(const wire::Pdu& pdu);
  void handle_sync_descend(const wire::Pdu& pdu);
  void handle_sync_range(const wire::Pdu& pdu);
  void handle_peer_ack(const wire::Pdu& pdu);

  /// Sends a Merkle-root probe for `capsule` to `peer`.
  void send_summary_probe(const Name& capsule, const Name& peer);
  /// Moves queued ranges into an in-flight SyncRangeMsg pull.
  void flush_session(const Name& capsule, SyncSession& session);

  /// Fills auth (+ principal/delegation evidence when signing) on a
  /// response body destined for `client`.
  void authenticate_response(const Name& capsule, const Name& client,
                             BytesView session_pubkey, BytesView body,
                             wire::ResponseAuth& auth, Bytes& principal_out,
                             Bytes& delegation_out);
  std::optional<crypto::SymmetricKey> session_key_for(const Name& client,
                                                      BytesView session_pubkey);

  /// Shared append tail: ingest + flush + publish + quorum handling.
  /// Both the plain and the conditional append path end here.
  void run_append(store::CapsuleStore& cs, PendingDurability pending,
                  const capsule::Record& record, const wire::Pdu& pdu);
  /// The capsule's lease if one is active now; expired entries are reaped.
  Lease* active_lease(const Name& capsule);
  void send_cas_nack(const store::CapsuleStore& cs, const wire::Pdu& pdu,
                     std::uint64_t nonce, BytesView session_pubkey, Errc code,
                     std::string why, const Lease* lease);

  void send_append_ack(const PendingDurability& pending, bool ok, std::string error);
  void send_status(const Name& to, bool ok, Errc code, std::string message,
                   std::uint64_t nonce);
  void propagate_record(const Name& capsule, const capsule::Record& record,
                        std::uint64_t flow_id);
  void publish_new_canonical(const Name& capsule, std::uint64_t from_seqno_excl);
  std::vector<Bytes> build_catalog_records() const;

  Options options_;
  store::ServerStore store_;
  std::unordered_map<Name, std::vector<Name>> peers_;        ///< per capsule
  std::unordered_map<Name, std::vector<Name>> subscribers_;  ///< per capsule
  std::unordered_map<std::uint64_t, PendingDurability> pending_;  ///< by flow id
  std::unordered_map<Name, SyncSession> sync_sessions_;  ///< by capsule
  std::unordered_map<Name, Lease> leases_;  ///< advisory tip leases, by capsule
  std::uint64_t next_lease_id_ = 1;
  /// Memoizes multi-writer credential verdicts: hundreds of records per
  /// writer share one credential, so each costs one ECDSA verify total.
  trust::VerifyCache credential_cache_;
  std::unordered_map<Name, crypto::SymmetricKey> sessions_;  ///< by client
  std::unordered_set<Name> introduced_;  ///< clients that hold our evidence
  std::uint64_t next_pending_id_ = 1;
  /// Sync-pull flows live far above durability ids so a pull-reply push is
  /// never mistaken for a replica's durability propagation (and vice versa).
  std::uint64_t next_sync_flow_ = (std::uint64_t{1} << 48) + 1;
  bool anti_entropy_running_ = false;
  std::deque<QueuedOp> ingest_queue_;
  bool ingest_draining_ = false;
  loadmgmt::OverloadManager overload_;
  bool load_reports_running_ = false;
  int reported_shed_level_ = 0;
  /// Seeds the batch-verification coefficient stream; drawn from the
  /// simulation RNG so identical runs replay identical coefficients.
  std::uint64_t batch_seed_ = 0;

  // Telemetry handles (`server.<label>.*`), resolved at construction.
  std::string metric_prefix_;
  telemetry::Counter& appends_accepted_;
  telemetry::Counter& appends_rejected_;
  telemetry::Counter& reads_served_;
  telemetry::Counter& sync_records_sent_;
  telemetry::Counter& sync_summary_bytes_;
  telemetry::Counter& sync_ranges_pulled_;
  telemetry::Counter& sync_rounds_;
  telemetry::Counter& sync_probes_;
  telemetry::Counter& drop_malformed_;
  telemetry::Counter& drop_not_hosted_;
  telemetry::Counter& drop_stale_ack_;
  telemetry::Counter& drop_duplicate_ack_;
  telemetry::Counter& drop_foreign_ack_;
  telemetry::Counter& recv_pdus_;
  telemetry::Counter& batch_accepted_;
  telemetry::Counter& batch_rejected_;
  telemetry::Counter& batch_bisections_;
  telemetry::Counter& shed_bench_;
  telemetry::Counter& shed_reads_;
  telemetry::Counter& shed_appends_;
  telemetry::Counter& ingest_enqueued_;
  telemetry::Counter& ingest_processed_;
  telemetry::Counter& ingest_high_water_;
  telemetry::Counter& load_reports_sent_;
  telemetry::Counter& cas_win_;
  telemetry::Counter& cas_conflict_;
  telemetry::Counter& cas_lease_rejected_;
  telemetry::Counter& lease_granted_;
  telemetry::Counter& lease_denied_;
  telemetry::Histogram& batch_size_;
  telemetry::Histogram& ingest_depth_;
};

}  // namespace gdp::server
