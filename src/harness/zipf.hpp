// Seeded Zipf(s) rank sampler for load scenarios.
//
// Edge workloads are heavy-tailed: a few hot capsules absorb most of the
// traffic while a long tail stays nearly idle.  The load-management
// benchmarks model "100k clients" as zipf-distributed draws over a small
// replica set, so the hot ranks concentrate pressure exactly where
// overload control has to act.  Sampling is a CDF binary search over the
// shared simulation Rng — identical seeds give byte-identical draw
// sequences, which the stress tests assert directly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gdp::harness {

class ZipfGenerator {
 public:
  /// Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.  s = 0 is the
  /// uniform distribution; s ~ 1 is the classic web-workload shape.
  ZipfGenerator(std::size_t n, double s);

  /// Draws one rank in [0, n).
  std::size_t next(Rng& rng) const;

  /// Exact probability of `rank` (chi-squared tests compare against it).
  double probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace gdp::harness
