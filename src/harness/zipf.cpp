#include "harness/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gdp::harness {

ZipfGenerator::ZipfGenerator(std::size_t n, double s) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // no draw can fall past the last rank
}

std::size_t ZipfGenerator::next(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;  // u == 1.0 edge
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfGenerator::probability(std::size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace gdp::harness
