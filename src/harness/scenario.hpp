// Scenario harness: assembles complete GDP deployments.
//
// Tests, examples and benchmarks all need the same boilerplate — a
// simulator, a network, routing domains with GLookupServices, routers,
// DataCapsule-servers with storage directories, clients, and capsules
// placed under delegations.  Scenario owns all of it and keeps the
// topology database consistent with the simulated links.
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "net/network.hpp"
#include "router/glookup.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "telemetry/timeline.hpp"

namespace gdp::harness {

/// Self-deleting scratch directory for server storage.
class TempDir {
 public:
  explicit TempDir(const std::string& tag);
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

class Scenario {
 public:
  explicit Scenario(std::uint64_t seed = 42, const std::string& tag = "scenario");
  /// Honors GDP_STATS_JSON / GDP_TRACE_JSON / GDP_TIMELINE_JSON /
  /// GDP_PERFETTO_JSON (writes the dumps there) and unregisters the log
  /// clock.
  ~Scenario();

  net::Simulator& sim() { return sim_; }
  net::Network& net() { return net_; }
  Rng& key_rng() { return key_rng_; }
  const std::shared_ptr<router::Topology>& topology() { return topology_; }

  /// Creates a routing domain: its GLookupService, linked (and parented)
  /// under `parent` (nullptr = the global root service).
  router::GLookupService* add_domain(const std::string& label,
                                     router::GLookupService* parent,
                                     net::LinkParams parent_link = net::LinkParams::wan(20));

  /// Creates a router inside `domain` (control link to the GLookupService).
  router::Router* add_router(const std::string& label, router::GLookupService* domain,
                             net::LinkParams control_link = net::LinkParams::lan());

  /// Links two routers (data plane + topology database).
  void link_routers(router::Router* a, router::Router* b, net::LinkParams params);

  /// Creates a DataCapsule-server attached to `router` (link + secure
  /// advertisement happen in attach()).
  server::CapsuleServer* add_server(const std::string& label, router::Router* attach,
                                    net::LinkParams access = net::LinkParams::lan());
  /// Same, with explicit server options (load-management scenarios set the
  /// ingest service model / overload watermarks here).  `storage_root` is
  /// overwritten to the scenario scratch directory.
  server::CapsuleServer* add_server(const std::string& label, router::Router* attach,
                                    net::LinkParams access,
                                    server::CapsuleServer::Options opts);

  client::GdpClient* add_client(const std::string& label, router::Router* attach,
                                net::LinkParams access = net::LinkParams::lan());
  client::GdpClient* add_client(const std::string& label, router::Router* attach,
                                net::LinkParams access, client::GdpClient::Options opts);

  /// Runs the secure-advertisement handshakes for every endpoint that has
  /// not attached yet, then drains the simulator.
  void attach_all();

  /// Crashes an endpoint: detaches it from the network AND delivers the
  /// link-down notification to its router, which withdraws routes and
  /// lookup registrations so anycast fails over.
  void crash(const router::Endpoint& endpoint);

  // Chaos scripting: link failure/recovery injection (the node itself
  // stays up, unlike crash()).  Down links drop PDUs with a named reason
  // and fire Router::neighbor_down / Endpoint reattachment on recovery.
  void set_link_down(const Name& a, const Name& b) { net_.set_link_down(a, b); }
  void set_link_up(const Name& a, const Name& b) { net_.set_link_up(a, b); }
  /// Schedules a flap: a<->b goes down `after` from now, recovers
  /// `down_for` later.
  void flap_link(const Name& a, const Name& b, Duration after, Duration down_for) {
    net_.schedule_flap(a, b, after, down_for);
  }

  /// Drains all scheduled events.
  void settle() { sim_.run(); }
  /// Runs `d` of simulated time.
  void settle_for(Duration d) { sim_.run_for(d); }

  /// Unified stats dump: samples every component's gauges (router FIB +
  /// verify-cache, glookup entries, per-capsule storage) into the metrics
  /// registry and serializes the whole registry as JSON.  Contains only
  /// simulated-time / count / size values, so two identical runs produce
  /// byte-identical output.
  std::string stats_json();
  void write_stats_json(const std::filesystem::path& path);
  /// Hop-by-hop PDU trace dump (same determinism guarantee).
  std::string trace_json() { return net_.trace().to_json(); }
  void write_trace_json(const std::filesystem::path& path);

  /// The scenario's live time-series (simulated time — deterministic).
  telemetry::StatsTimeline& timeline() { return timeline_; }
  /// Appends one sample of every component's headline gauges to the
  /// timeline at the current simulated time: per-router FIB size and
  /// pending work, glookup registrations, trace-sink volume.  Call
  /// between settle() steps to chart how a scenario evolves.
  void sample_timeline();
  /// Perfetto / chrome://tracing JSON of the hop-by-hop PDU trace, one
  /// track per node (simulated time — deterministic).
  std::string perfetto_json();

 private:
  struct EndpointInfo {
    router::Endpoint* endpoint;
    Name router;
  };

  net::Simulator sim_;
  net::Network net_;
  Rng key_rng_;
  TempDir storage_;
  std::shared_ptr<router::Topology> topology_;
  std::vector<std::unique_ptr<router::GLookupService>> glookups_;
  std::vector<std::unique_ptr<router::Router>> routers_;
  std::vector<std::unique_ptr<server::CapsuleServer>> servers_;
  std::vector<std::unique_ptr<client::GdpClient>> clients_;
  std::vector<std::unique_ptr<crypto::PrivateKey>> keys_;
  std::vector<EndpointInfo> to_attach_;
  telemetry::StatsTimeline timeline_;
  int server_count_ = 0;
};

/// A capsule plus the keys that control it — everything an owner holds.
struct CapsuleSetup {
  std::unique_ptr<crypto::PrivateKey> owner_key;
  std::unique_ptr<crypto::PrivateKey> writer_key;
  capsule::Metadata metadata;
  std::string strategy_id;

  /// Fresh writer starting at seqno 1 (restore from saved state for QSW).
  capsule::Writer make_writer() const;

  /// Owner-signed serving delegation for `server`.
  trust::ServingDelegation delegation_for(const trust::Principal& server,
                                          TimePoint not_before, TimePoint not_after,
                                          std::vector<Name> allowed_domains = {}) const;

  /// Owner-signed subscription grant for `client`.
  trust::Cert sub_cert_for(const Name& client, TimePoint not_before,
                           TimePoint not_after) const;
};

CapsuleSetup make_capsule(Rng& rng, const std::string& label,
                          capsule::WriterMode mode = capsule::WriterMode::kStrictSingleWriter,
                          const std::string& strategy_id = "chain");

/// Places `setup`'s capsule on every server (full replica mesh as peers)
/// via owner-side create_capsule calls from `placer`; drains the sim.
Status place_capsule(Scenario& scenario, const CapsuleSetup& setup,
                     client::GdpClient& placer,
                     const std::vector<server::CapsuleServer*>& servers,
                     std::vector<Name> allowed_domains = {});

}  // namespace gdp::harness
