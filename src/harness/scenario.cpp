#include "harness/scenario.hpp"

#include <unistd.h>

#include <cstdlib>
#include <fstream>

#include "capsule/strategy.hpp"
#include "common/log.hpp"
#include "telemetry/perfetto.hpp"

namespace gdp::harness {

TempDir::TempDir(const std::string& tag) {
  static int counter = 0;
  path_ = std::filesystem::temp_directory_path() /
          ("gdp-" + tag + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(counter++));
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

Scenario::Scenario(std::uint64_t seed, const std::string& tag)
    : sim_(seed),
      net_(sim_),
      key_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      storage_(tag),
      topology_(std::make_shared<router::Topology>()) {
  // Enabled log lines carry simulated-time stamps; silent when logging is
  // off (the default), so tests and benchmarks stay quiet.
  set_log_clock(&sim_.clock());
}

Scenario::~Scenario() {
  if (const char* path = std::getenv("GDP_STATS_JSON")) {
    write_stats_json(path);
  }
  if (const char* path = std::getenv("GDP_TRACE_JSON")) {
    write_trace_json(path);
  }
  if (const char* path = std::getenv("GDP_TIMELINE_JSON")) {
    // A scenario that never called sample_timeline() still dumps its
    // final state — one sample beats an empty artifact.
    if (timeline_.sample_count() == 0) sample_timeline();
    std::ofstream out(path, std::ios::trunc);
    out << timeline_.to_json() << '\n';
  }
  if (const char* path = std::getenv("GDP_PERFETTO_JSON")) {
    std::ofstream out(path, std::ios::trunc);
    out << perfetto_json();
  }
  if (log_clock() == &sim_.clock()) set_log_clock(nullptr);
}

std::string Scenario::stats_json() {
  for (auto& r : routers_) r->publish_metrics();
  for (auto& g : glookups_) g->publish_metrics();
  for (auto& s : servers_) s->publish_metrics();
  return net_.metrics().to_json();
}

void Scenario::write_stats_json(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  out << stats_json() << '\n';
}

void Scenario::write_trace_json(const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::trunc);
  out << trace_json() << '\n';
}

void Scenario::sample_timeline() {
  const std::int64_t t = sim_.now().count();
  for (auto& r : routers_) {
    const std::string p = "router." + std::string(r->principal().label()) + ".";
    timeline_.append(p + "fib.size", t, r->fib().size());
    timeline_.append(p + "fib.publishes", t, r->fib().publish_count());
    timeline_.append(p + "awaiting_route.pdus", t, r->awaiting_route_count());
    timeline_.append(p + "lookups.pending", t, r->pending_lookup_count());
  }
  for (auto& g : glookups_) {
    timeline_.append(
        "glookup." + std::string(g->principal().label()) + ".entries", t,
        g->entry_count());
  }
  timeline_.append("trace.recorded", t, net_.trace().recorded());
}

std::string Scenario::perfetto_json() {
  return telemetry::PerfettoExporter::from_trace(net_.trace());
}

router::GLookupService* Scenario::add_domain(const std::string& label,
                                             router::GLookupService* parent,
                                             net::LinkParams parent_link) {
  keys_.push_back(
      std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(key_rng_)));
  auto principal = trust::Principal::create(*keys_.back(),
                                            trust::Role::kOrganization, label);
  // The domain's flat name is its GLookupService principal name.
  auto glookup = std::make_unique<router::GLookupService>(
      net_, principal, principal.name(), topology_);
  if (parent != nullptr) {
    glookup->set_parent(parent);
    net_.connect(glookup->name(), parent->name(), parent_link);
  }
  glookups_.push_back(std::move(glookup));
  return glookups_.back().get();
}

router::Router* Scenario::add_router(const std::string& label,
                                     router::GLookupService* domain,
                                     net::LinkParams control_link) {
  keys_.push_back(
      std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(key_rng_)));
  auto r = std::make_unique<router::Router>(net_, *keys_.back(), label,
                                            domain->domain(), topology_);
  r->set_glookup(domain);
  net_.connect(r->name(), domain->name(), control_link);
  topology_->add_router(r->name(), domain->domain());
  routers_.push_back(std::move(r));
  return routers_.back().get();
}

void Scenario::link_routers(router::Router* a, router::Router* b,
                            net::LinkParams params) {
  net_.connect(a->name(), b->name(), params);
  topology_->add_link(a->name(), b->name(),
                      static_cast<std::uint32_t>(params.latency.count() / 1000));
}

server::CapsuleServer* Scenario::add_server(const std::string& label,
                                            router::Router* attach,
                                            net::LinkParams access) {
  return add_server(label, attach, access, server::CapsuleServer::Options{});
}

server::CapsuleServer* Scenario::add_server(const std::string& label,
                                            router::Router* attach,
                                            net::LinkParams access,
                                            server::CapsuleServer::Options opts) {
  keys_.push_back(
      std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(key_rng_)));
  opts.storage_root = storage_.path() / (label + std::to_string(server_count_++));
  auto s = std::make_unique<server::CapsuleServer>(net_, *keys_.back(), label,
                                                   std::move(opts));
  net_.connect(s->name(), attach->name(), access);
  to_attach_.push_back({s.get(), attach->name()});
  servers_.push_back(std::move(s));
  return servers_.back().get();
}

client::GdpClient* Scenario::add_client(const std::string& label,
                                        router::Router* attach,
                                        net::LinkParams access) {
  return add_client(label, attach, access, client::GdpClient::Options{});
}

client::GdpClient* Scenario::add_client(const std::string& label,
                                        router::Router* attach,
                                        net::LinkParams access,
                                        client::GdpClient::Options opts) {
  keys_.push_back(
      std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(key_rng_)));
  auto c = std::make_unique<client::GdpClient>(net_, *keys_.back(), label, opts);
  net_.connect(c->name(), attach->name(), access);
  to_attach_.push_back({c.get(), attach->name()});
  clients_.push_back(std::move(c));
  return clients_.back().get();
}

void Scenario::attach_all() {
  for (EndpointInfo& info : to_attach_) {
    if (info.endpoint->attached()) continue;
    if (auto* server = dynamic_cast<server::CapsuleServer*>(info.endpoint)) {
      server->advertise_to(info.router);
    } else {
      info.endpoint->advertise(info.router, {});
    }
  }
  sim_.run();
}

void Scenario::crash(const router::Endpoint& endpoint) {
  net_.detach(endpoint.name());
  for (auto& r : routers_) {
    if (r->name() == endpoint.router()) {
      r->neighbor_down(endpoint.name());
      break;
    }
  }
}

capsule::Writer CapsuleSetup::make_writer() const {
  return capsule::Writer(metadata, *writer_key,
                         capsule::strategy_from_id(strategy_id));
}

trust::ServingDelegation CapsuleSetup::delegation_for(
    const trust::Principal& server, TimePoint not_before, TimePoint not_after,
    std::vector<Name> allowed_domains) const {
  trust::ServingDelegation d;
  d.ad_cert = trust::make_ad_cert(*owner_key, owner_key->public_key().fingerprint(),
                                  metadata.name(), server.name(), not_before,
                                  not_after, std::move(allowed_domains));
  return d;
}

trust::Cert CapsuleSetup::sub_cert_for(const Name& client, TimePoint not_before,
                                       TimePoint not_after) const {
  return trust::make_sub_cert(*owner_key, owner_key->public_key().fingerprint(),
                              metadata.name(), client, not_before, not_after);
}

CapsuleSetup make_capsule(Rng& rng, const std::string& label,
                          capsule::WriterMode mode, const std::string& strategy_id) {
  auto owner = std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(rng));
  auto writer = std::make_unique<crypto::PrivateKey>(crypto::PrivateKey::generate(rng));
  auto metadata = capsule::Metadata::create(
      *owner, writer->public_key(), mode, label, 0,
      {{"hash_strategy", strategy_id}});
  if (!metadata.ok()) std::abort();
  return CapsuleSetup{std::move(owner), std::move(writer),
                      std::move(metadata).value(), strategy_id};
}

Status place_capsule(Scenario& scenario, const CapsuleSetup& setup,
                     client::GdpClient& placer,
                     const std::vector<server::CapsuleServer*>& servers,
                     std::vector<Name> allowed_domains) {
  const TimePoint now = scenario.sim().now();
  const TimePoint expiry = now + from_seconds(30 * 24 * 3600);
  std::vector<Name> all_names;
  all_names.reserve(servers.size());
  for (auto* s : servers) all_names.push_back(s->name());

  std::vector<client::OpPtr<bool>> ops;
  for (auto* s : servers) {
    std::vector<Name> peers;
    for (const Name& n : all_names) {
      if (n != s->name()) peers.push_back(n);
    }
    ops.push_back(placer.create_capsule(
        s->name(), setup.metadata,
        setup.delegation_for(s->principal(), now, expiry, allowed_domains),
        std::move(peers)));
  }
  scenario.settle();
  for (auto& op : ops) {
    auto result = client::await(scenario.sim(), op);
    if (!result.ok()) return result.error();
  }
  return ok_status();
}

}  // namespace gdp::harness
