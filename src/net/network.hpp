// Simulated link layer for the GDP overlay.
//
// Nodes (routers, DataCapsule-servers, clients, GLookupServices) attach by
// flat name; point-to-point links carry serialized PDUs with latency,
// bandwidth serialization (FIFO per direction) and optional loss.  Links
// model the paper's deployment: overlay tunnels over existing IP networks
// (§VIII uses TCP to clients and UDP tunnels between routers).
//
// The threat model (§IV-C) is exercised through per-directed-link
// interceptors: an adversary function may drop, tamper with, delay,
// duplicate or misdeliver any PDU in flight.  Honest protocol code never
// sees the difference — it must *detect* the mischief end-to-end.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/sim.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "wire/pdu.hpp"
#include "wire/pdu_view.hpp"

namespace gdp::net {

struct LinkParams {
  Duration latency = from_micros(50);
  double bandwidth_bps = 1e9;  ///< bits per second
  double loss = 0.0;           ///< independent PDU loss probability

  static LinkParams lan() { return LinkParams{from_micros(50), 1e9, 0.0}; }
  static LinkParams wan(double rtt_ms) {
    return LinkParams{from_millis(static_cast<std::int64_t>(rtt_ms / 2)), 1e9, 0.0};
  }
  /// Asymmetric residential access links are modelled as two directed
  /// links; see Network::connect_asymmetric.
  static LinkParams residential_down() { return LinkParams{from_millis(10), 100e6, 0.0}; }
  static LinkParams residential_up() { return LinkParams{from_millis(10), 10e6, 0.0}; }
};

/// A node's receive entry point: PDU plus the neighbor it arrived from.
class PduHandler {
 public:
  virtual ~PduHandler() = default;
  virtual void on_pdu(const Name& from_neighbor, const wire::Pdu& pdu) = 0;
  /// Zero-copy receive entry point: the link layer delivers the parsed
  /// view over the refcounted wire segment.  The default materialises an
  /// owned Pdu for handlers that predate the view path; forwarding-hot
  /// handlers (routers) override this and never copy the payload.
  virtual void on_pdu_view(const Name& from_neighbor, wire::PduView view) {
    const wire::Pdu pdu = view.materialize();
    on_pdu(from_neighbor, pdu);
  }
  /// Link-layer failure/recovery notification: the link to `neighbor`
  /// transitioned (up=false: carrier lost, up=true: restored).  Routers
  /// withdraw routes on loss; endpoints re-advertise on recovery.
  virtual void on_link_state(const Name& neighbor, bool up) {
    (void)neighbor;
    (void)up;
  }
};

/// Adversary hook on a directed link: return the (possibly mutated) PDU to
/// deliver, or nullopt to drop it.  The hook may capture the Network to
/// schedule replays.
using Interceptor = std::function<std::optional<wire::Pdu>(const wire::Pdu&)>;

class Network {
 public:
  explicit Network(Simulator& sim);

  void attach(const Name& node, PduHandler* handler);
  void detach(const Name& node);  ///< crash: node stops receiving
  bool attached(const Name& node) const;

  /// Creates a bidirectional link with symmetric parameters.
  void connect(const Name& a, const Name& b, LinkParams params);
  /// Directed parameters (e.g. 100/10 Mbps residential access).
  void connect_asymmetric(const Name& a, const Name& b, LinkParams a_to_b,
                          LinkParams b_to_a);
  bool adjacent(const Name& a, const Name& b) const;
  std::vector<Name> neighbors(const Name& node) const;

  /// Transmits one PDU over the (existing) link from -> to.  Serialization
  /// delay = wire size / bandwidth; the link is FIFO per direction.  The
  /// PDU is serialized once into a pooled segment here — the origin copy —
  /// and travels the rest of the fabric by reference (send_view).
  void send(const Name& from, const Name& to, wire::Pdu pdu);

  /// Zero-copy transmit: forwards an already-framed PDU without
  /// reserializing.  The refcounted segment moves to the next hop as-is;
  /// only links with an interceptor installed materialise (the adversary
  /// API sees owned Pdus).
  void send_view(const Name& from, const Name& to, wire::PduView pdu);

  /// Installs/removes an adversary on the directed link from -> to.
  void set_interceptor(const Name& from, const Name& to, Interceptor fn);
  void clear_interceptor(const Name& from, const Name& to);

  // Failure injection ("optimized for transient failure", §VII).  A down
  // link drops every PDU (`net.drop.link_down`), stops counting as
  // adjacent, and both attached endpoints get on_link_state()
  // notifications — down synchronously (loss-of-carrier detection), up
  // likewise so recovery re-advertisement can start immediately.
  void set_link_down(const Name& a, const Name& b);
  void set_link_up(const Name& a, const Name& b);
  bool link_up(const Name& a, const Name& b) const;
  /// Schedules a flap: the a<->b link goes down `after` from now and
  /// recovers `down_for` later.  Chaos scenarios script partitions with it.
  void schedule_flap(const Name& a, const Name& b, Duration after,
                     Duration down_for);

  // Traffic accounting (live registry counters).
  std::uint64_t pdus_delivered() const { return pdus_delivered_.value(); }
  std::uint64_t pdus_dropped() const { return pdus_dropped_.value(); }
  std::uint64_t bytes_delivered() const { return bytes_delivered_.value(); }

  Simulator& sim() { return sim_; }

  /// Fabric-wide telemetry: every component attached to this network
  /// resolves its counters/histograms here and records trace spans into
  /// the shared sink (stamped with the simulator clock).
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  telemetry::TraceSink& trace() { return trace_; }
  const telemetry::TraceSink& trace() const { return trace_; }

 private:
  struct DirectedLink {
    LinkParams params;
    TimePoint busy_until{};
    Interceptor interceptor;
    bool down = false;
  };
  using LinkKey = std::pair<Name, Name>;

  DirectedLink* find_link(const Name& from, const Name& to);
  /// Common tail of send/send_view: link checks, interceptor, loss, then
  /// bandwidth/latency scheduling of the framed PDU.
  void transmit(const Name& from, const Name& to, wire::PduView pdu);
  void set_link_state(const Name& a, const Name& b, bool down);
  void notify_link_state(const Name& node, const Name& neighbor, bool up);

  Simulator& sim_;
  telemetry::MetricsRegistry metrics_;
  telemetry::TraceSink trace_;
  std::unordered_map<Name, PduHandler*> nodes_;
  std::map<LinkKey, DirectedLink> links_;
  std::unordered_map<Name, std::vector<Name>> adjacency_;
  std::uint64_t next_trace_id_ = 1;
  telemetry::Counter& pdus_sent_;
  telemetry::Counter& pdus_delivered_;
  telemetry::Counter& pdus_dropped_;
  telemetry::Counter& bytes_delivered_;
  telemetry::Counter& drop_no_link_;
  telemetry::Counter& drop_intercepted_;
  telemetry::Counter& drop_loss_;
  telemetry::Counter& drop_link_down_;
  telemetry::Counter& drop_unattached_;
  telemetry::Counter& link_down_events_;
  telemetry::Counter& link_up_events_;
  telemetry::Histogram& wire_bytes_;
  telemetry::Histogram& queue_wait_ns_;
};

}  // namespace gdp::net
