#include "net/sim.hpp"

#include <cassert>
#include <utility>

namespace gdp::net {

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay.count() >= 0);
  schedule_at(clock_.now() + delay, std::move(fn));
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= clock_.now());
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
}

Simulator::TimerHandle Simulator::schedule_cancellable(Duration delay,
                                                       std::function<void()> fn) {
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{clock_.now() + delay, next_seq_++, std::move(fn), flag});
  return TimerHandle(flag);
}

bool Simulator::skip_cancelled() {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.cancelled == nullptr || !*top.cancelled) return true;
    // Discard without advancing the clock: the operation completed and
    // its guard timeout must not distort simulated time.
    queue_.pop();
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (skip_cancelled()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    clock_.advance_to(ev.when);
    ev.fn();
    ++n;
    ++processed_;
  }
  return n;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t n = 0;
  while (skip_cancelled() && queue_.top().when <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    clock_.advance_to(ev.when);
    ev.fn();
    ++n;
    ++processed_;
  }
  clock_.advance_to(deadline);
  return n;
}

}  // namespace gdp::net
