// Bounded lock-free single-producer / single-consumer ring.
//
// The cross-shard handoff primitive of the worker data plane: each
// (producer, consumer) pair owns exactly one ring, so no operation ever
// takes a lock or contends a CAS — the producer writes `head_`, the
// consumer writes `tail_`, and each observes the other's index with
// acquire/release ordering only when its cached copy runs out.  Indices
// live on separate cache lines to stop the two cores false-sharing.
//
// Capacity is rounded up to a power of two; one slot is sacrificed to
// distinguish full from empty (classic Lamport ring).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace gdp::net {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;  // +1: one slot stays empty
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Usable capacity (one slot less than the allocated power of two).
  std::size_t capacity() const { return mask_; }

  /// Producer side.  False when full; `v` is untouched on failure.
  bool try_push(T&& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    slots_[head] = std::move(v);
    head_.store(next, std::memory_order_release);
    // High-water bookkeeping against the cached tail: free (no extra
    // acquire load), and exact whenever the ring approaches full — the
    // cache is refreshed by the fullness check above, which is precisely
    // when the watermark is interesting.  Single producer: plain
    // load/compare/store, no RMW.
    const std::size_t occ = (next - tail_cache_) & mask_;
    if (occ > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(occ, std::memory_order_relaxed);
    }
    return true;
  }

  /// Consumer side.  False when empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Snapshot population; exact only from the consumer thread.
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty() const { return size() == 0; }

  /// Highest occupancy observed at push time (monotone gauge; readable
  /// from any thread — telemetry pollers sample it live).
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  // A fixed 64 rather than std::hardware_destructive_interference_size:
  // the constant is ABI-stable and gcc warns that the trait is not.
  static constexpr std::size_t kCacheLine = 64;

  std::unique_ptr<T[]> slots_;
  std::size_t mask_ = 0;

  // Producer-owned line: its index plus its cached copy of the consumer's.
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;
  std::atomic<std::size_t> high_water_{0};  ///< producer-written, any-thread read
  // Consumer-owned line.
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;
};

}  // namespace gdp::net
