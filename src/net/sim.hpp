// Deterministic discrete-event simulator.
//
// All protocol timing in the repository — link latency, bandwidth
// serialization, anti-entropy timers, failure injection — runs on this
// event loop against a SimClock, so every test and benchmark is exactly
// reproducible from its seed and the Figure-8 style results are reported
// in *simulated* seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace gdp::net {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  TimePoint now() const { return clock_.now(); }
  const Clock& clock() const { return clock_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` after the current time.
  void schedule(Duration delay, std::function<void()> fn);
  void schedule_at(TimePoint when, std::function<void()> fn);

  /// Handle to a cancellable timer.  Cancelled events are discarded
  /// without running and — crucially — without advancing the simulated
  /// clock, so guard timeouts on already-completed operations do not
  /// inflate measured time.
  class TimerHandle {
   public:
    TimerHandle() = default;
    void cancel() {
      if (cancelled_) *cancelled_ = true;
    }
    bool active() const { return cancelled_ && !*cancelled_; }

   private:
    friend class Simulator;
    explicit TimerHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
    std::shared_ptr<bool> cancelled_;
  };

  TimerHandle schedule_cancellable(Duration delay, std::function<void()> fn);

  /// Runs until the event queue drains.  Returns events processed.
  std::size_t run();

  /// Runs events with time <= deadline; the clock ends at `deadline`.
  std::size_t run_until(TimePoint deadline);

  /// Runs for `d` more simulated time.
  std::size_t run_for(Duration d) { return run_until(now() + d); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  // null for plain events
  };
  /// Pops and discards cancelled events at the queue head; returns false
  /// when the queue is empty.
  bool skip_cancelled();
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  SimClock clock_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace gdp::net
