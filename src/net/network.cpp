#include "net/network.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"

namespace gdp::net {

Network::Network(Simulator& sim)
    : sim_(sim),
      pdus_sent_(metrics_.counter("net.pdus.sent")),
      pdus_delivered_(metrics_.counter("net.pdus.delivered")),
      pdus_dropped_(metrics_.counter("net.pdus.dropped")),
      bytes_delivered_(metrics_.counter("net.bytes.delivered")),
      drop_no_link_(metrics_.counter("net.drop.no_link")),
      drop_intercepted_(metrics_.counter("net.drop.intercepted")),
      drop_loss_(metrics_.counter("net.drop.loss")),
      drop_link_down_(metrics_.counter("net.drop.link_down")),
      drop_unattached_(metrics_.counter("net.drop.unattached")),
      link_down_events_(metrics_.counter("net.link.down_events")),
      link_up_events_(metrics_.counter("net.link.up_events")),
      wire_bytes_(metrics_.histogram("net.pdu.wire_bytes")),
      queue_wait_ns_(metrics_.histogram("net.link.queue_wait_ns")) {
  trace_.set_clock(&sim_.clock());
}

void Network::attach(const Name& node, PduHandler* handler) {
  assert(handler != nullptr);
  nodes_[node] = handler;
}

void Network::detach(const Name& node) { nodes_.erase(node); }

bool Network::attached(const Name& node) const { return nodes_.contains(node); }

void Network::connect(const Name& a, const Name& b, LinkParams params) {
  connect_asymmetric(a, b, params, params);
}

void Network::connect_asymmetric(const Name& a, const Name& b, LinkParams a_to_b,
                                 LinkParams b_to_a) {
  assert(a != b);
  links_[{a, b}] = DirectedLink{a_to_b, TimePoint{}, nullptr};
  links_[{b, a}] = DirectedLink{b_to_a, TimePoint{}, nullptr};
  auto add_neighbor = [&](const Name& x, const Name& y) {
    auto& v = adjacency_[x];
    if (std::find(v.begin(), v.end(), y) == v.end()) v.push_back(y);
  };
  add_neighbor(a, b);
  add_neighbor(b, a);
}

bool Network::adjacent(const Name& a, const Name& b) const {
  auto it = links_.find({a, b});
  return it != links_.end() && !it->second.down;
}

std::vector<Name> Network::neighbors(const Name& node) const {
  auto it = adjacency_.find(node);
  return it == adjacency_.end() ? std::vector<Name>{} : it->second;
}

Network::DirectedLink* Network::find_link(const Name& from, const Name& to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

void Network::send(const Name& from, const Name& to, wire::Pdu pdu) {
  // First transmission assigns the trace id; forwarding preserves it, so
  // all spans a PDU generates across the fabric share one timeline.
  if (pdu.trace_id == 0) pdu.trace_id = next_trace_id_++;
  // The origin copy: serialize once into a pooled segment.  Every
  // subsequent hop moves the same segment (send_view).
  transmit(from, to, wire::PduView::build(pdu));
}

void Network::send_view(const Name& from, const Name& to, wire::PduView pdu) {
  if (pdu.trace_id() == 0) pdu.patch_trace_id(next_trace_id_++);
  transmit(from, to, std::move(pdu));
}

void Network::transmit(const Name& from, const Name& to, wire::PduView pdu) {
  pdus_sent_.inc();
  DirectedLink* link = find_link(from, to);
  if (link == nullptr) {
    GDP_LOG(kWarn, "net") << "send over non-existent link " << from.short_hex()
                          << " -> " << to.short_hex();
    pdus_dropped_.inc();
    drop_no_link_.inc();
    trace_.record(pdu.trace_id(), from, "drop", "no_link");
    return;
  }
  if (link->down) {
    pdus_dropped_.inc();
    drop_link_down_.inc();
    trace_.record(pdu.trace_id(), from, "drop", "link_down");
    return;
  }
  // Adversary-in-the-path first: it sees the PDU as transmitted.  The
  // interceptor API deals in owned Pdus (mutation is its whole point), so
  // intercepted links pay a materialise/rebuild — never the honest path.
  if (link->interceptor) {
    auto mutated = link->interceptor(pdu.materialize());
    if (!mutated.has_value()) {
      pdus_dropped_.inc();
      drop_intercepted_.inc();
      trace_.record(pdu.trace_id(), from, "drop", "intercepted");
      return;
    }
    pdu = wire::PduView::build(*mutated);
  }
  if (link->params.loss > 0.0 && sim_.rng().next_bool(link->params.loss)) {
    pdus_dropped_.inc();
    drop_loss_.inc();
    trace_.record(pdu.trace_id(), from, "drop", "link_loss");
    return;
  }

  const std::size_t size = pdu.wire_size();
  wire_bytes_.record(size);
  const Duration tx_time(static_cast<std::int64_t>(
      static_cast<double>(size) * 8.0 / link->params.bandwidth_bps * 1e9));
  const TimePoint start = std::max(sim_.now(), link->busy_until);
  queue_wait_ns_.record(static_cast<std::uint64_t>((start - sim_.now()).count()));
  link->busy_until = start + tx_time;
  const TimePoint deliver_at = link->busy_until + link->params.latency;

  sim_.schedule_at(deliver_at, [this, to, from, pdu = std::move(pdu),
                                size]() mutable {
    auto it = nodes_.find(to);
    if (it == nodes_.end()) {
      pdus_dropped_.inc();  // crashed or never attached
      drop_unattached_.inc();
      trace_.record(pdu.trace_id(), to, "drop", "node_unattached");
      return;
    }
    pdus_delivered_.inc();
    bytes_delivered_.inc(size);
    it->second->on_pdu_view(from, std::move(pdu));
  });
}

void Network::set_link_state(const Name& a, const Name& b, bool down) {
  DirectedLink* ab = find_link(a, b);
  DirectedLink* ba = find_link(b, a);
  assert(ab != nullptr && ba != nullptr);
  if (ab->down == down && ba->down == down) return;  // no transition
  ab->down = down;
  ba->down = down;
  (down ? link_down_events_ : link_up_events_).inc();
  notify_link_state(a, b, !down);
  notify_link_state(b, a, !down);
}

void Network::notify_link_state(const Name& node, const Name& neighbor, bool up) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second->on_link_state(neighbor, up);
}

void Network::set_link_down(const Name& a, const Name& b) {
  set_link_state(a, b, true);
}

void Network::set_link_up(const Name& a, const Name& b) {
  set_link_state(a, b, false);
}

bool Network::link_up(const Name& a, const Name& b) const {
  return adjacent(a, b);
}

void Network::schedule_flap(const Name& a, const Name& b, Duration after,
                            Duration down_for) {
  sim_.schedule(after, [this, a, b] { set_link_down(a, b); });
  sim_.schedule(after + down_for, [this, a, b] { set_link_up(a, b); });
}

void Network::set_interceptor(const Name& from, const Name& to, Interceptor fn) {
  DirectedLink* link = find_link(from, to);
  assert(link != nullptr);
  link->interceptor = std::move(fn);
}

void Network::clear_interceptor(const Name& from, const Name& to) {
  DirectedLink* link = find_link(from, to);
  assert(link != nullptr);
  link->interceptor = nullptr;
}

}  // namespace gdp::net
