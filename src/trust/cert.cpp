#include "trust/cert.hpp"

#include "common/varint.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::trust {

std::string_view cert_kind_name(CertKind k) {
  switch (k) {
    case CertKind::kAdCert: return "AdCert";
    case CertKind::kRtCert: return "RtCert";
    case CertKind::kOrgMember: return "OrgMember";
    case CertKind::kSubCert: return "SubCert";
  }
  return "unknown";
}

Bytes Cert::signed_payload() const {
  Bytes out = to_bytes("gdp.cert.v1");
  out.push_back(static_cast<std::uint8_t>(kind));
  append(out, subject.view());
  append(out, object.view());
  append(out, issuer.view());
  put_fixed64(out, static_cast<std::uint64_t>(not_before_ns));
  put_fixed64(out, static_cast<std::uint64_t>(not_after_ns));
  put_varint(out, allowed_domains.size());
  for (const Name& d : allowed_domains) append(out, d.view());
  return out;
}

Bytes Cert::serialize() const {
  Bytes out = signed_payload();
  append(out, sig.encode());
  return out;
}

Result<Cert> Cert::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(11);
  if (!tag || to_string(*tag) != "gdp.cert.v1") {
    return make_error(Errc::kInvalidArgument, "bad cert tag");
  }
  auto kind_byte = r.get_bytes(1);
  if (!kind_byte || (*kind_byte)[0] > 3) {
    return make_error(Errc::kInvalidArgument, "bad cert kind");
  }
  Cert c;
  c.kind = static_cast<CertKind>((*kind_byte)[0]);
  auto subject = r.get_bytes(Name::kSize);
  auto object = r.get_bytes(Name::kSize);
  auto issuer = r.get_bytes(Name::kSize);
  auto nb = r.get_fixed64();
  auto na = r.get_fixed64();
  auto ndom = r.get_varint();
  if (!subject || !object || !issuer || !nb || !na || !ndom) {
    return make_error(Errc::kInvalidArgument, "truncated cert");
  }
  if (*ndom > 1024) return make_error(Errc::kInvalidArgument, "implausible domain count");
  c.subject = *Name::from_bytes(*subject);
  c.object = *Name::from_bytes(*object);
  c.issuer = *Name::from_bytes(*issuer);
  c.not_before_ns = static_cast<std::int64_t>(*nb);
  c.not_after_ns = static_cast<std::int64_t>(*na);
  for (std::uint64_t i = 0; i < *ndom; ++i) {
    auto d = r.get_bytes(Name::kSize);
    if (!d) return make_error(Errc::kInvalidArgument, "truncated cert domain");
    c.allowed_domains.push_back(*Name::from_bytes(*d));
  }
  auto sig_bytes = r.get_bytes(64);
  if (!sig_bytes || !r.empty()) return make_error(Errc::kInvalidArgument, "truncated cert");
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed cert signature");
  c.sig = *sig;
  return c;
}

Status Cert::verify(const crypto::PublicKey& issuer_key, TimePoint now,
                    VerifyCache* cache) const {
  if (!cached_verify(cache, issuer_key, signed_payload(), sig, not_after_ns, now)) {
    return make_error(Errc::kVerificationFailed,
                      std::string(cert_kind_name(kind)) + " signature invalid");
  }
  const std::int64_t t = now.count();
  if (t < not_before_ns) {
    return make_error(Errc::kExpired, std::string(cert_kind_name(kind)) +
                                          " not yet valid");
  }
  if (t > not_after_ns) {
    return make_error(Errc::kExpired, std::string(cert_kind_name(kind)) + " expired");
  }
  return ok_status();
}

bool Cert::domain_allowed(const Name& domain) const {
  if (allowed_domains.empty()) return true;
  for (const Name& d : allowed_domains) {
    if (d == domain) return true;
  }
  return false;
}

namespace {
Cert make_cert(CertKind kind, const crypto::PrivateKey& issuer_key,
               const Name& issuer_name, const Name& subject, const Name& object,
               TimePoint not_before, TimePoint not_after,
               std::vector<Name> allowed_domains = {}) {
  Cert c;
  c.kind = kind;
  c.subject = subject;
  c.object = object;
  c.issuer = issuer_name;
  c.not_before_ns = not_before.count();
  c.not_after_ns = not_after.count();
  c.allowed_domains = std::move(allowed_domains);
  c.sig = issuer_key.sign(c.signed_payload());
  return c;
}
}  // namespace

Cert make_ad_cert(const crypto::PrivateKey& owner_key, const Name& issuer_name,
                  const Name& capsule, const Name& server_or_org,
                  TimePoint not_before, TimePoint not_after,
                  std::vector<Name> allowed_domains) {
  return make_cert(CertKind::kAdCert, owner_key, issuer_name, server_or_org,
                   capsule, not_before, not_after, std::move(allowed_domains));
}

Cert make_rt_cert(const crypto::PrivateKey& machine_key, const Name& machine_name,
                  const Name& router, TimePoint not_before, TimePoint not_after) {
  return make_cert(CertKind::kRtCert, machine_key, machine_name, router,
                   machine_name, not_before, not_after);
}

Cert make_org_member_cert(const crypto::PrivateKey& org_key, const Name& org_name,
                          const Name& member, TimePoint not_before,
                          TimePoint not_after) {
  return make_cert(CertKind::kOrgMember, org_key, org_name, member, org_name,
                   not_before, not_after);
}

Cert make_sub_cert(const crypto::PrivateKey& owner_key, const Name& issuer_name,
                   const Name& capsule, const Name& client, TimePoint not_before,
                   TimePoint not_after) {
  return make_cert(CertKind::kSubCert, owner_key, issuer_name, client, capsule,
                   not_before, not_after);
}

}  // namespace gdp::trust
