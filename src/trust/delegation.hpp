// Delegation-chain assembly and verification.
//
// "The routing infrastructure can thus verify the chain of trust created
// by AdCerts and RtCerts to ensure secure routing to such names" (§VII).
// The chain of trust for serving a capsule starts at the capsule *name*
// (which authenticates the metadata, which carries the owner key), passes
// through an AdCert (owner -> server or storage organization), optionally
// through organization-membership certs (org -> sub-org -> ... -> server,
// "organizations can have hierarchies to enable fine-grained
// administrative controls"), and ends at a self-certifying server
// Principal.  No external PKI is consulted anywhere.
#pragma once

#include <vector>

#include "capsule/metadata.hpp"
#include "trust/cert.hpp"
#include "trust/principal.hpp"

namespace gdp::trust {

/// Proof that a DataCapsule-server may respond for a capsule.
struct ServingDelegation {
  Cert ad_cert;                     ///< owner -> server (or first org)
  std::vector<Principal> orgs;      ///< org hierarchy, outermost first
  std::vector<Cert> member_certs;   ///< orgs[i] admits the next subject

  Bytes serialize() const;
  static Result<ServingDelegation> deserialize(BytesView b);
};

/// Verifies the full chain: AdCert signed by the capsule owner and in
/// validity, every org link signed and valid, terminating at `server`.
/// When `domain` is non-null, also checks the owner's routing-domain
/// restriction (placement policy) admits that domain.  With a cache, the
/// per-link signature verdicts are memoized (delegation chains are shared
/// across capsules and re-presented on every re-advertisement); validity
/// windows and chain-structure checks always run fresh.
Status verify_serving_delegation(const capsule::Metadata& metadata,
                                 const Principal& server,
                                 const ServingDelegation& delegation,
                                 TimePoint now, const Name* domain = nullptr,
                                 VerifyCache* cache = nullptr);

/// Verifies an RtCert: `machine` (e.g. a DataCapsule-server) authorized
/// `router` to speak for it.
Status verify_routing_delegation(const Cert& rt_cert, const Principal& machine,
                                 const Principal& router, TimePoint now,
                                 VerifyCache* cache = nullptr);

/// Verifies a SubCert: the capsule owner granted `client` permission to
/// subscribe to the capsule.
Status verify_subscription(const capsule::Metadata& metadata, const Cert& sub_cert,
                           const Name& client, TimePoint now,
                           VerifyCache* cache = nullptr);

}  // namespace gdp::trust
