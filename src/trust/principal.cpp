#include "trust/principal.hpp"

#include <limits>

#include "common/varint.hpp"
#include "crypto/sha256.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::trust {

std::string_view role_name(Role r) {
  switch (r) {
    case Role::kCapsuleServer: return "capsule-server";
    case Role::kRouter: return "router";
    case Role::kOrganization: return "organization";
    case Role::kClient: return "client";
  }
  return "unknown";
}

Bytes Principal::signed_payload() const {
  Bytes out = to_bytes("gdp.principal.v1");
  append(out, key_->encode());
  out.push_back(static_cast<std::uint8_t>(role_));
  put_length_prefixed(out, to_bytes(label_));
  return out;
}

Principal Principal::create(const crypto::PrivateKey& key, Role role, std::string label) {
  Principal p;
  p.key_ = key.public_key();
  p.role_ = role;
  p.label_ = std::move(label);
  p.sig_ = key.sign(p.signed_payload());
  p.name_ = crypto::digest_to_name(crypto::sha256(p.serialize()));
  return p;
}

Bytes Principal::serialize() const {
  Bytes out = signed_payload();
  append(out, sig_.encode());
  return out;
}

Result<Principal> Principal::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(16);
  if (!tag || to_string(*tag) != "gdp.principal.v1") {
    return make_error(Errc::kInvalidArgument, "bad principal tag");
  }
  auto key_bytes = r.get_bytes(64);
  if (!key_bytes) return make_error(Errc::kInvalidArgument, "truncated principal key");
  auto key = crypto::PublicKey::decode(*key_bytes);
  if (!key) return make_error(Errc::kInvalidArgument, "principal key not on curve");
  auto role_byte = r.get_bytes(1);
  if (!role_byte || (*role_byte)[0] > 3) {
    return make_error(Errc::kInvalidArgument, "bad principal role");
  }
  auto label = r.get_length_prefixed();
  auto sig_bytes = r.get_bytes(64);
  if (!label || !sig_bytes || !r.empty()) {
    return make_error(Errc::kInvalidArgument, "truncated principal");
  }
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed principal signature");

  Principal p;
  p.key_ = *key;
  p.role_ = static_cast<Role>((*role_byte)[0]);
  p.label_ = to_string(*label);
  p.sig_ = *sig;
  p.name_ = crypto::digest_to_name(crypto::sha256(p.serialize()));
  GDP_RETURN_IF_ERROR(p.verify());
  return p;
}

Status Principal::verify(VerifyCache* cache) const {
  if (!cached_verify(cache, *key_, signed_payload(), sig_,
                     std::numeric_limits<std::int64_t>::max(), TimePoint{})) {
    return make_error(Errc::kVerificationFailed, "principal self-signature invalid");
  }
  return ok_status();
}

}  // namespace gdp::trust
