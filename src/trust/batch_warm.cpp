#include "trust/batch_warm.hpp"

#include <limits>
#include <unordered_map>

#include "capsule/metadata.hpp"
#include "crypto/batch_verify.hpp"

namespace gdp::trust {

void collect_principal_check(const Principal& principal,
                             std::vector<SignatureCheck>& out) {
  out.push_back(SignatureCheck{principal.key(), principal.signed_payload(),
                               principal.signature(),
                               std::numeric_limits<std::int64_t>::max()});
}

namespace {

void collect_cert_check(const Cert& cert, const crypto::PublicKey& issuer_key,
                        std::vector<SignatureCheck>& out) {
  out.push_back(SignatureCheck{issuer_key, cert.signed_payload(), cert.sig,
                               cert.not_after_ns});
}

}  // namespace

void collect_advertisement_checks(const Advertisement& ad,
                                  const Principal& advertiser,
                                  std::vector<SignatureCheck>& out) {
  // Mirrors the checks of Advertisement::verify /
  // verify_serving_delegation; anything that cannot be recovered here
  // (bad metadata, mismatched chain arity) is left for the sequential
  // walk to reject — collection never decides validity.
  auto metadata = capsule::Metadata::deserialize(ad.capsule_metadata);
  if (!metadata.ok()) return;
  const ServingDelegation& d = ad.delegation;
  if (d.orgs.size() != d.member_certs.size()) return;
  collect_principal_check(advertiser, out);
  collect_cert_check(d.ad_cert, metadata->owner_key(), out);
  for (std::size_t i = 0; i < d.orgs.size(); ++i) {
    collect_principal_check(d.orgs[i], out);
    collect_cert_check(d.member_certs[i], d.orgs[i].key(), out);
  }
}

BatchWarmStats warm_verify_cache(VerifyCache& cache,
                                 const std::vector<SignatureCheck>& checks,
                                 std::uint64_t seed, TimePoint now) {
  BatchWarmStats stats;

  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, d.data(), sizeof(h));
      return h;
    }
  };

  // Dedup by cache key: a delegation chain shared by many capsules in one
  // catalog contributes each signature exactly once.
  std::unordered_map<crypto::Digest, std::size_t, DigestHash> seen;
  std::vector<std::size_t> pending;       // indices into `checks`
  std::vector<crypto::Digest> cache_keys; // parallel to `pending`
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const SignatureCheck& c = checks[i];
    const crypto::Digest key = VerifyCache::make_key(c.key, c.payload, c.sig);
    if (!seen.emplace(key, i).second) continue;
    ++stats.checks;
    if (cache.peek(key, now).has_value()) {
      ++stats.cache_hits;
      continue;
    }
    pending.push_back(i);
    cache_keys.push_back(key);
  }
  if (pending.empty()) return stats;

  crypto::BatchVerifier batch(seed);
  batch.reserve(pending.size());
  for (std::size_t i : pending) {
    batch.add(crypto::sha256(checks[i].payload), checks[i].key, checks[i].sig);
  }
  const auto result = batch.verify_all();
  stats.batched = pending.size();
  stats.rejected = result.rejected.size();
  stats.accepted = pending.size() - result.rejected.size();
  stats.bisections = result.bisections;

  std::size_t rej = 0;
  for (std::size_t j = 0; j < pending.size(); ++j) {
    const bool ok =
        !(rej < result.rejected.size() && result.rejected[rej] == j);
    if (!ok) ++rej;
    cache.store(cache_keys[j], ok, checks[pending[j]].expires_ns, now);
  }
  return stats;
}

}  // namespace gdp::trust
