// Self-certifying principals.
//
// "Not only organizations, even individual DataCapsule-servers and
// GDP-routers also have their own unique identity" (§IV-B): a name derived
// "by computing a cryptographic hash over a list of key-value pairs that
// includes a public key" (§V).  A Principal is that signed key-value list;
// its name is simultaneously its flat-network address and the anchor for
// verifying anything it signs.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace gdp::trust {

class VerifyCache;

/// The role a principal plays in the GDP (recorded in its metadata).
enum class Role : std::uint8_t {
  kCapsuleServer = 0,
  kRouter = 1,
  kOrganization = 2,
  kClient = 3,
};

std::string_view role_name(Role r);

class Principal {
 public:
  /// Builds and self-signs a principal description.
  static Principal create(const crypto::PrivateKey& key, Role role, std::string label);

  const Name& name() const { return name_; }
  const crypto::PublicKey& key() const { return *key_; }
  Role role() const { return role_; }
  std::string_view label() const { return label_; }

  Bytes serialize() const;
  static Result<Principal> deserialize(BytesView b);

  /// Checks the self-signature (binding of name to key).  The binding
  /// never expires, so cached verdicts live until evicted.
  Status verify(VerifyCache* cache = nullptr) const;

  /// The byte string the self-signature covers and the signature itself;
  /// exposed so batch verification can collect (key, payload, sig)
  /// checks without re-deriving the encoding.
  Bytes signed_payload() const;
  const crypto::Signature& signature() const { return sig_; }

  friend bool operator==(const Principal& a, const Principal& b) {
    return a.name_ == b.name_;
  }

 private:
  Principal() = default;

  std::optional<crypto::PublicKey> key_;
  Role role_ = Role::kClient;
  std::string label_;
  crypto::Signature sig_{};
  Name name_;
};

}  // namespace gdp::trust
