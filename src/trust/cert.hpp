// Cryptographic delegation certificates (§V, §VII).
//
// The GDP replaces traditional PKI with explicit, verifiable delegations
// anchored in flat names:
//   * AdCert   — "a signed statement by the DataCapsule-owner that a
//                certain DataCapsule-server is allowed to respond for the
//                DataCapsule in question."  Subject may also be a storage
//                *organization*, with org-membership certs completing the
//                chain to a concrete server.
//   * RtCert   — "a signed statement issued by a physical machine (e.g. a
//                DataCapsule-server) to a GDP-router authorizing the
//                GDP-router to send/receive messages on its behalf."
//   * OrgMember— parent organization (or org) admits a member principal,
//                enabling hierarchical, fine-grained delegation.
//   * SubCert  — owner grants a client permission to subscribe (join the
//                secure multicast tree) for a capsule; enforced at trust-
//                domain borders to stop denial-of-service.
//
// Certificates carry validity windows; expiry is checked against the
// (simulated) clock, and naming-catalog extension records can defer it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace gdp::trust {

class VerifyCache;

enum class CertKind : std::uint8_t {
  kAdCert = 0,
  kRtCert = 1,
  kOrgMember = 2,
  kSubCert = 3,
};

std::string_view cert_kind_name(CertKind k);

struct Cert {
  CertKind kind = CertKind::kAdCert;
  Name subject;                 ///< who is being authorized
  Name object;                  ///< what it concerns (capsule / machine name)
  Name issuer;                  ///< name of the issuing principal (informational)
  std::int64_t not_before_ns = 0;
  std::int64_t not_after_ns = 0;
  /// AdCert only: routing-domain names this capsule may traverse / reside
  /// in; empty means unrestricted.  This is how the owner's placement
  /// policy reaches the routing layer (§VII).
  std::vector<Name> allowed_domains;
  crypto::Signature sig{};

  Bytes signed_payload() const;
  Bytes serialize() const;
  static Result<Cert> deserialize(BytesView b);

  /// Checks the signature under the claimed issuer key and the validity
  /// window against `now`.  With a cache, the signature verdict is
  /// memoized (bounded by this cert's not_after); the window check always
  /// runs fresh.
  Status verify(const crypto::PublicKey& issuer_key, TimePoint now,
                VerifyCache* cache = nullptr) const;

  bool domain_allowed(const Name& domain) const;

  friend bool operator==(const Cert&, const Cert&) = default;
};

/// Convenience constructors.  `issuer_key` signs; `issuer_name` is the
/// issuer's flat name (owner-key fingerprint for AdCerts, principal name
/// otherwise).
Cert make_ad_cert(const crypto::PrivateKey& owner_key, const Name& issuer_name,
                  const Name& capsule, const Name& server_or_org,
                  TimePoint not_before, TimePoint not_after,
                  std::vector<Name> allowed_domains = {});

Cert make_rt_cert(const crypto::PrivateKey& machine_key, const Name& machine_name,
                  const Name& router, TimePoint not_before, TimePoint not_after);

Cert make_org_member_cert(const crypto::PrivateKey& org_key, const Name& org_name,
                          const Name& member, TimePoint not_before,
                          TimePoint not_after);

Cert make_sub_cert(const crypto::PrivateKey& owner_key, const Name& issuer_name,
                   const Name& capsule, const Name& client, TimePoint not_before,
                   TimePoint not_after);

}  // namespace gdp::trust
