// Secure advertisements and naming catalogs (§VII).
//
// "The set of available names is advertised via one or more naming
// catalogs in the form of DataCapsules containing individual
// advertisements and access-control credentials ... All such proof is
// included in a catalog, signed by the advertiser.  Advertisements have
// corresponding expiration times, which can be deferred as a group by
// appending extension records to the catalog."
//
// An Advertisement bundles the advertised capsule name with the complete
// ServingDelegation chain proving the advertiser may serve it.  Catalog
// replays a stream of catalog-record payloads (advertisements and group
// extensions) — typically the records of the advertiser's catalog capsule
// — into the set of currently live advertisements.
#pragma once

#include <cstdint>
#include <vector>

#include "trust/delegation.hpp"

namespace gdp::trust {

struct Advertisement {
  Name advertised;              ///< capsule name being advertised
  ServingDelegation delegation; ///< proof the advertiser may serve it
  /// Serialized capsule metadata.  Carried so any verifier can recover the
  /// owner key (the metadata hashes to `advertised`, so it is
  /// self-authenticating) without a separate fetch.
  Bytes capsule_metadata;
  std::int64_t expires_ns = 0;

  Bytes serialize() const;
  static Result<Advertisement> deserialize(BytesView b);

  /// Full verification: metadata hashes to the advertised name and the
  /// delegation chain terminates at `advertiser`.  A cache memoizes the
  /// chain's signature verdicts across re-advertisements.
  Status verify(const Principal& advertiser, TimePoint now,
                const Name* domain = nullptr,
                VerifyCache* cache = nullptr) const;
};

class Catalog {
 public:
  /// Record-payload encodings for the catalog capsule.
  static Bytes encode_advertisement(const Advertisement& ad);
  static Bytes encode_extension(std::int64_t new_expiry_ns);

  /// Replays one catalog record payload (in capsule order).
  Status apply(BytesView payload);

  const std::vector<Advertisement>& advertisements() const { return ads_; }

  /// Expiry after group extensions: extensions only ever defer.
  std::int64_t effective_expiry_ns(const Advertisement& ad) const;
  bool is_live(const Advertisement& ad, TimePoint now) const;

  /// Advertisements still live at `now`.
  std::vector<const Advertisement*> live(TimePoint now) const;

 private:
  std::vector<Advertisement> ads_;
  std::int64_t group_extension_ns_ = 0;
};

}  // namespace gdp::trust
