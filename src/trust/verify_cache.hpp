// Memoized signature-verification verdicts.
//
// ECDSA verification dominates the trust-plane cost: re-advertisements,
// delegation chains shared across many capsules, and lookup evidence all
// re-verify the same certificates over and over.  The verdict of
// "does `sig` verify `payload` under `issuer_key`" is a pure function of
// those three byte strings — signed payloads are immutable — so it is
// sound to cache it.  What is *not* time-invariant is the validity
// window, so callers keep window checks outside the cache and give every
// entry an expiry (the certificate's not_after) after which the entry is
// dropped; the cache never extends a certificate's life, it only skips
// redundant curve arithmetic.
//
// Negative verdicts are cached too: a forged certificate replayed at a
// router should cost one verification, not one per replay.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/clock.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace gdp::trust {

class VerifyCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit VerifyCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Cache key: sha256(issuer_key || payload || sig).  Hashing (rather
  /// than storing the tuple) keeps entries fixed-size and makes collisions
  /// between distinct verification questions cryptographically negligible.
  static crypto::Digest make_key(const crypto::PublicKey& issuer_key,
                                 BytesView payload,
                                 const crypto::Signature& sig);

  /// The cached verdict, or nullopt on miss.  An entry whose expiry has
  /// passed is dropped and reported as a miss.
  std::optional<bool> probe(const crypto::Digest& key, TimePoint now);

  /// Like probe, but without side effects: no hit/miss accounting, no LRU
  /// reordering, stale entries left in place.  Used by batch pre-warming
  /// to decide what still needs verification without perturbing the
  /// counters tests (and dumps) interpret as sequential-verification
  /// cache behaviour.
  std::optional<bool> peek(const crypto::Digest& key, TimePoint now) const;

  /// Records a verdict, valid until `expires_ns`.  Already-stale entries
  /// are not stored.  Inserting past capacity evicts the least recently
  /// used entry.
  void store(const crypto::Digest& key, bool ok, std::int64_t expires_ns,
             TimePoint now);

  /// probe + (on miss) ECDSA verify + store, in one step.
  bool check(const crypto::PublicKey& issuer_key, BytesView payload,
             const crypto::Signature& sig, std::int64_t expires_ns,
             TimePoint now);

  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity);
  std::size_t size() const { return map_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      // The key is itself a SHA-256; any aligned slice is uniform.
      std::size_t h;
      static_assert(sizeof(h) <= 32);
      __builtin_memcpy(&h, d.data(), sizeof(h));
      return h;
    }
  };
  struct Entry {
    bool ok;
    std::int64_t expires_ns;
  };
  using LruList = std::list<std::pair<crypto::Digest, Entry>>;

  std::size_t capacity_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<crypto::Digest, LruList::iterator, DigestHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Signature check through an optional cache: with `cache == nullptr`
/// verifies directly.  This is what Cert/Principal verification routes
/// through.
bool cached_verify(VerifyCache* cache, const crypto::PublicKey& issuer_key,
                   BytesView payload, const crypto::Signature& sig,
                   std::int64_t expires_ns, TimePoint now);

}  // namespace gdp::trust
