// Batch pre-warming of signature-verdict caches.
//
// A catalog re-advertisement carries many delegation chains whose
// signature checks are pure functions of (issuer key, payload, sig) —
// exactly what VerifyCache memoizes.  Instead of letting the sequential
// chain walk verify them one by one on a cold cache, the router and
// GLookupService first *collect* every check a catalog will need, batch
// verify the cache misses with one multi-scalar multiplication
// (crypto::BatchVerifier), and store the verdicts.  The unchanged
// sequential verification logic then runs against a warm cache, keeping
// its exact error semantics while the curve arithmetic collapses from k
// double-scalar multiplications to ~1 batched one.
#pragma once

#include <cstdint>
#include <vector>

#include "trust/advertisement.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::trust {

/// One pending "does `sig` verify `payload` under `key`" question, plus
/// the verdict expiry VerifyCache should attach (the cert's not_after;
/// int64 max for never-expiring principal self-signatures).
struct SignatureCheck {
  crypto::PublicKey key;
  Bytes payload;
  crypto::Signature sig;
  std::int64_t expires_ns = 0;
};

/// Appends the principal's self-signature check.
void collect_principal_check(const Principal& principal,
                             std::vector<SignatureCheck>& out);

/// Appends every signature check verify_serving_delegation would perform
/// for this advertisement: server self-sig, AdCert under the owner key,
/// and each org self-sig + membership cert.  Collection is best-effort —
/// structurally broken advertisements simply contribute nothing and fail
/// later in the sequential walk.
void collect_advertisement_checks(const Advertisement& ad,
                                  const Principal& advertiser,
                                  std::vector<SignatureCheck>& out);

struct BatchWarmStats {
  std::size_t checks = 0;      ///< collected, after dedup
  std::size_t cache_hits = 0;  ///< already had a verdict
  std::size_t batched = 0;     ///< sent to the batch verifier
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t bisections = 0;
};

/// Probes `cache` for every (deduplicated) check, batch-verifies the
/// misses with coefficients seeded by `seed`, and stores the verdicts.
/// After this, sequential verification of the same material is pure
/// cache hits.
BatchWarmStats warm_verify_cache(VerifyCache& cache,
                                 const std::vector<SignatureCheck>& checks,
                                 std::uint64_t seed, TimePoint now);

}  // namespace gdp::trust
