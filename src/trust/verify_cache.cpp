#include "trust/verify_cache.hpp"

namespace gdp::trust {

crypto::Digest VerifyCache::make_key(const crypto::PublicKey& issuer_key,
                                     BytesView payload,
                                     const crypto::Signature& sig) {
  crypto::Sha256 h;
  h.update(issuer_key.encode());
  h.update(payload);
  h.update(sig.encode());
  return h.finish();
}

std::optional<bool> VerifyCache::probe(const crypto::Digest& key, TimePoint now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->second.expires_ns < now.count()) {
    lru_.erase(it->second);
    map_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  ++hits_;
  return it->second->second.ok;
}

std::optional<bool> VerifyCache::peek(const crypto::Digest& key,
                                      TimePoint now) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  if (it->second->second.expires_ns < now.count()) return std::nullopt;
  return it->second->second.ok;
}

void VerifyCache::store(const crypto::Digest& key, bool ok,
                        std::int64_t expires_ns, TimePoint now) {
  if (capacity_ == 0 || expires_ns < now.count()) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = Entry{ok, expires_ns};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, Entry{ok, expires_ns});
  map_.emplace(key, lru_.begin());
}

void VerifyCache::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

bool VerifyCache::check(const crypto::PublicKey& issuer_key, BytesView payload,
                        const crypto::Signature& sig, std::int64_t expires_ns,
                        TimePoint now) {
  const crypto::Digest key = make_key(issuer_key, payload, sig);
  if (auto verdict = probe(key, now)) return *verdict;
  const bool ok = issuer_key.verify(payload, sig);
  store(key, ok, expires_ns, now);
  return ok;
}

bool cached_verify(VerifyCache* cache, const crypto::PublicKey& issuer_key,
                   BytesView payload, const crypto::Signature& sig,
                   std::int64_t expires_ns, TimePoint now) {
  if (cache == nullptr) return issuer_key.verify(payload, sig);
  return cache->check(issuer_key, payload, sig, expires_ns, now);
}

}  // namespace gdp::trust
