#include "trust/delegation.hpp"

#include "common/varint.hpp"
#include "trust/verify_cache.hpp"

namespace gdp::trust {

Bytes ServingDelegation::serialize() const {
  Bytes out;
  put_length_prefixed(out, ad_cert.serialize());
  put_varint(out, orgs.size());
  for (std::size_t i = 0; i < orgs.size(); ++i) {
    put_length_prefixed(out, orgs[i].serialize());
    put_length_prefixed(out, member_certs[i].serialize());
  }
  return out;
}

Result<ServingDelegation> ServingDelegation::deserialize(BytesView b) {
  ByteReader r(b);
  auto ad_bytes = r.get_length_prefixed();
  if (!ad_bytes) return make_error(Errc::kInvalidArgument, "truncated delegation");
  GDP_ASSIGN_OR_RETURN(Cert ad, Cert::deserialize(*ad_bytes));
  ServingDelegation d;
  d.ad_cert = std::move(ad);
  auto count = r.get_varint();
  if (!count) return make_error(Errc::kInvalidArgument, "truncated delegation");
  if (*count > 64) return make_error(Errc::kInvalidArgument, "implausible org chain");
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto org_bytes = r.get_length_prefixed();
    auto cert_bytes = r.get_length_prefixed();
    if (!org_bytes || !cert_bytes) {
      return make_error(Errc::kInvalidArgument, "truncated delegation link");
    }
    GDP_ASSIGN_OR_RETURN(Principal org, Principal::deserialize(*org_bytes));
    GDP_ASSIGN_OR_RETURN(Cert cert, Cert::deserialize(*cert_bytes));
    d.orgs.push_back(std::move(org));
    d.member_certs.push_back(std::move(cert));
  }
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing delegation bytes");
  return d;
}

Status verify_serving_delegation(const capsule::Metadata& metadata,
                                 const Principal& server,
                                 const ServingDelegation& delegation,
                                 TimePoint now, const Name* domain,
                                 VerifyCache* cache) {
  if (delegation.orgs.size() != delegation.member_certs.size()) {
    return make_error(Errc::kInvalidArgument, "malformed delegation chain");
  }
  GDP_RETURN_IF_ERROR(server.verify(cache));
  if (server.role() != Role::kCapsuleServer) {
    return make_error(Errc::kPermissionDenied, "delegation target is not a server");
  }

  const Cert& ad = delegation.ad_cert;
  if (ad.kind != CertKind::kAdCert) {
    return make_error(Errc::kPermissionDenied, "expected an AdCert");
  }
  if (ad.object != metadata.name()) {
    return make_error(Errc::kPermissionDenied, "AdCert covers a different capsule");
  }
  GDP_RETURN_IF_ERROR(ad.verify(metadata.owner_key(), now, cache));
  if (domain != nullptr && !ad.domain_allowed(*domain)) {
    return make_error(Errc::kPermissionDenied,
                      "capsule placement policy excludes this routing domain");
  }

  // Walk owner -> (org ->)* server.
  Name expected_subject = ad.subject;
  for (std::size_t i = 0; i < delegation.orgs.size(); ++i) {
    const Principal& org = delegation.orgs[i];
    GDP_RETURN_IF_ERROR(org.verify(cache));
    if (org.role() != Role::kOrganization) {
      return make_error(Errc::kPermissionDenied, "delegation link is not an organization");
    }
    if (org.name() != expected_subject) {
      return make_error(Errc::kPermissionDenied, "delegation chain is not contiguous");
    }
    const Cert& member = delegation.member_certs[i];
    if (member.kind != CertKind::kOrgMember) {
      return make_error(Errc::kPermissionDenied, "expected an OrgMember cert");
    }
    if (member.object != org.name()) {
      return make_error(Errc::kPermissionDenied, "membership cert for a different org");
    }
    GDP_RETURN_IF_ERROR(member.verify(org.key(), now, cache));
    expected_subject = member.subject;
  }
  if (expected_subject != server.name()) {
    return make_error(Errc::kPermissionDenied,
                      "delegation chain does not terminate at the server");
  }
  return ok_status();
}

Status verify_routing_delegation(const Cert& rt_cert, const Principal& machine,
                                 const Principal& router, TimePoint now,
                                 VerifyCache* cache) {
  GDP_RETURN_IF_ERROR(machine.verify(cache));
  GDP_RETURN_IF_ERROR(router.verify(cache));
  if (rt_cert.kind != CertKind::kRtCert) {
    return make_error(Errc::kPermissionDenied, "expected an RtCert");
  }
  if (router.role() != Role::kRouter) {
    return make_error(Errc::kPermissionDenied, "RtCert subject is not a router");
  }
  if (rt_cert.subject != router.name()) {
    return make_error(Errc::kPermissionDenied, "RtCert names a different router");
  }
  if (rt_cert.object != machine.name() || rt_cert.issuer != machine.name()) {
    return make_error(Errc::kPermissionDenied, "RtCert not issued by this machine");
  }
  return rt_cert.verify(machine.key(), now, cache);
}

Status verify_subscription(const capsule::Metadata& metadata, const Cert& sub_cert,
                           const Name& client, TimePoint now,
                           VerifyCache* cache) {
  if (sub_cert.kind != CertKind::kSubCert) {
    return make_error(Errc::kPermissionDenied, "expected a SubCert");
  }
  if (sub_cert.object != metadata.name()) {
    return make_error(Errc::kPermissionDenied, "SubCert covers a different capsule");
  }
  if (sub_cert.subject != client) {
    return make_error(Errc::kPermissionDenied, "SubCert grants a different client");
  }
  return sub_cert.verify(metadata.owner_key(), now, cache);
}

}  // namespace gdp::trust
