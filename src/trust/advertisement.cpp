#include "trust/advertisement.hpp"

#include <algorithm>

#include "common/varint.hpp"

namespace gdp::trust {

namespace {
constexpr std::uint8_t kTagAdvertisement = 1;
constexpr std::uint8_t kTagExtension = 2;
}  // namespace

Bytes Advertisement::serialize() const {
  Bytes out;
  append(out, advertised.view());
  put_fixed64(out, static_cast<std::uint64_t>(expires_ns));
  put_length_prefixed(out, delegation.serialize());
  put_length_prefixed(out, capsule_metadata);
  return out;
}

Result<Advertisement> Advertisement::deserialize(BytesView b) {
  ByteReader r(b);
  auto name = r.get_bytes(Name::kSize);
  auto expiry = r.get_fixed64();
  auto deleg_bytes = r.get_length_prefixed();
  if (!name || !expiry || !deleg_bytes) {
    return make_error(Errc::kInvalidArgument, "truncated advertisement");
  }
  auto meta_bytes = r.get_length_prefixed();
  if (!meta_bytes || !r.empty()) {
    return make_error(Errc::kInvalidArgument, "truncated advertisement");
  }
  GDP_ASSIGN_OR_RETURN(ServingDelegation d, ServingDelegation::deserialize(*deleg_bytes));
  Advertisement ad;
  ad.advertised = *Name::from_bytes(*name);
  ad.expires_ns = static_cast<std::int64_t>(*expiry);
  ad.delegation = std::move(d);
  ad.capsule_metadata = std::move(*meta_bytes);
  return ad;
}

Status Advertisement::verify(const Principal& advertiser, TimePoint now,
                             const Name* domain, VerifyCache* cache) const {
  GDP_ASSIGN_OR_RETURN(capsule::Metadata metadata,
                       capsule::Metadata::deserialize(capsule_metadata));
  if (metadata.name() != advertised) {
    return make_error(Errc::kVerificationFailed,
                      "advertisement metadata does not hash to the advertised name");
  }
  return verify_serving_delegation(metadata, advertiser, delegation, now, domain,
                                   cache);
}

Bytes Catalog::encode_advertisement(const Advertisement& ad) {
  Bytes out{kTagAdvertisement};
  append(out, ad.serialize());
  return out;
}

Bytes Catalog::encode_extension(std::int64_t new_expiry_ns) {
  Bytes out{kTagExtension};
  put_fixed64(out, static_cast<std::uint64_t>(new_expiry_ns));
  return out;
}

Status Catalog::apply(BytesView payload) {
  if (payload.empty()) return make_error(Errc::kInvalidArgument, "empty catalog record");
  switch (payload[0]) {
    case kTagAdvertisement: {
      GDP_ASSIGN_OR_RETURN(Advertisement ad,
                           Advertisement::deserialize(payload.subspan(1)));
      ads_.push_back(std::move(ad));
      return ok_status();
    }
    case kTagExtension: {
      ByteReader r(payload.subspan(1));
      auto expiry = r.get_fixed64();
      if (!expiry || !r.empty()) {
        return make_error(Errc::kInvalidArgument, "truncated extension record");
      }
      group_extension_ns_ =
          std::max(group_extension_ns_, static_cast<std::int64_t>(*expiry));
      return ok_status();
    }
    default:
      return make_error(Errc::kInvalidArgument, "unknown catalog record tag");
  }
}

std::int64_t Catalog::effective_expiry_ns(const Advertisement& ad) const {
  return std::max(ad.expires_ns, group_extension_ns_);
}

bool Catalog::is_live(const Advertisement& ad, TimePoint now) const {
  return now.count() <= effective_expiry_ns(ad);
}

std::vector<const Advertisement*> Catalog::live(TimePoint now) const {
  std::vector<const Advertisement*> out;
  for (const Advertisement& ad : ads_) {
    if (is_live(ad, now)) out.push_back(&ad);
  }
  return out;
}

}  // namespace gdp::trust
