// Configurable hash-pointer strategies (§V-A "Configuration Flexibility").
//
// "Our ingenuity is in exposing the flexibility of which hash-pointers to
// include to the application."  A strategy decides, for each new record,
// which earlier seqnos it must point to.  Three built-ins cover the
// paper's examples:
//   * Chain       — prev only; O(1) append state, O(n) point proofs, but
//                   range queries self-verify (streaming, time-series).
//   * SkipList    — authenticated-skip-list tower pointers; O(log n)
//                   proofs at slightly larger records.
//   * Checkpoint  — prev + latest checkpoint; a file-system interface may
//                   make all records point at a checkpoint record.
// Regardless of the pointers chosen, all invariants and proofs work with
// the generalized validation in CapsuleState.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gdp::capsule {

class HashPointerStrategy {
 public:
  virtual ~HashPointerStrategy() = default;

  /// Seqnos (all < seqno, ascending, deduplicated) that the record at
  /// `seqno` must carry pointers to.  Always contains seqno-1 so that the
  /// linear history stays connected.
  virtual std::vector<std::uint64_t> targets(std::uint64_t seqno) const = 0;

  /// The largest seqno whose record will carry a pointer to `seqno`
  /// (>= seqno + 1).  Writers use this to prune their remembered-hash
  /// state: once that record is appended, `seqno`'s hash is never needed
  /// again.
  virtual std::uint64_t last_referencer(std::uint64_t seqno) const = 0;

  /// Human-readable identifier (recorded in capsule metadata).
  virtual std::string id() const = 0;
};

/// prev-pointer only.
std::unique_ptr<HashPointerStrategy> make_chain_strategy();

/// Deterministic skip-list: record n additionally points to n - 2^i for
/// every i >= 1 with n % 2^i == 0.
std::unique_ptr<HashPointerStrategy> make_skiplist_strategy();

/// prev + the latest checkpoint (records whose seqno is a multiple of
/// `interval`; the metadata record 0 counts as a checkpoint).
std::unique_ptr<HashPointerStrategy> make_checkpoint_strategy(std::uint64_t interval);

/// Restores a strategy from its id() string, e.g. read from metadata.
std::unique_ptr<HashPointerStrategy> strategy_from_id(std::string_view id);

}  // namespace gdp::capsule
