#include "capsule/writer.hpp"

#include <algorithm>
#include <cassert>

#include "common/varint.hpp"

namespace gdp::capsule {

Writer::Writer(Metadata metadata, crypto::PrivateKey writer_key,
               std::unique_ptr<HashPointerStrategy> strategy)
    : metadata_(std::move(metadata)),
      writer_key_(std::move(writer_key)),
      strategy_(std::move(strategy)),
      tip_hash_(metadata_.name()) {
  assert(strategy_ != nullptr);
  // MW capsules delegate to per-branch keys; the metadata writer key only
  // names the founding branch, so any credentialed key may drive a Writer.
  assert(metadata_.mode() == WriterMode::kMultiWriter ||
         writer_key_.public_key() == metadata_.writer_key());
}

HashPtr Writer::ptr_for(std::uint64_t seqno) const {
  if (seqno == 0) return HashPtr{0, metadata_.name()};
  auto it = remembered_.find(seqno);
  assert(it != remembered_.end() && "strategy requested a pruned hash");
  return HashPtr{seqno, it->second};
}

void Writer::remember(std::uint64_t seqno, const RecordHash& hash) {
  remembered_[seqno] = hash;
}

void Writer::prune(std::uint64_t appended_seqno) {
  for (auto it = remembered_.begin(); it != remembered_.end();) {
    if (strategy_->last_referencer(it->first) <= appended_seqno) {
      it = remembered_.erase(it);
    } else {
      ++it;
    }
  }
}

Record Writer::append(BytesView payload, std::int64_t timestamp_ns) {
  return append_merge(payload, timestamp_ns, {});
}

Record Writer::append_merge(BytesView payload, std::int64_t timestamp_ns,
                            const std::vector<HashPtr>& extra_parents) {
  std::uint64_t seqno = next_seqno_;
  for (const HashPtr& p : extra_parents) {
    seqno = std::max(seqno, p.seqno + 1);
  }

  Record rec;
  rec.header.capsule_name = metadata_.name();
  rec.header.seqno = seqno;
  rec.header.timestamp_ns = timestamp_ns;

  std::vector<HashPtr> ptrs;
  for (std::uint64_t target : strategy_->targets(next_seqno_)) {
    ptrs.push_back(ptr_for(target));
  }
  for (const HashPtr& p : extra_parents) ptrs.push_back(p);
  std::sort(ptrs.begin(), ptrs.end(), [](const HashPtr& a, const HashPtr& b) {
    return a.seqno != b.seqno ? a.seqno < b.seqno : a.hash < b.hash;
  });
  ptrs.erase(std::unique(ptrs.begin(), ptrs.end()), ptrs.end());
  rec.header.ptrs = std::move(ptrs);

  rec.header.payload_hash = crypto::sha256(payload);
  rec.header.payload_len = payload.size();
  rec.payload.assign(payload.begin(), payload.end());

  crypto::Digest digest;
  RecordHash hash = rec.header.hash();
  std::copy(hash.raw().begin(), hash.raw().end(), digest.begin());
  rec.writer_sig = writer_key_.sign_digest(digest);

  remember(seqno, hash);
  tip_hash_ = hash;
  next_seqno_ = seqno + 1;
  prune(seqno);
  return rec;
}

Status Writer::rebase(std::uint64_t tip_seqno, const RecordHash& tip_hash) {
  // The next append's strategy targets must be satisfiable from the one
  // hash we are handed: the tip itself (plus the seqno-0 name pointer).
  for (std::uint64_t target : strategy_->targets(tip_seqno + 1)) {
    if (target != 0 && target != tip_seqno) {
      return make_error(Errc::kFailedPrecondition,
                        "rebase requires a chain-like pointer strategy");
    }
  }
  if (tip_seqno == 0 && tip_hash != metadata_.name()) {
    return make_error(Errc::kInvalidArgument,
                      "empty-capsule tip must be the capsule name");
  }
  next_seqno_ = tip_seqno + 1;
  tip_hash_ = tip_hash;
  remembered_.clear();
  if (tip_seqno != 0) remembered_[tip_seqno] = tip_hash;
  return ok_status();
}

Heartbeat Writer::heartbeat() const {
  return Heartbeat::make(metadata_.name(), next_seqno_ - 1, tip_hash_, writer_key_);
}

Bytes Writer::save_state() const {
  Bytes out;
  gdp::append(out, metadata_.name().view());
  put_varint(out, next_seqno_);
  gdp::append(out, tip_hash_.view());
  put_varint(out, remembered_.size());
  for (const auto& [seqno, hash] : remembered_) {
    put_varint(out, seqno);
    gdp::append(out, hash.view());
  }
  return out;
}

Result<Writer> Writer::restore(Metadata metadata, crypto::PrivateKey writer_key,
                               std::unique_ptr<HashPointerStrategy> strategy,
                               BytesView saved_state) {
  ByteReader r(saved_state);
  auto name_bytes = r.get_bytes(Name::kSize);
  if (!name_bytes) return make_error(Errc::kInvalidArgument, "truncated writer state");
  if (*Name::from_bytes(*name_bytes) != metadata.name()) {
    return make_error(Errc::kFailedPrecondition,
                      "writer state belongs to a different capsule");
  }
  auto next_seqno = r.get_varint();
  auto tip = r.get_bytes(Name::kSize);
  auto count = r.get_varint();
  if (!next_seqno || !tip || !count) {
    return make_error(Errc::kInvalidArgument, "truncated writer state");
  }
  Writer w(std::move(metadata), std::move(writer_key), std::move(strategy));
  w.next_seqno_ = *next_seqno;
  w.tip_hash_ = *Name::from_bytes(*tip);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto seqno = r.get_varint();
    auto hash = r.get_bytes(Name::kSize);
    if (!seqno || !hash) return make_error(Errc::kInvalidArgument, "truncated writer state");
    w.remembered_[*seqno] = *Name::from_bytes(*hash);
  }
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing writer state bytes");
  return w;
}

}  // namespace gdp::capsule
