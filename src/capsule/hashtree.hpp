// Merkle summary of a capsule's canonical record chain (§VI-A).
//
// Anti-entropy that floods full records scales with the size of the
// capsule, not with the size of the divergence.  The original GDP design
// calls for detecting "gaps and forks in the data stream" via Merkle-tree
// provenance: replicas exchange subtree hashes, walk only the ranges that
// disagree, and pull exactly the records they lack.  HashTree is that
// summary — a fixed-fanout tree whose leaves bucket the canonical chain
// by seqno range.
//
// Tree shape is *absolute*: leaf b always covers seqnos
// [b*kLeafSpan+1, (b+1)*kLeafSpan] and a level-k interior node always
// covers kLeafSpan*kFanout^k seqnos starting at an aligned boundary, so
// two replicas with different tips hash the same function over the same
// range — ranges beyond a replica's tip fold in well-defined
// empty-subtree digests.  The root is the node over the smallest aligned
// span covering the tip, and anchors the sync probe next to the tip
// heartbeat.
//
// Maintenance is incremental: set_leaf() dirties one leaf bucket;
// interior hashes are folded from the (cached) bucket digests on demand,
// so an append costs one bucket re-hash and a summary probe costs only
// the buckets that changed since the last one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/name.hpp"
#include "crypto/sha256.hpp"

namespace gdp::capsule {

class HashTree {
 public:
  /// Seqnos per leaf bucket: the granularity at which divergence is
  /// localized (a fork is narrowed to one 64-record range, then the whole
  /// range is exchanged).
  static constexpr std::uint64_t kLeafSpan = 64;
  /// Children per interior node: one descend round narrows a range by 16x.
  static constexpr std::uint64_t kFanout = 16;

  struct Node {
    std::uint64_t first = 0;  ///< inclusive 1-based seqno range
    std::uint64_t last = 0;
    crypto::Digest hash{};

    friend bool operator==(const Node&, const Node&) = default;
  };

  /// Sets the canonical record hash at `seqno` (>= 1).  Overwriting with
  /// the same value is free; a changed value dirties only its bucket.
  void set_leaf(std::uint64_t seqno, const Name& record_hash);

  /// Drops every leaf above `new_tip` (canonical reorg shortened the
  /// chain).  Idempotent.
  void truncate(std::uint64_t new_tip);

  void clear();

  std::uint64_t tip_seqno() const { return tip_; }

  /// True when no canonical record lies in [first, last].
  bool range_empty(std::uint64_t first, std::uint64_t last) const;

  /// True when every seqno in [first, last] has a canonical record.  Sync
  /// uses this to tell "peer is just behind" apart from "I have gaps":
  /// a fully-present range whose hash differs only because the peer's tip
  /// is shorter need not be re-pulled.
  bool range_full(std::uint64_t first, std::uint64_t last) const;

  /// Root: the node over [1, cover_span(tip)].  An empty tree's root
  /// covers [1, kLeafSpan]; two empty trees always agree.
  Node root() const;

  /// Hash over an aligned range (see is_aligned).  Ranges wholly or
  /// partly beyond the tip are well-defined (empty digests), so replicas
  /// with different tips can compare any aligned range.
  Node node(std::uint64_t first, std::uint64_t last) const;

  /// The kFanout aligned children of an interior range.  Empty for leaf
  /// ranges.
  std::vector<Node> children(std::uint64_t first, std::uint64_t last) const;

  static bool is_leaf_range(std::uint64_t first, std::uint64_t last) {
    return last - first + 1 <= kLeafSpan;
  }

  /// Smallest aligned span kLeafSpan * kFanout^k covering [1, tip].
  static std::uint64_t cover_span(std::uint64_t tip);

  /// Valid exchange ranges: span kLeafSpan * kFanout^k, aligned start.
  static bool is_aligned(std::uint64_t first, std::uint64_t last);

 private:
  /// Digest of an entirely-empty subtree at `level` (0 = leaf), memoized.
  static const crypto::Digest& empty_hash(std::size_t level);
  const crypto::Digest& bucket_digest(std::uint64_t bucket) const;
  crypto::Digest range_hash(std::uint64_t first, std::uint64_t last) const;

  std::vector<Name> leaves_;  ///< seqno-1 indexed; zero Name = absent
  std::uint64_t tip_ = 0;
  std::uint64_t present_ = 0;  ///< non-zero leaves
  mutable std::vector<crypto::Digest> bucket_hash_;
  mutable std::vector<char> bucket_dirty_;
  std::vector<std::uint32_t> bucket_count_;  ///< present leaves per bucket
};

}  // namespace gdp::capsule
