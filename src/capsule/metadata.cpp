#include "capsule/metadata.hpp"

#include "common/varint.hpp"
#include "crypto/sha256.hpp"

namespace gdp::capsule {

namespace {

std::string encode_value(BytesView b) { return hex_encode(b); }

Result<crypto::PublicKey> decode_key_pair(const std::map<std::string, std::string>& pairs,
                                          std::string_view key) {
  auto it = pairs.find(std::string(key));
  if (it == pairs.end()) {
    return make_error(Errc::kInvalidArgument, "metadata missing " + std::string(key));
  }
  auto raw = hex_decode(it->second);
  if (!raw) return make_error(Errc::kInvalidArgument, "metadata key not hex");
  auto pk = crypto::PublicKey::decode(*raw);
  if (!pk) return make_error(Errc::kInvalidArgument, "metadata key not a curve point");
  return *pk;
}

}  // namespace

Result<Metadata> Metadata::create(const crypto::PrivateKey& owner_key,
                                  const crypto::PublicKey& writer_key,
                                  WriterMode mode, std::string label,
                                  std::int64_t created_ns,
                                  std::map<std::string, std::string> extra) {
  for (std::string_view reserved :
       {kMetaKeyWriterKey, kMetaKeyOwnerKey, kMetaKeyMode, kMetaKeyLabel, kMetaKeyCreated}) {
    if (extra.contains(std::string(reserved))) {
      return make_error(Errc::kInvalidArgument,
                        "extra metadata uses reserved key " + std::string(reserved));
    }
  }
  Metadata m;
  m.pairs_ = std::move(extra);
  m.pairs_[std::string(kMetaKeyWriterKey)] = encode_value(writer_key.encode());
  m.pairs_[std::string(kMetaKeyOwnerKey)] = encode_value(owner_key.public_key().encode());
  m.pairs_[std::string(kMetaKeyMode)] =
      std::to_string(static_cast<int>(mode));
  m.pairs_[std::string(kMetaKeyLabel)] = std::move(label);
  m.pairs_[std::string(kMetaKeyCreated)] = std::to_string(created_ns);

  m.owner_sig_ = owner_key.sign(m.canonical_pairs());
  m.writer_key_ = writer_key;
  m.owner_key_ = owner_key.public_key();
  m.mode_ = mode;
  m.name_ = crypto::digest_to_name(crypto::sha256(m.serialize()));
  return m;
}

Bytes Metadata::canonical_pairs() const {
  // std::map iterates in sorted key order, giving a canonical encoding.
  Bytes out;
  put_varint(out, pairs_.size());
  for (const auto& [k, v] : pairs_) {
    put_length_prefixed(out, to_bytes(k));
    put_length_prefixed(out, to_bytes(v));
  }
  return out;
}

Bytes Metadata::serialize() const {
  Bytes out = canonical_pairs();
  append(out, owner_sig_.encode());
  return out;
}

Result<Metadata> Metadata::deserialize(BytesView b) {
  if (b.size() < 64) return make_error(Errc::kInvalidArgument, "metadata too short");
  ByteReader r(b);
  auto count = r.get_varint();
  if (!count) return make_error(Errc::kInvalidArgument, "truncated metadata");
  if (*count > 10000) return make_error(Errc::kInvalidArgument, "implausible metadata size");
  Metadata m;
  std::string prev_key;
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto k = r.get_length_prefixed();
    auto v = r.get_length_prefixed();
    if (!k || !v) return make_error(Errc::kInvalidArgument, "truncated metadata pair");
    std::string key = to_string(*k);
    if (i > 0 && key <= prev_key) {
      return make_error(Errc::kInvalidArgument, "metadata pairs not canonical");
    }
    prev_key = key;
    m.pairs_[key] = to_string(*v);
  }
  auto sig_bytes = r.get_bytes(64);
  if (!sig_bytes) return make_error(Errc::kInvalidArgument, "truncated metadata signature");
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed metadata signature");
  m.owner_sig_ = *sig;
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing metadata bytes");

  GDP_ASSIGN_OR_RETURN(crypto::PublicKey wk, decode_key_pair(m.pairs_, kMetaKeyWriterKey));
  GDP_ASSIGN_OR_RETURN(crypto::PublicKey ok, decode_key_pair(m.pairs_, kMetaKeyOwnerKey));
  m.writer_key_ = wk;
  m.owner_key_ = ok;
  auto mode_it = m.pairs_.find(std::string(kMetaKeyMode));
  if (mode_it == m.pairs_.end() ||
      (mode_it->second != "0" && mode_it->second != "1" &&
       mode_it->second != "2")) {
    return make_error(Errc::kInvalidArgument, "metadata missing or bad writer_mode");
  }
  m.mode_ = mode_it->second == "0"   ? WriterMode::kStrictSingleWriter
            : mode_it->second == "1" ? WriterMode::kQuasiSingleWriter
                                     : WriterMode::kMultiWriter;
  m.name_ = crypto::digest_to_name(crypto::sha256(m.serialize()));
  GDP_RETURN_IF_ERROR(m.verify());
  return m;
}

std::string_view Metadata::label() const {
  auto it = pairs_.find(std::string(kMetaKeyLabel));
  return it == pairs_.end() ? std::string_view{} : std::string_view(it->second);
}

std::optional<std::string> Metadata::get(std::string_view key) const {
  auto it = pairs_.find(std::string(key));
  if (it == pairs_.end()) return std::nullopt;
  return it->second;
}

Status Metadata::verify() const {
  if (!owner_key_) return make_error(Errc::kInternal, "metadata missing owner key");
  if (!owner_key_->verify(canonical_pairs(), owner_sig_)) {
    return make_error(Errc::kVerificationFailed, "owner signature over metadata invalid");
  }
  return ok_status();
}

}  // namespace gdp::capsule
