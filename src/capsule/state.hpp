// Validated in-memory DataCapsule state: the generalized ADS validator.
//
// A CapsuleState ingests records in *any* order (appends "can be easily
// forwarded as is to all the DataCapsule-servers in arbitrary order",
// §VI-A), verifying writer signatures, payload hashes, hash-pointer
// linkage and seqno consistency.  Records whose parents have not arrived
// yet are held detached — the paper's transient 'holes' — and attach
// automatically when the missing parents show up, so anti-entropy can
// repair in the background.
//
// The state is a grow-only DAG keyed by record hash: a Conflict-Free
// Replicated Data Type (the paper notes a DataCapsule "meets the
// definition" of a CRDT), so replicas converge regardless of delivery
// order.  Branches (two records sharing a parent) are representable; in
// SSW mode they are flagged as writer equivocation, in QSW mode they are
// expected and expose multiple heads for later merging.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "capsule/credential.hpp"
#include "capsule/hashtree.hpp"
#include "capsule/heartbeat.hpp"
#include "capsule/metadata.hpp"
#include "capsule/record.hpp"

namespace gdp::capsule {

class CapsuleState {
 public:
  explicit CapsuleState(Metadata metadata);

  const Metadata& metadata() const { return metadata_; }
  const Name& name() const { return metadata_.name(); }

  /// Installs a memoizing signature checker (trust::cached_verify bound to
  /// a VerifyCache) used for multi-writer credential verification.  A null
  /// checker falls back to raw ECDSA verifies.
  void set_credential_checker(SigChecker checker) { checker_ = std::move(checker); }
  const SigChecker& credential_checker() const { return checker_; }

  /// Validates and adds a record.  Idempotent: re-ingesting an already
  /// known record succeeds.  A record whose parents are missing is held
  /// detached and reported via holes(); ingest still succeeds.
  /// `policy` lets the sync-flood path skip the per-record signature
  /// check after a batch verification already accepted it.
  Status ingest(const Record& record, SigPolicy policy = SigPolicy::kVerify);

  bool contains(const RecordHash& hash) const;
  /// True if the record is attached *or* held detached (bytes present).
  bool known(const RecordHash& hash) const;
  std::optional<Record> get_by_hash(const RecordHash& hash) const;

  /// The record at `seqno` on the canonical chain (see tip()).
  std::optional<Record> get_by_seqno(std::uint64_t seqno) const;

  /// All attached records at `seqno` (more than one only under branches).
  std::vector<Record> all_at_seqno(std::uint64_t seqno) const;

  /// Hash of the canonical tip: the attached head with the highest seqno
  /// (ties broken by smallest hash, deterministically).  Returns the
  /// capsule name when empty.
  RecordHash tip_hash() const;
  std::uint64_t tip_seqno() const;

  /// All attached heads (records without attached children).  Size > 1
  /// indicates a branch.
  std::vector<RecordHash> heads() const;
  bool has_branch() const { return branched_; }

  /// Record hashes referenced by detached records but not present — the
  /// 'holes' that anti-entropy must repair.
  std::vector<RecordHash> holes() const;
  std::size_t detached_count() const;

  /// Number of attached (fully validated) records.
  std::size_t size() const { return by_hash_.size(); }

  /// Attached records in (seqno, hash) order — the sync/export order.
  std::vector<Record> export_records() const;

  /// Attached records NOT on the canonical chain — the losing sides of
  /// multi-writer races.  Readers merge them (deterministically, by
  /// (seqno, hash)) to see every writer's data, not just the race winners.
  std::vector<Record> branch_records() const;

  /// Merkle summary of the canonical chain, kept in lock-step with the
  /// canonical cache (incremental on tip extension, resynced on rebuild).
  /// Anti-entropy compares roots/subtrees instead of flooding records.
  const HashTree& tree() const;

  /// Verifies a heartbeat against this state: signature must check out
  /// and the attested record must be present (or seqno 0 / empty).
  Status check_heartbeat(const Heartbeat& hb) const;

 private:
  struct Attached {
    Record record;
  };

  /// Validates linkage of a record whose parents are all attached.
  Status validate_attached(const Record& record) const;
  void attach(const Record& record);
  void try_attach_dependents(const RecordHash& new_hash);
  void rebuild_canonical() const;
  std::uint64_t tip_seqno_unlocked() const;
  std::uint64_t canonical_seqno_unlocked() const;

  Metadata metadata_;
  SigChecker checker_;  // null => raw verify; see set_credential_checker
  std::unordered_map<Name, Attached> by_hash_;
  std::map<std::uint64_t, std::vector<RecordHash>> by_seqno_;
  std::unordered_map<Name, std::size_t> child_count_;  // attached children per record
  // Detached records waiting for a missing parent hash.
  std::unordered_map<Name, std::vector<Record>> waiting_on_;
  std::unordered_set<Name> detached_hashes_;
  bool branched_ = false;

  // Canonical chain cache: seqno -> hash along the path from tip to root.
  mutable std::map<std::uint64_t, RecordHash> canonical_;
  mutable RecordHash canonical_tip_;
  mutable bool canonical_dirty_ = false;
  // Merkle summary of canonical_; mutable because the rebuild is lazy.
  mutable HashTree tree_;
};

}  // namespace gdp::capsule
