// Signed heartbeats (§V-A).
//
// A heartbeat is the writer's signed attestation of the capsule's most
// recent record.  Because every record hash transitively covers all
// earlier records through hash-pointers, "each signed heartbeat
// effectively attests the entire history of updates (both the content and
// the ordering)".  Read queries are verified against a particular state
// of the data structure identified by a heartbeat.
#pragma once

#include <cstdint>

#include "capsule/record.hpp"
#include "common/name.hpp"
#include "crypto/keys.hpp"

namespace gdp::capsule {

struct Heartbeat {
  Name capsule_name;
  std::uint64_t seqno = 0;   ///< seqno of the attested record (0 = empty capsule)
  RecordHash record_hash;    ///< == capsule name when seqno == 0
  crypto::Signature writer_sig{};  ///< writer's signature over the record hash

  static Heartbeat make(const Name& capsule, std::uint64_t seqno,
                        const RecordHash& hash, const crypto::PrivateKey& writer);

  /// A record's writer signature *is* a heartbeat for that record — the
  /// record hash transitively covers the capsule name, the seqno and all
  /// earlier history, so DataCapsule-servers can synthesize the freshest
  /// heartbeat from their tip record without any writer round-trip.
  /// (capsule_name and seqno are unauthenticated routing hints; verifiers
  /// must take both from a header that hashes to record_hash.)
  static Heartbeat from_record(const Record& record);

  Status verify(const crypto::PublicKey& writer) const;

  Bytes serialize() const;
  static Result<Heartbeat> deserialize(BytesView b);

  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

}  // namespace gdp::capsule
