#include "capsule/proof.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/varint.hpp"

namespace gdp::capsule {

namespace {

Bytes serialize_headers(const std::vector<RecordHeader>& headers) {
  Bytes out;
  put_varint(out, headers.size());
  for (const RecordHeader& h : headers) put_length_prefixed(out, h.serialize());
  return out;
}

Result<std::vector<RecordHeader>> deserialize_headers(ByteReader& r) {
  auto count = r.get_varint();
  if (!count) return make_error(Errc::kInvalidArgument, "truncated header list");
  if (*count > 1u << 20) return make_error(Errc::kInvalidArgument, "implausible header count");
  std::vector<RecordHeader> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto bytes = r.get_length_prefixed();
    if (!bytes) return make_error(Errc::kInvalidArgument, "truncated header");
    GDP_ASSIGN_OR_RETURN(RecordHeader h, RecordHeader::deserialize(*bytes));
    out.push_back(std::move(h));
  }
  return out;
}

/// DFS from `from` down to `target` along hash-pointers, preferring the
/// smallest seqno >= target's (the longest skip), which yields near-minimal
/// paths for chain, skip-list and checkpoint layouts alike.
Result<std::vector<RecordHeader>> find_path(const CapsuleState& state,
                                            const RecordHash& from,
                                            const RecordHash& target,
                                            std::uint64_t target_seqno) {
  struct Frame {
    RecordHash hash;
    std::vector<HashPtr> candidates;  // sorted, next to try at back()
  };
  auto expand = [&](const RecordHash& h) -> Result<Frame> {
    auto rec = state.get_by_hash(h);
    if (!rec) return make_error(Errc::kNotFound, "record missing while building proof");
    Frame f;
    f.hash = h;
    for (const HashPtr& p : rec->header.ptrs) {
      if (p.seqno >= target_seqno && p.seqno != 0) f.candidates.push_back(p);
    }
    // Try the smallest seqno first => keep it at the back.
    std::sort(f.candidates.begin(), f.candidates.end(),
              [](const HashPtr& a, const HashPtr& b) { return a.seqno > b.seqno; });
    return f;
  };

  std::vector<Frame> stack;
  std::unordered_set<Name> visited;
  GDP_ASSIGN_OR_RETURN(Frame root, expand(from));
  stack.push_back(std::move(root));
  visited.insert(from);

  while (!stack.empty()) {
    if (stack.back().hash == target) {
      std::vector<RecordHeader> path;
      for (const Frame& f : stack) {
        auto rec = state.get_by_hash(f.hash);
        path.push_back(rec->header);
      }
      return path;
    }
    if (stack.back().candidates.empty()) {
      stack.pop_back();
      continue;
    }
    HashPtr next = stack.back().candidates.back();
    stack.back().candidates.pop_back();
    if (!visited.insert(next.hash).second) continue;
    GDP_ASSIGN_OR_RETURN(Frame f, expand(next.hash));
    stack.push_back(std::move(f));
  }
  return make_error(Errc::kNotFound,
                    "no hash-pointer path from heartbeat to target (different branch?)");
}

Status verify_header_path(const Metadata& metadata, const Heartbeat& heartbeat,
                          const std::vector<RecordHeader>& path,
                          const RecordHash& target_hash) {
  GDP_RETURN_IF_ERROR(heartbeat.verify(metadata.writer_key()));
  if (heartbeat.seqno == 0) {
    return make_error(Errc::kVerificationFailed,
                      "cannot prove records against an empty-capsule heartbeat");
  }
  if (path.empty()) {
    return make_error(Errc::kVerificationFailed, "empty proof path");
  }
  if (path.front().hash() != heartbeat.record_hash) {
    return make_error(Errc::kVerificationFailed,
                      "proof path does not start at the heartbeat record");
  }
  for (const RecordHeader& h : path) {
    if (h.capsule_name != metadata.name()) {
      return make_error(Errc::kVerificationFailed, "proof header from another capsule");
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const RecordHash next_hash = path[i + 1].hash();
    bool linked = false;
    for (const HashPtr& p : path[i].ptrs) {
      if (p.hash == next_hash && p.seqno == path[i + 1].seqno) {
        linked = true;
        break;
      }
    }
    if (!linked) {
      return make_error(Errc::kVerificationFailed,
                        "consecutive proof headers are not hash-linked");
    }
  }
  if (path.back().hash() != target_hash) {
    return make_error(Errc::kVerificationFailed, "proof path does not end at the target");
  }
  return ok_status();
}

}  // namespace

Bytes MembershipProof::serialize() const { return serialize_headers(path); }

Result<MembershipProof> MembershipProof::deserialize(BytesView b) {
  ByteReader r(b);
  GDP_ASSIGN_OR_RETURN(std::vector<RecordHeader> path, deserialize_headers(r));
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing proof bytes");
  MembershipProof p;
  p.path = std::move(path);
  return p;
}

std::size_t MembershipProof::size_bytes() const { return serialize().size(); }

Result<MembershipProof> build_membership_proof(const CapsuleState& state,
                                               const Heartbeat& heartbeat,
                                               const RecordHash& target_hash) {
  GDP_RETURN_IF_ERROR(state.check_heartbeat(heartbeat));
  auto target = state.get_by_hash(target_hash);
  if (!target) return make_error(Errc::kNotFound, "target record unknown");
  if (heartbeat.seqno == 0) {
    return make_error(Errc::kFailedPrecondition, "heartbeat attests an empty capsule");
  }
  GDP_ASSIGN_OR_RETURN(
      std::vector<RecordHeader> path,
      find_path(state, heartbeat.record_hash, target_hash, target->header.seqno));
  MembershipProof proof;
  proof.path = std::move(path);
  return proof;
}

Status verify_membership_proof(const Metadata& metadata, const Heartbeat& heartbeat,
                               const MembershipProof& proof,
                               const RecordHash& target_hash) {
  if (metadata.mode() == WriterMode::kMultiWriter) {
    return make_error(Errc::kFailedPrecondition,
                      "membership proofs are header-only and cannot carry "
                      "multi-writer credentials; use a range proof");
  }
  return verify_header_path(metadata, heartbeat, proof.path, target_hash);
}

Bytes RangeProof::serialize() const {
  Bytes out;
  put_varint(out, records.size());
  for (const Record& r : records) put_length_prefixed(out, r.serialize());
  append(out, serialize_headers(link_path));
  return out;
}

Result<RangeProof> RangeProof::deserialize(BytesView b) {
  ByteReader r(b);
  auto count = r.get_varint();
  if (!count) return make_error(Errc::kInvalidArgument, "truncated range proof");
  if (*count > 1u << 20) return make_error(Errc::kInvalidArgument, "implausible record count");
  RangeProof p;
  p.records.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto bytes = r.get_length_prefixed();
    if (!bytes) return make_error(Errc::kInvalidArgument, "truncated range record");
    GDP_ASSIGN_OR_RETURN(Record rec, Record::deserialize(*bytes));
    p.records.push_back(std::move(rec));
  }
  GDP_ASSIGN_OR_RETURN(p.link_path, deserialize_headers(r));
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing range proof bytes");
  return p;
}

std::size_t RangeProof::size_bytes() const { return serialize().size(); }

Result<RangeProof> build_range_proof(const CapsuleState& state,
                                     const Heartbeat& heartbeat,
                                     std::uint64_t first_seqno,
                                     std::uint64_t last_seqno) {
  if (first_seqno == 0 || first_seqno > last_seqno) {
    return make_error(Errc::kInvalidArgument, "bad range bounds");
  }
  GDP_RETURN_IF_ERROR(state.check_heartbeat(heartbeat));
  RangeProof proof;
  for (std::uint64_t s = first_seqno; s <= last_seqno; ++s) {
    auto rec = state.get_by_seqno(s);
    if (!rec) return make_error(Errc::kNotFound, "range record missing");
    proof.records.push_back(std::move(*rec));
  }
  GDP_ASSIGN_OR_RETURN(
      std::vector<RecordHeader> link,
      find_path(state, heartbeat.record_hash, proof.records.back().hash(), last_seqno));
  proof.link_path = std::move(link);
  return proof;
}

MembershipProof membership_from_range(const RangeProof& proof) {
  MembershipProof out;
  out.path = proof.link_path;
  return out;
}

Status verify_range_proof(const Metadata& metadata, const Heartbeat& heartbeat,
                          const RangeProof& proof, std::uint64_t first_seqno,
                          std::uint64_t last_seqno, const SigChecker& checker) {
  if (first_seqno == 0 || first_seqno > last_seqno) {
    return make_error(Errc::kInvalidArgument, "bad range bounds");
  }
  if (proof.records.size() != last_seqno - first_seqno + 1) {
    return make_error(Errc::kVerificationFailed, "range record count mismatch");
  }
  if (metadata.mode() == WriterMode::kMultiWriter) {
    // Header-only link paths cannot resolve per-branch credentials (they
    // travel in payloads), so MW ranges must anchor at the attested tip:
    // the heartbeat signature verifies under the tip record's credential,
    // and the range self-verifies backwards from there.
    const Record& tip = proof.records.back();
    if (heartbeat.record_hash != tip.hash() || heartbeat.seqno != tip.header.seqno) {
      return make_error(Errc::kVerificationFailed,
                        "multi-writer range proof must end at the heartbeat record");
    }
    GDP_ASSIGN_OR_RETURN(crypto::PublicKey tip_key,
                         record_writer_key(metadata, tip, checker));
    GDP_RETURN_IF_ERROR(heartbeat.verify(tip_key));
  } else {
    // The link path authenticates the newest record in the range...
    GDP_RETURN_IF_ERROR(verify_header_path(metadata, heartbeat, proof.link_path,
                                           proof.records.back().hash()));
  }
  // ...and the range self-verifies backwards from it.
  for (std::size_t i = 0; i < proof.records.size(); ++i) {
    const Record& rec = proof.records[i];
    if (rec.header.capsule_name != metadata.name()) {
      return make_error(Errc::kVerificationFailed, "range record from another capsule");
    }
    if (rec.header.seqno != first_seqno + i) {
      return make_error(Errc::kVerificationFailed, "range records not contiguous");
    }
    GDP_ASSIGN_OR_RETURN(crypto::PublicKey writer,
                         record_writer_key(metadata, rec, checker));
    GDP_RETURN_IF_ERROR(rec.verify_standalone(writer));
    if (i + 1 < proof.records.size()) {
      const RecordHash h = rec.hash();
      bool linked = false;
      for (const HashPtr& p : proof.records[i + 1].header.ptrs) {
        if (p.hash == h && p.seqno == rec.header.seqno) {
          linked = true;
          break;
        }
      }
      if (!linked) {
        return make_error(Errc::kVerificationFailed,
                          "range records are not hash-linked");
      }
    }
  }
  return ok_status();
}

}  // namespace gdp::capsule
