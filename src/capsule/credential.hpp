// Per-branch writer credentials for multi-writer capsules (CapsuleFS).
//
// A strict/quasi single-writer capsule authenticates every record against
// the one writer key named in the metadata.  A kMultiWriter capsule
// instead lets the capsule *owner* delegate write authority to any number
// of branch writers: each delegation is a WriterCredential — (capsule,
// writer pubkey, branch label, validity window) signed by the owner key —
// and every record's payload is an *envelope* that carries the credential
// ahead of the application payload.  Verifiers resolve the record's
// effective writer key from the envelope and check the credential against
// the owner key in the metadata, evaluated at the record's own
// timestamp_ns so replay verdicts are deterministic (no wall clock).
//
// This module lives in `capsule` (below `trust`) so CapsuleState and the
// proof verifiers can use it; signature memoization is injected through a
// SigChecker hook that server/client bind to their trust::VerifyCache.
#pragma once

#include <functional>
#include <string>

#include "capsule/metadata.hpp"
#include "capsule/record.hpp"
#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace gdp::capsule {

/// Signature-verdict hook with the shape of trust::cached_verify:
/// (issuer key, signed payload, signature, verdict expiry ns, now ns) ->
/// verified.  A null checker falls back to a raw ECDSA verify.
using SigChecker =
    std::function<bool(const crypto::PublicKey& issuer, BytesView payload,
                       const crypto::Signature& sig, std::int64_t expires_ns,
                       std::int64_t now_ns)>;

/// Owner-signed delegation of write authority over one capsule to one
/// branch writer key, bounded in time.
struct WriterCredential {
  Name capsule;                     ///< binds the credential to one capsule
  Bytes writer_pubkey;              ///< encoded branch writer public key
  std::string branch;               ///< human-readable branch label
  std::int64_t not_before_ns = 0;   ///< validity window (inclusive)
  std::int64_t not_after_ns = 0;
  crypto::Signature owner_sig{};    ///< owner key over signed_payload()

  /// Canonical bytes the owner signs (domain-separated).
  Bytes signed_payload() const;

  Bytes serialize() const;
  static Result<WriterCredential> deserialize(BytesView b);

  /// Decodes writer_pubkey to a curve point.
  Result<crypto::PublicKey> writer_key() const;

  /// Owner signature + validity window at `at_ns` (the record timestamp,
  /// so verification replays identically on every replica).
  Status verify(const crypto::PublicKey& owner, std::int64_t at_ns,
                const SigChecker& checker = nullptr) const;

  friend bool operator==(const WriterCredential&, const WriterCredential&) = default;
};

/// Builds and owner-signs a credential for `writer` on `capsule`.
WriterCredential make_writer_credential(const crypto::PrivateKey& owner_key,
                                        const Name& capsule,
                                        const crypto::PublicKey& writer,
                                        std::string branch,
                                        std::int64_t not_before_ns,
                                        std::int64_t not_after_ns);

/// Multi-writer record payloads are envelopes: length-prefixed serialized
/// credential followed by the application payload.
Bytes wrap_mw_payload(const WriterCredential& credential, BytesView inner);

struct MwPayload {
  WriterCredential credential;
  Bytes inner;  ///< the application payload
};

/// Splits an MW envelope back into credential + inner payload.  Does not
/// verify the credential — use record_writer_key / verify on the result.
Result<MwPayload> open_mw_payload(BytesView envelope);

/// Resolves the key a record's signature must verify under.  SSW/QSW:
/// the metadata writer key.  MW: the credential carried in the record's
/// envelope, checked against the owner key at the record's timestamp.
Result<crypto::PublicKey> record_writer_key(const Metadata& metadata,
                                            const Record& record,
                                            const SigChecker& checker = nullptr);

}  // namespace gdp::capsule
