// Cross-capsule timeline entanglement (§VI-C: "updates across
// DataCapsules can be ordered using entanglement schemes described by
// [Maniatis & Baker, Secure history preservation through timeline
// entanglement]").
//
// A writer embeds another capsule's current heartbeat into one of its own
// records.  Because the embedding record is itself hash-chained and
// signed, this creates a verifiable happened-after relation across
// capsules: anyone holding both capsules' metadata can prove that the
// embedding record was created no earlier than the embedded state — no
// trusted timestamps, no coordination between the writers.
#pragma once

#include "capsule/proof.hpp"

namespace gdp::capsule {

/// A claim that some other capsule had reached (seqno, record_hash).
struct Entanglement {
  Name other_capsule;
  std::uint64_t seqno = 0;
  RecordHash record_hash;  ///< the other capsule's record (or name if empty)

  /// Builds the claim from a heartbeat of the other capsule.
  static Entanglement from_heartbeat(const Heartbeat& hb);

  /// Payload-embeddable encoding (applications typically append their own
  /// data after it).
  Bytes serialize() const;
  static Result<Entanglement> deserialize(BytesView b);

  friend bool operator==(const Entanglement&, const Entanglement&) = default;
};

/// Verifies the happened-after relation end-to-end:
///   * `embedding_proof` shows the record carrying the entanglement is in
///     `host` capsule's history (attested by `host_hb`);
///   * the record's payload must begin with the serialized entanglement;
///   * `other_proof` shows the entangled record is in `other` capsule's
///     history (attested by `other_hb`).
/// On success: the host record provably post-dates the entangled state of
/// the other capsule.
Status verify_entanglement(const Entanglement& ent,
                           const Metadata& host, const Heartbeat& host_hb,
                           const Record& embedding_record,
                           const MembershipProof& embedding_proof,
                           const Metadata& other, const Heartbeat& other_hb,
                           const MembershipProof& other_proof);

}  // namespace gdp::capsule
