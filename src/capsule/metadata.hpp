// DataCapsule metadata (§V-A).
//
// Metadata is "a special record at the beginning of a DataCapsule": a list
// of key-value pairs signed by the DataCapsule-owner, describing immutable
// properties — most importantly the single writer's public signature key
// and the owner's public key.  The capsule's globally unique flat name is
// the SHA-256 hash of the serialized (signed) metadata, which makes it a
// cryptographic trust anchor for everything related to the capsule.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace gdp::capsule {

/// Writer operating mode (§VI-C).
enum class WriterMode : std::uint8_t {
  kStrictSingleWriter = 0,  ///< SSW: linear chain; sequential consistency
  kQuasiSingleWriter = 1,   ///< QSW: rare concurrent writers; branches allowed
  kMultiWriter = 2,         ///< MW: per-record writer credentials delegated by
                            ///< the owner (CapsuleFS directories); records are
                            ///< credential envelopes, branches expected
};

/// Well-known metadata keys.  Applications may add arbitrary extra pairs.
inline constexpr std::string_view kMetaKeyWriterKey = "writer_pubkey";
inline constexpr std::string_view kMetaKeyOwnerKey = "owner_pubkey";
inline constexpr std::string_view kMetaKeyMode = "writer_mode";
inline constexpr std::string_view kMetaKeyLabel = "label";
inline constexpr std::string_view kMetaKeyCreated = "created_ns";

class Metadata {
 public:
  /// Builds and owner-signs metadata.  `extra` pairs must not use the
  /// reserved keys above.
  static Result<Metadata> create(const crypto::PrivateKey& owner_key,
                                 const crypto::PublicKey& writer_key,
                                 WriterMode mode, std::string label,
                                 std::int64_t created_ns,
                                 std::map<std::string, std::string> extra = {});

  Bytes serialize() const;
  static Result<Metadata> deserialize(BytesView b);

  /// The capsule's flat name: SHA-256 over the serialized signed metadata.
  const Name& name() const { return name_; }

  const crypto::PublicKey& writer_key() const { return *writer_key_; }
  const crypto::PublicKey& owner_key() const { return *owner_key_; }
  WriterMode mode() const { return mode_; }
  std::string_view label() const;

  /// Looks up any pair (including reserved ones, hex-encoded for keys).
  std::optional<std::string> get(std::string_view key) const;

  /// Verifies the owner's signature over the canonical pair serialization.
  Status verify() const;

 private:
  Metadata() = default;
  Bytes canonical_pairs() const;

  std::map<std::string, std::string> pairs_;
  crypto::Signature owner_sig_{};
  // Decoded caches (pairs_ stays authoritative for serialization).
  std::optional<crypto::PublicKey> writer_key_;
  std::optional<crypto::PublicKey> owner_key_;
  WriterMode mode_ = WriterMode::kStrictSingleWriter;
  Name name_;
};

}  // namespace gdp::capsule
