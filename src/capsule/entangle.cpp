#include "capsule/entangle.hpp"

#include "common/varint.hpp"

namespace gdp::capsule {

namespace {
constexpr std::string_view kTag = "gdp.entangle.v1";
}

Entanglement Entanglement::from_heartbeat(const Heartbeat& hb) {
  return Entanglement{hb.capsule_name, hb.seqno, hb.record_hash};
}

Bytes Entanglement::serialize() const {
  Bytes out = to_bytes(kTag);
  append(out, other_capsule.view());
  put_fixed64(out, seqno);
  append(out, record_hash.view());
  return out;
}

Result<Entanglement> Entanglement::deserialize(BytesView b) {
  ByteReader r(b);
  auto tag = r.get_bytes(kTag.size());
  if (!tag || to_string(*tag) != kTag) {
    return make_error(Errc::kInvalidArgument, "bad entanglement tag");
  }
  auto name = r.get_bytes(Name::kSize);
  auto seqno = r.get_fixed64();
  auto hash = r.get_bytes(Name::kSize);
  if (!name || !seqno || !hash) {
    return make_error(Errc::kInvalidArgument, "truncated entanglement");
  }
  Entanglement ent;
  ent.other_capsule = *Name::from_bytes(*name);
  ent.seqno = *seqno;
  ent.record_hash = *Name::from_bytes(*hash);
  return ent;
}

Status verify_entanglement(const Entanglement& ent,
                           const Metadata& host, const Heartbeat& host_hb,
                           const Record& embedding_record,
                           const MembershipProof& embedding_proof,
                           const Metadata& other, const Heartbeat& other_hb,
                           const MembershipProof& other_proof) {
  if (ent.other_capsule != other.name()) {
    return make_error(Errc::kVerificationFailed,
                      "entanglement names a different capsule");
  }
  // 1. The embedding record really is in the host capsule's history.
  GDP_RETURN_IF_ERROR(verify_membership_proof(host, host_hb, embedding_proof,
                                              embedding_record.hash()));
  GDP_RETURN_IF_ERROR(embedding_record.verify_standalone(host.writer_key()));
  // 2. The embedding record's payload opens with exactly this claim.
  Bytes expected = ent.serialize();
  if (embedding_record.payload.size() < expected.size() ||
      !std::equal(expected.begin(), expected.end(),
                  embedding_record.payload.begin())) {
    return make_error(Errc::kVerificationFailed,
                      "record payload does not carry this entanglement");
  }
  // 3. The entangled state is genuine history of the other capsule.
  GDP_RETURN_IF_ERROR(
      verify_membership_proof(other, other_hb, other_proof, ent.record_hash));
  if (other_proof.path.back().seqno != ent.seqno) {
    return make_error(Errc::kVerificationFailed,
                      "entangled seqno disagrees with the proven record");
  }
  return ok_status();
}

}  // namespace gdp::capsule
