#include "capsule/hashtree.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace gdp::capsule {

namespace {

// Deepest interior level the empty-hash memo supports: kLeafSpan *
// kFanout^12 seqnos is ~2^52, far beyond any real capsule.
constexpr std::size_t kMaxLevels = 13;

std::size_t level_of_span(std::uint64_t span) {
  std::size_t level = 0;
  std::uint64_t s = HashTree::kLeafSpan;
  while (s < span) {
    s *= HashTree::kFanout;
    ++level;
  }
  assert(s == span);
  return level;
}

}  // namespace

const crypto::Digest& HashTree::empty_hash(std::size_t level) {
  static const std::vector<crypto::Digest> memo = [] {
    std::vector<crypto::Digest> out;
    crypto::Sha256 h;
    h.update(to_bytes("gdp.ht.leaf"));
    const Bytes zeros(kLeafSpan * Name::kSize, 0);
    h.update(zeros);
    out.push_back(h.finish());
    for (std::size_t l = 1; l < kMaxLevels; ++l) {
      crypto::Sha256 n;
      n.update(to_bytes("gdp.ht.node"));
      for (std::uint64_t c = 0; c < kFanout; ++c) {
        n.update(BytesView(out[l - 1].data(), out[l - 1].size()));
      }
      out.push_back(n.finish());
    }
    return out;
  }();
  assert(level < memo.size());
  return memo[level];
}

void HashTree::set_leaf(std::uint64_t seqno, const Name& record_hash) {
  assert(seqno >= 1);
  const std::uint64_t idx = seqno - 1;
  if (idx >= leaves_.size()) leaves_.resize(idx + 1);
  Name& slot = leaves_[idx];
  if (slot == record_hash) {
    if (seqno > tip_) tip_ = seqno;  // re-asserted leaf can still raise the tip
    return;
  }
  const std::uint64_t bucket = idx / kLeafSpan;
  if (bucket >= bucket_dirty_.size()) {
    bucket_dirty_.resize(bucket + 1, 1);
    bucket_hash_.resize(bucket + 1);
    bucket_count_.resize(bucket + 1, 0);
  }
  if (slot.is_zero() && !record_hash.is_zero()) {
    ++bucket_count_[bucket];
    ++present_;
  } else if (!slot.is_zero() && record_hash.is_zero()) {
    --bucket_count_[bucket];
    --present_;
  }
  slot = record_hash;
  bucket_dirty_[bucket] = 1;
  if (seqno > tip_) tip_ = seqno;
}

void HashTree::truncate(std::uint64_t new_tip) {
  if (new_tip >= tip_) return;
  for (std::uint64_t idx = new_tip; idx < leaves_.size(); ++idx) {
    if (leaves_[idx].is_zero()) continue;
    leaves_[idx] = Name{};
    const std::uint64_t bucket = idx / kLeafSpan;
    --bucket_count_[bucket];
    --present_;
    bucket_dirty_[bucket] = 1;
  }
  leaves_.resize(new_tip);
  tip_ = new_tip;
}

void HashTree::clear() {
  leaves_.clear();
  bucket_hash_.clear();
  bucket_dirty_.clear();
  bucket_count_.clear();
  tip_ = 0;
  present_ = 0;
}

bool HashTree::range_empty(std::uint64_t first, std::uint64_t last) const {
  if (present_ == 0 || first > leaves_.size()) return true;
  const std::uint64_t from_bucket = (first - 1) / kLeafSpan;
  const std::uint64_t to_bucket = (last - 1) / kLeafSpan;
  for (std::uint64_t b = from_bucket;
       b <= to_bucket && b < bucket_count_.size(); ++b) {
    if (bucket_count_[b] == 0) continue;
    // Exchange ranges are bucket-aligned, so a populated bucket in range
    // means a populated leaf in range; the precise check below only
    // matters for unaligned queries.
    const std::uint64_t bucket_first = b * kLeafSpan + 1;
    if (bucket_first >= first && bucket_first + kLeafSpan - 1 <= last) {
      return false;
    }
    for (std::uint64_t s = std::max(first, bucket_first);
         s <= std::min(last, bucket_first + kLeafSpan - 1); ++s) {
      if (s - 1 < leaves_.size() && !leaves_[s - 1].is_zero()) return false;
    }
  }
  return true;
}

bool HashTree::range_full(std::uint64_t first, std::uint64_t last) const {
  if (last < first) return true;
  if (first == 0 || last > leaves_.size()) return false;
  for (std::uint64_t s = first; s <= last;) {
    const std::uint64_t b = (s - 1) / kLeafSpan;
    const std::uint64_t bucket_first = b * kLeafSpan + 1;
    const std::uint64_t bucket_last = bucket_first + kLeafSpan - 1;
    if (bucket_first >= first && bucket_last <= last &&
        bucket_count_[b] == kLeafSpan) {
      s = bucket_last + 1;  // whole bucket present
      continue;
    }
    const std::uint64_t stop = std::min(last, bucket_last);
    for (; s <= stop; ++s) {
      if (leaves_[s - 1].is_zero()) return false;
    }
  }
  return true;
}

const crypto::Digest& HashTree::bucket_digest(std::uint64_t bucket) const {
  if (bucket >= bucket_hash_.size() || bucket_count_[bucket] == 0) {
    // Never-touched or fully-cleared bucket: the canonical empty digest.
    // (A cleared bucket's cache may be stale; count == 0 decides.)
    return empty_hash(0);
  }
  if (bucket_dirty_[bucket]) {
    crypto::Sha256 h;
    h.update(to_bytes("gdp.ht.leaf"));
    static const std::array<std::uint8_t, Name::kSize> kZeros{};
    for (std::uint64_t i = 0; i < kLeafSpan; ++i) {
      const std::uint64_t idx = bucket * kLeafSpan + i;
      if (idx < leaves_.size()) {
        h.update(leaves_[idx].view());
      } else {
        h.update(BytesView(kZeros.data(), kZeros.size()));
      }
    }
    bucket_hash_[bucket] = h.finish();
    bucket_dirty_[bucket] = 0;
  }
  return bucket_hash_[bucket];
}

crypto::Digest HashTree::range_hash(std::uint64_t first,
                                    std::uint64_t last) const {
  const std::uint64_t span = last - first + 1;
  if (span == kLeafSpan) return bucket_digest((first - 1) / kLeafSpan);
  const std::size_t level = level_of_span(span);
  if (range_empty(first, last)) return empty_hash(level);
  crypto::Sha256 h;
  h.update(to_bytes("gdp.ht.node"));
  const std::uint64_t child_span = span / kFanout;
  for (std::uint64_t c = 0; c < kFanout; ++c) {
    const crypto::Digest d =
        range_hash(first + c * child_span, first + (c + 1) * child_span - 1);
    h.update(BytesView(d.data(), d.size()));
  }
  return h.finish();
}

std::uint64_t HashTree::cover_span(std::uint64_t tip) {
  std::uint64_t span = kLeafSpan;
  while (span < tip) span *= kFanout;
  return span;
}

bool HashTree::is_aligned(std::uint64_t first, std::uint64_t last) {
  if (first == 0 || last < first) return false;
  const std::uint64_t span = last - first + 1;
  std::uint64_t s = kLeafSpan;
  for (std::size_t l = 0; l + 1 < kMaxLevels; ++l) {
    if (s == span) return (first - 1) % span == 0;
    s *= kFanout;
  }
  return false;
}

HashTree::Node HashTree::root() const {
  const std::uint64_t span = cover_span(tip_);
  return node(1, span);
}

HashTree::Node HashTree::node(std::uint64_t first, std::uint64_t last) const {
  assert(is_aligned(first, last));
  return Node{first, last, range_hash(first, last)};
}

std::vector<HashTree::Node> HashTree::children(std::uint64_t first,
                                               std::uint64_t last) const {
  std::vector<Node> out;
  if (is_leaf_range(first, last)) return out;
  const std::uint64_t child_span = (last - first + 1) / kFanout;
  out.reserve(kFanout);
  for (std::uint64_t c = 0; c < kFanout; ++c) {
    out.push_back(
        node(first + c * child_span, first + (c + 1) * child_span - 1));
  }
  return out;
}

}  // namespace gdp::capsule
