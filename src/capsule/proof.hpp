// Cryptographic read proofs (§V-A).
//
// "In addition to verifying entire history, a reader can also get
// cryptographic proofs for specific records from a DataCapsule in a
// similar way as the well-known Merkle hash trees."
//
// A MembershipProof connects one record to a trusted signed heartbeat by a
// descending path of record *headers* linked by hash-pointers; with the
// skip-list strategy the path is O(log n) headers.  A RangeProof exploits
// the self-verifying property of contiguous ranges ("a range of records in
// a linked-list design is self-verifying with respect to the newest record
// in the range"): it ships the full records of the range plus a header
// path from the heartbeat to the newest range record.
//
// Verifiers need only the capsule metadata (for the writer key — itself
// authenticated by the capsule name) and a heartbeat; no trust in the
// server that assembled the proof is required.
#pragma once

#include <vector>

#include "capsule/state.hpp"

namespace gdp::capsule {

struct MembershipProof {
  /// Headers from the heartbeat's record (front) down to the proven
  /// record (back); consecutive entries linked by a hash-pointer.
  std::vector<RecordHeader> path;

  Bytes serialize() const;
  static Result<MembershipProof> deserialize(BytesView b);

  /// Total serialized size — the proof-size metric in the hash-pointer
  /// ablation bench.
  std::size_t size_bytes() const;
};

/// Builds a proof that the record `target_hash` is part of the history
/// attested by `heartbeat`.  Fails if either end is unknown or no pointer
/// path exists (e.g. the target sits on a different branch).
Result<MembershipProof> build_membership_proof(const CapsuleState& state,
                                               const Heartbeat& heartbeat,
                                               const RecordHash& target_hash);

/// Verifies the proof; on success the back() header identifies the proven
/// record (check header.payload_hash against a fetched payload).
/// Multi-writer capsules are rejected: header-only paths cannot resolve
/// the per-branch credentials, which travel in record payloads.
Status verify_membership_proof(const Metadata& metadata, const Heartbeat& heartbeat,
                               const MembershipProof& proof,
                               const RecordHash& target_hash);

struct RangeProof {
  std::vector<Record> records;         ///< contiguous, ascending seqnos
  std::vector<RecordHeader> link_path; ///< heartbeat record down to records.back()

  Bytes serialize() const;
  static Result<RangeProof> deserialize(BytesView b);
  std::size_t size_bytes() const;
};

/// Builds a proof for canonical-chain records [first_seqno, last_seqno].
Result<RangeProof> build_range_proof(const CapsuleState& state,
                                     const Heartbeat& heartbeat,
                                     std::uint64_t first_seqno,
                                     std::uint64_t last_seqno);

/// Verifies contiguity, linkage to the heartbeat, payload hashes and the
/// writer signature on every range record.  For multi-writer capsules the
/// proof must *end at the heartbeat record* (ranges anchor at the tip):
/// each record's signature then verifies under the credential carried in
/// its own payload envelope, memoized through `checker` when provided.
Status verify_range_proof(const Metadata& metadata, const Heartbeat& heartbeat,
                          const RangeProof& proof, std::uint64_t first_seqno,
                          std::uint64_t last_seqno,
                          const SigChecker& checker = nullptr);

/// Extracts the membership proof of the range's newest record from a
/// range proof: the link path already connects the heartbeat to it, so a
/// networked reader can obtain membership proofs (e.g. for timeline
/// entanglement) from an ordinary ranged read.
MembershipProof membership_from_range(const RangeProof& proof);

}  // namespace gdp::capsule
