#include "capsule/strategy.hpp"

#include <algorithm>
#include <charconv>

namespace gdp::capsule {

namespace {

class ChainStrategy final : public HashPointerStrategy {
 public:
  std::vector<std::uint64_t> targets(std::uint64_t seqno) const override {
    return {seqno - 1};
  }
  std::uint64_t last_referencer(std::uint64_t seqno) const override {
    return seqno + 1;
  }
  std::string id() const override { return "chain"; }
};

class SkipListStrategy final : public HashPointerStrategy {
 public:
  std::vector<std::uint64_t> targets(std::uint64_t seqno) const override {
    std::vector<std::uint64_t> out{seqno - 1};
    for (std::uint64_t step = 2; step <= seqno && (seqno % step) == 0; step <<= 1) {
      if (seqno - step != seqno - 1) out.push_back(seqno - step);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  std::uint64_t last_referencer(std::uint64_t seqno) const override {
    if (seqno == 0) return seqno + 1;  // metadata hash is the capsule name
    // Record seqno + 2^i references seqno iff 2^i divides seqno; the
    // largest such power of two is the lowest set bit.
    return seqno + (seqno & (~seqno + 1));
  }
  std::string id() const override { return "skiplist"; }
};

class CheckpointStrategy final : public HashPointerStrategy {
 public:
  explicit CheckpointStrategy(std::uint64_t interval) : interval_(interval) {}

  std::vector<std::uint64_t> targets(std::uint64_t seqno) const override {
    std::vector<std::uint64_t> out;
    // Latest checkpoint strictly before seqno (record 0 = metadata counts).
    std::uint64_t checkpoint = ((seqno - 1) / interval_) * interval_;
    if (checkpoint != seqno - 1) out.push_back(checkpoint);
    out.push_back(seqno - 1);
    return out;
  }
  std::uint64_t last_referencer(std::uint64_t seqno) const override {
    // A checkpoint is referenced by every record until the next checkpoint.
    if (seqno % interval_ == 0) return seqno + interval_;
    return seqno + 1;
  }
  std::string id() const override { return "checkpoint:" + std::to_string(interval_); }

 private:
  std::uint64_t interval_;
};

}  // namespace

std::unique_ptr<HashPointerStrategy> make_chain_strategy() {
  return std::make_unique<ChainStrategy>();
}

std::unique_ptr<HashPointerStrategy> make_skiplist_strategy() {
  return std::make_unique<SkipListStrategy>();
}

std::unique_ptr<HashPointerStrategy> make_checkpoint_strategy(std::uint64_t interval) {
  if (interval == 0) interval = 1;
  return std::make_unique<CheckpointStrategy>(interval);
}

std::unique_ptr<HashPointerStrategy> strategy_from_id(std::string_view id) {
  if (id == "chain") return make_chain_strategy();
  if (id == "skiplist") return make_skiplist_strategy();
  constexpr std::string_view kPrefix = "checkpoint:";
  if (id.starts_with(kPrefix)) {
    std::uint64_t interval = 0;
    auto rest = id.substr(kPrefix.size());
    auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), interval);
    if (ec == std::errc{} && ptr == rest.data() + rest.size() && interval > 0) {
      return make_checkpoint_strategy(interval);
    }
  }
  return nullptr;
}

}  // namespace gdp::capsule
