#include "capsule/heartbeat.hpp"

#include "common/varint.hpp"
#include "crypto/sha256.hpp"

namespace gdp::capsule {

namespace {
crypto::Digest hash_digest(const RecordHash& h) {
  crypto::Digest d;
  std::copy(h.raw().begin(), h.raw().end(), d.begin());
  return d;
}
}  // namespace

Heartbeat Heartbeat::make(const Name& capsule, std::uint64_t seqno,
                          const RecordHash& hash, const crypto::PrivateKey& writer) {
  Heartbeat hb;
  hb.capsule_name = capsule;
  hb.seqno = seqno;
  hb.record_hash = hash;
  // The signature is over the record-hash digest — exactly the signature
  // the writer already placed on the record, so deterministic signing
  // makes Heartbeat::from_record() and make() interchangeable.
  hb.writer_sig = writer.sign_digest(hash_digest(hash));
  return hb;
}

Heartbeat Heartbeat::from_record(const Record& record) {
  Heartbeat hb;
  hb.capsule_name = record.header.capsule_name;
  hb.seqno = record.header.seqno;
  hb.record_hash = record.hash();
  hb.writer_sig = record.writer_sig;
  return hb;
}

Status Heartbeat::verify(const crypto::PublicKey& writer) const {
  if (!writer.verify_digest(hash_digest(record_hash), writer_sig)) {
    return make_error(Errc::kVerificationFailed, "heartbeat signature invalid");
  }
  return ok_status();
}

Bytes Heartbeat::serialize() const {
  Bytes out;
  append(out, capsule_name.view());
  put_fixed64(out, seqno);
  append(out, record_hash.view());
  append(out, writer_sig.encode());
  return out;
}

Result<Heartbeat> Heartbeat::deserialize(BytesView b) {
  ByteReader r(b);
  auto name = r.get_bytes(Name::kSize);
  auto seqno = r.get_fixed64();
  if (!name || !seqno) return make_error(Errc::kInvalidArgument, "truncated heartbeat");
  auto hash = r.get_bytes(Name::kSize);
  auto sig_bytes = r.get_bytes(64);
  if (!hash || !sig_bytes || !r.empty()) {
    return make_error(Errc::kInvalidArgument, "truncated heartbeat");
  }
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed heartbeat signature");
  Heartbeat hb;
  hb.capsule_name = *Name::from_bytes(*name);
  hb.seqno = *seqno;
  hb.record_hash = *Name::from_bytes(*hash);
  hb.writer_sig = *sig;
  return hb;
}

}  // namespace gdp::capsule
