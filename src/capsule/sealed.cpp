#include "capsule/sealed.hpp"

#include <cstring>

#include "common/varint.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace gdp::capsule {

namespace {
Bytes aad_for(const Name& capsule, std::uint64_t seqno) {
  Bytes aad = to_bytes("gdp.sealed.v1");
  append(aad, capsule.view());
  put_fixed64(aad, seqno);
  return aad;
}

crypto::Nonce96 nonce_for(std::uint64_t seqno) {
  crypto::Nonce96 nonce{};
  for (int i = 0; i < 8; ++i) nonce[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(seqno >> (8 * i));
  return nonce;
}
}  // namespace

ReadKey make_read_key(BytesView entropy) {
  Bytes stretched = crypto::derive_key(entropy, "gdp.readkey", 32);
  ReadKey key;
  std::memcpy(key.data(), stretched.data(), key.size());
  return key;
}

Bytes seal_payload(const ReadKey& key, const Name& capsule, std::uint64_t seqno,
                   BytesView plaintext) {
  return crypto::secretbox_seal(key, nonce_for(seqno), plaintext,
                                aad_for(capsule, seqno));
}

std::optional<Bytes> open_payload(const ReadKey& key, const Name& capsule,
                                  std::uint64_t seqno, BytesView sealed) {
  return crypto::secretbox_open(key, sealed, aad_for(capsule, seqno));
}

}  // namespace gdp::capsule
