// Payload confidentiality (§V-A, footnote 7).
//
// "Read access control is maintained by selective sharing of decryption
// keys ... Encryption provides the final level of defense in the case
// when the entire infrastructure is compromised."
//
// Payloads are sealed *before* they enter a record, so DataCapsule-servers
// and routers only ever see ciphertext; integrity (hash-pointers +
// signatures) covers the sealed bytes.  The capsule name is bound in as
// AAD, so a ciphertext cannot be replayed into a different capsule, and
// the record seqno feeds the nonce, so identical plaintexts at different
// positions produce unlinkable ciphertexts.
#pragma once

#include "common/name.hpp"
#include "crypto/chacha20.hpp"

namespace gdp::capsule {

/// A per-capsule read key.  The owner mints it and shares it only with
/// authorized readers (out of band or wrapped under reader public keys).
using ReadKey = crypto::SymmetricKey;

/// Derives a fresh read key from entropy.
ReadKey make_read_key(BytesView entropy);

/// Seals a plaintext for the record at `seqno` of `capsule`.
Bytes seal_payload(const ReadKey& key, const Name& capsule, std::uint64_t seqno,
                   BytesView plaintext);

/// Opens a sealed payload; fails (nullopt) on wrong key, wrong capsule,
/// wrong seqno, or any ciphertext tampering.
std::optional<Bytes> open_payload(const ReadKey& key, const Name& capsule,
                                  std::uint64_t seqno, BytesView sealed);

}  // namespace gdp::capsule
