#include "capsule/record.hpp"

#include "common/varint.hpp"

namespace gdp::capsule {

namespace {
constexpr std::uint8_t kHeaderVersion = 1;
}

Bytes RecordHeader::serialize() const {
  Bytes out;
  out.push_back(kHeaderVersion);
  append(out, capsule_name.view());
  put_varint(out, seqno);
  put_fixed64(out, static_cast<std::uint64_t>(timestamp_ns));
  put_varint(out, ptrs.size());
  for (const HashPtr& p : ptrs) {
    put_varint(out, p.seqno);
    append(out, p.hash.view());
  }
  append(out, BytesView(payload_hash.data(), payload_hash.size()));
  put_varint(out, payload_len);
  return out;
}

Result<RecordHeader> RecordHeader::deserialize(BytesView b) {
  ByteReader r(b);
  auto version = r.get_bytes(1);
  if (!version || (*version)[0] != kHeaderVersion) {
    return make_error(Errc::kInvalidArgument, "bad record header version");
  }
  RecordHeader h;
  auto name_bytes = r.get_bytes(Name::kSize);
  if (!name_bytes) return make_error(Errc::kInvalidArgument, "truncated capsule name");
  h.capsule_name = *Name::from_bytes(*name_bytes);

  auto seqno = r.get_varint();
  auto ts = r.get_fixed64();
  auto nptrs = r.get_varint();
  if (!seqno || !ts || !nptrs) {
    return make_error(Errc::kInvalidArgument, "truncated record header");
  }
  h.seqno = *seqno;
  h.timestamp_ns = static_cast<std::int64_t>(*ts);
  if (*nptrs > 4096) {
    return make_error(Errc::kInvalidArgument, "implausible hash-pointer count");
  }
  h.ptrs.reserve(static_cast<std::size_t>(*nptrs));
  for (std::uint64_t i = 0; i < *nptrs; ++i) {
    auto pseq = r.get_varint();
    auto phash = r.get_bytes(Name::kSize);
    if (!pseq || !phash) return make_error(Errc::kInvalidArgument, "truncated hash-pointer");
    h.ptrs.push_back(HashPtr{*pseq, *Name::from_bytes(*phash)});
  }
  auto ph = r.get_bytes(32);
  auto plen = r.get_varint();
  if (!ph || !plen) return make_error(Errc::kInvalidArgument, "truncated payload descriptor");
  std::copy(ph->begin(), ph->end(), h.payload_hash.begin());
  h.payload_len = *plen;
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing bytes in header");
  return h;
}

RecordHash RecordHeader::hash() const {
  return crypto::digest_to_name(crypto::sha256(serialize()));
}

Bytes Record::serialize() const {
  Bytes out;
  put_length_prefixed(out, header.serialize());
  put_length_prefixed(out, payload);
  append(out, writer_sig.encode());
  return out;
}

Result<Record> Record::deserialize(BytesView b) {
  ByteReader r(b);
  auto header_bytes = r.get_length_prefixed();
  if (!header_bytes) return make_error(Errc::kInvalidArgument, "truncated record header");
  GDP_ASSIGN_OR_RETURN(RecordHeader header, RecordHeader::deserialize(*header_bytes));
  Record rec;
  rec.header = std::move(header);
  auto payload = r.get_length_prefixed();
  if (!payload) return make_error(Errc::kInvalidArgument, "truncated record payload");
  rec.payload = std::move(*payload);
  auto sig_bytes = r.get_bytes(64);
  if (!sig_bytes) return make_error(Errc::kInvalidArgument, "truncated record signature");
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed record signature");
  rec.writer_sig = *sig;
  if (!r.empty()) return make_error(Errc::kInvalidArgument, "trailing bytes in record");
  return rec;
}

Status Record::verify_standalone(const crypto::PublicKey& writer,
                                 SigPolicy policy) const {
  if (payload.size() != header.payload_len) {
    return make_error(Errc::kVerificationFailed, "payload length mismatch");
  }
  if (crypto::sha256(payload) != header.payload_hash) {
    return make_error(Errc::kVerificationFailed, "payload hash mismatch");
  }
  if (header.seqno == 0) {
    return make_error(Errc::kVerificationFailed, "seqno 0 is reserved for metadata");
  }
  if (header.ptrs.empty()) {
    return make_error(Errc::kVerificationFailed, "record has no hash-pointers");
  }
  for (std::size_t i = 0; i < header.ptrs.size(); ++i) {
    if (header.ptrs[i].seqno >= header.seqno) {
      return make_error(Errc::kVerificationFailed, "hash-pointer does not point backwards");
    }
    if (i > 0) {
      // Non-descending by seqno; equal seqnos (merge of QSW branch heads)
      // must reference distinct records.
      if (header.ptrs[i].seqno < header.ptrs[i - 1].seqno) {
        return make_error(Errc::kVerificationFailed, "hash-pointers not ascending");
      }
      if (header.ptrs[i].seqno == header.ptrs[i - 1].seqno &&
          header.ptrs[i].hash == header.ptrs[i - 1].hash) {
        return make_error(Errc::kVerificationFailed, "duplicate hash-pointer");
      }
    }
  }
  if (policy == SigPolicy::kVerify) {
    crypto::Digest digest;
    auto h = header.hash();
    std::copy(h.raw().begin(), h.raw().end(), digest.begin());
    if (!writer.verify_digest(digest, writer_sig)) {
      return make_error(Errc::kVerificationFailed, "writer signature invalid");
    }
  }
  return ok_status();
}

}  // namespace gdp::capsule
