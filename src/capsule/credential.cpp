#include "capsule/credential.hpp"

#include "common/varint.hpp"

namespace gdp::capsule {

namespace {
// Domain separation so a credential signature can never be confused with
// a record, heartbeat, or certificate signature by the same owner key.
constexpr std::string_view kCredentialDomain = "gdp.writer-credential.v1";
}  // namespace

Bytes WriterCredential::signed_payload() const {
  Bytes out;
  put_length_prefixed(out, to_bytes(kCredentialDomain));
  append(out, capsule.view());
  put_length_prefixed(out, writer_pubkey);
  put_length_prefixed(out, to_bytes(branch));
  put_fixed64(out, static_cast<std::uint64_t>(not_before_ns));
  put_fixed64(out, static_cast<std::uint64_t>(not_after_ns));
  return out;
}

Bytes WriterCredential::serialize() const {
  Bytes out;
  append(out, capsule.view());
  put_length_prefixed(out, writer_pubkey);
  put_length_prefixed(out, to_bytes(branch));
  put_fixed64(out, static_cast<std::uint64_t>(not_before_ns));
  put_fixed64(out, static_cast<std::uint64_t>(not_after_ns));
  append(out, owner_sig.encode());
  return out;
}

Result<WriterCredential> WriterCredential::deserialize(BytesView b) {
  ByteReader r(b);
  auto truncated = [] {
    return make_error(Errc::kInvalidArgument, "truncated WriterCredential");
  };
  WriterCredential c;
  auto capsule = r.get_bytes(Name::kSize);
  if (!capsule) return truncated();
  c.capsule = *Name::from_bytes(*capsule);
  auto pk = r.get_length_prefixed();
  auto branch = r.get_length_prefixed();
  auto nb = r.get_fixed64();
  auto na = r.get_fixed64();
  auto sig_bytes = r.get_bytes(64);
  if (!pk || !branch || !nb || !na || !sig_bytes) return truncated();
  c.writer_pubkey = std::move(*pk);
  c.branch = to_string(*branch);
  c.not_before_ns = static_cast<std::int64_t>(*nb);
  c.not_after_ns = static_cast<std::int64_t>(*na);
  auto sig = crypto::Signature::decode(*sig_bytes);
  if (!sig) return make_error(Errc::kInvalidArgument, "malformed credential signature");
  c.owner_sig = *sig;
  if (!r.empty()) {
    return make_error(Errc::kInvalidArgument, "trailing WriterCredential bytes");
  }
  return c;
}

Result<crypto::PublicKey> WriterCredential::writer_key() const {
  auto pk = crypto::PublicKey::decode(writer_pubkey);
  if (!pk) {
    return make_error(Errc::kInvalidArgument,
                      "credential writer key is not a curve point");
  }
  return *pk;
}

Status WriterCredential::verify(const crypto::PublicKey& owner, std::int64_t at_ns,
                                const SigChecker& checker) const {
  if (at_ns < not_before_ns || at_ns > not_after_ns) {
    return make_error(Errc::kExpired,
                      "writer credential for branch '" + branch +
                          "' outside its validity window");
  }
  const Bytes payload = signed_payload();
  const bool ok = checker ? checker(owner, payload, owner_sig, not_after_ns, at_ns)
                          : owner.verify(payload, owner_sig);
  if (!ok) {
    return make_error(Errc::kPermissionDenied,
                      "owner signature over writer credential invalid");
  }
  return ok_status();
}

WriterCredential make_writer_credential(const crypto::PrivateKey& owner_key,
                                        const Name& capsule,
                                        const crypto::PublicKey& writer,
                                        std::string branch,
                                        std::int64_t not_before_ns,
                                        std::int64_t not_after_ns) {
  WriterCredential c;
  c.capsule = capsule;
  c.writer_pubkey = writer.encode();
  c.branch = std::move(branch);
  c.not_before_ns = not_before_ns;
  c.not_after_ns = not_after_ns;
  c.owner_sig = owner_key.sign(c.signed_payload());
  return c;
}

Bytes wrap_mw_payload(const WriterCredential& credential, BytesView inner) {
  Bytes out;
  put_length_prefixed(out, credential.serialize());
  append(out, inner);
  return out;
}

Result<MwPayload> open_mw_payload(BytesView envelope) {
  ByteReader r(envelope);
  auto cred_bytes = r.get_length_prefixed();
  if (!cred_bytes) {
    return make_error(Errc::kInvalidArgument, "truncated MW payload envelope");
  }
  GDP_ASSIGN_OR_RETURN(WriterCredential cred,
                       WriterCredential::deserialize(*cred_bytes));
  MwPayload p;
  p.credential = std::move(cred);
  p.inner.assign(envelope.begin() + static_cast<std::ptrdiff_t>(r.position()),
                 envelope.end());
  return p;
}

Result<crypto::PublicKey> record_writer_key(const Metadata& metadata,
                                            const Record& record,
                                            const SigChecker& checker) {
  if (metadata.mode() != WriterMode::kMultiWriter) {
    return metadata.writer_key();
  }
  GDP_ASSIGN_OR_RETURN(MwPayload p, open_mw_payload(record.payload));
  if (p.credential.capsule != metadata.name()) {
    return make_error(Errc::kPermissionDenied,
                      "writer credential bound to a different capsule");
  }
  GDP_RETURN_IF_ERROR(p.credential.verify(metadata.owner_key(),
                                          record.header.timestamp_ns, checker));
  return p.credential.writer_key();
}

}  // namespace gdp::capsule
