// DataCapsule records (§V-A).
//
// A DataCapsule is an ordered collection of variable-sized immutable
// records linked by hash-pointers.  A record's *hash* covers its header;
// the header covers the payload through `payload_hash`, so integrity
// proofs can ship headers only.  The writer's ECDSA signature over the
// record hash is the per-update "heartbeat" signature: because of the
// hash-pointers it attests the entire history of updates — both content
// and ordering.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/name.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"

namespace gdp::capsule {

/// A record hash doubles as the record's identity within the capsule DAG.
using RecordHash = Name;

/// A hash-pointer to an earlier record.  seqno 0 denotes the metadata
/// record, whose "hash" is the capsule name itself — making the name the
/// literal root of the chain of trust.
struct HashPtr {
  std::uint64_t seqno = 0;
  RecordHash hash;

  friend bool operator==(const HashPtr&, const HashPtr&) = default;
};

struct RecordHeader {
  Name capsule_name;            ///< binds the record to one capsule
  std::uint64_t seqno = 0;      ///< 1-based position (0 is the metadata)
  std::int64_t timestamp_ns = 0;
  std::vector<HashPtr> ptrs;    ///< ascending by seqno; >=1 for records
  crypto::Digest payload_hash{};
  std::uint64_t payload_len = 0;

  /// Canonical serialization (the signed/hashed bytes).
  Bytes serialize() const;
  static Result<RecordHeader> deserialize(BytesView b);

  /// SHA-256 of the canonical serialization — the record's identity.
  RecordHash hash() const;

  friend bool operator==(const RecordHeader&, const RecordHeader&) = default;
};

/// Whether ingest must verify the writer signature itself or may trust a
/// verdict already established upstream.  kPreVerified is set only by the
/// sync-flood path after crypto::BatchVerifier accepted the record's
/// signature; structural checks always run regardless.
enum class SigPolicy : std::uint8_t {
  kVerify,
  kPreVerified,
};

struct Record {
  RecordHeader header;
  Bytes payload;
  crypto::Signature writer_sig{};  ///< over header.hash()

  RecordHash hash() const { return header.hash(); }

  Bytes serialize() const;
  static Result<Record> deserialize(BytesView b);

  /// Structural self-consistency: payload matches payload_hash/len and the
  /// signature verifies under `writer` (unless `policy` says the caller
  /// already batch-verified it).  Linkage into the DAG is checked
  /// separately by CapsuleState.
  Status verify_standalone(const crypto::PublicKey& writer,
                           SigPolicy policy = SigPolicy::kVerify) const;

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace gdp::capsule
