#include "capsule/state.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace gdp::capsule {

namespace {
// Heads ordered by (seqno, hash); the canonical tip is the smallest hash at
// the highest seqno.
using HeadKey = std::pair<std::uint64_t, Name>;
}  // namespace

CapsuleState::CapsuleState(Metadata metadata)
    : metadata_(std::move(metadata)), canonical_tip_(metadata_.name()) {}

bool CapsuleState::contains(const RecordHash& hash) const {
  return by_hash_.contains(hash);
}

bool CapsuleState::known(const RecordHash& hash) const {
  return by_hash_.contains(hash) || detached_hashes_.contains(hash);
}

Status CapsuleState::ingest(const Record& record, SigPolicy policy) {
  const RecordHash hash = record.hash();
  if (by_hash_.contains(hash) || detached_hashes_.contains(hash)) {
    return ok_status();  // idempotent
  }
  if (record.header.capsule_name != name()) {
    return make_error(Errc::kVerificationFailed,
                      "record belongs to capsule " +
                          record.header.capsule_name.short_hex() + ", not " +
                          name().short_hex());
  }
  // SSW/QSW records verify under the metadata writer key; multi-writer
  // records resolve their key from the credential envelope in the payload,
  // checked against the owner key at the record's own timestamp.
  GDP_ASSIGN_OR_RETURN(crypto::PublicKey writer,
                       record_writer_key(metadata_, record, checker_));
  GDP_RETURN_IF_ERROR(record.verify_standalone(writer, policy));

  // Locate parents; a missing one detaches the record (a transient hole).
  for (const HashPtr& ptr : record.header.ptrs) {
    if (ptr.seqno == 0) {
      if (ptr.hash != name()) {
        return make_error(Errc::kVerificationFailed,
                          "seqno-0 pointer must target the capsule name");
      }
      continue;
    }
    if (!by_hash_.contains(ptr.hash)) {
      waiting_on_[ptr.hash].push_back(record);
      detached_hashes_.insert(hash);
      return ok_status();  // held until the parent arrives
    }
  }
  GDP_RETURN_IF_ERROR(validate_attached(record));
  attach(record);
  try_attach_dependents(hash);
  return ok_status();
}

Status CapsuleState::validate_attached(const Record& record) const {
  std::uint64_t max_parent_seqno = 0;
  for (const HashPtr& ptr : record.header.ptrs) {
    if (ptr.seqno == 0) continue;
    auto it = by_hash_.find(ptr.hash);
    assert(it != by_hash_.end());
    if (it->second.record.header.seqno != ptr.seqno) {
      return make_error(Errc::kVerificationFailed,
                        "hash-pointer seqno disagrees with the target record");
    }
    max_parent_seqno = std::max(max_parent_seqno, ptr.seqno);
  }
  if (record.header.seqno != max_parent_seqno + 1) {
    return make_error(Errc::kVerificationFailed,
                      "record seqno must be max(parent seqnos) + 1");
  }
  return ok_status();
}

void CapsuleState::attach(const Record& record) {
  const RecordHash hash = record.hash();
  const std::uint64_t seqno = record.header.seqno;
  const std::uint64_t old_max = tip_seqno_unlocked();

  // Fast-path canonical extension: the new record sits directly on the
  // current canonical tip.  (The capsule name acts as the tip of an empty
  // capsule, so the first record extends it through its seqno-0 pointer.)
  bool extends_tip = false;
  if (!canonical_dirty_) {
    for (const HashPtr& ptr : record.header.ptrs) {
      const Name parent = ptr.seqno == 0 ? name() : ptr.hash;
      if (parent == canonical_tip_ && ptr.seqno + 1 == seqno) {
        extends_tip = true;
        break;
      }
    }
  }

  by_hash_.emplace(hash, Attached{record});
  by_seqno_[seqno].push_back(hash);
  detached_hashes_.erase(hash);

  // Only prev-pointers (seqno-1 -> seqno) are tree edges; skip-list and
  // checkpoint pointers are shortcuts and do not define children.
  for (const HashPtr& ptr : record.header.ptrs) {
    if (ptr.seqno + 1 != seqno) continue;
    const Name parent = ptr.seqno == 0 ? name() : ptr.hash;
    if (++child_count_[parent] >= 2) branched_ = true;
  }
  if (by_seqno_[seqno].size() >= 2) branched_ = true;

  if (canonical_dirty_) return;
  if (seqno > old_max) {
    // A record can only attach when its max parent (at seqno-1) is
    // attached, so seqno == old_max + 1 here.
    if (extends_tip && by_seqno_[seqno].size() == 1) {
      canonical_[seqno] = hash;
      canonical_tip_ = hash;
      tree_.set_leaf(seqno, hash);
    } else {
      canonical_dirty_ = true;
    }
  } else if (seqno == old_max && hash < canonical_tip_) {
    canonical_dirty_ = true;  // smaller hash wins the deterministic tie-break
  }
  // seqno < old_max: a side-branch record below the tip; the path from the
  // tip is unchanged.
}

void CapsuleState::try_attach_dependents(const RecordHash& new_hash) {
  std::deque<Record> work;
  auto pop_waiters = [&](const RecordHash& h) {
    auto it = waiting_on_.find(h);
    if (it == waiting_on_.end()) return;
    for (Record& r : it->second) work.push_back(std::move(r));
    waiting_on_.erase(it);
  };
  pop_waiters(new_hash);
  while (!work.empty()) {
    Record rec = std::move(work.front());
    work.pop_front();
    const RecordHash h = rec.hash();
    if (by_hash_.contains(h)) continue;
    // Re-check parents; re-park under the next missing one if any.
    const HashPtr* missing = nullptr;
    for (const HashPtr& ptr : rec.header.ptrs) {
      if (ptr.seqno == 0) continue;
      if (!by_hash_.contains(ptr.hash)) {
        missing = &ptr;
        break;
      }
    }
    if (missing != nullptr) {
      waiting_on_[missing->hash].push_back(std::move(rec));
      continue;
    }
    if (!validate_attached(rec).ok()) {
      detached_hashes_.erase(h);  // invalid linkage: drop permanently
      continue;
    }
    attach(rec);
    pop_waiters(h);
  }
}

std::uint64_t CapsuleState::tip_seqno_unlocked() const {
  return by_seqno_.empty() ? 0 : by_seqno_.rbegin()->first;
}

std::uint64_t CapsuleState::canonical_seqno_unlocked() const {
  return canonical_.empty() ? 0 : canonical_.rbegin()->first;
}

RecordHash CapsuleState::tip_hash() const {
  if (canonical_dirty_) rebuild_canonical();
  return canonical_tip_;
}

std::uint64_t CapsuleState::tip_seqno() const {
  return tip_seqno_unlocked();
}

void CapsuleState::rebuild_canonical() const {
  canonical_.clear();
  canonical_tip_ = metadata_.name();
  canonical_dirty_ = false;
  if (by_seqno_.empty()) {
    tree_.clear();
    return;
  }

  // Tip: smallest hash among records at the highest seqno that are heads.
  // (With holes the highest-seqno record is always a head.)
  const auto& [max_seqno, at_max] = *by_seqno_.rbegin();
  RecordHash tip = *std::min_element(at_max.begin(), at_max.end());
  canonical_tip_ = tip;

  // Walk the prev-chain: by construction every record has a parent at
  // seqno - 1 (seqno = max parent + 1).
  RecordHash cursor = tip;
  std::uint64_t seqno = max_seqno;
  while (seqno >= 1) {
    canonical_[seqno] = cursor;
    const auto it = by_hash_.find(cursor);
    assert(it != by_hash_.end());
    const RecordHeader& h = it->second.record.header;
    const HashPtr* prev = nullptr;
    for (const HashPtr& ptr : h.ptrs) {
      if (ptr.seqno + 1 == seqno &&
          (prev == nullptr || ptr.hash < prev->hash)) {
        prev = &ptr;
      }
    }
    if (seqno == 1) break;
    assert(prev != nullptr);
    cursor = prev->hash;
    --seqno;
  }

  // Resync the Merkle summary: drop leaves beyond the new tip, then
  // overwrite the rest (set_leaf is free when the value is unchanged, so
  // this costs one bucket re-hash per actually-divergent range).
  tree_.truncate(max_seqno);
  for (const auto& [s, h] : canonical_) tree_.set_leaf(s, h);
}

const HashTree& CapsuleState::tree() const {
  if (canonical_dirty_) rebuild_canonical();
  return tree_;
}

std::optional<Record> CapsuleState::get_by_hash(const RecordHash& hash) const {
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return std::nullopt;
  return it->second.record;
}

std::optional<Record> CapsuleState::get_by_seqno(std::uint64_t seqno) const {
  if (canonical_dirty_) rebuild_canonical();
  auto it = canonical_.find(seqno);
  if (it == canonical_.end()) return std::nullopt;
  return get_by_hash(it->second);
}

std::vector<Record> CapsuleState::all_at_seqno(std::uint64_t seqno) const {
  std::vector<Record> out;
  auto it = by_seqno_.find(seqno);
  if (it == by_seqno_.end()) return out;
  for (const RecordHash& h : it->second) out.push_back(by_hash_.at(h).record);
  return out;
}

std::vector<RecordHash> CapsuleState::heads() const {
  std::vector<RecordHash> out;
  for (const auto& [hash, attached] : by_hash_) {
    auto it = child_count_.find(hash);
    if (it == child_count_.end() || it->second == 0) out.push_back(hash);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RecordHash> CapsuleState::holes() const {
  std::vector<RecordHash> out;
  for (const auto& [hash, waiters] : waiting_on_) {
    if (!detached_hashes_.contains(hash) && !by_hash_.contains(hash)) {
      out.push_back(hash);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t CapsuleState::detached_count() const {
  return detached_hashes_.size();
}

std::vector<Record> CapsuleState::export_records() const {
  std::vector<Record> out;
  out.reserve(by_hash_.size());
  for (const auto& [seqno, hashes] : by_seqno_) {
    std::vector<RecordHash> sorted = hashes;
    std::sort(sorted.begin(), sorted.end());
    for (const RecordHash& h : sorted) out.push_back(by_hash_.at(h).record);
  }
  return out;
}

std::vector<Record> CapsuleState::branch_records() const {
  if (canonical_dirty_) rebuild_canonical();
  std::vector<Record> out;
  for (const auto& [seqno, hashes] : by_seqno_) {
    const auto canon = canonical_.find(seqno);
    std::vector<RecordHash> sorted = hashes;
    std::sort(sorted.begin(), sorted.end());
    for (const RecordHash& h : sorted) {
      if (canon != canonical_.end() && canon->second == h) continue;
      out.push_back(by_hash_.at(h).record);
    }
  }
  return out;
}

Status CapsuleState::check_heartbeat(const Heartbeat& hb) const {
  if (hb.capsule_name != name()) {
    return make_error(Errc::kVerificationFailed, "heartbeat for a different capsule");
  }
  if (hb.seqno == 0) {
    // The empty capsule is attested by the founding writer named in the
    // metadata (in MW mode: the owner's founding branch).
    GDP_RETURN_IF_ERROR(hb.verify(metadata_.writer_key()));
    if (hb.record_hash != name()) {
      return make_error(Errc::kVerificationFailed, "empty heartbeat must attest the name");
    }
    return ok_status();
  }
  auto rec = get_by_hash(hb.record_hash);
  if (!rec) {
    return make_error(Errc::kNotFound, "heartbeat attests an unknown record");
  }
  if (rec->header.seqno != hb.seqno) {
    return make_error(Errc::kVerificationFailed, "heartbeat seqno mismatch");
  }
  // A heartbeat is signed by whichever writer produced the attested
  // record — in MW mode that key comes from the record's credential.
  GDP_ASSIGN_OR_RETURN(crypto::PublicKey writer,
                       record_writer_key(metadata_, *rec, checker_));
  GDP_RETURN_IF_ERROR(hb.verify(writer));
  return ok_status();
}

}  // namespace gdp::capsule
