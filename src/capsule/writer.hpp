// The single writer (§VI-A).
//
// "The choice for only allowing a single writer enables us to move the
// serialization responsibilities to the writer/application."  A Writer
// owns the capsule's signature key, assigns seqnos, computes the
// hash-pointers dictated by the configured strategy, and signs each
// record.  Its durable local state — at minimum the hash of the most
// recent record — can be saved and restored, which is the paper's
// "potentially in non-volatile memory to recover after writer failures".
//
// Strict Single-Writer (SSW) mode assumes exactly one live Writer.
// Quasi-Single-Writer (QSW) mode tolerates a second concurrent Writer
// restored from stale state: the resulting branch is representable in the
// record DAG and is detected (and mergeable) downstream.
#pragma once

#include <map>
#include <memory>

#include "capsule/heartbeat.hpp"
#include "capsule/metadata.hpp"
#include "capsule/record.hpp"
#include "capsule/strategy.hpp"

namespace gdp::capsule {

class Writer {
 public:
  /// Creates a writer for a fresh, empty capsule.
  Writer(Metadata metadata, crypto::PrivateKey writer_key,
         std::unique_ptr<HashPointerStrategy> strategy);

  /// Restores a writer from previously saved durable state.
  static Result<Writer> restore(Metadata metadata, crypto::PrivateKey writer_key,
                                std::unique_ptr<HashPointerStrategy> strategy,
                                BytesView saved_state);

  Writer(Writer&&) = default;
  Writer& operator=(Writer&&) = default;

  /// Builds, signs and records the next record.  The returned record is
  /// ready to be shipped to DataCapsule-servers in any order.
  Record append(BytesView payload, std::int64_t timestamp_ns);

  /// Appends a record that additionally points at `extra_parents`
  /// (hash-pointers to branch heads), merging QSW branches.  Seqno becomes
  /// max(all parents) + 1.
  Record append_merge(BytesView payload, std::int64_t timestamp_ns,
                      const std::vector<HashPtr>& extra_parents);

  /// Signed attestation of the latest record (or of the empty capsule).
  Heartbeat heartbeat() const;

  /// Re-points the writer at an externally learned tip (seqno + record
  /// hash), forgetting locally remembered hashes.  This is the optimistic
  /// compare-and-append primitive: after a CAS nack carrying the current
  /// tip, the writer rebases and re-appends on top of it.  Only valid with
  /// strategies whose pointers reach at most one record back (chain);
  /// skip-list strategies would need hashes the writer no longer has.
  Status rebase(std::uint64_t tip_seqno, const RecordHash& tip_hash);

  const Name& capsule_name() const { return metadata_.name(); }
  const Metadata& metadata() const { return metadata_; }
  std::uint64_t next_seqno() const { return next_seqno_; }
  /// Hash of the most recent record (capsule name when empty).
  const RecordHash& tip_hash() const { return tip_hash_; }

  /// Serializes the durable writer state (seqno counter + the remembered
  /// record hashes future strategy pointers will need).
  Bytes save_state() const;

 private:
  HashPtr ptr_for(std::uint64_t seqno) const;
  void remember(std::uint64_t seqno, const RecordHash& hash);
  void prune(std::uint64_t appended_seqno);

  Metadata metadata_;
  crypto::PrivateKey writer_key_;
  std::unique_ptr<HashPointerStrategy> strategy_;
  std::uint64_t next_seqno_ = 1;
  RecordHash tip_hash_;  // == capsule name while empty
  std::map<std::uint64_t, RecordHash> remembered_;
};

}  // namespace gdp::capsule
