#include "crypto/u256.hpp"

#include <cassert>

namespace gdp::crypto {

U256 U256::from_bytes_be(BytesView b) {
  assert(b.size() == 32);
  U256 out;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) {
      v = (v << 8) | b[static_cast<std::size_t>((3 - limb) * 8 + j)];
    }
    out.w[static_cast<std::size_t>(limb)] = v;
  }
  return out;
}

Bytes U256::to_bytes_be() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = w[static_cast<std::size_t>(limb)];
    for (int j = 7; j >= 0; --j) {
      out[static_cast<std::size_t>((3 - limb) * 8 + j)] =
          static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

int U256::highest_bit() const {
  for (int limb = 3; limb >= 0; --limb) {
    if (w[static_cast<std::size_t>(limb)] != 0) {
      return limb * 64 + 63 - __builtin_clzll(w[static_cast<std::size_t>(limb)]);
    }
  }
  return -1;
}

bool U512::is_zero() const {
  std::uint64_t acc = 0;
  for (auto v : w) acc |= v;
  return acc == 0;
}

std::uint64_t add_carry(U256& out, const U256& a, const U256& b) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += static_cast<unsigned __int128>(a.w[i]) + b.w[i];
    out.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t sub_borrow(U256& out, const U256& a, const U256& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;  // two's-complement: top bits set iff underflow
  }
  return static_cast<std::uint64_t>(borrow);
}

U512 mul_full(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      carry += static_cast<unsigned __int128>(a.w[i]) * b.w[j] + out.w[i + j];
      out.w[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    out.w[i + 4] = static_cast<std::uint64_t>(carry);
  }
  return out;
}

U512 mul_small(const U256& a, const U256& b, int b_limbs) {
  U512 out;
  for (int j = 0; j < b_limbs; ++j) {
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      carry += static_cast<unsigned __int128>(a.w[i]) * b.w[j] + out.w[i + j];
      out.w[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    out.w[j + 4] = static_cast<std::uint64_t>(carry);
  }
  return out;
}

U512 sqr_full(const U256& a) {
  // Off-diagonal products once, doubled as a whole (doubling the 128-bit
  // partial products individually could overflow), plus the diagonal.
  U512 cross;
  for (int i = 0; i < 3; ++i) {
    unsigned __int128 carry = 0;
    for (int j = i + 1; j < 4; ++j) {
      carry += static_cast<unsigned __int128>(a.w[i]) * a.w[j] + cross.w[i + j];
      cross.w[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    cross.w[i + 4] = static_cast<std::uint64_t>(carry);
  }
  U512 diag;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 sq = static_cast<unsigned __int128>(a.w[i]) * a.w[i];
    diag.w[2 * i] = static_cast<std::uint64_t>(sq);
    diag.w[2 * i + 1] = static_cast<std::uint64_t>(sq >> 64);
  }
  return add512(shl1(cross), diag);
}

U512 add512(const U512& a, const U512& b) {
  U512 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    carry += static_cast<unsigned __int128>(a.w[i]) + b.w[i];
    out.w[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return out;
}

U512 sub512(const U512& a, const U512& b) {
  U512 out;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
  return out;
}

std::strong_ordering cmp512(const U512& a, const U512& b) {
  for (int i = 7; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] <=> b.w[i];
  }
  return std::strong_ordering::equal;
}

U512 shl1(const U512& a) {
  U512 out;
  std::uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    out.w[i] = (a.w[i] << 1) | carry;
    carry = a.w[i] >> 63;
  }
  return out;
}

U256 shr1(const U256& a, std::uint64_t high_bit) {
  U256 out;
  for (int i = 0; i < 3; ++i) {
    out.w[static_cast<std::size_t>(i)] =
        (a.w[static_cast<std::size_t>(i)] >> 1) |
        (a.w[static_cast<std::size_t>(i + 1)] << 63);
  }
  out.w[3] = (a.w[3] >> 1) | (high_bit << 63);
  return out;
}

U256 mod_generic(const U512& a, const U256& m) {
  assert(!m.is_zero());
  // Binary long division: fold a's bits into a remainder from the top.
  U256 rem{};
  for (int bit = 511; bit >= 0; --bit) {
    // rem = rem*2 + bit(a)
    U256 doubled;
    std::uint64_t carry = add_carry(doubled, rem, rem);
    bool in_bit = (a.w[bit / 64] >> (bit % 64)) & 1;
    if (in_bit) {
      carry += add_carry(doubled, doubled, U256::from_u64(1));
    }
    // A carry means rem*2 >= 2^256 > m, so subtract m (m < 2^256).
    if (carry != 0 || doubled >= m) {
      sub_borrow(doubled, doubled, m);
      // After a carry the value can still exceed m once more.
      if (carry != 0 && doubled >= m) sub_borrow(doubled, doubled, m);
    }
    rem = doubled;
  }
  return rem;
}

}  // namespace gdp::crypto
