// secp256k1 internals: field/scalar limb arithmetic, Montgomery-domain
// primitives, MSM machinery and the retained slow reference paths.
//
// This header is the *internal* surface of the curve implementation.  It
// exists so that src/crypto (and the crypto tests/benches, which
// cross-check fast against slow paths) can reach the primitives, while
// everything outside src/crypto sees only crypto/secp256k1.hpp — and can
// no longer call a variable-time field primitive by accident.
//
// Functions here come in three timing classes:
//   * variable-time (fp_*/sc_* helpers, wNAF/GLV multipliers, the binary
//     xgcd inverses): fine for verification, which handles public data;
//   * constant-time (mont_mul/mont_sqr cores, point_mul_g_ct): control
//     flow and memory addresses independent of operand values — the
//     signing path is built exclusively from these;
//   * reference slow paths (*_schoolbook, *_fermat, *_slow): retained as
//     differential oracles, never called in production paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "crypto/secp256k1.hpp"
#include "crypto/u256.hpp"

namespace gdp::crypto {

// ---- Arithmetic in F_p (canonical domain, variable-time) -------------------
U256 fp_add(const U256& a, const U256& b);
U256 fp_sub(const U256& a, const U256& b);
U256 fp_mul(const U256& a, const U256& b);
U256 fp_sqr(const U256& a);
U256 fp_inv(const U256& a);         // a != 0; binary extended-GCD
U256 fp_inv_fermat(const U256& a);  // reference slow path (a^(p-2))
U256 fp_neg(const U256& a);
/// Inverts `count` field elements in place with a single field inversion
/// (Montgomery's trick).  Zero elements are skipped and map to zero, so
/// callers may feed z-coordinates of points at infinity directly.
void fp_inv_batch(U256* vals, std::size_t count);
/// Square root mod p, if one exists (p = 3 mod 4, so a^((p+1)/4) is a
/// root of every quadratic residue).  Used to lift ECDSA R points from
/// their x-coordinate for batch verification.
std::optional<U256> fp_sqrt(const U256& a);

/// Reference schoolbook reduction paths (mul_full + fold of the
/// p = 2^256 - C structure).  These are the pre-Montgomery field
/// multiplication, retained purely as the differential oracle for the
/// REDC core; production paths never call them.
U256 fp_mul_schoolbook(const U256& a, const U256& b);
U256 fp_sqr_schoolbook(const U256& a);

// ---- Montgomery-domain primitives ------------------------------------------
//
// Fast-path field elements live in the Montgomery domain: the value a is
// represented by a*R mod p with R = 2^256.  Conversion happens once at
// API boundaries (point load / store); every interior multiplication is
// one fused 4-limb REDC with no 512-bit intermediate materialized.
// mont_mul/mont_sqr run in constant time (fixed loop trip counts, final
// reduction by conditional move).

/// a -> a*R mod p.  Accepts any 256-bit input (not just a < p).
U256 to_mont(const U256& a);
/// a*R -> a mod p.
U256 from_mont(const U256& a);
/// REDC(a*b): with both inputs in the Montgomery domain this is the
/// domain multiplication (aR, bR) -> abR.
U256 mont_mul(const U256& a, const U256& b);
/// REDC(a^2), the squaring special case (saves ~6 word products).
U256 mont_sqr(const U256& a);

// ---- Arithmetic mod the group order n (variable-time) ----------------------
U256 sc_add(const U256& a, const U256& b);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_inv(const U256& a);         // a != 0; binary extended-GCD
U256 sc_inv_fermat(const U256& a);  // reference slow path (a^(n-2))
U256 sc_neg(const U256& a);
/// Reduces an arbitrary 256-bit value (e.g. a hash) mod n.
U256 sc_reduce(const U256& a);
bool sc_is_valid(const U256& a);  // 1 <= a < n
/// Inverts `count` scalars mod n in place with a single inversion
/// (Montgomery's trick); zero elements are skipped and map to zero.
/// Batch verification uses this for the shared s_i^-1 computations.
void sc_inv_batch(U256* vals, std::size_t count);

// ---- Constant-time helpers -------------------------------------------------

/// r <- v when mask is all-ones, r unchanged when mask is zero.  mask must
/// be 0 or ~0; branch- and index-free.
void u256_cmov(U256& r, const U256& v, std::uint64_t mask);

/// Instrumentation for the structural constant-time tests: every
/// secret-path table lookup bumps `lookups` once and `entries_scanned`
/// once per table entry it touched.  A full-table cmov scan therefore
/// keeps entries_scanned == 16 * lookups — the property the structural
/// test asserts.  (The simulator is single-threaded; this is a plain
/// global.)
struct CtProbe {
  std::uint64_t lookups = 0;
  std::uint64_t entries_scanned = 0;

  void reset() { lookups = entries_scanned = 0; }
};
CtProbe& ct_probe();

/// Constant-time fixed-base multiplication k*G for the signing path:
/// Joye-Tunstall signed-odd windows (width 5) over the scalar blinded as
/// k + blind.w[0]*n (Coron's countermeasure; exact on the curve since
/// n*G = O), full-table cmov lookups, and branchless unified-complete
/// Jacobian additions.  `blind` additionally randomizes the projective
/// z before the final (variable-time) inversion.  blind = 0 degrades the
/// masking but never the result: the output equals point_mul(k, G) for
/// every blind.  Requires 1 <= k < n.
AffinePoint point_mul_g_ct(const U256& k, const U256& blind);

// ---- Verification / MSM internals (variable-time) --------------------------

/// u1*G + u2*Q, the ECDSA verification combination (Shamir's trick over
/// GLV-split interleaved wNAF streams).
AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q);

/// True iff (u1*G + u2*Q).x mod n == r, checked in Jacobian coordinates
/// (r*Z^2 == X) so ECDSA verification skips the final field inversion.
bool point_mul2_check_r(const U256& u1, const U256& u2, const AffinePoint& q,
                        const U256& r);

/// One term of a multi-scalar multiplication: k * p.
struct MulTerm {
  U256 k;
  AffinePoint p;
};

/// sum(k_i * p_i) over one shared ~129-doubling chain: every scalar is
/// GLV-split, every base gets an interleaved width-5 wNAF digit stream
/// over per-term odd-multiples tables that are normalized together with a
/// single batched field inversion.  Terms with p == G are folded into one
/// aggregated fixed-base scalar first (the group order is prime, so every
/// finite point has order n and scalar aggregation mod n is exact).
/// Scalars are reduced mod n; zero scalars and points at infinity are
/// skipped.  This is the engine behind crypto::BatchVerifier.
AffinePoint point_mul_multi(const MulTerm* terms, std::size_t count);
/// Reference sum of independent slow multiplications.
AffinePoint point_mul_multi_slow(const MulTerm* terms, std::size_t count);

/// Reference scalar multiplication via naive double-and-add; kept as the
/// cross-check oracle for the table/wNAF fast paths.
AffinePoint point_mul_slow(const U256& k, const AffinePoint& p);
/// Reference u1*G + u2*Q via two independent slow multiplications.
AffinePoint point_mul2_slow(const U256& u1, const U256& u2, const AffinePoint& q);

}  // namespace gdp::crypto
