// ChaCha20 stream cipher (RFC 7539 block function) and an
// encrypt-then-MAC "secret box" used for record-payload confidentiality.
//
// §V: read access control is "maintained by selective sharing of
// decryption keys"; DataCapsule payloads are sealed with SecretBox before
// they ever reach the (untrusted) infrastructure.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace gdp::crypto {

using SymmetricKey = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

/// XORs `data` with the ChaCha20 keystream (encryption == decryption).
Bytes chacha20_xor(const SymmetricKey& key, const Nonce96& nonce,
                   std::uint32_t initial_counter, BytesView data);

/// Authenticated encryption: ChaCha20 + HMAC-SHA256 (encrypt-then-MAC).
/// Output layout: nonce(12) || ciphertext || tag(32).
Bytes secretbox_seal(const SymmetricKey& key, const Nonce96& nonce,
                     BytesView plaintext, BytesView aad = {});

/// Returns nullopt when the tag does not verify (tampered or wrong key).
std::optional<Bytes> secretbox_open(const SymmetricKey& key, BytesView boxed,
                                    BytesView aad = {});

}  // namespace gdp::crypto
