// secp256k1 elliptic-curve arithmetic.
//
// The paper (§V) specifies ECDSA signatures; we implement them from scratch
// over secp256k1 (y^2 = x^3 + 7 over F_p).  Field reduction exploits
// p = 2^256 - C with C = 2^32 + 977; scalar reduction exploits
// n = 2^256 - D with D 129 bits wide.  Point math uses Jacobian
// coordinates with simple double-and-add scalar multiplication.
//
// NOTE: this implementation targets correctness and reproducibility of a
// research system, not side-channel resistance (operations are not
// constant-time).
#pragma once

#include <optional>

#include "crypto/u256.hpp"

namespace gdp::crypto {

/// The field prime p and group order n.
const U256& secp_p();
const U256& secp_n();

// ---- Arithmetic in F_p ----------------------------------------------------
U256 fp_add(const U256& a, const U256& b);
U256 fp_sub(const U256& a, const U256& b);
U256 fp_mul(const U256& a, const U256& b);
U256 fp_sqr(const U256& a);
U256 fp_inv(const U256& a);  // a != 0; Fermat inversion
U256 fp_neg(const U256& a);

// ---- Arithmetic mod the group order n --------------------------------------
U256 sc_add(const U256& a, const U256& b);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_inv(const U256& a);  // a != 0
U256 sc_neg(const U256& a);
/// Reduces an arbitrary 256-bit value (e.g. a hash) mod n.
U256 sc_reduce(const U256& a);
bool sc_is_valid(const U256& a);  // 1 <= a < n

// ---- Points ----------------------------------------------------------------
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint at_infinity() { return AffinePoint{}; }
  bool on_curve() const;
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// The group generator G.
const AffinePoint& secp_g();

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b);
AffinePoint point_double(const AffinePoint& a);
AffinePoint point_neg(const AffinePoint& a);
/// k * P via double-and-add (k taken mod n implicitly by the caller).
AffinePoint point_mul(const U256& k, const AffinePoint& p);
/// u1*G + u2*Q, the ECDSA verification combination.
AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q);

/// 64-byte x||y big-endian encoding (infinity not encodable).
Bytes point_encode(const AffinePoint& p);
std::optional<AffinePoint> point_decode(BytesView b);

}  // namespace gdp::crypto
