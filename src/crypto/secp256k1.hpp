// secp256k1 elliptic-curve arithmetic — public surface.
//
// The paper (§V) specifies ECDSA signatures; we implement them from scratch
// over secp256k1 (y^2 = x^3 + 7 over F_p).  This header is the *stable*
// surface: curve parameters, the affine point type, the generic group
// operations, and encoding.  Everything callers actually consume — keygen,
// sign, verify, batch verify — lives one layer up in crypto/keys.hpp and
// crypto/batch_verify.hpp.
//
// The field/scalar limb helpers, Montgomery-domain primitives, MSM
// internals and the retained slow reference paths are deliberately *not*
// here: they are in crypto/secp256k1_detail.hpp, which only src/crypto and
// its tests/benches include.  That split keeps variable-time primitives
// out of reach of the rest of the codebase.
//
// Timing model: fast-path field arithmetic runs in Montgomery form
// (4-limb REDC); the signing-side k*G is constant time (fixed signed-odd
// windows, full-table cmov lookups, blinded scalar).  Verification and
// ECDH keep variable-time fast paths (fixed-base comb, GLV + wNAF) — they
// handle public data.  See DESIGN.md "Montgomery domain & constant-time
// signing".
#pragma once

#include <cstddef>
#include <optional>

#include "crypto/u256.hpp"

namespace gdp::crypto {

/// The field prime p and group order n.
const U256& secp_p();
const U256& secp_n();

// ---- Points ----------------------------------------------------------------

/// A curve point in affine coordinates, canonical (non-Montgomery) form:
/// x, y are plain residues < p.  This is the interchange representation;
/// the implementation converts to the Montgomery domain internally.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint at_infinity() { return AffinePoint{}; }
  bool on_curve() const;
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// The group generator G.
const AffinePoint& secp_g();

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b);
AffinePoint point_double(const AffinePoint& a);
AffinePoint point_neg(const AffinePoint& a);

/// k * P (k taken mod n implicitly by the caller).  Variable time:
/// fixed-base comb when P == G, GLV + width-5 wNAF otherwise.  Do not
/// call with secret scalars — the signing path uses the constant-time
/// ladder in secp256k1_detail.hpp instead.
AffinePoint point_mul(const U256& k, const AffinePoint& p);

/// 64-byte x||y big-endian encoding (infinity not encodable).
Bytes point_encode(const AffinePoint& p);
std::optional<AffinePoint> point_decode(BytesView b);

}  // namespace gdp::crypto
