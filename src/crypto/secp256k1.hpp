// secp256k1 elliptic-curve arithmetic.
//
// The paper (§V) specifies ECDSA signatures; we implement them from scratch
// over secp256k1 (y^2 = x^3 + 7 over F_p).  Field reduction exploits
// p = 2^256 - C with C = 2^32 + 977; scalar reduction exploits
// n = 2^256 - D with D 129 bits wide.  Point math uses Jacobian
// coordinates.
//
// Scalar multiplication runs on a fast path sized for the router's
// per-flow crypto budget (Figure 6):
//   * point_mul(k, G) uses a fixed-base radix-16 windowed table
//     (64 windows x 15 odd/even multiples, built once at startup and
//     normalized to affine with Montgomery's batch-inversion trick), so a
//     signing-side multiply is ~64 mixed additions and no doublings;
//   * point_mul2(u1, u2, Q) — the ECDSA verification combination — uses
//     Shamir's trick with interleaved width-6/width-5 wNAF over a static
//     odd-multiples table for G and a per-call batch-normalized
//     odd-multiples table for Q, sharing one doubling chain;
//   * fp_inv / sc_inv use the binary extended-GCD inverse instead of
//     Fermat exponentiation.
// The original straightforward implementations are retained as
// `*_slow` / `*_fermat` reference paths; tests cross-check the two and
// bench/ablation_crypto measures the gap.
//
// NOTE: this implementation targets correctness and reproducibility of a
// research system, not side-channel resistance (operations are not
// constant-time; table indices are data-dependent).
#pragma once

#include <cstddef>
#include <optional>

#include "crypto/u256.hpp"

namespace gdp::crypto {

/// The field prime p and group order n.
const U256& secp_p();
const U256& secp_n();

// ---- Arithmetic in F_p ----------------------------------------------------
U256 fp_add(const U256& a, const U256& b);
U256 fp_sub(const U256& a, const U256& b);
U256 fp_mul(const U256& a, const U256& b);
U256 fp_sqr(const U256& a);
U256 fp_inv(const U256& a);         // a != 0; binary extended-GCD
U256 fp_inv_fermat(const U256& a);  // reference slow path (a^(p-2))
U256 fp_neg(const U256& a);
/// Inverts `count` field elements in place with a single field inversion
/// (Montgomery's trick).  Zero elements are skipped and map to zero, so
/// callers may feed z-coordinates of points at infinity directly.
void fp_inv_batch(U256* vals, std::size_t count);
/// Square root mod p, if one exists (p = 3 mod 4, so a^((p+1)/4) is a
/// root of every quadratic residue).  Used to lift ECDSA R points from
/// their x-coordinate for batch verification.
std::optional<U256> fp_sqrt(const U256& a);

// ---- Arithmetic mod the group order n --------------------------------------
U256 sc_add(const U256& a, const U256& b);
U256 sc_mul(const U256& a, const U256& b);
U256 sc_inv(const U256& a);         // a != 0; binary extended-GCD
U256 sc_inv_fermat(const U256& a);  // reference slow path (a^(n-2))
U256 sc_neg(const U256& a);
/// Reduces an arbitrary 256-bit value (e.g. a hash) mod n.
U256 sc_reduce(const U256& a);
bool sc_is_valid(const U256& a);  // 1 <= a < n
/// Inverts `count` scalars mod n in place with a single inversion
/// (Montgomery's trick); zero elements are skipped and map to zero.
/// Batch verification uses this for the shared s_i^-1 computations.
void sc_inv_batch(U256* vals, std::size_t count);

// ---- Points ----------------------------------------------------------------
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint at_infinity() { return AffinePoint{}; }
  bool on_curve() const;
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// The group generator G.
const AffinePoint& secp_g();

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b);
AffinePoint point_double(const AffinePoint& a);
AffinePoint point_neg(const AffinePoint& a);
/// k * P (k taken mod n implicitly by the caller).  Fixed-base table when
/// P == G, width-5 wNAF otherwise.
AffinePoint point_mul(const U256& k, const AffinePoint& p);
/// u1*G + u2*Q, the ECDSA verification combination (Shamir's trick).
AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q);

// True iff (u1*G + u2*Q).x mod n == r, checked in Jacobian coordinates
// (r*Z^2 == X) so ECDSA verification skips the final field inversion.
bool point_mul2_check_r(const U256& u1, const U256& u2, const AffinePoint& q,
                        const U256& r);

/// One term of a multi-scalar multiplication: k * p.
struct MulTerm {
  U256 k;
  AffinePoint p;
};

/// sum(k_i * p_i) over one shared ~129-doubling chain: every scalar is
/// GLV-split, every base gets an interleaved width-5 wNAF digit stream
/// over per-term odd-multiples tables that are normalized together with a
/// single batched field inversion.  Terms with p == G are folded into one
/// aggregated fixed-base scalar first (the group order is prime, so every
/// finite point has order n and scalar aggregation mod n is exact).
/// Scalars are reduced mod n; zero scalars and points at infinity are
/// skipped.  This is the engine behind crypto::BatchVerifier.
AffinePoint point_mul_multi(const MulTerm* terms, std::size_t count);
/// Reference sum of independent slow multiplications.
AffinePoint point_mul_multi_slow(const MulTerm* terms, std::size_t count);

/// Reference scalar multiplication via naive double-and-add; kept as the
/// cross-check oracle for the table/wNAF fast paths.
AffinePoint point_mul_slow(const U256& k, const AffinePoint& p);
/// Reference u1*G + u2*Q via two independent slow multiplications.
AffinePoint point_mul2_slow(const U256& u1, const U256& u2, const AffinePoint& q);

/// 64-byte x||y big-endian encoding (infinity not encodable).
Bytes point_encode(const AffinePoint& p);
std::optional<AffinePoint> point_decode(BytesView b);

}  // namespace gdp::crypto
