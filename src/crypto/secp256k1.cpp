#include "crypto/secp256k1.hpp"

#include <array>
#include <cassert>
#include <cstdlib>
#include <vector>

namespace gdp::crypto {

namespace {

// p = 2^256 - 2^32 - 977
constexpr U256 kP{{0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                   0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL}};
// C = 2^256 - p = 2^32 + 977
constexpr U256 kC{{0x1000003D1ULL, 0, 0, 0}};

// n = group order
constexpr U256 kN{{0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                   0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL}};
// D = 2^256 - n (129 bits)
constexpr U256 kD{{0x402DA1732FC9BEBFULL, 0x4551231950B75FC4ULL, 1, 0}};

constexpr U256 kGx{{0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                    0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL}};
constexpr U256 kGy{{0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                    0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL}};

// Generic "x mod (2^256 - delta)" for delta < 2^130: fold the high half
// down (x = hi*delta + lo mod m) until the high half vanishes, then
// conditionally subtract m.  `delta_limbs` bounds the non-zero limbs of
// delta so the fold multiplication skips guaranteed-zero rows.
U256 reduce512(const U512& x, const U256& m, const U256& delta, int delta_limbs) {
  U512 acc = x;
  while (!acc.hi().is_zero()) {
    acc = add512(mul_small(acc.hi(), delta, delta_limbs), U512::from_u256(acc.lo()));
  }
  U256 r = acc.lo();
  while (r >= m) sub_borrow(r, r, m);
  return r;
}

U256 mod_add(const U256& a, const U256& b, const U256& m) {
  U256 out;
  std::uint64_t carry = add_carry(out, a, b);
  // a,b < m so a+b < 2m < 2^257; one conditional subtraction suffices.
  if (carry != 0 || out >= m) sub_borrow(out, out, m);
  return out;
}

U256 mod_sub(const U256& a, const U256& b, const U256& m) {
  U256 out;
  if (sub_borrow(out, a, b) != 0) add_carry(out, out, m);
  return out;
}

U256 mod_pow(const U256& base, const U256& exp,
             U256 (*mul)(const U256&, const U256&)) {
  U256 result = U256::from_u64(1);
  int top = exp.highest_bit();
  for (int i = top; i >= 0; --i) {
    result = mul(result, result);
    if (exp.bit(static_cast<unsigned>(i))) result = mul(result, base);
  }
  return result;
}

// Binary extended-GCD modular inverse (HAC 14.61 specialized to odd m and
// gcd(a, m) = 1).  Runs in ~256 shift/subtract rounds, an order of
// magnitude cheaper than the ~380-multiplication Fermat ladder.
U256 mod_inv_binary(const U256& a, const U256& m) {
  assert(!a.is_zero() && a < m);
  const U256 one = U256::from_u64(1);
  U256 u = a;
  U256 v = m;
  U256 x1 = one;
  U256 x2 = U256::zero();
  while (u != one && v != one) {
    while (!u.is_odd()) {
      u = shr1(u);
      if (x1.is_odd()) {
        std::uint64_t carry = add_carry(x1, x1, m);
        x1 = shr1(x1, carry);
      } else {
        x1 = shr1(x1);
      }
    }
    while (!v.is_odd()) {
      v = shr1(v);
      if (x2.is_odd()) {
        std::uint64_t carry = add_carry(x2, x2, m);
        x2 = shr1(x2, carry);
      } else {
        x2 = shr1(x2);
      }
    }
    if (u >= v) {
      sub_borrow(u, u, v);
      x1 = mod_sub(x1, x2, m);
    } else {
      sub_borrow(v, v, u);
      x2 = mod_sub(x2, x1, m);
    }
  }
  return u == one ? x1 : x2;
}

// ---- Jacobian-coordinate point arithmetic ----------------------------------

struct Jac {
  U256 x, y, z;
  bool inf = true;

  static Jac from_affine(const AffinePoint& p) {
    if (p.infinity) return Jac{};
    return Jac{p.x, p.y, U256::from_u64(1), false};
  }
};

AffinePoint jac_to_affine(const Jac& p) {
  if (p.inf) return AffinePoint::at_infinity();
  U256 zi = fp_inv(p.z);
  U256 zi2 = fp_sqr(zi);
  AffinePoint out;
  out.x = fp_mul(p.x, zi2);
  out.y = fp_mul(p.y, fp_mul(zi2, zi));
  out.infinity = false;
  return out;
}

Jac jac_double(const Jac& p) {
  if (p.inf || p.y.is_zero()) return Jac{};
  // dbl-2009-l formulas for a = 0.
  U256 a = fp_sqr(p.x);
  U256 b = fp_sqr(p.y);
  U256 c = fp_sqr(b);
  U256 d = fp_sub(fp_sub(fp_sqr(fp_add(p.x, b)), a), c);
  d = fp_add(d, d);
  U256 e = fp_add(fp_add(a, a), a);
  U256 f = fp_sqr(e);
  Jac out;
  out.x = fp_sub(f, fp_add(d, d));
  U256 c8 = fp_add(c, c);
  c8 = fp_add(c8, c8);
  c8 = fp_add(c8, c8);
  out.y = fp_sub(fp_mul(e, fp_sub(d, out.x)), c8);
  out.z = fp_mul(fp_add(p.y, p.y), p.z);
  out.inf = false;
  return out;
}

Jac jac_add(const Jac& p, const Jac& q) {
  if (p.inf) return q;
  if (q.inf) return p;
  U256 z1z1 = fp_sqr(p.z);
  U256 z2z2 = fp_sqr(q.z);
  U256 u1 = fp_mul(p.x, z2z2);
  U256 u2 = fp_mul(q.x, z1z1);
  U256 s1 = fp_mul(p.y, fp_mul(q.z, z2z2));
  U256 s2 = fp_mul(q.y, fp_mul(p.z, z1z1));
  U256 h = fp_sub(u2, u1);
  U256 r = fp_sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(p);
    return Jac{};  // P + (-P) = O
  }
  U256 hh = fp_sqr(h);
  U256 hhh = fp_mul(h, hh);
  U256 v = fp_mul(u1, hh);
  Jac out;
  out.x = fp_sub(fp_sub(fp_sqr(r), hhh), fp_add(v, v));
  out.y = fp_sub(fp_mul(r, fp_sub(v, out.x)), fp_mul(s1, hhh));
  out.z = fp_mul(fp_mul(p.z, q.z), h);
  out.inf = false;
  return out;
}

// Mixed addition p + q with q affine (z2 = 1): saves four multiplications
// and a squaring versus the general formula.  This is the work-horse of
// both table-driven fast paths.
Jac jac_add_affine(const Jac& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.inf) return Jac::from_affine(q);
  U256 z1z1 = fp_sqr(p.z);
  U256 u2 = fp_mul(q.x, z1z1);
  U256 s2 = fp_mul(q.y, fp_mul(p.z, z1z1));
  U256 h = fp_sub(u2, p.x);
  U256 r = fp_sub(s2, p.y);
  if (h.is_zero()) {
    if (r.is_zero()) return jac_double(p);
    return Jac{};  // P + (-P) = O
  }
  U256 hh = fp_sqr(h);
  U256 hhh = fp_mul(h, hh);
  U256 v = fp_mul(p.x, hh);
  Jac out;
  out.x = fp_sub(fp_sub(fp_sqr(r), hhh), fp_add(v, v));
  out.y = fp_sub(fp_mul(r, fp_sub(v, out.x)), fp_mul(p.y, hhh));
  out.z = fp_mul(p.z, h);
  out.inf = false;
  return out;
}

Jac jac_mul(const U256& k, const Jac& p) {
  Jac acc;
  int top = k.highest_bit();
  for (int i = top; i >= 0; --i) {
    acc = jac_double(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = jac_add(acc, p);
  }
  return acc;
}

// Normalizes `count` Jacobian points to affine with a single field
// inversion: collects the z coordinates (zero for points at infinity,
// which fp_inv_batch skips) and inverts them all at once.
void jac_batch_to_affine(const Jac* in, AffinePoint* out, std::size_t count) {
  std::vector<U256> zi(count);
  for (std::size_t i = 0; i < count; ++i) {
    zi[i] = in[i].inf ? U256::zero() : in[i].z;
  }
  fp_inv_batch(zi.data(), count);
  for (std::size_t i = 0; i < count; ++i) {
    if (in[i].inf) {
      out[i] = AffinePoint::at_infinity();
      continue;
    }
    U256 zi2 = fp_sqr(zi[i]);
    out[i].x = fp_mul(in[i].x, zi2);
    out[i].y = fp_mul(in[i].y, fp_mul(zi2, zi[i]));
    out[i].infinity = false;
  }
}

// ---- Fixed-base table for G -------------------------------------------------
//
// table[w][d-1] = d * 16^w * G for d = 1..15, w = 0..63: one window per
// nibble of the scalar, so k*G is at most 64 mixed additions with no
// doublings at all.  960 affine points (~60 kB), built once at startup
// with a single batched inversion.

struct FixedBaseTable {
  std::array<std::array<AffinePoint, 15>, 64> win;

  FixedBaseTable() {
    std::vector<Jac> pts;
    pts.reserve(64 * 15);
    Jac base = Jac{kGx, kGy, U256::from_u64(1), false};
    for (int w = 0; w < 64; ++w) {
      Jac cur = base;  // 1 * 16^w * G
      for (int d = 1; d <= 15; ++d) {
        pts.push_back(cur);
        cur = jac_add(cur, base);
      }
      base = cur;  // 16^(w+1) * G
    }
    std::vector<AffinePoint> flat(pts.size());
    jac_batch_to_affine(pts.data(), flat.data(), pts.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      win[i / 15][i % 15] = flat[i];
    }
  }
};

const FixedBaseTable& fixed_base_table() {
  static const FixedBaseTable t;
  return t;
}

// Folds k*G into `acc` via the fixed-base table: one mixed addition per
// non-zero nibble, no doublings.
Jac add_fixed_base(Jac acc, const U256& k) {
  const FixedBaseTable& t = fixed_base_table();
  for (unsigned w = 0; w < 64; ++w) {
    const unsigned d =
        static_cast<unsigned>(k.w[w / 16] >> ((w % 16) * 4)) & 0xF;
    if (d != 0) acc = jac_add_affine(acc, t.win[w][d - 1]);
  }
  return acc;
}

AffinePoint point_mul_g(const U256& k) {
  return jac_to_affine(add_fixed_base(Jac{}, k));
}

// ---- wNAF -------------------------------------------------------------------

// Width-w non-adjacent form: digits[i] is odd in [-(2^(w-1)-1), 2^(w-1)-1]
// or zero, with at least w-1 zeros between non-zeros.  Returns the digit
// count.  Valid scalars (< n < 2^256 - 2^128) cannot carry out of 256 bits
// when a negative digit is added back.
int wnaf_digits(const U256& k_in, int width, std::int8_t* digits) {
  U256 k = k_in;
  int len = 0;
  const std::uint64_t mask = (1ULL << width) - 1;
  const std::int32_t half = 1 << (width - 1);
  while (!k.is_zero()) {
    std::int32_t d = 0;
    if (k.is_odd()) {
      d = static_cast<std::int32_t>(k.w[0] & mask);
      if (d >= half) d -= (1 << width);
      if (d >= 0) {
        U256 delta = U256::from_u64(static_cast<std::uint64_t>(d));
        sub_borrow(k, k, delta);
      } else {
        U256 delta = U256::from_u64(static_cast<std::uint64_t>(-d));
        std::uint64_t carry = add_carry(k, k, delta);
        assert(carry == 0);
        (void)carry;
      }
    }
    digits[len++] = static_cast<std::int8_t>(d);
    k = shr1(k);
  }
  return len;
}

// Odd multiples 1*P, 3*P, ..., (2*count-1)*P, batch-normalized to affine.
void odd_multiples(const AffinePoint& p, AffinePoint* out, std::size_t count) {
  std::vector<Jac> pts(count);
  pts[0] = Jac::from_affine(p);
  Jac twice = jac_double(pts[0]);
  for (std::size_t i = 1; i < count; ++i) pts[i] = jac_add(pts[i - 1], twice);
  jac_batch_to_affine(pts.data(), out, count);
}

constexpr int kWindowQ = 5;  // per-call table: 8 points

Jac add_digit(Jac acc, std::int32_t digit, const AffinePoint* table, bool negate) {
  AffinePoint t = table[(std::abs(digit) - 1) / 2];
  if ((digit < 0) != negate) t.y = fp_neg(t.y);
  return jac_add_affine(acc, t);
}

// ---- GLV endomorphism -------------------------------------------------------
//
// secp256k1 has an efficiently computable endomorphism
// phi(x, y) = (beta*x, y) acting as scalar multiplication by lambda
// (lambda^3 = 1 mod n, beta^3 = 1 mod p).  Splitting k = k1 + k2*lambda
// with |k1|, |k2| <~ 2^128 (Babai rounding against the lattice basis
// (|b1|, -b2), (b2, |b1|+b2)... precomputed below) halves the doubling
// chain of a variable-base multiplication: k*Q = k1*Q + k2*phi(Q) shares
// ~129 doublings instead of 256.

// lambda, beta: the canonical cube roots.
constexpr U256 kLambda{{0xDF02967C1B23BD72ULL, 0x122E22EA20816678ULL,
                        0xA5261C028812645AULL, 0x5363AD4CC05C30E0ULL}};
constexpr U256 kBeta{{0xC1396C28719501EEULL, 0x9CF0497512F58995ULL,
                      0x6E64479EAC3434E9ULL, 0x7AE96A2B657C0710ULL}};
// |b1|, b2: the short lattice vector components (b1 is negative).
constexpr U256 kB1Abs{{0x6F547FA90ABFE4C3ULL, 0xE4437ED6010E8828ULL, 0, 0}};
constexpr U256 kB2{{0xE86C90E49284EB15ULL, 0x3086D221A7D46BCDULL, 0, 0}};
// g1 = round(2^384 * b2 / n), g2 = round(2^384 * |b1| / n): Barrett-style
// reciprocals so the rounded quotients c_i = round(k * b_i / n) reduce to
// a multiply and a shift.
constexpr U256 kG1{{0xE893209A45DBB031ULL, 0x3DAA8A1471E8CA7FULL,
                    0xE86C90E49284EB15ULL, 0x3086D221A7D46BCDULL}};
constexpr U256 kG2{{0x1571B4AE8AC47F71ULL, 0x221208AC9DF506C6ULL,
                    0x6F547FA90ABFE4C4ULL, 0xE4437ED6010E8828ULL}};

// Half the group order, for mapping residues to signed magnitudes.
constexpr U256 kNHalf{{0xDFE92F46681B20A0ULL, 0x5D576E7357A4501DULL,
                       0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL}};

struct GlvSplit {
  U256 k1, k2;      // magnitudes, <= ~2^128
  bool neg1, neg2;  // contribution signs
};

// round(k * g / 2^384): the product's top 128 bits, rounded by bit 383.
U256 mul_shift_384(const U256& k, const U256& g) {
  U512 t = mul_full(k, g);
  U256 q{{t.w[6], t.w[7], 0, 0}};
  if ((t.w[5] >> 63) != 0) add_carry(q, q, U256::from_u64(1));
  return q;
}

GlvSplit glv_split(const U256& k) {
  const U256 c1 = mul_shift_384(k, kG1);
  const U256 c2 = mul_shift_384(k, kG2);
  // k2 = -(c1*b1 + c2*b2) = c1*|b1| - c2*b2 (mod n); k1 = k - k2*lambda.
  U256 k2 = mod_sub(sc_mul(c1, kB1Abs), sc_mul(c2, kB2), kN);
  U256 k1 = mod_sub(k, sc_mul(k2, kLambda), kN);
  GlvSplit out;
  out.neg1 = k1 > kNHalf;
  out.k1 = out.neg1 ? sc_neg(k1) : k1;
  out.neg2 = k2 > kNHalf;
  out.k2 = out.neg2 ? sc_neg(k2) : k2;
  return out;
}

// The shared double-and-add chain for k*Q via the GLV split: ~129
// doublings, two interleaved width-5 wNAF digit streams over the odd
// multiples of Q and phi(Q).
Jac glv_chain(const U256& k, const AffinePoint& q) {
  GlvSplit s = glv_split(k);
  std::array<AffinePoint, 8> q_tbl;
  odd_multiples(q, q_tbl.data(), q_tbl.size());
  std::array<AffinePoint, 8> phi_tbl;
  for (std::size_t i = 0; i < q_tbl.size(); ++i) {
    phi_tbl[i] = AffinePoint{fp_mul(kBeta, q_tbl[i].x), q_tbl[i].y, false};
  }
  std::int8_t d1[131];
  std::int8_t d2[131];
  const int l1 = wnaf_digits(s.k1, kWindowQ, d1);
  const int l2 = wnaf_digits(s.k2, kWindowQ, d2);
  const int len = l1 > l2 ? l1 : l2;
  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < l1 && d1[i] != 0) acc = add_digit(acc, d1[i], q_tbl.data(), s.neg1);
    if (i < l2 && d2[i] != 0) acc = add_digit(acc, d2[i], phi_tbl.data(), s.neg2);
  }
  return acc;
}

// G is fixed, so its wNAF tables can be much wider than the per-call
// window for Q: width 8 needs the odd multiples 1*G..127*G (64 points)
// plus their phi images -- 8 kB, built once.
constexpr int kWindowG = 8;

struct GWnafTable {
  std::array<AffinePoint, 64> g, phig;

  GWnafTable() {
    odd_multiples(secp_g(), g.data(), g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      phig[i] = AffinePoint{fp_mul(kBeta, g[i].x), g[i].y, false};
    }
  }
};

const GWnafTable& g_wnaf_table() {
  static const GWnafTable t;
  return t;
}

// u1*G + u2*Q with both scalars GLV-split onto one ~129-doubling chain:
// four interleaved wNAF digit streams (width 8 for the two fixed-base
// streams, width 5 for the two per-call Q streams).
Jac glv_chain2(const U256& u1, const U256& u2, const AffinePoint& q) {
  GlvSplit sg = glv_split(u1);
  GlvSplit sq = glv_split(u2);
  std::array<AffinePoint, 8> q_tbl;
  odd_multiples(q, q_tbl.data(), q_tbl.size());
  std::array<AffinePoint, 8> phi_tbl;
  for (std::size_t i = 0; i < q_tbl.size(); ++i) {
    phi_tbl[i] = AffinePoint{fp_mul(kBeta, q_tbl[i].x), q_tbl[i].y, false};
  }
  const GWnafTable& gt = g_wnaf_table();
  std::int8_t dg1[131], dg2[131], dq1[131], dq2[131];
  const int lg1 = wnaf_digits(sg.k1, kWindowG, dg1);
  const int lg2 = wnaf_digits(sg.k2, kWindowG, dg2);
  const int lq1 = wnaf_digits(sq.k1, kWindowQ, dq1);
  const int lq2 = wnaf_digits(sq.k2, kWindowQ, dq2);
  int len = lg1;
  if (lg2 > len) len = lg2;
  if (lq1 > len) len = lq1;
  if (lq2 > len) len = lq2;
  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < lg1 && dg1[i] != 0) acc = add_digit(acc, dg1[i], gt.g.data(), sg.neg1);
    if (i < lg2 && dg2[i] != 0) acc = add_digit(acc, dg2[i], gt.phig.data(), sg.neg2);
    if (i < lq1 && dq1[i] != 0) acc = add_digit(acc, dq1[i], q_tbl.data(), sq.neg1);
    if (i < lq2 && dq2[i] != 0) acc = add_digit(acc, dq2[i], phi_tbl.data(), sq.neg2);
  }
  return acc;
}

}  // namespace

const U256& secp_p() { return kP; }
const U256& secp_n() { return kN; }

U256 fp_add(const U256& a, const U256& b) { return mod_add(a, b, kP); }
U256 fp_sub(const U256& a, const U256& b) { return mod_sub(a, b, kP); }
U256 fp_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b), kP, kC, 1); }
U256 fp_sqr(const U256& a) { return reduce512(sqr_full(a), kP, kC, 1); }
U256 fp_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kP); }

U256 fp_inv(const U256& a) {
  assert(!a.is_zero());
  return mod_inv_binary(a, kP);
}

U256 fp_inv_fermat(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // p - 2
  sub_borrow(exp, kP, U256::from_u64(2));
  return mod_pow(a, exp, &fp_mul);
}

namespace {

// Montgomery's batch-inversion trick, shared between F_p and mod-n:
// prefix products of the non-zero entries, one real inversion, then a
// backward sweep peeling off one inverse per entry.  Zeros are skipped
// (their prefix slot just repeats the running product) and stay zero.
void mod_inv_batch(U256* vals, std::size_t count,
                   U256 (*mul)(const U256&, const U256&),
                   U256 (*inv)(const U256&)) {
  if (count == 0) return;
  std::vector<U256> prefix(count);
  U256 acc = U256::from_u64(1);
  bool any = false;
  for (std::size_t i = 0; i < count; ++i) {
    prefix[i] = acc;
    if (!vals[i].is_zero()) {
      acc = mul(acc, vals[i]);
      any = true;
    }
  }
  if (!any) return;
  U256 inv_acc = inv(acc);
  for (std::size_t i = count; i-- > 0;) {
    if (vals[i].is_zero()) continue;
    U256 vi = vals[i];
    vals[i] = mul(inv_acc, prefix[i]);
    inv_acc = mul(inv_acc, vi);
  }
}

}  // namespace

void fp_inv_batch(U256* vals, std::size_t count) {
  mod_inv_batch(vals, count, &fp_mul, &fp_inv);
}

std::optional<U256> fp_sqrt(const U256& a) {
  if (a.is_zero()) return U256::zero();
  // p = 3 mod 4, so a^((p+1)/4) squares back to a exactly when a is a
  // quadratic residue; the final check rejects non-residues.
  static const U256 kSqrtExp = [] {
    U256 e;
    add_carry(e, kP, U256::from_u64(1));
    return shr1(shr1(e));
  }();
  U256 r = mod_pow(a, kSqrtExp, &fp_mul);
  if (fp_sqr(r) != a) return std::nullopt;
  return r;
}

U256 sc_add(const U256& a, const U256& b) { return mod_add(a, b, kN); }
U256 sc_mul(const U256& a, const U256& b) { return reduce512(mul_full(a, b), kN, kD, 3); }
U256 sc_neg(const U256& a) { return a.is_zero() ? a : mod_sub(U256::zero(), a, kN); }
U256 sc_reduce(const U256& a) { return reduce512(U512::from_u256(a), kN, kD, 3); }
bool sc_is_valid(const U256& a) { return !a.is_zero() && a < kN; }

U256 sc_inv(const U256& a) {
  assert(!a.is_zero());
  return mod_inv_binary(a, kN);
}

U256 sc_inv_fermat(const U256& a) {
  assert(!a.is_zero());
  U256 exp;  // n - 2
  sub_borrow(exp, kN, U256::from_u64(2));
  return mod_pow(a, exp, &sc_mul);
}

void sc_inv_batch(U256* vals, std::size_t count) {
  mod_inv_batch(vals, count, &sc_mul, &sc_inv);
}

const AffinePoint& secp_g() {
  static const AffinePoint g{kGx, kGy, false};
  return g;
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  if (x >= kP || y >= kP) return false;
  U256 lhs = fp_sqr(y);
  U256 rhs = fp_add(fp_mul(fp_sqr(x), x), U256::from_u64(7));
  return lhs == rhs;
}

AffinePoint point_add(const AffinePoint& a, const AffinePoint& b) {
  return jac_to_affine(jac_add(Jac::from_affine(a), Jac::from_affine(b)));
}

AffinePoint point_double(const AffinePoint& a) {
  return jac_to_affine(jac_double(Jac::from_affine(a)));
}

AffinePoint point_neg(const AffinePoint& a) {
  if (a.infinity) return a;
  return AffinePoint{a.x, fp_neg(a.y), false};
}

AffinePoint point_mul(const U256& k, const AffinePoint& p) {
  if (k.is_zero() || p.infinity) return AffinePoint::at_infinity();
  if (p.x == kGx && p.y == kGy) return point_mul_g(k);
  return jac_to_affine(glv_chain(k, p));
}

AffinePoint point_mul2(const U256& u1, const U256& u2, const AffinePoint& q) {
  if (u2.is_zero() || q.infinity) {
    return u1.is_zero() ? AffinePoint::at_infinity() : point_mul_g(u1);
  }
  if (u1.is_zero()) return point_mul(u2, q);
  return jac_to_affine(glv_chain2(u1, u2, q));
}

bool point_mul2_check_r(const U256& u1, const U256& u2, const AffinePoint& q,
                        const U256& r) {
  if (u2.is_zero() || q.infinity || r.is_zero() || !(r < kN)) return false;
  Jac acc = u1.is_zero() ? glv_chain(u2, q) : glv_chain2(u1, u2, q);
  if (acc.inf) return false;
  // R.x mod n == r without normalizing: the affine x is X/Z^2, so check
  // X == x'*Z^2 for each field element x' congruent to r mod n.  Since
  // r < n and p - n < 2^129, the only candidates are r and r + n.
  const U256 z2 = fp_sqr(acc.z);
  if (fp_mul(r, z2) == acc.x) return true;
  U256 rn;
  if (add_carry(rn, r, kN) == 0 && rn < kP) {
    if (fp_mul(rn, z2) == acc.x) return true;
  }
  return false;
}

AffinePoint point_mul_slow(const U256& k, const AffinePoint& p) {
  if (k.is_zero() || p.infinity) return AffinePoint::at_infinity();
  return jac_to_affine(jac_mul(k, Jac::from_affine(p)));
}

AffinePoint point_mul2_slow(const U256& u1, const U256& u2, const AffinePoint& q) {
  Jac a = u1.is_zero() ? Jac{} : jac_mul(u1, Jac::from_affine(secp_g()));
  Jac b = (u2.is_zero() || q.infinity) ? Jac{} : jac_mul(u2, Jac::from_affine(q));
  return jac_to_affine(jac_add(a, b));
}

namespace {

// Per-base state for the interleaved MSM chain: the GLV split plus the
// two wNAF digit streams it produces (second stream empty when the split
// leaves k2 = 0, e.g. for scalars that are already ~128 bits).
struct MsmStream {
  GlvSplit split;
  std::int8_t d1[131];
  std::int8_t d2[131];
  int l1 = 0;
  int l2 = 0;
};

}  // namespace

AffinePoint point_mul_multi(const MulTerm* terms, std::size_t count) {
  // Partition: fixed-base contributions aggregate into one scalar (every
  // finite secp256k1 point has prime order n, so sums of coefficients of
  // the same base reduce mod n exactly); everything else keeps its own
  // digit streams on the shared doubling chain.
  U256 kg = U256::zero();
  std::vector<U256> var_k;
  std::vector<AffinePoint> var_p;
  var_k.reserve(count);
  var_p.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (terms[i].p.infinity) continue;
    U256 k = sc_reduce(terms[i].k);
    if (k.is_zero()) continue;
    if (terms[i].p.x == kGx && terms[i].p.y == kGy) {
      kg = sc_add(kg, k);
    } else {
      var_k.push_back(k);
      var_p.push_back(terms[i].p);
    }
  }

  const std::size_t nv = var_k.size();
  std::vector<MsmStream> streams(nv);
  // Odd multiples 1,3,..,15 of every variable base, all normalized to
  // affine at once: nv tables cost one shared field inversion instead of
  // one per base (the win that makes per-call tables affordable here).
  std::vector<Jac> tbl_jac(nv * 8);
  for (std::size_t i = 0; i < nv; ++i) {
    MsmStream& s = streams[i];
    s.split = glv_split(var_k[i]);
    if (!s.split.k1.is_zero()) s.l1 = wnaf_digits(s.split.k1, kWindowQ, s.d1);
    if (!s.split.k2.is_zero()) s.l2 = wnaf_digits(s.split.k2, kWindowQ, s.d2);
    Jac* t = &tbl_jac[i * 8];
    t[0] = Jac::from_affine(var_p[i]);
    Jac twice = jac_double(t[0]);
    for (std::size_t j = 1; j < 8; ++j) t[j] = jac_add(t[j - 1], twice);
  }
  std::vector<AffinePoint> tbl(nv * 8);
  jac_batch_to_affine(tbl_jac.data(), tbl.data(), nv * 8);
  // phi images only for streams that actually emit lambda-half digits.
  std::vector<AffinePoint> phi_tbl(nv * 8);
  for (std::size_t i = 0; i < nv; ++i) {
    if (streams[i].l2 == 0) continue;
    for (std::size_t j = 0; j < 8; ++j) {
      const AffinePoint& q = tbl[i * 8 + j];
      phi_tbl[i * 8 + j] = AffinePoint{fp_mul(kBeta, q.x), q.y, false};
    }
  }

  // Aggregated fixed-base scalar rides the same chain through the static
  // width-8 G tables.
  GlvSplit sg{};
  std::int8_t dg1[131], dg2[131];
  int lg1 = 0, lg2 = 0;
  const GWnafTable* gt = nullptr;
  if (!kg.is_zero()) {
    gt = &g_wnaf_table();
    sg = glv_split(kg);
    if (!sg.k1.is_zero()) lg1 = wnaf_digits(sg.k1, kWindowG, dg1);
    if (!sg.k2.is_zero()) lg2 = wnaf_digits(sg.k2, kWindowG, dg2);
  }

  int len = lg1 > lg2 ? lg1 : lg2;
  for (const MsmStream& s : streams) {
    if (s.l1 > len) len = s.l1;
    if (s.l2 > len) len = s.l2;
  }

  Jac acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = jac_double(acc);
    if (i < lg1 && dg1[i] != 0) acc = add_digit(acc, dg1[i], gt->g.data(), sg.neg1);
    if (i < lg2 && dg2[i] != 0) acc = add_digit(acc, dg2[i], gt->phig.data(), sg.neg2);
    for (std::size_t t = 0; t < nv; ++t) {
      const MsmStream& s = streams[t];
      if (i < s.l1 && s.d1[i] != 0) {
        acc = add_digit(acc, s.d1[i], &tbl[t * 8], s.split.neg1);
      }
      if (i < s.l2 && s.d2[i] != 0) {
        acc = add_digit(acc, s.d2[i], &phi_tbl[t * 8], s.split.neg2);
      }
    }
  }
  return jac_to_affine(acc);
}

AffinePoint point_mul_multi_slow(const MulTerm* terms, std::size_t count) {
  Jac acc;
  for (std::size_t i = 0; i < count; ++i) {
    if (terms[i].p.infinity) continue;
    U256 k = sc_reduce(terms[i].k);
    if (k.is_zero()) continue;
    acc = jac_add(acc, jac_mul(k, Jac::from_affine(terms[i].p)));
  }
  return jac_to_affine(acc);
}

Bytes point_encode(const AffinePoint& p) {
  assert(!p.infinity);
  Bytes out = p.x.to_bytes_be();
  Bytes y = p.y.to_bytes_be();
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<AffinePoint> point_decode(BytesView b) {
  if (b.size() != 64) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_bytes_be(b.subspan(0, 32));
  p.y = U256::from_bytes_be(b.subspan(32, 32));
  p.infinity = false;
  if (!p.on_curve()) return std::nullopt;
  return p;
}

}  // namespace gdp::crypto
